package partix_test

import (
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"partix"
)

// These tests exercise the public facade the way a downstream user would:
// no internal packages except for the already-tested building blocks.

func facadeSystem(t *testing.T, nodes int) *partix.System {
	t.Helper()
	sys := partix.NewSystem(partix.GigabitEthernet)
	for i := 0; i < nodes; i++ {
		db, err := partix.OpenEngine(filepath.Join(t.TempDir(), fmt.Sprintf("n%d.db", i)))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		sys.AddNode(partix.NewLocalNode(fmt.Sprintf("node%d", i), db))
	}
	return sys
}

func facadeItems(t *testing.T, n int) *partix.Collection {
	t.Helper()
	col := partix.NewCollection("items")
	sections := []string{"CD", "DVD", "Book"}
	for i := 0; i < n; i++ {
		doc, err := partix.ParseDocument(fmt.Sprintf("i%02d", i), fmt.Sprintf(
			`<Item id="%d"><Code>I%02d</Code><Name>n%d</Name><Description>thing %d</Description><Section>%s</Section></Item>`,
			i, i, i, i, sections[i%3]))
		if err != nil {
			t.Fatal(err)
		}
		col.Add(doc)
	}
	return col
}

func TestFacadePublishAndQuery(t *testing.T) {
	sys := facadeSystem(t, 2)
	fCD, err := partix.Horizontal("Fcd", `/Item/Section = "CD"`)
	if err != nil {
		t.Fatal(err)
	}
	fRest, err := partix.Horizontal("Frest", `/Item/Section != "CD"`)
	if err != nil {
		t.Fatal(err)
	}
	scheme := &partix.Scheme{Collection: "items", Fragments: []*partix.Fragment{fCD, fRest}}
	col := facadeItems(t, 9)
	if err := scheme.Check(col); err != nil {
		t.Fatal(err)
	}
	err = sys.Publish(col, scheme, map[string]string{"Fcd": "node0", "Frest": "node1"},
		partix.PublishOptions{CheckCorrectness: true})
	if err != nil {
		t.Fatal(err)
	}

	res, err := sys.Query(`for $i in collection("items")/Item where $i/Section = "CD" return $i/Name`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != partix.StrategyRouted || len(res.Items) != 3 {
		t.Fatalf("strategy=%s items=%d", res.Strategy, len(res.Items))
	}
	if partix.ItemString(res.Items[0]) != "n0" {
		t.Fatalf("first = %q", partix.ItemString(res.Items[0]))
	}
	node, ok := res.Items[0].(*partix.Node)
	if !ok || partix.NodeString(node) != "<Name>n0</Name>" {
		t.Fatalf("node = %v", res.Items[0])
	}

	plan, err := sys.Explain(`count(for $i in collection("items")/Item return $i)`)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != partix.StrategyAggregate || len(plan.Steps) != 2 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestFacadeVerticalAndSchemas(t *testing.T) {
	if partix.VirtualStoreSchema().Type("Item") == nil {
		t.Fatal("virtual store schema incomplete")
	}
	if partix.XBenchArticleSchema().Type("article") == nil {
		t.Fatal("xbench schema incomplete")
	}
	fProlog, err := partix.Vertical("Fp", "/article/prolog")
	if err != nil {
		t.Fatal(err)
	}
	fRest, err := partix.Vertical("Fr", "/article", "/article/prolog")
	if err != nil {
		t.Fatal(err)
	}
	scheme := &partix.Scheme{Collection: "arts", Fragments: []*partix.Fragment{fProlog, fRest}}
	doc, err := partix.ParseDocument("a1",
		`<article id="a1"><prolog><title>t</title></prolog><body><p>x</p></body><epilog/></article>`)
	if err != nil {
		t.Fatal(err)
	}
	col := partix.NewCollection("arts", doc)
	if err := scheme.Check(col); err != nil {
		t.Fatal(err)
	}
	if got := partix.SerializeDocument(doc); got == "" {
		t.Fatal("serialize empty")
	}
}

func TestFacadeHybridModes(t *testing.T) {
	f, err := partix.Hybrid("Fcd", "/Store/Items", nil, `/Item/Section = "CD"`)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind.String() != "hybrid" {
		t.Fatalf("kind = %s", f.Kind)
	}
	if partix.FragMode1.String() != "FragMode1" || partix.FragMode2.String() != "FragMode2" {
		t.Fatal("mode names wrong")
	}
}

func TestFacadeRemoteNode(t *testing.T) {
	db, err := partix.OpenEngine(filepath.Join(t.TempDir(), "remote.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := partix.ServeNode(db, l, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	client, err := partix.DialNode("r0", l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })

	sys := partix.NewSystem(partix.NoNetwork)
	sys.AddNode(client)
	col := facadeItems(t, 4)
	if err := sys.Publish(col, nil, map[string]string{"": "r0"}, partix.PublishOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(`count(collection("items")/Item)`)
	if err != nil {
		t.Fatal(err)
	}
	if partix.ItemString(res.Items[0]) != "4" {
		t.Fatalf("count = %v", res.Items)
	}
}

func TestFacadeDesignAdvisor(t *testing.T) {
	col := facadeItems(t, 30)
	queries := []partix.WorkloadQuery{
		{Text: `for $i in collection("items")/Item where $i/Section = "CD" return $i/Name`, Weight: 5},
	}
	scheme, err := partix.ProposeHorizontalDesign(col, queries, partix.HorizontalDesignOptions{MaxFragments: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := scheme.Check(col); err != nil {
		t.Fatal(err)
	}
	placement, err := partix.AllocateFragments(scheme, col, []string{"n0", "n1"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(placement) != len(scheme.Fragments) {
		t.Fatalf("placement = %v", placement)
	}

	// Vertical advisor over article-shaped documents.
	arts := partix.NewCollection("arts")
	for i := 0; i < 4; i++ {
		doc, err := partix.ParseDocument(fmt.Sprintf("a%d", i), fmt.Sprintf(
			`<article id="a%d"><prolog><title>t%d</title></prolog><body><p>text %d</p></body><epilog><c>x</c></epilog></article>`, i, i, i))
		if err != nil {
			t.Fatal(err)
		}
		arts.Add(doc)
	}
	advice, err := partix.ProposeVerticalDesign(arts, []partix.WorkloadQuery{
		{Text: `for $a in collection("arts")/article return $a/prolog/title`},
		{Text: `for $a in collection("arts")/article return $a/body`},
	}, partix.VerticalDesignOptions{MaxFragments: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := advice.Scheme.Check(arts); err != nil {
		t.Fatal(err)
	}
}
