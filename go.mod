module partix

go 1.22
