package partix_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"partix"
)

// Example reproduces the paper's core workflow end to end: define a
// horizontal fragmentation (Figure 2(a)), verify the Section 3.3
// correctness rules, publish across two embedded nodes, and run queries
// that the middleware routes, unions, and aggregate-composes.
func Example() {
	dir, err := os.MkdirTemp("", "partix-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// C_items: one document per store item (paper Figure 1(b)).
	col := partix.NewCollection("items")
	for i, xml := range []string{
		`<Item><Code>I1</Code><Description>a good record</Description><Section>CD</Section></Item>`,
		`<Item><Code>I2</Code><Description>classic film</Description><Section>DVD</Section></Item>`,
		`<Item><Code>I3</Code><Description>good album</Description><Section>CD</Section></Item>`,
	} {
		doc, err := partix.ParseDocument(fmt.Sprintf("i%d", i+1), xml)
		if err != nil {
			log.Fatal(err)
		}
		col.Add(doc)
	}

	fCD, _ := partix.Horizontal("Fcd", `/Item/Section = "CD"`)
	fRest, _ := partix.Horizontal("Frest", `/Item/Section != "CD"`)
	scheme := &partix.Scheme{Collection: "items", Fragments: []*partix.Fragment{fCD, fRest}}
	if err := scheme.Check(col); err != nil { // completeness, disjointness, reconstruction
		log.Fatal(err)
	}

	sys := partix.NewSystem(partix.GigabitEthernet)
	for i := 0; i < 2; i++ {
		db, err := partix.OpenEngine(filepath.Join(dir, fmt.Sprintf("n%d.db", i)))
		if err != nil {
			log.Fatal(err)
		}
		defer db.Close()
		sys.AddNode(partix.NewLocalNode(fmt.Sprintf("node%d", i), db))
	}
	if err := sys.Publish(col, scheme, map[string]string{"Fcd": "node0", "Frest": "node1"},
		partix.PublishOptions{}); err != nil {
		log.Fatal(err)
	}

	res, err := sys.Query(`for $i in collection("items")/Item where $i/Section = "CD" return $i/Code`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("strategy:", res.Strategy)
	for _, it := range res.Items {
		fmt.Println(partix.ItemString(it))
	}

	count, err := sys.Query(`count(for $i in collection("items")/Item where contains($i/Description, "good") return $i)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("good items:", partix.ItemString(count.Items[0]), "via", count.Strategy)

	// Output:
	// strategy: routed
	// I1
	// I3
	// good items: 2 via aggregate
}
