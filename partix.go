// Package partix is an open-source implementation of PartiX — the system
// described in "Efficiently Processing XML Queries over Fragmented
// Repositories with PartiX" (Andrade, Ruberg, Baião, Braganholo, Mattoso —
// EDBT 2006).
//
// PartiX improves XML query latency by fragmenting collections of XML
// documents — horizontally (selections over documents), vertically
// (projections with prune criteria) or hybrid (both) — across a set of
// XQuery-enabled database nodes, and coordinating distributed execution:
// queries are analyzed, decomposed into sub-queries over the relevant
// fragments, and the partial results composed back (union ∪ for
// horizontal designs, an ID-preserving join ⨝ for vertical ones).
//
// This package is the public facade; the subsystems live under internal/:
//
//   - xmltree, xmlschema: the XML data model and schema of the paper's
//     Section 3.1;
//   - xpath: path expressions and simple predicates;
//   - algebra: the TLC-style operators fragments are defined with;
//   - fragmentation: fragment definitions and the correctness rules
//     (completeness, disjointness, reconstruction) of Section 3.3;
//   - storage, engine: the sequential XML DBMS each node runs (the role
//     eXist plays in the paper);
//   - xquery: the XQuery subset processor;
//   - partix: the middleware (catalogs, data publisher, distributed query
//     service);
//   - cluster, wire: node drivers, the cost model of Section 5, and the
//     TCP protocol for remote nodes;
//   - toxgene, xbench, workload, experiments: the data generators,
//     workloads and the harness reproducing the paper's Figure 7.
//
// # Quick start
//
//	sys := partix.NewSystem(partix.GigabitEthernet)
//	db, _ := partix.OpenEngine("node0.db")
//	sys.AddNode(partix.NewLocalNode("node0", db))
//	// … add more nodes, define a scheme, Publish, Query.
//
// See examples/ for complete programs.
package partix

import (
	"io"
	"log"
	"net"
	"time"

	icluster "partix/internal/cluster"
	idesign "partix/internal/design"
	iengine "partix/internal/engine"
	ifrag "partix/internal/fragmentation"
	iobs "partix/internal/obs"
	ipartix "partix/internal/partix"
	iwire "partix/internal/wire"
	ixmlschema "partix/internal/xmlschema"
	ixmltree "partix/internal/xmltree"
	ixquery "partix/internal/xquery"
)

// Data model (paper Section 3.1).
type (
	// Node is one node of an XML data tree.
	Node = ixmltree.Node
	// Document is a well-formed XML document with stable node IDs.
	Document = ixmltree.Document
	// Collection is a named set of documents (SD when it has exactly one).
	Collection = ixmltree.Collection
	// Schema is a DTD-like schema with cardinalities.
	Schema = ixmlschema.Schema
	// CollectionSpec is C := ⟨S, τroot⟩, a homogeneous collection type.
	CollectionSpec = ixmlschema.CollectionSpec
)

// Fragmentation model (paper Sections 3.2–3.3).
type (
	// Fragment is one fragment definition F := ⟨C, γ⟩.
	Fragment = ifrag.Fragment
	// Scheme is a fragmentation design Φ := {F1, …, Fn} with its
	// correctness checks.
	Scheme = ifrag.Scheme
	// MaterializeMode selects FragMode1/FragMode2 materialization for
	// hybrid fragments.
	MaterializeMode = ifrag.MaterializeMode
)

// Middleware and nodes (paper Section 4).
type (
	// System is a running PartiX deployment.
	System = ipartix.System
	// PublishOptions configure the distributed data publisher.
	PublishOptions = ipartix.PublishOptions
	// QueryResult carries a distributed query's items and timings.
	QueryResult = ipartix.QueryResult
	// Strategy names how a query was executed.
	Strategy = ipartix.Strategy
	// CollectionMeta is a catalog entry.
	CollectionMeta = ipartix.CollectionMeta
	// Driver is the uniform node interface (the paper's PartiX Driver).
	Driver = icluster.Driver
	// CostModel is the Section 5 communication model.
	CostModel = icluster.CostModel
	// Engine is the sequential XML DBMS a node runs.
	Engine = iengine.DB
	// EngineOptions configure an engine.
	EngineOptions = iengine.Options
	// LocalNode is an in-process node driver.
	LocalNode = icluster.LocalNode
	// RemoteNode is a TCP node driver.
	RemoteNode = iwire.Client
	// NodeClientOptions tune a remote driver's deadlines, reconnect
	// retries and connection pool.
	NodeClientOptions = iwire.ClientOptions
	// NodeClientStats count a remote driver's transport events.
	NodeClientStats = iwire.ClientStats
	// NodeServer serves an engine over TCP.
	NodeServer = iwire.Server
	// NodeServerOptions tune a node server's idle and drain behaviour.
	NodeServerOptions = iwire.ServerOptions
	// Seq is an XQuery result sequence.
	Seq = ixquery.Seq
	// Item is one result item: *Node, string, float64 or bool.
	Item = ixquery.Item
)

// Observability (metrics, tracing, structured logging — internal/obs).
type (
	// TraceSpan is one node of an assembled query trace
	// (QueryResult.Trace); Format renders the tree.
	TraceSpan = iobs.Span
	// Logger is the leveled structured-logging interface the wire layer
	// and the slow-query log write to.
	Logger = iobs.Logger
	// LogLevel orders log severities.
	LogLevel = iobs.Level
)

// Log levels.
const (
	LogDebug = iobs.LevelDebug
	LogInfo  = iobs.LevelInfo
	LogWarn  = iobs.LevelWarn
	LogError = iobs.LevelError
)

// Serving tier (result cache and admission control).
var (
	// ErrOverloaded is returned (wrapped) by System.Query/QueryAs when
	// coordinator admission control sheds the query: the admission queue
	// is full, the queue wait exceeded its deadline, or the tenant's
	// token-bucket quota ran dry. Match with errors.Is. See
	// System.SetMaxInflight, SetMaxQueued, SetQueueTimeout,
	// SetTenantQuota; the result cache is budgeted with
	// System.SetResultCacheBytes.
	ErrOverloaded = ipartix.ErrOverloaded
	// ErrNodeOverloaded matches NodeErrors raised by a remote node's own
	// admission control (partixd -max-inflight / -tenant-rate); such
	// requests are delivered, shed by the node, and never retried.
	ErrNodeOverloaded = iwire.ErrNodeOverloaded
)

// NopLogger returns the default do-nothing logger.
func NopLogger() Logger { return iobs.Nop() }

// NewTextLogger writes key=value lines at or above min to w.
func NewTextLogger(w io.Writer, min LogLevel) Logger { return iobs.NewTextLogger(w, min) }

// LoggerFromStd adapts a *log.Logger to the structured interface (nil
// yields the no-op logger).
func LoggerFromStd(l *log.Logger, min LogLevel) Logger { return iobs.FromStd(l, min) }

// MetricsText renders every partix_* metric series of this process in
// Prometheus text exposition format (what partixd serves on /metrics).
func MetricsText(w io.Writer) error { return iobs.Default.WriteText(w) }

// SetMetricsEnabled toggles counter/histogram updates process-wide
// (gauges always track, so paired increments stay balanced). Metrics
// are enabled by default; disabling is an ablation/benchmark switch.
func SetMetricsEnabled(on bool) { iobs.SetEnabled(on) }

// Execution strategies.
const (
	StrategyCentralized = ipartix.StrategyCentralized
	StrategyRouted      = ipartix.StrategyRouted
	StrategyUnion       = ipartix.StrategyUnion
	StrategyAggregate   = ipartix.StrategyAggregate
	StrategyReconstruct = ipartix.StrategyReconstruct
)

// Hybrid materialization modes (paper Section 5).
const (
	// FragMode2: one spine-preserving document per fragment (the paper's
	// winning implementation).
	FragMode2 = ifrag.FragModeSD
	// FragMode1: every selected child becomes its own document.
	FragMode1 = ifrag.FragModeMD
)

// Cost models.
var (
	// GigabitEthernet is the paper's 1 Gbit/s link.
	GigabitEthernet = icluster.GigabitEthernet
	// NoNetwork disables transmission accounting.
	NoNetwork = icluster.NoNetwork
)

// NewSystem creates a PartiX deployment with the given cost model.
func NewSystem(cost CostModel) *System { return ipartix.NewSystem(cost) }

// OpenEngine opens (creating if needed) a node database at path.
func OpenEngine(path string) (*Engine, error) { return iengine.Open(path, iengine.Options{}) }

// OpenEngineWith opens a node database with options.
func OpenEngineWith(path string, opts EngineOptions) (*Engine, error) {
	return iengine.Open(path, opts)
}

// NewLocalNode wraps an engine as an in-process node named name.
func NewLocalNode(name string, db *Engine) *LocalNode { return icluster.NewLocalNode(name, db) }

// DialNode connects to a remote partixd node with default transport
// options; timeout bounds the TCP connect.
func DialNode(name, addr string, timeout time.Duration) (*RemoteNode, error) {
	return iwire.Dial(name, addr, timeout)
}

// DialNodeWith connects to a remote partixd node with explicit deadline,
// retry and pool options.
func DialNodeWith(name, addr string, opts NodeClientOptions) (*RemoteNode, error) {
	return iwire.DialWith(name, addr, opts)
}

// ServeNode serves db over the listener until it is closed.
func ServeNode(db *Engine, l net.Listener, logger *log.Logger) (*NodeServer, error) {
	srv := iwire.NewServer(db, logger)
	go srv.Serve(l)
	return srv, nil
}

// ServeNodeWith serves db over the listener with explicit idle-timeout
// and drain options.
func ServeNodeWith(db *Engine, l net.Listener, logger *log.Logger, opts NodeServerOptions) (*NodeServer, error) {
	srv := iwire.NewServerWith(db, logger, opts)
	go srv.Serve(l)
	return srv, nil
}

// ParseDocument parses an XML document from a string.
func ParseDocument(name, xml string) (*Document, error) { return ixmltree.ParseString(name, xml) }

// SerializeDocument renders a document as XML text.
func SerializeDocument(d *Document) string { return ixmltree.SerializeString(d) }

// NodeString renders a result node (or any subtree) as XML text.
func NodeString(n *Node) string { return ixmltree.NodeString(n) }

// ItemString atomizes a result item to its string value.
func ItemString(it Item) string { return ixquery.ItemString(it) }

// NewCollection builds a collection from documents.
func NewCollection(name string, docs ...*Document) *Collection {
	return ixmltree.NewCollection(name, docs...)
}

// Horizontal defines a horizontal fragment from a predicate, e.g.
// `/Item/Section = "CD"` or `contains(//Description, "good")`.
func Horizontal(name, predicate string) (*Fragment, error) {
	return ifrag.NewHorizontal(name, predicate)
}

// Vertical defines a vertical fragment πP,Γ from a path and prune paths.
func Vertical(name, path string, prune ...string) (*Fragment, error) {
	return ifrag.NewVertical(name, path, prune...)
}

// Hybrid defines a hybrid fragment πP,Γ • σμ.
func Hybrid(name, path string, prune []string, predicate string) (*Fragment, error) {
	return ifrag.NewHybrid(name, path, prune, predicate)
}

// VirtualStoreSchema is the paper's Figure 1(a) schema.
func VirtualStoreSchema() *Schema { return ixmlschema.VirtualStore() }

// XBenchArticleSchema is the article schema of the vertical experiments.
func XBenchArticleSchema() *Schema { return ixmlschema.XBenchArticle() }

// ParseSchemaText reads the compact DTD-like schema notation, e.g.
//
//	Store = Sections Items Employees
//	Items = Item*
//	Item  @ id
//
// (see internal/xmlschema.ParseSchema for the full grammar). Attaching a
// schema to a Scheme enables static fragment-path cardinality checks and
// schema-aware routing.
func ParseSchemaText(name, text string) (*Schema, error) {
	return ixmlschema.ParseSchema(name, text)
}

// Query planning (the distributed query service's explain facility).
type (
	// Plan is how a query would execute, without executing it.
	Plan = ipartix.Plan
	// PlanStep is one sub-query or fragment fetch of a plan.
	PlanStep = ipartix.PlanStep
)

// Fragmentation design advisor (the methodology the paper lists as future
// work, implemented in internal/design).
type (
	// WorkloadQuery is a query plus frequency weight for the advisor.
	WorkloadQuery = idesign.WorkloadQuery
	// HorizontalDesignOptions tune the min-term horizontal advisor.
	HorizontalDesignOptions = idesign.HorizontalOptions
	// VerticalDesignOptions tune the affinity-based vertical advisor.
	VerticalDesignOptions = idesign.VerticalOptions
	// VerticalAdvice is a proposed vertical design with colocation groups.
	VerticalAdvice = idesign.VerticalAdvice
)

// ProposeHorizontalDesign derives a horizontal fragmentation of c from the
// workload's simple predicates (min-term predicate method).
func ProposeHorizontalDesign(c *Collection, queries []WorkloadQuery, opts HorizontalDesignOptions) (*Scheme, error) {
	return idesign.ProposeHorizontal(c, queries, opts)
}

// ProposeVerticalDesign derives a vertical fragmentation of c by
// clustering the root's subtrees by query affinity.
func ProposeVerticalDesign(c *Collection, queries []WorkloadQuery, opts VerticalDesignOptions) (*VerticalAdvice, error) {
	return idesign.ProposeVertical(c, queries, opts)
}

// AllocateFragments places a scheme's fragments on nodes, balancing bytes;
// groups (from a VerticalAdvice) pins colocated fragments together.
func AllocateFragments(scheme *Scheme, c *Collection, nodes []string, groups map[string]int) (map[string]string, error) {
	return idesign.Allocate(scheme, c, nodes, groups)
}

// SchemeEvaluation scores a candidate design against a workload.
type SchemeEvaluation = idesign.Evaluation

// EvaluateScheme plans every workload query against a candidate scheme
// (no data needed) and reports the weighted fragments-contacted cost and
// the share of queries needing join reconstruction.
func EvaluateScheme(scheme *Scheme, queries []WorkloadQuery, mode MaterializeMode) (*SchemeEvaluation, error) {
	return idesign.EvaluateScheme(scheme, queries, mode)
}
