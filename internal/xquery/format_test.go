package xquery

import (
	"testing"
)

// TestFormatRoundTripsSemantics: formatting a parsed query and re-parsing
// it must evaluate identically — the property PartiX relies on when it
// ships rewritten sub-queries to remote nodes as text.
func TestFormatRoundTripsSemantics(t *testing.T) {
	src := itemsSource()
	queries := []string{
		`collection("items")/Item/Code`,
		`collection("items")/Item[Section = "CD"][1]/Name`,
		`doc("i2")/Item/@id`,
		`collection("items")/Item/Description/text()`,
		`collection("items")/Item/*`,
		`for $i in collection("items")/Item where $i/Section = "CD" return $i/Name`,
		`for $i in collection("items")/Item, $p in $i/PictureList/Picture return $p/Name`,
		`for $i in collection("items")/Item let $c := count($i//Picture) where $c > 0 return concat($i/Code, "-", string($c))`,
		`for $i in collection("items")/Item order by $i/Section descending, $i/Code return $i/Code`,
		`count(for $i in collection("items")/Item where contains($i/Description, "good") return $i)`,
		`sum((1, 2, 3)) + avg((4, 6)) - min((7, 8)) * max((1, 2))`,
		`10 div 4 + 10 mod 4`,
		`not(empty(collection("items")/Item)) and exists(collection("items")/Item)`,
		`(1 = 1 or 2 != 3) and ("a" < "b" or "c" >= "d")`,
		`<r a="x" b="{count(())}"><inner>text</inner>{1 + 1, "s"}</r>`,
		`<empty/>`,
		`for $i in collection("items")/Item return <item code="{$i/Code}">{$i/Name}</item>`,
		`distinct-values(collection("items")/Item/Section)`,
		`substring("hello", 2, 3)`,
		`("a", 1, 1 = 1)`,
		`-5 + 3`,
	}
	for _, q := range queries {
		e := MustParse(q)
		text := Format(e)
		re, err := Parse(text)
		if err != nil {
			t.Errorf("%s\n  formatted %q fails to parse: %v", q, text, err)
			continue
		}
		a, errA := Eval(e, src)
		b, errB := Eval(re, src)
		if (errA == nil) != (errB == nil) {
			t.Errorf("%s: eval errors differ: %v vs %v", q, errA, errB)
			continue
		}
		if errA != nil {
			continue
		}
		if len(a) != len(b) {
			t.Errorf("%s: %d vs %d items after round trip (%q)", q, len(a), len(b), text)
			continue
		}
		for i := range a {
			if ItemString(a[i]) != ItemString(b[i]) {
				t.Errorf("%s: item %d differs after round trip: %q vs %q",
					q, i, ItemString(a[i]), ItemString(b[i]))
				break
			}
		}
	}
}

func TestFormatDescendantAndAttrSteps(t *testing.T) {
	e := MustParse(`doc("i1")//Picture/@id`)
	if got := Format(e); got != `doc("i1")//Picture/@id` {
		t.Fatalf("got %q", got)
	}
}

func TestBinaryOpStrings(t *testing.T) {
	ops := map[BinaryOp]string{
		OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
		OpAnd: "and", OpOr: "or", OpAdd: "+", OpSub: "-", OpMul: "*",
		OpDiv: "div", OpMod: "mod",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("op %d = %q, want %q", op, op.String(), want)
		}
	}
}
