package xquery

import (
	"strings"
)

// Expr is a node of the query AST.
type Expr interface {
	exprNode()
}

// FLWOR is a for/let/where/order by/return expression.
type FLWOR struct {
	Clauses []Clause
	Where   Expr // nil when absent
	OrderBy []OrderSpec
	Return  Expr
}

// OrderSpec is one key of an order-by clause.
type OrderSpec struct {
	Key        Expr
	Descending bool
}

// Clause is one binding clause of a FLWOR.
type Clause struct {
	Let bool // false: for-clause (iterates), true: let-clause (binds whole)
	Var string
	In  Expr
}

// PathExpr applies location steps (with optional step predicates) to a
// source expression.
type PathExpr struct {
	Source Expr // CollectionCall, DocCall, VarRef, or nil for the leading-/ form
	Steps  []PathStep
}

// PathStep is one step of a PathExpr.
type PathStep struct {
	Descendant bool // // axis
	Name       string
	Attr       bool
	Text       bool   // text() step
	Preds      []Expr // [p] filters; a numeric literal is positional
}

// CollectionCall is collection("name").
type CollectionCall struct{ Name string }

// DocCall is doc("name").
type DocCall struct{ Name string }

// VarRef is $name.
type VarRef struct{ Name string }

// ContextItem is "." — the current context node inside a step predicate.
type ContextItem struct{}

// StringLit is a string literal.
type StringLit struct{ Value string }

// NumberLit is a numeric literal.
type NumberLit struct{ Value float64 }

// BinaryOp identifies a binary operator.
type BinaryOp uint8

// Binary operators.
const (
	OpEq BinaryOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
)

var opNames = map[BinaryOp]string{
	OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "and", OpOr: "or", OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "div", OpMod: "mod",
}

// String returns the operator's surface syntax.
func (o BinaryOp) String() string { return opNames[o] }

// Binary is a binary expression.
type Binary struct {
	Op          BinaryOp
	Left, Right Expr
}

// FuncCall is a function invocation fn(args...).
type FuncCall struct {
	Name string
	Args []Expr
}

// Sequence is (e1, e2, …).
type Sequence struct{ Items []Expr }

// ElementCtor is an element constructor <name attr="v">…</name>. Children
// mixes literal text (StringLit), nested constructors and embedded
// expressions; attributes are literal or embedded.
type ElementCtor struct {
	Name     string
	Attrs    []AttrCtor
	Children []Expr
}

// AttrCtor is one attribute of an element constructor.
type AttrCtor struct {
	Name  string
	Value Expr // StringLit for literal values, any Expr for {…}
}

// TextLit is literal text content inside an element constructor.
type TextLit struct{ Value string }

// IfExpr is if (Cond) then Then else Else.
type IfExpr struct {
	Cond, Then, Else Expr
}

// Quantified is some/every $v in expr (, $v2 in expr2)* satisfies expr.
type Quantified struct {
	Every     bool // false: some
	Clauses   []Clause
	Satisfies Expr
}

func (*FLWOR) exprNode()          {}
func (*PathExpr) exprNode()       {}
func (*CollectionCall) exprNode() {}
func (*DocCall) exprNode()        {}
func (*VarRef) exprNode()         {}
func (*ContextItem) exprNode()    {}
func (*StringLit) exprNode()      {}
func (*NumberLit) exprNode()      {}
func (*Binary) exprNode()         {}
func (*FuncCall) exprNode()       {}
func (*Sequence) exprNode()       {}
func (*ElementCtor) exprNode()    {}
func (*TextLit) exprNode()        {}
func (*IfExpr) exprNode()         {}
func (*Quantified) exprNode()     {}

// Walk visits every expression of the AST in depth-first order.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *FLWOR:
		for _, c := range x.Clauses {
			Walk(c.In, fn)
		}
		Walk(x.Where, fn)
		for _, o := range x.OrderBy {
			Walk(o.Key, fn)
		}
		Walk(x.Return, fn)
	case *PathExpr:
		Walk(x.Source, fn)
		for _, st := range x.Steps {
			for _, p := range st.Preds {
				Walk(p, fn)
			}
		}
	case *Binary:
		Walk(x.Left, fn)
		Walk(x.Right, fn)
	case *FuncCall:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case *Sequence:
		for _, it := range x.Items {
			Walk(it, fn)
		}
	case *ElementCtor:
		for _, a := range x.Attrs {
			Walk(a.Value, fn)
		}
		for _, c := range x.Children {
			Walk(c, fn)
		}
	case *IfExpr:
		Walk(x.Cond, fn)
		Walk(x.Then, fn)
		Walk(x.Else, fn)
	case *Quantified:
		for _, c := range x.Clauses {
			Walk(c.In, fn)
		}
		Walk(x.Satisfies, fn)
	}
}

// CollectionNames returns the distinct collection() names referenced by
// the query, in first-appearance order. The PartiX query service uses this
// to map a query onto fragments.
func CollectionNames(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	Walk(e, func(x Expr) {
		if c, ok := x.(*CollectionCall); ok && !seen[c.Name] {
			seen[c.Name] = true
			out = append(out, c.Name)
		}
	})
	return out
}

// RewriteCollections returns a deep copy of the AST with every
// collection(name) reference renamed through the rename map (names absent
// from the map stay unchanged). PartiX rewrites a global query into
// sub-queries over fragment collections with exactly this transformation.
func RewriteCollections(e Expr, rename map[string]string) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *FLWOR:
		cp := &FLWOR{Where: RewriteCollections(x.Where, rename), Return: RewriteCollections(x.Return, rename)}
		for _, c := range x.Clauses {
			cp.Clauses = append(cp.Clauses, Clause{Let: c.Let, Var: c.Var, In: RewriteCollections(c.In, rename)})
		}
		for _, o := range x.OrderBy {
			cp.OrderBy = append(cp.OrderBy, OrderSpec{Key: RewriteCollections(o.Key, rename), Descending: o.Descending})
		}
		return cp
	case *PathExpr:
		cp := &PathExpr{Source: RewriteCollections(x.Source, rename)}
		for _, st := range x.Steps {
			ns := PathStep{Descendant: st.Descendant, Name: st.Name, Attr: st.Attr, Text: st.Text}
			for _, p := range st.Preds {
				ns.Preds = append(ns.Preds, RewriteCollections(p, rename))
			}
			cp.Steps = append(cp.Steps, ns)
		}
		return cp
	case *CollectionCall:
		if to, ok := rename[x.Name]; ok {
			return &CollectionCall{Name: to}
		}
		return &CollectionCall{Name: x.Name}
	case *Binary:
		return &Binary{Op: x.Op, Left: RewriteCollections(x.Left, rename), Right: RewriteCollections(x.Right, rename)}
	case *FuncCall:
		cp := &FuncCall{Name: x.Name}
		for _, a := range x.Args {
			cp.Args = append(cp.Args, RewriteCollections(a, rename))
		}
		return cp
	case *Sequence:
		cp := &Sequence{}
		for _, it := range x.Items {
			cp.Items = append(cp.Items, RewriteCollections(it, rename))
		}
		return cp
	case *ElementCtor:
		cp := &ElementCtor{Name: x.Name}
		for _, a := range x.Attrs {
			cp.Attrs = append(cp.Attrs, AttrCtor{Name: a.Name, Value: RewriteCollections(a.Value, rename)})
		}
		for _, c := range x.Children {
			cp.Children = append(cp.Children, RewriteCollections(c, rename))
		}
		return cp
	case *IfExpr:
		return &IfExpr{
			Cond: RewriteCollections(x.Cond, rename),
			Then: RewriteCollections(x.Then, rename),
			Else: RewriteCollections(x.Else, rename),
		}
	case *Quantified:
		cp := &Quantified{Every: x.Every, Satisfies: RewriteCollections(x.Satisfies, rename)}
		for _, c := range x.Clauses {
			cp.Clauses = append(cp.Clauses, Clause{Let: c.Let, Var: c.Var, In: RewriteCollections(c.In, rename)})
		}
		return cp
	default:
		// Leaves without collection references are immutable; share them.
		return e
	}
}

// pathString renders steps for diagnostics.
func pathString(steps []PathStep) string {
	var sb strings.Builder
	for _, st := range steps {
		if st.Descendant {
			sb.WriteString("//")
		} else {
			sb.WriteString("/")
		}
		switch {
		case st.Text:
			sb.WriteString("text()")
		case st.Attr:
			sb.WriteString("@" + st.Name)
		default:
			sb.WriteString(st.Name)
		}
		for range st.Preds {
			sb.WriteString("[…]")
		}
	}
	return sb.String()
}
