package xquery

import (
	"reflect"
	"testing"
)

func TestOrderByString(t *testing.T) {
	src := itemsSource()
	got := evalStrings(t, src, `
	  for $i in collection("items")/Item
	  order by $i/Section
	  return $i/Section`)
	want := []string{"Book", "CD", "CD", "DVD"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestOrderByDescending(t *testing.T) {
	src := itemsSource()
	got := evalStrings(t, src, `
	  for $i in collection("items")/Item
	  order by $i/Code descending
	  return $i/Code`)
	want := []string{"I4", "I3", "I2", "I1"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestOrderByNumeric(t *testing.T) {
	src := itemsSource()
	// @id values are numeric: 10 must sort after 9, not between 1 and 2.
	got := evalStrings(t, src, `
	  for $x in (10, 2, 1, 9)
	  order by $x
	  return $x`)
	if !reflect.DeepEqual(got, []string{"1", "2", "9", "10"}) {
		t.Fatalf("got %v", got)
	}
	_ = src
}

func TestOrderByMultipleKeys(t *testing.T) {
	src := itemsSource()
	got := evalStrings(t, src, `
	  for $i in collection("items")/Item
	  order by $i/Section, $i/Code descending
	  return $i/Code`)
	// Book: I4; CD: I3, I1 (descending); DVD: I2.
	want := []string{"I4", "I3", "I1", "I2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestOrderByWithWhere(t *testing.T) {
	src := itemsSource()
	got := evalStrings(t, src, `
	  for $i in collection("items")/Item
	  where $i/Section = "CD"
	  order by $i/Name descending
	  return $i/Name`)
	if !reflect.DeepEqual(got, []string{"name-I3", "name-I1"}) {
		t.Fatalf("got %v", got)
	}
}

func TestOrderByEmptyKeysFirst(t *testing.T) {
	src := itemsSource()
	// Items without pictures have an empty key and sort first.
	got := evalStrings(t, src, `
	  for $i in collection("items")/Item
	  order by $i/PictureList/Picture[1]/Name, $i/Code
	  return $i/Code`)
	if len(got) != 4 {
		t.Fatalf("got %v", got)
	}
	// i2 and i4 (no pictures) precede picture-bearing i1 (p0) and i3 (p0).
	if got[0] != "I2" || got[1] != "I4" {
		t.Fatalf("empty keys not first: %v", got)
	}
}

func TestOrderByIsStable(t *testing.T) {
	src := itemsSource()
	// Equal keys keep document order: both CDs keep I1 before I3.
	got := evalStrings(t, src, `
	  for $i in collection("items")/Item
	  order by $i/Section
	  return $i/Code`)
	if !reflect.DeepEqual(got, []string{"I4", "I1", "I3", "I2"}) {
		t.Fatalf("got %v", got)
	}
}

func TestOrderByFormatRoundTrip(t *testing.T) {
	q := `for $i in collection("items")/Item order by $i/Section descending, $i/Code return $i/Code`
	e := MustParse(q)
	re := MustParse(Format(e))
	src := itemsSource()
	a, err := Eval(e, src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Eval(re, src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqString(a), seqString(b)) {
		t.Fatalf("format round trip changed semantics: %v vs %v", a, b)
	}
}

func TestOrderByParseErrors(t *testing.T) {
	bad := []string{
		`for $x in (1) order return $x`,
		`for $x in (1) order by return $x`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("%q accepted", q)
		}
	}
}

func TestNewStringFunctions(t *testing.T) {
	src := itemsSource()
	cases := map[string]string{
		`substring("hello world", 7)`:    "world",
		`substring("hello world", 1, 5)`: "hello",
		`substring("hello", 0, 3)`:       "he", // XPath clamping
		`substring("hello", 99)`:         "",
		`substring("hello", 2, 0)`:       "",
		`upper-case("MixedCase")`:        "MIXEDCASE",
		`lower-case("MixedCase")`:        "mixedcase",
		`normalize-space("  a   b  c ")`: "a b c",
		`round(2.5)`:                     "3",
		`round(2.4)`:                     "2",
		`floor(2.9)`:                     "2",
		`ceiling(2.1)`:                   "3",
		`abs(0 - 5)`:                     "5",
	}
	for q, want := range cases {
		got := evalStrings(t, src, q)
		if len(got) != 1 || got[0] != want {
			t.Errorf("%s = %v, want %q", q, got, want)
		}
	}
}

func TestNewFunctionErrors(t *testing.T) {
	src := itemsSource()
	bad := []string{
		`substring("x")`,
		`substring("x", "a")`,
		`upper-case()`,
		`round("nan-ish")`,
	}
	for _, q := range bad {
		if _, err := EvalQuery(q, src); err == nil {
			t.Errorf("%s accepted", q)
		}
	}
}
