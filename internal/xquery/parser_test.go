package xquery

import (
	"reflect"
	"testing"

	"partix/internal/xmltree"
)

func TestParseFLWORShape(t *testing.T) {
	e := MustParse(`for $i in collection("items")/Item where $i/Section = "CD" return $i/Name`)
	f, ok := e.(*FLWOR)
	if !ok {
		t.Fatalf("parsed %T", e)
	}
	if len(f.Clauses) != 1 || f.Clauses[0].Let || f.Clauses[0].Var != "i" {
		t.Fatalf("clauses: %+v", f.Clauses)
	}
	if f.Where == nil || f.Return == nil {
		t.Fatal("missing where/return")
	}
	p, ok := f.Clauses[0].In.(*PathExpr)
	if !ok {
		t.Fatalf("binding is %T", f.Clauses[0].In)
	}
	if _, ok := p.Source.(*CollectionCall); !ok {
		t.Fatalf("source is %T", p.Source)
	}
	if len(p.Steps) != 1 || p.Steps[0].Name != "Item" {
		t.Fatalf("steps: %+v", p.Steps)
	}
}

func TestParseMultiClause(t *testing.T) {
	e := MustParse(`for $a in collection("x")/a, $b in $a/b let $c := count($b) return $c`)
	f := e.(*FLWOR)
	if len(f.Clauses) != 3 {
		t.Fatalf("clauses = %d", len(f.Clauses))
	}
	if f.Clauses[0].Let || f.Clauses[1].Let || !f.Clauses[2].Let {
		t.Fatal("let flags wrong")
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	// or < and < comparison < additive < multiplicative
	e := MustParse(`1 = 1 and 2 = 2 or 3 = 3`)
	b := e.(*Binary)
	if b.Op != OpOr {
		t.Fatalf("top op = %v", b.Op)
	}
	if b.Left.(*Binary).Op != OpAnd {
		t.Fatalf("left op = %v", b.Left.(*Binary).Op)
	}
	e2 := MustParse(`1 + 2 * 3 = 7`)
	if e2.(*Binary).Op != OpEq {
		t.Fatal("comparison should be top")
	}
	if e2.(*Binary).Left.(*Binary).Op != OpAdd {
		t.Fatal("additive should be under comparison")
	}
}

func TestParseStepKinds(t *testing.T) {
	e := MustParse(`doc("d")/a//b/@c`)
	p := e.(*PathExpr)
	if len(p.Steps) != 3 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	if p.Steps[0].Descendant || !p.Steps[1].Descendant {
		t.Fatal("descendant flags wrong")
	}
	if !p.Steps[2].Attr || p.Steps[2].Name != "c" {
		t.Fatal("attribute step wrong")
	}

	e = MustParse(`doc("d")/a/text()`)
	if !e.(*PathExpr).Steps[1].Text {
		t.Fatal("text() step not recognized")
	}

	e = MustParse(`doc("d")/*/b`)
	if e.(*PathExpr).Steps[0].Name != "*" {
		t.Fatal("wildcard step wrong")
	}
}

func TestParseStepPredicates(t *testing.T) {
	e := MustParse(`collection("c")/Item[Section = "CD"][2]/Name`)
	p := e.(*PathExpr)
	if len(p.Steps[0].Preds) != 2 {
		t.Fatalf("preds = %d", len(p.Steps[0].Preds))
	}
	if _, ok := p.Steps[0].Preds[1].(*NumberLit); !ok {
		t.Fatal("positional predicate not numeric literal")
	}
}

func TestParseConstructor(t *testing.T) {
	e := MustParse(`<r a="1" b="{count(())}"><x>lit</x>{1 + 2}</r>`)
	c := e.(*ElementCtor)
	if c.Name != "r" || len(c.Attrs) != 2 || len(c.Children) != 2 {
		t.Fatalf("ctor: %+v", c)
	}
	if _, ok := c.Attrs[0].Value.(*StringLit); !ok {
		t.Fatal("literal attribute should be StringLit")
	}
	if _, ok := c.Attrs[1].Value.(*FuncCall); !ok {
		t.Fatalf("embedded attribute is %T", c.Attrs[1].Value)
	}
	inner := c.Children[0].(*ElementCtor)
	if inner.Name != "x" || len(inner.Children) != 1 {
		t.Fatalf("inner: %+v", inner)
	}
	if _, ok := c.Children[1].(*Binary); !ok {
		t.Fatalf("embed is %T", c.Children[1])
	}
}

func TestParseSelfClosingConstructor(t *testing.T) {
	e := MustParse(`<empty a="v"/>`)
	c := e.(*ElementCtor)
	if c.Name != "empty" || len(c.Children) != 0 || len(c.Attrs) != 1 {
		t.Fatalf("ctor: %+v", c)
	}
}

func TestParseComments(t *testing.T) {
	e := MustParse(`(: outer (: nested :) comment :) 1 + (: mid :) 2`)
	if e.(*Binary).Op != OpAdd {
		t.Fatal("comment parsing broke expression")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`for`,
		`for $x return 1`,
		`for x in (1) return x`,
		`let $x = 1 return $x`,       // = instead of :=
		`for $x in (1) where return`, // missing condition
		`collection(name)`,           // non-literal collection
		`doc()`,
		`collection("a", "b")`,
		`1 +`,
		`(1, 2`,
		`<a>`,           // unterminated
		`<a></b>`,       // mismatched
		`<a x=5/>`,      // unquoted attribute
		`$x[`,           // dangling bracket
		`count(1`,       // unterminated call
		`1 ! 2`,         // lone !
		`"unterminated`, // string
		`1 : 2`,         // lone :
		`foo bar`,       // trailing input
		`(: unterminated comment`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("%q: accepted", q)
		}
	}
}

func TestCollectionNames(t *testing.T) {
	e := MustParse(`for $a in collection("one")/x, $b in collection("two")/y
	  where count(collection("one")/x) > 0 return 1`)
	got := CollectionNames(e)
	if !reflect.DeepEqual(got, []string{"one", "two"}) {
		t.Fatalf("got %v", got)
	}
}

func TestRewriteCollections(t *testing.T) {
	orig := MustParse(`for $i in collection("items")/Item
	  where contains($i/Description, "good") and count(collection("items")/Item) > 0
	  return <r>{$i/Code, collection("other")/X}</r>`)
	re := RewriteCollections(orig, map[string]string{"items": "items_f1"})
	got := CollectionNames(re)
	if !reflect.DeepEqual(got, []string{"items_f1", "other"}) {
		t.Fatalf("renamed collections: %v", got)
	}
	// The original AST is untouched.
	if !reflect.DeepEqual(CollectionNames(orig), []string{"items", "other"}) {
		t.Fatal("rewrite mutated the original AST")
	}
	// The rewritten query evaluates against the renamed collection.
	src := itemsSource()
	src.collections["items_f1"] = src.collections["items"]
	src.collections["other"] = xmltree.NewCollection("other")
	res, err := Eval(re, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2", len(res))
	}
}
