package exec

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"partix/internal/xmltree"
	"partix/internal/xquery"
)

// memSource is an in-memory Source; it counts scanned documents so tests
// can assert early termination.
type memSource struct {
	cols    map[string]*xmltree.Collection
	scanned int
}

func newMemSource(cols ...*xmltree.Collection) *memSource {
	s := &memSource{cols: map[string]*xmltree.Collection{}}
	for _, c := range cols {
		s.cols[c.Name] = c
	}
	return s
}

func (s *memSource) Docs(name string, _ *xquery.Hint, fn func(*xmltree.Document) error) error {
	c, ok := s.cols[name]
	if !ok {
		return fmt.Errorf("no collection %q", name)
	}
	for _, d := range c.Docs {
		s.scanned++
		if err := fn(d); err != nil {
			return err
		}
	}
	return nil
}

func (s *memSource) Doc(name string) (*xmltree.Document, error) {
	for _, c := range s.cols {
		for _, d := range c.Docs {
			if d.Name == name {
				return d, nil
			}
		}
	}
	return nil, fmt.Errorf("no document %q", name)
}

// itemsSource builds the store-catalog shape the Figure 7 workloads query.
func itemsSource() *memSource {
	mk := func(i int, code, section, desc string, pics int) *xmltree.Document {
		xml := fmt.Sprintf(`<Item id="%d"><Code>%s</Code><Name>name-%s</Name><Description>%s</Description><Section>%s</Section>`,
			i, code, code, desc, section)
		if pics > 0 {
			xml += "<PictureList>"
			for p := 0; p < pics; p++ {
				xml += fmt.Sprintf("<Picture><Name>p%d</Name></Picture>", p)
			}
			xml += "</PictureList>"
		}
		if i%2 == 0 {
			xml += "<Characteristics>yes</Characteristics>"
		}
		xml += `</Item>`
		return xmltree.MustParseString(fmt.Sprintf("i%d", i), xml)
	}
	return newMemSource(xmltree.NewCollection("items",
		mk(1, "I1", "CD", "a good disc", 2),
		mk(2, "I2", "DVD", "a fine movie", 0),
		mk(3, "I3", "CD", "plain disc", 1),
		mk(4, "I4", "Book", "good reading", 0),
		mk(5, "I5", "Book", "an excellent story", 3),
		mk(6, "I6", "DVD", "excellent cut", 0),
	))
}

// sameSeq compares interpreter and compiled results. Nodes compare by
// pointer (both paths select from the same trees) except the synthetic
// #document wrapper, which each run allocates fresh.
func sameSeq(a, b xquery.Seq) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		an, aIsNode := a[i].(*xmltree.Node)
		bn, bIsNode := b[i].(*xmltree.Node)
		if aIsNode != bIsNode {
			return false
		}
		if aIsNode {
			if an == bn {
				continue
			}
			if an.Name != bn.Name || an.Kind != bn.Kind || an.Text() != bn.Text() {
				return false
			}
			continue
		}
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func seqString(s xquery.Seq) string {
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = xquery.ItemString(it)
	}
	return strings.Join(parts, " ")
}

// runBoth evaluates query through the interpreter and the compiled
// pipeline and requires identical results (or identical error presence).
// mustCompile pins queries that the compiled subset must cover natively.
func runBoth(t *testing.T, src *memSource, query string, mustCompile bool) {
	t.Helper()
	e, err := xquery.Parse(query)
	if err != nil {
		t.Fatalf("parse %s: %v", query, err)
	}
	prog, ok := Compile(e)
	if !ok {
		if mustCompile {
			t.Fatalf("Compile declined %s", query)
		}
		return
	}
	want, wantErr := xquery.Eval(e, src)
	got, gotErr := prog.Run(src)
	if (wantErr != nil) != (gotErr != nil) {
		t.Fatalf("%s: interpreter err=%v, compiled err=%v", query, wantErr, gotErr)
	}
	if wantErr != nil {
		if wantErr.Error() != gotErr.Error() {
			t.Fatalf("%s: error mismatch\ninterp:   %v\ncompiled: %v", query, wantErr, gotErr)
		}
		return
	}
	if !sameSeq(want, got) {
		t.Fatalf("%s:\ninterp   (%d): %s\ncompiled (%d): %s", query, len(want), seqString(want), len(got), seqString(got))
	}
	// Stream must deliver the same items in the same order.
	var streamed xquery.Seq
	total, err := prog.Stream(src, func(items xquery.Seq) error {
		streamed = append(streamed, items...)
		return nil
	})
	if err != nil {
		t.Fatalf("%s: Stream: %v", query, err)
	}
	if total != len(streamed) || !sameSeq(want, streamed) {
		t.Fatalf("%s: Stream mismatch: total=%d, items (%d): %s", query, total, len(streamed), seqString(streamed))
	}
}

// TestDifferentialFixed pins the compiled subset on hand-picked queries:
// every Figure 7 workload shape plus the edge shapes the executor handles
// specially (positional predicates, wrapper escape, order-by, let
// bindings, fallback sub-expressions, atomization errors).
func TestDifferentialFixed(t *testing.T) {
	src := itemsSource()
	native := []string{
		// Figure 7 / workload shapes.
		`for $i in collection("items")/Item where $i/Section = "CD" return $i/Name`,
		`for $i in collection("items")/Item where $i/Code = "I2" return $i`,
		`for $i in collection("items")/Item where exists($i/Characteristics) return $i/Code`,
		`for $i in collection("items")/Item where contains($i/Description, "good") return $i/Code`,
		`for $i in collection("items")/Item where $i/Section = "Book" and contains($i/Description, "excellent") return $i/Name`,
		`count(for $i in collection("items")/Item where $i/Section = "CD" return $i)`,
		`count(for $i in collection("items")/Item where contains($i/Description, "good") return $i)`,
		`sum(for $i in collection("items")/Item return count($i/PictureList/Picture))`,
		`for $i in collection("items")/Item, $p in $i/PictureList/Picture return $p/Name`,
		// Bare paths, predicates, attributes, descendants.
		`collection("items")/Item/Code`,
		`collection("items")/Item[Section = "CD"]/Code`,
		`collection("items")/Item[Section = "DVD"]/@id`,
		`collection("items")/Item/PictureList/Picture[2]/Name`,
		`collection("items")/Item[PictureList]/Code`,
		`collection("items")//Picture/Name`,
		`collection("items")//*`,
		`collection("items")`,
		`collection("items")/Item/Section/text()`,
		`collection("items")/Item[not(PictureList)]/Code`,
		`collection("items")/Item[Section != "CD"]/Code`,
		// Comparisons both directions, numeric and string.
		`for $i in collection("items")/Item where $i/@id < 3 return $i/Code`,
		`for $i in collection("items")/Item where 3 <= $i/@id return $i/Code`,
		`for $i in collection("items")/Item where starts-with($i/Description, "a ") return $i/Code`,
		`for $i in collection("items")/Item where ends-with($i/Section, "D") return $i/Code`,
		`for $i in collection("items")/Item where empty($i/PictureList) return $i/Code`,
		`for $i in collection("items")/Item where $i/PictureList return $i/Code`,
		`for $i in collection("items")/Item where not($i/Section = "CD") return $i/Code`,
		// Order by, both directions, numeric and string keys, missing keys.
		`for $i in collection("items")/Item order by $i/Code descending return $i/Code`,
		`for $i in collection("items")/Item order by $i/@id descending return $i/Code`,
		`for $i in collection("items")/Item order by count($i/PictureList/Picture) return $i/Code`,
		`for $i in collection("items")/Item order by $i/Characteristics return $i/Code`,
		`for $i in collection("items")/Item order by $i/Section, $i/Code descending return $i/Code`,
		// Let bindings, literals, count projections.
		`for $i in collection("items")/Item let $c := $i/Code return $c`,
		`for $i in collection("items")/Item let $n := count($i/PictureList/Picture) return $n`,
		`for $i in collection("items")/Item return count($i/PictureList/Picture)`,
		`for $i in collection("items")/Item where $i/Section = "CD" return "hit"`,
		// Folds over streams.
		`count(collection("items")/Item)`,
		`exists(for $i in collection("items")/Item where $i/Section = "CD" return $i)`,
		`empty(for $i in collection("items")/Item where $i/Section = "Vinyl" return $i)`,
		`sum(for $i in collection("items")/Item return $i/@id)`,
		`avg(for $i in collection("items")/Item return $i/@id)`,
		`min(for $i in collection("items")/Item return $i/@id)`,
		`max(for $i in collection("items")/Item return $i/@id)`,
		// Empty-sequence edges.
		`for $i in collection("items")/Missing return $i`,
		`sum(for $i in collection("items")/Missing return $i)`,
		`avg(for $i in collection("items")/Missing return $i)`,
		`min(for $i in collection("items")/Missing return $i)`,
		`count(collection("items")/Item[Section = "Vinyl"])`,
	}
	for _, q := range native {
		t.Run(q, func(t *testing.T) { runBoth(t, src, q, true) })
	}
	// Shapes that exercise the per-tuple interpreter fallback inside a
	// compiled pipeline (still must produce interpreter-identical output).
	fallback := []string{
		`for $i in collection("items")/Item where count($i/PictureList/Picture) > 1 return $i/Code`,
		`for $i in collection("items")/Item where $i/Section = "CD" or $i/Section = "Book" return $i/Code`,
		`for $i in collection("items")/Item return exists($i/PictureList)`,
		`for $i in collection("items")/Item let $s := $i/Section where $s = "CD" return $i/Code`,
		`for $i in collection("items")/Item order by $i/@id return (for $p in $i/PictureList/Picture return $p/Name)`,
		// Aggregation over a non-numeric value must error identically.
		`sum(for $i in collection("items")/Item return $i/Section)`,
	}
	for _, q := range fallback {
		t.Run(q, func(t *testing.T) { runBoth(t, src, q, true) })
	}
}

// TestCompileDeclines pins top-level shapes outside the compiled subset:
// the engine must fall back to the interpreter for these.
func TestCompileDeclines(t *testing.T) {
	declined := []string{
		`"hello"`,
		`doc("i1")/Item/Code`,
		`count(doc("i1")/Item)`,
		`for $i in doc("i1")/Item return $i`,
		`count(collection("items")/Item) + 1`,
		`for $i in collection("items")/Item for $i in $i/PictureList/Picture return $i`, // shadowing
	}
	for _, q := range declined {
		e, err := xquery.Parse(q)
		if err != nil {
			t.Fatalf("parse %s: %v", q, err)
		}
		if _, ok := Compile(e); ok {
			t.Errorf("Compile accepted %s; want decline", q)
		}
	}
}

// TestStreamChunksBounded verifies the executor yields bounded frames: a
// scan over many documents with multiple items each must never hand the
// consumer a chunk much larger than yieldChunk, no matter the total.
func TestStreamChunksBounded(t *testing.T) {
	var docs []*xmltree.Document
	for i := 0; i < 400; i++ {
		docs = append(docs, xmltree.MustParseString(fmt.Sprintf("d%d", i),
			fmt.Sprintf("<r><v>%d</v><v>%d</v><v>%d</v></r>", i, i+1, i+2)))
	}
	src := newMemSource(xmltree.NewCollection("c", docs...))
	e, err := xquery.Parse(`collection("c")/r/v`)
	if err != nil {
		t.Fatal(err)
	}
	prog, ok := Compile(e)
	if !ok {
		t.Fatal("Compile declined")
	}
	chunks, total := 0, 0
	n, err := prog.Stream(src, func(items xquery.Seq) error {
		if len(items) == 0 {
			t.Fatal("empty chunk yielded")
		}
		if len(items) > yieldChunk+8 {
			t.Fatalf("chunk of %d items exceeds bound", len(items))
		}
		chunks++
		total += len(items)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1200 || total != 1200 {
		t.Fatalf("streamed %d/%d items, want 1200", n, total)
	}
	if chunks < 4 {
		t.Fatalf("result arrived in %d chunks; want several bounded frames", chunks)
	}
}

// TestExistsStopsScan verifies the decider folds cancel the collection
// scan at the first witness instead of visiting every document.
func TestExistsStopsScan(t *testing.T) {
	var docs []*xmltree.Document
	for i := 0; i < 100; i++ {
		docs = append(docs, xmltree.MustParseString(fmt.Sprintf("d%d", i),
			fmt.Sprintf("<r><v>%d</v></r>", i)))
	}
	src := newMemSource(xmltree.NewCollection("c", docs...))
	e, err := xquery.Parse(`exists(for $r in collection("c")/r where $r/v = 3 return $r)`)
	if err != nil {
		t.Fatal(err)
	}
	prog, ok := Compile(e)
	if !ok {
		t.Fatal("Compile declined")
	}
	res, err := prog.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0] != true {
		t.Fatalf("got %v", res)
	}
	// Batching may buffer up to a full tuple batch before the fold sees
	// the witness, but the scan must stop well short of all 100 docs.
	if src.scanned > 2+tupleBatchSize/4 {
		t.Fatalf("scanned %d docs; want early stop", src.scanned)
	}
}

// --- randomized differential testing ---

var elemNames = []string{"a", "b", "c", "d"}
var leafValues = []string{"1", "2", "10", "-3", "2.5", "x", "y", "good stuff", "", "CD"}

func randDoc(r *rand.Rand, name string) *xmltree.Document {
	var sb strings.Builder
	sb.WriteString("<r")
	if r.Intn(2) == 0 {
		fmt.Fprintf(&sb, ` id="%d"`, r.Intn(20))
	}
	sb.WriteString(">")
	randChildren(r, &sb, 0)
	sb.WriteString("</r>")
	return xmltree.MustParseString(name, sb.String())
}

func randChildren(r *rand.Rand, sb *strings.Builder, depth int) {
	n := r.Intn(4)
	for i := 0; i < n; i++ {
		name := elemNames[r.Intn(len(elemNames))]
		fmt.Fprintf(sb, "<%s", name)
		if r.Intn(4) == 0 {
			fmt.Fprintf(sb, ` id="%d"`, r.Intn(20))
		}
		sb.WriteString(">")
		if depth < 2 && r.Intn(3) == 0 {
			randChildren(r, sb, depth+1)
		} else {
			sb.WriteString(leafValues[r.Intn(len(leafValues))])
		}
		fmt.Fprintf(sb, "</%s>", name)
	}
}

func randLit(r *rand.Rand) string {
	if r.Intn(2) == 0 {
		return fmt.Sprintf("%d", r.Intn(12)-2)
	}
	return fmt.Sprintf("%q", leafValues[r.Intn(len(leafValues))])
}

func randOp(r *rand.Rand) string {
	return []string{"=", "!=", "<", "<=", ">", ">="}[r.Intn(6)]
}

func randStepName(r *rand.Rand) string {
	if r.Intn(8) == 0 {
		return "*"
	}
	return elemNames[r.Intn(len(elemNames))]
}

// randRel builds a short relative path like a/b or a//b/@id. The first
// step is always a concrete name: the parser rejects a leading *.
func randRel(r *rand.Rand) string {
	parts := []string{elemNames[r.Intn(len(elemNames))]}
	if r.Intn(2) == 0 {
		sep := "/"
		if r.Intn(4) == 0 {
			sep = "//"
		}
		next := randStepName(r)
		if r.Intn(6) == 0 {
			next = "@id"
		}
		parts = append(parts, sep+next)
	}
	return strings.Join(parts, "")
}

func randPath(r *rand.Rand) string {
	p := `collection("c")`
	if r.Intn(8) == 0 {
		return p // bare collection: wrapper escape
	}
	if r.Intn(4) == 0 {
		p += "//" + randStepName(r)
	} else {
		p += "/r"
	}
	nsteps := r.Intn(2)
	for i := 0; i < nsteps; i++ {
		p += "/" + randStepName(r)
	}
	if r.Intn(3) == 0 {
		switch r.Intn(4) {
		case 0:
			p += fmt.Sprintf("[%d]", r.Intn(3)+1)
		case 1:
			p += fmt.Sprintf("[%s %s %s]", randRel(r), randOp(r), randLit(r))
		case 2:
			p += fmt.Sprintf("[%s]", randRel(r))
		default:
			p += fmt.Sprintf("[not(%s)]", randRel(r))
		}
	}
	return p
}

func randWhereTerm(r *rand.Rand, v string) string {
	switch r.Intn(7) {
	case 0:
		return fmt.Sprintf("$%s/%s %s %s", v, randRel(r), randOp(r), randLit(r))
	case 1:
		return fmt.Sprintf("%s %s $%s/%s", randLit(r), randOp(r), v, randRel(r))
	case 2:
		return fmt.Sprintf("contains($%s/%s, %q)", v, randRel(r), leafValues[r.Intn(len(leafValues))])
	case 3:
		return fmt.Sprintf("exists($%s/%s)", v, randRel(r))
	case 4:
		return fmt.Sprintf("empty($%s/%s)", v, randRel(r))
	case 5:
		return fmt.Sprintf("$%s/%s", v, randRel(r))
	default:
		// Interpreter-fallback shape: count comparison.
		return fmt.Sprintf("count($%s/%s) %s %d", v, randRel(r), randOp(r), r.Intn(3))
	}
}

func randReturn(r *rand.Rand, v string) string {
	switch r.Intn(5) {
	case 0:
		return "$" + v
	case 1:
		return fmt.Sprintf("$%s/%s", v, randRel(r))
	case 2:
		return fmt.Sprintf("count($%s/%s)", v, randRel(r))
	case 3:
		return randLit(r)
	default:
		return fmt.Sprintf("$%s/%s/text()", v, randStepName(r))
	}
}

func randQuery(r *rand.Rand) string {
	switch r.Intn(4) {
	case 0: // bare path
		return randPath(r)
	case 1: // fold over a path or FLWOR
		fold := []string{"count", "exists", "empty", "sum", "min", "max", "avg"}[r.Intn(7)]
		if r.Intn(2) == 0 {
			return fmt.Sprintf("%s(%s)", fold, randPath(r))
		}
		return fmt.Sprintf("%s(%s)", fold, randFLWOR(r))
	default:
		return randFLWOR(r)
	}
}

func randFLWOR(r *rand.Rand) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "for $x in %s", randPath(r))
	vars := []string{"x"}
	if r.Intn(4) == 0 {
		fmt.Fprintf(&sb, ", $y in $x/%s", randRel(r))
		vars = append(vars, "y")
	}
	if r.Intn(5) == 0 {
		fmt.Fprintf(&sb, " let $l := $x/%s", randRel(r))
	}
	if r.Intn(2) == 0 {
		v := vars[r.Intn(len(vars))]
		fmt.Fprintf(&sb, " where %s", randWhereTerm(r, v))
		if r.Intn(3) == 0 {
			fmt.Fprintf(&sb, " and %s", randWhereTerm(r, vars[r.Intn(len(vars))]))
		}
	}
	if r.Intn(3) == 0 {
		v := vars[r.Intn(len(vars))]
		desc := ""
		if r.Intn(2) == 0 {
			desc = " descending"
		}
		fmt.Fprintf(&sb, " order by $%s/%s%s", v, randRel(r), desc)
	}
	fmt.Fprintf(&sb, " return %s", randReturn(r, vars[r.Intn(len(vars))]))
	return sb.String()
}

// TestDifferentialRandom fuzzes generated FLWOR/path queries over
// generated documents through both the compiled pipeline and the
// interpreter; results (and errors) must be identical. This is the
// executor's semantic safety net — the interpreter is the oracle.
func TestDifferentialRandom(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 60
	}
	compiled := 0
	for seed := 0; seed < iters; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		var docs []*xmltree.Document
		for i, n := 0, 2+r.Intn(5); i < n; i++ {
			docs = append(docs, randDoc(r, fmt.Sprintf("d%d", i)))
		}
		src := newMemSource(xmltree.NewCollection("c", docs...))
		query := randQuery(r)
		e, err := xquery.Parse(query)
		if err != nil {
			t.Fatalf("seed %d: generated unparsable query %s: %v", seed, query, err)
		}
		prog, ok := Compile(e)
		if !ok {
			continue
		}
		compiled++
		want, wantErr := xquery.Eval(e, src)
		got, gotErr := prog.Run(src)
		if (wantErr != nil) != (gotErr != nil) {
			t.Fatalf("seed %d: %s\ninterp err=%v compiled err=%v", seed, query, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if !sameSeq(want, got) {
			t.Fatalf("seed %d: %s\ninterp   (%d): %s\ncompiled (%d): %s",
				seed, query, len(want), seqString(want), len(got), seqString(got))
		}
	}
	// The generator must keep most shapes inside the compiled subset, or
	// this test stops testing the executor.
	if compiled < iters/2 {
		t.Fatalf("only %d/%d generated queries compiled natively", compiled, iters)
	}
}

// TestAllocsScanFilterProject is the allocation-regression gate for the
// hot scan → filter → project path: steady-state execution must not
// allocate per document (scratch buffers are reused; only result growth
// allocates, and this query rejects every document).
func TestAllocsScanFilterProject(t *testing.T) {
	const nDocs = 512
	var docs []*xmltree.Document
	for i := 0; i < nDocs; i++ {
		docs = append(docs, xmltree.MustParseString(fmt.Sprintf("d%d", i),
			fmt.Sprintf(`<Item><Code>I%d</Code><Section>CD</Section></Item>`, i)))
	}
	src := newMemSource(xmltree.NewCollection("items", docs...))
	e, err := xquery.Parse(`for $i in collection("items")/Item where $i/Section = "Vinyl" return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	prog, ok := Compile(e)
	if !ok {
		t.Fatal("Compile declined")
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := prog.Run(src); err != nil {
			t.Fatal(err)
		}
	})
	perDoc := allocs / nDocs
	// One executor + scratch set per run amortizes over 512 docs; the
	// per-document cost must be far below one allocation.
	if perDoc > 0.25 {
		t.Fatalf("scan→filter→project allocates %.2f allocs/doc (%.0f per run); regression over the pinned budget", perDoc, allocs)
	}
}
