// Package exec compiles parsed FLWOR/path queries into a push-based,
// batch-at-a-time operator pipeline: scan → path-step → predicate-filter →
// bind → order-by → project. The pipeline pulls documents from the
// engine's decode worker pool (through xquery.Source) and pushes result
// items to a yield callback in bounded batches, so memory stays flat on
// arbitrarily large results instead of materializing a full Seq. Where
// possible, predicate evaluation is vectorized: per tuple batch the
// predicate's value column is gathered into reusable scratch buffers and
// compared against a literal prepared once at compile time, through the
// same shared comparison code (xquery/compare.go) the interpreter uses.
//
// Compile is deliberately partial: any expression shape outside the
// compiled subset either falls back per-tuple to the tree-walking
// interpreter (xquery.EvalWith) for that sub-expression, or — for
// top-level shapes the pipeline cannot express — declines entirely, in
// which case the engine runs xquery.Eval. The interpreter remains the
// semantic oracle; the compiled pipeline must be observationally
// identical (see the randomized differential test).
package exec

import (
	"partix/internal/xquery"
)

// foldKind says how the pipeline's item stream is consumed: passed
// through (foldNone) or folded into a single aggregate/decider item.
type foldKind uint8

const (
	foldNone foldKind = iota
	foldCount
	foldSum
	foldAvg
	foldMin
	foldMax
	foldExists
	foldEmpty
)

var foldNames = map[foldKind]string{
	foldSum: "sum", foldAvg: "avg", foldMin: "min", foldMax: "max",
}

// Program is a compiled query: a streaming pipeline plus an optional fold
// and the index-only probes the interpreter would have tried first.
type Program struct {
	fold        foldKind
	countProbe  *xquery.PathProbe // answers foldCount from indexes when the source can
	existsProbe *xquery.PathProbe // answers foldExists/foldEmpty from indexes
	pipe        *pipeline
}

// Streams reports whether the program produces an item stream (no fold):
// the result can be arbitrarily large and is worth delivering in frames.
func (p *Program) Streams() bool { return p.fold == foldNone }

// Ordered reports whether the program ends in an order-by, the one
// blocking operator: all qualifying tuples are materialized before the
// sort, so memory is proportional to the result for such queries.
func (p *Program) Ordered() bool { return p.pipe != nil && len(p.pipe.orderBy) > 0 }

// pipeline is the compiled operator chain over one collection scan.
type pipeline struct {
	coll         string
	hint         *xquery.Hint // candidate pruning for the scan, from ExtractHints
	scanSteps    []step       // binding path of the driving for-clause
	freshWrapper bool         // first step may select the #document wrapper itself
	clauses      []boundClause
	filter       []filterTerm
	orderBy      []orderKey
	ret          valueExpr
	stride       int      // slots per tuple
	varNames     []string // slot → variable name; "" for the synthetic path binding
	letSlot      []bool   // slot → bound by a let-clause (holds a Seq, not an Item)
}

// step is one compiled location step.
type step struct {
	descendant bool
	name       string
	attr, text bool
	preds      []pred
}

// predKind discriminates compiled step predicates.
type predKind uint8

const (
	predPositional predKind = iota // [2] — literal number selects by position
	predTerm                       // native term relative to the context node
	predFallback                   // interpreted via xquery.EvalWith
)

type pred struct {
	kind     predKind
	pos      int
	term     *term
	fallback xquery.Expr
}

// termKind discriminates native filter terms.
type termKind uint8

const (
	termCmp    termKind = iota // path CMP literal (general comparison)
	termString                 // contains/starts-with/ends-with(path, literal)
	termExists                 // path existence (bare path, exists(), not empty())
)

// strFn selects the string predicate function of a termString.
type strFn uint8

const (
	fnContains strFn = iota
	fnStartsWith
	fnEndsWith
)

// term is one native predicate: a pred-free relative path from a base
// (a tuple slot, or the context node for step predicates) tested against
// a literal prepared once at compile time. Terms are existential — any
// node at the path satisfying the test satisfies the term — so the
// vectorized evaluation may skip duplicate suppression: duplicates can
// never flip an existential result.
type term struct {
	kind   termKind
	slot   int // base slot; ctxSlot for step predicates
	rel    []step
	op     xquery.BinaryOp // termCmp
	lit    xquery.Operand  // termCmp: literal prepared once per plan
	fn     strFn           // termString
	needle string          // termString
	negate bool
}

// ctxSlot marks a term whose base is the step-predicate context node.
const ctxSlot = -1

type filterTerm struct {
	native   *term
	fallback xquery.Expr // interpreted per tuple when native is nil
}

type orderKey struct {
	key  valueExpr
	desc bool
}

// veKind discriminates compiled value expressions (clause sources, return
// and order-by key programs).
type veKind uint8

const (
	veSlot     veKind = iota // $v
	vePath                   // $v/rel/path (step predicates allowed)
	veLit                    // string/number literal
	veCount                  // count($v/rel) — the VQ10 inner-aggregate shape
	veFallback               // interpreted via xquery.EvalWith
)

type valueExpr struct {
	kind veKind
	slot int
	rel  []step
	lit  xquery.Item
	expr xquery.Expr
}

// boundClause is one for/let clause after the driving scan clause.
type boundClause struct {
	let  bool
	slot int
	src  valueExpr
}

// Compile translates a parsed query into a Program, or reports ok=false
// when the top-level shape is outside the compiled subset (the caller
// then evaluates with the interpreter).
func Compile(e xquery.Expr) (*Program, bool) {
	hints := xquery.ExtractHints(e)
	switch x := e.(type) {
	case *xquery.FuncCall:
		return compileFold(x, hints)
	case *xquery.FLWOR, *xquery.PathExpr, *xquery.CollectionCall:
		pipe, ok := compileStream(e, hints)
		if !ok {
			return nil, false
		}
		return &Program{fold: foldNone, pipe: pipe}, true
	}
	return nil, false
}

// compileFold handles the aggregate/decider wrappers around a stream:
// count, sum, avg, min, max, exists, empty. The index-only probes the
// interpreter short-circuits with are extracted here and tried first at
// run time, so the compiled path never decodes documents the interpreter
// would have answered from the path summary.
func compileFold(f *xquery.FuncCall, hints map[string]*xquery.Hint) (*Program, bool) {
	if len(f.Args) != 1 {
		return nil, false
	}
	var fold foldKind
	switch f.Name {
	case "count":
		fold = foldCount
	case "sum":
		fold = foldSum
	case "avg":
		fold = foldAvg
	case "min":
		fold = foldMin
	case "max":
		fold = foldMax
	case "exists":
		fold = foldExists
	case "empty":
		fold = foldEmpty
	default:
		return nil, false
	}
	pipe, ok := compileStream(f.Args[0], hints)
	if !ok {
		return nil, false
	}
	p := &Program{fold: fold, pipe: pipe}
	switch fold {
	case foldCount:
		p.countProbe = xquery.ExtractCountProbe(f.Args[0])
	case foldExists, foldEmpty:
		p.existsProbe = xquery.ExtractExistsProbe(f.Args[0])
	}
	return p, true
}

// compileStream compiles an item-producing expression: a FLWOR whose
// driving clause scans a collection, or a collection-rooted path.
func compileStream(e xquery.Expr, hints map[string]*xquery.Hint) (*pipeline, bool) {
	if f, isFLWOR := e.(*xquery.FLWOR); isFLWOR {
		return compileFLWOR(f, hints)
	}
	coll, steps, ok := xquery.CollectionRooted(e)
	if !ok {
		return nil, false
	}
	c := &compiler{slotOf: map[string]int{}}
	scan, ok := c.compileSteps(steps)
	if !ok {
		return nil, false
	}
	return &pipeline{
		coll:         coll,
		hint:         hints[coll],
		scanSteps:    scan,
		freshWrapper: wrapperReachable(scan),
		ret:          valueExpr{kind: veSlot, slot: 0},
		stride:       1,
		varNames:     []string{""},
		letSlot:      []bool{false},
	}, true
}

// compiler tracks variable slots while compiling one FLWOR.
type compiler struct {
	slotOf   map[string]int
	varNames []string
	letSlot  []bool
}

func (c *compiler) addSlot(name string, let bool) (int, bool) {
	if name != "" {
		if _, dup := c.slotOf[name]; dup {
			return 0, false // shadowing: the interpreter's restore semantics; decline
		}
		c.slotOf[name] = len(c.varNames)
	}
	c.varNames = append(c.varNames, name)
	c.letSlot = append(c.letSlot, let)
	return len(c.varNames) - 1, true
}

func compileFLWOR(f *xquery.FLWOR, hints map[string]*xquery.Hint) (*pipeline, bool) {
	if len(f.Clauses) == 0 || f.Clauses[0].Let {
		return nil, false
	}
	coll, rawSteps, ok := xquery.CollectionRooted(f.Clauses[0].In)
	if !ok {
		return nil, false
	}
	c := &compiler{slotOf: map[string]int{}}
	if _, ok := c.addSlot(f.Clauses[0].Var, false); !ok {
		return nil, false
	}
	scan, ok := c.compileSteps(rawSteps)
	if !ok {
		return nil, false
	}
	p := &pipeline{
		coll:         coll,
		hint:         hints[coll],
		scanSteps:    scan,
		freshWrapper: wrapperReachable(scan),
	}
	for _, cl := range f.Clauses[1:] {
		src := c.compileValue(cl.In)
		slot, ok := c.addSlot(cl.Var, cl.Let)
		if !ok {
			return nil, false
		}
		p.clauses = append(p.clauses, boundClause{let: cl.Let, slot: slot, src: src})
	}
	if f.Where != nil {
		conjuncts(f.Where, func(t xquery.Expr) {
			if nt, ok := c.compileTerm(t); ok {
				p.filter = append(p.filter, filterTerm{native: nt})
			} else {
				p.filter = append(p.filter, filterTerm{fallback: t})
			}
		})
	}
	for _, spec := range f.OrderBy {
		p.orderBy = append(p.orderBy, orderKey{key: c.compileValue(spec.Key), desc: spec.Descending})
	}
	p.ret = c.compileValue(f.Return)
	p.stride = len(c.varNames)
	p.varNames = c.varNames
	p.letSlot = c.letSlot
	return p, true
}

// conjuncts calls fn for every term of the top-level AND tree, mirroring
// the hint extractor's decomposition (evaluation order is preserved:
// left-to-right, which matters only for which error surfaces first).
func conjuncts(e xquery.Expr, fn func(xquery.Expr)) {
	if b, ok := e.(*xquery.Binary); ok && b.Op == xquery.OpAnd {
		conjuncts(b.Left, fn)
		conjuncts(b.Right, fn)
		return
	}
	fn(e)
}

// compileSteps converts location steps, compiling each step predicate.
func (c *compiler) compileSteps(raw []xquery.PathStep) ([]step, bool) {
	out := make([]step, 0, len(raw))
	for _, st := range raw {
		s := step{descendant: st.Descendant, name: st.Name, attr: st.Attr, text: st.Text}
		for _, pe := range st.Preds {
			s.preds = append(s.preds, c.compilePred(pe))
		}
		out = append(out, s)
	}
	return out, true
}

func (c *compiler) compilePred(e xquery.Expr) pred {
	if num, ok := e.(*xquery.NumberLit); ok {
		return pred{kind: predPositional, pos: int(num.Value)}
	}
	if t, ok := c.compileCtxTerm(e); ok {
		return pred{kind: predTerm, term: t}
	}
	return pred{kind: predFallback, fallback: e}
}

// compileValue compiles a clause source / return / order-key expression.
// Unsupported shapes become interpreter fallbacks, never a failure.
func (c *compiler) compileValue(e xquery.Expr) valueExpr {
	switch x := e.(type) {
	case *xquery.VarRef:
		if slot, ok := c.slotOf[x.Name]; ok {
			return valueExpr{kind: veSlot, slot: slot}
		}
	case *xquery.StringLit:
		return valueExpr{kind: veLit, lit: x.Value}
	case *xquery.NumberLit:
		return valueExpr{kind: veLit, lit: x.Value}
	case *xquery.PathExpr:
		if slot, rel, ok := c.slotPath(x, true); ok {
			return valueExpr{kind: vePath, slot: slot, rel: rel}
		}
	case *xquery.FuncCall:
		if x.Name == "count" && len(x.Args) == 1 {
			if pe, isPath := x.Args[0].(*xquery.PathExpr); isPath {
				if slot, rel, ok := c.slotPath(pe, true); ok {
					return valueExpr{kind: veCount, slot: slot, rel: rel}
				}
			}
		}
	}
	return valueExpr{kind: veFallback, expr: e}
}

// slotPath recognizes $v/rel paths where $v is a for-bound slot (a single
// node at run time). withPreds permits compiled step predicates; term
// paths require pred-free steps so their vectorized walk stays trivial.
func (c *compiler) slotPath(p *xquery.PathExpr, withPreds bool) (int, []step, bool) {
	v, isVar := p.Source.(*xquery.VarRef)
	if !isVar {
		return 0, nil, false
	}
	slot, known := c.slotOf[v.Name]
	if !known || c.letSlot[slot] {
		return 0, nil, false
	}
	rel, ok := c.relSteps(p.Steps, withPreds)
	if !ok {
		return 0, nil, false
	}
	return slot, rel, true
}

func (c *compiler) relSteps(raw []xquery.PathStep, withPreds bool) ([]step, bool) {
	if !withPreds {
		for _, st := range raw {
			if len(st.Preds) > 0 {
				return nil, false
			}
		}
	}
	return c.compileSteps(raw)
}

// compileTerm compiles one where-conjunct into a native term evaluated
// against tuple slots, or reports ok=false for the interpreter fallback.
func (c *compiler) compileTerm(e xquery.Expr) (*term, bool) {
	return c.compileTermBase(e, c.whereBase)
}

// compileCtxTerm compiles a step predicate relative to the context node.
func (c *compiler) compileCtxTerm(e xquery.Expr) (*term, bool) {
	return c.compileTermBase(e, ctxBase)
}

// baseFn resolves the path side of a term to (slot, relative steps).
type baseFn func(e xquery.Expr) (int, []step, bool)

// whereBase: $v or $v/rel over a for-bound slot.
func (c *compiler) whereBase(e xquery.Expr) (int, []step, bool) {
	switch x := e.(type) {
	case *xquery.VarRef:
		slot, known := c.slotOf[x.Name]
		if !known || c.letSlot[slot] {
			return 0, nil, false
		}
		return slot, nil, true
	case *xquery.PathExpr:
		return c.slotPath(x, false)
	}
	return 0, nil, false
}

// ctxBase: "." or a relative path inside a step predicate.
func ctxBase(e xquery.Expr) (int, []step, bool) {
	switch x := e.(type) {
	case *xquery.ContextItem:
		return ctxSlot, nil, true
	case *xquery.PathExpr:
		if x.Source != nil {
			return 0, nil, false
		}
		c := &compiler{}
		rel, ok := c.relSteps(x.Steps, false)
		if !ok {
			return 0, nil, false
		}
		return ctxSlot, rel, true
	}
	return 0, nil, false
}

func (c *compiler) compileTermBase(e xquery.Expr, base baseFn) (*term, bool) {
	switch x := e.(type) {
	case *xquery.Binary:
		switch x.Op {
		case xquery.OpEq, xquery.OpNe, xquery.OpLt, xquery.OpLe, xquery.OpGt, xquery.OpGe:
		default:
			return nil, false
		}
		op := x.Op
		pathSide, litSide := x.Left, x.Right
		if _, isLit := literalOf(litSide); !isLit {
			if _, leftLit := literalOf(x.Left); !leftLit {
				return nil, false
			}
			pathSide, litSide = x.Right, x.Left
			op = flipOp(op)
		}
		litStr, _ := literalOf(litSide)
		slot, rel, ok := base(pathSide)
		if !ok {
			return nil, false
		}
		// A bare VarRef base compares the slot's single item — atomic
		// values atomize the same way node values do, so no node
		// requirement; non-empty rel requires a node base (checked at
		// run time with the interpreter's exact error).
		return &term{kind: termCmp, slot: slot, rel: rel, op: op, lit: xquery.PrepOperand(litStr)}, true
	case *xquery.FuncCall:
		switch x.Name {
		case "contains", "starts-with", "ends-with":
			if len(x.Args) != 2 {
				return nil, false
			}
			needle, isLit := literalOf(x.Args[1])
			if !isLit {
				return nil, false
			}
			slot, rel, ok := base(x.Args[0])
			if !ok {
				return nil, false
			}
			fn := fnContains
			switch x.Name {
			case "starts-with":
				fn = fnStartsWith
			case "ends-with":
				fn = fnEndsWith
			}
			return &term{kind: termString, slot: slot, rel: rel, fn: fn, needle: needle}, true
		case "exists", "empty":
			if len(x.Args) != 1 {
				return nil, false
			}
			pe, isPath := x.Args[0].(*xquery.PathExpr)
			if !isPath {
				return nil, false
			}
			slot, rel, ok := base(pe)
			if !ok {
				return nil, false
			}
			return &term{kind: termExists, slot: slot, rel: rel, negate: x.Name == "empty"}, true
		case "not":
			if len(x.Args) != 1 {
				return nil, false
			}
			inner, ok := c.compileTermBase(x.Args[0], base)
			if !ok {
				return nil, false
			}
			nt := *inner
			nt.negate = !nt.negate
			return &nt, true
		}
	case *xquery.PathExpr:
		// A bare path conjunct is an existence test (its effective boolean
		// value: non-empty node sequence). Requires at least one step so
		// the result is guaranteed to be nodes — a bare $v could hold an
		// atomic whose effective boolean value is value-dependent.
		if len(x.Steps) == 0 {
			return nil, false
		}
		slot, rel, ok := base(x)
		if !ok || len(rel) == 0 {
			return nil, false
		}
		return &term{kind: termExists, slot: slot, rel: rel}, true
	}
	return nil, false
}

// literalOf renders a literal operand exactly as the evaluator atomizes
// it (numbers through the shared number formatting).
func literalOf(e xquery.Expr) (string, bool) {
	switch x := e.(type) {
	case *xquery.StringLit:
		return x.Value, true
	case *xquery.NumberLit:
		return xquery.ItemString(x.Value), true
	}
	return "", false
}

// flipOp mirrors a comparison across literal-on-the-left: lit < p ⟺ p > lit.
func flipOp(op xquery.BinaryOp) xquery.BinaryOp {
	switch op {
	case xquery.OpLt:
		return xquery.OpGt
	case xquery.OpLe:
		return xquery.OpGe
	case xquery.OpGt:
		return xquery.OpLt
	case xquery.OpGe:
		return xquery.OpLe
	}
	return op
}

// wrapperReachable reports whether the scan's first step could select the
// virtual #document wrapper itself (the interpreter's Walk starts at the
// context node, so a leading //* — or an explicit //#document — matches
// it). Such scans allocate a fresh wrapper per document; all others reuse
// one wrapper across the scan since it can never escape into results.
// An empty step list binds the wrapper directly, which also escapes.
func wrapperReachable(steps []step) bool {
	if len(steps) == 0 {
		return true
	}
	st := steps[0]
	return st.descendant && !st.attr && !st.text && (st.name == "*" || st.name == "#document")
}
