package exec

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"partix/internal/xmltree"
	"partix/internal/xquery"
)

// Batch sizing. tupleBatchSize bounds how many bound tuples accumulate
// before the filter/project stages run over them (the vectorization
// unit); yieldChunk bounds how many result items build up before they are
// pushed to the consumer. Both bound peak memory independently of result
// size — only order-by, which must see every tuple before emitting one,
// breaks that bound.
const (
	tupleBatchSize = 256
	yieldChunk     = 256
)

// errStop aborts a scan early once a decider (exists/empty) is resolved;
// it flows out through Source.Docs exactly like the coordinator's
// stream-cancellation sentinel and is swallowed by the fold driver.
var errStop = errors.New("exec: early stop")

// Run executes the program to a materialized sequence — the drop-in
// replacement for xquery.Eval.
func (p *Program) Run(src xquery.Source) (xquery.Seq, error) {
	if p.fold == foldNone {
		var out xquery.Seq
		err := p.pipe.run(src, func(items xquery.Seq) error {
			out = append(out, items...)
			return nil
		})
		return out, err
	}
	return p.runFold(src)
}

// Stream executes the program delivering result items through yield in
// bounded batches; the yielded Seq is owned by the consumer. Folds
// deliver their single result item in one call. Returns the total item
// count.
func (p *Program) Stream(src xquery.Source, yield func(xquery.Seq) error) (int, error) {
	if p.fold != foldNone {
		out, err := p.runFold(src)
		if err != nil {
			return 0, err
		}
		if len(out) > 0 {
			if err := yield(out); err != nil {
				return 0, err
			}
		}
		return len(out), nil
	}
	total := 0
	err := p.pipe.run(src, func(items xquery.Seq) error {
		total += len(items)
		return yield(items)
	})
	return total, err
}

// runFold consumes the pipeline's item stream into a single aggregate or
// decider item, mirroring the interpreter's evalFunc/aggregate exactly —
// including trying the index-only probes first, so count/exists/empty
// over probe-eligible shapes still decode zero documents.
func (p *Program) runFold(src xquery.Source) (xquery.Seq, error) {
	prober, isProber := src.(xquery.IndexProber)
	switch p.fold {
	case foldCount:
		if p.countProbe != nil && isProber {
			if n, ok := prober.ProbeCount(p.countProbe); ok {
				return xquery.Seq{float64(n)}, nil
			}
		}
		var n int64
		err := p.pipe.run(src, func(items xquery.Seq) error {
			n += int64(len(items))
			return nil
		})
		if err != nil {
			return nil, err
		}
		return xquery.Seq{float64(n)}, nil
	case foldExists, foldEmpty:
		if p.existsProbe != nil && isProber {
			if ex, ok := prober.ProbeExists(p.existsProbe); ok {
				if p.fold == foldEmpty {
					ex = !ex
				}
				return xquery.Seq{ex}, nil
			}
		}
		found := false
		err := p.pipe.runEager(src, func(items xquery.Seq) error {
			if len(items) > 0 {
				found = true
				return errStop // the first item decides; cancel the scan
			}
			return nil
		})
		if err != nil && err != errStop {
			return nil, err
		}
		if p.fold == foldEmpty {
			return xquery.Seq{!found}, nil
		}
		return xquery.Seq{found}, nil
	default: // sum/avg/min/max — numeric folds in stream order
		name := foldNames[p.fold]
		var acc float64
		var count int64
		err := p.pipe.run(src, func(items xquery.Seq) error {
			for _, it := range items {
				v, err := xquery.ItemNumber(it)
				if err != nil {
					return fmt.Errorf("%s(): %w", name, err)
				}
				switch {
				case count == 0:
					acc = v
				case p.fold == foldSum || p.fold == foldAvg:
					acc += v
				case p.fold == foldMin && v < acc:
					acc = v
				case p.fold == foldMax && v > acc:
					acc = v
				}
				count++
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if count == 0 {
			if p.fold == foldSum {
				return xquery.Seq{0.0}, nil
			}
			return nil, nil // avg/min/max of empty is empty
		}
		if p.fold == foldAvg {
			acc /= float64(count)
		}
		return xquery.Seq{acc}, nil
	}
}

// executor is the per-run state: the current tuple batch, the output
// buffer, and every scratch buffer the operators reuse across documents
// so the steady-state scan→filter→project path allocates only for result
// growth.
type executor struct {
	p     *pipeline
	src   xquery.Source
	yield func(xquery.Seq) error
	eager bool // flush per document (decider folds)

	row   []any // current partial tuple during binding
	level int   // slots of row currently bound (for fallback vars)
	batch []any // complete tuples, row-major, stride = p.stride
	n     int   // tuples in batch
	keep  []bool

	out    xquery.Seq     // output buffer; handed off at yieldChunk
	tuples []orderedTuple // order-by accumulation (the blocking operator)

	wrapper   xmltree.Node // reusable #document wrapper (freshWrapper off)
	scanItems []any        // scan binding items of the current document
	levelBufs [][]any      // per-clause iteration buffers
	wa, wb    []*xmltree.Node
	matchBuf  []*xmltree.Node
	ta, tb    []*xmltree.Node // term-walk scratch (pred-free, may nest inside wa/wb walks)
	vals      []string        // gathered predicate value column
	valOff    []int32         // per-gathered-tuple segment starts
	valIdx    []int32         // batch indexes of gathered tuples
	vars      map[string]xquery.Seq
}

type orderedTuple struct {
	keys  []keyVal
	items xquery.Seq
}

// keyVal is one order-by sort key, prepared once (numeric interpretation
// resolved) so the sort's pairwise comparisons reuse it.
type keyVal struct {
	present bool
	op      xquery.Operand
}

func (p *pipeline) run(src xquery.Source, yield func(xquery.Seq) error) error {
	return p.exec(src, yield, false)
}

// runEager flushes the tuple batch and output buffer after every
// document instead of at the batch/chunk watermarks, trading batch width
// for latency so decider folds (exists/empty) can cancel the scan at the
// first witness document.
func (p *pipeline) runEager(src xquery.Source, yield func(xquery.Seq) error) error {
	return p.exec(src, yield, true)
}

func (p *pipeline) exec(src xquery.Source, yield func(xquery.Seq) error, eager bool) error {
	x := &executor{
		p:     p,
		src:   src,
		yield: yield,
		eager: eager,
		row:   make([]any, p.stride),
		batch: make([]any, 0, tupleBatchSize*p.stride),
		keep:  make([]bool, tupleBatchSize),
	}
	x.wrapper = xmltree.Node{Kind: xmltree.ElementNode, Name: "#document", Children: make([]*xmltree.Node, 1)}
	x.levelBufs = make([][]any, len(p.clauses))
	if err := src.Docs(p.coll, p.hint, x.scanDoc); err != nil {
		return err
	}
	if err := x.processBatch(); err != nil {
		return err
	}
	if len(p.orderBy) > 0 {
		return x.emitOrdered()
	}
	return x.flushOut()
}

// scanDoc binds one decoded document: wrap, apply the binding path, then
// recurse through the remaining clauses appending tuples to the batch.
func (x *executor) scanDoc(d *xmltree.Document) error {
	x.level = 0 // scan-step predicates see no variables
	var root *xmltree.Node
	if x.p.freshWrapper {
		root = xquery.DocNode(d)
	} else {
		// The wrapper cannot be selected by any step, so one struct serves
		// the whole scan: no per-document allocation.
		x.wrapper.Children[0] = d.Root
		root = &x.wrapper
	}
	x.wa = append(x.wa[:0], root)
	items, err := x.walkSteps(x.wa, x.p.scanSteps)
	if err != nil {
		return err
	}
	x.scanItems = x.scanItems[:0]
	for _, n := range items {
		x.scanItems = append(x.scanItems, n)
	}
	for _, it := range x.scanItems {
		x.row[0] = it
		x.level = 1
		if err := x.bindFrom(0); err != nil {
			return err
		}
	}
	if x.eager {
		if err := x.processBatch(); err != nil {
			return err
		}
		return x.flushOut()
	}
	return nil
}

// bindFrom evaluates clause ci..end against the current partial row,
// appending one tuple per complete binding.
func (x *executor) bindFrom(ci int) error {
	if ci == len(x.p.clauses) {
		return x.appendTuple()
	}
	cl := x.p.clauses[ci]
	if cl.let {
		v, err := x.evalValueSeq(cl.src)
		if err != nil {
			return err
		}
		x.row[cl.slot] = v
		x.level++
		err = x.bindFrom(ci + 1)
		x.level--
		return err
	}
	buf, err := x.bindItems(ci, cl.src)
	if err != nil {
		return err
	}
	for _, it := range buf {
		x.row[cl.slot] = it
		x.level++
		if err := x.bindFrom(ci + 1); err != nil {
			x.level--
			return err
		}
		x.level--
	}
	return nil
}

// bindItems evaluates a for-clause source into the clause's reusable
// iteration buffer (results must be copied out of the shared walk scratch
// before the recursion below reuses it).
func (x *executor) bindItems(ci int, ve valueExpr) ([]any, error) {
	buf := x.levelBufs[ci][:0]
	switch ve.kind {
	case veSlot:
		if x.p.letSlot[ve.slot] {
			seq, _ := x.row[ve.slot].(xquery.Seq)
			for _, it := range seq {
				buf = append(buf, it)
			}
		} else {
			buf = append(buf, x.row[ve.slot])
		}
	case veLit:
		buf = append(buf, ve.lit)
	case vePath:
		nodes, err := x.slotWalk(ve.slot, ve.rel)
		if err != nil {
			return nil, err
		}
		for _, n := range nodes {
			buf = append(buf, n)
		}
	case veCount:
		nodes, err := x.slotWalk(ve.slot, ve.rel)
		if err != nil {
			return nil, err
		}
		buf = append(buf, float64(len(nodes)))
	default: // veFallback
		seq, err := xquery.EvalWith(ve.expr, x.src, x.fallbackVars(x.row, x.level), nil)
		if err != nil {
			return nil, err
		}
		for _, it := range seq {
			buf = append(buf, it)
		}
	}
	x.levelBufs[ci] = buf
	return buf, nil
}

// evalValueSeq evaluates a value expression to an owned Seq (let
// bindings and return-value fallbacks need sequences that survive the
// scratch buffers).
func (x *executor) evalValueSeq(ve valueExpr) (xquery.Seq, error) {
	switch ve.kind {
	case veSlot:
		if x.p.letSlot[ve.slot] {
			seq, _ := x.row[ve.slot].(xquery.Seq)
			return seq, nil
		}
		return xquery.Seq{x.row[ve.slot]}, nil
	case veLit:
		return xquery.Seq{ve.lit}, nil
	case vePath:
		nodes, err := x.slotWalk(ve.slot, ve.rel)
		if err != nil {
			return nil, err
		}
		if len(nodes) == 0 {
			return nil, nil
		}
		seq := make(xquery.Seq, len(nodes))
		for i, n := range nodes {
			seq[i] = n
		}
		return seq, nil
	case veCount:
		nodes, err := x.slotWalk(ve.slot, ve.rel)
		if err != nil {
			return nil, err
		}
		return xquery.Seq{float64(len(nodes))}, nil
	default:
		return xquery.EvalWith(ve.expr, x.src, x.fallbackVars(x.row, x.level), nil)
	}
}

// slotWalk applies rel from the node in slot of the current row.
func (x *executor) slotWalk(slot int, rel []step) ([]*xmltree.Node, error) {
	base, err := x.baseNode(x.row, slot, rel)
	if err != nil || base == nil {
		return nil, err
	}
	x.wa = append(x.wa[:0], base)
	return x.walkSteps(x.wa, rel)
}

// baseNode resolves a slot to its node, reproducing the interpreter's
// error for a path step over an atomic value. A nil node with nil error
// means "empty": rel was empty and the caller handles the raw item.
func (x *executor) baseNode(row []any, slot int, rel []step) (*xmltree.Node, error) {
	v := row[slot]
	n, ok := v.(*xmltree.Node)
	if !ok {
		if len(rel) == 0 {
			return nil, nil
		}
		return nil, fmt.Errorf("xquery: path step /%s applied to atomic value %v", rel[0].name, v)
	}
	return n, nil
}

// appendTuple copies the completed row into the batch, running the batch
// stages when it fills.
func (x *executor) appendTuple() error {
	x.batch = append(x.batch, x.row...)
	x.n++
	if x.n == tupleBatchSize {
		return x.processBatch()
	}
	return nil
}

// processBatch runs filter → order-key/project over the accumulated
// tuples and resets the batch.
func (x *executor) processBatch() error {
	n := x.n
	if n == 0 {
		return nil
	}
	keep := x.keep[:n]
	for i := range keep {
		keep[i] = true
	}
	for _, ft := range x.p.filter {
		var err error
		if ft.native != nil {
			err = x.evalTermBatch(ft.native, keep)
		} else {
			err = x.evalFallbackTerm(ft.fallback, keep)
		}
		if err != nil {
			return err
		}
	}
	stride := x.p.stride
	for i := 0; i < n; i++ {
		if !keep[i] {
			continue
		}
		row := x.batch[i*stride : (i+1)*stride]
		if len(x.p.orderBy) > 0 {
			if err := x.collectOrdered(row); err != nil {
				return err
			}
			continue
		}
		if err := x.emitReturn(row); err != nil {
			return err
		}
	}
	x.batch = x.batch[:0]
	x.n = 0
	return nil
}

// evalTermBatch evaluates one native term across the batch. For value
// terms the predicate's column — every candidate node value of every
// live tuple — is gathered into a shared scratch buffer first, then a
// single comparison loop tests the column against the literal prepared
// at compile time (existential within each tuple's segment). Tuples
// bound through the same clause share their binding's path shape, which
// is what makes one flat column per term meaningful.
func (x *executor) evalTermBatch(t *term, keep []bool) error {
	stride := x.p.stride
	if t.kind == termExists {
		for i := range keep {
			if !keep[i] {
				continue
			}
			row := x.batch[i*stride : (i+1)*stride]
			base, err := x.baseNode(row, t.slot, t.rel)
			if err != nil {
				return err
			}
			hit := base != nil && stepsExist(base, t.rel, 0)
			if hit == t.negate {
				keep[i] = false
			}
		}
		return nil
	}
	// Gather phase: one value column for the whole batch.
	vals := x.vals[:0]
	offs := x.valOff[:0]
	idx := x.valIdx[:0]
	for i := range keep {
		if !keep[i] {
			continue
		}
		row := x.batch[i*stride : (i+1)*stride]
		offs = append(offs, int32(len(vals)))
		idx = append(idx, int32(i))
		base, err := x.baseNode(row, t.slot, t.rel)
		if err != nil {
			x.vals, x.valOff, x.valIdx = vals, offs, idx
			return err
		}
		if base == nil { // atomic slot value, empty rel: atomize the item
			vals = append(vals, xquery.ItemString(row[t.slot]))
			continue
		}
		if len(t.rel) == 0 {
			vals = append(vals, nodeText(base))
			continue
		}
		nodes := x.termWalk(base, t.rel)
		for _, n := range nodes {
			vals = append(vals, nodeText(n))
		}
	}
	offs = append(offs, int32(len(vals)))
	// Compare phase: one tight loop over the column.
	if t.kind == termCmp {
		lit := t.lit
		for k, ti := range idx {
			hit := false
			for _, v := range vals[offs[k]:offs[k+1]] {
				if xquery.CompareValue(t.op, v, lit) {
					hit = true
					break
				}
			}
			if hit == t.negate {
				keep[ti] = false
			}
		}
	} else {
		for k, ti := range idx {
			hit := false
			for _, v := range vals[offs[k]:offs[k+1]] {
				var ok bool
				switch t.fn {
				case fnContains:
					ok = strings.Contains(v, t.needle)
				case fnStartsWith:
					ok = strings.HasPrefix(v, t.needle)
				default:
					ok = strings.HasSuffix(v, t.needle)
				}
				if ok {
					hit = true
					break
				}
			}
			if hit == t.negate {
				keep[ti] = false
			}
		}
	}
	x.vals, x.valOff, x.valIdx = vals, offs, idx
	return nil
}

// evalFallbackTerm runs an uncompiled where-conjunct through the
// interpreter for each still-live tuple (conjunct short-circuiting is
// preserved: dead tuples never evaluate later terms).
func (x *executor) evalFallbackTerm(e xquery.Expr, keep []bool) error {
	stride := x.p.stride
	for i := range keep {
		if !keep[i] {
			continue
		}
		row := x.batch[i*stride : (i+1)*stride]
		v, err := xquery.EvalWith(e, x.src, x.fallbackVars(row, stride), nil)
		if err != nil {
			return err
		}
		ok, err := xquery.EffectiveBool(v)
		if err != nil {
			return err
		}
		if !ok {
			keep[i] = false
		}
	}
	return nil
}

// emitReturn projects one surviving tuple into the output buffer.
func (x *executor) emitReturn(row []any) error {
	if err := x.emitValue(x.p.ret, row, &x.out); err != nil {
		return err
	}
	if len(x.out) >= yieldChunk {
		return x.flushOut()
	}
	return nil
}

// emitValue appends a value expression's items to out. The hot return
// shapes ($v, $v/rel/path, count($v/rel)) run without interpreter
// involvement; anything else falls back per tuple.
func (x *executor) emitValue(ve valueExpr, row []any, out *xquery.Seq) error {
	switch ve.kind {
	case veSlot:
		if x.p.letSlot[ve.slot] {
			seq, _ := row[ve.slot].(xquery.Seq)
			*out = append(*out, seq...)
		} else {
			*out = append(*out, row[ve.slot])
		}
	case veLit:
		*out = append(*out, ve.lit)
	case vePath, veCount:
		base, err := x.baseNode(row, ve.slot, ve.rel)
		if err != nil {
			return err
		}
		var nodes []*xmltree.Node
		if base != nil {
			// Predicate fallbacks inside rel must see this tuple's
			// bindings, not whatever row is mid-binding in the scan.
			savedRow, savedLevel := x.row, x.level
			x.row, x.level = row, len(row)
			x.wa = append(x.wa[:0], base)
			nodes, err = x.walkSteps(x.wa, ve.rel)
			x.row, x.level = savedRow, savedLevel
			if err != nil {
				return err
			}
		}
		if ve.kind == veCount {
			*out = append(*out, float64(len(nodes)))
		} else {
			for _, n := range nodes {
				*out = append(*out, n)
			}
		}
	default:
		seq, err := xquery.EvalWith(ve.expr, x.src, x.fallbackVars(row, len(row)), nil)
		if err != nil {
			return err
		}
		*out = append(*out, seq...)
	}
	return nil
}

// flushOut hands the output buffer to the consumer. Ownership transfers,
// so a fresh buffer starts the next chunk — this is what keeps peak heap
// flat: at most one chunk is in flight here regardless of result size.
func (x *executor) flushOut() error {
	if len(x.out) == 0 {
		return nil
	}
	out := x.out
	x.out = nil
	return x.yield(out)
}

// collectOrdered materializes one qualifying tuple with its sort keys.
func (x *executor) collectOrdered(row []any) error {
	keys := make([]keyVal, len(x.p.orderBy))
	var scratch xquery.Seq
	for k, spec := range x.p.orderBy {
		scratch = scratch[:0]
		if err := x.emitValue(spec.key, row, &scratch); err != nil {
			return err
		}
		if len(scratch) > 0 {
			keys[k] = keyVal{present: true, op: xquery.PrepOperand(xquery.ItemString(scratch[0]))}
		}
	}
	var items xquery.Seq
	if err := x.emitValue(x.p.ret, row, &items); err != nil {
		return err
	}
	x.tuples = append(x.tuples, orderedTuple{keys: keys, items: items})
	return nil
}

// emitOrdered sorts the materialized tuples (stable, empty keys first,
// shared key semantics) and streams them out in chunks.
func (x *executor) emitOrdered() error {
	specs := x.p.orderBy
	sort.SliceStable(x.tuples, func(i, j int) bool {
		a, b := x.tuples[i].keys, x.tuples[j].keys
		for k := range specs {
			cmp := compareKeyVals(a[k], b[k])
			if cmp == 0 {
				continue
			}
			if specs[k].desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	for _, t := range x.tuples {
		x.out = append(x.out, t.items...)
		if len(x.out) >= yieldChunk {
			if err := x.flushOut(); err != nil {
				return err
			}
		}
	}
	return x.flushOut()
}

func compareKeyVals(a, b keyVal) int {
	switch {
	case !a.present && !b.present:
		return 0
	case !a.present:
		return -1
	case !b.present:
		return 1
	}
	return xquery.CompareKeyOperands(a.op, b.op)
}

// fallbackVars rebuilds the interpreter's variable environment from the
// first nslots slots of a tuple row, reusing one map across calls (the
// interpreter restores any binding it changes, so the map survives
// EvalWith intact).
func (x *executor) fallbackVars(row []any, nslots int) map[string]xquery.Seq {
	if x.vars == nil {
		x.vars = make(map[string]xquery.Seq, x.p.stride)
	} else {
		for k := range x.vars {
			delete(x.vars, k)
		}
	}
	for s := 0; s < nslots; s++ {
		name := x.p.varNames[s]
		if name == "" {
			continue
		}
		if x.p.letSlot[s] {
			seq, _ := row[s].(xquery.Seq)
			x.vars[name] = seq
		} else {
			x.vars[name] = xquery.Seq{row[s]}
		}
	}
	return x.vars
}

// nodeText is Node.Text with a zero-allocation fast path for the common
// leaf shapes: text nodes, and elements/attributes whose only child is a
// text node. Anything deeper concatenates through the builder as usual.
func nodeText(n *xmltree.Node) string {
	if n.Kind == xmltree.TextNode {
		return n.Value
	}
	if len(n.Children) == 1 {
		if c := n.Children[0]; c.Kind == xmltree.TextNode {
			return c.Value
		}
	}
	return n.Text()
}

// --- path-step evaluation ---

// walkSteps applies compiled steps to cur, mirroring the interpreter's
// evalStep exactly: per-parent match lists (so positional predicates are
// per source node), shared duplicate suppression across parents, and
// predicates applied per parent. The suppression map is only allocated
// when it can actually fire — a descendant step over more than one
// context node, where one context may be an ancestor of another; child
// steps of distinct parents are always disjoint, and a descendant walk
// from a single node visits each node once.
//
// cur must alias x.wa (callers seed it there); the result aliases one of
// the two ping-pong buffers and is valid until the next walkSteps call.
func (x *executor) walkSteps(cur []*xmltree.Node, steps []step) ([]*xmltree.Node, error) {
	a, b := cur, x.wb[:0]
	for si := range steps {
		st := &steps[si]
		var seen map[*xmltree.Node]bool
		if st.descendant && len(a) > 1 {
			seen = make(map[*xmltree.Node]bool, len(a))
		}
		for _, n := range a {
			matched := x.matchBuf[:0]
			if st.descendant {
				n.Walk(func(d *xmltree.Node) bool {
					if stepMatch(st, d) && (seen == nil || !seen[d]) {
						if seen != nil {
							seen[d] = true
						}
						matched = append(matched, d)
					}
					return true
				})
			} else {
				for _, ch := range n.Children {
					if stepMatch(st, ch) {
						matched = append(matched, ch)
					}
				}
			}
			x.matchBuf = matched[:0]
			filtered, err := x.applyPreds(matched, st.preds)
			if err != nil {
				return nil, err
			}
			b = append(b, filtered...)
		}
		a, b = b, a[:0]
	}
	// Store the grown buffers back; a holds the result.
	x.wa, x.wb = a, b
	return a, nil
}

func stepMatch(st *step, n *xmltree.Node) bool {
	switch {
	case st.text:
		return n.Kind == xmltree.TextNode
	case st.attr:
		return n.Kind == xmltree.AttributeNode && (st.name == "*" || n.Name == st.name)
	default:
		return n.Kind == xmltree.ElementNode && (st.name == "*" || n.Name == st.name)
	}
}

// applyPreds filters one parent's match list through the step's
// predicates in order, in place.
func (x *executor) applyPreds(nodes []*xmltree.Node, preds []pred) ([]*xmltree.Node, error) {
	cur := nodes
	for pi := range preds {
		pd := &preds[pi]
		switch pd.kind {
		case predPositional:
			if pd.pos < 1 || pd.pos > len(cur) {
				cur = cur[:0]
			} else {
				cur = cur[pd.pos-1 : pd.pos]
			}
		case predTerm:
			kept := cur[:0]
			for _, n := range cur {
				ok, err := x.evalTermNode(pd.term, n)
				if err != nil {
					return nil, err
				}
				if ok {
					kept = append(kept, n)
				}
			}
			cur = kept
		default: // predFallback
			kept := cur[:0]
			for _, n := range cur {
				v, err := xquery.EvalWith(pd.fallback, x.src, x.fallbackVars(x.row, x.level), n)
				if err != nil {
					return nil, err
				}
				ok, err := xquery.EffectiveBool(v)
				if err != nil {
					return nil, err
				}
				if ok {
					kept = append(kept, n)
				}
			}
			cur = kept
		}
	}
	return cur, nil
}

// evalTermNode evaluates a native term against a single context node
// (the scalar form used by step predicates; where-terms run the batched
// form).
func (x *executor) evalTermNode(t *term, base *xmltree.Node) (bool, error) {
	var hit bool
	switch t.kind {
	case termExists:
		hit = stepsExist(base, t.rel, 0)
	case termCmp:
		if len(t.rel) == 0 {
			hit = xquery.CompareValue(t.op, nodeText(base), t.lit)
		} else {
			for _, n := range x.termWalk(base, t.rel) {
				if xquery.CompareValue(t.op, nodeText(n), t.lit) {
					hit = true
					break
				}
			}
		}
	default: // termString
		check := func(v string) bool {
			switch t.fn {
			case fnContains:
				return strings.Contains(v, t.needle)
			case fnStartsWith:
				return strings.HasPrefix(v, t.needle)
			default:
				return strings.HasSuffix(v, t.needle)
			}
		}
		if len(t.rel) == 0 {
			hit = check(nodeText(base))
		} else {
			for _, n := range x.termWalk(base, t.rel) {
				if check(nodeText(n)) {
					hit = true
					break
				}
			}
		}
	}
	return hit != t.negate, nil
}

// termWalk applies a pred-free relative path from one base node using
// the term scratch buffers (terms may be evaluated from inside a
// walkSteps predicate, so they cannot share wa/wb). No duplicate
// suppression: terms are existential, duplicates cannot change them.
func (x *executor) termWalk(base *xmltree.Node, rel []step) []*xmltree.Node {
	a := append(x.ta[:0], base)
	b := x.tb[:0]
	for si := range rel {
		st := &rel[si]
		for _, n := range a {
			if st.descendant {
				n.Walk(func(d *xmltree.Node) bool {
					if stepMatch(st, d) {
						b = append(b, d)
					}
					return true
				})
			} else {
				for _, ch := range n.Children {
					if stepMatch(st, ch) {
						b = append(b, ch)
					}
				}
			}
		}
		a, b = b, a[:0]
	}
	x.ta, x.tb = a, b
	return a
}

// stepsExist reports whether any node matches rel from base, with full
// short-circuiting (xmltree.Walk can only prune subtrees, so the
// descendant case recurses manually to abort the whole walk).
func stepsExist(base *xmltree.Node, rel []step, i int) bool {
	if i == len(rel) {
		return true
	}
	st := &rel[i]
	if st.descendant {
		return descendantExists(base, st, rel, i)
	}
	for _, ch := range base.Children {
		if stepMatch(st, ch) && stepsExist(ch, rel, i+1) {
			return true
		}
	}
	return false
}

func descendantExists(n *xmltree.Node, st *step, rel []step, i int) bool {
	if stepMatch(st, n) && stepsExist(n, rel, i+1) {
		return true
	}
	for _, ch := range n.Children {
		if descendantExists(ch, st, rel, i) {
			return true
		}
	}
	return false
}
