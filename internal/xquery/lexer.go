package xquery

import (
	"fmt"
	"strings"
)

// lexer tokenizes the expression language. Element constructors are lexed
// by the parser itself (their content is raw text), which repositions the
// lexer with setPos afterwards.
type lexer struct {
	in  string
	pos int
}

func newLexer(in string) *lexer { return &lexer{in: in} }

func (l *lexer) setPos(p int) { l.pos = p }

func (l *lexer) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("xquery: offset %d: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// XQuery comments: (: ... :), nestable.
		if c == '(' && l.pos+1 < len(l.in) && l.in[l.pos+1] == ':' {
			depth := 1
			i := l.pos + 2
			for i < len(l.in) && depth > 0 {
				if strings.HasPrefix(l.in[i:], "(:") {
					depth++
					i += 2
				} else if strings.HasPrefix(l.in[i:], ":)") {
					depth--
					i += 2
				} else {
					i++
				}
			}
			if depth != 0 {
				return l.errf(l.pos, "unterminated comment")
			}
			l.pos = i
			continue
		}
		return nil
	}
	return nil
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	start := l.pos
	if l.pos >= len(l.in) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.in[l.pos]
	switch c {
	case '/':
		if l.pos+1 < len(l.in) && l.in[l.pos+1] == '/' {
			l.pos += 2
			return token{tokDSlash, "//", start}, nil
		}
		l.pos++
		return token{tokSlash, "/", start}, nil
	case '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case '[':
		l.pos++
		return token{tokLBracket, "[", start}, nil
	case ']':
		l.pos++
		return token{tokRBracket, "]", start}, nil
	case '{':
		l.pos++
		return token{tokLBrace, "{", start}, nil
	case '}':
		l.pos++
		return token{tokRBrace, "}", start}, nil
	case ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case '@':
		l.pos++
		return token{tokAt, "@", start}, nil
	case '*':
		l.pos++
		return token{tokStar, "*", start}, nil
	case '+':
		l.pos++
		return token{tokPlus, "+", start}, nil
	case '-':
		l.pos++
		return token{tokMinus, "-", start}, nil
	case '=':
		l.pos++
		return token{tokEq, "=", start}, nil
	case '!':
		if l.pos+1 < len(l.in) && l.in[l.pos+1] == '=' {
			l.pos += 2
			return token{tokNe, "!=", start}, nil
		}
		return token{}, l.errf(start, "unexpected '!'")
	case '<':
		if l.pos+1 < len(l.in) && l.in[l.pos+1] == '/' {
			l.pos += 2
			return token{tokTagClose, "</", start}, nil
		}
		if l.pos+1 < len(l.in) && l.in[l.pos+1] == '=' {
			l.pos += 2
			return token{tokLe, "<=", start}, nil
		}
		l.pos++
		return token{tokLt, "<", start}, nil
	case '>':
		if l.pos+1 < len(l.in) && l.in[l.pos+1] == '=' {
			l.pos += 2
			return token{tokGe, ">=", start}, nil
		}
		l.pos++
		return token{tokGt, ">", start}, nil
	case ':':
		if l.pos+1 < len(l.in) && l.in[l.pos+1] == '=' {
			l.pos += 2
			return token{tokAssign, ":=", start}, nil
		}
		return token{}, l.errf(start, "unexpected ':'")
	case '.':
		l.pos++
		return token{tokDot, ".", start}, nil
	case '$':
		l.pos++
		name := l.scanName()
		if name == "" {
			return token{}, l.errf(start, "expected variable name after '$'")
		}
		return token{tokVar, name, start}, nil
	case '"', '\'':
		quote := c
		l.pos++
		s := l.pos
		for l.pos < len(l.in) && l.in[l.pos] != quote {
			l.pos++
		}
		if l.pos >= len(l.in) {
			return token{}, l.errf(start, "unterminated string literal")
		}
		lit := l.in[s:l.pos]
		l.pos++
		return token{tokString, lit, start}, nil
	}
	if c >= '0' && c <= '9' {
		s := l.pos
		for l.pos < len(l.in) && (l.in[l.pos] >= '0' && l.in[l.pos] <= '9') {
			l.pos++
		}
		if l.pos < len(l.in) && l.in[l.pos] == '.' {
			l.pos++
			for l.pos < len(l.in) && (l.in[l.pos] >= '0' && l.in[l.pos] <= '9') {
				l.pos++
			}
		}
		return token{tokNumber, l.in[s:l.pos], start}, nil
	}
	if isNameStart(c) {
		name := l.scanName()
		return token{tokName, name, start}, nil
	}
	return token{}, l.errf(start, "unexpected character %q", string(c))
}

// peek returns the next token without consuming it.
func (l *lexer) peek() (token, error) {
	save := l.pos
	t, err := l.next()
	l.pos = save
	return t, err
}

func (l *lexer) scanName() string {
	s := l.pos
	for l.pos < len(l.in) && isNameChar(l.in[l.pos]) {
		l.pos++
	}
	return l.in[s:l.pos]
}

func isNameStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || ('0' <= c && c <= '9')
}
