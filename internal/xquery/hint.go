package xquery

import "strings"

// Hint is a conjunction of text constraints a document must satisfy to
// possibly contribute to a query's result. The engine evaluates hints
// against its inverted text index to prune candidate documents before
// decoding them (this is the "indexes … to speed up text search
// operations" behaviour of eXist the paper relies on). Hints are always a
// NECESSARY condition, never sufficient: surviving documents are still
// fully evaluated.
type Hint struct {
	Constraints []Constraint
}

// Constraint is one conjunct.
type Constraint struct {
	// Tokens non-empty: the document must contain every listed token
	// (derived from `path = "literal"`: a node value equal to the literal
	// necessarily contributes all the literal's tokens).
	Tokens []string
	// Substring non-empty: the document must contain some token having
	// this substring (derived from contains(path, "literal") with a purely
	// alphanumeric literal; a substring match within a text always lands
	// inside a single token then).
	Substring string
	// Elements non-empty: the document must contain an element with every
	// listed name (derived from for-binding paths and positive existence
	// tests — a document lacking the element yields no bindings and so no
	// output). This is the structural-index counterpart of eXist's
	// "indexes … to speed up path expressions evaluation".
	Elements []string
}

// Tokenize splits text into lowercase alphanumeric tokens — the exact
// tokenization the engine's inverted index uses; keeping them identical is
// what makes hints sound.
func Tokenize(text string) []string {
	var out []string
	start := -1
	flush := func(end int) {
		if start >= 0 {
			out = append(out, strings.ToLower(text[start:end]))
			start = -1
		}
	}
	for i := 0; i < len(text); i++ {
		c := text[i]
		if ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9') {
			if start < 0 {
				start = i
			}
		} else {
			flush(i)
		}
	}
	flush(len(text))
	return out
}

func isAlphanumeric(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')) {
			return false
		}
	}
	return true
}

// ExtractHints analyzes a query and derives, per collection, a sound
// document-pruning hint. Constraints are only taken from positions that
// are necessary conditions for a document to contribute:
//
//   - conjunctive terms of a FLWOR where-clause comparing a path rooted at
//     a for-variable bound to the collection against a string literal, and
//   - the same shapes inside step predicates of the binding path itself
//     (collection("c")/Item[Section = "CD"]).
//
// Terms under not(), or, and any other function are ignored.
func ExtractHints(e Expr) map[string]*Hint {
	hints := map[string]*Hint{}
	collectFLWORs(e, hints)
	return hints
}

func collectFLWORs(e Expr, hints map[string]*Hint) {
	Walk(e, func(x Expr) {
		f, ok := x.(*FLWOR)
		if !ok {
			return
		}
		// Map for-variables to their source collections.
		varColl := map[string]string{}
		for _, cl := range f.Clauses {
			if cl.Let {
				continue
			}
			coll, steps, ok := collectionRooted(cl.In)
			if !ok {
				continue
			}
			varColl[cl.Var] = coll
			// The binding path must select something for the document to
			// produce any output: its element names are required.
			if els := stepElements(steps); len(els) > 0 {
				appendConstraint(hints, coll, Constraint{Elements: els})
			}
			// Step predicates of the binding path are conjunctive for this
			// collection's documents.
			for _, st := range steps {
				for _, p := range st.Preds {
					addConjuncts(p, func(term Expr) {
						if c, ok := constraintFromTerm(term, nil, varColl); ok {
							appendConstraint(hints, coll, c)
						}
					})
				}
			}
		}
		if f.Where == nil || len(varColl) == 0 {
			return
		}
		addConjuncts(f.Where, func(term Expr) {
			coll, c, ok := constraintWithVar(term, varColl)
			if ok {
				appendConstraint(hints, coll, c)
			}
		})
	})
}

func appendConstraint(hints map[string]*Hint, coll string, c Constraint) {
	h := hints[coll]
	if h == nil {
		h = &Hint{}
		hints[coll] = h
	}
	h.Constraints = append(h.Constraints, c)
}

// addConjuncts calls fn for every term of the top-level AND tree.
func addConjuncts(e Expr, fn func(Expr)) {
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		addConjuncts(b.Left, fn)
		addConjuncts(b.Right, fn)
		return
	}
	fn(e)
}

// constraintWithVar recognizes a term touching exactly one for-variable
// and returns the constraint plus its collection.
func constraintWithVar(term Expr, varColl map[string]string) (string, Constraint, bool) {
	var coll string
	c, ok := constraintFromTerm(term, &coll, varColl)
	if !ok || coll == "" {
		return "", Constraint{}, false
	}
	return coll, c, true
}

// constraintFromTerm extracts a constraint from one conjunctive term. When
// collOut is non-nil the term must reference a for-variable (whose
// collection is reported through collOut); when nil the term is a step
// predicate whose context is already scoped to the collection, so relative
// paths are accepted.
func constraintFromTerm(term Expr, collOut *string, varColl map[string]string) (Constraint, bool) {
	switch x := term.(type) {
	case *Binary:
		if x.Op != OpEq {
			return Constraint{}, false
		}
		path, lit, ok := pathAndLiteral(x.Left, x.Right)
		if !ok {
			return Constraint{}, false
		}
		if !sourceMatches(path, collOut, varColl) {
			return Constraint{}, false
		}
		tokens := Tokenize(lit)
		if len(tokens) == 0 {
			return Constraint{}, false
		}
		return Constraint{Tokens: tokens}, true
	case *FuncCall:
		switch x.Name {
		case "contains":
			if len(x.Args) != 2 {
				return Constraint{}, false
			}
			lit, ok := x.Args[1].(*StringLit)
			if !ok || !isAlphanumeric(lit.Value) {
				return Constraint{}, false
			}
			if !sourceMatches(x.Args[0], collOut, varColl) {
				return Constraint{}, false
			}
			return Constraint{Substring: strings.ToLower(lit.Value)}, true
		case "exists":
			if len(x.Args) != 1 {
				return Constraint{}, false
			}
			return existenceConstraint(x.Args[0], collOut, varColl)
		default:
			return Constraint{}, false
		}
	case *PathExpr:
		// A bare path as a conjunct is an existence test.
		return existenceConstraint(x, collOut, varColl)
	default:
		return Constraint{}, false
	}
}

// existenceConstraint derives a required-elements constraint from a
// positive existence test over a path.
func existenceConstraint(e Expr, collOut *string, varColl map[string]string) (Constraint, bool) {
	pe, ok := e.(*PathExpr)
	if !ok {
		return Constraint{}, false
	}
	if !sourceMatches(pe, collOut, varColl) {
		return Constraint{}, false
	}
	els := stepElements(pe.Steps)
	if len(els) == 0 {
		return Constraint{}, false
	}
	return Constraint{Elements: els}, true
}

// stepElements returns the concrete element names a path requires.
func stepElements(steps []PathStep) []string {
	var out []string
	for _, st := range steps {
		if st.Attr || st.Text || st.Name == "*" || st.Name == "" {
			continue
		}
		out = append(out, st.Name)
	}
	return out
}

func pathAndLiteral(a, b Expr) (path Expr, lit string, ok bool) {
	if s, isLit := b.(*StringLit); isLit {
		return a, s.Value, true
	}
	if s, isLit := a.(*StringLit); isLit {
		return b, s.Value, true
	}
	return nil, "", false
}

// sourceMatches checks the path side of a term: with collOut it must be a
// path rooted at a known for-variable with no further step predicates (a
// predicate could invert the match); without collOut, a relative path.
func sourceMatches(e Expr, collOut *string, varColl map[string]string) bool {
	p, ok := e.(*PathExpr)
	if !ok {
		if v, isVar := e.(*VarRef); isVar && collOut != nil {
			coll, known := varColl[v.Name]
			if known {
				*collOut = coll
				return true
			}
		}
		return false
	}
	for _, st := range p.Steps {
		if len(st.Preds) > 0 {
			return false
		}
	}
	if collOut == nil {
		return p.Source == nil // relative path inside a step predicate
	}
	v, isVar := p.Source.(*VarRef)
	if !isVar {
		return false
	}
	coll, known := varColl[v.Name]
	if !known {
		return false
	}
	*collOut = coll
	return true
}
