package xquery

import "strings"

// Hint is a conjunction of constraints a document must satisfy to
// possibly contribute to a query's result. The engine evaluates hints
// against its indexes to prune candidate documents before decoding them
// (this is the "indexes … to speed up text search operations" behaviour
// of eXist the paper relies on). Hints are always a NECESSARY condition,
// never sufficient: surviving documents are still fully evaluated.
type Hint struct {
	Constraints []Constraint
}

// Constraint is one conjunct.
type Constraint struct {
	// Tokens non-empty: the document must contain every listed token
	// (derived from `path = "literal"`: a node value equal to the literal
	// necessarily contributes all the literal's tokens).
	Tokens []string
	// Substring non-empty: the document must contain some token having
	// this substring (derived from contains(path, "literal") with a purely
	// alphanumeric literal; a substring match within a text always lands
	// inside a single token then).
	Substring string
	// Elements non-empty: the document must contain an element with every
	// listed name (derived from for-binding paths and positive existence
	// tests — a document lacking the element yields no bindings and so no
	// output). This is the structural-index counterpart of eXist's
	// "indexes … to speed up path expressions evaluation".
	Elements []string
	// Path non-nil: the document must contain a node whose root-to-node
	// label path matches Path.Steps and — for the comparison ops — whose
	// string value compares true against Path.Literal under the
	// evaluator's general-comparison semantics. Derived from binding
	// paths (CmpExists) and from equality/range terms; evaluated against
	// the engine's path summary and typed value index.
	Path *PathConstraint
}

// CmpOp is the comparison a PathConstraint (or ValueProbe) carries.
type CmpOp uint8

// Comparison operators of path constraints. CmpExists asserts the path
// exists without testing its value.
const (
	CmpExists CmpOp = iota
	CmpEq
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

var cmpNames = map[CmpOp]string{
	CmpExists: "exists", CmpEq: "=", CmpLt: "<", CmpLe: "<=", CmpGt: ">", CmpGe: ">=",
}

// String returns the operator's surface syntax.
func (o CmpOp) String() string { return cmpNames[o] }

// LabelStep is one component of a label-path pattern: it matches a node
// label (element or attribute name) on the root-to-node path. Descendant
// mirrors the evaluator's // axis, which walks the subtree including the
// context node itself, so a descendant step may also match without
// consuming a new path component.
type LabelStep struct {
	Descendant bool
	Name       string // "*" matches any name
	Attr       bool
}

// PathConstraint qualifies a constraint by a root-to-node label path.
// Soundness: a term `$v/p OP lit` being true for some binding requires
// SOME node at the (binding + term) label path whose value satisfies OP —
// the constraint never claims which node, so it stays a necessary
// condition even when the binding path carries extra predicates.
type PathConstraint struct {
	Steps   []LabelStep
	Op      CmpOp
	Literal string // comparison operand; unused for CmpExists
}

// Tokenize splits text into lowercase alphanumeric tokens — the exact
// tokenization the engine's inverted index uses; keeping them identical is
// what makes hints sound.
func Tokenize(text string) []string {
	var out []string
	start := -1
	flush := func(end int) {
		if start >= 0 {
			out = append(out, strings.ToLower(text[start:end]))
			start = -1
		}
	}
	for i := 0; i < len(text); i++ {
		c := text[i]
		if ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9') {
			if start < 0 {
				start = i
			}
		} else {
			flush(i)
		}
	}
	flush(len(text))
	return out
}

func isAlphanumeric(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')) {
			return false
		}
	}
	return true
}

// ExtractHints analyzes a query and derives, per collection, a sound
// document-pruning hint. Constraints are only taken from positions that
// are necessary conditions for a document to contribute:
//
//   - conjunctive terms of a FLWOR where-clause comparing a path rooted at
//     a for-variable bound to the collection against a literal (equality
//     produces token + path constraints, the range operators <, <=, >, >=
//     produce path constraints), and
//   - the same shapes inside step predicates of the binding path itself
//     (collection("c")/Item[Section = "CD"]).
//
// Terms under not(), or, !=, and any other function are ignored.
func ExtractHints(e Expr) map[string]*Hint {
	hints := map[string]*Hint{}
	collectFLWORs(e, hints)
	return hints
}

// varBinding records what a for-variable ranges over: its collection and
// the label-path pattern of the binding path (pathOK false when the path
// contains a step — text() — that has no label).
type varBinding struct {
	coll   string
	steps  []LabelStep
	pathOK bool
}

// predCtx is the label-path prefix a step predicate's relative paths
// extend: the path up to and including the step the predicate hangs off.
type predCtx struct {
	steps []LabelStep
	ok    bool
}

func collectFLWORs(e Expr, hints map[string]*Hint) {
	Walk(e, func(x Expr) {
		f, ok := x.(*FLWOR)
		if !ok {
			return
		}
		// Map for-variables to their source collections and binding paths.
		varColl := map[string]varBinding{}
		for _, cl := range f.Clauses {
			if cl.Let {
				continue
			}
			coll, steps, ok := collectionRooted(cl.In)
			if !ok {
				continue
			}
			ls, lsOK := toLabelSteps(steps)
			varColl[cl.Var] = varBinding{coll: coll, steps: ls, pathOK: lsOK}
			// The binding path must select something for the document to
			// produce any output: its element names (and label path) are
			// required.
			c := Constraint{Elements: stepElements(steps)}
			if lsOK && len(ls) > 0 {
				c.Path = &PathConstraint{Steps: ls, Op: CmpExists}
			}
			if len(c.Elements) > 0 || c.Path != nil {
				appendConstraint(hints, coll, c)
			}
			// Step predicates of the binding path are conjunctive for this
			// collection's documents.
			for si, st := range steps {
				ctxSteps, ctxOK := toLabelSteps(steps[: si+1 : si+1])
				ctx := predCtx{steps: ctxSteps, ok: ctxOK}
				for _, p := range st.Preds {
					addConjuncts(p, func(term Expr) {
						if c, ok := constraintFromTerm(term, nil, varColl, ctx); ok {
							appendConstraint(hints, coll, c)
						}
					})
				}
			}
		}
		if f.Where == nil || len(varColl) == 0 {
			return
		}
		addConjuncts(f.Where, func(term Expr) {
			coll, c, ok := constraintWithVar(term, varColl)
			if ok {
				appendConstraint(hints, coll, c)
			}
		})
	})
}

func appendConstraint(hints map[string]*Hint, coll string, c Constraint) {
	h := hints[coll]
	if h == nil {
		h = &Hint{}
		hints[coll] = h
	}
	h.Constraints = append(h.Constraints, c)
}

// addConjuncts calls fn for every term of the top-level AND tree.
func addConjuncts(e Expr, fn func(Expr)) {
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		addConjuncts(b.Left, fn)
		addConjuncts(b.Right, fn)
		return
	}
	fn(e)
}

// constraintWithVar recognizes a term touching exactly one for-variable
// and returns the constraint plus its collection.
func constraintWithVar(term Expr, varColl map[string]varBinding) (string, Constraint, bool) {
	var coll string
	c, ok := constraintFromTerm(term, &coll, varColl, predCtx{})
	if !ok || coll == "" {
		return "", Constraint{}, false
	}
	return coll, c, true
}

// constraintFromTerm extracts a constraint from one conjunctive term. When
// collOut is non-nil the term must reference a for-variable (whose
// collection is reported through collOut); when nil the term is a step
// predicate whose context is already scoped to the collection, so relative
// paths (and the context item) are accepted and extend ctx.
func constraintFromTerm(term Expr, collOut *string, varColl map[string]varBinding, ctx predCtx) (Constraint, bool) {
	switch x := term.(type) {
	case *Binary:
		cmp, isCmp := cmpOpFor(x.Op)
		if !isCmp {
			return Constraint{}, false
		}
		path, lit, flipped, ok := pathAndLiteral(x.Left, x.Right)
		if !ok {
			return Constraint{}, false
		}
		if !sourceMatches(path, collOut, varColl) {
			return Constraint{}, false
		}
		if flipped {
			cmp = flipCmp(cmp)
		}
		var c Constraint
		// Token witnesses only hold for string-literal equality: a numeric
		// literal compares numerically, so "100" also matches "100.0" or
		// "1e2", whose tokens differ.
		if s, isStr := lit.(*StringLit); isStr && cmp == CmpEq {
			c.Tokens = Tokenize(s.Value)
		}
		if ls, ok := termLabelSteps(path, varColl, ctx); ok && len(ls) > 0 {
			c.Path = &PathConstraint{Steps: ls, Op: cmp, Literal: litString(lit)}
		}
		if len(c.Tokens) == 0 && c.Path == nil {
			return Constraint{}, false
		}
		return c, true
	case *FuncCall:
		switch x.Name {
		case "contains":
			if len(x.Args) != 2 {
				return Constraint{}, false
			}
			lit, ok := x.Args[1].(*StringLit)
			if !ok || !isAlphanumeric(lit.Value) {
				return Constraint{}, false
			}
			if !sourceMatches(x.Args[0], collOut, varColl) {
				return Constraint{}, false
			}
			return Constraint{Substring: strings.ToLower(lit.Value)}, true
		case "exists":
			if len(x.Args) != 1 {
				return Constraint{}, false
			}
			return existenceConstraint(x.Args[0], collOut, varColl, ctx)
		default:
			return Constraint{}, false
		}
	case *PathExpr:
		// A bare path as a conjunct is an existence test.
		return existenceConstraint(x, collOut, varColl, ctx)
	default:
		return Constraint{}, false
	}
}

// existenceConstraint derives a required-elements (and required-path)
// constraint from a positive existence test over a path.
func existenceConstraint(e Expr, collOut *string, varColl map[string]varBinding, ctx predCtx) (Constraint, bool) {
	pe, ok := e.(*PathExpr)
	if !ok {
		return Constraint{}, false
	}
	if !sourceMatches(pe, collOut, varColl) {
		return Constraint{}, false
	}
	c := Constraint{Elements: stepElements(pe.Steps)}
	if ls, ok := termLabelSteps(pe, varColl, ctx); ok && len(ls) > 0 {
		c.Path = &PathConstraint{Steps: ls, Op: CmpExists}
	}
	if len(c.Elements) == 0 && c.Path == nil {
		return Constraint{}, false
	}
	return c, true
}

// stepElements returns the concrete element names a path requires.
func stepElements(steps []PathStep) []string {
	var out []string
	for _, st := range steps {
		if st.Attr || st.Text || st.Name == "*" || st.Name == "" {
			continue
		}
		out = append(out, st.Name)
	}
	return out
}

// toLabelSteps converts location steps to a label-path pattern. Step
// predicates are dropped — they only narrow the selected nodes, so the
// labels stay necessary — but a text() step has no label and fails the
// conversion.
func toLabelSteps(steps []PathStep) ([]LabelStep, bool) {
	out := make([]LabelStep, 0, len(steps))
	for _, st := range steps {
		if st.Text || st.Name == "" {
			return nil, false
		}
		out = append(out, LabelStep{Descendant: st.Descendant, Name: st.Name, Attr: st.Attr})
	}
	return out, true
}

// termLabelSteps resolves the full root-anchored label path of the path
// side of a term: the binding path of its for-variable (or the predicate
// context) plus the term's own steps. Step predicates on the term side
// were already rejected by sourceMatches.
func termLabelSteps(e Expr, varColl map[string]varBinding, ctx predCtx) ([]LabelStep, bool) {
	switch x := e.(type) {
	case *VarRef:
		vb, known := varColl[x.Name]
		if !known || !vb.pathOK {
			return nil, false
		}
		return vb.steps, true
	case *ContextItem:
		if !ctx.ok {
			return nil, false
		}
		return ctx.steps, true
	case *PathExpr:
		rel, ok := toLabelSteps(x.Steps)
		if !ok {
			return nil, false
		}
		var base []LabelStep
		switch src := x.Source.(type) {
		case *VarRef:
			vb, known := varColl[src.Name]
			if !known || !vb.pathOK {
				return nil, false
			}
			base = vb.steps
		case nil:
			if !ctx.ok {
				return nil, false
			}
			base = ctx.steps
		default:
			return nil, false
		}
		return append(append([]LabelStep(nil), base...), rel...), true
	}
	return nil, false
}

// cmpOpFor maps a general-comparison operator to its constraint form.
// != is excluded: it is no witness (a doc may satisfy it through any
// other node value).
func cmpOpFor(op BinaryOp) (CmpOp, bool) {
	switch op {
	case OpEq:
		return CmpEq, true
	case OpLt:
		return CmpLt, true
	case OpLe:
		return CmpLe, true
	case OpGt:
		return CmpGt, true
	case OpGe:
		return CmpGe, true
	}
	return 0, false
}

// flipCmp mirrors an operator across the literal-on-the-left form:
// lit < path  ⟺  path > lit.
func flipCmp(op CmpOp) CmpOp {
	switch op {
	case CmpLt:
		return CmpGt
	case CmpLe:
		return CmpGe
	case CmpGt:
		return CmpLt
	case CmpGe:
		return CmpLe
	}
	return op
}

// pathAndLiteral splits a comparison into its path side and literal side;
// flipped reports that the literal was on the left.
func pathAndLiteral(a, b Expr) (path, lit Expr, flipped, ok bool) {
	switch b.(type) {
	case *StringLit, *NumberLit:
		return a, b, false, true
	}
	switch a.(type) {
	case *StringLit, *NumberLit:
		return b, a, true, true
	}
	return nil, nil, false, false
}

// litString renders a literal exactly as the evaluator atomizes it, so
// the value index compares the same operand the evaluator would.
func litString(e Expr) string {
	switch x := e.(type) {
	case *StringLit:
		return x.Value
	case *NumberLit:
		return formatNumber(x.Value)
	}
	return ""
}

// sourceMatches checks the path side of a term: with collOut it must be a
// path rooted at a known for-variable with no further step predicates (a
// predicate could invert the match); without collOut, a relative path or
// the context item inside a step predicate.
func sourceMatches(e Expr, collOut *string, varColl map[string]varBinding) bool {
	p, ok := e.(*PathExpr)
	if !ok {
		if v, isVar := e.(*VarRef); isVar && collOut != nil {
			coll, known := varColl[v.Name]
			if known {
				*collOut = coll.coll
				return true
			}
		}
		if _, isCtx := e.(*ContextItem); isCtx && collOut == nil {
			return true
		}
		return false
	}
	for _, st := range p.Steps {
		if len(st.Preds) > 0 {
			return false
		}
	}
	if collOut == nil {
		return p.Source == nil // relative path inside a step predicate
	}
	v, isVar := p.Source.(*VarRef)
	if !isVar {
		return false
	}
	vb, known := varColl[v.Name]
	if !known {
		return false
	}
	*collOut = vb.coll
	return true
}
