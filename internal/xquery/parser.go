package xquery

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse compiles an XQuery expression.
func Parse(query string) (Expr, error) {
	p := &parser{lex: newLexer(query)}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	t, err := p.lex.peek()
	if err != nil {
		return nil, err
	}
	if t.kind != tokEOF {
		return nil, fmt.Errorf("xquery: trailing input at offset %d (%s)", t.pos, t.kind)
	}
	return e, nil
}

// MustParse compiles query and panics on error; for workload tables and
// tests.
func MustParse(query string) Expr {
	e, err := Parse(query)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	lex *lexer
}

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("xquery: offset %d: %s", t.pos, fmt.Sprintf(format, args...))
}

// parseExpr: sequence of comma-separated single expressions.
func (p *parser) parseExpr() (Expr, error) {
	first, err := p.parseSingle()
	if err != nil {
		return nil, err
	}
	items := []Expr{first}
	for {
		t, err := p.lex.peek()
		if err != nil {
			return nil, err
		}
		if t.kind != tokComma {
			break
		}
		p.lex.next()
		e, err := p.parseSingle()
		if err != nil {
			return nil, err
		}
		items = append(items, e)
	}
	if len(items) == 1 {
		return first, nil
	}
	return &Sequence{Items: items}, nil
}

// parseSingle: FLWOR, if, quantified, or an operator expression.
func (p *parser) parseSingle() (Expr, error) {
	t, err := p.lex.peek()
	if err != nil {
		return nil, err
	}
	if t.kind == tokName {
		switch t.text {
		case "for", "let":
			return p.parseFLWOR()
		case "if":
			// Only "if (" starts a conditional; a bare "if" stays a path.
			save := p.lex.pos
			p.lex.next()
			nt, err := p.lex.peek()
			if err != nil {
				return nil, err
			}
			if nt.kind == tokLParen {
				return p.parseIf()
			}
			p.lex.setPos(save)
		case "some", "every":
			save := p.lex.pos
			p.lex.next()
			nt, err := p.lex.peek()
			if err != nil {
				return nil, err
			}
			if nt.kind == tokVar {
				return p.parseQuantified(t.text == "every")
			}
			p.lex.setPos(save)
		}
	}
	return p.parseOr()
}

// parseIf parses (cond) then e1 else e2; the "if" is already consumed.
func (p *parser) parseIf() (Expr, error) {
	if err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	t, err := p.lex.next()
	if err != nil {
		return nil, err
	}
	if t.kind != tokName || t.text != "then" {
		return nil, p.errf(t, "expected 'then'")
	}
	then, err := p.parseSingle()
	if err != nil {
		return nil, err
	}
	t, err = p.lex.next()
	if err != nil {
		return nil, err
	}
	if t.kind != tokName || t.text != "else" {
		return nil, p.errf(t, "expected 'else' (XQuery conditionals always have one)")
	}
	els, err := p.parseSingle()
	if err != nil {
		return nil, err
	}
	return &IfExpr{Cond: cond, Then: then, Else: els}, nil
}

// parseQuantified parses $v in expr (, $v in expr)* satisfies expr; the
// some/every keyword is already consumed.
func (p *parser) parseQuantified(every bool) (Expr, error) {
	q := &Quantified{Every: every}
	for {
		v, err := p.lex.next()
		if err != nil {
			return nil, err
		}
		if v.kind != tokVar {
			return nil, p.errf(v, "expected $variable in quantified expression")
		}
		t, err := p.lex.next()
		if err != nil {
			return nil, err
		}
		if t.kind != tokName || t.text != "in" {
			return nil, p.errf(t, "expected 'in'")
		}
		in, err := p.parseSingle()
		if err != nil {
			return nil, err
		}
		q.Clauses = append(q.Clauses, Clause{Var: v.text, In: in})
		nt, err := p.lex.peek()
		if err != nil {
			return nil, err
		}
		if nt.kind == tokComma {
			p.lex.next()
			continue
		}
		break
	}
	t, err := p.lex.next()
	if err != nil {
		return nil, err
	}
	if t.kind != tokName || t.text != "satisfies" {
		return nil, p.errf(t, "expected 'satisfies'")
	}
	sat, err := p.parseSingle()
	if err != nil {
		return nil, err
	}
	q.Satisfies = sat
	return q, nil
}

func (p *parser) parseFLWOR() (Expr, error) {
	f := &FLWOR{}
	for {
		t, err := p.lex.peek()
		if err != nil {
			return nil, err
		}
		if t.kind != tokName || (t.text != "for" && t.text != "let") {
			break
		}
		p.lex.next()
		isLet := t.text == "let"
		for {
			v, err := p.lex.next()
			if err != nil {
				return nil, err
			}
			if v.kind != tokVar {
				return nil, p.errf(v, "expected $variable after %s", t.text)
			}
			sep, err := p.lex.next()
			if err != nil {
				return nil, err
			}
			if isLet {
				if sep.kind != tokAssign {
					return nil, p.errf(sep, "expected := in let clause")
				}
			} else if sep.kind != tokName || sep.text != "in" {
				return nil, p.errf(sep, "expected 'in' in for clause")
			}
			in, err := p.parseSingle()
			if err != nil {
				return nil, err
			}
			f.Clauses = append(f.Clauses, Clause{Let: isLet, Var: v.text, In: in})
			nx, err := p.lex.peek()
			if err != nil {
				return nil, err
			}
			if nx.kind == tokComma {
				p.lex.next()
				continue
			}
			break
		}
	}
	if len(f.Clauses) == 0 {
		t, _ := p.lex.peek()
		return nil, p.errf(t, "FLWOR without clauses")
	}
	t, err := p.lex.peek()
	if err != nil {
		return nil, err
	}
	if t.kind == tokName && t.text == "where" {
		p.lex.next()
		w, err := p.parseSingle()
		if err != nil {
			return nil, err
		}
		f.Where = w
	}
	t, err = p.lex.peek()
	if err != nil {
		return nil, err
	}
	if t.kind == tokName && t.text == "order" {
		p.lex.next()
		by, err := p.lex.next()
		if err != nil {
			return nil, err
		}
		if by.kind != tokName || by.text != "by" {
			return nil, p.errf(by, "expected 'by' after 'order'")
		}
		for {
			key, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			spec := OrderSpec{Key: key}
			nt, err := p.lex.peek()
			if err != nil {
				return nil, err
			}
			if nt.kind == tokName && (nt.text == "ascending" || nt.text == "descending") {
				p.lex.next()
				spec.Descending = nt.text == "descending"
			}
			f.OrderBy = append(f.OrderBy, spec)
			nt, err = p.lex.peek()
			if err != nil {
				return nil, err
			}
			if nt.kind != tokComma {
				break
			}
			p.lex.next()
		}
	}
	t, err = p.lex.next()
	if err != nil {
		return nil, err
	}
	if t.kind != tokName || t.text != "return" {
		return nil, p.errf(t, "expected 'return', got %q", t.text)
	}
	ret, err := p.parseSingle()
	if err != nil {
		return nil, err
	}
	f.Return = ret
	return f, nil
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.lex.peek()
		if err != nil {
			return nil, err
		}
		if t.kind != tokName || t.text != "or" {
			return left, nil
		}
		p.lex.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpOr, Left: left, Right: right}
	}
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.lex.peek()
		if err != nil {
			return nil, err
		}
		if t.kind != tokName || t.text != "and" {
			return left, nil
		}
		p.lex.next()
		right, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpAnd, Left: left, Right: right}
	}
}

var cmpOps = map[tokenKind]BinaryOp{
	tokEq: OpEq, tokNe: OpNe, tokLt: OpLt, tokLe: OpLe, tokGt: OpGt, tokGe: OpGe,
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t, err := p.lex.peek()
	if err != nil {
		return nil, err
	}
	op, ok := cmpOps[t.kind]
	if !ok {
		return left, nil
	}
	p.lex.next()
	right, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &Binary{Op: op, Left: left, Right: right}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.lex.peek()
		if err != nil {
			return nil, err
		}
		var op BinaryOp
		switch t.kind {
		case tokPlus:
			op = OpAdd
		case tokMinus:
			op = OpSub
		default:
			return left, nil
		}
		p.lex.next()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.lex.peek()
		if err != nil {
			return nil, err
		}
		var op BinaryOp
		switch {
		case t.kind == tokStar:
			op = OpMul
		case t.kind == tokName && t.text == "div":
			op = OpDiv
		case t.kind == tokName && t.text == "mod":
			op = OpMod
		default:
			return left, nil
		}
		p.lex.next()
		right, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
}

// parsePath: a primary expression followed by location steps.
func (p *parser) parsePath() (Expr, error) {
	src, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	steps, err := p.parseSteps()
	if err != nil {
		return nil, err
	}
	if len(steps) == 0 {
		return src, nil
	}
	return &PathExpr{Source: src, Steps: steps}, nil
}

func (p *parser) parseSteps() ([]PathStep, error) {
	var steps []PathStep
	for {
		t, err := p.lex.peek()
		if err != nil {
			return nil, err
		}
		if t.kind != tokSlash && t.kind != tokDSlash {
			return steps, nil
		}
		p.lex.next()
		st := PathStep{Descendant: t.kind == tokDSlash}
		nt, err := p.lex.next()
		if err != nil {
			return nil, err
		}
		switch nt.kind {
		case tokAt:
			name, err := p.lex.next()
			if err != nil {
				return nil, err
			}
			if name.kind != tokName && name.kind != tokStar {
				return nil, p.errf(name, "expected attribute name after @")
			}
			st.Attr = true
			st.Name = name.text
			if name.kind == tokStar {
				st.Name = "*"
			}
		case tokStar:
			st.Name = "*"
		case tokName:
			// text() step?
			if nt.text == "text" {
				after, err := p.lex.peek()
				if err != nil {
					return nil, err
				}
				if after.kind == tokLParen {
					p.lex.next()
					if err := p.expect(tokRParen); err != nil {
						return nil, err
					}
					st.Text = true
					break
				}
			}
			st.Name = nt.text
		default:
			return nil, p.errf(nt, "expected step name, got %s", nt.kind)
		}
		// Step predicates.
		for {
			t, err := p.lex.peek()
			if err != nil {
				return nil, err
			}
			if t.kind != tokLBracket {
				break
			}
			p.lex.next()
			pred, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
			st.Preds = append(st.Preds, pred)
		}
		steps = append(steps, st)
	}
}

func (p *parser) expect(k tokenKind) error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	if t.kind != k {
		return p.errf(t, "expected %s, got %s", k, t.kind)
	}
	return nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t, err := p.lex.next()
	if err != nil {
		return nil, err
	}
	switch t.kind {
	case tokVar:
		return &VarRef{Name: t.text}, nil
	case tokDot:
		return &ContextItem{}, nil
	case tokAt:
		name, err := p.lex.next()
		if err != nil {
			return nil, err
		}
		if name.kind != tokName && name.kind != tokStar {
			return nil, p.errf(name, "expected attribute name after @")
		}
		return &PathExpr{Steps: []PathStep{{Attr: true, Name: name.text}}}, nil
	case tokString:
		return &StringLit{Value: t.text}, nil
	case tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf(t, "bad number %q", t.text)
		}
		return &NumberLit{Value: v}, nil
	case tokMinus:
		inner, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: OpSub, Left: &NumberLit{Value: 0}, Right: inner}, nil
	case tokLParen:
		// () is the empty sequence.
		nt, err := p.lex.peek()
		if err != nil {
			return nil, err
		}
		if nt.kind == tokRParen {
			p.lex.next()
			return &Sequence{}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokLt:
		return p.parseElementCtor(t)
	case tokSlash, tokDSlash:
		return nil, p.errf(t, "rooted paths need an explicit doc() or collection() source")
	case tokName:
		nt, err := p.lex.peek()
		if err != nil {
			return nil, err
		}
		if nt.kind == tokLParen {
			return p.parseFuncCall(t.text)
		}
		// A bare name is a relative child step from the context item, as
		// used inside step predicates: Item[Section = "CD"].
		return &PathExpr{Steps: []PathStep{{Name: t.text}}}, nil
	default:
		return nil, p.errf(t, "unexpected %s", t.kind)
	}
}

func (p *parser) parseFuncCall(name string) (Expr, error) {
	if err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	call := &FuncCall{Name: name}
	t, err := p.lex.peek()
	if err != nil {
		return nil, err
	}
	if t.kind == tokRParen {
		p.lex.next()
	} else {
		for {
			arg, err := p.parseSingle()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, arg)
			t, err := p.lex.next()
			if err != nil {
				return nil, err
			}
			if t.kind == tokRParen {
				break
			}
			if t.kind != tokComma {
				return nil, p.errf(t, "expected ',' or ')' in %s(...)", name)
			}
		}
	}
	// collection() and doc() are source expressions with literal names.
	switch name {
	case "collection", "doc":
		if len(call.Args) != 1 {
			return nil, fmt.Errorf("xquery: %s() takes exactly one string literal", name)
		}
		lit, ok := call.Args[0].(*StringLit)
		if !ok {
			return nil, fmt.Errorf("xquery: %s() takes a string literal argument", name)
		}
		if name == "collection" {
			return &CollectionCall{Name: lit.Value}, nil
		}
		return &DocCall{Name: lit.Value}, nil
	}
	return call, nil
}

// parseElementCtor parses <name attr="v">children</name>. The opening '<'
// token has been consumed. Content is raw text with {expr} embeds and
// nested constructors; the parser scans it directly.
func (p *parser) parseElementCtor(open token) (Expr, error) {
	name := p.lex.scanName()
	if name == "" {
		return nil, p.errf(open, "'<' here must start an element constructor (comparisons need a left operand)")
	}
	ctor := &ElementCtor{Name: name}
	// Attributes.
	for {
		if err := p.lex.skipSpaceAndComments(); err != nil {
			return nil, err
		}
		if p.lex.pos >= len(p.lex.in) {
			return nil, p.errf(open, "unterminated element constructor <%s", name)
		}
		c := p.lex.in[p.lex.pos]
		if c == '>' {
			p.lex.pos++
			break
		}
		if c == '/' && strings.HasPrefix(p.lex.in[p.lex.pos:], "/>") {
			p.lex.pos += 2
			return ctor, nil
		}
		aname := p.lex.scanName()
		if aname == "" {
			return nil, p.errf(open, "bad attribute in <%s>", name)
		}
		if p.lex.pos >= len(p.lex.in) || p.lex.in[p.lex.pos] != '=' {
			return nil, p.errf(open, "attribute %s needs '='", aname)
		}
		p.lex.pos++
		if p.lex.pos >= len(p.lex.in) {
			return nil, p.errf(open, "attribute %s needs a value", aname)
		}
		if q := p.lex.in[p.lex.pos]; q == '"' || q == '\'' {
			p.lex.pos++
			s := p.lex.pos
			// A quoted value may itself be an {expr} embed.
			for p.lex.pos < len(p.lex.in) && p.lex.in[p.lex.pos] != q {
				p.lex.pos++
			}
			if p.lex.pos >= len(p.lex.in) {
				return nil, p.errf(open, "unterminated attribute value for %s", aname)
			}
			raw := p.lex.in[s:p.lex.pos]
			p.lex.pos++
			if strings.HasPrefix(raw, "{") && strings.HasSuffix(raw, "}") {
				inner, err := Parse(raw[1 : len(raw)-1])
				if err != nil {
					return nil, err
				}
				ctor.Attrs = append(ctor.Attrs, AttrCtor{Name: aname, Value: inner})
			} else {
				ctor.Attrs = append(ctor.Attrs, AttrCtor{Name: aname, Value: &StringLit{Value: raw}})
			}
		} else {
			return nil, p.errf(open, "attribute %s needs a quoted value", aname)
		}
	}
	// Content until </name>.
	for {
		if p.lex.pos >= len(p.lex.in) {
			return nil, p.errf(open, "missing </%s>", name)
		}
		c := p.lex.in[p.lex.pos]
		switch {
		case c == '{':
			p.lex.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokRBrace); err != nil {
				return nil, err
			}
			ctor.Children = append(ctor.Children, e)
		case strings.HasPrefix(p.lex.in[p.lex.pos:], "</"):
			p.lex.pos += 2
			end := p.lex.scanName()
			if end != name {
				return nil, p.errf(open, "mismatched </%s> for <%s>", end, name)
			}
			if err := p.lex.skipSpaceAndComments(); err != nil {
				return nil, err
			}
			if p.lex.pos >= len(p.lex.in) || p.lex.in[p.lex.pos] != '>' {
				return nil, p.errf(open, "malformed </%s>", name)
			}
			p.lex.pos++
			return ctor, nil
		case c == '<':
			p.lex.pos++
			child, err := p.parseElementCtor(open)
			if err != nil {
				return nil, err
			}
			ctor.Children = append(ctor.Children, child)
		default:
			s := p.lex.pos
			for p.lex.pos < len(p.lex.in) && p.lex.in[p.lex.pos] != '<' && p.lex.in[p.lex.pos] != '{' {
				p.lex.pos++
			}
			text := p.lex.in[s:p.lex.pos]
			if strings.TrimSpace(text) != "" {
				ctor.Children = append(ctor.Children, &TextLit{Value: text})
			}
		}
	}
}
