package xquery

import (
	"fmt"
	"math"
	"strings"

	"partix/internal/xmltree"
)

// sliceString implements XPath substring semantics: 1-based start, byte
// positions, out-of-range clamped.
func sliceString(s string, start, length int) string {
	if length <= 0 {
		return ""
	}
	from := start - 1
	to := from + length
	if from < 0 {
		from = 0
	}
	if from >= len(s) {
		return ""
	}
	if to > len(s) {
		to = len(s)
	}
	if to <= from {
		return ""
	}
	return s[from:to]
}

func (c *context) evalFunc(f *FuncCall) (Seq, error) {
	switch f.Name {
	case "count":
		if len(f.Args) == 1 {
			if n, ok := c.probeCount(f.Args[0]); ok {
				return Seq{float64(n)}, nil
			}
		}
		args, err := c.evalArgs(f, 1)
		if err != nil {
			return nil, err
		}
		return Seq{float64(len(args[0]))}, nil
	case "sum", "avg", "min", "max":
		args, err := c.evalArgs(f, 1)
		if err != nil {
			return nil, err
		}
		return c.aggregate(f.Name, args[0])
	case "contains", "starts-with", "ends-with":
		args, err := c.evalArgs(f, 2)
		if err != nil {
			return nil, err
		}
		// contains over a node sequence is existential: true if any
		// selected node's value matches (the form the paper's text-search
		// queries use: contains(//Description, "good")).
		needle := seqString(args[1])
		for _, it := range args[0] {
			hay := ItemString(it)
			var ok bool
			switch f.Name {
			case "contains":
				ok = strings.Contains(hay, needle)
			case "starts-with":
				ok = strings.HasPrefix(hay, needle)
			default:
				ok = strings.HasSuffix(hay, needle)
			}
			if ok {
				return Seq{true}, nil
			}
		}
		return Seq{false}, nil
	case "not":
		args, err := c.evalArgs(f, 1)
		if err != nil {
			return nil, err
		}
		b, err := EffectiveBool(args[0])
		if err != nil {
			return nil, err
		}
		return Seq{!b}, nil
	case "empty":
		if len(f.Args) == 1 {
			if ex, ok := c.probeExists(f.Args[0]); ok {
				return Seq{!ex}, nil
			}
		}
		args, err := c.evalArgs(f, 1)
		if err != nil {
			return nil, err
		}
		return Seq{len(args[0]) == 0}, nil
	case "exists":
		if len(f.Args) == 1 {
			if ex, ok := c.probeExists(f.Args[0]); ok {
				return Seq{ex}, nil
			}
		}
		args, err := c.evalArgs(f, 1)
		if err != nil {
			return nil, err
		}
		return Seq{len(args[0]) > 0}, nil
	case "string":
		args, err := c.evalArgs(f, 1)
		if err != nil {
			return nil, err
		}
		if len(args[0]) == 0 {
			return Seq{""}, nil
		}
		return Seq{ItemString(args[0][0])}, nil
	case "number":
		args, err := c.evalArgs(f, 1)
		if err != nil {
			return nil, err
		}
		if len(args[0]) == 0 {
			return nil, fmt.Errorf("xquery: number() of empty sequence")
		}
		n, err := itemNumber(args[0][0])
		if err != nil {
			return nil, err
		}
		return Seq{n}, nil
	case "concat":
		if len(f.Args) < 2 {
			return nil, fmt.Errorf("xquery: concat() needs at least 2 arguments")
		}
		var sb strings.Builder
		for _, a := range f.Args {
			v, err := c.eval(a)
			if err != nil {
				return nil, err
			}
			sb.WriteString(seqString(v))
		}
		return Seq{sb.String()}, nil
	case "string-length":
		args, err := c.evalArgs(f, 1)
		if err != nil {
			return nil, err
		}
		return Seq{float64(len(seqString(args[0])))}, nil
	case "distinct-values":
		args, err := c.evalArgs(f, 1)
		if err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		var out Seq
		for _, it := range args[0] {
			s := ItemString(it)
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
		return out, nil
	case "name":
		args, err := c.evalArgs(f, 1)
		if err != nil {
			return nil, err
		}
		if len(args[0]) == 0 {
			return Seq{""}, nil
		}
		if n, ok := args[0][0].(*xmltree.Node); ok {
			return Seq{n.Name}, nil
		}
		return Seq{""}, nil
	case "substring":
		if len(f.Args) != 2 && len(f.Args) != 3 {
			return nil, fmt.Errorf("xquery: substring() takes 2 or 3 arguments")
		}
		sv, err := c.eval(f.Args[0])
		if err != nil {
			return nil, err
		}
		s := seqString(sv)
		startv, err := c.evalNumber(f.Args[1])
		if err != nil || startv == nil {
			return nil, fmt.Errorf("xquery: substring() start must be a number")
		}
		// XPath semantics: 1-based start, rounded.
		start := int(math.Round(*startv))
		length := len(s) - (start - 1)
		if len(f.Args) == 3 {
			lv, err := c.evalNumber(f.Args[2])
			if err != nil || lv == nil {
				return nil, fmt.Errorf("xquery: substring() length must be a number")
			}
			length = int(math.Round(*lv))
		}
		return Seq{sliceString(s, start, length)}, nil
	case "upper-case", "lower-case", "normalize-space":
		args, err := c.evalArgs(f, 1)
		if err != nil {
			return nil, err
		}
		s := seqString(args[0])
		switch f.Name {
		case "upper-case":
			s = strings.ToUpper(s)
		case "lower-case":
			s = strings.ToLower(s)
		default:
			s = strings.Join(strings.Fields(s), " ")
		}
		return Seq{s}, nil
	case "round", "floor", "ceiling", "abs":
		args, err := c.evalArgs(f, 1)
		if err != nil {
			return nil, err
		}
		if len(args[0]) == 0 {
			return nil, nil
		}
		v, err := itemNumber(args[0][0])
		if err != nil {
			return nil, err
		}
		switch f.Name {
		case "round":
			v = math.Round(v)
		case "floor":
			v = math.Floor(v)
		case "ceiling":
			v = math.Ceil(v)
		default:
			v = math.Abs(v)
		}
		return Seq{v}, nil
	case "true":
		if len(f.Args) != 0 {
			return nil, fmt.Errorf("xquery: true() takes no arguments")
		}
		return Seq{true}, nil
	case "false":
		if len(f.Args) != 0 {
			return nil, fmt.Errorf("xquery: false() takes no arguments")
		}
		return Seq{false}, nil
	default:
		return nil, fmt.Errorf("xquery: unknown function %s()", f.Name)
	}
}

func (c *context) evalArgs(f *FuncCall, want int) ([]Seq, error) {
	if len(f.Args) != want {
		return nil, fmt.Errorf("xquery: %s() takes %d argument(s), got %d", f.Name, want, len(f.Args))
	}
	out := make([]Seq, len(f.Args))
	for i, a := range f.Args {
		v, err := c.eval(a)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (c *context) aggregate(name string, s Seq) (Seq, error) {
	if len(s) == 0 {
		if name == "sum" {
			return Seq{0.0}, nil
		}
		return nil, nil // avg/min/max of empty is empty
	}
	var acc float64
	for i, it := range s {
		v, err := itemNumber(it)
		if err != nil {
			return nil, fmt.Errorf("%s(): %w", name, err)
		}
		switch {
		case i == 0:
			acc = v
		case name == "sum" || name == "avg":
			acc += v
		case name == "min" && v < acc:
			acc = v
		case name == "max" && v > acc:
			acc = v
		}
	}
	if name == "avg" {
		acc /= float64(len(s))
	}
	return Seq{acc}, nil
}
