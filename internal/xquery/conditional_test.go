package xquery

import (
	"reflect"
	"testing"

	"partix/internal/xmltree"
)

func TestIfThenElse(t *testing.T) {
	src := itemsSource()
	cases := map[string]string{
		`if (1 = 1) then "yes" else "no"`:                         "yes",
		`if (1 = 2) then "yes" else "no"`:                         "no",
		`if (empty(collection("items")/Item/Nope)) then 1 else 2`: "1",
		`if (collection("items")/Item) then "has" else "none"`:    "has",
	}
	for q, want := range cases {
		got := evalStrings(t, src, q)
		if len(got) != 1 || got[0] != want {
			t.Errorf("%s = %v, want %q", q, got, want)
		}
	}
}

func TestIfInsideFLWOR(t *testing.T) {
	src := itemsSource()
	got := evalStrings(t, src, `
	  for $i in collection("items")/Item
	  return if ($i/Section = "CD") then concat($i/Code, "*") else $i/Code`)
	want := []string{"I1*", "I2", "I3*", "I4"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestIfBranchesAreLazy(t *testing.T) {
	src := itemsSource()
	// The untaken branch must not be evaluated: it would fail otherwise.
	got := evalStrings(t, src, `if (1 = 1) then "safe" else $unbound`)
	if got[0] != "safe" {
		t.Fatalf("got %v", got)
	}
	if _, err := EvalQuery(`if (1 = 2) then "safe" else $unbound`, src); err == nil {
		t.Fatal("taken else branch with unbound variable succeeded")
	}
}

func TestQuantifiers(t *testing.T) {
	src := itemsSource()
	cases := map[string]bool{
		`some $i in collection("items")/Item satisfies $i/Section = "CD"`:    true,
		`some $i in collection("items")/Item satisfies $i/Section = "Vinyl"`: false,
		`every $i in collection("items")/Item satisfies exists($i/Code)`:     true,
		`every $i in collection("items")/Item satisfies $i/Section = "CD"`:   false,
		`some $x in (1, 2, 3) satisfies $x > 2`:                              true,
		`every $x in (1, 2, 3) satisfies $x > 0`:                             true,
		`some $x in () satisfies 1 = 1`:                                      false,
		`every $x in () satisfies 1 = 2`:                                     true, // vacuous
		`some $x in (1, 2), $y in (10, 20) satisfies $x * $y = 40`:           true,
		`every $x in (1, 2), $y in (10, 20) satisfies $x * $y >= 10`:         true,
		`every $x in (1, 2), $y in (10, 20) satisfies $x * $y > 10`:          false,
	}
	for q, want := range cases {
		res, err := EvalQuery(q, src)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if b, ok := res[0].(bool); !ok || b != want {
			t.Errorf("%s = %v, want %v", q, res[0], want)
		}
	}
}

func TestQuantifierInWhere(t *testing.T) {
	src := itemsSource()
	got := evalStrings(t, src, `
	  for $i in collection("items")/Item
	  where some $p in $i/PictureList/Picture satisfies $p/Name = "p1"
	  return $i/Code`)
	if !reflect.DeepEqual(got, []string{"I1"}) {
		t.Fatalf("got %v (only i1 has two pictures)", got)
	}
}

func TestConditionalFormatRoundTrip(t *testing.T) {
	src := itemsSource()
	queries := []string{
		`if (count(collection("items")/Item) > 2) then "many" else "few"`,
		`some $i in collection("items")/Item satisfies contains($i/Description, "good")`,
		`every $i in collection("items")/Item, $s in $i/Section satisfies string-length(string($s)) > 1`,
		`for $i in collection("items")/Item return if ($i/PictureList) then "pics" else "bare"`,
	}
	for _, q := range queries {
		e := MustParse(q)
		re, err := Parse(Format(e))
		if err != nil {
			t.Fatalf("%s: reparse of %q: %v", q, Format(e), err)
		}
		a, _ := Eval(e, src)
		b, _ := Eval(re, src)
		if seqString(a) != seqString(b) {
			t.Errorf("%s: round trip changed result", q)
		}
	}
}

func TestConditionalParseErrors(t *testing.T) {
	bad := []string{
		`if (1 = 1) then "a"`,          // XQuery requires else
		`if 1 = 1 then "a" else "b"`,   // missing parens → path "if" then junk
		`some satisfies 1`,             // missing binding
		`some $x in (1) satisfy 1 = 1`, // typo keyword
		`every $x (1) satisfies 1`,     // missing in
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("%q accepted", q)
		}
	}
}

func TestBareIfNameStillAPath(t *testing.T) {
	// "if" not followed by "(" falls back to a relative path, so element
	// names called "if" keep working inside predicates.
	src := newMemSource(xmltree.NewCollection("weird",
		xmltree.MustParseString("w1", `<root><if>x</if></root>`)))
	got := evalStrings(t, src, `collection("weird")/root[if = "x"]/if`)
	if !reflect.DeepEqual(got, []string{"x"}) {
		t.Fatalf("got %v", got)
	}
}
