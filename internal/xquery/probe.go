package xquery

// Index-only probes: count()/exists()/empty() over pred-free collection-
// rooted paths can be answered from a path summary and value index without
// decoding a single document. The evaluator recognizes the eligible
// shapes, and a Source implementing IndexProber answers them; any source
// is free to decline (ok=false), in which case evaluation proceeds
// normally. The probe must be EXACT — unlike hints, which are merely
// necessary conditions — so the eligible shapes are deliberately narrow.

// PathProbe asks a source a structural question about one collection: how
// many nodes match Steps (ProbeCount), or whether any document has such a
// node (ProbeExists). Empty Steps address whole documents. When Value is
// set the question is instead whether any node matching Value.Steps has a
// value satisfying the comparison (exists-shaped probes only).
type PathProbe struct {
	Collection string
	Steps      []LabelStep
	Value      *ValueProbe
}

// ValueProbe is the value half of an exists probe: some node at Steps
// must compare true against Literal under the evaluator's general-
// comparison semantics.
type ValueProbe struct {
	Steps   []LabelStep
	Op      CmpOp
	Literal string
}

// IndexProber is the optional Source extension answering probes from
// indexes. ok=false means "cannot answer exactly; evaluate normally".
type IndexProber interface {
	ProbeCount(p *PathProbe) (n int64, ok bool)
	ProbeExists(p *PathProbe) (exists bool, ok bool)
}

// ExtractCountProbe recognizes count() arguments answerable from the path
// summary: collection("c"), a pred-free collection-rooted path, or the
// FLWOR form `for $v in <those> return $v`. Predicates are rejected
// outright — postings are document-granular, so the summary cannot count
// qualifying nodes, only all nodes at a label path.
func ExtractCountProbe(arg Expr) *PathProbe {
	if f, isFLWOR := arg.(*FLWOR); isFLWOR {
		in, ok := probeFLWORBody(f, false)
		if !ok {
			return nil
		}
		arg = in
	}
	coll, raw, ok := collectionRooted(arg)
	if !ok {
		return nil
	}
	for _, st := range raw {
		if len(st.Preds) > 0 {
			return nil
		}
	}
	steps, ok := toLabelSteps(raw)
	if !ok || wrapperAmbiguous(steps) {
		return nil
	}
	return &PathProbe{Collection: coll, Steps: steps}
}

// ExtractExistsProbe recognizes exists()/empty() arguments answerable from
// the indexes. On top of the count shapes, the final step may carry one
// predicate (a relative existence path, or a comparison of a relative
// path / the context item against a literal), and the FLWOR form may have
// a where-clause of those same shapes over its variable — existence, being
// a plain ∃ over (node, value), decomposes exactly onto the indexes where
// a count would not.
func ExtractExistsProbe(arg Expr) *PathProbe {
	if f, isFLWOR := arg.(*FLWOR); isFLWOR {
		return existsProbeFLWOR(f)
	}
	coll, raw, ok := collectionRooted(arg)
	if !ok {
		return nil
	}
	var pred Expr
	for i, st := range raw {
		if len(st.Preds) == 0 {
			continue
		}
		if i != len(raw)-1 || len(st.Preds) != 1 {
			return nil
		}
		pred = st.Preds[0]
	}
	steps, ok := toLabelSteps(raw) // drops the predicate, keeps labels
	if !ok {
		return nil
	}
	p := &PathProbe{Collection: coll, Steps: steps}
	if pred != nil && !attachPredicate(p, pred) {
		return nil
	}
	if wrapperAmbiguous(p.Steps) || (p.Value != nil && wrapperAmbiguous(p.Value.Steps)) {
		return nil
	}
	return p
}

// probeFLWORBody unwraps `for $v in IN [where W] return $v` to IN,
// requiring the trivial return so the binding count (or existence) equals
// the result count (existence). withWhere permits a where-clause, handed
// back to the caller for further analysis.
func probeFLWORBody(f *FLWOR, withWhere bool) (Expr, bool) {
	if len(f.Clauses) != 1 || f.Clauses[0].Let || len(f.OrderBy) != 0 {
		return nil, false
	}
	if f.Where != nil && !withWhere {
		return nil, false
	}
	v, ok := f.Return.(*VarRef)
	if !ok || v.Name != f.Clauses[0].Var {
		return nil, false
	}
	return f.Clauses[0].In, true
}

func existsProbeFLWOR(f *FLWOR) *PathProbe {
	in, ok := probeFLWORBody(f, true)
	if !ok {
		return nil
	}
	coll, raw, ok := collectionRooted(in)
	if !ok {
		return nil
	}
	for _, st := range raw {
		if len(st.Preds) > 0 {
			return nil
		}
	}
	steps, ok := toLabelSteps(raw)
	if !ok {
		return nil
	}
	p := &PathProbe{Collection: coll, Steps: steps}
	if f.Where != nil && !attachWhere(p, f.Where, f.Clauses[0].Var) {
		return nil
	}
	if wrapperAmbiguous(p.Steps) || (p.Value != nil && wrapperAmbiguous(p.Value.Steps)) {
		return nil
	}
	return p
}

// attachPredicate folds a final-step predicate into the probe. The
// predicate's context is the node at p.Steps, so relative paths extend it.
// Soundness of the decomposition: a node exists at P with predicate true
// iff a node exists at P·rel with the asked property, because every match
// of the concatenated pattern passes through an ancestor matching P.
func attachPredicate(p *PathProbe, pred Expr) bool {
	switch x := pred.(type) {
	case *PathExpr: // [Picture] — relative existence
		if x.Source != nil {
			return false
		}
		rel, ok := predFreeLabelSteps(x)
		if !ok {
			return false
		}
		p.Steps = append(p.Steps, rel...)
		return true
	case *Binary:
		cmp, isCmp := cmpOpFor(x.Op)
		if !isCmp {
			return false
		}
		path, lit, flipped, ok := pathAndLiteral(x.Left, x.Right)
		if !ok {
			return false
		}
		if flipped {
			cmp = flipCmp(cmp)
		}
		vsteps := append([]LabelStep(nil), p.Steps...)
		switch pe := path.(type) {
		case *ContextItem: // [. > 100]
		case *PathExpr: // [Price > 100]
			if pe.Source != nil {
				return false
			}
			rel, ok := predFreeLabelSteps(pe)
			if !ok {
				return false
			}
			vsteps = append(vsteps, rel...)
		default:
			return false
		}
		if len(vsteps) == 0 {
			return false // the value of the document wrapper is not indexed
		}
		p.Value = &ValueProbe{Steps: vsteps, Op: cmp, Literal: litString(lit)}
		return true
	}
	return false
}

// attachWhere folds a FLWOR where-clause into the probe; the clause must
// be a single term over the for-variable (conjunctions would need per-
// binding correlation the indexes cannot express).
func attachWhere(p *PathProbe, w Expr, varName string) bool {
	switch x := w.(type) {
	case *PathExpr: // where $v/Picture
		rel, ok := varRelativeSteps(x, varName)
		if !ok {
			return false
		}
		p.Steps = append(p.Steps, rel...)
		return true
	case *FuncCall: // where exists($v/Picture)
		if x.Name != "exists" || len(x.Args) != 1 {
			return false
		}
		pe, isPath := x.Args[0].(*PathExpr)
		if !isPath {
			return false
		}
		rel, ok := varRelativeSteps(pe, varName)
		if !ok {
			return false
		}
		p.Steps = append(p.Steps, rel...)
		return true
	case *Binary:
		cmp, isCmp := cmpOpFor(x.Op)
		if !isCmp {
			return false
		}
		path, lit, flipped, ok := pathAndLiteral(x.Left, x.Right)
		if !ok {
			return false
		}
		if flipped {
			cmp = flipCmp(cmp)
		}
		vsteps := append([]LabelStep(nil), p.Steps...)
		switch pe := path.(type) {
		case *VarRef: // where $v = "x"
			if pe.Name != varName {
				return false
			}
		case *PathExpr: // where $v/Price > 100
			rel, ok := varRelativeSteps(pe, varName)
			if !ok {
				return false
			}
			vsteps = append(vsteps, rel...)
		default:
			return false
		}
		if len(vsteps) == 0 {
			return false
		}
		p.Value = &ValueProbe{Steps: vsteps, Op: cmp, Literal: litString(lit)}
		return true
	}
	return false
}

// predFreeLabelSteps converts a relative path's steps, rejecting nested
// predicates.
func predFreeLabelSteps(p *PathExpr) ([]LabelStep, bool) {
	for _, st := range p.Steps {
		if len(st.Preds) > 0 {
			return nil, false
		}
	}
	return toLabelSteps(p.Steps)
}

// varRelativeSteps accepts $var/rel paths with pred-free steps.
func varRelativeSteps(p *PathExpr, varName string) ([]LabelStep, bool) {
	v, isVar := p.Source.(*VarRef)
	if !isVar || v.Name != varName {
		return nil, false
	}
	return predFreeLabelSteps(p)
}

// probeCount answers count(arg) from the source's indexes when both the
// shape and the source allow it.
func (c *context) probeCount(arg Expr) (int64, bool) {
	prober, isProber := c.src.(IndexProber)
	if !isProber {
		return 0, false
	}
	p := ExtractCountProbe(arg)
	if p == nil {
		return 0, false
	}
	return prober.ProbeCount(p)
}

// probeExists answers exists(arg) (and, negated, empty(arg)) from the
// source's indexes when both the shape and the source allow it.
func (c *context) probeExists(arg Expr) (bool, bool) {
	prober, isProber := c.src.(IndexProber)
	if !isProber {
		return false, false
	}
	p := ExtractExistsProbe(arg)
	if p == nil {
		return false, false
	}
	return prober.ProbeExists(p)
}

// wrapperAmbiguous reports patterns whose first step could match the
// virtual #document wrapper itself (a leading //*): the wrapper is not a
// real node, the summary has no entry for it, so such probes cannot be
// answered exactly.
func wrapperAmbiguous(steps []LabelStep) bool {
	return len(steps) > 0 && steps[0].Descendant && steps[0].Name == "*" && !steps[0].Attr
}
