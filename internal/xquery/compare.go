package xquery

import (
	"strconv"
	"strings"
)

// This file is the single home of the evaluator's general-comparison
// semantics: numeric comparison when both atoms parse as numbers, raw
// string comparison otherwise, with NaN literals satisfying no numeric
// comparison. The tree-walking interpreter, the compiled executor
// (internal/xquery/exec), the engine's typed value index and the
// coordinator's statistics planner all answer value comparisons — keeping
// them on one implementation is what stops the copies from drifting.

// ParseNumber is the evaluator's numeric interpretation of an atomized
// value: ParseFloat of the space-trimmed string. Every layer that decides
// "is this value numeric?" (index pruning, statistics exclusion, the
// executors) must use exactly this rule.
func ParseNumber(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	// ParseFloat allocates its error; screen out values that cannot open a
	// float (words, paths, codes) so the vectorized comparison loop stays
	// allocation-free on non-numeric columns. Every string ParseFloat
	// accepts starts with a digit, sign, dot, or an Inf/NaN spelling.
	if c := s[0]; (c < '0' || c > '9') && c != '+' && c != '-' && c != '.' &&
		c != 'N' && c != 'n' && c != 'I' && c != 'i' {
		return 0, false
	}
	f, err := strconv.ParseFloat(s, 64)
	return f, err == nil
}

// Operand is a comparison operand with its numeric interpretation
// resolved once. The compiled executor prepares the literal side of a
// predicate once per plan and each gathered node value once per batch,
// instead of re-parsing both sides per (value, literal) pair the way the
// interpreter's atom comparison does.
type Operand struct {
	Raw   string
	Num   float64
	IsNum bool
}

// PrepOperand resolves a string's numeric interpretation.
func PrepOperand(s string) Operand {
	o := Operand{Raw: s}
	o.Num, o.IsNum = ParseNumber(s)
	return o
}

// CompareOperands applies a general-comparison operator to two prepared
// operands: numeric when both parse, string otherwise.
func CompareOperands(op BinaryOp, l, r Operand) bool {
	if l.IsNum && r.IsNum {
		switch op {
		case OpEq:
			return l.Num == r.Num
		case OpNe:
			return l.Num != r.Num
		case OpLt:
			return l.Num < r.Num
		case OpLe:
			return l.Num <= r.Num
		case OpGt:
			return l.Num > r.Num
		default:
			return l.Num >= r.Num
		}
	}
	switch op {
	case OpEq:
		return l.Raw == r.Raw
	case OpNe:
		return l.Raw != r.Raw
	case OpLt:
		return l.Raw < r.Raw
	case OpLe:
		return l.Raw <= r.Raw
	case OpGt:
		return l.Raw > r.Raw
	default:
		return l.Raw >= r.Raw
	}
}

// CompareAtoms compares two atomized items under the general-comparison
// semantics (the interpreter's per-pair form).
func CompareAtoms(op BinaryOp, l, r Item) bool {
	return CompareOperands(op, PrepOperand(ItemString(l)), PrepOperand(ItemString(r)))
}

// GeneralCompare implements XQuery general comparison: existential over
// both sequences.
func GeneralCompare(op BinaryOp, left, right Seq) bool {
	for _, l := range left {
		for _, r := range right {
			if CompareAtoms(op, l, r) {
				return true
			}
		}
	}
	return false
}

// CompareKeys orders two order-by sort keys: empty (nil) first, numeric
// when both parse, lexicographic otherwise. Returns -1, 0 or 1.
func CompareKeys(a, b Item) int {
	switch {
	case a == nil && b == nil:
		return 0
	case a == nil:
		return -1
	case b == nil:
		return 1
	}
	return CompareKeyOperands(PrepOperand(ItemString(a)), PrepOperand(ItemString(b)))
}

// CompareKeyOperands is CompareKeys over pre-atomized operands (both
// present); the compiled order-by operator prepares each key once instead
// of per pairwise comparison.
func CompareKeyOperands(a, b Operand) int {
	if a.IsNum && b.IsNum {
		switch {
		case a.Num < b.Num:
			return -1
		case a.Num > b.Num:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a.Raw, b.Raw)
}

// CompareValue compares a raw node value against a prepared literal —
// the form the engine's value index and the vectorized predicate filter
// use, where one side is fixed for many values.
func CompareValue(op BinaryOp, value string, lit Operand) bool {
	return CompareOperands(op, PrepOperand(value), lit)
}

// CmpToBinaryOp maps a constraint comparison operator to its
// general-comparison form; CmpExists has none (ok=false).
func CmpToBinaryOp(op CmpOp) (BinaryOp, bool) {
	switch op {
	case CmpEq:
		return OpEq, true
	case CmpLt:
		return OpLt, true
	case CmpLe:
		return OpLe, true
	case CmpGt:
		return OpGt, true
	case CmpGe:
		return OpGe, true
	}
	return 0, false
}
