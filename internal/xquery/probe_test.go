package xquery

import (
	"reflect"
	"testing"
)

func TestExtractCountProbeEligibleShapes(t *testing.T) {
	cases := []struct {
		query string
		steps []LabelStep
	}{
		{`collection("items")`, []LabelStep{}},
		{`collection("items")/Item/Code`, []LabelStep{{Name: "Item"}, {Name: "Code"}}},
		{`collection("items")//Picture`, []LabelStep{{Descendant: true, Name: "Picture"}}},
		{`collection("items")/Item/@id`, []LabelStep{{Name: "Item"}, {Name: "id", Attr: true}}},
		{`for $i in collection("items")/Item return $i`, []LabelStep{{Name: "Item"}}},
	}
	for _, tc := range cases {
		p := ExtractCountProbe(MustParse(tc.query))
		if p == nil {
			t.Errorf("%s: no probe extracted", tc.query)
			continue
		}
		if p.Collection != "items" || p.Value != nil {
			t.Errorf("%s: probe = %+v", tc.query, p)
		}
		if !reflect.DeepEqual(p.Steps, tc.steps) {
			t.Errorf("%s: steps = %+v, want %+v", tc.query, p.Steps, tc.steps)
		}
	}
}

func TestExtractCountProbeRejectsInexactShapes(t *testing.T) {
	queries := []string{
		// Postings are document-granular: a predicate filters nodes, so the
		// summary cannot count the qualifying ones.
		`collection("items")/Item[Section = "CD"]`,
		// A where-clause filters bindings the same way.
		`for $i in collection("items")/Item where $i/Section = "CD" return $i`,
		// Non-trivial return: the result count is not the binding count.
		`for $i in collection("items")/Item return $i/Code`,
		// Ordering clauses take the FLWOR off the recognized shape.
		`for $i in collection("items")/Item order by $i/Code return $i`,
		// Leading //* could match the virtual document wrapper.
		`collection("items")//*`,
		// text() has no label-path entry.
		`collection("items")/Item/text()`,
		// Not collection-rooted.
		`$d/Item`,
	}
	for _, q := range queries {
		if p := ExtractCountProbe(MustParse(q)); p != nil {
			t.Errorf("%s: extracted %+v, want nil", q, p)
		}
	}
}

func TestExtractExistsProbeEligibleShapes(t *testing.T) {
	item := []LabelStep{{Name: "Item"}}
	cases := []struct {
		query string
		steps []LabelStep
		value *ValueProbe
	}{
		// Count shapes are all exists-eligible too.
		{`collection("items")/Item/Code`, []LabelStep{{Name: "Item"}, {Name: "Code"}}, nil},
		// A relative existence predicate on the final step extends the path:
		// an Item with a PictureList exists iff an Item/PictureList node does.
		{`collection("items")/Item[PictureList]`,
			[]LabelStep{{Name: "Item"}, {Name: "PictureList"}}, nil},
		// A final-step comparison becomes a value probe.
		{`collection("items")/Item[Section = "CD"]`, item,
			&ValueProbe{Steps: []LabelStep{{Name: "Item"}, {Name: "Section"}}, Op: CmpEq, Literal: "CD"}},
		{`collection("items")/Item[@id < 5]`, item,
			&ValueProbe{Steps: []LabelStep{{Name: "Item"}, {Name: "id", Attr: true}}, Op: CmpLt, Literal: "5"}},
		// Context-item comparison probes the value of the path itself.
		{`collection("items")/Item/Section[. = "CD"]`,
			[]LabelStep{{Name: "Item"}, {Name: "Section"}},
			&ValueProbe{Steps: []LabelStep{{Name: "Item"}, {Name: "Section"}}, Op: CmpEq, Literal: "CD"}},
		// Literal on the left mirrors the operator.
		{`collection("items")/Item[5 >= @id]`, item,
			&ValueProbe{Steps: []LabelStep{{Name: "Item"}, {Name: "id", Attr: true}}, Op: CmpLe, Literal: "5"}},
		// FLWOR where-clauses of the same shapes.
		{`for $i in collection("items")/Item where $i/Section = "CD" return $i`, item,
			&ValueProbe{Steps: []LabelStep{{Name: "Item"}, {Name: "Section"}}, Op: CmpEq, Literal: "CD"}},
		{`for $i in collection("items")/Item where $i/PictureList return $i`,
			[]LabelStep{{Name: "Item"}, {Name: "PictureList"}}, nil},
		{`for $i in collection("items")/Item where exists($i/PictureList/Picture) return $i`,
			[]LabelStep{{Name: "Item"}, {Name: "PictureList"}, {Name: "Picture"}}, nil},
		// where $v OP lit probes the binding path's own value.
		{`for $s in collection("items")/Item/Section where $s = "CD" return $s`,
			[]LabelStep{{Name: "Item"}, {Name: "Section"}},
			&ValueProbe{Steps: []LabelStep{{Name: "Item"}, {Name: "Section"}}, Op: CmpEq, Literal: "CD"}},
	}
	for _, tc := range cases {
		p := ExtractExistsProbe(MustParse(tc.query))
		if p == nil {
			t.Errorf("%s: no probe extracted", tc.query)
			continue
		}
		if p.Collection != "items" || !reflect.DeepEqual(p.Steps, tc.steps) {
			t.Errorf("%s: probe = %+v, want steps %+v", tc.query, p, tc.steps)
		}
		if !reflect.DeepEqual(p.Value, tc.value) {
			t.Errorf("%s: value = %+v, want %+v", tc.query, p.Value, tc.value)
		}
	}
}

func TestExtractExistsProbeRejectsInexactShapes(t *testing.T) {
	queries := []string{
		// Predicate on a non-final step: the remaining steps apply only to
		// nodes passing the predicate, which the decomposition loses.
		`collection("items")/Item[Section = "CD"]/Code`,
		// Conjunctive where would need per-binding correlation.
		`for $i in collection("items")/Item where $i/Section = "CD" and $i/@id < 5 return $i`,
		// != is not a recognized comparison.
		`collection("items")/Item[Section != "CD"]`,
		// Where-clause path carrying its own predicate.
		`for $i in collection("items")/Item where $i/PictureList[Picture] return $i`,
		// Path-to-path comparison has no literal operand.
		`collection("items")/Item[Section = Code]`,
		// Ordering, multiple clauses, non-trivial return.
		`for $i in collection("items")/Item order by $i/Code return $i`,
		`for $a in collection("items")/Item, $b in collection("items")/Item return $a`,
		`for $i in collection("items")/Item where $i/Section = "CD" return $i/Code`,
		// Leading //* could match the virtual document wrapper.
		`collection("items")//*`,
		`collection("items")//*[Section = "CD"]`,
		// Not collection-rooted.
		`$d/Item`,
	}
	for _, q := range queries {
		if p := ExtractExistsProbe(MustParse(q)); p != nil {
			t.Errorf("%s: extracted %+v, want nil", q, p)
		}
	}
}

// proberSource wraps memSource with canned probe answers and records which
// probes the evaluator asked.
type proberSource struct {
	*memSource
	countAnswer  int64
	existsAnswer bool
	decline      bool
	probes       []*PathProbe
}

func (p *proberSource) ProbeCount(q *PathProbe) (int64, bool) {
	p.probes = append(p.probes, q)
	return p.countAnswer, !p.decline
}

func (p *proberSource) ProbeExists(q *PathProbe) (bool, bool) {
	p.probes = append(p.probes, q)
	return p.existsAnswer, !p.decline
}

func TestEvalUsesIndexProber(t *testing.T) {
	src := &proberSource{memSource: itemsSource(), countAnswer: 42, existsAnswer: false}
	got, err := Eval(MustParse(`count(collection("items")/Item)`), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != float64(42) {
		t.Fatalf("count = %v, want the probe answer 42", got)
	}
	// exists() takes the prober's word even when the documents disagree.
	got, err = Eval(MustParse(`exists(collection("items")/Item)`), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != false {
		t.Fatalf("exists = %v, want the probe answer false", got)
	}
	// empty() is the negation of the same probe.
	got, err = Eval(MustParse(`empty(collection("items")/Item)`), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != true {
		t.Fatalf("empty = %v, want true", got)
	}
	if len(src.probes) != 3 {
		t.Fatalf("probes asked = %d, want 3", len(src.probes))
	}
}

func TestEvalFallsBackWhenProberDeclines(t *testing.T) {
	src := &proberSource{memSource: itemsSource(), countAnswer: 42, decline: true}
	got, err := Eval(MustParse(`count(collection("items")/Item)`), src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Eval(MustParse(`count(collection("items")/Item)`), src.memSource)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("declined probe: got %v, want normal evaluation %v", got, want)
	}
	if len(src.probes) == 0 {
		t.Fatal("prober was never consulted")
	}
}

func TestEvalIgnoresProbeForIneligibleShape(t *testing.T) {
	// The shape is ineligible (predicate under count), so the prober must
	// not be consulted and evaluation runs normally.
	src := &proberSource{memSource: itemsSource(), countAnswer: 42}
	got, err := Eval(MustParse(`count(collection("items")/Item[Section = "CD"])`), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(src.probes) != 0 {
		t.Fatalf("prober consulted for ineligible shape: %+v", src.probes)
	}
	want, err := Eval(MustParse(`count(collection("items")/Item[Section = "CD"])`), src.memSource)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

var _ IndexProber = (*proberSource)(nil)
