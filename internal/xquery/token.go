// Package xquery implements the XQuery subset PartiX nodes execute: FLWOR
// expressions (for/let/where/return), path expressions over collection()
// and doc() sources, element constructors, the comparison and boolean
// operators, arithmetic, and the core function library (count, sum, avg,
// min, max, contains, starts-with, not, empty, exists, string, number,
// concat, string-length, distinct-values). The paper's only requirement on
// a node DBMS is that "they are able to process XQuery" (Section 4); this
// package is that processor.
package xquery

import "fmt"

type tokenKind uint8

const (
	tokEOF      tokenKind = iota
	tokName               // identifiers: for, let, element names, function names
	tokVar                // $name
	tokString             // "..." or '...'
	tokNumber             // 123, 1.5
	tokSlash              // /
	tokDSlash             // //
	tokLParen             // (
	tokRParen             // )
	tokLBracket           // [
	tokRBracket           // ]
	tokLBrace             // {
	tokRBrace             // }
	tokComma              // ,
	tokAt                 // @
	tokStar               // *
	tokEq                 // =
	tokNe                 // !=
	tokLt                 // <
	tokLe                 // <=
	tokGt                 // >
	tokGe                 // >=
	tokPlus               // +
	tokMinus              // -
	tokAssign             // :=
	tokDot                // . (context item)
	tokTagOpen            // < when starting an element constructor
	tokTagClose           // </
)

func (k tokenKind) String() string {
	names := map[tokenKind]string{
		tokEOF: "EOF", tokName: "name", tokVar: "variable", tokString: "string",
		tokNumber: "number", tokSlash: "/", tokDSlash: "//", tokLParen: "(",
		tokRParen: ")", tokLBracket: "[", tokRBracket: "]", tokLBrace: "{",
		tokRBrace: "}", tokComma: ",", tokAt: "@", tokStar: "*", tokEq: "=",
		tokNe: "!=", tokLt: "<", tokLe: "<=", tokGt: ">", tokGe: ">=",
		tokPlus: "+", tokMinus: "-", tokAssign: ":=", tokDot: ".",
		tokTagOpen: "<tag", tokTagClose: "</",
	}
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

type token struct {
	kind tokenKind
	text string
	pos  int
}
