package xquery

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders an AST back to query text the parser accepts. PartiX
// rewrites queries as ASTs and ships them to remote nodes as text.
func Format(e Expr) string {
	var sb strings.Builder
	formatExpr(&sb, e, false)
	return sb.String()
}

func formatExpr(sb *strings.Builder, e Expr, parens bool) {
	switch x := e.(type) {
	case nil:
	case *StringLit:
		sb.WriteByte('"')
		sb.WriteString(x.Value)
		sb.WriteByte('"')
	case *TextLit:
		sb.WriteByte('"')
		sb.WriteString(x.Value)
		sb.WriteByte('"')
	case *NumberLit:
		sb.WriteString(strconv.FormatFloat(x.Value, 'g', -1, 64))
	case *VarRef:
		sb.WriteByte('$')
		sb.WriteString(x.Name)
	case *ContextItem:
		sb.WriteByte('.')
	case *CollectionCall:
		fmt.Fprintf(sb, "collection(%q)", x.Name)
	case *DocCall:
		fmt.Fprintf(sb, "doc(%q)", x.Name)
	case *FLWOR:
		if parens {
			sb.WriteByte('(')
		}
		for _, cl := range x.Clauses {
			if cl.Let {
				sb.WriteString("let $")
				sb.WriteString(cl.Var)
				sb.WriteString(" := ")
			} else {
				sb.WriteString("for $")
				sb.WriteString(cl.Var)
				sb.WriteString(" in ")
			}
			formatExpr(sb, cl.In, true)
			sb.WriteByte(' ')
		}
		if x.Where != nil {
			sb.WriteString("where ")
			formatExpr(sb, x.Where, true)
			sb.WriteByte(' ')
		}
		if len(x.OrderBy) > 0 {
			sb.WriteString("order by ")
			for i, o := range x.OrderBy {
				if i > 0 {
					sb.WriteString(", ")
				}
				formatExpr(sb, o.Key, true)
				if o.Descending {
					sb.WriteString(" descending")
				}
			}
			sb.WriteByte(' ')
		}
		sb.WriteString("return ")
		formatExpr(sb, x.Return, true)
		if parens {
			sb.WriteByte(')')
		}
	case *PathExpr:
		if x.Source != nil {
			formatExpr(sb, x.Source, true)
		}
		for i, st := range x.Steps {
			if st.Descendant {
				sb.WriteString("//")
			} else if x.Source != nil || i > 0 {
				sb.WriteByte('/')
			}
			switch {
			case st.Text:
				sb.WriteString("text()")
			case st.Attr:
				sb.WriteByte('@')
				sb.WriteString(st.Name)
			default:
				sb.WriteString(st.Name)
			}
			for _, p := range st.Preds {
				sb.WriteByte('[')
				formatExpr(sb, p, false)
				sb.WriteByte(']')
			}
		}
	case *Binary:
		if parens {
			sb.WriteByte('(')
		}
		formatExpr(sb, x.Left, true)
		sb.WriteByte(' ')
		sb.WriteString(x.Op.String())
		sb.WriteByte(' ')
		formatExpr(sb, x.Right, true)
		if parens {
			sb.WriteByte(')')
		}
	case *FuncCall:
		sb.WriteString(x.Name)
		sb.WriteByte('(')
		for i, a := range x.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			formatExpr(sb, a, false)
		}
		sb.WriteByte(')')
	case *Sequence:
		sb.WriteByte('(')
		for i, it := range x.Items {
			if i > 0 {
				sb.WriteString(", ")
			}
			formatExpr(sb, it, false)
		}
		sb.WriteByte(')')
	case *ElementCtor:
		sb.WriteByte('<')
		sb.WriteString(x.Name)
		for _, a := range x.Attrs {
			sb.WriteByte(' ')
			sb.WriteString(a.Name)
			sb.WriteString(`="`)
			if lit, ok := a.Value.(*StringLit); ok {
				sb.WriteString(lit.Value)
			} else {
				sb.WriteByte('{')
				formatExpr(sb, a.Value, false)
				sb.WriteByte('}')
			}
			sb.WriteByte('"')
		}
		if len(x.Children) == 0 {
			sb.WriteString("/>")
			return
		}
		sb.WriteByte('>')
		for _, ch := range x.Children {
			if t, ok := ch.(*TextLit); ok {
				sb.WriteString(t.Value)
				continue
			}
			if c, ok := ch.(*ElementCtor); ok {
				formatExpr(sb, c, false)
				continue
			}
			sb.WriteByte('{')
			formatExpr(sb, ch, false)
			sb.WriteByte('}')
		}
		sb.WriteString("</")
		sb.WriteString(x.Name)
		sb.WriteByte('>')
	case *IfExpr:
		if parens {
			sb.WriteByte('(')
		}
		sb.WriteString("if (")
		formatExpr(sb, x.Cond, false)
		sb.WriteString(") then ")
		formatExpr(sb, x.Then, true)
		sb.WriteString(" else ")
		formatExpr(sb, x.Else, true)
		if parens {
			sb.WriteByte(')')
		}
	case *Quantified:
		if parens {
			sb.WriteByte('(')
		}
		if x.Every {
			sb.WriteString("every ")
		} else {
			sb.WriteString("some ")
		}
		for i, c := range x.Clauses {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteByte('$')
			sb.WriteString(c.Var)
			sb.WriteString(" in ")
			formatExpr(sb, c.In, true)
		}
		sb.WriteString(" satisfies ")
		formatExpr(sb, x.Satisfies, true)
		if parens {
			sb.WriteByte(')')
		}
	default:
		fmt.Fprintf(sb, "(:unknown %T:)", e)
	}
}
