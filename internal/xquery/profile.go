package xquery

import (
	"fmt"
	"sort"
	"strings"
)

// WorkloadKeys are the canonical strings the workload profiler counts
// for one collection: the label paths a query binds or tests, and its
// literal predicates. The key grammar is stable and design-consumable:
//
//	path:       /Item/Section        //Keyword       /Item/@id
//	predicate:  /Item/Section = "CD"
//	            /Item/Quantity >= "5"
//	            contains(/Item/Description, "good")
//
// internal/design parses the equality and contains forms back into
// fragmentation predicates (see design.WorkloadFromProfile).
type WorkloadKeys struct {
	Paths      []string
	Predicates []string
}

// FormatLabelSteps renders a label-path pattern in surface syntax.
func FormatLabelSteps(steps []LabelStep) string {
	var b strings.Builder
	for _, st := range steps {
		if st.Descendant {
			b.WriteString("//")
		} else {
			b.WriteString("/")
		}
		if st.Attr {
			b.WriteString("@")
		}
		b.WriteString(st.Name)
	}
	return b.String()
}

// ExtractWorkloadKeys derives, per collection, the canonical path and
// predicate keys of a query for workload profiling. It reuses the hint
// extractor's analysis (binding paths become path keys, comparison
// terms become predicate keys) and adds the path side of contains()
// terms, which hints deliberately drop (a substring constraint needs no
// path to prune, but the profiler wants to know which path is probed).
func ExtractWorkloadKeys(e Expr) map[string]*WorkloadKeys {
	out := map[string]*WorkloadKeys{}
	get := func(coll string) *WorkloadKeys {
		k := out[coll]
		if k == nil {
			k = &WorkloadKeys{}
			out[coll] = k
		}
		return k
	}
	for coll, h := range ExtractHints(e) {
		for _, c := range h.Constraints {
			if c.Path == nil {
				continue
			}
			ps := FormatLabelSteps(c.Path.Steps)
			if c.Path.Op == CmpExists {
				get(coll).Paths = append(get(coll).Paths, ps)
			} else {
				get(coll).Predicates = append(get(coll).Predicates,
					fmt.Sprintf("%s %s %q", ps, c.Path.Op, c.Path.Literal))
			}
		}
	}
	collectContainsKeys(e, func(coll, path, needle string) {
		get(coll).Predicates = append(get(coll).Predicates,
			fmt.Sprintf("contains(%s, %q)", path, needle))
	})
	for _, k := range out {
		k.Paths = dedupeSorted(k.Paths)
		k.Predicates = dedupeSorted(k.Predicates)
	}
	return out
}

func dedupeSorted(in []string) []string {
	sort.Strings(in)
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// collectContainsKeys walks every FLWOR for conjunctive contains()
// terms whose path side roots at a collection-bound for-variable (or at
// a binding-path step predicate's context) and reports the resolved
// root-anchored path plus the needle.
func collectContainsKeys(e Expr, fn func(coll, path, needle string)) {
	Walk(e, func(x Expr) {
		f, ok := x.(*FLWOR)
		if !ok {
			return
		}
		varColl := map[string]varBinding{}
		for _, cl := range f.Clauses {
			if cl.Let {
				continue
			}
			coll, steps, ok := collectionRooted(cl.In)
			if !ok {
				continue
			}
			ls, lsOK := toLabelSteps(steps)
			varColl[cl.Var] = varBinding{coll: coll, steps: ls, pathOK: lsOK}
			for si, st := range steps {
				ctxSteps, ctxOK := toLabelSteps(steps[: si+1 : si+1])
				ctx := predCtx{steps: ctxSteps, ok: ctxOK}
				for _, p := range st.Preds {
					addConjuncts(p, func(term Expr) {
						containsKeyFromTerm(term, coll, varColl, ctx, fn)
					})
				}
			}
		}
		if f.Where == nil || len(varColl) == 0 {
			return
		}
		addConjuncts(f.Where, func(term Expr) {
			containsKeyFromTerm(term, "", varColl, predCtx{}, fn)
		})
	})
}

// containsKeyFromTerm matches contains(<path>, "lit"). predColl names
// the collection when the term sits inside a binding-path step
// predicate; empty means a where-clause term, whose collection resolves
// through the for-variable the path roots at.
func containsKeyFromTerm(term Expr, predColl string, varColl map[string]varBinding, ctx predCtx, fn func(coll, path, needle string)) {
	fc, ok := term.(*FuncCall)
	if !ok || fc.Name != "contains" || len(fc.Args) != 2 {
		return
	}
	lit, ok := fc.Args[1].(*StringLit)
	if !ok {
		return
	}
	coll := predColl
	if coll == "" {
		var name string
		switch src := fc.Args[0].(type) {
		case *VarRef:
			name = src.Name
		case *PathExpr:
			v, isVar := src.Source.(*VarRef)
			if !isVar {
				return
			}
			name = v.Name
		default:
			return
		}
		vb, known := varColl[name]
		if !known {
			return
		}
		coll = vb.coll
	}
	ls, ok := termLabelSteps(fc.Args[0], varColl, ctx)
	if !ok || len(ls) == 0 {
		return
	}
	fn(coll, FormatLabelSteps(ls), lit.Value)
}
