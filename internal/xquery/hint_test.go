package xquery

import (
	"reflect"
	"strings"
	"testing"

	"partix/internal/xmltree"
)

func TestTokenize(t *testing.T) {
	cases := map[string][]string{
		"a good Disc": {"a", "good", "disc"},
		"CD":          {"cd"},
		"  x  y ":     {"x", "y"},
		"":            nil,
		"2005-01-01":  {"2005", "01", "01"},
		"don't-stop":  {"don", "t", "stop"},
	}
	for in, want := range cases {
		if got := Tokenize(in); !reflect.DeepEqual(got, want) {
			t.Errorf("Tokenize(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestExtractHintsEqualityAndContains(t *testing.T) {
	e := MustParse(`for $i in collection("items")/Item
	  where $i/Section = "CD" and contains($i/Description, "good")
	  return $i/Code`)
	hints := ExtractHints(e)
	h := hints["items"]
	if h == nil {
		t.Fatalf("hints = %+v", hints)
	}
	text := textConstraints(h)
	if len(text) != 2 {
		t.Fatalf("text constraints = %+v", text)
	}
	if !reflect.DeepEqual(text[0].Tokens, []string{"cd"}) {
		t.Fatalf("eq constraint = %+v", text[0])
	}
	if text[1].Substring != "good" {
		t.Fatalf("contains constraint = %+v", text[1])
	}
}

func TestExtractHintsStepPredicates(t *testing.T) {
	e := MustParse(`collection("items")/Item[Section = "CD"]/Name`)
	// Path expressions outside a FLWOR do not produce hints (nothing
	// guarantees document pruning is observable there), but the same path
	// inside a for-binding does.
	f := MustParse(`for $i in collection("items")/Item[Section = "CD"] return $i/Name`)
	_ = e
	hints := ExtractHints(f)
	h := hints["items"]
	if h == nil {
		t.Fatalf("hints = %+v", hints)
	}
	text := textConstraints(h)
	if len(text) != 1 || !reflect.DeepEqual(text[0].Tokens, []string{"cd"}) {
		t.Fatalf("hints = %+v", text)
	}
}

func TestExtractHintsIgnoresUnsafePositions(t *testing.T) {
	queries := []string{
		// Negation: docs without "good" still match.
		`for $i in collection("items")/Item where not(contains($i/Description, "good")) return $i`,
		// Disjunction: neither side is necessary.
		`for $i in collection("items")/Item where $i/Section = "CD" or $i/Section = "DVD" return $i`,
		// Non-literal needle.
		`for $i in collection("items")/Item where contains($i/Description, $i/Code) return $i`,
		// Needle with a space could span tokens.
		`for $i in collection("items")/Item where contains($i/Description, "good disc") return $i`,
		// Inequality is not a token witness.
		`for $i in collection("items")/Item where $i/Section != "CD" return $i`,
		// Path with an inner predicate could invert the match.
		`for $i in collection("items")/Item where $i/PictureList[empty(Picture)]/Name = "CD" return $i`,
	}
	for _, q := range queries {
		hints := ExtractHints(MustParse(q))
		// The for-binding legitimately requires the Item element; no text
		// constraint may leak from the unsafe positions.
		if h := hints["items"]; h != nil && len(textConstraints(h)) > 0 {
			t.Errorf("%s: unsafe hint extracted: %+v", q, h.Constraints)
		}
	}
}

// textConstraints filters a hint to its token/substring conjuncts.
func textConstraints(h *Hint) []Constraint {
	var out []Constraint
	for _, c := range h.Constraints {
		if len(c.Tokens) > 0 || c.Substring != "" {
			out = append(out, c)
		}
	}
	return out
}

func TestExtractHintsPerVariableCollection(t *testing.T) {
	e := MustParse(`for $a in collection("prolog")/article, $b in collection("body")/article
	  where $a/@id = $b/@id and contains($b/body, "model")
	  return $a/prolog/title`)
	hints := ExtractHints(e)
	if hints["prolog"] != nil && len(textConstraints(hints["prolog"])) > 0 {
		t.Fatalf("prolog should have no text constraints: %+v", hints["prolog"])
	}
	h := hints["body"]
	if h == nil {
		t.Fatal("no body hints")
	}
	text := textConstraints(h)
	if len(text) != 1 || text[0].Substring != "model" {
		t.Fatalf("body hints = %+v", text)
	}
}

func TestExtractHintsLiteralOnLeft(t *testing.T) {
	e := MustParse(`for $i in collection("items")/Item where "CD" = $i/Section return $i`)
	h := ExtractHints(e)["items"]
	if h == nil {
		t.Fatal("no hints")
	}
	text := textConstraints(h)
	if len(text) != 1 || !reflect.DeepEqual(text[0].Tokens, []string{"cd"}) {
		t.Fatalf("hints = %+v", text)
	}
}

func TestExtractHintsMultiTokenEquality(t *testing.T) {
	e := MustParse(`for $i in collection("items")/Item where $i/Description = "a good disc" return $i`)
	h := ExtractHints(e)["items"]
	if h == nil || !reflect.DeepEqual(textConstraints(h)[0].Tokens, []string{"a", "good", "disc"}) {
		t.Fatalf("hints = %+v", h)
	}
}

func TestExtractHintsElements(t *testing.T) {
	e := MustParse(`for $i in collection("items")/Item
	  where exists($i/PictureList/Picture) and $i/Section = "CD"
	  return $i/Code`)
	h := ExtractHints(e)["items"]
	if h == nil {
		t.Fatal("no hints")
	}
	var els [][]string
	for _, c := range h.Constraints {
		if len(c.Elements) > 0 {
			els = append(els, c.Elements)
		}
	}
	// Binding requires Item; the exists() requires PictureList/Picture.
	if len(els) != 2 {
		t.Fatalf("element constraints = %v", els)
	}
	if !reflect.DeepEqual(els[0], []string{"Item"}) {
		t.Fatalf("binding elements = %v", els[0])
	}
	if !reflect.DeepEqual(els[1], []string{"PictureList", "Picture"}) {
		t.Fatalf("exists elements = %v", els[1])
	}
}

func TestExtractHintsBareExistenceTerm(t *testing.T) {
	e := MustParse(`for $i in collection("items")/Item where $i/PictureList return $i/Code`)
	h := ExtractHints(e)["items"]
	found := false
	for _, c := range h.Constraints {
		if reflect.DeepEqual(c.Elements, []string{"PictureList"}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("bare existence term not extracted: %+v", h.Constraints)
	}
}

func TestExtractHintsElementsSkipUnsafe(t *testing.T) {
	queries := []string{
		// Negated existence must not require the element.
		`for $i in collection("items")/Item where not(exists($i/PictureList)) return $i`,
		// Disjunction of existence tests is not conjunctive.
		`for $i in collection("items")/Item where $i/PictureList or $i/PricesHistory return $i`,
	}
	for _, q := range queries {
		h := ExtractHints(MustParse(q))["items"]
		if h == nil {
			continue
		}
		for _, c := range h.Constraints {
			for _, el := range c.Elements {
				if el == "PictureList" || el == "PricesHistory" {
					t.Errorf("%s: unsafe element constraint %v", q, c.Elements)
				}
			}
		}
	}
}

// pathConstraints filters a hint to its path-qualified conjuncts, skipping
// the bare existence constraint every for-binding contributes.
func pathConstraints(h *Hint) []*PathConstraint {
	var out []*PathConstraint
	for _, c := range h.Constraints {
		if c.Path != nil && c.Path.Op != CmpExists {
			out = append(out, c.Path)
		}
	}
	return out
}

func TestExtractHintsRangeOps(t *testing.T) {
	cases := map[string]CmpOp{"<": CmpLt, "<=": CmpLe, ">": CmpGt, ">=": CmpGe}
	for op, want := range cases {
		q := `for $i in collection("items")/Item where $i/@id ` + op + ` 15 return $i`
		h := ExtractHints(MustParse(q))["items"]
		if h == nil {
			t.Fatalf("%s: no hints", q)
		}
		pcs := pathConstraints(h)
		if len(pcs) != 1 {
			t.Fatalf("%s: path constraints = %+v", q, pcs)
		}
		pc := pcs[0]
		if pc.Op != want || pc.Literal != "15" {
			t.Errorf("%s: constraint = %+v", q, pc)
		}
		wantSteps := []LabelStep{{Name: "Item"}, {Name: "id", Attr: true}}
		if !reflect.DeepEqual(pc.Steps, wantSteps) {
			t.Errorf("%s: steps = %+v, want %+v", q, pc.Steps, wantSteps)
		}
		// A numeric range term is no token witness.
		if text := textConstraints(h); len(text) != 0 {
			t.Errorf("%s: unexpected text constraints %+v", q, text)
		}
	}
}

func TestExtractHintsRangeLiteralOnLeft(t *testing.T) {
	// 15 > $i/@id  ⟺  $i/@id < 15: the operator must mirror.
	h := ExtractHints(MustParse(
		`for $i in collection("items")/Item where 15 > $i/@id return $i`))["items"]
	pcs := pathConstraints(h)
	if len(pcs) != 1 || pcs[0].Op != CmpLt || pcs[0].Literal != "15" {
		t.Fatalf("path constraints = %+v", pcs)
	}
}

func TestExtractHintsNumericEqualityHasNoTokens(t *testing.T) {
	// A numeric literal compares numerically ("100" also matches "100.0"),
	// so equality on a NumberLit yields a path constraint but no tokens.
	h := ExtractHints(MustParse(
		`for $i in collection("items")/Item where $i/@id = 100 return $i`))["items"]
	if text := textConstraints(h); len(text) != 0 {
		t.Fatalf("numeric equality produced token constraints: %+v", text)
	}
	pcs := pathConstraints(h)
	if len(pcs) != 1 || pcs[0].Op != CmpEq || pcs[0].Literal != "100" {
		t.Fatalf("path constraints = %+v", pcs)
	}
}

func TestExtractHintsStringEqualityCarriesPath(t *testing.T) {
	// String equality keeps its token witness and gains the path-qualified
	// form in the same conjunct.
	h := ExtractHints(MustParse(
		`for $i in collection("items")/Item where $i/Section = "CD" return $i`))["items"]
	var found bool
	for _, c := range h.Constraints {
		if len(c.Tokens) == 0 {
			continue
		}
		found = true
		if c.Path == nil || c.Path.Op != CmpEq || c.Path.Literal != "CD" {
			t.Fatalf("equality constraint lacks path form: %+v", c)
		}
		want := []LabelStep{{Name: "Item"}, {Name: "Section"}}
		if !reflect.DeepEqual(c.Path.Steps, want) {
			t.Fatalf("steps = %+v, want %+v", c.Path.Steps, want)
		}
	}
	if !found {
		t.Fatalf("no token constraint: %+v", h.Constraints)
	}
}

func TestExtractHintsStepPredicateRange(t *testing.T) {
	// A range term inside a binding-path predicate extends the context
	// prefix: collection("items")/Item[@id >= 2] constrains Item/@id.
	h := ExtractHints(MustParse(
		`for $i in collection("items")/Item[@id >= 2] return $i`))["items"]
	pcs := pathConstraints(h)
	want := []LabelStep{{Name: "Item"}, {Name: "id", Attr: true}}
	if len(pcs) != 1 || pcs[0].Op != CmpGe || pcs[0].Literal != "2" ||
		!reflect.DeepEqual(pcs[0].Steps, want) {
		t.Fatalf("path constraints = %+v", pcs)
	}
}

func TestExtractHintsContextItemPredicate(t *testing.T) {
	// [. = "lit"] compares the step's own value: the constraint path is the
	// context prefix itself.
	h := ExtractHints(MustParse(
		`for $i in collection("items")/Item/Section[. = "CD"] return $i`))["items"]
	pcs := pathConstraints(h)
	want := []LabelStep{{Name: "Item"}, {Name: "Section"}}
	if len(pcs) != 1 || pcs[0].Op != CmpEq || pcs[0].Literal != "CD" ||
		!reflect.DeepEqual(pcs[0].Steps, want) {
		t.Fatalf("path constraints = %+v", pcs)
	}
}

func TestExtractHintsBindingPathExists(t *testing.T) {
	// Every for-binding contributes a CmpExists constraint for its path.
	h := ExtractHints(MustParse(
		`for $i in collection("items")/Item/PictureList return $i`))["items"]
	var exist []*PathConstraint
	for _, c := range h.Constraints {
		if c.Path != nil && c.Path.Op == CmpExists {
			exist = append(exist, c.Path)
		}
	}
	want := []LabelStep{{Name: "Item"}, {Name: "PictureList"}}
	if len(exist) != 1 || !reflect.DeepEqual(exist[0].Steps, want) {
		t.Fatalf("exists constraints = %+v", exist)
	}
}

func TestExtractHintsRangeSkipsUnsafePositions(t *testing.T) {
	queries := []string{
		// Disjunction: neither side is necessary.
		`for $i in collection("items")/Item where $i/@id < 2 or $i/@id > 5 return $i`,
		// Negation.
		`for $i in collection("items")/Item where not($i/@id < 2) return $i`,
		// != is no witness.
		`for $i in collection("items")/Item where $i/@id != 2 return $i`,
		// Inner predicate on the path side could invert the match.
		`for $i in collection("items")/Item where $i/PictureList[Picture]/Name = "x" return $i`,
	}
	for _, q := range queries {
		h := ExtractHints(MustParse(q))["items"]
		if h == nil {
			continue
		}
		if pcs := pathConstraints(h); len(pcs) != 0 {
			t.Errorf("%s: unsafe path constraints %+v", q, pcs)
		}
	}
}

func TestHintsAreSound(t *testing.T) {
	// Evaluating with and without hint-based pruning must agree. The
	// pruning source drops documents failing the constraints the way the
	// engine's index would.
	src := itemsSource()
	queries := []string{
		`for $i in collection("items")/Item where $i/Section = "CD" return $i/Code`,
		`for $i in collection("items")/Item where contains($i/Description, "good") return $i/Code`,
		`for $i in collection("items")/Item where $i/Section = "CD" and contains($i/Description, "disc") return $i/Code`,
	}
	for _, q := range queries {
		e := MustParse(q)
		full, err := Eval(e, src)
		if err != nil {
			t.Fatal(err)
		}
		pruned, err := Eval(e, &pruningSource{inner: src})
		if err != nil {
			t.Fatal(err)
		}
		if len(full) != len(pruned) {
			t.Errorf("%s: %d results full, %d pruned", q, len(full), len(pruned))
		}
	}
}

// pruningSource simulates index-based candidate pruning by evaluating the
// hint against each document's token set, exactly as the engine's inverted
// index does.
type pruningSource struct{ inner *memSource }

func (p *pruningSource) Doc(name string) (*xmltree.Document, error) {
	return p.inner.Doc(name)
}

func (p *pruningSource) Docs(name string, hint *Hint, fn func(*xmltree.Document) error) error {
	return p.inner.Docs(name, hint, func(d *xmltree.Document) error {
		if hint != nil && !docSatisfiesHint(d, hint) {
			return nil
		}
		return fn(d)
	})
}

func docSatisfiesHint(d *xmltree.Document, h *Hint) bool {
	tokens := map[string]bool{}
	elements := map[string]bool{}
	d.Root.Walk(func(n *xmltree.Node) bool {
		switch n.Kind {
		case xmltree.TextNode:
			for _, tok := range Tokenize(n.Value) {
				tokens[tok] = true
			}
		case xmltree.ElementNode:
			elements[n.Name] = true
		}
		return true
	})
	for _, c := range h.Constraints {
		for _, el := range c.Elements {
			if !elements[el] {
				return false
			}
		}
		if len(c.Tokens) > 0 {
			for _, tok := range c.Tokens {
				if !tokens[tok] {
					return false
				}
			}
		}
		if c.Substring != "" {
			found := false
			for tok := range tokens {
				if strings.Contains(tok, c.Substring) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
	}
	return true
}
