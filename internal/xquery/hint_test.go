package xquery

import (
	"reflect"
	"strings"
	"testing"

	"partix/internal/xmltree"
)

func TestTokenize(t *testing.T) {
	cases := map[string][]string{
		"a good Disc": {"a", "good", "disc"},
		"CD":          {"cd"},
		"  x  y ":     {"x", "y"},
		"":            nil,
		"2005-01-01":  {"2005", "01", "01"},
		"don't-stop":  {"don", "t", "stop"},
	}
	for in, want := range cases {
		if got := Tokenize(in); !reflect.DeepEqual(got, want) {
			t.Errorf("Tokenize(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestExtractHintsEqualityAndContains(t *testing.T) {
	e := MustParse(`for $i in collection("items")/Item
	  where $i/Section = "CD" and contains($i/Description, "good")
	  return $i/Code`)
	hints := ExtractHints(e)
	h := hints["items"]
	if h == nil {
		t.Fatalf("hints = %+v", hints)
	}
	text := textConstraints(h)
	if len(text) != 2 {
		t.Fatalf("text constraints = %+v", text)
	}
	if !reflect.DeepEqual(text[0].Tokens, []string{"cd"}) {
		t.Fatalf("eq constraint = %+v", text[0])
	}
	if text[1].Substring != "good" {
		t.Fatalf("contains constraint = %+v", text[1])
	}
}

func TestExtractHintsStepPredicates(t *testing.T) {
	e := MustParse(`collection("items")/Item[Section = "CD"]/Name`)
	// Path expressions outside a FLWOR do not produce hints (nothing
	// guarantees document pruning is observable there), but the same path
	// inside a for-binding does.
	f := MustParse(`for $i in collection("items")/Item[Section = "CD"] return $i/Name`)
	_ = e
	hints := ExtractHints(f)
	h := hints["items"]
	if h == nil {
		t.Fatalf("hints = %+v", hints)
	}
	text := textConstraints(h)
	if len(text) != 1 || !reflect.DeepEqual(text[0].Tokens, []string{"cd"}) {
		t.Fatalf("hints = %+v", text)
	}
}

func TestExtractHintsIgnoresUnsafePositions(t *testing.T) {
	queries := []string{
		// Negation: docs without "good" still match.
		`for $i in collection("items")/Item where not(contains($i/Description, "good")) return $i`,
		// Disjunction: neither side is necessary.
		`for $i in collection("items")/Item where $i/Section = "CD" or $i/Section = "DVD" return $i`,
		// Non-literal needle.
		`for $i in collection("items")/Item where contains($i/Description, $i/Code) return $i`,
		// Needle with a space could span tokens.
		`for $i in collection("items")/Item where contains($i/Description, "good disc") return $i`,
		// Inequality is not a token witness.
		`for $i in collection("items")/Item where $i/Section != "CD" return $i`,
		// Path with an inner predicate could invert the match.
		`for $i in collection("items")/Item where $i/PictureList[empty(Picture)]/Name = "CD" return $i`,
	}
	for _, q := range queries {
		hints := ExtractHints(MustParse(q))
		// The for-binding legitimately requires the Item element; no text
		// constraint may leak from the unsafe positions.
		if h := hints["items"]; h != nil && len(textConstraints(h)) > 0 {
			t.Errorf("%s: unsafe hint extracted: %+v", q, h.Constraints)
		}
	}
}

// textConstraints filters a hint to its token/substring conjuncts.
func textConstraints(h *Hint) []Constraint {
	var out []Constraint
	for _, c := range h.Constraints {
		if len(c.Tokens) > 0 || c.Substring != "" {
			out = append(out, c)
		}
	}
	return out
}

func TestExtractHintsPerVariableCollection(t *testing.T) {
	e := MustParse(`for $a in collection("prolog")/article, $b in collection("body")/article
	  where $a/@id = $b/@id and contains($b/body, "model")
	  return $a/prolog/title`)
	hints := ExtractHints(e)
	if hints["prolog"] != nil && len(textConstraints(hints["prolog"])) > 0 {
		t.Fatalf("prolog should have no text constraints: %+v", hints["prolog"])
	}
	h := hints["body"]
	if h == nil {
		t.Fatal("no body hints")
	}
	text := textConstraints(h)
	if len(text) != 1 || text[0].Substring != "model" {
		t.Fatalf("body hints = %+v", text)
	}
}

func TestExtractHintsLiteralOnLeft(t *testing.T) {
	e := MustParse(`for $i in collection("items")/Item where "CD" = $i/Section return $i`)
	h := ExtractHints(e)["items"]
	if h == nil {
		t.Fatal("no hints")
	}
	text := textConstraints(h)
	if len(text) != 1 || !reflect.DeepEqual(text[0].Tokens, []string{"cd"}) {
		t.Fatalf("hints = %+v", text)
	}
}

func TestExtractHintsMultiTokenEquality(t *testing.T) {
	e := MustParse(`for $i in collection("items")/Item where $i/Description = "a good disc" return $i`)
	h := ExtractHints(e)["items"]
	if h == nil || !reflect.DeepEqual(textConstraints(h)[0].Tokens, []string{"a", "good", "disc"}) {
		t.Fatalf("hints = %+v", h)
	}
}

func TestExtractHintsElements(t *testing.T) {
	e := MustParse(`for $i in collection("items")/Item
	  where exists($i/PictureList/Picture) and $i/Section = "CD"
	  return $i/Code`)
	h := ExtractHints(e)["items"]
	if h == nil {
		t.Fatal("no hints")
	}
	var els [][]string
	for _, c := range h.Constraints {
		if len(c.Elements) > 0 {
			els = append(els, c.Elements)
		}
	}
	// Binding requires Item; the exists() requires PictureList/Picture.
	if len(els) != 2 {
		t.Fatalf("element constraints = %v", els)
	}
	if !reflect.DeepEqual(els[0], []string{"Item"}) {
		t.Fatalf("binding elements = %v", els[0])
	}
	if !reflect.DeepEqual(els[1], []string{"PictureList", "Picture"}) {
		t.Fatalf("exists elements = %v", els[1])
	}
}

func TestExtractHintsBareExistenceTerm(t *testing.T) {
	e := MustParse(`for $i in collection("items")/Item where $i/PictureList return $i/Code`)
	h := ExtractHints(e)["items"]
	found := false
	for _, c := range h.Constraints {
		if reflect.DeepEqual(c.Elements, []string{"PictureList"}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("bare existence term not extracted: %+v", h.Constraints)
	}
}

func TestExtractHintsElementsSkipUnsafe(t *testing.T) {
	queries := []string{
		// Negated existence must not require the element.
		`for $i in collection("items")/Item where not(exists($i/PictureList)) return $i`,
		// Disjunction of existence tests is not conjunctive.
		`for $i in collection("items")/Item where $i/PictureList or $i/PricesHistory return $i`,
	}
	for _, q := range queries {
		h := ExtractHints(MustParse(q))["items"]
		if h == nil {
			continue
		}
		for _, c := range h.Constraints {
			for _, el := range c.Elements {
				if el == "PictureList" || el == "PricesHistory" {
					t.Errorf("%s: unsafe element constraint %v", q, c.Elements)
				}
			}
		}
	}
}

func TestHintsAreSound(t *testing.T) {
	// Evaluating with and without hint-based pruning must agree. The
	// pruning source drops documents failing the constraints the way the
	// engine's index would.
	src := itemsSource()
	queries := []string{
		`for $i in collection("items")/Item where $i/Section = "CD" return $i/Code`,
		`for $i in collection("items")/Item where contains($i/Description, "good") return $i/Code`,
		`for $i in collection("items")/Item where $i/Section = "CD" and contains($i/Description, "disc") return $i/Code`,
	}
	for _, q := range queries {
		e := MustParse(q)
		full, err := Eval(e, src)
		if err != nil {
			t.Fatal(err)
		}
		pruned, err := Eval(e, &pruningSource{inner: src})
		if err != nil {
			t.Fatal(err)
		}
		if len(full) != len(pruned) {
			t.Errorf("%s: %d results full, %d pruned", q, len(full), len(pruned))
		}
	}
}

// pruningSource simulates index-based candidate pruning by evaluating the
// hint against each document's token set, exactly as the engine's inverted
// index does.
type pruningSource struct{ inner *memSource }

func (p *pruningSource) Doc(name string) (*xmltree.Document, error) {
	return p.inner.Doc(name)
}

func (p *pruningSource) Docs(name string, hint *Hint, fn func(*xmltree.Document) error) error {
	return p.inner.Docs(name, hint, func(d *xmltree.Document) error {
		if hint != nil && !docSatisfiesHint(d, hint) {
			return nil
		}
		return fn(d)
	})
}

func docSatisfiesHint(d *xmltree.Document, h *Hint) bool {
	tokens := map[string]bool{}
	elements := map[string]bool{}
	d.Root.Walk(func(n *xmltree.Node) bool {
		switch n.Kind {
		case xmltree.TextNode:
			for _, tok := range Tokenize(n.Value) {
				tokens[tok] = true
			}
		case xmltree.ElementNode:
			elements[n.Name] = true
		}
		return true
	})
	for _, c := range h.Constraints {
		for _, el := range c.Elements {
			if !elements[el] {
				return false
			}
		}
		if len(c.Tokens) > 0 {
			for _, tok := range c.Tokens {
				if !tokens[tok] {
					return false
				}
			}
		}
		if c.Substring != "" {
			found := false
			for tok := range tokens {
				if strings.Contains(tok, c.Substring) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
	}
	return true
}
