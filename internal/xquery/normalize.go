package xquery

import "strings"

// NormalizeQueryText produces a canonical form of a query's text:
// whitespace runs and comments collapse to single separating spaces, and
// string literals are re-quoted canonically (double quotes, unless the
// literal itself contains one — the language has no escapes, so such a
// literal can only be written single-quoted). Two queries that differ only
// in layout, comments, or quoting style normalize to the same string,
// which is what lets a plan cache and a slow-query log deduplicate them.
//
// The one construct a token-level pass cannot handle is the element
// constructor: its content is raw text (lexed by the parser, not the
// lexer), where whitespace is semantic and "(:" is literal content. When a
// '<' immediately followed by a name-start character appears outside a
// string literal — the only way a constructor can begin — normalization
// falls back to strings.TrimSpace of the input, as it does on any lexing
// error. The fallback is conservative in the safe direction: equivalent
// spellings may normalize differently (a cache miss), but two queries
// with the same normal form always tokenize identically.
func NormalizeQueryText(q string) string {
	l := newLexer(q)
	var sb strings.Builder
	sb.Grow(len(q))
	first := true
	for {
		if err := l.skipSpaceAndComments(); err != nil {
			return strings.TrimSpace(q)
		}
		if l.pos+1 < len(l.in) && l.in[l.pos] == '<' && isNameStart(l.in[l.pos+1]) {
			return strings.TrimSpace(q) // potential element constructor
		}
		t, err := l.next()
		if err != nil {
			return strings.TrimSpace(q)
		}
		if t.kind == tokEOF {
			break
		}
		if !first {
			sb.WriteByte(' ')
		}
		first = false
		writeToken(&sb, t)
	}
	return sb.String()
}

func writeToken(sb *strings.Builder, t token) {
	switch t.kind {
	case tokVar:
		sb.WriteByte('$')
		sb.WriteString(t.text)
	case tokString:
		q := byte('"')
		if strings.IndexByte(t.text, '"') >= 0 {
			q = '\''
		}
		sb.WriteByte(q)
		sb.WriteString(t.text)
		sb.WriteByte(q)
	default:
		sb.WriteString(t.text)
	}
}
