package xquery

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"partix/internal/xmltree"
)

// Item is one value of a result sequence: an *xmltree.Node, string,
// float64 or bool.
type Item any

// Seq is an ordered sequence of items (the XQuery data model's sequence).
type Seq []Item

// Source provides the documents queries run over. The engine implements
// it with index-assisted candidate pruning; tests use in-memory sources.
type Source interface {
	// Docs calls fn for every document of the named collection that can
	// possibly satisfy hint (a nil hint means every document). Sources are
	// free to ignore the hint — it only ever prunes documents that cannot
	// contribute to the result.
	Docs(collection string, hint *Hint, fn func(*xmltree.Document) error) error
	// Doc resolves doc("name").
	Doc(name string) (*xmltree.Document, error)
}

// Eval compiles nothing further — it evaluates a parsed query against src.
func Eval(e Expr, src Source) (Seq, error) {
	hints := ExtractHints(e)
	ctx := &context{src: src, hints: hints, vars: map[string]Seq{}}
	return ctx.eval(e)
}

// EvalQuery parses and evaluates a query string.
func EvalQuery(query string, src Source) (Seq, error) {
	e, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Eval(e, src)
}

// EvalWith evaluates e with pre-bound variables and an optional context
// item. The compiled executor (internal/xquery/exec) uses it as the
// per-tuple fallback for sub-expressions it does not handle natively, so
// cold expression shapes keep the interpreter's exact semantics. vars may
// be nil; the map is not retained.
func EvalWith(e Expr, src Source, vars map[string]Seq, ctxItem Item) (Seq, error) {
	if vars == nil {
		vars = map[string]Seq{}
	}
	ctx := &context{src: src, vars: vars, ctxItem: ctxItem}
	return ctx.eval(e)
}

type context struct {
	src     Source
	hints   map[string]*Hint // collection name → hint
	vars    map[string]Seq
	ctxItem Item // context item for relative paths; nil outside predicates
}

func (c *context) lookupHint(collection string) *Hint {
	if c.hints == nil {
		return nil
	}
	return c.hints[collection]
}

func (c *context) eval(e Expr) (Seq, error) {
	switch x := e.(type) {
	case *StringLit:
		return Seq{x.Value}, nil
	case *TextLit:
		return Seq{x.Value}, nil
	case *NumberLit:
		return Seq{x.Value}, nil
	case *VarRef:
		v, ok := c.vars[x.Name]
		if !ok {
			return nil, fmt.Errorf("xquery: unbound variable $%s", x.Name)
		}
		return v, nil
	case *ContextItem:
		if c.ctxItem == nil {
			return nil, fmt.Errorf("xquery: no context item for '.'")
		}
		return Seq{c.ctxItem}, nil
	case *CollectionCall:
		var out Seq
		err := c.src.Docs(x.Name, c.lookupHint(x.Name), func(d *xmltree.Document) error {
			out = append(out, docNode(d))
			return nil
		})
		return out, err
	case *DocCall:
		d, err := c.src.Doc(x.Name)
		if err != nil {
			return nil, err
		}
		return Seq{docNode(d)}, nil
	case *Sequence:
		var out Seq
		for _, it := range x.Items {
			s, err := c.eval(it)
			if err != nil {
				return nil, err
			}
			out = append(out, s...)
		}
		return out, nil
	case *PathExpr:
		return c.evalPath(x)
	case *Binary:
		return c.evalBinary(x)
	case *FuncCall:
		return c.evalFunc(x)
	case *FLWOR:
		return c.evalFLWOR(x)
	case *ElementCtor:
		n, err := c.evalCtor(x)
		if err != nil {
			return nil, err
		}
		return Seq{n}, nil
	case *IfExpr:
		cond, err := c.eval(x.Cond)
		if err != nil {
			return nil, err
		}
		b, err := EffectiveBool(cond)
		if err != nil {
			return nil, err
		}
		if b {
			return c.eval(x.Then)
		}
		return c.eval(x.Else)
	case *Quantified:
		return c.evalQuantified(x)
	default:
		return nil, fmt.Errorf("xquery: cannot evaluate %T", e)
	}
}

// evalQuantified implements some/every: existential or universal over the
// cartesian product of the clause bindings.
func (c *context) evalQuantified(q *Quantified) (Seq, error) {
	found, err := c.quantify(q, 0)
	if err != nil {
		return nil, err
	}
	return Seq{found}, nil
}

// quantify returns true when the quantifier is satisfied by the bindings
// from clause i onward. For "some" it is an exists-scan (true short-
// circuits); for "every" a forall-scan (false short-circuits), expressed
// as its dual.
func (c *context) quantify(q *Quantified, i int) (bool, error) {
	if i == len(q.Clauses) {
		v, err := c.eval(q.Satisfies)
		if err != nil {
			return false, err
		}
		return EffectiveBool(v)
	}
	cl := q.Clauses[i]
	items, err := c.eval(cl.In)
	if err != nil {
		return false, err
	}
	saved, had := c.vars[cl.Var]
	defer c.restoreVar(cl.Var, saved, had)
	for _, it := range items {
		c.vars[cl.Var] = Seq{it}
		ok, err := c.quantify(q, i+1)
		if err != nil {
			return false, err
		}
		if ok != q.Every { // some: found a witness; every: found a violation
			return !q.Every, nil
		}
	}
	return q.Every, nil
}

// --- paths ---

func (c *context) evalPath(p *PathExpr) (Seq, error) {
	var cur Seq
	if p.Source == nil {
		if c.ctxItem == nil {
			return nil, fmt.Errorf("xquery: relative path %s has no context item", pathString(p.Steps))
		}
		cur = Seq{c.ctxItem}
	} else {
		s, err := c.eval(p.Source)
		if err != nil {
			return nil, err
		}
		cur = s
	}
	for _, st := range p.Steps {
		next, err := c.evalStep(cur, st)
		if err != nil {
			return nil, err
		}
		cur = next
		if len(cur) == 0 {
			return nil, nil
		}
	}
	return cur, nil
}

func (c *context) evalStep(cur Seq, st PathStep) (Seq, error) {
	var out Seq
	seen := make(map[*xmltree.Node]bool)
	for _, it := range cur {
		n, ok := it.(*xmltree.Node)
		if !ok {
			return nil, fmt.Errorf("xquery: path step /%s applied to atomic value %v", st.Name, it)
		}
		var matched []*xmltree.Node
		collect := func(cand *xmltree.Node) {
			if !seen[cand] {
				seen[cand] = true
				matched = append(matched, cand)
			}
		}
		if st.Descendant {
			n.Walk(func(d *xmltree.Node) bool {
				if stepMatches(st, d) {
					collect(d)
				}
				return true
			})
		} else {
			for _, ch := range n.Children {
				if stepMatches(st, ch) {
					collect(ch)
				}
			}
		}
		filtered, err := c.applyPreds(matched, st.Preds)
		if err != nil {
			return nil, err
		}
		for _, m := range filtered {
			out = append(out, m)
		}
	}
	return out, nil
}

func stepMatches(st PathStep, n *xmltree.Node) bool {
	switch {
	case st.Text:
		return n.Kind == xmltree.TextNode
	case st.Attr:
		return n.Kind == xmltree.AttributeNode && (st.Name == "*" || n.Name == st.Name)
	default:
		return n.Kind == xmltree.ElementNode && (st.Name == "*" || n.Name == st.Name)
	}
}

func (c *context) applyPreds(nodes []*xmltree.Node, preds []Expr) ([]*xmltree.Node, error) {
	cur := nodes
	for _, pred := range preds {
		// A literal number predicate is positional: Picture[2].
		if num, ok := pred.(*NumberLit); ok {
			i := int(num.Value)
			if i < 1 || i > len(cur) {
				cur = nil
			} else {
				cur = cur[i-1 : i]
			}
			continue
		}
		var kept []*xmltree.Node
		for _, n := range cur {
			saved := c.ctxItem
			c.ctxItem = n
			v, err := c.eval(pred)
			c.ctxItem = saved
			if err != nil {
				return nil, err
			}
			ok, err := EffectiveBool(v)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, n)
			}
		}
		cur = kept
	}
	return cur, nil
}

// --- FLWOR ---

// orderedTuple is one qualifying binding's return value with its sort
// keys, used by order-by evaluation.
type orderedTuple struct {
	keys  []Item // nil entries sort first (empty key)
	items Seq
}

type flworRun struct {
	f      *FLWOR
	out    *Seq
	tuples []orderedTuple // used instead of out when order by is present
}

func (c *context) evalFLWOR(f *FLWOR) (Seq, error) {
	var out Seq
	run := &flworRun{f: f, out: &out}
	if err := c.evalClauses(run, 0); err != nil {
		return nil, err
	}
	if len(f.OrderBy) == 0 {
		return out, nil
	}
	sort.SliceStable(run.tuples, func(i, j int) bool {
		for k := range f.OrderBy {
			cmp := CompareKeys(run.tuples[i].keys[k], run.tuples[j].keys[k])
			if cmp == 0 {
				continue
			}
			if f.OrderBy[k].Descending {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	for _, t := range run.tuples {
		out = append(out, t.items...)
	}
	return out, nil
}

func (c *context) evalClauses(run *flworRun, i int) error {
	f := run.f
	if i == len(f.Clauses) {
		if f.Where != nil {
			v, err := c.eval(f.Where)
			if err != nil {
				return err
			}
			ok, err := EffectiveBool(v)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		r, err := c.eval(f.Return)
		if err != nil {
			return err
		}
		if len(f.OrderBy) == 0 {
			*run.out = append(*run.out, r...)
			return nil
		}
		keys := make([]Item, len(f.OrderBy))
		for k, spec := range f.OrderBy {
			kv, err := c.eval(spec.Key)
			if err != nil {
				return err
			}
			if len(kv) > 0 {
				keys[k] = kv[0]
			}
		}
		run.tuples = append(run.tuples, orderedTuple{keys: keys, items: r})
		return nil
	}
	cl := f.Clauses[i]
	if cl.Let {
		v, err := c.eval(cl.In)
		if err != nil {
			return err
		}
		saved, had := c.vars[cl.Var]
		c.vars[cl.Var] = v
		err = c.evalClauses(run, i+1)
		c.restoreVar(cl.Var, saved, had)
		return err
	}
	// A for-clause over a collection-rooted path streams document by
	// document instead of materializing the whole collection.
	if coll, steps, ok := collectionRooted(cl.In); ok {
		return c.src.Docs(coll, c.lookupHint(coll), func(d *xmltree.Document) error {
			items, err := c.stepsFrom(Seq{docNode(d)}, steps)
			if err != nil {
				return err
			}
			return c.bindEach(cl.Var, items, run, i)
		})
	}
	items, err := c.eval(cl.In)
	if err != nil {
		return err
	}
	return c.bindEach(cl.Var, items, run, i)
}

func (c *context) bindEach(name string, items Seq, run *flworRun, i int) error {
	saved, had := c.vars[name]
	defer c.restoreVar(name, saved, had)
	for _, it := range items {
		c.vars[name] = Seq{it}
		if err := c.evalClauses(run, i+1); err != nil {
			return err
		}
	}
	return nil
}

func (c *context) restoreVar(name string, saved Seq, had bool) {
	if had {
		c.vars[name] = saved
	} else {
		delete(c.vars, name)
	}
}

func (c *context) stepsFrom(cur Seq, steps []PathStep) (Seq, error) {
	for _, st := range steps {
		next, err := c.evalStep(cur, st)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// docNode wraps a document's root in a virtual document node so that the
// first location step matches the root element, as XQuery's document nodes
// do: collection("items")/Item selects the Item roots. The wrapper does
// not set the root's parent pointer; it is only ever traversed downward.
func docNode(d *xmltree.Document) *xmltree.Node {
	return &xmltree.Node{Kind: xmltree.ElementNode, Name: "#document", Children: []*xmltree.Node{d.Root}}
}

// DocNode is the exported form of the evaluator's virtual document
// wrapper; the compiled executor must bind the identical node shape so
// leading steps (including a wrapper-matching //*) behave the same.
func DocNode(d *xmltree.Document) *xmltree.Node { return docNode(d) }

// ItemNumber converts one item to a number under the evaluator's rules
// (booleans become 0/1, anything else atomizes then parses).
func ItemNumber(it Item) (float64, error) { return itemNumber(it) }

// CollectionRooted is the exported form of collectionRooted, used by the
// compiled executor to recognize scannable binding sources.
func CollectionRooted(e Expr) (collection string, steps []PathStep, ok bool) {
	return collectionRooted(e)
}

// collectionRooted recognizes collection("x")/step/... binding sources.
func collectionRooted(e Expr) (collection string, steps []PathStep, ok bool) {
	switch x := e.(type) {
	case *CollectionCall:
		return x.Name, nil, true
	case *PathExpr:
		if cc, isColl := x.Source.(*CollectionCall); isColl {
			return cc.Name, x.Steps, true
		}
	}
	return "", nil, false
}

// --- operators ---

func (c *context) evalBinary(b *Binary) (Seq, error) {
	switch b.Op {
	case OpAnd, OpOr:
		lv, err := c.eval(b.Left)
		if err != nil {
			return nil, err
		}
		lb, err := EffectiveBool(lv)
		if err != nil {
			return nil, err
		}
		if (b.Op == OpAnd && !lb) || (b.Op == OpOr && lb) {
			return Seq{lb}, nil
		}
		rv, err := c.eval(b.Right)
		if err != nil {
			return nil, err
		}
		rb, err := EffectiveBool(rv)
		if err != nil {
			return nil, err
		}
		return Seq{rb}, nil
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		lv, err := c.eval(b.Left)
		if err != nil {
			return nil, err
		}
		rv, err := c.eval(b.Right)
		if err != nil {
			return nil, err
		}
		return Seq{GeneralCompare(b.Op, lv, rv)}, nil
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		lv, err := c.evalNumber(b.Left)
		if err != nil {
			return nil, err
		}
		rv, err := c.evalNumber(b.Right)
		if err != nil {
			return nil, err
		}
		if lv == nil || rv == nil {
			return nil, nil // arithmetic over the empty sequence is empty
		}
		switch b.Op {
		case OpAdd:
			return Seq{*lv + *rv}, nil
		case OpSub:
			return Seq{*lv - *rv}, nil
		case OpMul:
			return Seq{*lv * *rv}, nil
		case OpDiv:
			return Seq{*lv / *rv}, nil
		default:
			return Seq{math.Mod(*lv, *rv)}, nil
		}
	default:
		return nil, fmt.Errorf("xquery: unknown operator %v", b.Op)
	}
}

func (c *context) evalNumber(e Expr) (*float64, error) {
	v, err := c.eval(e)
	if err != nil {
		return nil, err
	}
	if len(v) == 0 {
		return nil, nil
	}
	if len(v) > 1 {
		return nil, fmt.Errorf("xquery: arithmetic over a sequence of %d items", len(v))
	}
	f, err := itemNumber(v[0])
	if err != nil {
		return nil, err
	}
	return &f, nil
}

// --- constructors ---

func (c *context) evalCtor(ct *ElementCtor) (*xmltree.Node, error) {
	el := xmltree.NewElement(ct.Name)
	for _, a := range ct.Attrs {
		v, err := c.eval(a.Value)
		if err != nil {
			return nil, err
		}
		el.Append(xmltree.NewAttr(a.Name, seqString(v)))
	}
	for _, ch := range ct.Children {
		v, err := c.eval(ch)
		if err != nil {
			return nil, err
		}
		for _, it := range v {
			switch x := it.(type) {
			case *xmltree.Node:
				el.Append(x.Clone())
			default:
				el.Append(xmltree.NewText(ItemString(it)))
			}
		}
	}
	return el, nil
}

// --- value helpers ---

// ItemString atomizes one item to its string value.
func ItemString(it Item) string {
	switch x := it.(type) {
	case *xmltree.Node:
		return x.Text()
	case string:
		return x
	case float64:
		return formatNumber(x)
	case bool:
		if x {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprint(x)
	}
}

func formatNumber(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func itemNumber(it Item) (float64, error) {
	switch x := it.(type) {
	case float64:
		return x, nil
	case bool:
		if x {
			return 1, nil
		}
		return 0, nil
	default:
		f, ok := ParseNumber(ItemString(it))
		if !ok {
			return 0, fmt.Errorf("xquery: %q is not a number", strings.TrimSpace(ItemString(it)))
		}
		return f, nil
	}
}

func seqString(s Seq) string {
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = ItemString(it)
	}
	return strings.Join(parts, " ")
}

// EffectiveBool computes the effective boolean value of a sequence.
func EffectiveBool(s Seq) (bool, error) {
	if len(s) == 0 {
		return false, nil
	}
	if _, isNode := s[0].(*xmltree.Node); isNode {
		return true, nil
	}
	if len(s) > 1 {
		return false, fmt.Errorf("xquery: effective boolean value of a %d-item atomic sequence", len(s))
	}
	switch x := s[0].(type) {
	case bool:
		return x, nil
	case string:
		return x != "", nil
	case float64:
		return x != 0 && !math.IsNaN(x), nil
	default:
		return false, fmt.Errorf("xquery: no effective boolean value for %T", x)
	}
}

// SortNodesByDocOrder sorts node items by (document, node ID); used when a
// deterministic order is needed for distributed result composition.
func SortNodesByDocOrder(s Seq) {
	sort.SliceStable(s, func(i, j int) bool {
		a, aok := s[i].(*xmltree.Node)
		b, bok := s[j].(*xmltree.Node)
		if !aok || !bok {
			return false
		}
		return a.ID < b.ID
	})
}
