package xquery

import (
	"strings"
	"testing"
)

func TestNormalizeQueryTextEquivalences(t *testing.T) {
	// Each group lists spellings that must share one normal form.
	groups := [][]string{
		{
			`for $i in collection("items")/Item where $i/Section = "CD" return $i/Code`,
			"for  $i   in\tcollection(\"items\")/Item\n  where $i/Section = \"CD\"\n  return $i/Code",
			`for $i in collection('items')/Item where $i/Section = 'CD' return $i/Code`,
			`for $i in collection("items")/Item (: routed :) where $i/Section = "CD" return $i/Code`,
		},
		{
			`count(collection("c")/Item)`,
			"  count ( collection( 'c' ) / Item )  ",
		},
		{
			`$x - 1`,
			"$x  -  1",
		},
	}
	for _, g := range groups {
		want := NormalizeQueryText(g[0])
		if want == "" {
			t.Fatalf("empty normal form for %q", g[0])
		}
		for _, q := range g[1:] {
			if got := NormalizeQueryText(q); got != want {
				t.Errorf("NormalizeQueryText(%q) = %q, want %q", q, got, want)
			}
		}
	}
}

func TestNormalizeQueryTextDistinctions(t *testing.T) {
	// Pairs that must NOT collapse to the same normal form.
	pairs := [][2]string{
		// a-b is one name; a - b is a subtraction.
		{`collection("c")/a-b`, `collection("c")/a - b`},
		// Literal content differs.
		{`$x = "CD"`, `$x = "cd"`},
		// Whitespace inside a string literal is significant.
		{`contains($d, "good disc")`, `contains($d, "good  disc")`},
	}
	for _, p := range pairs {
		if NormalizeQueryText(p[0]) == NormalizeQueryText(p[1]) {
			t.Errorf("%q and %q normalized identically: %q", p[0], p[1], NormalizeQueryText(p[0]))
		}
	}
}

func TestNormalizeQueryTextQuoting(t *testing.T) {
	// Canonical quoting is double; a literal containing a double quote (only
	// writable single-quoted — the language has no escapes) stays single.
	if got := NormalizeQueryText(`$x = 'CD'`); !strings.Contains(got, `"CD"`) {
		t.Errorf("single-quoted literal not canonicalized: %q", got)
	}
	q := `$x = 'say "hi"'`
	if got := NormalizeQueryText(q); !strings.Contains(got, `'say "hi"'`) {
		t.Errorf("literal with embedded double quote mangled: %q", got)
	}
	// Round-trip: the normal form normalizes to itself.
	n := NormalizeQueryText(q)
	if NormalizeQueryText(n) != n {
		t.Errorf("normal form not a fixed point: %q -> %q", n, NormalizeQueryText(n))
	}
}

func TestNormalizeQueryTextConstructorFallback(t *testing.T) {
	// Element-constructor content is raw text with semantic whitespace; the
	// normalizer must not touch its interior and falls back to TrimSpace.
	q := "  <out>{ $x }   keep  this </out>  "
	if got := NormalizeQueryText(q); got != strings.TrimSpace(q) {
		t.Errorf("constructor query rewritten: %q", got)
	}
	// Lexing errors also fall back rather than guessing.
	bad := `  $x = "unterminated  `
	if got := NormalizeQueryText(bad); got != strings.TrimSpace(bad) {
		t.Errorf("unlexable query rewritten: %q", got)
	}
}

func TestNormalizeQueryTextParsesSame(t *testing.T) {
	// The normal form of a parseable query parses to the same expression.
	queries := []string{
		`for $i in collection("items")/Item where $i/@id < 2 return $i/Code`,
		`sum(collection('c')/Item/@id)`,
		`for $i in collection("c")/Item order by $i/Code descending return $i`,
	}
	for _, q := range queries {
		e1, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		n := NormalizeQueryText(q)
		e2, err := Parse(n)
		if err != nil {
			t.Fatalf("normal form of %q does not parse: %q: %v", q, n, err)
		}
		if Format(e1) != Format(e2) {
			t.Errorf("normal form changed meaning: %q vs %q", Format(e1), Format(e2))
		}
	}
}
