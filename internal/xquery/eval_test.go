package xquery

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"partix/internal/xmltree"
)

// memSource is an in-memory Source for tests. It records whether hints
// were offered so hint plumbing can be asserted.
type memSource struct {
	collections map[string]*xmltree.Collection
	docs        map[string]*xmltree.Document
	lastHint    map[string]*Hint
}

func newMemSource(cols ...*xmltree.Collection) *memSource {
	s := &memSource{
		collections: map[string]*xmltree.Collection{},
		docs:        map[string]*xmltree.Document{},
		lastHint:    map[string]*Hint{},
	}
	for _, c := range cols {
		s.collections[c.Name] = c
		for _, d := range c.Docs {
			s.docs[d.Name] = d
		}
	}
	return s
}

func (s *memSource) Docs(name string, hint *Hint, fn func(*xmltree.Document) error) error {
	c, ok := s.collections[name]
	if !ok {
		return fmt.Errorf("no collection %q", name)
	}
	s.lastHint[name] = hint
	for _, d := range c.Docs {
		if err := fn(d); err != nil {
			return err
		}
	}
	return nil
}

func (s *memSource) Doc(name string) (*xmltree.Document, error) {
	d, ok := s.docs[name]
	if !ok {
		return nil, fmt.Errorf("no document %q", name)
	}
	return d, nil
}

func itemsSource() *memSource {
	mk := func(name, code, section, desc string, pics int) *xmltree.Document {
		xml := `<Item id="` + strings.TrimPrefix(name, "i") + `"><Code>` + code +
			`</Code><Name>name-` + code + `</Name><Description>` + desc +
			`</Description><Section>` + section + `</Section>`
		if pics > 0 {
			xml += "<PictureList>"
			for p := 0; p < pics; p++ {
				xml += fmt.Sprintf("<Picture><Name>p%d</Name><ModificationDate>m</ModificationDate><OriginalPath>o</OriginalPath><ThumbPath>t</ThumbPath></Picture>", p)
			}
			xml += "</PictureList>"
		}
		xml += `</Item>`
		return xmltree.MustParseString(name, xml)
	}
	return newMemSource(xmltree.NewCollection("items",
		mk("i1", "I1", "CD", "a good disc", 2),
		mk("i2", "I2", "DVD", "a fine movie", 0),
		mk("i3", "I3", "CD", "plain disc", 1),
		mk("i4", "I4", "Book", "good reading", 0),
	))
}

func evalStrings(t *testing.T, src Source, query string) []string {
	t.Helper()
	res, err := EvalQuery(query, src)
	if err != nil {
		t.Fatalf("%s: %v", query, err)
	}
	out := make([]string, len(res))
	for i, it := range res {
		out[i] = ItemString(it)
	}
	return out
}

func TestSimplePathQuery(t *testing.T) {
	src := itemsSource()
	got := evalStrings(t, src, `collection("items")/Item/Code`)
	want := []string{"I1", "I2", "I3", "I4"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestPathWithStepPredicate(t *testing.T) {
	src := itemsSource()
	got := evalStrings(t, src, `collection("items")/Item[Section = "CD"]/Code`)
	if !reflect.DeepEqual(got, []string{"I1", "I3"}) {
		t.Fatalf("got %v", got)
	}
}

func TestAttributeStep(t *testing.T) {
	src := itemsSource()
	got := evalStrings(t, src, `collection("items")/Item[Section = "DVD"]/@id`)
	if !reflect.DeepEqual(got, []string{"2"}) {
		t.Fatalf("got %v", got)
	}
}

func TestPositionalPredicate(t *testing.T) {
	src := itemsSource()
	got := evalStrings(t, src, `collection("items")/Item[Code = "I1"]/PictureList/Picture[2]/Name`)
	if !reflect.DeepEqual(got, []string{"p1"}) {
		t.Fatalf("got %v", got)
	}
	if out := evalStrings(t, src, `collection("items")/Item/PictureList/Picture[9]/Name`); len(out) != 0 {
		t.Fatalf("out-of-range positional returned %v", out)
	}
}

func TestDescendantStep(t *testing.T) {
	src := itemsSource()
	got := evalStrings(t, src, `collection("items")/Item[Code = "I3"]//Picture/Name`)
	if !reflect.DeepEqual(got, []string{"p0"}) {
		t.Fatalf("got %v", got)
	}
}

func TestFLWORWhereReturn(t *testing.T) {
	src := itemsSource()
	got := evalStrings(t, src, `
	  for $i in collection("items")/Item
	  where $i/Section = "CD"
	  return $i/Name`)
	if !reflect.DeepEqual(got, []string{"name-I1", "name-I3"}) {
		t.Fatalf("got %v", got)
	}
}

func TestFLWORLetClause(t *testing.T) {
	src := itemsSource()
	got := evalStrings(t, src, `
	  for $i in collection("items")/Item
	  let $c := count($i/PictureList/Picture)
	  where $c > 0
	  return concat($i/Code, ":", string($c))`)
	if !reflect.DeepEqual(got, []string{"I1:2", "I3:1"}) {
		t.Fatalf("got %v", got)
	}
}

func TestFLWORNestedFor(t *testing.T) {
	src := itemsSource()
	got := evalStrings(t, src, `
	  for $i in collection("items")/Item[Code = "I1"], $p in $i/PictureList/Picture
	  return $p/Name`)
	if !reflect.DeepEqual(got, []string{"p0", "p1"}) {
		t.Fatalf("got %v", got)
	}
}

func TestTextSearchQuery(t *testing.T) {
	src := itemsSource()
	got := evalStrings(t, src, `
	  for $i in collection("items")/Item
	  where contains($i/Description, "good")
	  return $i/Code`)
	if !reflect.DeepEqual(got, []string{"I1", "I4"}) {
		t.Fatalf("got %v", got)
	}
}

func TestAggregations(t *testing.T) {
	src := itemsSource()
	cases := []struct {
		q, want string
	}{
		{`count(collection("items")/Item)`, "4"},
		{`count(for $i in collection("items")/Item where contains($i/Description, "good") return $i)`, "2"},
		{`sum(for $i in collection("items")/Item return count($i//Picture))`, "3"},
		{`avg((2, 4, 6))`, "4"},
		{`min((3, 1, 2))`, "1"},
		{`max((3, 1, 2))`, "3"},
		{`sum(())`, "0"},
	}
	for _, tc := range cases {
		got := evalStrings(t, src, tc.q)
		if len(got) != 1 || got[0] != tc.want {
			t.Errorf("%s = %v, want %s", tc.q, got, tc.want)
		}
	}
}

func TestEmptyAggregatesAreEmpty(t *testing.T) {
	src := itemsSource()
	for _, q := range []string{`avg(())`, `min(())`, `max(())`} {
		q := strings.Replace(q, "()", `(for $i in collection("items")/Item where $i/Code = "nope" return $i)`, 1)
		res, err := EvalQuery(q, src)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(res) != 0 {
			t.Errorf("%s = %v, want empty", q, res)
		}
	}
}

func TestElementConstructor(t *testing.T) {
	src := itemsSource()
	res, err := EvalQuery(`
	  for $i in collection("items")/Item
	  where $i/Section = "DVD"
	  return <result code="{$i/Code}"><n>{$i/Name}</n><fixed>x</fixed></result>`, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	n := res[0].(*xmltree.Node)
	out := xmltree.NodeString(n)
	want := `<result code="I2"><n><Name>name-I2</Name></n><fixed>x</fixed></result>`
	if out != want {
		t.Fatalf("got %s", out)
	}
}

func TestConstructorEmbedsAtomics(t *testing.T) {
	src := itemsSource()
	res, err := EvalQuery(`<total>{count(collection("items")/Item)}</total>`, src)
	if err != nil {
		t.Fatal(err)
	}
	n := res[0].(*xmltree.Node)
	if got := xmltree.NodeString(n); got != "<total>4</total>" {
		t.Fatalf("got %s", got)
	}
}

func TestArithmetic(t *testing.T) {
	src := itemsSource()
	cases := map[string]string{
		`1 + 2 * 3`:                           "7",
		`(1 + 2) * 3`:                         "9",
		`10 div 4`:                            "2.5",
		`10 mod 4`:                            "2",
		`-5 + 2`:                              "-3",
		`count(collection("items")/Item) - 1`: "3",
	}
	for q, want := range cases {
		got := evalStrings(t, src, q)
		if len(got) != 1 || got[0] != want {
			t.Errorf("%s = %v, want %s", q, got, want)
		}
	}
}

func TestComparisonSemantics(t *testing.T) {
	src := itemsSource()
	cases := map[string]bool{
		`"abc" = "abc"`:  true,
		`"abc" != "abc"`: false,
		`"10" < "9"`:     false, // both numeric: numeric compare
		`"a10" < "a9"`:   true,  // string compare
		`2 >= 2`:         true,
		`1 > 2`:          false,
	}
	for q, want := range cases {
		res, err := EvalQuery(q, src)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if b, _ := res[0].(bool); b != want {
			t.Errorf("%s = %v, want %v", q, res[0], want)
		}
	}
}

func TestGeneralComparisonIsExistential(t *testing.T) {
	src := itemsSource()
	// Some Section equals CD.
	res, err := EvalQuery(`collection("items")/Item/Section = "CD"`, src)
	if err != nil {
		t.Fatal(err)
	}
	if b := res[0].(bool); !b {
		t.Fatal("existential = failed")
	}
	// != is also existential: some Section differs from CD.
	res, _ = EvalQuery(`collection("items")/Item/Section != "CD"`, src)
	if b := res[0].(bool); !b {
		t.Fatal("existential != failed")
	}
}

func TestBooleanFunctions(t *testing.T) {
	src := itemsSource()
	cases := map[string]string{
		`not(1 = 1)`:                               "false",
		`empty(collection("items")/Item/Nope)`:     "true",
		`exists(collection("items")/Item/Section)`: "true",
		`contains("hello world", "lo wo")`:         "true",
		`starts-with("hello", "he")`:               "true",
		`ends-with("hello", "lo")`:                 "true",
		`string-length("abcd")`:                    "4",
		`string(count(collection("items")/Item))`:  "4",
		`number("3.5") * 2`:                        "7",
	}
	for q, want := range cases {
		got := evalStrings(t, src, q)
		if len(got) != 1 || got[0] != want {
			t.Errorf("%s = %v, want %q", q, got, want)
		}
	}
}

func TestDistinctValues(t *testing.T) {
	src := itemsSource()
	got := evalStrings(t, src, `distinct-values(collection("items")/Item/Section)`)
	if !reflect.DeepEqual(got, []string{"CD", "DVD", "Book"}) {
		t.Fatalf("got %v", got)
	}
}

func TestDocCall(t *testing.T) {
	src := itemsSource()
	got := evalStrings(t, src, `doc("i2")/Item/Section`)
	if !reflect.DeepEqual(got, []string{"DVD"}) {
		t.Fatalf("got %v", got)
	}
	if _, err := EvalQuery(`doc("missing")/Item`, src); err == nil {
		t.Fatal("missing doc not reported")
	}
}

func TestTextStep(t *testing.T) {
	src := itemsSource()
	got := evalStrings(t, src, `collection("items")/Item[Code = "I1"]/Description/text()`)
	if !reflect.DeepEqual(got, []string{"a good disc"}) {
		t.Fatalf("got %v", got)
	}
}

func TestWildcardStep(t *testing.T) {
	src := itemsSource()
	got := evalStrings(t, src, `count(collection("items")/Item[Code = "I2"]/*)`)
	if !reflect.DeepEqual(got, []string{"4"}) {
		t.Fatalf("got %v (Code, Name, Description, Section)", got)
	}
}

func TestSequenceExpression(t *testing.T) {
	src := itemsSource()
	got := evalStrings(t, src, `("a", "b", 3)`)
	if !reflect.DeepEqual(got, []string{"a", "b", "3"}) {
		t.Fatalf("got %v", got)
	}
}

func TestEvalErrors(t *testing.T) {
	src := itemsSource()
	bad := []string{
		`$unbound`,
		`collection("nope")/Item`,
		`"a" + 1`,
		`unknownfn(1)`,
		`count(1, 2)`,
		`(1, 2) + 1`,
		`"str"/child`,
		`.`,       // no context item at top level
		`Section`, // relative path without context
		`true(1)`,
		`number(())`,
	}
	for _, q := range bad {
		if _, err := EvalQuery(q, src); err == nil {
			t.Errorf("%s: no error", q)
		}
	}
}

func TestVariableScoping(t *testing.T) {
	src := itemsSource()
	// Inner for shadows outer let; after the FLWOR the outer binding is intact.
	got := evalStrings(t, src, `
	  let $x := "outer"
	  for $y in (1, 2)
	  let $x := concat("inner", string($y))
	  return $x`)
	if !reflect.DeepEqual(got, []string{"inner1", "inner2"}) {
		t.Fatalf("got %v", got)
	}
}

func TestEffectiveBool(t *testing.T) {
	node := xmltree.NewElement("x")
	cases := []struct {
		in   Seq
		want bool
	}{
		{nil, false},
		{Seq{true}, true},
		{Seq{false}, false},
		{Seq{""}, false},
		{Seq{"x"}, true},
		{Seq{0.0}, false},
		{Seq{1.5}, true},
		{Seq{node}, true},
		{Seq{node, node}, true},
	}
	for _, tc := range cases {
		got, err := EffectiveBool(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("EffectiveBool(%v) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := EffectiveBool(Seq{"a", "b"}); err == nil {
		t.Error("multi-atomic EBV accepted")
	}
}

func TestItemString(t *testing.T) {
	if ItemString(3.0) != "3" || ItemString(3.25) != "3.25" {
		t.Error("number formatting wrong")
	}
	if ItemString(true) != "true" || ItemString(false) != "false" {
		t.Error("bool formatting wrong")
	}
	n := xmltree.NewElement("a", xmltree.NewText("v"))
	if ItemString(n) != "v" {
		t.Error("node atomization wrong")
	}
}
