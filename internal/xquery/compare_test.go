package xquery

import (
	"testing"

	"partix/internal/xmltree"
)

// The general-comparison truth table: numeric when both sides parse as
// numbers, string comparison otherwise, NaN satisfying no numeric
// comparison. Every layer (interpreter, compiled executor, value index,
// planner) routes through these functions, so this table pins the shared
// semantics.
func TestCompareOperands(t *testing.T) {
	cases := []struct {
		name string
		op   BinaryOp
		l, r string
		want bool
	}{
		// Numeric comparisons: both sides parse.
		{"num eq", OpEq, "10", "10.0", true},
		{"num eq scientific", OpEq, "100", "1e2", true},
		{"num eq trimmed", OpEq, " 7 ", "7", true},
		{"num ne", OpNe, "1", "2", true},
		{"num ne equal", OpNe, "3", "3.00", false},
		{"num lt", OpLt, "9", "10", true},
		{"num lt false", OpLt, "10", "9", false},
		{"num le equal", OpLe, "5", "5", true},
		{"num gt", OpGt, "10", "9", true},
		{"num ge equal", OpGe, "5.5", "5.5", true},
		{"num negative", OpLt, "-2", "1", true},

		// String fallback: either side non-numeric.
		{"str eq", OpEq, "CD", "CD", true},
		{"str eq case", OpEq, "cd", "CD", false},
		{"str lt lexicographic", OpLt, "9", "10a", false}, // "9" > "1" as strings
		{"str date range", OpGt, "2005-03-01", "2004-01-01", true},
		{"str one numeric", OpEq, "10", "ten", false},
		{"str ne mixed", OpNe, "10", "ten", true},
		{"empty vs empty", OpEq, "", "", true},
		{"empty vs zero", OpEq, "", "0", false},

		// NaN: parses as a number, satisfies no numeric comparison.
		{"nan eq nan", OpEq, "NaN", "NaN", false},
		{"nan ne nan", OpNe, "NaN", "NaN", true},
		{"nan lt num", OpLt, "NaN", "5", false},
		{"nan gt num", OpGt, "NaN", "5", false},
		{"nan le num", OpLe, "NaN", "5", false},
		{"num ge nan", OpGe, "5", "NaN", false},
		{"nan vs string", OpEq, "NaN", "NaN ", false}, // "NaN " parses too → numeric NaN≠NaN
		{"nan vs word", OpLt, "NaN", "word", true},    // "word" is non-numeric → string cmp
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := CompareOperands(tc.op, PrepOperand(tc.l), PrepOperand(tc.r))
			if got != tc.want {
				t.Errorf("CompareOperands(%v, %q, %q) = %v, want %v", tc.op, tc.l, tc.r, got, tc.want)
			}
			// CompareValue prepares the left side itself; same answer.
			if got := CompareValue(tc.op, tc.l, PrepOperand(tc.r)); got != tc.want {
				t.Errorf("CompareValue(%v, %q, %q) = %v, want %v", tc.op, tc.l, tc.r, got, tc.want)
			}
			// CompareAtoms atomizes items; strings atomize to themselves.
			if got := CompareAtoms(tc.op, tc.l, tc.r); got != tc.want {
				t.Errorf("CompareAtoms(%v, %q, %q) = %v, want %v", tc.op, tc.l, tc.r, got, tc.want)
			}
		})
	}
}

func TestParseNumber(t *testing.T) {
	cases := []struct {
		in    string
		num   float64
		isNum bool
	}{
		{"10", 10, true},
		{" 10.5 ", 10.5, true},
		{"1e3", 1000, true},
		{"-0", 0, true},
		{"", 0, false},
		{"ten", 0, false},
		{"10x", 0, false},
		{"10 20", 0, false},
	}
	for _, tc := range cases {
		num, isNum := ParseNumber(tc.in)
		if isNum != tc.isNum || (isNum && num != tc.num) {
			t.Errorf("ParseNumber(%q) = (%v, %v), want (%v, %v)", tc.in, num, isNum, tc.num, tc.isNum)
		}
	}
	// NaN parses as numeric; its value is unequal to itself by IEEE rules.
	if num, isNum := ParseNumber("NaN"); !isNum || num == num {
		t.Errorf("ParseNumber(NaN) = (%v, %v), want a numeric NaN", num, isNum)
	}
}

func TestGeneralCompareExistential(t *testing.T) {
	nodes := func(vals ...string) Seq {
		s := make(Seq, len(vals))
		for i, v := range vals {
			n := xmltree.NewElement("v")
			n.Append(xmltree.NewText(v))
			s[i] = n
		}
		return s
	}
	cases := []struct {
		name        string
		op          BinaryOp
		left, right Seq
		want        bool
	}{
		{"one witness suffices", OpEq, nodes("a", "b", "c"), Seq{"b"}, true},
		{"no witness", OpEq, nodes("a", "b"), Seq{"z"}, false},
		{"empty left", OpEq, nil, Seq{"a"}, false},
		{"empty right", OpEq, nodes("a"), nil, false},
		{"both empty", OpEq, nil, nil, false},
		{"ne finds any unequal pair", OpNe, nodes("a", "a"), Seq{"a", "b"}, true},
		{"numeric witness among strings", OpLt, nodes("zz", "5"), Seq{"10"}, true},
		{"float item atomizes", OpEq, Seq{float64(10)}, Seq{"10"}, true},
		{"bool item atomizes", OpEq, Seq{true}, Seq{"true"}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := GeneralCompare(tc.op, tc.left, tc.right); got != tc.want {
				t.Errorf("GeneralCompare(%v) = %v, want %v", tc.op, got, tc.want)
			}
		})
	}
}

func TestCompareKeys(t *testing.T) {
	cases := []struct {
		name string
		a, b Item
		want int
	}{
		{"both empty", nil, nil, 0},
		{"empty first", nil, "a", -1},
		{"empty first sym", "a", nil, 1},
		{"numeric order", "9", "10", -1},
		{"numeric equal", "10", "10.0", 0},
		{"string order", "10a", "9a", -1},
		{"string equal", "x", "x", 0},
		{"mixed falls to string", "10", "ten", -1},
		{"float items", float64(2), float64(10), -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := CompareKeys(tc.a, tc.b); got != tc.want {
				t.Errorf("CompareKeys(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
			}
			// Antisymmetry with the argument order flipped.
			if got := CompareKeys(tc.b, tc.a); got != -tc.want {
				t.Errorf("CompareKeys(%v, %v) = %d, want %d", tc.b, tc.a, got, -tc.want)
			}
		})
	}
}

func TestCmpToBinaryOp(t *testing.T) {
	cases := []struct {
		in  CmpOp
		out BinaryOp
		ok  bool
	}{
		{CmpEq, OpEq, true},
		{CmpLt, OpLt, true},
		{CmpLe, OpLe, true},
		{CmpGt, OpGt, true},
		{CmpGe, OpGe, true},
		{CmpExists, 0, false},
	}
	for _, tc := range cases {
		out, ok := CmpToBinaryOp(tc.in)
		if ok != tc.ok || (ok && out != tc.out) {
			t.Errorf("CmpToBinaryOp(%v) = (%v, %v), want (%v, %v)", tc.in, out, ok, tc.out, tc.ok)
		}
	}
}
