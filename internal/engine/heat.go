package engine

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"partix/internal/obs"
	"partix/internal/xquery"
)

// Per-collection heat counters feed the workload profiler's fragment
// heat maps. A fragmented deployment stores each fragment as its own
// node collection named "<collection>::<fragment>", so per-collection
// counters on a node are per-fragment counters for the cluster.
//
// Updates are atomic adds on a per-collection struct resolved through a
// double-checked map (the colFor pattern), gated on obs.Enabled() like
// every other instrumentation site.
type colHeat struct {
	queries     atomic.Int64
	docsDecoded atomic.Int64
	bytes       atomic.Int64
	latencyMu   sync.Mutex
	latency     []int64 // counts per obs.HeatLatencyBounds bucket, +Inf last
}

// heatState holds a DB's heat map behind its own small lock so heat
// lookups never contend with the engine's index/collection lock.
type heatState struct {
	mu   sync.RWMutex
	cols map[string]*colHeat
}

func (h *heatState) forCollection(collection string) *colHeat {
	h.mu.RLock()
	c := h.cols[collection]
	h.mu.RUnlock()
	if c != nil {
		return c
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if c = h.cols[collection]; c == nil {
		c = &colHeat{latency: make([]int64, len(obs.HeatLatencyBounds)+1)}
		h.cols[collection] = c
	}
	return c
}

// observeQueryHeat bumps the query and latency counters of every
// collection a query touches.
func (db *DB) observeQueryHeat(e xquery.Expr, elapsed time.Duration) {
	if !obs.Enabled() {
		return
	}
	bucket := obs.ObserveLatencyBucket(elapsed)
	for _, name := range xquery.CollectionNames(e) {
		c := db.heat.forCollection(name)
		c.queries.Add(1)
		c.latencyMu.Lock()
		c.latency[bucket]++
		c.latencyMu.Unlock()
	}
}

// observeDocsHeat bumps a collection's decode counters after a Docs scan.
func (db *DB) observeDocsHeat(collection string, decoded, bytes int64) {
	if !obs.Enabled() {
		return
	}
	c := db.heat.forCollection(collection)
	c.docsDecoded.Add(decoded)
	c.bytes.Add(bytes)
}

// FragmentHeat exports the per-collection heat as fragment heat
// entries: node-collection names split on the "::" fragment separator,
// sorted by collection then fragment. Node is left empty — the puller
// knows the node's logical name, the node itself does not.
func (db *DB) FragmentHeat() []obs.FragmentHeat {
	db.heat.mu.RLock()
	names := make([]string, 0, len(db.heat.cols))
	for name := range db.heat.cols {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]obs.FragmentHeat, 0, len(names))
	for _, name := range names {
		c := db.heat.cols[name]
		coll, frag := name, ""
		if i := strings.Index(name, "::"); i >= 0 {
			coll, frag = name[:i], name[i+2:]
		}
		c.latencyMu.Lock()
		buckets := append([]int64(nil), c.latency...)
		c.latencyMu.Unlock()
		out = append(out, obs.FragmentHeat{
			Collection:     coll,
			Fragment:       frag,
			Queries:        c.queries.Load(),
			DocsDecoded:    c.docsDecoded.Load(),
			Bytes:          c.bytes.Load(),
			LatencyBuckets: buckets,
		})
	}
	db.heat.mu.RUnlock()
	return obs.MergeHeat(out)
}
