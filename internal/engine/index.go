package engine

import (
	"sort"
	"strings"
	"sync"

	"partix/internal/xmltree"
	"partix/internal/xquery"
)

// docID is an interned document name. IDs are dense, assigned on first
// add and recycled on remove, so posting lists stay compact []docID
// slices instead of the map-of-maps the first engine version used.
type docID uint32

// textIndex is an inverted index: text token → sorted posting list of
// docIDs (with a sorted vocabulary for substring constraints) plus a
// structural index element name → sorted posting list. Tokenization
// matches xquery.Tokenize, which is what makes hints sound.
//
// The reverse maps (docID → the tokens/elements it contributed) make
// remove proportional to the document's own vocabulary instead of the
// whole index's.
//
// All methods lock ix.mu, so an index is safe for concurrent readers and
// writers regardless of which engine lock the caller holds; the engine's
// db.mu only guards the collection → index map itself.
type textIndex struct {
	mu sync.Mutex

	names []string         // docID → name; "" marks a recycled slot
	ids   map[string]docID // name → docID
	free  []docID          // recycled slots, reused before growing names

	postings map[string][]docID // token → sorted docIDs
	elements map[string][]docID // element name → sorted docIDs

	docTokens   map[docID][]string // reverse: tokens a doc contributed
	docElements map[docID][]string // reverse: element names a doc contributed

	vocab []string // sorted tokens; rebuilt lazily
	dirty bool
}

func newTextIndex() *textIndex {
	return &textIndex{
		ids:         map[string]docID{},
		postings:    map[string][]docID{},
		elements:    map[string][]docID{},
		docTokens:   map[docID][]string{},
		docElements: map[docID][]string{},
	}
}

// intern returns the docID for name, assigning one if needed. Callers
// hold ix.mu.
func (ix *textIndex) intern(name string) docID {
	if id, ok := ix.ids[name]; ok {
		return id
	}
	var id docID
	if n := len(ix.free); n > 0 {
		id = ix.free[n-1]
		ix.free = ix.free[:n-1]
		ix.names[id] = name
	} else {
		id = docID(len(ix.names))
		ix.names = append(ix.names, name)
	}
	ix.ids[name] = id
	return id
}

// insertSorted adds id to a sorted posting list, keeping it sorted.
func insertSorted(list []docID, id docID) []docID {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= id })
	if i < len(list) && list[i] == id {
		return list
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = id
	return list
}

// removeSorted deletes id from a sorted posting list if present.
func removeSorted(list []docID, id docID) []docID {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= id })
	if i >= len(list) || list[i] != id {
		return list
	}
	return append(list[:i], list[i+1:]...)
}

func (ix *textIndex) add(doc *xmltree.Document) {
	tokens := map[string]bool{}
	elements := map[string]bool{}
	doc.Root.Walk(func(n *xmltree.Node) bool {
		switch n.Kind {
		case xmltree.TextNode:
			for _, tok := range xquery.Tokenize(n.Value) {
				tokens[tok] = true
			}
		case xmltree.ElementNode:
			elements[n.Name] = true
		}
		return true
	})

	ix.mu.Lock()
	defer ix.mu.Unlock()
	id := ix.intern(doc.Name)
	for tok := range tokens {
		if _, known := ix.postings[tok]; !known {
			ix.dirty = true
		}
		ix.postings[tok] = insertSorted(ix.postings[tok], id)
		ix.docTokens[id] = append(ix.docTokens[id], tok)
	}
	for name := range elements {
		ix.elements[name] = insertSorted(ix.elements[name], id)
		ix.docElements[id] = append(ix.docElements[id], name)
	}
}

func (ix *textIndex) remove(docName string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	id, ok := ix.ids[docName]
	if !ok {
		return
	}
	for _, tok := range ix.docTokens[id] {
		if list := removeSorted(ix.postings[tok], id); len(list) == 0 {
			delete(ix.postings, tok)
			ix.dirty = true
		} else {
			ix.postings[tok] = list
		}
	}
	for _, name := range ix.docElements[id] {
		if list := removeSorted(ix.elements[name], id); len(list) == 0 {
			delete(ix.elements, name)
		} else {
			ix.elements[name] = list
		}
	}
	delete(ix.docTokens, id)
	delete(ix.docElements, id)
	delete(ix.ids, docName)
	ix.names[id] = ""
	ix.free = append(ix.free, id)
}

// vocabulary returns the sorted token list. Callers hold ix.mu.
func (ix *textIndex) vocabulary() []string {
	if ix.dirty || ix.vocab == nil {
		ix.vocab = make([]string, 0, len(ix.postings))
		for tok := range ix.postings {
			ix.vocab = append(ix.vocab, tok)
		}
		sort.Strings(ix.vocab)
		ix.dirty = false
	}
	return ix.vocab
}

// intersectSorted merges two sorted posting lists into their intersection.
func intersectSorted(a, b []docID) []docID {
	out := a[:0:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// candidates evaluates the hint's conjunction and returns the documents
// that may satisfy it.
func (ix *textIndex) candidates(hint *xquery.Hint) map[string]bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var result []docID
	first := true
	intersect := func(list []docID) {
		if first {
			result = append(result[:0:0], list...)
			first = false
			return
		}
		result = intersectSorted(result, list)
	}
	for _, c := range hint.Constraints {
		for _, tok := range c.Tokens {
			intersect(ix.postings[tok])
		}
		for _, name := range c.Elements {
			intersect(ix.elements[name])
		}
		if c.Substring != "" {
			union := map[docID]bool{}
			for _, tok := range ix.vocabulary() {
				if strings.Contains(tok, c.Substring) {
					for _, id := range ix.postings[tok] {
						union[id] = true
					}
				}
			}
			list := make([]docID, 0, len(union))
			for id := range union {
				list = append(list, id)
			}
			sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
			intersect(list)
		}
	}
	out := make(map[string]bool, len(result))
	for _, id := range result {
		out[ix.names[id]] = true
	}
	return out
}
