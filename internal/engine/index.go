package engine

import (
	"sort"
	"strings"
	"sync"

	"partix/internal/xmltree"
	"partix/internal/xquery"
)

// docID is an interned document name. IDs are dense, assigned on first
// add and recycled on remove, so posting lists stay compact []docID
// slices instead of the map-of-maps the first engine version used.
type docID uint32

// docIndex holds one collection's indexes:
//
//   - an inverted text index (token → sorted posting list, with a sorted
//     vocabulary for substring constraints) and a structural index
//     (element name → sorted posting list) — tokenization matches
//     xquery.Tokenize, which is what makes hints sound;
//   - a DataGuide-style path summary: every distinct root-to-node label
//     path → the docs containing it, with per-doc node counts (pathindex.go);
//   - a typed value index: label path → sorted node values → postings,
//     answering equality and range constraints by binary search.
//
// The reverse maps (docID → what the doc contributed) make remove
// proportional to the document's own vocabulary instead of the whole
// index's.
//
// All methods lock ix.mu, so an index is safe for concurrent readers and
// writers regardless of which engine lock the caller holds; the engine's
// db.mu only guards the collection → index map itself.
type docIndex struct {
	mu sync.Mutex

	names []string         // docID → name; "" marks a recycled slot
	ids   map[string]docID // name → docID
	free  []docID          // recycled slots, reused before growing names

	postings map[string][]docID // token → sorted docIDs
	elements map[string][]docID // element name → sorted docIDs

	docTokens   map[docID][]string // reverse: tokens a doc contributed
	docElements map[docID][]string // reverse: element names a doc contributed

	vocab []string // sorted tokens; rebuilt lazily, immutable once built
	dirty bool

	paths    map[string]*pathPosting // label path key → docs + node counts
	values   map[string]*valueList   // label path key → value index
	docPaths map[docID][]docPathRef  // reverse: paths/values a doc contributed

	// pathsBuilt is false only for indexes restored from a pre-v3
	// snapshot: the path structures are then rebuilt lazily on first use
	// (engine.ensurePathIndex). Mutations arriving before that land in
	// pathPending (nil marks a removal) and are replayed by the rebuild.
	pathsBuilt  bool
	pathPending map[string]*docContrib

	// rebuildMu serializes the lazy path rebuild; it is never taken while
	// holding ix.mu.
	rebuildMu sync.Mutex
}

func newDocIndex() *docIndex {
	return &docIndex{
		ids:         map[string]docID{},
		postings:    map[string][]docID{},
		elements:    map[string][]docID{},
		docTokens:   map[docID][]string{},
		docElements: map[docID][]string{},
		paths:       map[string]*pathPosting{},
		values:      map[string]*valueList{},
		docPaths:    map[docID][]docPathRef{},
		pathsBuilt:  true, // a fresh index is trivially in sync
	}
}

// intern returns the docID for name, assigning one if needed. Callers
// hold ix.mu.
func (ix *docIndex) intern(name string) docID {
	if id, ok := ix.ids[name]; ok {
		return id
	}
	var id docID
	if n := len(ix.free); n > 0 {
		id = ix.free[n-1]
		ix.free = ix.free[:n-1]
		ix.names[id] = name
	} else {
		id = docID(len(ix.names))
		ix.names = append(ix.names, name)
	}
	ix.ids[name] = id
	return id
}

// insertSorted adds id to a sorted posting list, keeping it sorted.
func insertSorted(list []docID, id docID) []docID {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= id })
	if i < len(list) && list[i] == id {
		return list
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = id
	return list
}

// removeSorted deletes id from a sorted posting list if present.
func removeSorted(list []docID, id docID) []docID {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= id })
	if i >= len(list) || list[i] != id {
		return list
	}
	return append(list[:i], list[i+1:]...)
}

// docPrep is everything a document contributes to the indexes, computed
// outside any lock.
type docPrep struct {
	name     string
	tokens   []string
	elements []string
	contrib  *docContrib
}

func prepDoc(doc *xmltree.Document) docPrep {
	tokens := map[string]bool{}
	elements := map[string]bool{}
	doc.Root.Walk(func(n *xmltree.Node) bool {
		switch n.Kind {
		case xmltree.TextNode:
			for _, tok := range xquery.Tokenize(n.Value) {
				tokens[tok] = true
			}
		case xmltree.ElementNode:
			elements[n.Name] = true
		}
		return true
	})
	p := docPrep{name: doc.Name, contrib: collectDocPaths(doc)}
	for tok := range tokens {
		p.tokens = append(p.tokens, tok)
	}
	for name := range elements {
		p.elements = append(p.elements, name)
	}
	return p
}

func (ix *docIndex) add(doc *xmltree.Document) {
	p := prepDoc(doc)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.addPrepLocked(p)
}

// replace removes any previous version of doc and adds the new one under
// a single lock acquisition.
func (ix *docIndex) replace(doc *xmltree.Document) {
	ix.replacePrep(prepDoc(doc))
}

// replacePrep is replace with the document's contribution precomputed by
// the caller (outside every lock): the critical section is pure map and
// posting-list maintenance.
func (ix *docIndex) replacePrep(p docPrep) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(p.name)
	ix.addPrepLocked(p)
}

func (ix *docIndex) addPrepLocked(p docPrep) {
	id := ix.intern(p.name)
	for _, tok := range p.tokens {
		if _, known := ix.postings[tok]; !known {
			ix.dirty = true
		}
		ix.postings[tok] = insertSorted(ix.postings[tok], id)
		ix.docTokens[id] = append(ix.docTokens[id], tok)
	}
	for _, name := range p.elements {
		ix.elements[name] = insertSorted(ix.elements[name], id)
		ix.docElements[id] = append(ix.docElements[id], name)
	}
	if ix.pathsBuilt {
		ix.addPathsLocked(id, p.contrib)
	} else {
		ix.pendPathLocked(p.name, p.contrib)
	}
}

func (ix *docIndex) remove(docName string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(docName)
}

func (ix *docIndex) removeLocked(docName string) {
	if !ix.pathsBuilt {
		ix.pendPathLocked(docName, nil)
	}
	id, ok := ix.ids[docName]
	if !ok {
		return
	}
	for _, tok := range ix.docTokens[id] {
		if list := removeSorted(ix.postings[tok], id); len(list) == 0 {
			delete(ix.postings, tok)
			ix.dirty = true
		} else {
			ix.postings[tok] = list
		}
	}
	for _, name := range ix.docElements[id] {
		if list := removeSorted(ix.elements[name], id); len(list) == 0 {
			delete(ix.elements, name)
		} else {
			ix.elements[name] = list
		}
	}
	if ix.pathsBuilt {
		ix.removePathsLocked(id)
	}
	delete(ix.docTokens, id)
	delete(ix.docElements, id)
	delete(ix.ids, docName)
	ix.names[id] = ""
	ix.free = append(ix.free, id)
}

// vocabulary returns the sorted token list. Callers hold ix.mu, but the
// returned slice is immutable once built (a later mutation builds a NEW
// slice), so callers may release the lock and keep scanning it.
func (ix *docIndex) vocabulary() []string {
	if ix.dirty || ix.vocab == nil {
		ix.vocab = make([]string, 0, len(ix.postings))
		for tok := range ix.postings {
			ix.vocab = append(ix.vocab, tok)
		}
		sort.Strings(ix.vocab)
		ix.dirty = false
	}
	return ix.vocab
}

// intersectSorted merges two sorted posting lists into their intersection.
func intersectSorted(a, b []docID) []docID {
	out := a[:0:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// candidates evaluates the hint's conjunction and returns the documents
// that may satisfy it, plus the number of documents eliminated by value
// comparisons specifically (beyond the token/element/path-existence
// pruning). usePaths gates the path-qualified constraints — false when
// the path structures are unavailable (disabled, or a lazy rebuild
// failed), in which case those constraints are simply not applied, which
// is always sound.
func (ix *docIndex) candidates(hint *xquery.Hint, usePaths bool) (map[string]bool, int) {
	// Substring constraints scan the whole vocabulary; do that outside the
	// lock against the immutable vocab slice so a long scan never blocks
	// writers. Only the token → posting lookups below need the lock.
	var subMatches map[string][]string // substring → matching tokens
	for _, c := range hint.Constraints {
		if c.Substring == "" {
			continue
		}
		if subMatches == nil {
			subMatches = map[string][]string{}
		}
		subMatches[c.Substring] = nil
	}
	if subMatches != nil {
		ix.mu.Lock()
		vocab := ix.vocabulary()
		ix.mu.Unlock()
		for sub := range subMatches {
			var toks []string
			for _, tok := range vocab {
				if strings.Contains(tok, sub) {
					toks = append(toks, tok)
				}
			}
			subMatches[sub] = toks
		}
	}

	ix.mu.Lock()
	defer ix.mu.Unlock()
	var result []docID
	first := true
	intersect := func(list []docID) {
		if first {
			result = append(result[:0:0], list...)
			first = false
			return
		}
		result = intersectSorted(result, list)
	}
	union := func(set map[docID]bool) {
		list := make([]docID, 0, len(set))
		for id := range set {
			list = append(list, id)
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		intersect(list)
	}
	for _, c := range hint.Constraints {
		for _, tok := range c.Tokens {
			intersect(ix.postings[tok])
		}
		for _, name := range c.Elements {
			intersect(ix.elements[name])
		}
		if c.Substring != "" {
			set := map[docID]bool{}
			for _, tok := range subMatches[c.Substring] {
				for _, id := range ix.postings[tok] {
					set[id] = true
				}
			}
			union(set)
		}
		if usePaths && c.Path != nil && c.Path.Op == xquery.CmpExists {
			union(ix.pathExistsLocked(c.Path.Steps))
		}
	}
	rangePruned := 0
	if usePaths {
		for _, c := range hint.Constraints {
			if c.Path == nil || c.Path.Op == xquery.CmpExists {
				continue
			}
			base := len(result)
			if first {
				base = len(ix.ids)
			}
			union(ix.valueMatchesLocked(c.Path))
			rangePruned += base - len(result)
		}
	}
	out := make(map[string]bool, len(result))
	for _, id := range result {
		out[ix.names[id]] = true
	}
	return out, rangePruned
}
