package engine

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"partix/internal/storage"
	"partix/internal/toxgene"
	"partix/internal/xmltree"
	"partix/internal/xquery"
)

func TestValueIndexRangePruning(t *testing.T) {
	db := testDB(t, Options{})
	loadItems(t, db)
	db.ResetStats()
	// Item ids are 1..4; only i1 satisfies @id < 2. The token index cannot
	// serve an inequality — pruning to one decode proves the value index ran.
	res, err := db.Query(`for $i in collection("items")/Item where $i/@id < 2 return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || xquery.ItemString(res[0]) != "I1" {
		t.Fatalf("results = %v", res)
	}
	st := db.Stats()
	if st.DocsDecoded != 1 {
		t.Fatalf("decoded %d docs, want 1: %+v", st.DocsDecoded, st)
	}
	if st.RangePruned == 0 {
		t.Fatalf("no range pruning recorded: %+v", st)
	}
}

func TestValueIndexStringRange(t *testing.T) {
	db := testDB(t, Options{})
	loadItems(t, db)
	db.ResetStats()
	// Sections are CD, DVD, Book, CD; only "Book" < "CC" in string order.
	res, err := db.Query(`for $i in collection("items")/Item where $i/Section < "CC" return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || xquery.ItemString(res[0]) != "I3" {
		t.Fatalf("results = %v", res)
	}
	if st := db.Stats(); st.DocsDecoded != 1 {
		t.Fatalf("decoded %d docs, want 1", st.DocsDecoded)
	}
}

func TestValueIndexDisabled(t *testing.T) {
	db := testDB(t, Options{DisableValueIndex: true})
	loadItems(t, db)
	db.ResetStats()
	res, err := db.Query(`for $i in collection("items")/Item where $i/@id < 2 return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	st := db.Stats()
	// Element hints still narrow to the 4 Item docs, but no range pruning
	// and no index-only answers happen.
	if st.DocsDecoded != 4 || st.RangePruned != 0 || st.IndexOnlyHits != 0 {
		t.Fatalf("stats with value index disabled: %+v", st)
	}
}

func TestIndexOnlyCount(t *testing.T) {
	db := testDB(t, Options{})
	loadItems(t, db)
	db.ResetStats()
	res, err := db.Query(`count(collection("items")/Item)`)
	if err != nil {
		t.Fatal(err)
	}
	if xquery.ItemString(res[0]) != "4" {
		t.Fatalf("count = %v", res)
	}
	st := db.Stats()
	if st.DocsDecoded != 0 || st.IndexOnlyHits != 1 {
		t.Fatalf("count not index-only: %+v", st)
	}
	// Deeper paths count nodes, not documents.
	res, err = db.Query(`count(collection("items")/Item/Code)`)
	if err != nil {
		t.Fatal(err)
	}
	if xquery.ItemString(res[0]) != "4" {
		t.Fatalf("node count = %v", res)
	}
	if st = db.Stats(); st.DocsDecoded != 0 {
		t.Fatalf("node count decoded documents: %+v", st)
	}
}

func TestIndexOnlyExists(t *testing.T) {
	db := testDB(t, Options{})
	loadItems(t, db)
	db.ResetStats()
	for _, tc := range []struct {
		query, want string
	}{
		{`exists(collection("items")/Item/Section)`, "true"},
		{`exists(collection("items")/Item/Missing)`, "false"},
		{`exists(for $i in collection("items")/Item where $i/Section = "DVD" return $i)`, "true"},
		{`exists(for $i in collection("items")/Item where $i/Section = "Vinyl" return $i)`, "false"},
		{`empty(collection("items")/Item/Missing)`, "true"},
	} {
		res, err := db.Query(tc.query)
		if err != nil {
			t.Fatalf("%s: %v", tc.query, err)
		}
		if xquery.ItemString(res[0]) != tc.want {
			t.Fatalf("%s = %v, want %s", tc.query, res, tc.want)
		}
	}
	st := db.Stats()
	if st.DocsDecoded != 0 {
		t.Fatalf("exists deciders decoded %d docs: %+v", st.DocsDecoded, st)
	}
	if st.IndexOnlyHits != 5 {
		t.Fatalf("index-only hits = %d, want 5: %+v", st.IndexOnlyHits, st)
	}
}

// TestValueIndexEquivalence: randomized comparison, equality and existence
// queries must produce identical results with full indexes, with only the
// text indexes (value index off), and with no indexes at all.
func TestValueIndexEquivalence(t *testing.T) {
	const docs = 40
	items := func() *xmltree.Collection {
		return toxgene.GenerateItems(toxgene.ItemsConfig{Docs: docs, Seed: 11})
	}
	full := testDB(t, Options{})
	noValue := testDB(t, Options{DisableValueIndex: true})
	none := testDB(t, Options{DisableIndexes: true})
	for _, db := range []*DB{full, noValue, none} {
		if err := db.LoadCollection(items()); err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(99))
	var queries []string
	for i := 0; i < 30; i++ {
		k := rng.Intn(docs + 2)
		op := []string{"<", "<=", ">", ">=", "="}[rng.Intn(5)]
		section := toxgene.Sections[rng.Intn(len(toxgene.Sections))]
		switch rng.Intn(5) {
		case 0:
			queries = append(queries, fmt.Sprintf(
				`for $i in collection("items")/Item where $i/@id %s %d return $i/Code`, op, k))
		case 1:
			queries = append(queries, fmt.Sprintf(
				`count(for $i in collection("items")/Item where $i/@id %s %d return $i)`, op, k))
		case 2:
			queries = append(queries, fmt.Sprintf(
				`exists(for $i in collection("items")/Item where $i/Section = "%s" return $i)`, section))
		case 3:
			queries = append(queries, fmt.Sprintf(
				`for $i in collection("items")/Item where $i/Section %s "%s" return $i/Code`, op, section))
		case 4:
			queries = append(queries, fmt.Sprintf(
				`for $i in collection("items")/Item where $i/Section = "%s" and $i/@id %s %d return $i/Code`, section, op, k))
		}
	}
	queries = append(queries,
		`count(collection("items")/Item)`,
		`exists(collection("items")/Item/NoSuchChild)`,
		`for $i in collection("items")/Item where $i/@id < "not a number" return $i/Code`,
	)
	for _, q := range queries {
		want, err := none.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		for name, db := range map[string]*DB{"full": full, "noValue": noValue} {
			got, err := db.Query(q)
			if err != nil {
				t.Fatalf("%s [%s]: %v", q, name, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s [%s]: %d items, want %d", q, name, len(got), len(want))
			}
			for i := range want {
				if xquery.ItemString(got[i]) != xquery.ItemString(want[i]) {
					t.Fatalf("%s [%s]: item %d = %s, want %s",
						q, name, i, xquery.ItemString(got[i]), xquery.ItemString(want[i]))
				}
			}
		}
	}
}

// TestV2SnapshotMigratesToV3: a store carrying only the v2 (pre-path)
// snapshot must open with the token indexes live and the path structures
// rebuilt lazily on the first path-qualified query; the next close
// upgrades the record to v3, after which reopening serves index-only
// answers with zero decodes and no rebuild.
func TestV2SnapshotMigratesToV3(t *testing.T) {
	path := filepath.Join(t.TempDir(), "migrate.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loadItems(t, db)

	// Capture the v2 form of the live index, then doctor the store so only
	// the v2 record exists — exactly what a pre-path engine left behind.
	db.mu.RLock()
	ix := db.idx["items"]
	db.mu.RUnlock()
	ix.mu.Lock()
	v2 := indexSnapshotV2{
		Docs:     append([]string(nil), ix.names...),
		Postings: map[string][]uint32{},
		Elements: map[string][]uint32{},
	}
	for tok, list := range ix.postings {
		v2.Postings[tok] = idsToUint32(list)
	}
	for el, list := range ix.elements {
		v2.Elements[el] = idsToUint32(list)
	}
	ix.mu.Unlock()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(map[string]indexSnapshotV2{"items": v2}); err != nil {
		t.Fatal(err)
	}
	st, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutMeta(indexMetaKeyV2, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := st.PutMeta(indexMetaKeyV3, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db2.ResetStats()
	// The first path-qualified query triggers the lazy rebuild and answers
	// correctly; the rebuild's own decodes are not query decodes.
	res, err := db2.Query(`for $i in collection("items")/Item where $i/@id < 2 return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("range query over migrated index = %d results", len(res))
	}
	if stt := db2.Stats(); stt.DocsDecoded != 1 {
		t.Fatalf("decoded %d docs after lazy rebuild, want 1", stt.DocsDecoded)
	}
	db2.ResetStats()
	res, err = db2.Query(`count(collection("items")/Item)`)
	if err != nil {
		t.Fatal(err)
	}
	if xquery.ItemString(res[0]) != "4" {
		t.Fatalf("count = %v", res)
	}
	if stt := db2.Stats(); stt.DocsDecoded != 0 || stt.IndexOnlyHits != 1 {
		t.Fatalf("count after rebuild not index-only: %+v", stt)
	}
	if err := db2.Close(); err != nil { // upgrades the record to v3
		t.Fatal(err)
	}

	st, err = storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := st.GetMeta(indexMetaKeyV2); ok {
		t.Fatal("v2 record survived the upgrade")
	}
	if _, ok, _ := st.GetMeta(indexMetaKeyV3); !ok {
		t.Fatal("no v3 record written")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The v3 reopen needs no rebuild: index-only answers and range pruning
	// work with zero non-candidate decodes.
	db3, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	db3.ResetStats()
	if _, err := db3.Query(`count(collection("items")/Item)`); err != nil {
		t.Fatal(err)
	}
	if stt := db3.Stats(); stt.DocsDecoded != 0 || stt.IndexOnlyHits != 1 {
		t.Fatalf("count from v3 snapshot not index-only: %+v", stt)
	}
	res, err = db3.Query(`for $i in collection("items")/Item where $i/@id < 2 return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("range query from v3 snapshot = %d results", len(res))
	}
	if stt := db3.Stats(); stt.DocsDecoded != 1 {
		t.Fatalf("decoded %d docs from v3 snapshot, want 1", stt.DocsDecoded)
	}
}

// TestMutationsBeforeLazyRebuild: documents put or deleted while the path
// structures are still pending (pre-v3 snapshot loaded, no path query yet)
// must be reflected once the rebuild runs.
func TestMutationsBeforeLazyRebuild(t *testing.T) {
	db := testDB(t, Options{})
	loadItems(t, db)
	// Force the pre-v3 state on the live index.
	db.mu.RLock()
	ix := db.idx["items"]
	db.mu.RUnlock()
	ix.mu.Lock()
	ix.pathsBuilt = false
	ix.paths = map[string]*pathPosting{}
	ix.values = map[string]*valueList{}
	ix.docPaths = map[docID][]docPathRef{}
	ix.mu.Unlock()

	// Mutate before any path-qualified query: these land in the pending
	// buffer and must survive the rebuild.
	if err := db.DeleteDocument("items", "i1"); err != nil {
		t.Fatal(err)
	}
	if err := db.PutDocument("items", xmltree.MustParseString("i9",
		`<Item id="9"><Code>I9</Code><Name>n9</Name><Description>late</Description><Section>Vinyl</Section></Item>`)); err != nil {
		t.Fatal(err)
	}

	res, err := db.Query(`for $i in collection("items")/Item where $i/@id >= 9 return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || xquery.ItemString(res[0]) != "I9" {
		t.Fatalf("new doc invisible after rebuild: %v", res)
	}
	res, err = db.Query(`for $i in collection("items")/Item where $i/@id < 2 return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("deleted doc resurrected by rebuild: %v", res)
	}
	db.ResetStats()
	res, err = db.Query(`count(collection("items")/Item)`)
	if err != nil {
		t.Fatal(err)
	}
	if xquery.ItemString(res[0]) != "4" { // 4 docs: i2..i4 plus i9
		t.Fatalf("count after rebuild = %v", res)
	}
	if stt := db.Stats(); stt.IndexOnlyHits != 1 {
		t.Fatalf("count not index-only after rebuild: %+v", stt)
	}
}

func TestValueOverflowStaysSound(t *testing.T) {
	db := testDB(t, Options{})
	c := xmltree.NewCollection("blobs")
	long := make([]byte, valueCap+10)
	for i := range long {
		long[i] = 'z'
	}
	c.Add(xmltree.MustParseString("b1", `<Blob><V>`+string(long)+`</V></Blob>`))
	c.Add(xmltree.MustParseString("b2", `<Blob><V>short</V></Blob>`))
	if err := db.LoadCollection(c); err != nil {
		t.Fatal(err)
	}
	// The over-cap value is not indexed, but comparisons must still reach
	// the overflowing document: "zzz… > y" is true.
	res, err := db.Query(`for $b in collection("blobs")/Blob where $b/V > "y" return $b/V`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("overflow doc not reached: %d results", len(res))
	}
	// exists() over an overflow path must not answer a false "false" from
	// the index: the decider still runs (and may decode), but is correct.
	res, err = db.Query(`exists(for $b in collection("blobs")/Blob where $b/V = "` + string(long) + `" return $b)`)
	if err != nil {
		t.Fatal(err)
	}
	if xquery.ItemString(res[0]) != "true" {
		t.Fatalf("exists over overflow value = %v", res)
	}
}

// TestIndexConcurrentMutationAndCandidates drives adds, removes, bulk
// loads and candidate evaluation (substring + range constraints) against
// one index from several goroutines; run under -race it checks the
// locking discipline, including the lock-free vocabulary scan.
func TestIndexConcurrentMutationAndCandidates(t *testing.T) {
	ix := newDocIndex()
	hint := &xquery.Hint{Constraints: []xquery.Constraint{
		{Substring: "pay"},
		{Path: &xquery.PathConstraint{
			Steps: []xquery.LabelStep{{Descendant: true, Name: "Item"}, {Name: "N"}},
			Op:    xquery.CmpLt, Literal: "100",
		}},
	}}
	mkDoc := func(name string, n int) *xmltree.Document {
		return xmltree.MustParseString(name, fmt.Sprintf(
			`<Item id="%d"><N>%d</N><T>payload tok%d</T></Item>`, n, n, n))
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				name := fmt.Sprintf("w%d-d%d", w, i%8)
				switch i % 5 {
				case 0:
					ix.remove(name)
				case 1:
					ix.bulkAdd([]*xmltree.Document{mkDoc(name, i), mkDoc(name+"x", i+1)})
				default:
					ix.replace(mkDoc(name, i))
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 600; i++ {
			set, _ := ix.candidates(hint, true)
			_ = set
		}
	}()
	wg.Wait()

	// Converged state answers consistently: with a threshold above every
	// written value, the hint matches every surviving document.
	all := &xquery.Hint{Constraints: []xquery.Constraint{
		{Substring: "pay"},
		{Path: &xquery.PathConstraint{
			Steps: []xquery.LabelStep{{Descendant: true, Name: "Item"}, {Name: "N"}},
			Op:    xquery.CmpLt, Literal: "100000",
		}},
	}}
	set, _ := ix.candidates(all, true)
	ix.mu.Lock()
	live := len(ix.ids)
	ix.mu.Unlock()
	if len(set) != live {
		t.Fatalf("candidates = %d docs, index holds %d", len(set), live)
	}
}

func TestDocLookupPrefersFirstCollectionAndFallsThrough(t *testing.T) {
	db := testDB(t, Options{})
	for _, col := range []string{"beta", "alpha"} {
		doc := xmltree.MustParseString("dup", fmt.Sprintf(`<D><From>%s</From></D>`, col))
		if err := db.PutDocument(col, doc); err != nil {
			t.Fatal(err)
		}
	}
	d, err := db.Doc("dup")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Root.Child("From").Text(); got != "alpha" {
		t.Fatalf("Doc resolved to %q, want the lexicographically first collection", got)
	}
	if err := db.DeleteDocument("alpha", "dup"); err != nil {
		t.Fatal(err)
	}
	d, err = db.Doc("dup")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Root.Child("From").Text(); got != "beta" {
		t.Fatalf("Doc after delete resolved to %q, want beta", got)
	}
	if err := db.DeleteDocument("beta", "dup"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Doc("dup"); err == nil {
		t.Fatal("fully deleted doc still found")
	}
}

// BenchmarkIndexReload measures re-indexing a collection whose docIDs come
// back in descending order (the LIFO free list after a delete-all), the
// case where per-document sorted insertion degrades to O(n²) and the bulk
// path's sort-once merge wins.
func BenchmarkIndexReload(b *testing.B) {
	const n = 1500
	shared := make([]string, 0, 32)
	for w := 0; w < 32; w++ {
		shared = append(shared, fmt.Sprintf("shared%02d", w))
	}
	desc := strings.Join(shared, " ")
	docs := make([]*xmltree.Document, n)
	for i := range docs {
		docs[i] = xmltree.MustParseString(fmt.Sprintf("d%d", i), fmt.Sprintf(
			`<Item id="%d"><Code>c%d</Code><Description>%s</Description></Item>`, i, i, desc))
	}
	prime := func() *docIndex {
		ix := newDocIndex()
		ix.bulkAdd(docs)
		for _, d := range docs {
			ix.remove(d.Name)
		}
		return ix
	}
	b.Run("perDoc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ix := prime()
			b.StartTimer()
			for _, d := range docs {
				ix.add(d)
			}
		}
	})
	b.Run("bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ix := prime()
			b.StartTimer()
			ix.bulkAdd(docs)
		}
	})
}
