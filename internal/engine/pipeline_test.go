package engine

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"partix/internal/xmltree"
	"partix/internal/xquery"
)

// loadWide loads n small documents with varied sections and descriptions,
// enough to keep a worker pool busy.
func loadWide(t testing.TB, db *DB, n int) {
	t.Helper()
	c := xmltree.NewCollection("wide")
	sections := []string{"CD", "DVD", "Book", "Toy", "Garden"}
	for i := 0; i < n; i++ {
		desc := "plain stock"
		if i%3 == 0 {
			desc = "good quality stock"
		}
		c.Add(xmltree.MustParseString(fmt.Sprintf("w%03d", i), fmt.Sprintf(
			`<Item id="%d"><Code>W%d</Code><Name>name%d</Name><Description>%s</Description><Section>%s</Section></Item>`,
			i, i, i, desc, sections[i%len(sections)])))
	}
	if err := db.LoadCollection(c); err != nil {
		t.Fatal(err)
	}
}

var wideQueries = []string{
	`for $i in collection("wide")/Item where $i/Section = "DVD" return $i/Code`,
	`for $i in collection("wide")/Item where contains($i/Description, "good") return $i/Code`,
	`for $i in collection("wide")/Item where $i/Section = "CD" and contains($i/Description, "stock") return $i/Name`,
	`count(collection("wide")/Item)`,
	`for $i in collection("wide")/Item return $i/Code`,
}

// TestParallelDecodeMatchesSequential is the tentpole's correctness
// contract: any worker count must produce the exact result sequences and
// the exact decode/prune counters of the sequential engine.
func TestParallelDecodeMatchesSequential(t *testing.T) {
	const docs = 40
	type outcome struct {
		results [][]string
		stats   Stats
	}
	exec := func(workers int) outcome {
		db := testDB(t, Options{DecodeWorkers: workers})
		loadWide(t, db, docs)
		db.ResetStats()
		var o outcome
		for _, q := range wideQueries {
			res, err := db.Query(q)
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, q, err)
			}
			items := make([]string, len(res))
			for i, it := range res {
				items[i] = xquery.ItemString(it)
			}
			o.results = append(o.results, items)
		}
		o.stats = db.Stats()
		return o
	}

	base := exec(1)
	for _, workers := range []int{2, 4, 8, 0} { // 0 = GOMAXPROCS
		got := exec(workers)
		for qi, q := range wideQueries {
			if !reflect.DeepEqual(got.results[qi], base.results[qi]) {
				t.Errorf("workers=%d %s:\n got %v\nwant %v", workers, q, got.results[qi], base.results[qi])
			}
		}
		if got.stats != base.stats {
			t.Errorf("workers=%d stats = %+v, want %+v", workers, got.stats, base.stats)
		}
	}
}

func TestDecodeWorkerResolution(t *testing.T) {
	cases := []struct{ opt, want int }{
		{0, runtime.GOMAXPROCS(0)},
		{1, 1},
		{-3, 1},
		{5, 5},
	}
	for _, c := range cases {
		db := &DB{opts: Options{DecodeWorkers: c.opt}}
		if got := db.decodeWorkers(); got != c.want {
			t.Errorf("decodeWorkers(%d) = %d, want %d", c.opt, got, c.want)
		}
	}
}

// TestParallelDecodeManyWorkersFewDocs exercises the pool-larger-than-
// candidate-set edge (workers are capped at the candidate count).
func TestParallelDecodeManyWorkersFewDocs(t *testing.T) {
	db := testDB(t, Options{DecodeWorkers: 32})
	loadItems(t, db)
	res, err := db.Query(`for $i in collection("items")/Item where $i/Section = "CD" return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2", len(res))
	}
	if got, want := xquery.ItemString(res[0]), "I1"; got != want {
		t.Fatalf("first result = %q, want %q", got, want)
	}
}

// TestParallelDecodeCallbackError checks that an error returned by the
// evaluator callback mid-iteration aborts the pipeline cleanly (workers
// drain, no goroutine leak under -race) and surfaces to the caller.
func TestParallelDecodeCallbackError(t *testing.T) {
	db := testDB(t, Options{DecodeWorkers: 4})
	loadWide(t, db, 30)
	wantErr := fmt.Errorf("stop early")
	seen := 0
	err := db.Docs("wide", nil, func(*xmltree.Document) error {
		seen++
		if seen == 3 {
			return wantErr
		}
		return nil
	})
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if seen != 3 {
		t.Fatalf("callback ran %d times, want 3", seen)
	}
	// The engine must remain usable after an aborted iteration.
	if _, err := db.Query(`count(collection("wide")/Item)`); err != nil {
		t.Fatal(err)
	}
}
