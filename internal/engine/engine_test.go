package engine

import (
	"fmt"
	"path/filepath"
	"testing"

	"partix/internal/xmltree"
	"partix/internal/xquery"
)

func testDB(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Open(filepath.Join(t.TempDir(), "node.db"), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func loadItems(t *testing.T, db *DB) {
	t.Helper()
	c := xmltree.NewCollection("items")
	sections := []string{"CD", "DVD", "Book", "CD"}
	descs := []string{"a good disc", "a fine movie", "good reading", "plain disc"}
	for i := 0; i < 4; i++ {
		c.Add(xmltree.MustParseString(fmt.Sprintf("i%d", i+1), fmt.Sprintf(
			`<Item id="%d"><Code>I%d</Code><Name>n%d</Name><Description>%s</Description><Section>%s</Section></Item>`,
			i+1, i+1, i+1, descs[i], sections[i])))
	}
	if err := db.LoadCollection(c); err != nil {
		t.Fatal(err)
	}
}

func TestQueryBasic(t *testing.T) {
	db := testDB(t, Options{})
	loadItems(t, db)
	res, err := db.Query(`for $i in collection("items")/Item where $i/Section = "CD" return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2", len(res))
	}
}

func TestIndexPruning(t *testing.T) {
	db := testDB(t, Options{})
	loadItems(t, db)
	db.ResetStats()
	res, err := db.Query(`for $i in collection("items")/Item where $i/Section = "DVD" return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	st := db.Stats()
	if st.DocsPruned == 0 {
		t.Fatalf("no docs pruned: %+v", st)
	}
	if st.DocsDecoded != 1 {
		t.Fatalf("decoded %d docs, want 1 (only the DVD item)", st.DocsDecoded)
	}
}

func TestIndexPruningDisabled(t *testing.T) {
	db := testDB(t, Options{DisableIndexes: true})
	loadItems(t, db)
	db.ResetStats()
	if _, err := db.Query(`for $i in collection("items")/Item where $i/Section = "DVD" return $i/Code`); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.DocsPruned != 0 || st.DocsDecoded != 4 {
		t.Fatalf("stats with indexes disabled: %+v", st)
	}
}

func TestIndexSubstringPruning(t *testing.T) {
	db := testDB(t, Options{})
	loadItems(t, db)
	db.ResetStats()
	res, err := db.Query(`for $i in collection("items")/Item where contains($i/Description, "good") return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2", len(res))
	}
	if st := db.Stats(); st.DocsDecoded != 2 {
		t.Fatalf("decoded %d, want 2", st.DocsDecoded)
	}
	// Substring of a longer token: "read" is inside "reading".
	res, err = db.Query(`for $i in collection("items")/Item where contains($i/Description, "read") return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("substring results = %d, want 1", len(res))
	}
}

func TestQueriesAgreeWithAndWithoutIndexes(t *testing.T) {
	plain := testDB(t, Options{DisableIndexes: true})
	indexed := testDB(t, Options{})
	loadItems(t, plain)
	loadItems(t, indexed)
	queries := []string{
		`for $i in collection("items")/Item where $i/Section = "CD" return $i/Code`,
		`for $i in collection("items")/Item where contains($i/Description, "disc") return $i/Code`,
		`count(for $i in collection("items")/Item where contains($i/Description, "good") return $i)`,
		`for $i in collection("items")/Item where $i/Section = "CD" and contains($i/Description, "plain") return $i/Code`,
		`for $i in collection("items")/Item where not(contains($i/Description, "good")) return $i/Code`,
	}
	for _, q := range queries {
		a, err := plain.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := indexed.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Errorf("%s: %d without indexes, %d with", q, len(a), len(b))
		}
		for i := range a {
			if xquery.ItemString(a[i]) != xquery.ItemString(b[i]) {
				t.Errorf("%s: item %d differs", q, i)
			}
		}
	}
}

func TestPersistenceAndIndexRebuild(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loadItems(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	db2.ResetStats()
	res, err := db2.Query(`for $i in collection("items")/Item where $i/Section = "DVD" return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results after reopen = %d", len(res))
	}
	if st := db2.Stats(); st.DocsPruned == 0 {
		t.Fatal("index not rebuilt on open")
	}
}

func TestPutReplacesAndReindexes(t *testing.T) {
	db := testDB(t, Options{})
	loadItems(t, db)
	// i2 was the only DVD; retag it as Vinyl.
	doc := xmltree.MustParseString("i2",
		`<Item id="2"><Code>I2</Code><Name>n2</Name><Description>now vinyl</Description><Section>Vinyl</Section></Item>`)
	if err := db.PutDocument("items", doc); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`for $i in collection("items")/Item where $i/Section = "DVD" return $i`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("stale index: %d DVD results", len(res))
	}
	res, err = db.Query(`for $i in collection("items")/Item where $i/Section = "Vinyl" return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("new section not found: %d", len(res))
	}
}

func TestDeleteDocumentUpdatesIndex(t *testing.T) {
	db := testDB(t, Options{})
	loadItems(t, db)
	if err := db.DeleteDocument("items", "i2"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`for $i in collection("items")/Item where $i/Section = "DVD" return $i`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatal("deleted doc still found via index")
	}
}

func TestDropCollection(t *testing.T) {
	db := testDB(t, Options{})
	loadItems(t, db)
	if err := db.DropCollection("items"); err != nil {
		t.Fatal(err)
	}
	if db.HasCollection("items") {
		t.Fatal("collection survived")
	}
	if _, err := db.Query(`collection("items")/Item`); err == nil {
		t.Fatal("query over dropped collection succeeded")
	}
}

func TestDocLookupAcrossCollections(t *testing.T) {
	db := testDB(t, Options{})
	loadItems(t, db)
	d, err := db.Doc("i3")
	if err != nil {
		t.Fatal(err)
	}
	if d.Root.Child("Code").Text() != "I3" {
		t.Fatal("wrong document")
	}
	if _, err := db.Doc("missing"); err == nil {
		t.Fatal("missing doc found")
	}
}

func TestCollectionStats(t *testing.T) {
	db := testDB(t, Options{})
	loadItems(t, db)
	st, err := db.CollectionStats("items")
	if err != nil {
		t.Fatal(err)
	}
	if st.Documents != 4 || st.Bytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
	cols := db.Collections()
	if len(cols) != 1 || cols[0] != "items" {
		t.Fatalf("collections = %v", cols)
	}
}

// TestLoadCollectionCreatesCollection is the regression test for the
// fresh-database load bug: LoadCollection must catalog the collection
// itself (not rely on the first PutDocument to do it), so loading an
// empty collection — or one whose load is interrupted — still leaves it
// visible, queryable and persistent.
func TestLoadCollectionCreatesCollection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "load.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := xmltree.NewCollection("filled")
	c.Add(xmltree.MustParseString("d1", `<Item><Code>A</Code></Item>`))
	c.Add(xmltree.MustParseString("d2", `<Item><Code>B</Code></Item>`))
	if err := db.LoadCollection(c); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadCollection(xmltree.NewCollection("bare")); err != nil {
		t.Fatal(err)
	}
	if !db.HasCollection("filled") || !db.HasCollection("bare") {
		t.Fatalf("collections after load: %v", db.Collections())
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if !db2.HasCollection("bare") {
		t.Fatal("empty collection lost across reopen")
	}
	res, err := db2.Query(`count(collection("bare")/X)`)
	if err != nil {
		t.Fatal(err)
	}
	if xquery.ItemString(res[0]) != "0" {
		t.Fatalf("count over empty collection = %v", res)
	}
	res, err = db2.Query(`count(collection("filled")/Item)`)
	if err != nil {
		t.Fatal(err)
	}
	if xquery.ItemString(res[0]) != "2" {
		t.Fatalf("count over filled collection = %v", res)
	}
}

func TestEmptyCollectionQuery(t *testing.T) {
	db := testDB(t, Options{})
	if err := db.LoadCollection(xmltree.NewCollection("empty")); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`count(collection("empty")/X)`)
	if err != nil {
		t.Fatal(err)
	}
	if xquery.ItemString(res[0]) != "0" {
		t.Fatalf("count over empty collection = %v", res)
	}
}
