package engine

import (
	"strings"
	"testing"

	"partix/internal/xmltree"
	"partix/internal/xquery"
)

func TestCollectionStatisticsSnapshot(t *testing.T) {
	db := testDB(t, Options{})
	loadItems(t, db)
	cs, err := db.CollectionStatistics("items")
	if err != nil {
		t.Fatal(err)
	}
	if cs.Docs != 4 || cs.Bytes <= 0 {
		t.Fatalf("docs/bytes = %d/%d", cs.Docs, cs.Bytes)
	}
	if !cs.Complete {
		t.Fatalf("snapshot not complete: %+v", cs)
	}
	id, ok := cs.Paths["Item/@id"]
	if !ok {
		t.Fatalf("no stats for Item/@id; paths: %v", pathKeys(cs))
	}
	// Ids are 1..4, one per doc, all numeric and distinct.
	if id.Docs != 4 || id.Nodes != 4 || id.Distinct != 4 || id.NonNumeric != 0 || id.Overflow != 0 {
		t.Fatalf("Item/@id stats: %+v", id)
	}
	if !id.HasNum || id.MinNum != 1 || id.MaxNum != 4 {
		t.Fatalf("Item/@id numeric range: %+v", id)
	}
	sec, ok := cs.Paths["Item/Section"]
	if !ok {
		t.Fatalf("no stats for Item/Section; paths: %v", pathKeys(cs))
	}
	// Sections are CD, DVD, Book, CD: three distinct values, none numeric.
	if sec.Docs != 4 || sec.Distinct != 3 || sec.NonNumeric != 3 {
		t.Fatalf("Item/Section stats: %+v", sec)
	}
	if sec.HasNum || sec.MinStr != "Book" || sec.MaxStr != "DVD" {
		t.Fatalf("Item/Section ranges: %+v", sec)
	}
}

func TestCollectionStatisticsOverflow(t *testing.T) {
	db := testDB(t, Options{})
	c := xmltree.NewCollection("c")
	c.Add(xmltree.MustParseString("short", `<Item><Blob>small</Blob></Item>`))
	c.Add(xmltree.MustParseString("long", `<Item><Blob>`+strings.Repeat("x", valueCap+1)+`</Blob></Item>`))
	if err := db.LoadCollection(c); err != nil {
		t.Fatal(err)
	}
	cs, err := db.CollectionStatistics("c")
	if err != nil {
		t.Fatal(err)
	}
	ps := cs.Paths["Item/Blob"]
	if ps.Docs != 2 || ps.Distinct != 1 || ps.Overflow != 1 {
		t.Fatalf("Item/Blob stats: %+v", ps)
	}
}

func TestCollectionStatisticsGeneration(t *testing.T) {
	db := testDB(t, Options{})
	loadItems(t, db)
	g0 := db.Generation("items")
	if g0 == 0 {
		t.Fatal("LoadCollection did not bump the generation")
	}
	if err := db.PutDocument("items", xmltree.MustParseString("i9",
		`<Item id="9"><Code>I9</Code><Section>CD</Section></Item>`)); err != nil {
		t.Fatal(err)
	}
	g1 := db.Generation("items")
	if g1 <= g0 {
		t.Fatalf("PutDocument: generation %d -> %d", g0, g1)
	}
	if err := db.DeleteDocument("items", "i9"); err != nil {
		t.Fatal(err)
	}
	g2 := db.Generation("items")
	if g2 <= g1 {
		t.Fatalf("DeleteDocument: generation %d -> %d", g1, g2)
	}
	cs, err := db.CollectionStatistics("items")
	if err != nil {
		t.Fatal(err)
	}
	if cs.Generation != g2 {
		t.Fatalf("snapshot generation %d, current %d", cs.Generation, g2)
	}
}

func TestCollectionStatisticsIncomplete(t *testing.T) {
	db := testDB(t, Options{DisableValueIndex: true})
	loadItems(t, db)
	cs, err := db.CollectionStatistics("items")
	if err != nil {
		t.Fatal(err)
	}
	// Doc and byte counts survive, but without the value index no
	// exclusion-grade path table is promised.
	if cs.Complete || cs.Docs != 4 {
		t.Fatalf("stats without value index: %+v", cs)
	}
	if _, err := db.CollectionStatistics("nope"); err == nil {
		t.Fatal("unknown collection did not error")
	}
}

func TestPathKeyMatches(t *testing.T) {
	step := func(name string) xquery.LabelStep { return xquery.LabelStep{Name: name} }
	attr := func(name string) xquery.LabelStep { return xquery.LabelStep{Name: name, Attr: true} }
	desc := func(name string) xquery.LabelStep { return xquery.LabelStep{Name: name, Descendant: true} }
	cases := []struct {
		name  string
		steps []xquery.LabelStep
		key   string
		want  bool
	}{
		{"attr match", []xquery.LabelStep{step("Item"), attr("id")}, "Item/@id", true},
		{"attr vs element", []xquery.LabelStep{step("Item"), attr("id")}, "Item/id", false},
		{"exact path", []xquery.LabelStep{step("Item"), step("Code")}, "Item/Code", true},
		{"descendant", []xquery.LabelStep{desc("Code")}, "Item/Code", true},
		{"descendant miss", []xquery.LabelStep{desc("Code")}, "Item/Section", false},
		{"wildcard", []xquery.LabelStep{step("Item"), step("*")}, "Item/Code", true},
		{"anchored at root", []xquery.LabelStep{step("Item")}, "Order/Item", false},
	}
	for _, c := range cases {
		if got := PathKeyMatches(c.steps, c.key); got != c.want {
			t.Errorf("%s: PathKeyMatches(_, %q) = %v, want %v", c.name, c.key, got, c.want)
		}
	}
}

func pathKeys(cs *CollectionStatistics) []string {
	var keys []string
	for k := range cs.Paths {
		keys = append(keys, k)
	}
	return keys
}
