package engine

import (
	"sort"

	"partix/internal/xmltree"
)

// bulkAdd indexes a batch of documents under one lock acquisition,
// aggregating postings per key and sorting each touched list once.
// Per-document insertSorted is O(list) per insertion — O(n²) over a load
// whose interned IDs arrive out of order (recycled slots pop LIFO, so a
// delete-all-then-reload feeds descending IDs and every insert shifts the
// whole list). The batch path is O((n+k)·log) per touched list instead.
// Duplicate names within the batch keep the last version, matching the
// sequential put-by-put outcome.
func (ix *docIndex) bulkAdd(docs []*xmltree.Document) {
	if len(docs) == 0 {
		return
	}
	preps := make([]docPrep, 0, len(docs))
	byName := make(map[string]int, len(docs))
	for _, d := range docs {
		p := prepDoc(d)
		if i, dup := byName[p.name]; dup {
			preps[i] = p
			continue
		}
		byName[p.name] = len(preps)
		preps = append(preps, p)
	}

	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, p := range preps {
		ix.removeLocked(p.name) // replace semantics; also frees the batch from duplicate IDs
	}
	aggTok := map[string][]docID{}
	aggEl := map[string][]docID{}
	aggPathIDs := map[string][]docID{}
	aggPathCounts := map[string][]uint32{}
	aggVals := map[string]map[string][]docID{}
	aggOver := map[string][]docID{}
	for _, p := range preps {
		id := ix.intern(p.name)
		for _, tok := range p.tokens {
			aggTok[tok] = append(aggTok[tok], id)
			ix.docTokens[id] = append(ix.docTokens[id], tok)
		}
		for _, name := range p.elements {
			aggEl[name] = append(aggEl[name], id)
			ix.docElements[id] = append(ix.docElements[id], name)
		}
		if !ix.pathsBuilt {
			ix.pendPathLocked(p.name, p.contrib)
			continue
		}
		refs := make([]docPathRef, 0, len(p.contrib.counts))
		for key, count := range p.contrib.counts {
			aggPathIDs[key] = append(aggPathIDs[key], id)
			aggPathCounts[key] = append(aggPathCounts[key], count)
			ref := docPathRef{path: key, values: p.contrib.values[key], overflow: p.contrib.overflow[key]}
			for _, raw := range ref.values {
				vals := aggVals[key]
				if vals == nil {
					vals = map[string][]docID{}
					aggVals[key] = vals
				}
				vals[raw] = append(vals[raw], id)
			}
			if ref.overflow {
				aggOver[key] = append(aggOver[key], id)
			}
			refs = append(refs, ref)
		}
		ix.docPaths[id] = refs
	}
	for tok, ids := range aggTok {
		if _, known := ix.postings[tok]; !known {
			ix.dirty = true
		}
		ix.postings[tok] = mergeSortedIDs(ix.postings[tok], ids)
	}
	for name, ids := range aggEl {
		ix.elements[name] = mergeSortedIDs(ix.elements[name], ids)
	}
	for key, ids := range aggPathIDs {
		p := ix.pathOrCreate(key)
		p.ids = append(p.ids, ids...)
		p.counts = append(p.counts, aggPathCounts[key]...)
		p.sortByID()
	}
	for key, vals := range aggVals {
		ix.valuesOrCreate(key).bulkMerge(vals)
	}
	for key, ids := range aggOver {
		vl := ix.valuesOrCreate(key)
		vl.overflow = mergeSortedIDs(vl.overflow, ids)
	}
}

// bulkMerge folds a batch of value → doc-ID contributions into the list:
// existing entries get their postings merged in place, new values are
// appended and the entries sorted once — not once per value, which would
// re-shift the slice O(batch²) times on a load of mostly-distinct values.
func (vl *valueList) bulkMerge(vals map[string][]docID) {
	// New entries are collected aside and appended after the loop: find()
	// binary-searches entries, which must stay sorted while lookups run.
	var fresh []valueEntry
	for raw, ids := range vals {
		if i, ok := vl.find(raw); ok {
			vl.entries[i].ids = mergeSortedIDs(vl.entries[i].ids, ids)
			continue
		}
		e := newValueEntry(raw)
		e.ids = mergeSortedIDs(nil, ids)
		fresh = append(fresh, e)
	}
	if len(fresh) > 0 {
		vl.entries = append(vl.entries, fresh...)
		sort.Slice(vl.entries, func(i, j int) bool { return vl.entries[i].raw < vl.entries[j].raw })
		vl.numDirty = true
	}
}

// mergeSortedIDs merges new IDs (unsorted, duplicate-free, disjoint from
// list) into a sorted posting list.
func mergeSortedIDs(list, add []docID) []docID {
	sort.Slice(add, func(i, j int) bool { return add[i] < add[j] })
	if len(list) == 0 {
		return append([]docID(nil), add...)
	}
	out := make([]docID, 0, len(list)+len(add))
	i, j := 0, 0
	for i < len(list) && j < len(add) {
		if list[i] < add[j] {
			out = append(out, list[i])
			i++
		} else {
			out = append(out, add[j])
			j++
		}
	}
	out = append(out, list[i:]...)
	out = append(out, add[j:]...)
	return out
}
