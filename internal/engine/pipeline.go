package engine

import (
	"sync"
	"sync/atomic"

	"partix/internal/obs"
	"partix/internal/storage"
	"partix/internal/xmltree"
)

// The parallel decode pipeline: Docs fans candidate fetch+decode out to a
// bounded worker pool and delivers documents to the evaluator callback in
// stable document order, so query results are identical to the sequential
// engine's regardless of worker count. Decode-ahead is throttled by a
// window of 2×workers outstanding documents, bounding memory.

// fetched is one candidate document fetched (and decoded, unless served
// from the tree cache) for delivery to the evaluator.
type fetched struct {
	doc      *xmltree.Document
	rawBytes int64
	cacheHit bool
	err      error
}

// docCounters accumulates per-query work, flushed into Stats only when
// the whole iteration succeeds (matching the sequential engine, which
// never counted partially-failed scans).
type docCounters struct {
	decoded int64
	bytes   int64
	hits    int64
	misses  int64
}

func (c *docCounters) account(db *DB, f fetched) {
	if f.cacheHit {
		c.hits++
		return
	}
	c.decoded++
	c.bytes += f.rawBytes
	if db.cache != nil {
		c.misses++
	}
}

// fetchDecode loads one candidate document through its snapshot ref
// (lock-free: the query's pin keeps the record chain stable), consulting
// the decoded-tree cache when enabled.
func (db *DB) fetchDecode(collection string, ref storage.DocRef, gen uint64) fetched {
	obs.EngineDecodeInflight.Add(1)
	defer obs.EngineDecodeInflight.Add(-1)
	key := treeKey{collection: collection, name: ref.Name, gen: gen}
	if db.cache != nil {
		if doc, ok := db.cache.get(key); ok {
			return fetched{doc: doc, cacheHit: true}
		}
	}
	raw, err := db.store.ReadRef(ref)
	if err != nil {
		return fetched{err: err}
	}
	doc, err := storage.DecodeDocument(ref.Name, raw)
	if err != nil {
		return fetched{err: err}
	}
	if db.cache != nil {
		db.cache.put(key, doc)
	}
	return fetched{doc: doc, rawBytes: int64(len(raw))}
}

// docsSequential is the paper-faithful path (DecodeWorkers=1): one
// candidate at a time on the calling goroutine.
func (db *DB) docsSequential(collection string, refs []storage.DocRef, gen uint64,
	fn func(*xmltree.Document) error, c *docCounters) error {
	for _, ref := range refs {
		f := db.fetchDecode(collection, ref, gen)
		if f.err != nil {
			return f.err
		}
		c.account(db, f)
		if err := fn(f.doc); err != nil {
			return err
		}
	}
	return nil
}

// docsPipelined fans fetch+decode across workers goroutines. Each
// candidate index has a one-slot reorder channel; the consumer walks them
// in order, so fn observes the exact sequential document order. The sem
// channel throttles decode-ahead: workers acquire a token per job, the
// consumer releases one per delivered document.
func (db *DB) docsPipelined(collection string, refs []storage.DocRef, gen uint64, workers int,
	fn func(*xmltree.Document) error, c *docCounters) error {
	n := len(refs)
	window := 2 * workers
	if window > n {
		window = n
	}
	sem := make(chan struct{}, window)
	slots := make([]chan fetched, n)
	for i := range slots {
		slots[i] = make(chan fetched, 1)
	}
	stop := make(chan struct{})
	var next atomic.Int64
	next.Store(-1)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case sem <- struct{}{}:
				case <-stop:
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				slots[i] <- db.fetchDecode(collection, refs[i], gen)
			}
		}()
	}
	defer func() {
		close(stop)
		wg.Wait()
	}()

	for i := 0; i < n; i++ {
		f := <-slots[i]
		<-sem
		if f.err != nil {
			return f.err
		}
		c.account(db, f)
		if err := fn(f.doc); err != nil {
			return err
		}
	}
	return nil
}
