package engine

import (
	"path/filepath"
	"testing"

	"partix/internal/storage"
	"partix/internal/xmltree"
)

func TestIndexSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loadItems(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening must load the snapshot — no document decodes happen.
	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if st := db2.Stats(); st.DocsDecoded != 0 {
		t.Fatalf("open decoded %d documents despite snapshot", st.DocsDecoded)
	}
	res, err := db2.Query(`for $i in collection("items")/Item where $i/Section = "DVD" return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	if st := db2.Stats(); st.DocsPruned == 0 {
		t.Fatal("snapshot index did not prune")
	}
}

func TestIndexSnapshotConsistentAfterMutations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loadItems(t, db)
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	// Mutate after the sync, then close (which snapshots again).
	if err := db.DeleteDocument("items", "i2"); err != nil {
		t.Fatal(err)
	}
	if err := db.PutDocument("items", xmltree.MustParseString("i9",
		`<Item id="9"><Code>I9</Code><Name>n9</Name><Description>brand new vinyl</Description><Section>Vinyl</Section></Item>`)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Query(`for $i in collection("items")/Item where $i/Section = "Vinyl" return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("new doc not indexed after reopen: %d", len(res))
	}
	res, err = db2.Query(`for $i in collection("items")/Item where $i/Section = "DVD" return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("deleted doc still indexed: %d", len(res))
	}
}

func TestCorruptSnapshotFallsBackToRebuild(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loadItems(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the snapshot record through the raw store.
	st, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutMeta("engine:index:v1", []byte("not gob at all")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	// Rebuild happened (documents decoded) and queries still prune.
	db2.ResetStats()
	res, err := db2.Query(`for $i in collection("items")/Item where $i/Section = "DVD" return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results after rebuild = %d", len(res))
	}
	if stt := db2.Stats(); stt.DocsPruned == 0 {
		t.Fatal("rebuilt index does not prune")
	}
}

func TestSnapshotStaleWhenCollectionMissing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loadItems(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Add a new collection behind the engine's back (raw store), so the
	// snapshot no longer covers everything.
	st, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutDocument("extra", xmltree.MustParseString("x", "<X><Y>hello</Y></X>")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Query(`count(collection("extra")/X)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].(float64) != 1 {
		t.Fatalf("extra collection not indexed: %v", res)
	}
}

func TestStorageMetaAPI(t *testing.T) {
	st, err := storage.Open(filepath.Join(t.TempDir(), "m.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, ok, err := st.GetMeta("missing"); ok || err != nil {
		t.Fatalf("missing meta: ok=%v err=%v", ok, err)
	}
	if err := st.PutMeta("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	data, ok, err := st.GetMeta("k")
	if err != nil || !ok || string(data) != "v1" {
		t.Fatalf("get = %q %v %v", data, ok, err)
	}
	if err := st.PutMeta("k", []byte("replaced")); err != nil {
		t.Fatal(err)
	}
	data, _, _ = st.GetMeta("k")
	if string(data) != "replaced" {
		t.Fatalf("replace failed: %q", data)
	}
	if err := st.PutMeta("k", nil); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := st.GetMeta("k"); ok {
		t.Fatal("empty put did not delete")
	}
}
