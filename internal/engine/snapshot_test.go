package engine

import (
	"bytes"
	"encoding/gob"
	"path/filepath"
	"testing"

	"partix/internal/storage"
	"partix/internal/xmltree"
)

func TestIndexSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loadItems(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening must load the snapshot — no document decodes happen.
	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if st := db2.Stats(); st.DocsDecoded != 0 {
		t.Fatalf("open decoded %d documents despite snapshot", st.DocsDecoded)
	}
	res, err := db2.Query(`for $i in collection("items")/Item where $i/Section = "DVD" return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	if st := db2.Stats(); st.DocsPruned == 0 {
		t.Fatal("snapshot index did not prune")
	}
}

func TestIndexSnapshotConsistentAfterMutations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loadItems(t, db)
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	// Mutate after the sync, then close (which snapshots again).
	if err := db.DeleteDocument("items", "i2"); err != nil {
		t.Fatal(err)
	}
	if err := db.PutDocument("items", xmltree.MustParseString("i9",
		`<Item id="9"><Code>I9</Code><Name>n9</Name><Description>brand new vinyl</Description><Section>Vinyl</Section></Item>`)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Query(`for $i in collection("items")/Item where $i/Section = "Vinyl" return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("new doc not indexed after reopen: %d", len(res))
	}
	res, err = db2.Query(`for $i in collection("items")/Item where $i/Section = "DVD" return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("deleted doc still indexed: %d", len(res))
	}
}

// TestSnapshotRoundTripAfterDelete: a delete between Sync and Close must
// be reflected by the snapshot the reopen loads — the deleted document's
// postings are gone, so queries for it prune to nothing without decoding.
func TestSnapshotRoundTripAfterDelete(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loadItems(t, db)
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteDocument("items", "i2"); err != nil { // the only DVD
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	db2.ResetStats()
	res, err := db2.Query(`for $i in collection("items")/Item where $i/Section = "DVD" return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("deleted doc resurrected: %d results", len(res))
	}
	if st := db2.Stats(); st.DocsDecoded != 0 {
		t.Fatalf("decoded %d docs for an empty candidate set", st.DocsDecoded)
	}
	res, err = db2.Query(`collection("items")/Item/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d docs after reopen, want 3", len(res))
	}
}

// TestV1SnapshotBackwardCompatible: a store written by the original
// engine carries the v1 name-list snapshot; the compact engine must load
// it without error and without falling back to a rebuild scan. The v1
// record is deliberately doctored (document i3 is stripped from it): a
// rebuild would find i3, so the query results prove which path ran.
func TestV1SnapshotBackwardCompatible(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loadItems(t, db)

	// Build the v1 snapshot from the live index, omitting i3.
	db.mu.RLock()
	ix := db.idx["items"]
	db.mu.RUnlock()
	v1 := indexSnapshotV1{Postings: map[string][]string{}, Elements: map[string][]string{}}
	ix.mu.Lock()
	for tok, list := range ix.postings {
		for _, id := range list {
			if name := ix.names[id]; name != "i3" {
				v1.Postings[tok] = append(v1.Postings[tok], name)
			}
		}
	}
	for el, list := range ix.elements {
		for _, id := range list {
			if name := ix.names[id]; name != "i3" {
				v1.Elements[el] = append(v1.Elements[el], name)
			}
		}
	}
	ix.mu.Unlock()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Rewrite the store's snapshot to look like an old engine wrote it.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(map[string]indexSnapshotV1{"items": v1}); err != nil {
		t.Fatal(err)
	}
	st, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutMeta(indexMetaKeyV1, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := st.PutMeta(indexMetaKeyV2, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.PutMeta(indexMetaKeyV3, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Pruning works off the converted index...
	res, err := db2.Query(`for $i in collection("items")/Item where $i/Section = "DVD" return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("DVD results via v1 index = %d, want 1", len(res))
	}
	// ...and the doctored v1 content is authoritative: the only Book item
	// (i3) is invisible, which a rebuild scan would have restored.
	res, err = db2.Query(`for $i in collection("items")/Item where $i/Section = "Book" return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("Book query found %d results: index was rebuilt, not loaded from v1", len(res))
	}
	if err := db2.Close(); err != nil { // upgrades the snapshot to v3
		t.Fatal(err)
	}

	// The close rewrote the snapshot in v3 form and dropped the old records.
	st, err = storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, ok, _ := st.GetMeta(indexMetaKeyV1); ok {
		t.Fatal("v1 snapshot record survived the upgrade")
	}
	if _, ok, _ := st.GetMeta(indexMetaKeyV2); ok {
		t.Fatal("v2 snapshot record survived the upgrade")
	}
	if _, ok, _ := st.GetMeta(indexMetaKeyV3); !ok {
		t.Fatal("no v3 snapshot written on close")
	}
}

func TestCorruptSnapshotFallsBackToRebuild(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loadItems(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the snapshot records (every format key) through the raw store.
	st, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{indexMetaKeyV1, indexMetaKeyV2, indexMetaKeyV3} {
		if err := st.PutMeta(key, []byte("not gob at all")); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	// Rebuild happened (documents decoded) and queries still prune.
	db2.ResetStats()
	res, err := db2.Query(`for $i in collection("items")/Item where $i/Section = "DVD" return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results after rebuild = %d", len(res))
	}
	if stt := db2.Stats(); stt.DocsPruned == 0 {
		t.Fatal("rebuilt index does not prune")
	}
}

func TestSnapshotStaleWhenCollectionMissing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loadItems(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Add a new collection behind the engine's back (raw store), so the
	// snapshot no longer covers everything.
	st, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutDocument("extra", xmltree.MustParseString("x", "<X><Y>hello</Y></X>")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Query(`count(collection("extra")/X)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].(float64) != 1 {
		t.Fatalf("extra collection not indexed: %v", res)
	}
}

func TestStorageMetaAPI(t *testing.T) {
	st, err := storage.Open(filepath.Join(t.TempDir(), "m.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, ok, err := st.GetMeta("missing"); ok || err != nil {
		t.Fatalf("missing meta: ok=%v err=%v", ok, err)
	}
	if err := st.PutMeta("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	data, ok, err := st.GetMeta("k")
	if err != nil || !ok || string(data) != "v1" {
		t.Fatalf("get = %q %v %v", data, ok, err)
	}
	if err := st.PutMeta("k", []byte("replaced")); err != nil {
		t.Fatal(err)
	}
	data, _, _ = st.GetMeta("k")
	if string(data) != "replaced" {
		t.Fatalf("replace failed: %q", data)
	}
	if err := st.PutMeta("k", nil); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := st.GetMeta("k"); ok {
		t.Fatal("empty put did not delete")
	}
}
