package engine

import (
	"sync"
	"testing"
)

// TestStatsConcurrentQueries exercises the counter paths under -race:
// parallel queries (each flushing decode counters), concurrent Stats
// snapshots, and a ResetStats mid-flight. Before the counters became
// atomics, the pipeline flush and the snapshot raced.
func TestStatsConcurrentQueries(t *testing.T) {
	db := testDB(t, Options{DecodeWorkers: 4})
	loadItems(t, db)

	const goroutines, iters = 6, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := db.Query(`collection("items")/Item/Code`); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < goroutines*iters; i++ {
			s := db.Stats()
			if s.DocsDecoded < 0 || s.Queries < 0 {
				t.Error("negative counters")
				return
			}
			if i == goroutines*iters/2 {
				db.ResetStats()
			}
		}
	}()
	wg.Wait()

	if s := db.Stats(); s.Queries == 0 && s.DocsDecoded == 0 {
		// Reset may have landed after the last query, but both being
		// zero would mean nothing was ever counted.
		t.Fatalf("stats never accumulated: %+v", s)
	}
}
