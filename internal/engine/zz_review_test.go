package engine

import "testing"

// Reproduce: bulkMerge's find() over a partially-appended (unsorted) slice.
func TestReviewBulkMergeDup(t *testing.T) {
	vl := &valueList{}
	vl.insert("c", 1) // existing sorted entries: ["c"]
	// batch has a fresh value "a" and existing "c"; force iteration order
	// by calling twice if needed — map order is random, so loop until the
	// bad order happens.
	for try := 0; try < 100; try++ {
		v := &valueList{}
		v.insert("c", 1)
		v.bulkMerge(map[string][]docID{"a": {2}, "c": {3}})
		count := 0
		for _, e := range v.entries {
			if e.raw == "c" {
				count++
			}
		}
		if count > 1 {
			t.Fatalf("duplicate entries for %q after bulkMerge: %+v", "c", v.entries)
		}
	}
}
