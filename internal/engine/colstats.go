package engine

import (
	"partix/internal/xquery"
)

// Planner-facing collection statistics. A coordinator asks each node for a
// CollectionStatistics snapshot and uses it to prove fragments empty for a
// query (skip them entirely), to estimate sub-query cardinalities, and to
// order reconstruction joins. Everything here is derived from structures
// PR 5 already maintains — the store's doc/byte counters, the path summary
// and the typed value index — so producing a snapshot decodes nothing.
//
// Soundness contract: the statistics describe the collection exactly as of
// Generation. Complete=true additionally promises that Paths covers every
// label path of the collection, so a path pattern matching no key means no
// document has such a node. When the value index is disabled, the rebuild
// failed, or the path count exceeds statsPathCap, Complete is false and a
// planner may use the snapshot only for estimates, never for exclusion.

// statsPathCap bounds the per-path table shipped to coordinators. Real
// DataGuides are tiny (tens of paths); a collection of wildly heterogeneous
// documents could blow the snapshot up, so past the cap the table is
// dropped and the snapshot degrades to doc/byte counts.
const statsPathCap = 4096

// PathStats summarizes one label path (key encoding as in the path
// summary: components joined with "/", attributes prefixed "@").
type PathStats struct {
	Docs       int64   // documents containing the path
	Nodes      int64   // total nodes at the path across all docs
	Distinct   int64   // distinct indexed string-values at the path
	NonNumeric int64   // distinct values that do not parse as numbers
	Overflow   int64   // docs whose value at the path exceeded valueCap (unindexed)
	HasNum     bool    // at least one indexed value parses as a number (and is not NaN)
	MinNum     float64 // numeric value range, valid only when HasNum
	MaxNum     float64
	MinStr     string // raw string-value range over all indexed values
	MaxStr     string // (valid when Distinct > 0)
}

// CollectionStatistics is one node's statistics snapshot for one
// collection. All fields are exported and gob-encodable so the snapshot
// travels over the wire Stats RPC unchanged.
type CollectionStatistics struct {
	Docs       int64
	Bytes      int64
	Generation uint64
	Complete   bool
	Paths      map[string]PathStats
}

// Generation returns the collection's mutation generation: it starts at
// zero and every PutDocument/LoadCollection/DeleteDocument/DropCollection
// bumps it. Coordinators key cached statistics and plans on it.
func (db *DB) Generation(collection string) uint64 {
	return db.colFor(collection).seq.Load() >> 1
}

// CollectionStatistics builds the planner statistics snapshot for a
// collection. The error mirrors CollectionStats (unknown collection);
// index unavailability is not an error — it degrades Complete instead.
func (db *DB) CollectionStatistics(collection string) (*CollectionStatistics, error) {
	st, err := db.store.CollectionStats(collection)
	if err != nil {
		return nil, err
	}
	// Generation is read before the index so a racing mutation can only
	// make the snapshot look older than it is; a coordinator comparing
	// generations then refetches, which is the safe direction.
	gen := db.Generation(collection)
	db.mu.RLock()
	ix := db.idx[collection]
	db.mu.RUnlock()

	cs := &CollectionStatistics{
		Docs:       int64(st.Documents),
		Bytes:      st.Bytes,
		Generation: gen,
	}
	if db.opts.DisableIndexes || db.opts.DisableValueIndex || ix == nil {
		return cs, nil
	}
	if !db.ensurePathIndex(collection, ix) {
		return cs, nil
	}

	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(ix.paths) > statsPathCap {
		return cs, nil
	}
	cs.Complete = true
	cs.Paths = make(map[string]PathStats, len(ix.paths))
	for key, p := range ix.paths {
		ps := PathStats{Docs: int64(len(p.ids))}
		for _, n := range p.counts {
			ps.Nodes += int64(n)
		}
		if vl := ix.values[key]; vl != nil {
			ps.Distinct = int64(len(vl.entries))
			ps.Overflow = int64(len(vl.overflow))
			if len(vl.entries) > 0 {
				ps.MinStr = vl.entries[0].raw
				ps.MaxStr = vl.entries[len(vl.entries)-1].raw
			}
			for _, e := range vl.entries {
				if !e.isNum {
					ps.NonNumeric++
				}
			}
			if ord := vl.numeric(); len(ord) > 0 {
				ps.HasNum = true
				ps.MinNum = vl.entries[ord[0]].num
				ps.MaxNum = vl.entries[ord[len(ord)-1]].num
			}
		}
		cs.Paths[key] = ps
	}
	return cs, nil
}

// PathKeyMatches reports whether a stored label-path key (the Paths map
// key encoding) matches a query path pattern. Exported for planners that
// evaluate constraints against a CollectionStatistics snapshot.
func PathKeyMatches(steps []xquery.LabelStep, key string) bool {
	return matchLabelPath(steps, parsePathKey(key))
}
