// Package engine implements the sequential XML DBMS a PartiX node runs —
// the role eXist plays in the paper (Section 4: the only requirement on a
// node DBMS is that it processes XQuery). It combines the paged document
// store, an inverted text index used to prune candidate documents (eXist
// "automatically created [indexes] to speed up text search operations and
// path expressions evaluation", Section 5), and the XQuery evaluator.
//
// Documents are decoded from storage on every query execution; there is no
// parsed-tree cache. That per-tree pre-processing cost is exactly the
// effect the paper measures when it compares many-small-documents against
// few-large-documents databases.
package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"partix/internal/storage"
	"partix/internal/xmltree"
	"partix/internal/xquery"
)

// Options configure a DB.
type Options struct {
	// DisableIndexes turns off index-assisted candidate pruning; every
	// query then scans all documents of its collections. Used by the
	// index ablation benchmarks.
	DisableIndexes bool
}

// DB is one sequential XML database instance.
type DB struct {
	opts  Options
	store *storage.Store

	mu  sync.RWMutex
	idx map[string]*textIndex // collection → inverted index

	statsMu sync.Mutex
	stats   Stats
}

// Stats counts the engine's work, for tests and ablation benchmarks.
type Stats struct {
	Queries      int64 // queries executed
	DocsDecoded  int64 // documents decoded (parsed) during queries
	DocsPruned   int64 // documents skipped thanks to index hints
	BytesDecoded int64 // encoded bytes decoded during queries
}

// Open opens (creating if necessary) a database at path. Indexes are
// loaded from the persisted snapshot when one exists (it is written
// together with the catalog on Sync/Close, so the two are always
// mutually consistent); otherwise they are rebuilt by scanning the
// stored documents.
func Open(path string, opts Options) (*DB, error) {
	st, err := storage.Open(path)
	if err != nil {
		return nil, err
	}
	db := &DB{opts: opts, store: st, idx: map[string]*textIndex{}}
	if db.loadIndexSnapshot() {
		return db, nil
	}
	for _, col := range st.Collections() {
		names, err := st.Documents(col)
		if err != nil {
			st.Close()
			return nil, err
		}
		ix := newTextIndex()
		for _, name := range names {
			doc, err := st.GetDocument(col, name)
			if err != nil {
				st.Close()
				return nil, fmt.Errorf("engine: rebuild index for %s/%s: %w", col, name, err)
			}
			ix.add(doc)
		}
		db.idx[col] = ix
	}
	return db, nil
}

// Close persists the index snapshot and closes the store.
func (db *DB) Close() error {
	if err := db.saveIndexSnapshot(); err != nil {
		db.store.Close()
		return err
	}
	return db.store.Close()
}

// Sync persists the index snapshot and flushes the store to disk.
func (db *DB) Sync() error {
	if err := db.saveIndexSnapshot(); err != nil {
		return err
	}
	return db.store.Sync()
}

// Store exposes the underlying document store (the wire server ships raw
// documents through it).
func (db *DB) Store() *storage.Store { return db.store }

// PutDocument stores and indexes a document.
func (db *DB) PutDocument(collection string, doc *xmltree.Document) error {
	if err := db.store.PutDocument(collection, doc); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	ix := db.idx[collection]
	if ix == nil {
		ix = newTextIndex()
		db.idx[collection] = ix
	}
	ix.remove(doc.Name) // replace semantics
	ix.add(doc)
	return nil
}

// LoadCollection stores and indexes every document of c.
func (db *DB) LoadCollection(c *xmltree.Collection) error {
	for _, d := range c.Docs {
		if err := db.PutDocument(c.Name, d); err != nil {
			return err
		}
	}
	db.mu.Lock()
	if db.idx[c.Name] == nil {
		db.idx[c.Name] = newTextIndex()
	}
	db.mu.Unlock()
	db.store.CreateCollection(c.Name)
	return nil
}

// DeleteDocument removes a document from store and index.
func (db *DB) DeleteDocument(collection, name string) error {
	if err := db.store.DeleteDocument(collection, name); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if ix := db.idx[collection]; ix != nil {
		ix.remove(name)
	}
	return nil
}

// DropCollection removes a whole collection.
func (db *DB) DropCollection(name string) error {
	if err := db.store.DropCollection(name); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.idx, name)
	return nil
}

// Collections lists collection names.
func (db *DB) Collections() []string { return db.store.Collections() }

// HasCollection reports whether the collection exists.
func (db *DB) HasCollection(name string) bool { return db.store.HasCollection(name) }

// CollectionStats returns store statistics for a collection.
func (db *DB) CollectionStats(name string) (storage.Stats, error) {
	return db.store.CollectionStats(name)
}

// Query parses and executes an XQuery expression.
func (db *DB) Query(query string) (xquery.Seq, error) {
	e, err := xquery.Parse(query)
	if err != nil {
		return nil, err
	}
	return db.QueryExpr(e)
}

// QueryExpr executes a parsed query.
func (db *DB) QueryExpr(e xquery.Expr) (xquery.Seq, error) {
	db.statsMu.Lock()
	db.stats.Queries++
	db.statsMu.Unlock()
	return xquery.Eval(e, db)
}

// Stats returns a snapshot of the engine counters.
func (db *DB) Stats() Stats {
	db.statsMu.Lock()
	defer db.statsMu.Unlock()
	return db.stats
}

// ResetStats zeroes the counters.
func (db *DB) ResetStats() {
	db.statsMu.Lock()
	db.stats = Stats{}
	db.statsMu.Unlock()
}

// Docs implements xquery.Source with index-assisted pruning: when a hint
// is present (and indexes are enabled) only candidate documents are
// decoded; the rest are skipped without touching the store.
func (db *DB) Docs(collection string, hint *xquery.Hint, fn func(*xmltree.Document) error) error {
	names, err := db.store.Documents(collection)
	if err != nil {
		return err
	}
	var candidates []string
	pruned := 0
	if hint != nil && len(hint.Constraints) > 0 && !db.opts.DisableIndexes {
		db.mu.RLock()
		ix := db.idx[collection]
		db.mu.RUnlock()
		if ix != nil {
			set := ix.candidates(hint)
			candidates = make([]string, 0, len(set))
			for _, name := range names {
				if set[name] {
					candidates = append(candidates, name)
				} else {
					pruned++
				}
			}
		}
	}
	if candidates == nil {
		candidates = names
	}
	var decodedBytes int64
	for _, name := range candidates {
		raw, err := db.store.GetDocumentRaw(collection, name)
		if err != nil {
			return err
		}
		decodedBytes += int64(len(raw))
		doc, err := storage.DecodeDocument(name, raw)
		if err != nil {
			return err
		}
		if err := fn(doc); err != nil {
			return err
		}
	}
	db.statsMu.Lock()
	db.stats.DocsDecoded += int64(len(candidates))
	db.stats.DocsPruned += int64(pruned)
	db.stats.BytesDecoded += decodedBytes
	db.statsMu.Unlock()
	return nil
}

// Doc implements xquery.Source for doc("name"): the document is located in
// whichever collection holds it.
func (db *DB) Doc(name string) (*xmltree.Document, error) {
	for _, col := range db.store.Collections() {
		if d, err := db.store.GetDocument(col, name); err == nil {
			return d, nil
		}
	}
	return nil, fmt.Errorf("engine: document %q not found in any collection", name)
}

// textIndex is an inverted index: text token → document set (with a
// sorted vocabulary for substring constraints) plus a structural index
// element name → document set. Tokenization matches xquery.Tokenize,
// which is what makes hints sound.
type textIndex struct {
	postings map[string]map[string]bool
	elements map[string]map[string]bool
	vocab    []string // sorted; rebuilt lazily
	dirty    bool
}

func newTextIndex() *textIndex {
	return &textIndex{
		postings: map[string]map[string]bool{},
		elements: map[string]map[string]bool{},
	}
}

func (ix *textIndex) add(doc *xmltree.Document) {
	doc.Root.Walk(func(n *xmltree.Node) bool {
		switch n.Kind {
		case xmltree.TextNode:
			for _, tok := range xquery.Tokenize(n.Value) {
				set := ix.postings[tok]
				if set == nil {
					set = map[string]bool{}
					ix.postings[tok] = set
					ix.dirty = true
				}
				set[doc.Name] = true
			}
		case xmltree.ElementNode:
			set := ix.elements[n.Name]
			if set == nil {
				set = map[string]bool{}
				ix.elements[n.Name] = set
			}
			set[doc.Name] = true
		}
		return true
	})
}

func (ix *textIndex) remove(docName string) {
	for tok, set := range ix.postings {
		if set[docName] {
			delete(set, docName)
			if len(set) == 0 {
				delete(ix.postings, tok)
				ix.dirty = true
			}
		}
	}
	for name, set := range ix.elements {
		if set[docName] {
			delete(set, docName)
			if len(set) == 0 {
				delete(ix.elements, name)
			}
		}
	}
}

func (ix *textIndex) vocabulary() []string {
	if ix.dirty || ix.vocab == nil {
		ix.vocab = make([]string, 0, len(ix.postings))
		for tok := range ix.postings {
			ix.vocab = append(ix.vocab, tok)
		}
		sort.Strings(ix.vocab)
		ix.dirty = false
	}
	return ix.vocab
}

// candidates evaluates the hint's conjunction and returns the documents
// that may satisfy it.
func (ix *textIndex) candidates(hint *xquery.Hint) map[string]bool {
	var result map[string]bool
	intersect := func(set map[string]bool) {
		if result == nil {
			result = make(map[string]bool, len(set))
			for k := range set {
				result[k] = true
			}
			return
		}
		for k := range result {
			if !set[k] {
				delete(result, k)
			}
		}
	}
	for _, c := range hint.Constraints {
		if len(c.Tokens) > 0 {
			for _, tok := range c.Tokens {
				intersect(ix.postings[tok])
			}
		}
		if len(c.Elements) > 0 {
			for _, name := range c.Elements {
				intersect(ix.elements[name])
			}
		}
		if c.Substring != "" {
			union := map[string]bool{}
			for _, tok := range ix.vocabulary() {
				if strings.Contains(tok, c.Substring) {
					for doc := range ix.postings[tok] {
						union[doc] = true
					}
				}
			}
			intersect(union)
		}
	}
	if result == nil {
		result = map[string]bool{}
	}
	return result
}
