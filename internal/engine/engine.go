// Package engine implements the sequential XML DBMS a PartiX node runs —
// the role eXist plays in the paper (Section 4: the only requirement on a
// node DBMS is that it processes XQuery). It combines the paged document
// store, an inverted text index used to prune candidate documents (eXist
// "automatically created [indexes] to speed up text search operations and
// path expressions evaluation", Section 5), and the XQuery evaluator.
//
// By default documents are decoded from storage on every query execution;
// there is no parsed-tree cache. That per-tree pre-processing cost is
// exactly the effect the paper measures when it compares many-small-
// documents against few-large-documents databases. Deployments that do
// not need paper fidelity can opt into a decoded-tree cache
// (Options.TreeCacheBytes) and a parallel decode pipeline
// (Options.DecodeWorkers).
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"partix/internal/obs"
	"partix/internal/storage"
	"partix/internal/xmltree"
	"partix/internal/xquery"
	"partix/internal/xquery/exec"
)

// Options configure a DB.
type Options struct {
	// DisableIndexes turns off index-assisted candidate pruning; every
	// query then scans all documents of its collections. Used by the
	// index ablation benchmarks.
	DisableIndexes bool

	// DisableValueIndex turns off just the path summary and typed value
	// index: path-qualified and range constraints stop pruning and
	// exists()/count() queries are no longer answered index-only, while
	// the token/element pruning stays on. Used to isolate the value
	// index's contribution in ablation benchmarks.
	DisableValueIndex bool

	// DecodeWorkers bounds the worker pool that fetches and decodes
	// candidate documents during queries. 0 defaults to GOMAXPROCS;
	// 1 (or any negative value) preserves the paper-faithful sequential
	// behaviour the published benchmark series pin. Results are delivered
	// to the evaluator in stable document order at any setting, so query
	// output is identical across worker counts.
	DecodeWorkers int

	// DisableCompiledExec turns off the compiled vectorized executor;
	// every query then runs through the tree-walking interpreter. The
	// compiled pipeline is observationally identical (the interpreter is
	// its semantic oracle), so this switch exists for the executor
	// ablation benchmarks and as an escape hatch.
	DisableCompiledExec bool

	// TreeCacheBytes is the byte budget of the decoded-tree LRU cache;
	// 0 (the default) disables caching, keeping the per-document parse
	// cost the paper's evaluation depends on.
	TreeCacheBytes int64

	// DisableWAL turns the store's write-ahead log off: mutations become
	// durable only at Sync/Close, as in the original engine.
	DisableWAL bool

	// WALNoFsync keeps the log but skips the commit-time fsync, trading
	// crash durability for write latency (benchmarks, bulk loads).
	WALNoFsync bool

	// CheckpointBytes is the WAL size that triggers a background catalog
	// checkpoint. 0 uses the storage default (8 MiB); negative disables
	// size-triggered checkpoints.
	CheckpointBytes int64
}

// DB is one sequential XML database instance.
type DB struct {
	opts  Options
	store *storage.Store
	cache *treeCache // nil when TreeCacheBytes is 0

	mu      sync.RWMutex
	idx     map[string]*docIndex       // collection → indexes
	cols    map[string]*colState       // collection → write lock + seqlock
	docCols map[string]map[string]bool // doc name → collections holding it

	stats liveStats
	heat  heatState // per-collection workload heat, see heat.go
}

// colState is one collection's write serialization and read-side seqlock.
//
// Writers hold writeMu for the whole store-commit + index-update sequence,
// so the WAL order and the index order always agree. Around that sequence
// they bump seq to odd and back to even; a query validates that seq was
// even and unchanged across its snapshot + candidate capture, retrying (or
// finally taking writeMu) otherwise. The collection's mutation generation
// — the tree-cache and plan-cache key — is seq >> 1.
type colState struct {
	writeMu sync.Mutex
	seq     atomic.Uint64
}

// colFor returns (creating if needed) the collection's colState.
func (db *DB) colFor(collection string) *colState {
	db.mu.RLock()
	cs := db.cols[collection]
	db.mu.RUnlock()
	if cs != nil {
		return cs
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if cs = db.cols[collection]; cs == nil {
		cs = &colState{}
		db.cols[collection] = cs
	}
	return cs
}

// indexFor returns (creating if needed) the collection's index.
func (db *DB) indexFor(collection string) *docIndex {
	db.mu.RLock()
	ix := db.idx[collection]
	db.mu.RUnlock()
	if ix != nil {
		return ix
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if ix = db.idx[collection]; ix == nil {
		ix = newDocIndex()
		db.idx[collection] = ix
	}
	return ix
}

// liveStats holds the engine counters as atomics so concurrent queries
// (and the decode pipeline workers flushing into them) never race with
// Stats()/ResetStats() snapshots.
type liveStats struct {
	queries       atomic.Int64
	compiled      atomic.Int64
	docsDecoded   atomic.Int64
	docsPruned    atomic.Int64
	rangePruned   atomic.Int64
	indexOnlyHits atomic.Int64
	bytesDecoded  atomic.Int64
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
}

// Stats counts the engine's work, for tests and ablation benchmarks.
type Stats struct {
	Queries       int64 // queries executed
	Compiled      int64 // of Queries, executed by the compiled vectorized pipeline
	DocsDecoded   int64 // documents decoded (parsed) during queries
	DocsPruned    int64 // documents skipped thanks to index hints
	RangePruned   int64 // of DocsPruned, documents eliminated by value-index comparisons
	IndexOnlyHits int64 // count()/exists() deciders answered from indexes alone
	BytesDecoded  int64 // encoded bytes decoded during queries
	CacheHits     int64 // candidate documents served from the tree cache
	CacheMisses   int64 // candidate documents decoded despite an enabled cache
}

// Add accumulates o into s (for aggregating counters across nodes).
func (s *Stats) Add(o Stats) {
	s.Queries += o.Queries
	s.Compiled += o.Compiled
	s.DocsDecoded += o.DocsDecoded
	s.DocsPruned += o.DocsPruned
	s.RangePruned += o.RangePruned
	s.IndexOnlyHits += o.IndexOnlyHits
	s.BytesDecoded += o.BytesDecoded
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
}

// Open opens (creating if necessary) a database at path. Indexes are
// loaded from the persisted snapshot when one exists (it is written
// together with the catalog on Sync/Close, so the two are always
// mutually consistent); otherwise they are rebuilt by scanning the
// stored documents.
func Open(path string, opts Options) (*DB, error) {
	st, err := storage.OpenWith(path, storage.Options{
		DisableWAL:      opts.DisableWAL,
		NoFsync:         opts.WALNoFsync,
		CheckpointBytes: opts.CheckpointBytes,
	})
	if err != nil {
		return nil, err
	}
	db := &DB{
		opts: opts, store: st,
		idx: map[string]*docIndex{}, cols: map[string]*colState{},
		docCols: map[string]map[string]bool{},
		heat:    heatState{cols: map[string]*colHeat{}},
	}
	if opts.TreeCacheBytes > 0 {
		db.cache = newTreeCache(opts.TreeCacheBytes)
	}
	// The doc → collection map is rebuilt from the catalog on every open
	// (names only, no document decoding).
	for _, col := range st.Collections() {
		names, err := st.Documents(col)
		if err != nil {
			st.Close()
			return nil, err
		}
		db.cols[col] = &colState{}
		for _, name := range names {
			db.noteDocLocked(name, col)
		}
	}
	// A persisted index snapshot is trustworthy only after a clean
	// shutdown: when the store replayed WAL records at open, the catalog is
	// newer than any snapshot saved alongside it, so rebuild by scanning.
	if st.RecoveredMutations() == 0 && db.loadIndexSnapshot() {
		return db, nil
	}
	for _, col := range st.Collections() {
		names, err := st.Documents(col)
		if err != nil {
			st.Close()
			return nil, err
		}
		ix := newDocIndex()
		batch := make([]*xmltree.Document, 0, rebuildBatch)
		for _, name := range names {
			doc, err := st.GetDocument(col, name)
			if err != nil {
				st.Close()
				return nil, fmt.Errorf("engine: rebuild index for %s/%s: %w", col, name, err)
			}
			batch = append(batch, doc)
			if len(batch) == rebuildBatch {
				ix.bulkAdd(batch)
				batch = batch[:0]
			}
		}
		ix.bulkAdd(batch)
		db.idx[col] = ix
	}
	return db, nil
}

// rebuildBatch bounds how many decoded documents a rebuild scan holds in
// memory between bulkAdd calls.
const rebuildBatch = 256

// noteDocLocked records that a collection holds a document. Callers hold
// db.mu (or, during Open, exclusive access).
func (db *DB) noteDocLocked(name, collection string) {
	cols := db.docCols[name]
	if cols == nil {
		cols = map[string]bool{}
		db.docCols[name] = cols
	}
	cols[collection] = true
}

// dropDocLocked removes one doc → collection record.
func (db *DB) dropDocLocked(name, collection string) {
	cols := db.docCols[name]
	if cols == nil {
		return
	}
	delete(cols, collection)
	if len(cols) == 0 {
		delete(db.docCols, name)
	}
}

// Close persists the index snapshot and closes the store.
func (db *DB) Close() error {
	if err := db.saveIndexSnapshot(); err != nil {
		db.store.Close()
		return err
	}
	return db.store.Close()
}

// Sync persists the index snapshot and flushes the store to disk.
func (db *DB) Sync() error {
	if err := db.saveIndexSnapshot(); err != nil {
		return err
	}
	return db.store.Sync()
}

// Store exposes the underlying document store (the wire server ships raw
// documents through it).
func (db *DB) Store() *storage.Store { return db.store }

// PutDocument stores and indexes a document, durably at return.
//
// Encoding, page writes and index-contribution extraction all happen
// outside the collection's write lock; under it the commit is one WAL
// append plus in-memory catalog and index updates — and because both
// commits happen under the same lock, the index always describes the
// version the WAL order made current (concurrent Puts of one document can
// no longer commit store and index in opposite orders). The group-commit
// fsync is awaited after the lock is released, so it stalls neither other
// writers nor snapshot readers.
func (db *DB) PutDocument(collection string, doc *xmltree.Document) error {
	prep := prepDoc(doc)
	staged, err := db.store.StageDocument(collection, doc)
	if err != nil {
		return err
	}
	ix := db.indexFor(collection)
	cs := db.colFor(collection)
	cs.writeMu.Lock()
	cs.seq.Add(1) // odd: mutation in progress
	tok, err := db.store.CommitStaged(staged)
	if err != nil {
		cs.seq.Add(1)
		cs.writeMu.Unlock()
		db.store.AbortStaged(staged)
		return err
	}
	ix.replacePrep(prep)
	db.mu.Lock()
	db.noteDocLocked(doc.Name, collection)
	db.mu.Unlock()
	cs.seq.Add(1) // even: new generation visible
	cs.writeMu.Unlock()
	return db.store.WaitDurable(tok)
}

// LoadCollection stores and indexes every document of c. The collection
// is created first, so a load of an empty collection (or one interrupted
// mid-way) still leaves the collection cataloged. Indexing goes through
// the batch path: one lock acquisition and one sort per touched posting
// list, instead of a per-document sorted insert. On a store error the
// documents already stored are still indexed before the error returns, so
// index and store never disagree.
func (db *DB) LoadCollection(c *xmltree.Collection) error {
	if err := db.store.CreateCollection(c.Name); err != nil {
		return err
	}
	ix := db.indexFor(c.Name)
	cs := db.colFor(c.Name)
	cs.writeMu.Lock()
	cs.seq.Add(1)
	stored := make([]*xmltree.Document, 0, len(c.Docs))
	var putErr error
	var last storage.CommitToken
	for _, d := range c.Docs {
		staged, err := db.store.StageDocument(c.Name, d)
		if err != nil {
			putErr = err
			break
		}
		tok, err := db.store.CommitStaged(staged)
		if err != nil {
			db.store.AbortStaged(staged)
			putErr = err
			break
		}
		last = tok
		stored = append(stored, d)
	}
	db.mu.Lock()
	for _, d := range stored {
		db.noteDocLocked(d.Name, c.Name)
	}
	db.mu.Unlock()
	ix.bulkAdd(stored)
	cs.seq.Add(1)
	cs.writeMu.Unlock()
	// One group-commit fsync covers the whole load.
	if err := db.store.WaitDurable(last); err != nil && putErr == nil {
		putErr = err
	}
	return putErr
}

// DeleteDocument removes a document from store and index, durably at
// return. Store and index commit under the collection write lock, in WAL
// order, exactly like PutDocument.
func (db *DB) DeleteDocument(collection, name string) error {
	cs := db.colFor(collection)
	cs.writeMu.Lock()
	cs.seq.Add(1)
	tok, err := db.store.DeleteDocumentNoSync(collection, name)
	if err != nil {
		cs.seq.Add(1)
		cs.writeMu.Unlock()
		return err
	}
	db.mu.Lock()
	db.dropDocLocked(name, collection)
	ix := db.idx[collection]
	db.mu.Unlock()
	if ix != nil {
		ix.remove(name)
	}
	cs.seq.Add(1)
	cs.writeMu.Unlock()
	return db.store.WaitDurable(tok)
}

// DropCollection removes a whole collection, durably at return.
func (db *DB) DropCollection(name string) error {
	cs := db.colFor(name)
	cs.writeMu.Lock()
	cs.seq.Add(1)
	tok, err := db.store.DropCollectionNoSync(name)
	if err != nil {
		cs.seq.Add(1)
		cs.writeMu.Unlock()
		return err
	}
	db.mu.Lock()
	delete(db.idx, name)
	for doc, cols := range db.docCols {
		if cols[name] {
			delete(cols, name)
			if len(cols) == 0 {
				delete(db.docCols, doc)
			}
		}
	}
	db.mu.Unlock()
	cs.seq.Add(1)
	cs.writeMu.Unlock()
	return db.store.WaitDurable(tok)
}

// Collections lists collection names.
func (db *DB) Collections() []string { return db.store.Collections() }

// HasCollection reports whether the collection exists.
func (db *DB) HasCollection(name string) bool { return db.store.HasCollection(name) }

// CollectionStats returns store statistics for a collection.
func (db *DB) CollectionStats(name string) (storage.Stats, error) {
	return db.store.CollectionStats(name)
}

// WALStatus reports the store's write-ahead log durability lag, for
// health endpoints that degrade when checkpointing or fsync falls
// behind.
func (db *DB) WALStatus() storage.WALStatus {
	return db.store.WALStatus()
}

// Query parses and executes an XQuery expression.
func (db *DB) Query(query string) (xquery.Seq, error) {
	e, err := xquery.Parse(query)
	if err != nil {
		return nil, err
	}
	return db.QueryExpr(e)
}

// QueryExpr executes a parsed query: through the compiled vectorized
// pipeline when the query is inside the compiled subset (and
// Options.DisableCompiledExec is off), through the tree-walking
// interpreter otherwise. Both paths produce identical results.
func (db *DB) QueryExpr(e xquery.Expr) (xquery.Seq, error) {
	db.stats.queries.Add(1)
	obs.EngineQueries.Inc()
	start := time.Now()
	var seq xquery.Seq
	var err error
	if prog := db.compileQuery(e); prog != nil {
		seq, err = prog.Run(db)
	} else {
		seq, err = xquery.Eval(e, db)
	}
	elapsed := time.Since(start)
	obs.EngineQuerySeconds.Observe(elapsed.Seconds())
	db.observeQueryHeat(e, elapsed)
	return seq, err
}

// StreamQueryExpr executes a parsed query delivering result items to
// yield in bounded chunks, so peak memory stays flat however large the
// result is. Each yielded Seq is owned by the consumer. Queries outside
// the compiled subset (or with the executor disabled) fall back to the
// interpreter, which materializes and then yields once — correctness is
// unchanged, only the memory bound is lost. Returns the total item count.
func (db *DB) StreamQueryExpr(e xquery.Expr, yield func(xquery.Seq) error) (int, error) {
	db.stats.queries.Add(1)
	obs.EngineQueries.Inc()
	start := time.Now()
	defer func() {
		elapsed := time.Since(start)
		obs.EngineQuerySeconds.Observe(elapsed.Seconds())
		db.observeQueryHeat(e, elapsed)
	}()
	if prog := db.compileQuery(e); prog != nil {
		return prog.Stream(db, yield)
	}
	seq, err := xquery.Eval(e, db)
	if err != nil {
		return 0, err
	}
	if len(seq) > 0 {
		if err := yield(seq); err != nil {
			return 0, err
		}
	}
	return len(seq), nil
}

// compileQuery compiles e for the vectorized executor, or returns nil
// for the interpreter path (executor disabled, or shape outside the
// compiled subset).
func (db *DB) compileQuery(e xquery.Expr) *exec.Program {
	if db.opts.DisableCompiledExec {
		return nil
	}
	prog, ok := exec.Compile(e)
	if !ok {
		return nil
	}
	db.stats.compiled.Add(1)
	obs.EngineCompiledQueries.Inc()
	return prog
}

// Stats returns a snapshot of the engine counters. Each field is read
// atomically; the snapshot as a whole is not a single linearization
// point, which is fine for the monitoring and benchmark uses it has.
func (db *DB) Stats() Stats {
	return Stats{
		Queries:       db.stats.queries.Load(),
		Compiled:      db.stats.compiled.Load(),
		DocsDecoded:   db.stats.docsDecoded.Load(),
		DocsPruned:    db.stats.docsPruned.Load(),
		RangePruned:   db.stats.rangePruned.Load(),
		IndexOnlyHits: db.stats.indexOnlyHits.Load(),
		BytesDecoded:  db.stats.bytesDecoded.Load(),
		CacheHits:     db.stats.cacheHits.Load(),
		CacheMisses:   db.stats.cacheMisses.Load(),
	}
}

// ResetStats zeroes the counters.
func (db *DB) ResetStats() {
	db.stats.queries.Store(0)
	db.stats.compiled.Store(0)
	db.stats.docsDecoded.Store(0)
	db.stats.docsPruned.Store(0)
	db.stats.rangePruned.Store(0)
	db.stats.indexOnlyHits.Store(0)
	db.stats.bytesDecoded.Store(0)
	db.stats.cacheHits.Store(0)
	db.stats.cacheMisses.Store(0)
}

// decodeWorkers resolves Options.DecodeWorkers to an effective pool size.
func (db *DB) decodeWorkers() int {
	switch {
	case db.opts.DecodeWorkers > 0:
		return db.opts.DecodeWorkers
	case db.opts.DecodeWorkers < 0:
		return 1
	default:
		return runtime.GOMAXPROCS(0)
	}
}

// querySnapshot is one query's consistent view of a collection: the
// pinned document set, the candidate refs left after index pruning, and
// the generation the capture validated against.
type querySnapshot struct {
	snap        *storage.CollectionSnapshot
	refs        []storage.DocRef // candidates, in document-name order
	gen         uint64
	pruned      int
	rangePruned int
}

// snapshotForQuery captures a querySnapshot without blocking on writers:
// it reads the collection seqlock, takes a pinned store snapshot, computes
// index candidates, and retries if a writer committed in between (the
// index could then describe documents the snapshot does not hold, or miss
// ones it does). After a few optimistic failures it serializes with the
// writer lock, which bounds retries under a write storm.
func (db *DB) snapshotForQuery(collection string, hint *xquery.Hint) (querySnapshot, error) {
	cs := db.colFor(collection)
	for attempt := 0; ; attempt++ {
		locked := attempt >= 3
		if locked {
			cs.writeMu.Lock()
		} else if attempt > 0 {
			obs.EngineSnapshotRetries.Inc()
		}
		s1 := cs.seq.Load()
		if !locked && s1&1 == 1 {
			runtime.Gosched() // writer mid-commit; its window is lock-free map work
			continue
		}
		snap, err := db.store.SnapshotCollection(collection)
		if err != nil {
			stable := cs.seq.Load() == s1
			if locked {
				cs.writeMu.Unlock()
			}
			if locked || stable {
				return querySnapshot{}, err
			}
			continue // raced a create/drop: re-resolve
		}
		q := querySnapshot{snap: snap, gen: s1 >> 1}
		db.mu.RLock()
		ix := db.idx[collection]
		db.mu.RUnlock()
		if hint != nil && len(hint.Constraints) > 0 && !db.opts.DisableIndexes && ix != nil {
			usePaths := !db.opts.DisableValueIndex && hintNeedsPaths(hint)
			if usePaths {
				// Pre-v3 snapshots lack the path structures; build them now
				// (or, if that fails, fall back to pruning without them).
				usePaths = db.ensurePathIndex(collection, ix)
			}
			set, rp := ix.candidates(hint, usePaths)
			q.rangePruned = rp
			q.refs = make([]storage.DocRef, 0, len(set))
			for _, ref := range snap.Refs {
				if set[ref.Name] {
					q.refs = append(q.refs, ref)
				} else {
					q.pruned++
				}
			}
		} else {
			q.refs = snap.Refs
		}
		if locked {
			cs.writeMu.Unlock()
			return q, nil
		}
		if cs.seq.Load() == s1 {
			return q, nil
		}
		snap.Close() // a writer committed mid-capture; retry
	}
}

// Docs implements xquery.Source with index-assisted pruning: when a hint
// is present (and indexes are enabled) only candidate documents are
// decoded; the rest are skipped without touching the store. The iteration
// runs over an immutable pinned snapshot, so concurrent writers neither
// block it nor change what it sees. Candidates are fetched and decoded by
// the worker pool (sequentially when DecodeWorkers is 1) and always
// delivered to fn in document-name order.
func (db *DB) Docs(collection string, hint *xquery.Hint, fn func(*xmltree.Document) error) error {
	q, err := db.snapshotForQuery(collection, hint)
	if err != nil {
		return err
	}
	defer q.snap.Close()

	workers := db.decodeWorkers()
	if workers > len(q.refs) {
		workers = len(q.refs)
	}
	var c docCounters
	if workers <= 1 {
		err = db.docsSequential(collection, q.refs, q.gen, fn, &c)
	} else {
		err = db.docsPipelined(collection, q.refs, q.gen, workers, fn, &c)
	}
	if err != nil {
		return err
	}
	pruned, rangePruned := q.pruned, q.rangePruned
	db.stats.docsDecoded.Add(c.decoded)
	db.stats.docsPruned.Add(int64(pruned))
	db.stats.rangePruned.Add(int64(rangePruned))
	db.stats.bytesDecoded.Add(c.bytes)
	db.stats.cacheHits.Add(c.hits)
	db.stats.cacheMisses.Add(c.misses)
	obs.EngineDocsDecoded.Add(c.decoded)
	obs.EngineDocsPruned.Add(int64(pruned))
	obs.EngineRangePruned.Add(int64(rangePruned))
	obs.EngineBytesDecoded.Add(c.bytes)
	obs.EngineCacheHits.Add(c.hits)
	obs.EngineCacheMisses.Add(c.misses)
	db.observeDocsHeat(collection, c.decoded, c.bytes)
	return nil
}

// hintNeedsPaths reports whether any constraint is path-qualified.
func hintNeedsPaths(hint *xquery.Hint) bool {
	for _, c := range hint.Constraints {
		if c.Path != nil {
			return true
		}
	}
	return false
}

// ensurePathIndex makes the collection's path summary and value index
// available, lazily rebuilding them by scanning the store when the index
// was restored from a pre-v3 snapshot. Returns false when the rebuild
// fails (queries then proceed without path constraints, which is sound).
func (db *DB) ensurePathIndex(collection string, ix *docIndex) bool {
	ix.mu.Lock()
	built := ix.pathsBuilt
	ix.mu.Unlock()
	if built {
		return true
	}
	ix.rebuildMu.Lock()
	defer ix.rebuildMu.Unlock()
	ix.mu.Lock()
	built = ix.pathsBuilt
	ix.mu.Unlock()
	if built {
		return true
	}
	names, err := db.store.Documents(collection)
	if err != nil {
		return false
	}
	contribs := make(map[string]*docContrib, len(names))
	for _, name := range names {
		doc, err := db.store.GetDocument(collection, name)
		if err != nil {
			return false
		}
		contribs[name] = collectDocPaths(doc)
	}
	// Mutations that arrived while scanning are in ix.pathPending and
	// override the scan inside installPaths.
	ix.installPaths(contribs)
	return true
}

// probeIndex resolves the index a probe runs against, nil when probing is
// unavailable (disabled, unknown collection, or failed rebuild).
func (db *DB) probeIndex(collection string) *docIndex {
	if db.opts.DisableIndexes || db.opts.DisableValueIndex {
		return nil
	}
	db.mu.RLock()
	ix := db.idx[collection]
	db.mu.RUnlock()
	if ix == nil || !db.ensurePathIndex(collection, ix) {
		return nil
	}
	return ix
}

// ProbeCount implements xquery.IndexProber: count()-shaped queries over
// predicate-free collection-rooted paths are answered from the path
// summary's node counts without decoding any document.
func (db *DB) ProbeCount(p *xquery.PathProbe) (int64, bool) {
	if p.Value != nil {
		return 0, false // counting value-qualified nodes needs node-granular postings
	}
	ix := db.probeIndex(p.Collection)
	if ix == nil {
		return 0, false
	}
	ix.mu.Lock()
	n := ix.countLocked(p.Steps)
	ix.mu.Unlock()
	db.noteIndexOnly()
	return n, true
}

// ProbeExists implements xquery.IndexProber: exists()/empty()-shaped
// queries are answered from the path summary and value index. A probe is
// declined (ok=false) when an over-cap value at a matched path could hide
// a match.
func (db *DB) ProbeExists(p *xquery.PathProbe) (bool, bool) {
	ix := db.probeIndex(p.Collection)
	if ix == nil {
		return false, false
	}
	ix.mu.Lock()
	exists, ok := ix.existsLocked(p)
	ix.mu.Unlock()
	if ok {
		db.noteIndexOnly()
	}
	return exists, ok
}

func (db *DB) noteIndexOnly() {
	db.stats.indexOnlyHits.Add(1)
	obs.EngineIndexOnly.Inc()
}

// RawDocuments streams the stored (encoded) documents of a collection to
// fn in document-name order without materializing the whole collection:
// each record is read, handed over, and released before the next one is
// touched. The wire server's streaming fetch path batches these into
// bounded frames; fn returning an error stops the iteration.
func (db *DB) RawDocuments(collection string, fn func(name string, data []byte) error) error {
	names, err := db.store.Documents(collection)
	if err != nil {
		return err
	}
	for _, name := range names {
		raw, err := db.store.GetDocumentRaw(collection, name)
		if err != nil {
			return err
		}
		if err := fn(name, raw); err != nil {
			return err
		}
	}
	return nil
}

// Doc implements xquery.Source for doc("name"): the document is located
// through the doc → collection map instead of probing every collection,
// and a real store error surfaces instead of reading as "not found". When
// several collections hold the name, the lexicographically first wins
// (the order the old collection scan observed).
func (db *DB) Doc(name string) (*xmltree.Document, error) {
	db.mu.RLock()
	cols := make([]string, 0, len(db.docCols[name]))
	for col := range db.docCols[name] {
		cols = append(cols, col)
	}
	db.mu.RUnlock()
	sort.Strings(cols)
	for _, col := range cols {
		d, err := db.store.GetDocument(col, name)
		if err == nil {
			return d, nil
		}
		if !errors.Is(err, storage.ErrNotFound) {
			return nil, fmt.Errorf("engine: doc %q: %w", name, err)
		}
		// Raced with a concurrent delete; try the remaining collections.
	}
	return nil, fmt.Errorf("engine: document %q not found in any collection", name)
}
