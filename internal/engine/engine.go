// Package engine implements the sequential XML DBMS a PartiX node runs —
// the role eXist plays in the paper (Section 4: the only requirement on a
// node DBMS is that it processes XQuery). It combines the paged document
// store, an inverted text index used to prune candidate documents (eXist
// "automatically created [indexes] to speed up text search operations and
// path expressions evaluation", Section 5), and the XQuery evaluator.
//
// By default documents are decoded from storage on every query execution;
// there is no parsed-tree cache. That per-tree pre-processing cost is
// exactly the effect the paper measures when it compares many-small-
// documents against few-large-documents databases. Deployments that do
// not need paper fidelity can opt into a decoded-tree cache
// (Options.TreeCacheBytes) and a parallel decode pipeline
// (Options.DecodeWorkers).
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"partix/internal/obs"
	"partix/internal/storage"
	"partix/internal/xmltree"
	"partix/internal/xquery"
)

// Options configure a DB.
type Options struct {
	// DisableIndexes turns off index-assisted candidate pruning; every
	// query then scans all documents of its collections. Used by the
	// index ablation benchmarks.
	DisableIndexes bool

	// DecodeWorkers bounds the worker pool that fetches and decodes
	// candidate documents during queries. 0 defaults to GOMAXPROCS;
	// 1 (or any negative value) preserves the paper-faithful sequential
	// behaviour the published benchmark series pin. Results are delivered
	// to the evaluator in stable document order at any setting, so query
	// output is identical across worker counts.
	DecodeWorkers int

	// TreeCacheBytes is the byte budget of the decoded-tree LRU cache;
	// 0 (the default) disables caching, keeping the per-document parse
	// cost the paper's evaluation depends on.
	TreeCacheBytes int64
}

// DB is one sequential XML database instance.
type DB struct {
	opts  Options
	store *storage.Store
	cache *treeCache // nil when TreeCacheBytes is 0

	mu   sync.RWMutex
	idx  map[string]*textIndex // collection → inverted index
	gens map[string]uint64     // collection → mutation generation (cache keys)

	stats liveStats
}

// liveStats holds the engine counters as atomics so concurrent queries
// (and the decode pipeline workers flushing into them) never race with
// Stats()/ResetStats() snapshots.
type liveStats struct {
	queries      atomic.Int64
	docsDecoded  atomic.Int64
	docsPruned   atomic.Int64
	bytesDecoded atomic.Int64
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
}

// Stats counts the engine's work, for tests and ablation benchmarks.
type Stats struct {
	Queries      int64 // queries executed
	DocsDecoded  int64 // documents decoded (parsed) during queries
	DocsPruned   int64 // documents skipped thanks to index hints
	BytesDecoded int64 // encoded bytes decoded during queries
	CacheHits    int64 // candidate documents served from the tree cache
	CacheMisses  int64 // candidate documents decoded despite an enabled cache
}

// Add accumulates o into s (for aggregating counters across nodes).
func (s *Stats) Add(o Stats) {
	s.Queries += o.Queries
	s.DocsDecoded += o.DocsDecoded
	s.DocsPruned += o.DocsPruned
	s.BytesDecoded += o.BytesDecoded
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
}

// Open opens (creating if necessary) a database at path. Indexes are
// loaded from the persisted snapshot when one exists (it is written
// together with the catalog on Sync/Close, so the two are always
// mutually consistent); otherwise they are rebuilt by scanning the
// stored documents.
func Open(path string, opts Options) (*DB, error) {
	st, err := storage.Open(path)
	if err != nil {
		return nil, err
	}
	db := &DB{opts: opts, store: st, idx: map[string]*textIndex{}, gens: map[string]uint64{}}
	if opts.TreeCacheBytes > 0 {
		db.cache = newTreeCache(opts.TreeCacheBytes)
	}
	if db.loadIndexSnapshot() {
		return db, nil
	}
	for _, col := range st.Collections() {
		names, err := st.Documents(col)
		if err != nil {
			st.Close()
			return nil, err
		}
		ix := newTextIndex()
		for _, name := range names {
			doc, err := st.GetDocument(col, name)
			if err != nil {
				st.Close()
				return nil, fmt.Errorf("engine: rebuild index for %s/%s: %w", col, name, err)
			}
			ix.add(doc)
		}
		db.idx[col] = ix
	}
	return db, nil
}

// Close persists the index snapshot and closes the store.
func (db *DB) Close() error {
	if err := db.saveIndexSnapshot(); err != nil {
		db.store.Close()
		return err
	}
	return db.store.Close()
}

// Sync persists the index snapshot and flushes the store to disk.
func (db *DB) Sync() error {
	if err := db.saveIndexSnapshot(); err != nil {
		return err
	}
	return db.store.Sync()
}

// Store exposes the underlying document store (the wire server ships raw
// documents through it).
func (db *DB) Store() *storage.Store { return db.store }

// PutDocument stores and indexes a document.
func (db *DB) PutDocument(collection string, doc *xmltree.Document) error {
	if err := db.store.PutDocument(collection, doc); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	ix := db.idx[collection]
	if ix == nil {
		ix = newTextIndex()
		db.idx[collection] = ix
	}
	db.gens[collection]++ // invalidate cached trees of the old version
	ix.remove(doc.Name)   // replace semantics
	ix.add(doc)
	return nil
}

// LoadCollection stores and indexes every document of c. The collection
// is created first, so a load of an empty collection (or one interrupted
// mid-way) still leaves the collection cataloged.
func (db *DB) LoadCollection(c *xmltree.Collection) error {
	db.store.CreateCollection(c.Name)
	db.mu.Lock()
	if db.idx[c.Name] == nil {
		db.idx[c.Name] = newTextIndex()
	}
	db.mu.Unlock()
	for _, d := range c.Docs {
		if err := db.PutDocument(c.Name, d); err != nil {
			return err
		}
	}
	return nil
}

// DeleteDocument removes a document from store and index.
func (db *DB) DeleteDocument(collection, name string) error {
	if err := db.store.DeleteDocument(collection, name); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.gens[collection]++
	if ix := db.idx[collection]; ix != nil {
		ix.remove(name)
	}
	return nil
}

// DropCollection removes a whole collection.
func (db *DB) DropCollection(name string) error {
	if err := db.store.DropCollection(name); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.idx, name)
	db.gens[name]++
	return nil
}

// Collections lists collection names.
func (db *DB) Collections() []string { return db.store.Collections() }

// HasCollection reports whether the collection exists.
func (db *DB) HasCollection(name string) bool { return db.store.HasCollection(name) }

// CollectionStats returns store statistics for a collection.
func (db *DB) CollectionStats(name string) (storage.Stats, error) {
	return db.store.CollectionStats(name)
}

// Query parses and executes an XQuery expression.
func (db *DB) Query(query string) (xquery.Seq, error) {
	e, err := xquery.Parse(query)
	if err != nil {
		return nil, err
	}
	return db.QueryExpr(e)
}

// QueryExpr executes a parsed query.
func (db *DB) QueryExpr(e xquery.Expr) (xquery.Seq, error) {
	db.stats.queries.Add(1)
	obs.EngineQueries.Inc()
	start := time.Now()
	seq, err := xquery.Eval(e, db)
	obs.EngineQuerySeconds.Observe(time.Since(start).Seconds())
	return seq, err
}

// Stats returns a snapshot of the engine counters. Each field is read
// atomically; the snapshot as a whole is not a single linearization
// point, which is fine for the monitoring and benchmark uses it has.
func (db *DB) Stats() Stats {
	return Stats{
		Queries:      db.stats.queries.Load(),
		DocsDecoded:  db.stats.docsDecoded.Load(),
		DocsPruned:   db.stats.docsPruned.Load(),
		BytesDecoded: db.stats.bytesDecoded.Load(),
		CacheHits:    db.stats.cacheHits.Load(),
		CacheMisses:  db.stats.cacheMisses.Load(),
	}
}

// ResetStats zeroes the counters.
func (db *DB) ResetStats() {
	db.stats.queries.Store(0)
	db.stats.docsDecoded.Store(0)
	db.stats.docsPruned.Store(0)
	db.stats.bytesDecoded.Store(0)
	db.stats.cacheHits.Store(0)
	db.stats.cacheMisses.Store(0)
}

// decodeWorkers resolves Options.DecodeWorkers to an effective pool size.
func (db *DB) decodeWorkers() int {
	switch {
	case db.opts.DecodeWorkers > 0:
		return db.opts.DecodeWorkers
	case db.opts.DecodeWorkers < 0:
		return 1
	default:
		return runtime.GOMAXPROCS(0)
	}
}

// Docs implements xquery.Source with index-assisted pruning: when a hint
// is present (and indexes are enabled) only candidate documents are
// decoded; the rest are skipped without touching the store. Candidates
// are fetched and decoded by the worker pool (sequentially when
// DecodeWorkers is 1) and always delivered to fn in document-name order.
func (db *DB) Docs(collection string, hint *xquery.Hint, fn func(*xmltree.Document) error) error {
	names, err := db.store.Documents(collection)
	if err != nil {
		return err
	}
	db.mu.RLock()
	ix := db.idx[collection]
	gen := db.gens[collection]
	db.mu.RUnlock()

	var candidates []string
	pruned := 0
	if hint != nil && len(hint.Constraints) > 0 && !db.opts.DisableIndexes && ix != nil {
		set := ix.candidates(hint)
		candidates = make([]string, 0, len(set))
		for _, name := range names {
			if set[name] {
				candidates = append(candidates, name)
			} else {
				pruned++
			}
		}
	}
	if candidates == nil {
		candidates = names
	}

	workers := db.decodeWorkers()
	if workers > len(candidates) {
		workers = len(candidates)
	}
	var c docCounters
	if workers <= 1 {
		err = db.docsSequential(collection, candidates, gen, fn, &c)
	} else {
		err = db.docsPipelined(collection, candidates, gen, workers, fn, &c)
	}
	if err != nil {
		return err
	}
	db.stats.docsDecoded.Add(c.decoded)
	db.stats.docsPruned.Add(int64(pruned))
	db.stats.bytesDecoded.Add(c.bytes)
	db.stats.cacheHits.Add(c.hits)
	db.stats.cacheMisses.Add(c.misses)
	obs.EngineDocsDecoded.Add(c.decoded)
	obs.EngineDocsPruned.Add(int64(pruned))
	obs.EngineBytesDecoded.Add(c.bytes)
	obs.EngineCacheHits.Add(c.hits)
	obs.EngineCacheMisses.Add(c.misses)
	return nil
}

// RawDocuments streams the stored (encoded) documents of a collection to
// fn in document-name order without materializing the whole collection:
// each record is read, handed over, and released before the next one is
// touched. The wire server's streaming fetch path batches these into
// bounded frames; fn returning an error stops the iteration.
func (db *DB) RawDocuments(collection string, fn func(name string, data []byte) error) error {
	names, err := db.store.Documents(collection)
	if err != nil {
		return err
	}
	for _, name := range names {
		raw, err := db.store.GetDocumentRaw(collection, name)
		if err != nil {
			return err
		}
		if err := fn(name, raw); err != nil {
			return err
		}
	}
	return nil
}

// Doc implements xquery.Source for doc("name"): the document is located in
// whichever collection holds it.
func (db *DB) Doc(name string) (*xmltree.Document, error) {
	for _, col := range db.store.Collections() {
		if d, err := db.store.GetDocument(col, name); err == nil {
			return d, nil
		}
	}
	return nil, fmt.Errorf("engine: document %q not found in any collection", name)
}
