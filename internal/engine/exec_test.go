package engine

import (
	"fmt"
	"reflect"
	"testing"

	"partix/internal/xmltree"
	"partix/internal/xquery"
)

// execQueries spans the compiled subset and the interpreter-only shapes
// through the full engine (snapshots, hints, decode pipeline).
var execQueries = []string{
	`for $i in collection("items")/Item where $i/Section = "CD" return $i/Code`,
	`for $i in collection("items")/Item where contains($i/Description, "good") return $i/Code`,
	`for $i in collection("items")/Item order by $i/Code descending return $i/Code`,
	`collection("items")/Item[Section = "DVD"]/@id`,
	`count(collection("items")/Item)`,
	`exists(for $i in collection("items")/Item where $i/Section = "Book" return $i)`,
	`sum(for $i in collection("items")/Item return $i/@id)`,
	`for $i in collection("items")/Item return ($i/Code, $i/Section)`, // interpreter fallback
}

// TestCompiledExecMatchesInterpreter runs the same queries with the
// executor on and off; engine results must be identical.
func TestCompiledExecMatchesInterpreter(t *testing.T) {
	compiled := testDB(t, Options{})
	interp := testDB(t, Options{DisableCompiledExec: true})
	loadItems(t, compiled)
	loadItems(t, interp)
	for _, q := range execQueries {
		want, err := interp.Query(q)
		if err != nil {
			t.Fatalf("%s (interpreter): %v", q, err)
		}
		got, err := compiled.Query(q)
		if err != nil {
			t.Fatalf("%s (compiled): %v", q, err)
		}
		if len(want) != len(got) {
			t.Fatalf("%s: compiled %d items, interpreter %d", q, len(got), len(want))
		}
		for i := range want {
			if xquery.ItemString(want[i]) != xquery.ItemString(got[i]) {
				t.Fatalf("%s: item %d: compiled %q, interpreter %q",
					q, i, xquery.ItemString(got[i]), xquery.ItemString(want[i]))
			}
		}
	}
	if st := compiled.Stats(); st.Compiled == 0 {
		t.Fatalf("compiled engine reports no compiled queries: %+v", st)
	}
	if st := interp.Stats(); st.Compiled != 0 {
		t.Fatalf("interpreter engine reports compiled queries: %+v", st)
	}
}

// TestStreamQueryExpr verifies the streaming entry point delivers the
// same items as Query, in bounded chunks, for large results.
func TestStreamQueryExpr(t *testing.T) {
	db := testDB(t, Options{})
	c := xmltree.NewCollection("big")
	for i := 0; i < 300; i++ {
		c.Add(xmltree.MustParseString(fmt.Sprintf("d%d", i),
			fmt.Sprintf("<r><v>a%03d</v><v>b%03d</v></r>", i, i)))
	}
	if err := db.LoadCollection(c); err != nil {
		t.Fatal(err)
	}
	const q = `collection("big")/r/v`
	want, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	e, err := xquery.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	var got xquery.Seq
	chunks := 0
	total, err := db.StreamQueryExpr(e, func(items xquery.Seq) error {
		chunks++
		got = append(got, items...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != len(want) || !reflect.DeepEqual(seqStrings(want), seqStrings(got)) {
		t.Fatalf("stream total=%d chunks=%d, want %d items", total, chunks, len(want))
	}
	if chunks < 2 {
		t.Fatalf("600 items arrived in %d chunk(s); want bounded frames", chunks)
	}
}

func seqStrings(s xquery.Seq) []string {
	out := make([]string, len(s))
	for i, it := range s {
		out[i] = xquery.ItemString(it)
	}
	return out
}

// TestCompiledExecIndexOnly verifies the compiled fold path still answers
// probe-eligible deciders from indexes alone, decoding no documents.
func TestCompiledExecIndexOnly(t *testing.T) {
	db := testDB(t, Options{})
	loadItems(t, db)
	db.ResetStats()
	res, err := db.Query(`count(collection("items")/Item)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0] != 4.0 {
		t.Fatalf("got %v", res)
	}
	st := db.Stats()
	if st.Compiled != 1 {
		t.Fatalf("query did not compile: %+v", st)
	}
	if st.IndexOnlyHits == 0 || st.DocsDecoded != 0 {
		t.Fatalf("count() decoded documents: %+v", st)
	}
}
