package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"partix/internal/xmltree"
	"partix/internal/xquery"
)

// TestConcurrentSameDocPutCommitOrder pins the store/index commit-order
// fix: two writers race to replace the same document; because both
// commits happen under the collection write lock, the index must describe
// exactly the version the store made current — never the loser's. Run
// under -race this also checks the locking discipline of the whole write
// path.
func TestConcurrentSameDocPutCommitOrder(t *testing.T) {
	db := testDB(t, Options{WALNoFsync: true})
	variants := []string{"alphatok", "betatok"}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				d := xmltree.MustParseString("d",
					fmt.Sprintf("<Item><Tag>%s</Tag><N>%d</N></Item>", variants[w], i))
				if err := db.PutDocument("c", d); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	stored, err := db.store.GetDocument("c", "d")
	if err != nil {
		t.Fatal(err)
	}
	var winner string
	stored.Root.Walk(func(n *xmltree.Node) bool {
		if n.Kind == xmltree.TextNode && (n.Value == variants[0] || n.Value == variants[1]) {
			winner = n.Value
		}
		return true
	})
	if winner == "" {
		t.Fatal("stored document carries neither variant token")
	}
	db.mu.RLock()
	ix := db.idx["c"]
	db.mu.RUnlock()
	for _, v := range variants {
		set, _ := ix.candidates(&xquery.Hint{Constraints: []xquery.Constraint{{Tokens: []string{v}}}}, false)
		if v == winner && !set["d"] {
			t.Fatalf("index lost the winning version (token %q)", v)
		}
		if v != winner && set["d"] {
			t.Fatalf("index still describes the losing version (token %q)", v)
		}
	}
}

// TestQuerySnapshotIsolation starts a query, then deletes and replaces
// documents (and checkpoints) while the query is mid-iteration: the query
// must observe exactly the documents of its snapshot, with the content
// they had at snapshot time.
func TestQuerySnapshotIsolation(t *testing.T) {
	db := testDB(t, Options{WALNoFsync: true})
	const docs = 10
	c := xmltree.NewCollection("items")
	for i := 0; i < docs; i++ {
		c.Add(xmltree.MustParseString(fmt.Sprintf("d%d", i),
			fmt.Sprintf("<Item><N>%d</N><V>original</V></Item>", i)))
	}
	if err := db.LoadCollection(c); err != nil {
		t.Fatal(err)
	}

	firstDelivered := make(chan struct{})
	mutationsDone := make(chan struct{})
	var got []*xmltree.Document
	queryErr := make(chan error, 1)
	go func() {
		first := true
		queryErr <- db.Docs("items", nil, func(d *xmltree.Document) error {
			if first {
				first = false
				close(firstDelivered)
				<-mutationsDone // let the writer churn mid-iteration
			}
			got = append(got, d)
			return nil
		})
	}()

	<-firstDelivered
	for i := 5; i < docs; i++ {
		if err := db.DeleteDocument("items", fmt.Sprintf("d%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		d := xmltree.MustParseString(fmt.Sprintf("d%d", i),
			fmt.Sprintf("<Item><N>%d</N><V>rewritten</V></Item>", i))
		if err := db.PutDocument("items", d); err != nil {
			t.Fatal(err)
		}
	}
	// A checkpoint tries to recycle the replaced/deleted chains; the
	// query's pin must keep them readable.
	if err := db.store.Sync(); err != nil {
		t.Fatal(err)
	}
	close(mutationsDone)
	if err := <-queryErr; err != nil {
		t.Fatal(err)
	}

	if len(got) != docs {
		t.Fatalf("query saw %d documents, snapshot had %d", len(got), docs)
	}
	for _, d := range got {
		val := ""
		d.Root.Walk(func(n *xmltree.Node) bool {
			if n.Kind == xmltree.TextNode && (n.Value == "original" || n.Value == "rewritten") {
				val = n.Value
			}
			return true
		})
		if val != "original" {
			t.Fatalf("%s: snapshot read saw %q, want the snapshot-time version", d.Name, val)
		}
	}
}

// TestRecoveryRebuildsStaleIndexSnapshot crashes an engine after commits
// that postdate the persisted index snapshot: the reopened engine must
// notice the WAL replay and rebuild its index by scanning, instead of
// trusting a snapshot that describes fewer documents than the recovered
// catalog holds.
func TestRecoveryRebuildsStaleIndexSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "e.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 3; i++ {
		d := xmltree.MustParseString(fmt.Sprintf("d%d", i),
			fmt.Sprintf("<Item><Tag>earlytok</Tag><N>%d</N></Item>", i))
		if err := db.PutDocument("c", d); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Sync(); err != nil { // persists the index snapshot
		t.Fatal(err)
	}
	late := xmltree.MustParseString("late", "<Item><Tag>latetok</Tag></Item>")
	if err := db.PutDocument("c", late); err != nil { // snapshot now stale
		t.Fatal(err)
	}

	crash := filepath.Join(dir, "crash.db")
	for _, suffix := range []string{"", ".wal"} {
		data, err := os.ReadFile(path + suffix)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(crash+suffix, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	db2, err := Open(crash, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.store.RecoveredMutations() == 0 {
		t.Fatal("expected WAL replay on the crashed copy")
	}
	db2.mu.RLock()
	ix := db2.idx["c"]
	db2.mu.RUnlock()
	set, _ := ix.candidates(&xquery.Hint{Constraints: []xquery.Constraint{{Tokens: []string{"latetok"}}}}, false)
	if !set["late"] {
		t.Fatal("rebuilt index does not describe the document recovered from the WAL")
	}
}

// TestMixedReadWriteConcurrency hammers queries against concurrent
// writers on the same collection; under -race it proves queries never
// observe a torn state and never serialize on the write path's locks in a
// way that deadlocks.
func TestMixedReadWriteConcurrency(t *testing.T) {
	db := testDB(t, Options{WALNoFsync: true})
	loadItems(t, db)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				d := xmltree.MustParseString(fmt.Sprintf("w%d-%d", w, i%6), fmt.Sprintf(
					`<Item id="%d"><Code>W%d</Code><Section>CD</Section></Item>`, i, i))
				if err := db.PutDocument("items", d); err != nil {
					errs <- err
					return
				}
				if i%10 == 9 {
					if err := db.DeleteDocument("items", d.Name); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := db.Query(`for $i in collection("items")/Item where $i/Section = "CD" return $i/Code`); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
