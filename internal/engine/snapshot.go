package engine

import (
	"bytes"
	"encoding/gob"
	"sort"
)

// Index snapshots: the in-memory inverted indexes are serialized into a
// metadata record of the store on Sync/Close. Because the store's catalog
// is persisted at the same moments, a snapshot read back at Open always
// describes exactly the cataloged documents — a crash between syncs loses
// the un-synced documents and their index entries together.

const indexMetaKey = "engine:index:v1"

// indexSnapshot is the serialized form of one collection's indexes.
type indexSnapshot struct {
	Postings map[string][]string
	Elements map[string][]string
}

func (db *DB) saveIndexSnapshot() error {
	db.mu.RLock()
	snap := make(map[string]indexSnapshot, len(db.idx))
	for col, ix := range db.idx {
		snap[col] = indexSnapshot{
			Postings: setsToLists(ix.postings),
			Elements: setsToLists(ix.elements),
		}
	}
	db.mu.RUnlock()

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return err
	}
	return db.store.PutMeta(indexMetaKey, buf.Bytes())
}

// loadIndexSnapshot restores the indexes from the persisted snapshot;
// it reports false (leaving db.idx empty) when none exists or it cannot
// be decoded, in which case the caller rebuilds by scanning.
func (db *DB) loadIndexSnapshot() bool {
	data, ok, err := db.store.GetMeta(indexMetaKey)
	if err != nil || !ok {
		return false
	}
	var snap map[string]indexSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return false
	}
	// Every cataloged collection must be covered, or the snapshot is
	// stale (e.g. a collection created without a later Sync).
	for _, col := range db.store.Collections() {
		if _, covered := snap[col]; !covered {
			return false
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for col, s := range snap {
		if !db.store.HasCollection(col) {
			continue // dropped after the snapshot was taken
		}
		ix := newTextIndex()
		ix.postings = listsToSets(s.Postings)
		ix.elements = listsToSets(s.Elements)
		db.idx[col] = ix
	}
	return true
}

func setsToLists(in map[string]map[string]bool) map[string][]string {
	out := make(map[string][]string, len(in))
	for k, set := range in {
		list := make([]string, 0, len(set))
		for doc := range set {
			list = append(list, doc)
		}
		sort.Strings(list)
		out[k] = list
	}
	return out
}

func listsToSets(in map[string][]string) map[string]map[string]bool {
	out := make(map[string]map[string]bool, len(in))
	for k, list := range in {
		set := make(map[string]bool, len(list))
		for _, doc := range list {
			set[doc] = true
		}
		out[k] = set
	}
	return out
}
