package engine

import (
	"bytes"
	"encoding/gob"
)

// Index snapshots: the in-memory inverted indexes are serialized into a
// metadata record of the store on Sync/Close. Because the store's catalog
// is persisted at the same moments, a snapshot read back at Open always
// describes exactly the cataloged documents — a crash between syncs loses
// the un-synced documents and their index entries together.
//
// The v2 format stores the interned doc-name table once and posting
// lists as docID slices; the original v1 format (token → sorted doc-name
// lists) is still decoded for stores written by older engines. A
// snapshot in neither format, or one not covering every cataloged
// collection, triggers a rebuild scan — loading never errors.

const (
	indexMetaKeyV1 = "engine:index:v1"
	indexMetaKeyV2 = "engine:index:v2"
)

// indexSnapshotV1 is the original serialized form of one collection's
// indexes: posting lists of document names.
type indexSnapshotV1 struct {
	Postings map[string][]string
	Elements map[string][]string
}

// indexSnapshotV2 is the compact form: the doc-name table ("" marks a
// recycled docID slot) plus posting lists of table offsets.
type indexSnapshotV2 struct {
	Docs     []string
	Postings map[string][]uint32
	Elements map[string][]uint32
}

func (db *DB) saveIndexSnapshot() error {
	db.mu.RLock()
	indexes := make(map[string]*textIndex, len(db.idx))
	for col, ix := range db.idx {
		indexes[col] = ix
	}
	db.mu.RUnlock()

	snap := make(map[string]indexSnapshotV2, len(indexes))
	for col, ix := range indexes {
		snap[col] = ix.snapshot()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return err
	}
	if err := db.store.PutMeta(indexMetaKeyV2, buf.Bytes()); err != nil {
		return err
	}
	// Drop any stale v1 record so a failed v2 decode can never resurrect
	// an older index state.
	return db.store.PutMeta(indexMetaKeyV1, nil)
}

// snapshot captures one index's serializable state under its lock.
func (ix *textIndex) snapshot() indexSnapshotV2 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	s := indexSnapshotV2{
		Docs:     append([]string(nil), ix.names...),
		Postings: make(map[string][]uint32, len(ix.postings)),
		Elements: make(map[string][]uint32, len(ix.elements)),
	}
	for tok, list := range ix.postings {
		s.Postings[tok] = idsToUint32(list)
	}
	for name, list := range ix.elements {
		s.Elements[name] = idsToUint32(list)
	}
	return s
}

// loadIndexSnapshot restores the indexes from the persisted snapshot;
// it reports false (leaving db.idx empty) when none exists or it cannot
// be decoded, in which case the caller rebuilds by scanning.
func (db *DB) loadIndexSnapshot() bool {
	loaded := db.loadIndexSnapshotV2()
	if loaded == nil {
		loaded = db.loadIndexSnapshotV1()
	}
	if loaded == nil {
		return false
	}
	// Every cataloged collection must be covered, or the snapshot is
	// stale (e.g. a collection created without a later Sync).
	for _, col := range db.store.Collections() {
		if _, covered := loaded[col]; !covered {
			return false
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for col, ix := range loaded {
		if !db.store.HasCollection(col) {
			continue // dropped after the snapshot was taken
		}
		db.idx[col] = ix
	}
	return true
}

func (db *DB) loadIndexSnapshotV2() map[string]*textIndex {
	data, ok, err := db.store.GetMeta(indexMetaKeyV2)
	if err != nil || !ok {
		return nil
	}
	var snap map[string]indexSnapshotV2
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return nil
	}
	out := make(map[string]*textIndex, len(snap))
	for col, s := range snap {
		ix, ok := indexFromSnapshotV2(s)
		if !ok {
			return nil // corrupt references: rebuild everything
		}
		out[col] = ix
	}
	return out
}

func indexFromSnapshotV2(s indexSnapshotV2) (*textIndex, bool) {
	ix := newTextIndex()
	ix.names = append([]string(nil), s.Docs...)
	for id, name := range ix.names {
		if name == "" {
			ix.free = append(ix.free, docID(id))
			continue
		}
		ix.ids[name] = docID(id)
	}
	restore := func(src map[string][]uint32, dst map[string][]docID, reverse map[docID][]string) bool {
		for key, list := range src {
			ids := make([]docID, len(list))
			for i, raw := range list {
				if int(raw) >= len(ix.names) || ix.names[raw] == "" {
					return false
				}
				ids[i] = docID(raw)
				reverse[docID(raw)] = append(reverse[docID(raw)], key)
			}
			dst[key] = ids
		}
		return true
	}
	if !restore(s.Postings, ix.postings, ix.docTokens) {
		return nil, false
	}
	if !restore(s.Elements, ix.elements, ix.docElements) {
		return nil, false
	}
	return ix, true
}

// loadIndexSnapshotV1 decodes the original name-list format written by
// older engines into the compact representation.
func (db *DB) loadIndexSnapshotV1() map[string]*textIndex {
	data, ok, err := db.store.GetMeta(indexMetaKeyV1)
	if err != nil || !ok {
		return nil
	}
	var snap map[string]indexSnapshotV1
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return nil
	}
	out := make(map[string]*textIndex, len(snap))
	for col, s := range snap {
		ix := newTextIndex()
		for tok, names := range s.Postings {
			for _, name := range names {
				id := ix.intern(name)
				ix.postings[tok] = insertSorted(ix.postings[tok], id)
				ix.docTokens[id] = append(ix.docTokens[id], tok)
			}
		}
		for el, names := range s.Elements {
			for _, name := range names {
				id := ix.intern(name)
				ix.elements[el] = insertSorted(ix.elements[el], id)
				ix.docElements[id] = append(ix.docElements[id], el)
			}
		}
		out[col] = ix
	}
	return out
}

func idsToUint32(in []docID) []uint32 {
	out := make([]uint32, len(in))
	for i, id := range in {
		out[i] = uint32(id)
	}
	return out
}
