package engine

import (
	"bytes"
	"encoding/gob"
	"sort"
)

// Index snapshots: the in-memory indexes are serialized into a metadata
// record of the store on Sync/Close. Because the store's catalog is
// persisted at the same moments, a snapshot read back at Open always
// describes exactly the cataloged documents — a crash between syncs loses
// the un-synced documents and their index entries together.
//
// The v3 format adds the path summary and value index on top of v2's
// interned doc-name table; v2 (docID posting lists, no paths) and the
// original v1 (token → sorted doc-name lists) are still decoded for
// stores written by older engines — their indexes come up with
// pathsBuilt=false and the path structures are rebuilt lazily on first
// use. A snapshot in no known format, or one not covering every cataloged
// collection, triggers a rebuild scan — loading never errors.

const (
	indexMetaKeyV1 = "engine:index:v1"
	indexMetaKeyV2 = "engine:index:v2"
	indexMetaKeyV3 = "engine:index:v3"
)

// indexSnapshotV1 is the original serialized form of one collection's
// indexes: posting lists of document names.
type indexSnapshotV1 struct {
	Postings map[string][]string
	Elements map[string][]string
}

// indexSnapshotV2 is the compact form: the doc-name table ("" marks a
// recycled docID slot) plus posting lists of table offsets.
type indexSnapshotV2 struct {
	Docs     []string
	Postings map[string][]uint32
	Elements map[string][]uint32
}

// indexSnapshotV3 extends v2 with the path summary (per label path:
// sorted doc list + parallel node counts) and the value index (per label
// path: values with their doc lists, plus over-cap overflow docs).
// PathsBuilt false records an index whose path half was never built (the
// engine ran only pre-v3-style queries since a v1/v2 load); loading such
// a snapshot schedules the same lazy rebuild.
type indexSnapshotV3 struct {
	Docs     []string
	Postings map[string][]uint32
	Elements map[string][]uint32

	PathsBuilt bool
	PathDocs   map[string][]uint32
	PathCounts map[string][]uint32
	Values     map[string][]valueSnapV3
	Overflow   map[string][]uint32
}

// valueSnapV3 is one distinct value at a path with its doc list.
type valueSnapV3 struct {
	Value string
	Docs  []uint32
}

func (db *DB) saveIndexSnapshot() error {
	db.mu.RLock()
	indexes := make(map[string]*docIndex, len(db.idx))
	for col, ix := range db.idx {
		indexes[col] = ix
	}
	db.mu.RUnlock()

	snap := make(map[string]indexSnapshotV3, len(indexes))
	for col, ix := range indexes {
		snap[col] = ix.snapshot()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return err
	}
	if err := db.store.PutMeta(indexMetaKeyV3, buf.Bytes()); err != nil {
		return err
	}
	// Drop any stale older records so a failed v3 decode can never
	// resurrect an older index state.
	if err := db.store.PutMeta(indexMetaKeyV2, nil); err != nil {
		return err
	}
	return db.store.PutMeta(indexMetaKeyV1, nil)
}

// snapshot captures one index's serializable state under its lock.
func (ix *docIndex) snapshot() indexSnapshotV3 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	s := indexSnapshotV3{
		Docs:       append([]string(nil), ix.names...),
		Postings:   make(map[string][]uint32, len(ix.postings)),
		Elements:   make(map[string][]uint32, len(ix.elements)),
		PathsBuilt: ix.pathsBuilt,
	}
	for tok, list := range ix.postings {
		s.Postings[tok] = idsToUint32(list)
	}
	for name, list := range ix.elements {
		s.Elements[name] = idsToUint32(list)
	}
	if !ix.pathsBuilt {
		// The path half was never built; the loader will schedule the same
		// lazy rebuild this index is still waiting for.
		return s
	}
	s.PathDocs = make(map[string][]uint32, len(ix.paths))
	s.PathCounts = make(map[string][]uint32, len(ix.paths))
	s.Values = make(map[string][]valueSnapV3, len(ix.values))
	s.Overflow = map[string][]uint32{}
	for key, p := range ix.paths {
		s.PathDocs[key] = idsToUint32(p.ids)
		s.PathCounts[key] = append([]uint32(nil), p.counts...)
	}
	for key, vl := range ix.values {
		vs := make([]valueSnapV3, 0, len(vl.entries))
		for _, e := range vl.entries {
			vs = append(vs, valueSnapV3{Value: e.raw, Docs: idsToUint32(e.ids)})
		}
		if len(vs) > 0 {
			s.Values[key] = vs
		}
		if len(vl.overflow) > 0 {
			s.Overflow[key] = idsToUint32(vl.overflow)
		}
	}
	return s
}

// loadIndexSnapshot restores the indexes from the persisted snapshot;
// it reports false (leaving db.idx empty) when none exists or it cannot
// be decoded, in which case the caller rebuilds by scanning.
func (db *DB) loadIndexSnapshot() bool {
	loaded := db.loadIndexSnapshotV3()
	if loaded == nil {
		loaded = db.loadIndexSnapshotV2()
	}
	if loaded == nil {
		loaded = db.loadIndexSnapshotV1()
	}
	if loaded == nil {
		return false
	}
	// Every cataloged collection must be covered, or the snapshot is
	// stale (e.g. a collection created without a later Sync).
	for _, col := range db.store.Collections() {
		if _, covered := loaded[col]; !covered {
			return false
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for col, ix := range loaded {
		if !db.store.HasCollection(col) {
			continue // dropped after the snapshot was taken
		}
		db.idx[col] = ix
	}
	return true
}

func (db *DB) loadIndexSnapshotV3() map[string]*docIndex {
	data, ok, err := db.store.GetMeta(indexMetaKeyV3)
	if err != nil || !ok {
		return nil
	}
	var snap map[string]indexSnapshotV3
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return nil
	}
	out := make(map[string]*docIndex, len(snap))
	for col, s := range snap {
		ix, ok := indexFromSnapshotV3(s)
		if !ok {
			return nil // corrupt references: rebuild everything
		}
		out[col] = ix
	}
	return out
}

func indexFromSnapshotV3(s indexSnapshotV3) (*docIndex, bool) {
	ix, ok := indexFromSnapshotV2(indexSnapshotV2{Docs: s.Docs, Postings: s.Postings, Elements: s.Elements})
	if !ok {
		return nil, false
	}
	if !s.PathsBuilt {
		ix.pathsBuilt = false
		return ix, true
	}
	checkIDs := func(list []uint32) ([]docID, bool) {
		ids := make([]docID, len(list))
		for i, raw := range list {
			if int(raw) >= len(ix.names) || ix.names[raw] == "" {
				return nil, false
			}
			ids[i] = docID(raw)
		}
		return ids, true
	}
	// refs[id][key] accumulates each doc's reverse record while the three
	// path maps are decoded.
	refs := map[docID]map[string]*docPathRef{}
	ref := func(id docID, key string, create bool) *docPathRef {
		m := refs[id]
		if m == nil {
			if !create {
				return nil
			}
			m = map[string]*docPathRef{}
			refs[id] = m
		}
		r := m[key]
		if r == nil {
			if !create {
				return nil
			}
			r = &docPathRef{path: key}
			m[key] = r
		}
		return r
	}
	for key, docs := range s.PathDocs {
		counts := s.PathCounts[key]
		if len(counts) != len(docs) {
			return nil, false
		}
		ids, ok := checkIDs(docs)
		if !ok {
			return nil, false
		}
		p := &pathPosting{comps: parsePathKey(key), ids: ids, counts: append([]uint32(nil), counts...)}
		p.sortByID() // defensive: stored sorted, but sortedness is an invariant
		ix.paths[key] = p
		for _, id := range ids {
			ref(id, key, true)
		}
	}
	for key, vs := range s.Values {
		if _, known := s.PathDocs[key]; !known {
			return nil, false // values at a path the summary does not know
		}
		vl := &valueList{entries: make([]valueEntry, 0, len(vs))}
		for _, v := range vs {
			ids, ok := checkIDs(v.Docs)
			if !ok {
				return nil, false
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			e := newValueEntry(v.Value)
			e.ids = ids
			vl.entries = append(vl.entries, e)
			for _, id := range ids {
				r := ref(id, key, false)
				if r == nil {
					return nil, false // a value for a doc the path summary lacks
				}
				r.values = append(r.values, v.Value)
			}
		}
		sort.Slice(vl.entries, func(i, j int) bool { return vl.entries[i].raw < vl.entries[j].raw })
		vl.numDirty = true
		ix.values[key] = vl
	}
	for key, docs := range s.Overflow {
		if _, known := s.PathDocs[key]; !known {
			return nil, false
		}
		ids, ok := checkIDs(docs)
		if !ok {
			return nil, false
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		vl := ix.values[key]
		if vl == nil {
			vl = &valueList{}
			ix.values[key] = vl
		}
		vl.overflow = ids
		for _, id := range ids {
			r := ref(id, key, false)
			if r == nil {
				return nil, false
			}
			r.overflow = true
		}
	}
	for id, m := range refs {
		list := make([]docPathRef, 0, len(m))
		for _, r := range m {
			list = append(list, *r)
		}
		ix.docPaths[id] = list
	}
	return ix, true
}

func (db *DB) loadIndexSnapshotV2() map[string]*docIndex {
	data, ok, err := db.store.GetMeta(indexMetaKeyV2)
	if err != nil || !ok {
		return nil
	}
	var snap map[string]indexSnapshotV2
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return nil
	}
	out := make(map[string]*docIndex, len(snap))
	for col, s := range snap {
		ix, ok := indexFromSnapshotV2(s)
		if !ok {
			return nil // corrupt references: rebuild everything
		}
		ix.pathsBuilt = false // pre-v3: path structures rebuilt lazily
		out[col] = ix
	}
	return out
}

func indexFromSnapshotV2(s indexSnapshotV2) (*docIndex, bool) {
	ix := newDocIndex()
	ix.names = append([]string(nil), s.Docs...)
	for id, name := range ix.names {
		if name == "" {
			ix.free = append(ix.free, docID(id))
			continue
		}
		ix.ids[name] = docID(id)
	}
	restore := func(src map[string][]uint32, dst map[string][]docID, reverse map[docID][]string) bool {
		for key, list := range src {
			ids := make([]docID, len(list))
			for i, raw := range list {
				if int(raw) >= len(ix.names) || ix.names[raw] == "" {
					return false
				}
				ids[i] = docID(raw)
				reverse[docID(raw)] = append(reverse[docID(raw)], key)
			}
			dst[key] = ids
		}
		return true
	}
	if !restore(s.Postings, ix.postings, ix.docTokens) {
		return nil, false
	}
	if !restore(s.Elements, ix.elements, ix.docElements) {
		return nil, false
	}
	return ix, true
}

// loadIndexSnapshotV1 decodes the original name-list format written by
// older engines into the compact representation.
func (db *DB) loadIndexSnapshotV1() map[string]*docIndex {
	data, ok, err := db.store.GetMeta(indexMetaKeyV1)
	if err != nil || !ok {
		return nil
	}
	var snap map[string]indexSnapshotV1
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return nil
	}
	out := make(map[string]*docIndex, len(snap))
	for col, s := range snap {
		ix := newDocIndex()
		ix.pathsBuilt = false // pre-v3: path structures rebuilt lazily
		for tok, names := range s.Postings {
			for _, name := range names {
				id := ix.intern(name)
				ix.postings[tok] = insertSorted(ix.postings[tok], id)
				ix.docTokens[id] = append(ix.docTokens[id], tok)
			}
		}
		for el, names := range s.Elements {
			for _, name := range names {
				id := ix.intern(name)
				ix.elements[el] = insertSorted(ix.elements[el], id)
				ix.docElements[id] = append(ix.docElements[id], el)
			}
		}
		out[col] = ix
	}
	return out
}

func idsToUint32(in []docID) []uint32 {
	out := make([]uint32, len(in))
	for i, id := range in {
		out[i] = uint32(id)
	}
	return out
}
