package engine

import (
	"container/list"
	"sync"

	"partix/internal/xmltree"
)

// treeCache is an optional byte-budgeted LRU cache of decoded document
// trees. It is off by default: the paper's evaluation depends on paying
// the per-document parse cost on every query (DESIGN.md §5a), so only
// deployments that opt in via Options.TreeCacheBytes get caching.
//
// Entries are keyed by (collection, name, store generation). The engine
// bumps a collection's generation on every PutDocument, DeleteDocument
// and DropCollection, so entries for replaced or removed documents become
// unreachable immediately — that is the invalidation — and age out of the
// budget through normal LRU eviction.
type treeCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	ll     *list.List // front = most recently used
	items  map[treeKey]*list.Element
}

type treeKey struct {
	collection string
	name       string
	gen        uint64
}

type treeEntry struct {
	key  treeKey
	doc  *xmltree.Document
	size int64
}

func newTreeCache(budget int64) *treeCache {
	return &treeCache{budget: budget, ll: list.New(), items: map[treeKey]*list.Element{}}
}

// get returns the cached tree for key, promoting it to most recent.
func (c *treeCache) get(key treeKey) (*xmltree.Document, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*treeEntry).doc, true
}

// put inserts a decoded tree, evicting least-recently-used entries until
// the budget holds. Trees larger than the whole budget are not cached.
func (c *treeCache) put(key treeKey, doc *xmltree.Document) {
	size := treeFootprint(doc)
	if size > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&treeEntry{key: key, doc: doc, size: size})
	c.used += size
	for c.used > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*treeEntry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.used -= e.size
	}
}

// len reports the number of cached trees (for tests).
func (c *treeCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// treeFootprint estimates the in-memory size of a decoded tree: a fixed
// per-node overhead (struct, child-slice and pointer bookkeeping) plus
// the string payloads.
func treeFootprint(doc *xmltree.Document) int64 {
	const perNode = 96
	size := int64(len(doc.Name)) + perNode
	doc.Root.Walk(func(n *xmltree.Node) bool {
		size += perNode + int64(len(n.Name)+len(n.Value)) + 8*int64(len(n.Children))
		return true
	})
	return size
}
