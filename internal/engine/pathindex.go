package engine

import (
	"sort"
	"strings"

	"partix/internal/xmltree"
	"partix/internal/xquery"
)

// Path summary + value index (the DataGuide half of the docIndex).
//
// Every distinct root-to-node label path of a collection — e.g.
// "Item/Price" or "Item/@id"; components joined with "/", attributes
// prefixed "@" (both characters are illegal in XML names, so the encoding
// is unambiguous) — maps to the documents containing a node at that path
// plus per-doc node counts (pathPosting). Separately, each path maps to
// the distinct node string-values occurring at it, sorted, with typed
// (numeric) ordering maintained on the side (valueList), so equality and
// range constraints resolve to doc sets by binary search.
//
// Values are the XPath string value of the node (xmltree.Node.Text), the
// exact operand the evaluator's atomicCompare sees. Values longer than
// valueCap bytes are not stored; the doc instead lands on the path's
// overflow list, which every comparison result includes — pruning stays a
// sound superset, and index-only "false" answers are refused when an
// overflow doc might hold a match.

// valueCap bounds stored node values. Typical comparison operands (codes,
// dates, prices) are far below it; whole-subtree concatenations of large
// elements fall to the overflow list instead of bloating the index.
const valueCap = 128

// pathComp is one parsed component of a label path key.
type pathComp struct {
	name string
	attr bool
}

// pathPosting is the summary entry of one label path: the docs containing
// it (sorted) and, parallel to ids, how many nodes each doc has at the
// path — what makes count() probes answerable without decoding.
type pathPosting struct {
	comps  []pathComp
	ids    []docID
	counts []uint32
}

func (p *pathPosting) insert(id docID, count uint32) {
	i := sort.Search(len(p.ids), func(i int) bool { return p.ids[i] >= id })
	if i < len(p.ids) && p.ids[i] == id {
		p.counts[i] = count
		return
	}
	p.ids = append(p.ids, 0)
	copy(p.ids[i+1:], p.ids[i:])
	p.ids[i] = id
	p.counts = append(p.counts, 0)
	copy(p.counts[i+1:], p.counts[i:])
	p.counts[i] = count
}

func (p *pathPosting) remove(id docID) {
	i := sort.Search(len(p.ids), func(i int) bool { return p.ids[i] >= id })
	if i >= len(p.ids) || p.ids[i] != id {
		return
	}
	p.ids = append(p.ids[:i], p.ids[i+1:]...)
	p.counts = append(p.counts[:i], p.counts[i+1:]...)
}

// sortByID co-sorts ids and counts after bulk appends.
func (p *pathPosting) sortByID() { sort.Sort((*postingByID)(p)) }

type postingByID pathPosting

func (s *postingByID) Len() int           { return len(s.ids) }
func (s *postingByID) Less(i, j int) bool { return s.ids[i] < s.ids[j] }
func (s *postingByID) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.counts[i], s.counts[j] = s.counts[j], s.counts[i]
}

// valueEntry is one distinct node value at a path with its posting list.
// num/isNum cache the numeric interpretation under the evaluator's rule
// (ParseFloat of the space-trimmed string).
type valueEntry struct {
	raw   string
	num   float64
	isNum bool
	ids   []docID
}

// valueList is the value index of one path. entries is sorted by raw
// value (the string comparison order); numOrder indexes the numeric
// entries sorted by num (NaN excluded: under the evaluator's semantics a
// NaN never satisfies =, <, <=, > or >=) and is rebuilt lazily.
type valueList struct {
	entries  []valueEntry
	numOrder []int32
	numDirty bool
	overflow []docID // docs with an over-cap value at this path, sorted
}

// parseNum is the evaluator's numeric interpretation (xquery.ParseNumber),
// shared so the index can never drift from the comparison semantics.
func parseNum(raw string) (float64, bool) { return xquery.ParseNumber(raw) }

func newValueEntry(raw string) valueEntry {
	e := valueEntry{raw: raw}
	e.num, e.isNum = parseNum(raw)
	return e
}

// find returns the index of raw in entries and whether it is present.
func (vl *valueList) find(raw string) (int, bool) {
	i := sort.Search(len(vl.entries), func(i int) bool { return vl.entries[i].raw >= raw })
	return i, i < len(vl.entries) && vl.entries[i].raw == raw
}

func (vl *valueList) insert(raw string, id docID) {
	i, ok := vl.find(raw)
	if !ok {
		vl.entries = append(vl.entries, valueEntry{})
		copy(vl.entries[i+1:], vl.entries[i:])
		vl.entries[i] = newValueEntry(raw)
		vl.numDirty = true
	}
	vl.entries[i].ids = insertSorted(vl.entries[i].ids, id)
}

func (vl *valueList) remove(raw string, id docID) {
	i, ok := vl.find(raw)
	if !ok {
		return
	}
	vl.entries[i].ids = removeSorted(vl.entries[i].ids, id)
	if len(vl.entries[i].ids) == 0 {
		vl.entries = append(vl.entries[:i], vl.entries[i+1:]...)
		vl.numDirty = true
	}
}

func (vl *valueList) empty() bool {
	return len(vl.entries) == 0 && len(vl.overflow) == 0
}

// numeric returns numOrder, rebuilding it if stale.
func (vl *valueList) numeric() []int32 {
	if vl.numDirty || (vl.numOrder == nil && len(vl.entries) > 0) {
		vl.numOrder = vl.numOrder[:0]
		for i, e := range vl.entries {
			if e.isNum && e.num == e.num { // exclude NaN
				vl.numOrder = append(vl.numOrder, int32(i))
			}
		}
		es := vl.entries
		sort.Slice(vl.numOrder, func(a, b int) bool {
			return es[vl.numOrder[a]].num < es[vl.numOrder[b]].num
		})
		vl.numDirty = false
	}
	return vl.numOrder
}

// matchEntries calls fn for every entry whose value satisfies `value OP
// lit` under the evaluator's general-comparison semantics: numeric when
// both sides parse as numbers, raw string comparison otherwise. The
// matching sets resolve by binary search over the two sorted orders.
func (vl *valueList) matchEntries(op xquery.CmpOp, lit string, fn func(*valueEntry)) {
	litNum, litIsNum := parseNum(lit)
	if litIsNum && litNum != litNum {
		// A NaN literal: numeric values compare numerically against it and
		// never satisfy =, <, <=, > or >=; only non-numeric values fall
		// back to the string comparison.
		for i := range vl.entries {
			if !vl.entries[i].isNum && stringCmp(op, vl.entries[i].raw, lit) {
				fn(&vl.entries[i])
			}
		}
		return
	}
	if litIsNum {
		// Numeric entries compare numerically against the literal…
		num := vl.numeric()
		lo := sort.Search(len(num), func(i int) bool { return vl.entries[num[i]].num >= litNum })
		hi := sort.Search(len(num), func(i int) bool { return vl.entries[num[i]].num > litNum })
		var from, to int
		switch op {
		case xquery.CmpEq:
			from, to = lo, hi
		case xquery.CmpLt:
			from, to = 0, lo
		case xquery.CmpLe:
			from, to = 0, hi
		case xquery.CmpGt:
			from, to = hi, len(num)
		case xquery.CmpGe:
			from, to = lo, len(num)
		}
		for _, ei := range num[from:to] {
			fn(&vl.entries[ei])
		}
		// …and non-numeric entries fall back to string comparison.
		for i := range vl.entries {
			if !vl.entries[i].isNum && stringCmp(op, vl.entries[i].raw, lit) {
				fn(&vl.entries[i])
			}
		}
		return
	}
	// Non-numeric literal (including "NaN"): every comparison is a string
	// comparison, over the raw-sorted entries.
	lo, _ := vl.find(lit)
	hi := sort.Search(len(vl.entries), func(i int) bool { return vl.entries[i].raw > lit })
	var from, to int
	switch op {
	case xquery.CmpEq:
		from, to = lo, hi
	case xquery.CmpLt:
		from, to = 0, lo
	case xquery.CmpLe:
		from, to = 0, hi
	case xquery.CmpGt:
		from, to = hi, len(vl.entries)
	case xquery.CmpGe:
		from, to = lo, len(vl.entries)
	}
	for i := from; i < to; i++ {
		fn(&vl.entries[i])
	}
}

// stringCmp is the string-comparison branch of the shared general-
// comparison semantics: both operands presented as non-numeric, so
// xquery.CompareOperands resolves them lexicographically.
func stringCmp(op xquery.CmpOp, val, lit string) bool {
	bop, ok := xquery.CmpToBinaryOp(op)
	if !ok {
		return false
	}
	return xquery.CompareOperands(bop, xquery.Operand{Raw: val}, xquery.Operand{Raw: lit})
}

// docContrib is what one document contributes to the path structures,
// collected without holding any lock.
type docContrib struct {
	counts   map[string]uint32   // path key → node count
	values   map[string][]string // path key → distinct capped values
	overflow map[string]bool     // path keys with an over-cap value
}

// docPathRef is the reverse-map record making path removal proportional
// to the document's own paths.
type docPathRef struct {
	path     string
	values   []string
	overflow bool
}

// collectDocPaths walks a document and records, per label path, the node
// count and the distinct node values (the node's XPath string value,
// capped at valueCap).
func collectDocPaths(doc *xmltree.Document) *docContrib {
	c := &docContrib{
		counts:   map[string]uint32{},
		values:   map[string][]string{},
		overflow: map[string]bool{},
	}
	var visit func(n *xmltree.Node, key string)
	visit = func(n *xmltree.Node, key string) {
		c.counts[key]++
		if val, over := textCapped(n); over {
			c.overflow[key] = true
		} else {
			c.addValue(key, val)
		}
		for _, ch := range n.Children {
			switch ch.Kind {
			case xmltree.ElementNode:
				visit(ch, key+"/"+ch.Name)
			case xmltree.AttributeNode:
				akey := key + "/@" + ch.Name
				c.counts[akey]++
				if val, over := textCapped(ch); over {
					c.overflow[akey] = true
				} else {
					c.addValue(akey, val)
				}
			}
		}
	}
	visit(doc.Root, doc.Root.Name)
	return c
}

func (c *docContrib) addValue(key, val string) {
	for _, v := range c.values[key] {
		if v == val {
			return
		}
	}
	c.values[key] = append(c.values[key], val)
}

// textCapped computes a node's XPath string value exactly as
// xmltree.Node.Text does (text values in document order, attribute
// subtrees excluded), bailing out once the value exceeds valueCap.
func textCapped(n *xmltree.Node) (string, bool) {
	var sb strings.Builder
	over := appendTextCapped(n, &sb)
	return sb.String(), over
}

func appendTextCapped(n *xmltree.Node, sb *strings.Builder) bool {
	if n.Kind == xmltree.TextNode {
		sb.WriteString(n.Value)
		return sb.Len() > valueCap
	}
	for _, c := range n.Children {
		if c.Kind == xmltree.AttributeNode {
			continue // attribute values are not part of element content
		}
		if appendTextCapped(c, sb) {
			return true
		}
	}
	return false
}

// parsePathKey splits a stored key back into components ("/" join, "@"
// attribute prefix).
func parsePathKey(key string) []pathComp {
	parts := strings.Split(key, "/")
	comps := make([]pathComp, len(parts))
	for i, p := range parts {
		if strings.HasPrefix(p, "@") {
			comps[i] = pathComp{name: p[1:], attr: true}
		} else {
			comps[i] = pathComp{name: p}
		}
	}
	return comps
}

// matchLabelPath reports whether a root-to-node label path matches a
// pattern. The pattern mirrors the evaluator's step semantics exactly: a
// child step consumes one component; a descendant step (//) may match the
// context node itself — evalStep's Walk starts at the context node — or
// any deeper component. A node is selected by a predicate-free label path
// iff its label path matches (each node has exactly one label path, so
// summary counts count each node once).
func matchLabelPath(steps []xquery.LabelStep, comps []pathComp) bool {
	return matchFrom(steps, comps, 0, 0)
}

func matchFrom(steps []xquery.LabelStep, comps []pathComp, i, j int) bool {
	if i == len(steps) {
		return j == len(comps)
	}
	st := steps[i]
	if st.Descendant {
		// Self-match: at the query root the context is the virtual
		// #document wrapper, which only a "*" step matches (probe
		// extraction rejects that ambiguity; for pruning, accepting it is
		// sound — it can only widen the candidate set).
		if j == 0 {
			if st.Name == "*" && !st.Attr && matchFrom(steps, comps, i+1, 0) {
				return true
			}
		} else if compMatch(st, comps[j-1]) && matchFrom(steps, comps, i+1, j) {
			return true
		}
		for k := j; k < len(comps); k++ {
			if compMatch(st, comps[k]) && matchFrom(steps, comps, i+1, k+1) {
				return true
			}
		}
		return false
	}
	if j < len(comps) && compMatch(st, comps[j]) {
		return matchFrom(steps, comps, i+1, j+1)
	}
	return false
}

func compMatch(st xquery.LabelStep, c pathComp) bool {
	return st.Attr == c.attr && (st.Name == "*" || st.Name == c.name)
}

// --- mutation (callers hold ix.mu) ---

func (ix *docIndex) pathOrCreate(key string) *pathPosting {
	p := ix.paths[key]
	if p == nil {
		p = &pathPosting{comps: parsePathKey(key)}
		ix.paths[key] = p
	}
	return p
}

func (ix *docIndex) valuesOrCreate(key string) *valueList {
	vl := ix.values[key]
	if vl == nil {
		vl = &valueList{}
		ix.values[key] = vl
	}
	return vl
}

func (ix *docIndex) addPathsLocked(id docID, c *docContrib) {
	refs := make([]docPathRef, 0, len(c.counts))
	for key, count := range c.counts {
		ix.pathOrCreate(key).insert(id, count)
		ref := docPathRef{path: key, values: c.values[key], overflow: c.overflow[key]}
		if len(ref.values) > 0 || ref.overflow {
			vl := ix.valuesOrCreate(key)
			for _, raw := range ref.values {
				vl.insert(raw, id)
			}
			if ref.overflow {
				vl.overflow = insertSorted(vl.overflow, id)
			}
		}
		refs = append(refs, ref)
	}
	ix.docPaths[id] = refs
}

func (ix *docIndex) removePathsLocked(id docID) {
	for _, ref := range ix.docPaths[id] {
		if p := ix.paths[ref.path]; p != nil {
			p.remove(id)
			if len(p.ids) == 0 {
				delete(ix.paths, ref.path)
			}
		}
		if len(ref.values) == 0 && !ref.overflow {
			continue
		}
		vl := ix.values[ref.path]
		if vl == nil {
			continue
		}
		for _, raw := range ref.values {
			vl.remove(raw, id)
		}
		if ref.overflow {
			vl.overflow = removeSorted(vl.overflow, id)
		}
		if vl.empty() {
			delete(ix.values, ref.path)
		}
	}
	delete(ix.docPaths, id)
}

// pendPathLocked buffers a path mutation while the structures are not yet
// built; the lazy rebuild replays the buffer (nil contrib = removal).
func (ix *docIndex) pendPathLocked(name string, c *docContrib) {
	if ix.pathPending == nil {
		ix.pathPending = map[string]*docContrib{}
	}
	ix.pathPending[name] = c
}

// installPaths builds the path structures from per-document contributions
// (store scan overridden by the pending buffer) and marks them live. The
// caller holds rebuildMu but NOT ix.mu.
func (ix *docIndex) installPaths(contribs map[string]*docContrib) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.pathsBuilt {
		return
	}
	for name, c := range ix.pathPending {
		if c == nil {
			delete(contribs, name)
		} else {
			contribs[name] = c
		}
	}
	ix.pathPending = nil
	ix.pathsBuilt = true
	for name, c := range contribs {
		id, ok := ix.ids[name]
		if !ok {
			continue // raced with a remove after the scan; nothing to index
		}
		ix.addPathsLocked(id, c)
	}
}

// --- queries (callers hold ix.mu) ---

// pathExistsLocked returns the docs containing any node at a path
// matching the pattern.
func (ix *docIndex) pathExistsLocked(steps []xquery.LabelStep) map[docID]bool {
	set := map[docID]bool{}
	for _, p := range ix.paths {
		if matchLabelPath(steps, p.comps) {
			for _, id := range p.ids {
				set[id] = true
			}
		}
	}
	return set
}

// valueMatchesLocked returns the docs that may contain a node at the
// constraint's path whose value satisfies the comparison: the union of
// the matching value entries' postings plus every overflow doc of the
// matched paths (their values were not indexed, so they might match).
func (ix *docIndex) valueMatchesLocked(pc *xquery.PathConstraint) map[docID]bool {
	set := map[docID]bool{}
	for key, vl := range ix.values {
		p := ix.paths[key]
		if p == nil || !matchLabelPath(pc.Steps, p.comps) {
			continue
		}
		vl.matchEntries(pc.Op, pc.Literal, func(e *valueEntry) {
			for _, id := range e.ids {
				set[id] = true
			}
		})
		for _, id := range vl.overflow {
			set[id] = true
		}
	}
	return set
}

// countLocked answers a count probe: total nodes at paths matching the
// pattern; empty pattern counts whole documents.
func (ix *docIndex) countLocked(steps []xquery.LabelStep) int64 {
	if len(steps) == 0 {
		return int64(len(ix.ids))
	}
	var total int64
	for _, p := range ix.paths {
		if matchLabelPath(steps, p.comps) {
			for _, c := range p.counts {
				total += int64(c)
			}
		}
	}
	return total
}

// existsLocked answers an exists probe. ok=false means the indexes cannot
// decide: a matched path has overflow values that might satisfy the
// comparison.
func (ix *docIndex) existsLocked(p *xquery.PathProbe) (exists, ok bool) {
	if p.Value == nil {
		if len(p.Steps) == 0 {
			return len(ix.ids) > 0, true
		}
		for _, pp := range ix.paths {
			if matchLabelPath(p.Steps, pp.comps) && len(pp.ids) > 0 {
				return true, true
			}
		}
		return false, true
	}
	overflowSeen := false
	for key, vl := range ix.values {
		pp := ix.paths[key]
		if pp == nil || !matchLabelPath(p.Value.Steps, pp.comps) {
			continue
		}
		matched := false
		vl.matchEntries(p.Value.Op, p.Value.Literal, func(*valueEntry) { matched = true })
		if matched {
			return true, true
		}
		if len(vl.overflow) > 0 {
			overflowSeen = true
		}
	}
	if overflowSeen {
		return false, false
	}
	return false, true
}
