package engine

import (
	"testing"

	"partix/internal/xmltree"
)

func TestTreeCacheServesRepeatQueries(t *testing.T) {
	db := testDB(t, Options{TreeCacheBytes: 1 << 20})
	loadItems(t, db)
	db.ResetStats()

	// count() would be answered from the index without touching trees, so
	// exercise the cache with a query that must materialize every document.
	if _, err := db.Query(`collection("items")/Item/Code`); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.DocsDecoded != 4 || st.CacheMisses != 4 || st.CacheHits != 0 {
		t.Fatalf("cold stats = %+v", st)
	}

	if _, err := db.Query(`collection("items")/Item/Code`); err != nil {
		t.Fatal(err)
	}
	st = db.Stats()
	if st.CacheHits != 4 {
		t.Fatalf("warm query hit %d trees, want 4: %+v", st.CacheHits, st)
	}
	if st.DocsDecoded != 4 {
		t.Fatalf("warm query re-decoded: %+v", st)
	}

	// A pruned query over already-cached documents also hits.
	if _, err := db.Query(`for $i in collection("items")/Item where $i/Section = "DVD" return $i/Code`); err != nil {
		t.Fatal(err)
	}
	if st = db.Stats(); st.CacheHits != 5 || st.DocsDecoded != 4 {
		t.Fatalf("pruned warm query stats = %+v", st)
	}
}

func TestCacheDisabledByDefault(t *testing.T) {
	db := testDB(t, Options{})
	loadItems(t, db)
	db.ResetStats()
	for i := 0; i < 2; i++ {
		if _, err := db.Query(`collection("items")/Item/Code`); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Fatalf("cache counters moved with caching off: %+v", st)
	}
	if st.DocsDecoded != 8 {
		t.Fatalf("decoded %d docs, want 8 (4 per query, no cache)", st.DocsDecoded)
	}
}

// TestTreeCacheInvalidation: every mutation bumps the collection's
// generation, so cached trees of the old state are never served again.
func TestTreeCacheInvalidation(t *testing.T) {
	db := testDB(t, Options{TreeCacheBytes: 1 << 20})
	loadItems(t, db)
	warm := func() {
		t.Helper()
		if _, err := db.Query(`collection("items")/Item/Code`); err != nil {
			t.Fatal(err)
		}
	}
	warm()
	warm() // populate, then confirm hits flow
	if st := db.Stats(); st.CacheHits == 0 {
		t.Fatalf("cache never hit: %+v", st)
	}

	// PutDocument: the replaced version must not be served.
	hits := db.Stats().CacheHits
	if err := db.PutDocument("items", xmltree.MustParseString("i2",
		`<Item id="2"><Code>I2</Code><Name>n2</Name><Description>now vinyl</Description><Section>Vinyl</Section></Item>`)); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`for $i in collection("items")/Item where $i/Section = "Vinyl" return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("replacement not visible: %d results", len(res))
	}
	if db.Stats().CacheHits != hits {
		t.Fatal("stale tree served after PutDocument")
	}

	// DeleteDocument: remaining documents are re-fetched under the new
	// generation; the deleted one is gone.
	warm()
	hits = db.Stats().CacheHits
	if err := db.DeleteDocument("items", "i1"); err != nil {
		t.Fatal(err)
	}
	res, err = db.Query(`collection("items")/Item/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d docs after delete, want 3", len(res))
	}
	if db.Stats().CacheHits != hits {
		t.Fatal("stale tree served after DeleteDocument")
	}

	// DropCollection: the collection is gone entirely.
	if err := db.DropCollection("items"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`collection("items")/Item`); err == nil {
		t.Fatal("query over dropped collection succeeded")
	}
}

func TestTreeCacheLRUEviction(t *testing.T) {
	mk := func(name string) *xmltree.Document {
		return xmltree.MustParseString(name, `<A><B>some text payload</B></A>`)
	}
	one := treeFootprint(mk("d1"))
	c := newTreeCache(2*one + one/2) // room for two same-shape trees
	key := func(name string) treeKey { return treeKey{collection: "c", name: name, gen: 1} }

	c.put(key("d1"), mk("d1"))
	c.put(key("d2"), mk("d2"))
	c.put(key("d3"), mk("d3")) // evicts d1, the least recently used
	if c.len() != 2 {
		t.Fatalf("cache holds %d trees, want 2", c.len())
	}
	if _, ok := c.get(key("d1")); ok {
		t.Fatal("d1 not evicted")
	}
	if _, ok := c.get(key("d2")); !ok {
		t.Fatal("d2 evicted")
	}

	// get promoted d2, so inserting d4 must evict d3.
	c.put(key("d4"), mk("d4"))
	if _, ok := c.get(key("d3")); ok {
		t.Fatal("d3 survived despite d2's promotion")
	}
	if _, ok := c.get(key("d2")); !ok {
		t.Fatal("promoted d2 evicted")
	}

	// A tree larger than the whole budget is not cached.
	tiny := newTreeCache(one - 1)
	tiny.put(key("big"), mk("big"))
	if tiny.len() != 0 {
		t.Fatal("oversized tree cached")
	}
}
