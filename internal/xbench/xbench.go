// Package xbench is the XBench substitute: it generates the text-centric
// article collection the paper's vertical-fragmentation experiment
// (XBenchVer) runs on, and declares the vertical scheme
// F1 = π/article/prolog, F2 = π/article/body, F3 = π/article/epilog of
// Section 5.
package xbench

import (
	"partix/internal/fragmentation"
	"partix/internal/toxgene"
	"partix/internal/xmlschema"
	"partix/internal/xmltree"
)

// Genres label articles; prolog queries select on them.
var Genres = []string{"databases", "networks", "systems", "theory", "graphics", "security"}

// Countries appear in epilogs.
var Countries = []string{"Brazil", "Canada", "France", "Japan", "Germany"}

// Config parameterizes the article collection. The paper's XBenchVer
// documents are 5–15 MB; Sections/Paragraphs scale ours to a laptop-sized
// equivalent with the same three-part shape (metadata-light prolog and
// epilog, text-heavy body).
type Config struct {
	// Docs is the number of articles.
	Docs int
	// Seed makes the collection reproducible.
	Seed int64
	// Sections is the number of body sections per article (default 10).
	Sections int
	// Paragraphs per section (default 12).
	Paragraphs int
	// Collection names the result; defaults to "articles".
	Collection string
}

func (c Config) withDefaults() Config {
	if c.Sections == 0 {
		c.Sections = 10
	}
	if c.Paragraphs == 0 {
		c.Paragraphs = 12
	}
	if c.Collection == "" {
		c.Collection = "articles"
	}
	return c
}

// Generate builds the article collection.
func Generate(cfg Config) *xmltree.Collection {
	cfg = cfg.withDefaults()

	prolog := toxgene.Elem("prolog",
		toxgene.Once(toxgene.Leaf("title", toxgene.Words(toxgene.DefaultWordPool, 4, 9))),
		toxgene.Once(toxgene.Elem("authors",
			toxgene.Rep(toxgene.Leaf("author", toxgene.Words(toxgene.DefaultWordPool, 2, 2)), 1, 4))),
		toxgene.Once(toxgene.Leaf("genre", toxgene.Choice(Genres...))),
		toxgene.Once(toxgene.Elem("keywords",
			toxgene.Rep(toxgene.Leaf("keyword", toxgene.Words(toxgene.DefaultWordPool, 1, 1)), 2, 6))),
		toxgene.Once(toxgene.Leaf("date", toxgene.Date(6))),
	)

	section := toxgene.Elem("section",
		toxgene.Once(toxgene.Leaf("title", toxgene.Words(toxgene.DefaultWordPool, 3, 6))),
		toxgene.Rep(toxgene.Leaf("p", toxgene.Words(toxgene.DefaultWordPool, 30, 60)), cfg.Paragraphs, cfg.Paragraphs),
	)
	body := toxgene.Elem("body",
		toxgene.Maybe(toxgene.Leaf("abstract", toxgene.Words(toxgene.DefaultWordPool, 25, 40)), 80),
		toxgene.Rep(section, cfg.Sections, cfg.Sections),
	)

	epilog := toxgene.Elem("epilog",
		toxgene.Once(toxgene.Elem("references",
			toxgene.Rep(toxgene.Leaf("a_id", toxgene.Seq("ref-%03d")), 3, 12))),
		toxgene.Maybe(toxgene.Leaf("acknowledgements", toxgene.Words(toxgene.DefaultWordPool, 8, 16)), 60),
		toxgene.Maybe(toxgene.Leaf("country", toxgene.Choice(Countries...)), 90),
	)

	article := toxgene.Elem("article",
		toxgene.Once(prolog),
		toxgene.Once(body),
		toxgene.Once(epilog),
	)
	article.Attrs = []toxgene.AttrTemplate{{Name: "id", Gen: toxgene.DocSeq("a%05d")}}

	return toxgene.GenerateCollection(article, cfg.Collection, "article%05d", cfg.Docs, cfg.Seed)
}

// VerticalScheme is the XBenchVer fragmentation of Section 5:
// F1papers = π/article/prolog, F2papers = π/article/body,
// F3papers = π/article/epilog.
func VerticalScheme(collection string) *fragmentation.Scheme {
	if collection == "" {
		collection = "articles"
	}
	return &fragmentation.Scheme{
		Collection: collection,
		Schema:     xmlschema.XBenchArticle(),
		RootType:   "article",
		Fragments: []*fragmentation.Fragment{
			fragmentation.MustVertical("F1papers", "/article/prolog"),
			fragmentation.MustVertical("F2papers", "/article/body"),
			fragmentation.MustVertical("F3papers", "/article/epilog"),
		},
	}
}
