package xbench

import (
	"testing"

	"partix/internal/xmlschema"
	"partix/internal/xmltree"
)

func TestGenerateValidatesAgainstSchema(t *testing.T) {
	c := Generate(Config{Docs: 8, Seed: 1})
	if c.Len() != 8 {
		t.Fatalf("docs = %d", c.Len())
	}
	if err := xmlschema.XBenchArticle().ValidateCollection(c, "article"); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateBodyDominates(t *testing.T) {
	c := Generate(Config{Docs: 3, Seed: 2})
	for _, d := range c.Docs {
		body := xmltree.NodeSerializedSize(d.Root.Child("body"))
		prolog := xmltree.NodeSerializedSize(d.Root.Child("prolog"))
		epilog := xmltree.NodeSerializedSize(d.Root.Child("epilog"))
		if body < 5*prolog || body < 5*epilog {
			t.Fatalf("body %d should dwarf prolog %d and epilog %d (text-centric)", body, prolog, epilog)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Docs: 4, Seed: 7})
	b := Generate(Config{Docs: 4, Seed: 7})
	if !xmltree.EqualCollections(a, b) {
		t.Fatal("same seed differs")
	}
}

func TestVerticalSchemeCorrectOnGeneratedData(t *testing.T) {
	c := Generate(Config{Docs: 5, Seed: 3, Sections: 3, Paragraphs: 4})
	scheme := VerticalScheme(c.Name)
	if err := scheme.Check(c); err != nil {
		t.Fatal(err)
	}
	frags, err := scheme.Apply(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 3 {
		t.Fatalf("fragments = %d", len(frags))
	}
	// Every article appears in every fragment (all parts are mandatory).
	for _, fc := range frags {
		if fc.Len() != c.Len() {
			t.Fatalf("%s holds %d of %d docs", fc.Name, fc.Len(), c.Len())
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Sections == 0 || cfg.Paragraphs == 0 || cfg.Collection != "articles" {
		t.Fatalf("defaults: %+v", cfg)
	}
	if VerticalScheme("").Collection != "articles" {
		t.Fatal("default scheme collection")
	}
}
