package xmlschema

import (
	"fmt"

	"partix/internal/xmltree"
)

// ValidateDocument checks that doc satisfies the type named rootType: the
// root element is labeled rootType and every subtree matches its type's
// content model and attribute declarations.
func (s *Schema) ValidateDocument(doc *xmltree.Document, rootType string) error {
	t := s.Type(rootType)
	if t == nil {
		return fmt.Errorf("xmlschema: unknown type %q", rootType)
	}
	if doc.Root == nil {
		return fmt.Errorf("xmlschema: document %q has no root", doc.Name)
	}
	if doc.Root.Name != t.ElementName() {
		return fmt.Errorf("xmlschema: document %q root is %q, want %q", doc.Name, doc.Root.Name, t.ElementName())
	}
	if err := s.validateNode(doc.Root, t); err != nil {
		return fmt.Errorf("document %q: %w", doc.Name, err)
	}
	return nil
}

func (s *Schema) validateNode(n *xmltree.Node, t *ElementType) error {
	// Attributes: all present ones declared, all required ones present.
	for _, a := range n.Attributes() {
		if t.Attr(a.Name) == nil {
			return fmt.Errorf("%s: undeclared attribute %q", n.Path(), a.Name)
		}
	}
	for _, decl := range t.Attributes {
		if _, ok := n.Attr(decl.Name); decl.Required && !ok {
			return fmt.Errorf("%s: missing required attribute %q", n.Path(), decl.Name)
		}
	}

	els := n.ElementChildren()
	switch t.Content {
	case TextContent:
		if len(els) > 0 {
			return fmt.Errorf("%s: type %q holds text but has element children", n.Path(), t.Name)
		}
		return nil
	case EmptyContent:
		if len(els) > 0 || n.Text() != "" {
			return fmt.Errorf("%s: type %q must be empty", n.Path(), t.Name)
		}
		return nil
	}

	// ElementContent: match children against the ordered particle sequence.
	// Children with the same name must be contiguous and each particle's
	// count must satisfy its cardinality.
	i := 0
	for _, p := range t.Children {
		count := 0
		for i < len(els) && els[i].Name == p.Type.ElementName() {
			if err := s.validateNode(els[i], p.Type); err != nil {
				return err
			}
			count++
			i++
		}
		if !p.Occurs.Contains(count) {
			return fmt.Errorf("%s: child %q occurs %d times, want %v", n.Path(), p.Type.ElementName(), count, p.Occurs)
		}
	}
	if i < len(els) {
		return fmt.Errorf("%s: unexpected child %q", n.Path(), els[i].Name)
	}
	return nil
}

// ValidateCollection checks that the collection is homogeneous for
// rootType: every document satisfies the type (paper: C = ⟨S, τroot⟩).
func (s *Schema) ValidateCollection(c *xmltree.Collection, rootType string) error {
	for _, d := range c.Docs {
		if err := s.ValidateDocument(d, rootType); err != nil {
			return fmt.Errorf("collection %q not homogeneous: %w", c.Name, err)
		}
	}
	return nil
}

// CollectionSpec names a homogeneous collection C := ⟨S, τroot⟩ over a
// schema, as in the paper's Figure 1(b). RootType is the element type every
// document in the collection satisfies; SD repositories have exactly one
// document.
type CollectionSpec struct {
	Schema   *Schema
	RootType string
	SD       bool
}

// Validate checks a concrete collection against the spec.
func (cs CollectionSpec) Validate(c *xmltree.Collection) error {
	if cs.SD && c.Len() != 1 {
		return fmt.Errorf("xmlschema: collection %q declared SD but has %d documents", c.Name, c.Len())
	}
	return cs.Schema.ValidateCollection(c, cs.RootType)
}
