package xmlschema

import (
	"bufio"
	"fmt"
	"strings"
)

// ParseSchema reads a compact, DTD-like schema notation:
//
//	# comments and blank lines are ignored
//	Store    = Sections Items Employees
//	Sections = SectionDef+
//	Items    = Item*
//	Item     = Code Name Description Section Release? Characteristics* PictureList?
//	Item     @ id
//	SectionDef as Section = Code Name
//
// Each "Name = child…" line declares an element type with an ordered
// sequence of children; the suffixes `?`, `*`, `+` set the cardinality
// (none means exactly one). "Name @ attr…" declares attributes; a
// trailing `!` marks one required. "TypeName as Label = …" declares a
// type whose element name differs from its unique type name (the paper's
// Figure 1(a) uses the element name Section for two structures). Any name
// that never appears on a left-hand side is a text element.
func ParseSchema(name, text string) (*Schema, error) {
	s := New(name)
	declared := map[string]bool{}

	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.Contains(line, "="):
			if err := parseElementLine(s, declared, line); err != nil {
				return nil, fmt.Errorf("xmlschema: line %d: %w", lineNo, err)
			}
		case strings.Contains(line, "@"):
			if err := parseAttrLine(s, line); err != nil {
				return nil, fmt.Errorf("xmlschema: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("xmlschema: line %d: expected '=' or '@' in %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	// Every name only ever used as a child is a text element.
	for tname, t := range s.types {
		if !declared[tname] {
			Text(t)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseElementLine(s *Schema, declared map[string]bool, line string) error {
	lhs, rhs, _ := strings.Cut(line, "=")
	typeName := strings.TrimSpace(lhs)
	label := ""
	if base, lab, ok := strings.Cut(typeName, " as "); ok {
		typeName = strings.TrimSpace(base)
		label = strings.TrimSpace(lab)
	}
	if typeName == "" || strings.ContainsAny(typeName, " \t") {
		return fmt.Errorf("bad type name %q", typeName)
	}
	if declared[typeName] {
		return fmt.Errorf("type %q declared twice", typeName)
	}
	declared[typeName] = true

	t := s.Element(typeName)
	if label != "" {
		t.Label = label
	}
	t.Content = ElementContent
	for _, tok := range strings.Fields(rhs) {
		occurs := One
		switch {
		case strings.HasSuffix(tok, "?"):
			occurs = Optional
			tok = strings.TrimSuffix(tok, "?")
		case strings.HasSuffix(tok, "*"):
			occurs = ZeroOrMore
			tok = strings.TrimSuffix(tok, "*")
		case strings.HasSuffix(tok, "+"):
			occurs = OneOrMore
			tok = strings.TrimSuffix(tok, "+")
		}
		if tok == "" {
			return fmt.Errorf("empty child name on %q", line)
		}
		t.Children = append(t.Children, P(s.Element(tok), occurs))
	}
	return nil
}

func parseAttrLine(s *Schema, line string) error {
	lhs, rhs, _ := strings.Cut(line, "@")
	typeName := strings.TrimSpace(lhs)
	t := s.Type(typeName)
	if t == nil {
		return fmt.Errorf("attributes for undeclared type %q (declare its '=' line first)", typeName)
	}
	for _, tok := range strings.Fields(rhs) {
		required := strings.HasSuffix(tok, "!")
		tok = strings.TrimSuffix(tok, "!")
		if tok == "" {
			return fmt.Errorf("empty attribute name on %q", line)
		}
		t.Attributes = append(t.Attributes, AttrDecl{Name: tok, Required: required})
	}
	return nil
}
