package xmlschema

import (
	"testing"

	"partix/internal/xmltree"
)

const storeSchemaText = `
# the paper's Figure 1(a), in the compact notation
Store      = Sections Items Employees
Sections   = SectionDef+
SectionDef as Section = Code Name
Items      = Item*
Item       = Code Name Description Section Release? Characteristics* PictureList? PricesHistory?
Item       @ id
PictureList   = Picture+
Picture       = Name Description? ModificationDate OriginalPath ThumbPath
PricesHistory = PriceHistory+
PriceHistory  = Price ModificationDate
Employees     = Employee+
`

func TestParseSchemaEquivalentToBuiltin(t *testing.T) {
	parsed, err := ParseSchema("virtual_store", storeSchemaText)
	if err != nil {
		t.Fatal(err)
	}
	builtin := VirtualStore()

	// Both accept the same documents.
	docs := []string{
		`<Store><Sections><Section><Code>c</Code><Name>n</Name></Section></Sections><Items/><Employees><Employee>e</Employee></Employees></Store>`,
		`<Store><Sections><Section><Code>c</Code><Name>n</Name></Section></Sections><Items><Item id="1"><Code>c</Code><Name>n</Name><Description>d</Description><Section>CD</Section></Item></Items><Employees><Employee>e</Employee></Employees></Store>`,
	}
	for _, xml := range docs {
		doc := xmltree.MustParseString("d", xml)
		if err := parsed.ValidateDocument(doc, "Store"); err != nil {
			t.Errorf("parsed schema rejects: %v", err)
		}
		if err := builtin.ValidateDocument(doc, "Store"); err != nil {
			t.Errorf("builtin schema rejects: %v", err)
		}
	}
	// And both reject the same violations.
	bad := xmltree.MustParseString("d",
		`<Store><Items/><Sections><Section><Code>c</Code><Name>n</Name></Section></Sections><Employees><Employee>e</Employee></Employees></Store>`)
	if parsed.ValidateDocument(bad, "Store") == nil {
		t.Error("parsed schema accepted out-of-order children")
	}
}

func TestParseSchemaCardinalities(t *testing.T) {
	s, err := ParseSchema("s", `
root = one opt? many* some+
`)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Type("root")
	want := []Occurs{One, Optional, ZeroOrMore, OneOrMore}
	for i, p := range r.Children {
		if p.Occurs != want[i] {
			t.Errorf("child %d occurs %v, want %v", i, p.Occurs, want[i])
		}
	}
	// Undeclared children default to text elements.
	if s.Type("one").Content != TextContent {
		t.Error("leaf not text")
	}
}

func TestParseSchemaAttributes(t *testing.T) {
	s, err := ParseSchema("s", `
root = child
root @ id! note
`)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Type("root")
	if len(r.Attributes) != 2 || !r.Attributes[0].Required || r.Attributes[1].Required {
		t.Fatalf("attributes = %+v", r.Attributes)
	}
}

func TestParseSchemaLabelAlias(t *testing.T) {
	// The same element name with two structures under different parents —
	// the Figure 1(a) Section case.
	s, err := ParseSchema("s", `
root  = left right
left  = Wrapper
right = Leaf
Wrapper as Leaf = Inner
`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Type("Wrapper").ElementName() != "Leaf" {
		t.Fatal("alias not applied")
	}
	doc := xmltree.MustParseString("d",
		`<root><left><Leaf><Inner>x</Inner></Leaf></left><right><Leaf>y</Leaf></right></root>`)
	if err := s.ValidateDocument(doc, "root"); err != nil {
		t.Fatal(err)
	}
}

func TestParseSchemaErrors(t *testing.T) {
	bad := map[string]string{
		"no separator":     `root child`,
		"dup type":         "root = a\nroot = b",
		"attr before decl": `root @ id`,
		"bad type name":    `= a b`,
	}
	for name, text := range bad {
		if _, err := ParseSchema("s", text); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseSchemaUsableForFragmentChecks(t *testing.T) {
	s, err := ParseSchema("virtual_store", storeSchemaText)
	if err != nil {
		t.Fatal(err)
	}
	// The cardinality resolution the fragmentation validator relies on.
	_, _, rep, err := s.ResolveSteps("Store", []string{"Items"})
	if err != nil || rep {
		t.Fatalf("Items: rep=%v err=%v", rep, err)
	}
	_, _, rep, err = s.ResolveSteps("Store", []string{"Items", "Item"})
	if err != nil || !rep {
		t.Fatalf("Item should be repeatable: rep=%v err=%v", rep, err)
	}
}
