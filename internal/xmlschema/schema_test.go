package xmlschema

import (
	"testing"

	"partix/internal/xmltree"
)

func TestOccurs(t *testing.T) {
	if One.String() != "1..1" || OneOrMore.String() != "1..n" {
		t.Fatalf("Occurs.String wrong: %s %s", One, OneOrMore)
	}
	if !Optional.Contains(0) || !Optional.Contains(1) || Optional.Contains(2) {
		t.Fatal("Optional.Contains wrong")
	}
	if !ZeroOrMore.Contains(100) || ZeroOrMore.Contains(-1) {
		t.Fatal("ZeroOrMore.Contains wrong")
	}
	if One.MayRepeat() || Optional.MayRepeat() || !OneOrMore.MayRepeat() || !ZeroOrMore.MayRepeat() {
		t.Fatal("MayRepeat wrong")
	}
	if !(Occurs{0, 3}).MayRepeat() {
		t.Fatal("0..3 should repeat")
	}
}

func TestBuiltinSchemasValid(t *testing.T) {
	for _, s := range []*Schema{VirtualStore(), XBenchArticle()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if s.Types() == 0 {
			t.Errorf("%s: no types", s.Name)
		}
	}
}

func TestElementReturnsSameType(t *testing.T) {
	s := New("s")
	a := s.Element("a")
	if s.Element("a") != a {
		t.Fatal("Element not idempotent")
	}
	if s.Type("a") != a || s.Type("b") != nil {
		t.Fatal("Type lookup wrong")
	}
}

func TestSchemaValidateRejectsBadSchemas(t *testing.T) {
	// Foreign type reference.
	s1, s2 := New("s1"), New("s2")
	foreign := s2.Element("x")
	Seq(s1.Element("root"), P(foreign, One))
	if err := s1.Validate(); err == nil {
		t.Error("foreign type accepted")
	}

	// Invalid cardinality.
	s3 := New("s3")
	Seq(s3.Element("root"), P(Text(s3.Element("a")), Occurs{2, 1}))
	if err := s3.Validate(); err == nil {
		t.Error("max<min accepted")
	}

	// Duplicate child element name in sequence.
	s4 := New("s4")
	a := Text(s4.Element("a"))
	Seq(s4.Element("root"), P(a, One), P(a, One))
	if err := s4.Validate(); err == nil {
		t.Error("duplicate child accepted")
	}

	// Duplicate attribute.
	s5 := New("s5")
	r := s5.Element("root")
	r.Attributes = []AttrDecl{{Name: "x"}, {Name: "x"}}
	if err := s5.Validate(); err == nil {
		t.Error("duplicate attribute accepted")
	}

	// Text content with children.
	s6 := New("s6")
	bad := Text(s6.Element("bad"))
	bad.Children = []Particle{P(Text(s6.Element("c")), One)}
	if err := s6.Validate(); err == nil {
		t.Error("text type with children accepted")
	}
}

func validItemXML() string {
	return `<Item id="1">
	  <Code>I1</Code><Name>Disc</Name><Description>nice</Description>
	  <Section>CD</Section>
	  <Characteristics>shiny</Characteristics>
	  <PictureList>
	    <Picture><Name>p</Name><ModificationDate>2005-01-01</ModificationDate>
	      <OriginalPath>/o</OriginalPath><ThumbPath>/t</ThumbPath></Picture>
	  </PictureList>
	  <PricesHistory>
	    <PriceHistory><Price>9.90</Price><ModificationDate>2005-02-02</ModificationDate></PriceHistory>
	  </PricesHistory>
	</Item>`
}

func TestValidateItemDocument(t *testing.T) {
	s := VirtualStore()
	doc := xmltree.MustParseString("i1", validItemXML())
	if err := s.ValidateDocument(doc, "Item"); err != nil {
		t.Fatal(err)
	}
}

func TestValidateStoreDocumentWithSectionLabel(t *testing.T) {
	s := VirtualStore()
	doc := xmltree.MustParseString("store", `<Store>
	  <Sections>
	    <Section><Code>S1</Code><Name>CD</Name></Section>
	  </Sections>
	  <Items>
	    <Item><Code>I1</Code><Name>N</Name><Description>D</Description><Section>CD</Section></Item>
	  </Items>
	  <Employees><Employee>bob</Employee></Employees>
	</Store>`)
	if err := s.ValidateDocument(doc, "Store"); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	s := VirtualStore()
	cases := []struct {
		name string
		xml  string
	}{
		{"wrong root", `<Thing/>`},
		{"missing required child", `<Item><Code>c</Code></Item>`},
		{"unexpected child", `<Item><Code>c</Code><Name>n</Name><Description>d</Description><Section>s</Section><Bogus/></Item>`},
		{"out of order", `<Item><Name>n</Name><Code>c</Code><Description>d</Description><Section>s</Section></Item>`},
		{"undeclared attribute", `<Item foo="1"><Code>c</Code><Name>n</Name><Description>d</Description><Section>s</Section></Item>`},
		{"element content in text type", `<Item><Code><X/></Code><Name>n</Name><Description>d</Description><Section>s</Section></Item>`},
		{"too many PictureList", `<Item><Code>c</Code><Name>n</Name><Description>d</Description><Section>s</Section><PictureList><Picture><Name>p</Name><ModificationDate>m</ModificationDate><OriginalPath>o</OriginalPath><ThumbPath>t</ThumbPath></Picture></PictureList><PictureList><Picture><Name>p</Name><ModificationDate>m</ModificationDate><OriginalPath>o</OriginalPath><ThumbPath>t</ThumbPath></Picture></PictureList></Item>`},
	}
	for _, tc := range cases {
		doc, err := xmltree.ParseString("d", tc.xml)
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		if err := s.ValidateDocument(doc, "Item"); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestValidateUnknownType(t *testing.T) {
	s := VirtualStore()
	doc := xmltree.MustParseString("d", "<X/>")
	if err := s.ValidateDocument(doc, "Nope"); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestRequiredAttribute(t *testing.T) {
	s := XBenchArticle()
	doc := xmltree.MustParseString("a", `<article><prolog><title>t</title><authors><author>a</author></authors><genre>g</genre><keywords/><date>2004</date></prolog><body><section><title>s</title><p>text</p></section></body><epilog><references/></epilog></article>`)
	if err := s.ValidateDocument(doc, "article"); err == nil {
		t.Fatal("missing required id attribute accepted")
	}
	doc.Root.Append(xmltree.NewAttr("id", "a1"))
	// Attribute order does not matter for validation.
	if err := s.ValidateDocument(doc, "article"); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCollectionHomogeneity(t *testing.T) {
	spec := CItems()
	good := xmltree.NewCollection("items",
		xmltree.MustParseString("i1", validItemXML()),
	)
	if err := spec.Validate(good); err != nil {
		t.Fatal(err)
	}
	bad := xmltree.NewCollection("items",
		xmltree.MustParseString("i1", validItemXML()),
		xmltree.MustParseString("x", `<Other/>`),
	)
	if err := spec.Validate(bad); err == nil {
		t.Fatal("heterogeneous collection accepted")
	}
}

func TestSDSpec(t *testing.T) {
	spec := CStore()
	two := xmltree.NewCollection("store",
		xmltree.MustParseString("s1", "<Store><Sections><Section><Code>c</Code><Name>n</Name></Section></Sections><Items/><Employees><Employee>e</Employee></Employees></Store>"),
		xmltree.MustParseString("s2", "<Store><Sections><Section><Code>c</Code><Name>n</Name></Section></Sections><Items/><Employees><Employee>e</Employee></Employees></Store>"),
	)
	if err := spec.Validate(two); err == nil {
		t.Fatal("SD spec accepted 2 documents")
	}
}

func TestResolveSteps(t *testing.T) {
	s := VirtualStore()

	typ, attr, rep, err := s.ResolveSteps("Store", []string{"Items", "Item"})
	if err != nil {
		t.Fatal(err)
	}
	if typ.Name != "Item" || attr != nil || !rep {
		t.Fatalf("Items/Item: type=%v attr=%v repeatable=%v", typ.Name, attr, rep)
	}

	typ, _, rep, err = s.ResolveSteps("Item", []string{"PictureList"})
	if err != nil {
		t.Fatal(err)
	}
	if typ.Name != "PictureList" || rep {
		t.Fatalf("PictureList: type=%v repeatable=%v (0..1 must not repeat)", typ.Name, rep)
	}

	_, _, rep, err = s.ResolveSteps("Item", []string{"PictureList", "Picture"})
	if err != nil || !rep {
		t.Fatalf("Picture should be repeatable, err=%v", err)
	}

	_, attr, _, err = s.ResolveSteps("Item", []string{"@id"})
	if err != nil || attr == nil || attr.Name != "id" {
		t.Fatalf("@id: attr=%v err=%v", attr, err)
	}

	if _, _, _, err := s.ResolveSteps("Item", []string{"@id", "Code"}); err == nil {
		t.Fatal("attribute step not last accepted")
	}
	if _, _, _, err := s.ResolveSteps("Item", []string{"Nope"}); err == nil {
		t.Fatal("unknown step accepted")
	}
	if _, _, _, err := s.ResolveSteps("Nope", nil); err == nil {
		t.Fatal("unknown root accepted")
	}
	if _, _, _, err := s.ResolveSteps("Item", []string{"@nope"}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestResolveStepsUsesElementLabels(t *testing.T) {
	s := VirtualStore()
	typ, _, _, err := s.ResolveSteps("Store", []string{"Sections", "Section", "Code"})
	if err != nil {
		t.Fatal(err)
	}
	if typ.Name != "Code" {
		t.Fatalf("resolved %q", typ.Name)
	}
	// Item/Section resolves to the text-typed Section, not SectionDef.
	typ, _, _, err = s.ResolveSteps("Item", []string{"Section"})
	if err != nil || typ.Content != TextContent {
		t.Fatalf("Item/Section: %v content=%v", err, typ.Content)
	}
}
