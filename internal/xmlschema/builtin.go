package xmlschema

// This file declares the two schemas the paper's evaluation uses:
// Svirtual_store (Figure 1(a)) and the XBench-style article schema used by
// the XBenchVer database (Section 5, vertical fragmentation: fragments
// /article/prolog, /article/body, /article/epilog).

// VirtualStore builds Svirtual_store from the paper's Figure 1(a). Implicit
// cardinalities are 1..1; the figure marks Section, Item, Employee, Picture
// and PriceHistory as 1..n, Characteristics as 0..n, and PictureList and
// PricesHistory as 0..1. Release is optional (0..1): it marks newly
// released items.
func VirtualStore() *Schema {
	s := New("virtual_store")

	code := Text(s.Element("Code"))
	name := Text(s.Element("Name"))
	desc := Text(s.Element("Description"))
	section := Text(s.Element("Section"))
	release := Text(s.Element("Release"))
	characteristics := Text(s.Element("Characteristics"))
	modDate := Text(s.Element("ModificationDate"))
	origPath := Text(s.Element("OriginalPath"))
	thumbPath := Text(s.Element("ThumbPath"))
	price := Text(s.Element("Price"))
	employee := Text(s.Element("Employee"))

	picture := Seq(s.Element("Picture"),
		P(name, One),
		P(desc, Optional),
		P(modDate, One),
		P(origPath, One),
		P(thumbPath, One),
	)
	pictureList := Seq(s.Element("PictureList"), P(picture, OneOrMore))

	priceHistory := Seq(s.Element("PriceHistory"),
		P(price, One),
		P(modDate, One),
	)
	pricesHistory := Seq(s.Element("PricesHistory"), P(priceHistory, OneOrMore))

	item := Seq(s.Element("Item"),
		P(code, One),
		P(name, One),
		P(desc, One),
		P(section, One),
		P(release, Optional),
		P(characteristics, ZeroOrMore),
		P(pictureList, Optional),
		P(pricesHistory, Optional),
	)
	item.Attributes = []AttrDecl{{Name: "id", Required: false}}

	sectionDef := Seq(s.Element("SectionDef"),
		P(code, One),
		P(name, One),
	)
	sectionDef.Label = "Section" // same element name as Item's Section, different type
	sections := Seq(s.Element("Sections"), P(sectionDef, OneOrMore))
	items := Seq(s.Element("Items"), P(item, ZeroOrMore))
	employees := Seq(s.Element("Employees"), P(employee, OneOrMore))

	Seq(s.Element("Store"),
		P(sections, One),
		P(items, One),
		P(employees, One),
	)
	return s
}

// CItems returns the spec of the MD collection
// Citems := ⟨Svirtual_store, /Store/Items/Item⟩ of Figure 1(b): one document
// per Item.
func CItems() CollectionSpec {
	return CollectionSpec{Schema: VirtualStore(), RootType: "Item", SD: false}
}

// CStore returns the spec of the SD collection
// Cstore := ⟨Svirtual_store, /Store⟩ of Figure 1(b): a single Store document.
func CStore() CollectionSpec {
	return CollectionSpec{Schema: VirtualStore(), RootType: "Store", SD: true}
}

// XBenchArticle builds the article schema used by the XBenchVer database.
// XBench's text-centric documents are articles with a prolog (metadata),
// a body (sections of paragraphs — the bulk of the document) and an epilog
// (references and acknowledgements); the paper fragments the collection
// vertically along exactly these three subtrees.
func XBenchArticle() *Schema {
	s := New("xbench_article")

	title := Text(s.Element("title"))
	author := Text(s.Element("author"))
	genre := Text(s.Element("genre"))
	keyword := Text(s.Element("keyword"))
	date := Text(s.Element("date"))
	abstract := Text(s.Element("abstract"))
	p := Text(s.Element("p"))
	aID := Text(s.Element("a_id"))
	ack := Text(s.Element("acknowledgements"))
	country := Text(s.Element("country"))

	authors := Seq(s.Element("authors"), P(author, OneOrMore))
	keywords := Seq(s.Element("keywords"), P(keyword, ZeroOrMore))

	prolog := Seq(s.Element("prolog"),
		P(title, One),
		P(authors, One),
		P(genre, One),
		P(keywords, One),
		P(date, One),
	)

	section := Seq(s.Element("section"),
		P(title, One),
		P(p, OneOrMore),
	)
	body := Seq(s.Element("body"),
		P(abstract, Optional),
		P(section, OneOrMore),
	)

	references := Seq(s.Element("references"), P(aID, ZeroOrMore))
	epilog := Seq(s.Element("epilog"),
		P(references, One),
		P(ack, Optional),
		P(country, Optional),
	)

	article := Seq(s.Element("article"),
		P(prolog, One),
		P(body, One),
		P(epilog, One),
	)
	article.Attributes = []AttrDecl{{Name: "id", Required: true}}
	return s
}

// CArticles returns the spec of the MD collection of XBench articles.
func CArticles() CollectionSpec {
	return CollectionSpec{Schema: XBenchArticle(), RootType: "article", SD: false}
}
