// Package xmlschema models XML schemas the way the PartiX paper uses them
// (Section 3.1): element names correspond to type names, a document Δ
// satisfies a type τ ∈ S iff its tree derives from the grammar defined by S
// with ℓ(rootΔ) → τ, and a homogeneous collection C = ⟨S, τroot⟩ is a set of
// documents that all satisfy τroot.
//
// The content model is a DTD-like ordered sequence of child particles with
// minimum/maximum cardinalities, which is exactly what the schema tree in
// the paper's Figure 1(a) expresses (e.g. Item has PictureList 0..1, whose
// Picture child is 1..n).
package xmlschema

import (
	"fmt"
	"strings"
)

// Unbounded is the Max value of an Occurs with no upper cardinality bound
// (the "n" in "1..n").
const Unbounded = -1

// Occurs is a cardinality constraint min..max on a child particle.
type Occurs struct {
	Min int
	Max int // Unbounded for no limit
}

// Common cardinalities, named after their DTD equivalents.
var (
	One        = Occurs{1, 1}         // exactly one
	Optional   = Occurs{0, 1}         // 0..1
	OneOrMore  = Occurs{1, Unbounded} // 1..n
	ZeroOrMore = Occurs{0, Unbounded} // 0..n
)

// String renders the cardinality as "min..max".
func (o Occurs) String() string {
	if o.Max == Unbounded {
		return fmt.Sprintf("%d..n", o.Min)
	}
	return fmt.Sprintf("%d..%d", o.Min, o.Max)
}

// Contains reports whether a count of n children satisfies the constraint.
func (o Occurs) Contains(n int) bool {
	return n >= o.Min && (o.Max == Unbounded || n <= o.Max)
}

// MayRepeat reports whether the constraint allows more than one occurrence.
func (o Occurs) MayRepeat() bool { return o.Max == Unbounded || o.Max > 1 }

// Content describes what an element type may contain.
type Content uint8

const (
	// ElementContent means an ordered sequence of child elements.
	ElementContent Content = iota
	// TextContent means a single data value (a terminal path step).
	TextContent
	// EmptyContent means no children.
	EmptyContent
)

// Particle is one slot in an element type's content sequence.
type Particle struct {
	Type   *ElementType
	Occurs Occurs
}

// AttrDecl declares an attribute of an element type.
type AttrDecl struct {
	Name     string
	Required bool
}

// ElementType is a named type in the schema. Per the paper, the type name
// usually is the element name; when one element name is used with two
// structures (Figure 1(a) has both Store/Sections/Section and Item/Section),
// Label carries the element name and Name stays unique within the schema.
type ElementType struct {
	Name       string
	Label      string // element name; defaults to Name
	Content    Content
	Children   []Particle // ordered; meaningful for ElementContent
	Attributes []AttrDecl
}

// ElementName returns the element name documents use for this type.
func (t *ElementType) ElementName() string {
	if t.Label != "" {
		return t.Label
	}
	return t.Name
}

// Child returns the particle whose type's element name is name, or nil.
func (t *ElementType) Child(name string) *Particle {
	for i := range t.Children {
		if t.Children[i].Type.ElementName() == name {
			return &t.Children[i]
		}
	}
	return nil
}

// Attr returns the declaration of the attribute named name, or nil.
func (t *ElementType) Attr(name string) *AttrDecl {
	for i := range t.Attributes {
		if t.Attributes[i].Name == name {
			return &t.Attributes[i]
		}
	}
	return nil
}

// Schema is a set of element types, keyed by type (= element) name.
type Schema struct {
	Name  string
	types map[string]*ElementType
}

// New returns an empty schema with the given name.
func New(name string) *Schema {
	return &Schema{Name: name, types: make(map[string]*ElementType)}
}

// Element declares (or returns the existing) element type named name.
// Builders call Element first and fill in content later, which permits
// recursive types.
func (s *Schema) Element(name string) *ElementType {
	if t, ok := s.types[name]; ok {
		return t
	}
	t := &ElementType{Name: name}
	s.types[name] = t
	return t
}

// Type returns the element type named name, or nil.
func (s *Schema) Type(name string) *ElementType { return s.types[name] }

// Types returns the number of declared types.
func (s *Schema) Types() int { return len(s.types) }

// Seq sets t's content to an ordered sequence of particles.
func Seq(t *ElementType, parts ...Particle) *ElementType {
	t.Content = ElementContent
	t.Children = parts
	return t
}

// Text marks t as holding a single data value.
func Text(t *ElementType) *ElementType {
	t.Content = TextContent
	return t
}

// P builds a particle.
func P(t *ElementType, o Occurs) Particle { return Particle{Type: t, Occurs: o} }

// Validate checks internal consistency: every particle references a type
// declared in this schema, cardinalities are sane, and attribute names are
// unique per type.
func (s *Schema) Validate() error {
	for name, t := range s.types {
		if name != t.Name {
			return fmt.Errorf("xmlschema: type registered as %q but named %q", name, t.Name)
		}
		seenAttr := map[string]bool{}
		for _, a := range t.Attributes {
			if seenAttr[a.Name] {
				return fmt.Errorf("xmlschema: type %q declares attribute %q twice", name, a.Name)
			}
			seenAttr[a.Name] = true
		}
		if t.Content != ElementContent && len(t.Children) > 0 {
			return fmt.Errorf("xmlschema: type %q has children but %v content", name, t.Content)
		}
		seenChild := map[string]bool{}
		for _, p := range t.Children {
			if p.Type == nil {
				return fmt.Errorf("xmlschema: type %q has a nil particle", name)
			}
			if s.types[p.Type.Name] != p.Type {
				return fmt.Errorf("xmlschema: type %q references foreign type %q", name, p.Type.Name)
			}
			if seenChild[p.Type.ElementName()] {
				return fmt.Errorf("xmlschema: type %q repeats child %q in its sequence", name, p.Type.ElementName())
			}
			seenChild[p.Type.ElementName()] = true
			if p.Occurs.Min < 0 || (p.Occurs.Max != Unbounded && p.Occurs.Max < p.Occurs.Min) {
				return fmt.Errorf("xmlschema: type %q child %q has invalid cardinality %v", name, p.Type.Name, p.Occurs)
			}
		}
	}
	return nil
}

// ResolveSteps walks a sequence of child element steps from the type named
// root and returns the type reached. A step "@name" must be last and
// resolves to an attribute declaration, returned separately. repeatable
// reports whether any step along the way (excluding the root itself) may
// occur more than once — the property the paper's vertical-fragmentation
// restriction cares about.
func (s *Schema) ResolveSteps(root string, steps []string) (t *ElementType, attr *AttrDecl, repeatable bool, err error) {
	t = s.Type(root)
	if t == nil {
		return nil, nil, false, fmt.Errorf("xmlschema: unknown root type %q", root)
	}
	for i, step := range steps {
		if strings.HasPrefix(step, "@") {
			if i != len(steps)-1 {
				return nil, nil, false, fmt.Errorf("xmlschema: attribute step %q must be last", step)
			}
			a := t.Attr(step[1:])
			if a == nil {
				return nil, nil, false, fmt.Errorf("xmlschema: type %q has no attribute %q", t.Name, step[1:])
			}
			return t, a, repeatable, nil
		}
		p := t.Child(step)
		if p == nil {
			return nil, nil, false, fmt.Errorf("xmlschema: type %q has no child %q", t.Name, step)
		}
		if p.Occurs.MayRepeat() {
			repeatable = true
		}
		t = p.Type
	}
	return t, nil, repeatable, nil
}
