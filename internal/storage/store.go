package storage

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"partix/internal/obs"
	"partix/internal/xmltree"
)

// ErrNotFound marks lookups of collections or documents that do not
// exist, so callers can tell "absent" from a real I/O or decode failure
// with errors.Is instead of treating every error as absence.
var ErrNotFound = errors.New("not found")

// docEntry locates one stored document.
type docEntry struct {
	Page int64 // first page of the record chain
	Size int64 // encoded size in bytes
}

// catalog maps collection name → document name → location, plus named
// metadata records (index snapshots and the like). It is itself persisted
// as a record; the header points at it.
type catalog struct {
	Collections map[string]map[string]docEntry
	Meta        map[string]docEntry
}

// Options configure a store's durability behaviour.
type Options struct {
	// DisableWAL turns the write-ahead log off entirely: mutations are
	// in-memory-catalog-only until Sync/Close, as in the original engine.
	// The write-new-then-free-old discipline still applies, so a failed
	// write never corrupts the previous state.
	DisableWAL bool

	// NoFsync appends WAL records without fsyncing them at commit.
	// Recovery still replays whatever reached the disk (torn tails are
	// truncated), but an acknowledged commit may be lost on a crash.
	// For benchmarks and tests that do not want to pay for durability.
	NoFsync bool

	// CheckpointBytes is the WAL size that triggers an asynchronous
	// checkpoint (persist catalog, truncate log, recycle freed pages).
	// 0 means the default (8 MiB); negative disables size-triggered
	// checkpoints, leaving them to explicit Sync/Close calls.
	CheckpointBytes int64
}

// defaultCheckpointBytes is the WAL size that triggers a background
// checkpoint when Options.CheckpointBytes is zero.
const defaultCheckpointBytes = 8 << 20

// pendingFree is a record chain freed by a committed operation. Its pages
// return to the free list at the first checkpoint where no active read
// pin predates the freeing operation (pins taken later can no longer
// reach the chain through any snapshot).
type pendingFree struct {
	seq   uint64 // mutation sequence of the op that freed the chain; 0 = never visible
	pages []int64
}

// Store is a persistent XML document store: named collections of named
// documents over a single paged file, made durable by a write-ahead log.
// It is safe for concurrent use; readers never block behind writers'
// page I/O or fsyncs.
type Store struct {
	mu    sync.RWMutex
	pager *pager
	cat   catalog
	path  string
	opts  Options
	wal   *wal // nil when Options.DisableWAL

	// mutSeq counts committed catalog mutations; read pins capture it so
	// the pending-free drain knows which freed chains are still visible
	// to an active snapshot.
	mutSeq  uint64
	pending []pendingFree

	pinMu sync.Mutex
	pins  map[uint64]int // pinned mutSeq → active pin count

	// ckptMu serializes checkpoints (and Close) so the
	// catalog-write / header-write / log-truncate sequence is atomic with
	// respect to other checkpoints. It is taken before s.mu.
	ckptMu     sync.Mutex
	ckptQueued atomic.Bool
	closed     bool

	recovered int // WAL records replayed at Open (0 after a clean shutdown)
}

// Open opens (creating if needed) a store at path with default options:
// WAL on, fsync at commit.
func Open(path string) (*Store, error) {
	return OpenWith(path, Options{})
}

// OpenWith opens (creating if needed) a store at path. When the
// write-ahead log is enabled and holds records — the previous process
// crashed after acknowledged commits — they are replayed on top of the
// last checkpointed catalog and a fresh checkpoint is taken, so the store
// comes up with every acknowledged commit and a truncated log.
func OpenWith(path string, opts Options) (*Store, error) {
	if opts.CheckpointBytes == 0 {
		opts.CheckpointBytes = defaultCheckpointBytes
	}
	p, err := openPager(path)
	if err != nil {
		return nil, err
	}
	s := &Store{
		pager: p, path: path, opts: opts,
		cat:  catalog{Collections: map[string]map[string]docEntry{}},
		pins: map[uint64]int{},
	}
	if p.catalog != 0 {
		data, err := p.readRecord(p.catalog)
		if err != nil {
			p.close()
			return nil, fmt.Errorf("storage: load catalog: %w", err)
		}
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s.cat); err != nil {
			p.close()
			return nil, fmt.Errorf("storage: decode catalog: %w", err)
		}
	}
	if opts.DisableWAL {
		return s, nil
	}
	w, records, err := openWAL(path+".wal", opts.NoFsync)
	if err != nil {
		p.close()
		return nil, err
	}
	s.wal = w
	if len(records) == 0 {
		return s, nil
	}
	if err := s.recover(records); err != nil {
		w.close()
		p.close()
		return nil, err
	}
	return s, nil
}

// recover replays logged operations on top of the checkpointed catalog.
// The on-disk free list is rebuilt from reachability first: the crashed
// process may have consumed free pages (and parked others on its pending
// list) after the checkpoint, so neither the header's free list nor its
// page links can be trusted — but every page reachable from the
// checkpointed catalog is intact, by the deferred-free discipline.
func (s *Store) recover(records []walRecord) error {
	if err := s.rebuildFreeList(); err != nil {
		return fmt.Errorf("storage: recovery: %w", err)
	}
	for i, rec := range records {
		if err := s.applyWAL(rec); err != nil {
			return fmt.Errorf("storage: recovery: replay record %d: %w", i+1, err)
		}
	}
	s.recovered = len(records)
	obs.StorageWALReplayed.Add(int64(len(records)))
	// Checkpoint immediately: the replayed state becomes the new durable
	// baseline and the log is truncated, so a crash during the next run
	// replays only its own tail.
	return s.Checkpoint()
}

// rebuildFreeList re-derives the free list as every page not reachable
// from the catalog (documents, metadata, the catalog record itself). This
// also reclaims pages leaked by a crash between a checkpoint's log
// truncation and its free-list maintenance.
func (s *Store) rebuildFreeList() error {
	count := s.pager.pageCount.Load()
	reachable := make([]bool, count)
	mark := func(first int64) error {
		pages, err := s.pager.chainPages(first)
		if err != nil {
			return err
		}
		for _, id := range pages {
			if id < 1 || id >= count {
				return fmt.Errorf("catalog references page %d outside store (pages: %d)", id, count)
			}
			reachable[id] = true
		}
		return nil
	}
	for _, docs := range s.cat.Collections {
		for _, e := range docs {
			if err := mark(e.Page); err != nil {
				return err
			}
		}
	}
	for _, e := range s.cat.Meta {
		if err := mark(e.Page); err != nil {
			return err
		}
	}
	if s.pager.catalog != 0 {
		if err := mark(s.pager.catalog); err != nil {
			return err
		}
	}
	s.pager.freeHead = 0
	for id := count - 1; id >= 1; id-- {
		if !reachable[id] {
			if err := s.pager.freePage(id); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyWAL re-applies one logged operation. Replay is idempotent at this
// level: re-putting yields the same document, re-deleting an absent
// document is a no-op, so a log that survived a crash mid-truncation
// still converges to the correct state.
func (s *Store) applyWAL(rec walRecord) error {
	switch rec.Op {
	case walOpPut:
		old, had := s.cat.Collections[rec.Collection][rec.Doc]
		page, err := s.pager.writeRecord(rec.Data)
		if err != nil {
			return err
		}
		docs := s.cat.Collections[rec.Collection]
		if docs == nil {
			docs = map[string]docEntry{}
			s.cat.Collections[rec.Collection] = docs
		}
		docs[rec.Doc] = docEntry{Page: page, Size: int64(len(rec.Data))}
		s.mutSeq++
		if had {
			s.deferFreeChainLocked(old.Page)
		}
	case walOpDelete:
		e, ok := s.cat.Collections[rec.Collection][rec.Doc]
		if !ok {
			return nil
		}
		delete(s.cat.Collections[rec.Collection], rec.Doc)
		s.mutSeq++
		s.deferFreeChainLocked(e.Page)
	case walOpDrop:
		docs, ok := s.cat.Collections[rec.Collection]
		if !ok {
			return nil
		}
		for _, e := range docs {
			s.deferFreeChainLocked(e.Page)
		}
		delete(s.cat.Collections, rec.Collection)
		s.mutSeq++
	case walOpCreate:
		if s.cat.Collections[rec.Collection] == nil {
			s.cat.Collections[rec.Collection] = map[string]docEntry{}
		}
	case walOpMeta:
		if old, ok := s.cat.Meta[rec.Doc]; ok {
			delete(s.cat.Meta, rec.Doc)
			s.mutSeq++
			s.deferFreeChainLocked(old.Page)
		}
		if len(rec.Data) == 0 {
			return nil
		}
		page, err := s.pager.writeRecord(rec.Data)
		if err != nil {
			return err
		}
		if s.cat.Meta == nil {
			s.cat.Meta = map[string]docEntry{}
		}
		s.cat.Meta[rec.Doc] = docEntry{Page: page, Size: int64(len(rec.Data))}
		s.mutSeq++
	default:
		return fmt.Errorf("unknown wal op %d", rec.Op)
	}
	return nil
}

// RecoveredMutations reports how many WAL records were replayed when the
// store was opened. Non-zero means the previous process did not shut down
// cleanly; derived state persisted alongside the catalog (such as the
// engine's index snapshot) may predate the replayed operations and must
// be rebuilt.
func (s *Store) RecoveredMutations() int { return s.recovered }

// deferFreeChainLocked parks a record chain on the pending-free list,
// tagged with the current mutation sequence. Callers hold s.mu. A chain
// whose headers cannot be walked is leaked rather than corrupting the
// free list; recovery's reachability rebuild reclaims it eventually.
func (s *Store) deferFreeChainLocked(first int64) {
	pages, err := s.pager.chainPages(first)
	if err != nil {
		return
	}
	s.pending = append(s.pending, pendingFree{seq: s.mutSeq, pages: pages})
}

// acquirePinLocked registers a read pin at the current mutation sequence.
// Callers hold s.mu (read or write), which orders the pin against the
// drain in checkpointLocked.
func (s *Store) acquirePinLocked() *ReadPin {
	s.pinMu.Lock()
	seq := s.mutSeq
	s.pins[seq]++
	s.pinMu.Unlock()
	return &ReadPin{store: s, seq: seq}
}

// ReadPin keeps every record chain that was cataloged at pin time readable
// — replaced and deleted versions included — until Close. Queries hold one
// for the duration of a snapshot read.
type ReadPin struct {
	store *Store
	seq   uint64
	once  sync.Once
}

// Close releases the pin. Safe to call more than once.
func (p *ReadPin) Close() {
	p.once.Do(func() {
		s := p.store
		s.pinMu.Lock()
		if n := s.pins[p.seq]; n <= 1 {
			delete(s.pins, p.seq)
		} else {
			s.pins[p.seq] = n - 1
		}
		s.pinMu.Unlock()
	})
}

// minActivePin returns the oldest pinned mutation sequence, or ok=false
// when no pin is active.
func (s *Store) minActivePin() (uint64, bool) {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	var min uint64
	found := false
	for seq := range s.pins {
		if !found || seq < min {
			min = seq
			found = true
		}
	}
	return min, found
}

// drainPendingLocked returns eligible pending-free chains to the free
// list: a chain freed at sequence F is eligible once every active pin was
// taken at or after F (force drains everything — shutdown only, when no
// new allocation can follow). Callers hold s.mu.
func (s *Store) drainPendingLocked(force bool) error {
	if len(s.pending) == 0 {
		return nil
	}
	minPin, pinned := s.minActivePin()
	kept := s.pending[:0]
	for _, pf := range s.pending {
		if !force && pinned && pf.seq > minPin {
			kept = append(kept, pf)
			continue
		}
		for _, id := range pf.pages {
			if err := s.pager.freePage(id); err != nil {
				s.pending = append(kept, s.pending...) // keep state sane
				return err
			}
		}
	}
	s.pending = kept
	return nil
}

// Close checkpoints (persisting the catalog and truncating the log) and
// closes the files.
func (s *Store) Close() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	s.mu.Lock()
	if err := s.checkpointLocked(); err != nil {
		firstErr = err
	}
	// Recycle every still-pending chain: no allocation can follow, so
	// even chains covered by a (leaked) pin are safe to free now.
	if err := s.drainPendingLocked(true); err != nil && firstErr == nil {
		firstErr = err
	}
	s.mu.Unlock()
	if s.wal != nil {
		if err := s.wal.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := s.pager.close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Sync checkpoints: every committed mutation and the catalog itself are
// durable on return, and the write-ahead log is truncated.
func (s *Store) Sync() error {
	if err := s.Checkpoint(); err != nil {
		return err
	}
	// Match the historical contract: Sync leaves the header synced too.
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pager.sync()
}

// WALStatus reports the write-ahead log's durability lag for health
// checks: bytes accumulated since the last checkpoint truncated the
// log, the highest appended and fsynced sequences, and when the last
// fsync happened. A zero-value status means the WAL is disabled.
type WALStatus struct {
	Enabled   bool
	NoFsync   bool
	SizeBytes int64  // log bytes since the last checkpoint (framing included)
	LastSeq   uint64 // sequence of the last appended record
	SyncedSeq uint64 // highest sequence known durable
	LastFsync time.Time
}

// WALStatus returns the current write-ahead log durability lag.
func (s *Store) WALStatus() WALStatus {
	if s.wal == nil {
		return WALStatus{}
	}
	size, last, synced, lastSync := s.wal.status()
	size -= walHeaderSize
	if size < 0 {
		size = 0
	}
	return WALStatus{
		Enabled:   true,
		NoFsync:   s.opts.NoFsync,
		SizeBytes: size,
		LastSeq:   last,
		SyncedSeq: synced,
		LastFsync: lastSync,
	}
}

// Checkpoint persists the catalog (write-new-then-free-old), truncates
// the WAL and recycles pages freed by operations no active snapshot can
// still see. Serialized with other checkpoints; brief on the store lock.
func (s *Store) Checkpoint() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if s.closed {
		return nil
	}
	// Flush the bulk of the page writes before taking the store lock so
	// writers and readers are blocked only for the catalog write and the
	// small delta fsync below.
	if !s.opts.DisableWAL && !s.opts.NoFsync {
		if err := s.pager.fsync(); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

// checkpointLocked is the core checkpoint sequence. Callers hold s.mu and
// s.ckptMu. Order matters for crash safety:
//
//  1. write the new catalog record into fresh pages (old one untouched);
//  2. fsync — catalog record and any residual page writes are durable;
//  3. point the header at the new catalog and fsync again — the switch;
//  4. truncate the WAL — everything it held is covered by the catalog;
//  5. only now free the old catalog record and drain the pending list.
//
// A crash before 3 recovers from the old catalog + full log; after 3,
// from the new catalog (+ log until 4 completes, replay being
// idempotent); pages freed in 5 were unreachable from the new catalog
// already, so a crash there at worst leaks until the next recovery GC.
func (s *Store) checkpointLocked() error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&s.cat); err != nil {
		return fmt.Errorf("storage: encode catalog: %w", err)
	}
	oldCatalog := s.pager.catalog
	id, err := s.pager.writeRecord(buf.Bytes())
	if err != nil {
		return err
	}
	var coveredSeq uint64
	if s.wal != nil {
		coveredSeq = s.wal.lastSeq()
		if !s.opts.NoFsync {
			if err := s.pager.fsync(); err != nil {
				return err
			}
		}
	}
	s.pager.catalog = id
	if err := s.pager.writeHeader(); err != nil {
		return err
	}
	if s.wal != nil {
		if !s.opts.NoFsync {
			if err := s.pager.fsync(); err != nil {
				return err
			}
		}
		if err := s.wal.reset(coveredSeq); err != nil {
			return err
		}
	}
	if oldCatalog != 0 {
		// The catalog record is read only at Open; no pin can reference
		// it, so it recycles immediately (seq 0 = always drainable).
		if pages, err := s.pager.chainPages(oldCatalog); err == nil {
			s.pending = append(s.pending, pendingFree{seq: 0, pages: pages})
		}
	}
	obs.StorageCheckpoints.Inc()
	return s.drainPendingLocked(false)
}

// maybeCheckpoint starts a background checkpoint when the WAL has grown
// past the configured threshold. At most one is queued at a time.
func (s *Store) maybeCheckpoint() {
	if s.wal == nil || s.opts.CheckpointBytes <= 0 {
		return
	}
	if s.wal.sizeNow() < s.opts.CheckpointBytes {
		return
	}
	if !s.ckptQueued.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.ckptQueued.Store(false)
		// An error here is not lost: the WAL keeps everything, and the
		// next explicit Sync/Close surfaces the failure.
		s.Checkpoint()
	}()
}

// CreateCollection declares an empty collection; it is a no-op when the
// collection exists. The declaration is logged (and durable at return,
// like every mutation) so an empty collection survives a crash.
func (s *Store) CreateCollection(name string) error {
	s.mu.Lock()
	if s.cat.Collections[name] != nil {
		s.mu.Unlock()
		return nil
	}
	tok, err := s.logLocked(walRecord{Op: walOpCreate, Collection: name})
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.cat.Collections[name] = map[string]docEntry{}
	s.mu.Unlock()
	s.maybeCheckpoint()
	return s.WaitDurable(tok)
}

// logLocked appends a WAL record (no fsync) under s.mu, returning the
// commit token WaitDurable redeems. A zero token means the WAL is off.
func (s *Store) logLocked(rec walRecord) (CommitToken, error) {
	if s.wal == nil {
		return CommitToken{}, nil
	}
	seq, err := s.wal.append(rec)
	if err != nil {
		return CommitToken{}, err
	}
	return CommitToken{seq: seq}, nil
}

// CommitToken identifies a committed (applied and logged) mutation whose
// durability can be awaited with WaitDurable.
type CommitToken struct {
	seq uint64
}

// WaitDurable blocks until the mutation behind tok is fsynced, batching
// into the group commit. A zero token (WAL off, or NoFsync) returns
// immediately.
func (s *Store) WaitDurable(tok CommitToken) error {
	if s.wal == nil || tok.seq == 0 {
		return nil
	}
	return s.wal.commit(tok.seq)
}

// DropCollection deletes a collection and all its documents.
func (s *Store) DropCollection(name string) error {
	tok, err := s.DropCollectionNoSync(name)
	if err != nil {
		return err
	}
	return s.WaitDurable(tok)
}

// DropCollectionNoSync commits the drop without waiting for durability;
// the returned token lets the caller group the fsync.
func (s *Store) DropCollectionNoSync(name string) (CommitToken, error) {
	s.mu.Lock()
	docs, ok := s.cat.Collections[name]
	if !ok {
		s.mu.Unlock()
		return CommitToken{}, fmt.Errorf("storage: collection %q does not exist", name)
	}
	tok, err := s.logLocked(walRecord{Op: walOpDrop, Collection: name})
	if err != nil {
		s.mu.Unlock()
		return CommitToken{}, err
	}
	delete(s.cat.Collections, name)
	s.mutSeq++
	for _, e := range docs {
		s.deferFreeChainLocked(e.Page)
	}
	s.mu.Unlock()
	s.maybeCheckpoint()
	return tok, nil
}

// StagedDoc is a document whose record pages are written but not yet
// visible: CommitStaged publishes it, AbortStaged recycles the pages.
// Staging happens outside the store's critical section, so concurrent
// writers overlap their page I/O and commit is an in-memory operation
// plus one log append.
type StagedDoc struct {
	collection string
	name       string
	data       []byte
	pages      []int64
}

// StageDocument encodes doc and writes its record into freshly allocated
// pages without publishing it.
func (s *Store) StageDocument(collection string, doc *xmltree.Document) (*StagedDoc, error) {
	data, err := EncodeDocument(doc)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	pages, err := s.pager.allocRecordPages(len(data))
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	st := &StagedDoc{collection: collection, name: doc.Name, data: data, pages: pages}
	if err := s.pager.writeRecordPages(pages, data); err != nil {
		s.AbortStaged(st)
		return nil, err
	}
	return st, nil
}

// CommitStaged publishes a staged document: the write-ahead record is
// appended first, then the catalog entry flips to the new chain and any
// replaced chain is parked for deferred recycling — so an error at any
// point leaves the previous version fully intact and readable.
func (s *Store) CommitStaged(st *StagedDoc) (CommitToken, error) {
	s.mu.Lock()
	tok, err := s.logLocked(walRecord{
		Op: walOpPut, Collection: st.collection, Doc: st.name, Data: st.data,
	})
	if err != nil {
		s.mu.Unlock()
		return CommitToken{}, err
	}
	docs := s.cat.Collections[st.collection]
	if docs == nil {
		docs = map[string]docEntry{}
		s.cat.Collections[st.collection] = docs
	}
	old, had := docs[st.name]
	docs[st.name] = docEntry{Page: st.pages[0], Size: int64(len(st.data))}
	s.mutSeq++
	if had {
		s.deferFreeChainLocked(old.Page)
	}
	s.mu.Unlock()
	s.maybeCheckpoint()
	return tok, nil
}

// AbortStaged returns a staged document's pages to the allocator. The
// pages were never visible to any reader, so they are immediately
// drainable (seq 0).
func (s *Store) AbortStaged(st *StagedDoc) {
	if st == nil || len(st.pages) == 0 {
		return
	}
	s.mu.Lock()
	s.pending = append(s.pending, pendingFree{seq: 0, pages: st.pages})
	st.pages = nil
	s.mu.Unlock()
}

// PutDocument stores (or replaces) a document in a collection, creating
// the collection if needed. The document is durable when PutDocument
// returns (unless the store runs with NoFsync or DisableWAL).
func (s *Store) PutDocument(collection string, doc *xmltree.Document) error {
	st, err := s.StageDocument(collection, doc)
	if err != nil {
		return err
	}
	tok, err := s.CommitStaged(st)
	if err != nil {
		s.AbortStaged(st)
		return err
	}
	return s.WaitDurable(tok)
}

// GetDocument loads and decodes a document. Decoding happens on every call
// — the per-tree parse cost the evaluation section of the paper discusses.
func (s *Store) GetDocument(collection, name string) (*xmltree.Document, error) {
	data, err := s.GetDocumentRaw(collection, name)
	if err != nil {
		return nil, err
	}
	return DecodeDocument(name, data)
}

// GetDocumentRaw returns the encoded bytes of a document (used by the wire
// protocol to ship documents without a decode/encode round trip). The
// record is read under a pin, not the store lock, so a large read never
// blocks writers and a concurrent delete cannot recycle the pages mid-read.
func (s *Store) GetDocumentRaw(collection, name string) ([]byte, error) {
	s.mu.RLock()
	e, err := s.lookupLocked(collection, name)
	if err != nil {
		s.mu.RUnlock()
		return nil, err
	}
	pin := s.acquirePinLocked()
	s.mu.RUnlock()
	defer pin.Close()
	return s.pager.readRecordSized(e.Page, int(e.Size))
}

func (s *Store) lookupLocked(collection, name string) (docEntry, error) {
	docs, ok := s.cat.Collections[collection]
	if !ok {
		return docEntry{}, fmt.Errorf("storage: collection %q does not exist: %w", collection, ErrNotFound)
	}
	e, ok := docs[name]
	if !ok {
		return docEntry{}, fmt.Errorf("storage: document %q not in collection %q: %w", name, collection, ErrNotFound)
	}
	return e, nil
}

// DocRef locates one document inside a snapshot.
type DocRef struct {
	Name string
	Page int64
	Size int64
}

// CollectionSnapshot is an immutable view of one collection: the document
// set (sorted by name) exactly as it was at snapshot time, readable via
// ReadRef regardless of concurrent replaces, deletes or drops. Close it
// when done so the pages it pins can be recycled.
type CollectionSnapshot struct {
	Refs []DocRef
	pin  *ReadPin
}

// Close releases the snapshot's pin.
func (cs *CollectionSnapshot) Close() {
	if cs != nil && cs.pin != nil {
		cs.pin.Close()
	}
}

// SnapshotCollection captures a consistent, pinned view of a collection.
func (s *Store) SnapshotCollection(name string) (*CollectionSnapshot, error) {
	s.mu.RLock()
	docs, ok := s.cat.Collections[name]
	if !ok {
		s.mu.RUnlock()
		return nil, fmt.Errorf("storage: collection %q does not exist", name)
	}
	refs := make([]DocRef, 0, len(docs))
	for dn, e := range docs {
		refs = append(refs, DocRef{Name: dn, Page: e.Page, Size: e.Size})
	}
	pin := s.acquirePinLocked()
	s.mu.RUnlock()
	sort.Slice(refs, func(i, j int) bool { return refs[i].Name < refs[j].Name })
	return &CollectionSnapshot{Refs: refs, pin: pin}, nil
}

// ReadRef reads a snapshot document's encoded bytes. Valid only while the
// snapshot it came from is open (the pin keeps the chain stable); no
// store lock is taken.
func (s *Store) ReadRef(ref DocRef) ([]byte, error) {
	return s.pager.readRecordSized(ref.Page, int(ref.Size))
}

// DeleteDocument removes a document, durably.
func (s *Store) DeleteDocument(collection, name string) error {
	tok, err := s.DeleteDocumentNoSync(collection, name)
	if err != nil {
		return err
	}
	return s.WaitDurable(tok)
}

// DeleteDocumentNoSync commits the delete without waiting for durability;
// the returned token lets the caller group the fsync.
func (s *Store) DeleteDocumentNoSync(collection, name string) (CommitToken, error) {
	s.mu.Lock()
	e, err := s.lookupLocked(collection, name)
	if err != nil {
		s.mu.Unlock()
		return CommitToken{}, err
	}
	tok, err := s.logLocked(walRecord{Op: walOpDelete, Collection: collection, Doc: name})
	if err != nil {
		s.mu.Unlock()
		return CommitToken{}, err
	}
	delete(s.cat.Collections[collection], name)
	s.mutSeq++
	s.deferFreeChainLocked(e.Page)
	s.mu.Unlock()
	s.maybeCheckpoint()
	return tok, nil
}

// Collections returns the collection names, sorted.
func (s *Store) Collections() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.cat.Collections))
	for name := range s.cat.Collections {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Documents returns the document names of a collection, sorted.
func (s *Store) Documents(collection string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	docs, ok := s.cat.Collections[collection]
	if !ok {
		return nil, fmt.Errorf("storage: collection %q does not exist", collection)
	}
	out := make([]string, 0, len(docs))
	for name := range docs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// HasCollection reports whether a collection exists.
func (s *Store) HasCollection(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.cat.Collections[name]
	return ok
}

// Stats summarizes a collection: document count and stored bytes.
type Stats struct {
	Documents int
	Bytes     int64
}

// CollectionStats returns size statistics for a collection.
func (s *Store) CollectionStats(collection string) (Stats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	docs, ok := s.cat.Collections[collection]
	if !ok {
		return Stats{}, fmt.Errorf("storage: collection %q does not exist", collection)
	}
	st := Stats{Documents: len(docs)}
	for _, e := range docs {
		st.Bytes += e.Size
	}
	return st, nil
}

// PutMeta stores (or replaces) a named metadata record — opaque bytes the
// engine uses for persisted index snapshots. Metadata lives in the same
// paged file as documents and is logged like any other mutation; storing
// empty deletes the record.
func (s *Store) PutMeta(key string, data []byte) error {
	s.mu.Lock()
	_, had := s.cat.Meta[key]
	if !had && len(data) == 0 {
		s.mu.Unlock()
		return nil // deleting an absent record: nothing to log or do
	}
	tok, err := s.logLocked(walRecord{Op: walOpMeta, Doc: key, Data: data})
	if err != nil {
		s.mu.Unlock()
		return err
	}
	var page int64
	if len(data) > 0 {
		// Write the new record before dropping the old entry so a write
		// failure leaves the previous metadata intact.
		page, err = s.pager.writeRecord(data)
		if err != nil {
			s.mu.Unlock()
			return err
		}
	}
	if had {
		old := s.cat.Meta[key]
		delete(s.cat.Meta, key)
		s.mutSeq++
		s.deferFreeChainLocked(old.Page)
	}
	if len(data) > 0 {
		if s.cat.Meta == nil {
			s.cat.Meta = map[string]docEntry{}
		}
		s.cat.Meta[key] = docEntry{Page: page, Size: int64(len(data))}
		s.mutSeq++
	}
	s.mu.Unlock()
	s.maybeCheckpoint()
	return s.WaitDurable(tok)
}

// GetMeta loads a metadata record; ok is false when the key is absent.
func (s *Store) GetMeta(key string) (data []byte, ok bool, err error) {
	s.mu.RLock()
	e, present := s.cat.Meta[key]
	if !present {
		s.mu.RUnlock()
		return nil, false, nil
	}
	pin := s.acquirePinLocked()
	s.mu.RUnlock()
	defer pin.Close()
	data, err = s.pager.readRecordSized(e.Page, int(e.Size))
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// LoadCollection stores every document of c under the collection name.
// Documents are committed individually but fsynced once at the end (one
// group commit for the whole load).
func (s *Store) LoadCollection(c *xmltree.Collection) error {
	if err := s.CreateCollection(c.Name); err != nil {
		return err
	}
	var last CommitToken
	for _, d := range c.Docs {
		st, err := s.StageDocument(c.Name, d)
		if err != nil {
			return err
		}
		tok, err := s.CommitStaged(st)
		if err != nil {
			s.AbortStaged(st)
			return err
		}
		last = tok
	}
	return s.WaitDurable(last)
}

// ReadCollection decodes every document of a collection, sorted by name.
func (s *Store) ReadCollection(name string) (*xmltree.Collection, error) {
	snap, err := s.SnapshotCollection(name)
	if err != nil {
		return nil, err
	}
	defer snap.Close()
	c := xmltree.NewCollection(name)
	for _, ref := range snap.Refs {
		data, err := s.ReadRef(ref)
		if err != nil {
			return nil, err
		}
		d, err := DecodeDocument(ref.Name, data)
		if err != nil {
			return nil, err
		}
		c.Add(d)
	}
	return c, nil
}
