package storage

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"sync"

	"partix/internal/xmltree"
)

// ErrNotFound marks lookups of collections or documents that do not
// exist, so callers can tell "absent" from a real I/O or decode failure
// with errors.Is instead of treating every error as absence.
var ErrNotFound = errors.New("not found")

// docEntry locates one stored document.
type docEntry struct {
	Page int64 // first page of the record chain
	Size int64 // encoded size in bytes
}

// catalog maps collection name → document name → location, plus named
// metadata records (index snapshots and the like). It is itself persisted
// as a record; the header points at it.
type catalog struct {
	Collections map[string]map[string]docEntry
	Meta        map[string]docEntry
}

// Store is a persistent XML document store: named collections of named
// documents over a single paged file. It is safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	pager *pager
	cat   catalog
	path  string
}

// Open opens (creating if needed) a store at path.
func Open(path string) (*Store, error) {
	p, err := openPager(path)
	if err != nil {
		return nil, err
	}
	s := &Store{pager: p, path: path, cat: catalog{Collections: map[string]map[string]docEntry{}}}
	if p.catalog != 0 {
		data, err := p.readRecord(p.catalog)
		if err != nil {
			p.close()
			return nil, fmt.Errorf("storage: load catalog: %w", err)
		}
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s.cat); err != nil {
			p.close()
			return nil, fmt.Errorf("storage: decode catalog: %w", err)
		}
	}
	return s, nil
}

// Close flushes the catalog and closes the file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.saveCatalogLocked(); err != nil {
		s.pager.close()
		return err
	}
	return s.pager.close()
}

// Sync persists the catalog and fsyncs the file.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.saveCatalogLocked(); err != nil {
		return err
	}
	return s.pager.sync()
}

func (s *Store) saveCatalogLocked() error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&s.cat); err != nil {
		return fmt.Errorf("storage: encode catalog: %w", err)
	}
	if s.pager.catalog != 0 {
		if err := s.pager.freeRecord(s.pager.catalog); err != nil {
			return err
		}
		s.pager.catalog = 0
	}
	id, err := s.pager.writeRecord(buf.Bytes())
	if err != nil {
		return err
	}
	s.pager.catalog = id
	return s.pager.writeHeader()
}

// CreateCollection declares an empty collection; it is a no-op when the
// collection exists.
func (s *Store) CreateCollection(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cat.Collections[name] == nil {
		s.cat.Collections[name] = map[string]docEntry{}
	}
}

// DropCollection deletes a collection and all its documents.
func (s *Store) DropCollection(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	docs, ok := s.cat.Collections[name]
	if !ok {
		return fmt.Errorf("storage: collection %q does not exist", name)
	}
	for _, e := range docs {
		if err := s.pager.freeRecord(e.Page); err != nil {
			return err
		}
	}
	delete(s.cat.Collections, name)
	return nil
}

// PutDocument stores (or replaces) a document in a collection, creating
// the collection if needed.
func (s *Store) PutDocument(collection string, doc *xmltree.Document) error {
	data, err := EncodeDocument(doc)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	docs := s.cat.Collections[collection]
	if docs == nil {
		docs = map[string]docEntry{}
		s.cat.Collections[collection] = docs
	}
	if old, ok := docs[doc.Name]; ok {
		if err := s.pager.freeRecord(old.Page); err != nil {
			return err
		}
	}
	page, err := s.pager.writeRecord(data)
	if err != nil {
		return err
	}
	docs[doc.Name] = docEntry{Page: page, Size: int64(len(data))}
	return nil
}

// GetDocument loads and decodes a document. Decoding happens on every call
// — the per-tree parse cost the evaluation section of the paper discusses.
func (s *Store) GetDocument(collection, name string) (*xmltree.Document, error) {
	data, err := s.GetDocumentRaw(collection, name)
	if err != nil {
		return nil, err
	}
	return DecodeDocument(name, data)
}

// GetDocumentRaw returns the encoded bytes of a document (used by the wire
// protocol to ship documents without a decode/encode round trip). The read
// lock is held across lookup and page reads so a concurrent delete cannot
// recycle the record's pages mid-read.
func (s *Store) GetDocumentRaw(collection, name string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, err := s.lookupLocked(collection, name)
	if err != nil {
		return nil, err
	}
	return s.pager.readRecordSized(e.Page, int(e.Size))
}

func (s *Store) lookupLocked(collection, name string) (docEntry, error) {
	docs, ok := s.cat.Collections[collection]
	if !ok {
		return docEntry{}, fmt.Errorf("storage: collection %q does not exist: %w", collection, ErrNotFound)
	}
	e, ok := docs[name]
	if !ok {
		return docEntry{}, fmt.Errorf("storage: document %q not in collection %q: %w", name, collection, ErrNotFound)
	}
	return e, nil
}

// DeleteDocument removes a document.
func (s *Store) DeleteDocument(collection, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := s.lookupLocked(collection, name)
	if err != nil {
		return err
	}
	if err := s.pager.freeRecord(e.Page); err != nil {
		return err
	}
	delete(s.cat.Collections[collection], name)
	return nil
}

// Collections returns the collection names, sorted.
func (s *Store) Collections() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.cat.Collections))
	for name := range s.cat.Collections {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Documents returns the document names of a collection, sorted.
func (s *Store) Documents(collection string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	docs, ok := s.cat.Collections[collection]
	if !ok {
		return nil, fmt.Errorf("storage: collection %q does not exist", collection)
	}
	out := make([]string, 0, len(docs))
	for name := range docs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// HasCollection reports whether a collection exists.
func (s *Store) HasCollection(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.cat.Collections[name]
	return ok
}

// Stats summarizes a collection: document count and stored bytes.
type Stats struct {
	Documents int
	Bytes     int64
}

// CollectionStats returns size statistics for a collection.
func (s *Store) CollectionStats(collection string) (Stats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	docs, ok := s.cat.Collections[collection]
	if !ok {
		return Stats{}, fmt.Errorf("storage: collection %q does not exist", collection)
	}
	st := Stats{Documents: len(docs)}
	for _, e := range docs {
		st.Bytes += e.Size
	}
	return st, nil
}

// PutMeta stores (or replaces) a named metadata record — opaque bytes the
// engine uses for persisted index snapshots. Metadata lives in the same
// paged file as documents.
func (s *Store) PutMeta(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cat.Meta == nil {
		s.cat.Meta = map[string]docEntry{}
	}
	if old, ok := s.cat.Meta[key]; ok {
		if err := s.pager.freeRecord(old.Page); err != nil {
			return err
		}
		delete(s.cat.Meta, key)
	}
	if len(data) == 0 {
		return nil // storing empty deletes the record
	}
	page, err := s.pager.writeRecord(data)
	if err != nil {
		return err
	}
	s.cat.Meta[key] = docEntry{Page: page, Size: int64(len(data))}
	return nil
}

// GetMeta loads a metadata record; ok is false when the key is absent.
func (s *Store) GetMeta(key string) (data []byte, ok bool, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, present := s.cat.Meta[key]
	if !present {
		return nil, false, nil
	}
	data, err = s.pager.readRecord(e.Page)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// LoadCollection stores every document of c under the collection name.
func (s *Store) LoadCollection(c *xmltree.Collection) error {
	s.CreateCollection(c.Name)
	for _, d := range c.Docs {
		if err := s.PutDocument(c.Name, d); err != nil {
			return err
		}
	}
	return nil
}

// ReadCollection decodes every document of a collection, sorted by name.
func (s *Store) ReadCollection(name string) (*xmltree.Collection, error) {
	docs, err := s.Documents(name)
	if err != nil {
		return nil, err
	}
	c := xmltree.NewCollection(name)
	for _, dn := range docs {
		d, err := s.GetDocument(name, dn)
		if err != nil {
			return nil, err
		}
		c.Add(d)
	}
	return c, nil
}
