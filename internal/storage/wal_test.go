package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestWALRecordRoundTrip(t *testing.T) {
	records := []walRecord{
		{Op: walOpPut, Collection: "items", Doc: "d1", Data: []byte("payload")},
		{Op: walOpDelete, Collection: "items", Doc: "d2"},
		{Op: walOpDrop, Collection: "gone"},
		{Op: walOpCreate, Collection: "fresh"},
		{Op: walOpMeta, Doc: "engine:index", Data: bytes.Repeat([]byte("m"), 3*PageSize)},
		{Op: walOpMeta, Doc: "engine:index"}, // empty data = delete
	}
	for i, rec := range records {
		frame := encodeWALRecord(nil, rec)
		got, ok := decodeWALRecord(frame[walFrameSize:])
		if !ok {
			t.Fatalf("record %d failed to decode", i)
		}
		if got.Op != rec.Op || got.Collection != rec.Collection || got.Doc != rec.Doc || !bytes.Equal(got.Data, rec.Data) {
			t.Fatalf("record %d round trip mismatch: %+v vs %+v", i, rec, got)
		}
	}
	if _, ok := decodeWALRecord([]byte{99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); ok {
		t.Fatal("unknown op decoded")
	}
	if _, ok := decodeWALRecord(nil); ok {
		t.Fatal("empty payload decoded")
	}
}

func TestWALReopenReplaysAppendedRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	w, records, err := openWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 {
		t.Fatalf("fresh wal returned %d records", len(records))
	}
	want := []walRecord{
		{Op: walOpPut, Collection: "c", Doc: "a", Data: []byte("one")},
		{Op: walOpDelete, Collection: "c", Doc: "a"},
		{Op: walOpPut, Collection: "c", Doc: "b", Data: []byte("two")},
	}
	for _, rec := range want {
		if _, err := w.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	w2, got, err := openWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Op != want[i].Op || got[i].Doc != want[i].Doc || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if w2.lastSeq() != uint64(len(want)) {
		t.Fatalf("sequence resumed at %d", w2.lastSeq())
	}
}

func TestWALTruncatesCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	w, _, err := openWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	var ends []int64
	for i := 0; i < 3; i++ {
		if _, err := w.append(walRecord{Op: walOpPut, Collection: "c", Doc: fmt.Sprintf("d%d", i), Data: []byte("data")}); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, w.sizeNow())
	}
	w.close()

	// Flip one byte inside the third record's payload: CRC must reject it
	// and the log must come back truncated to the two intact records.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[ends[1]+walFrameSize+2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, records, err := openWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if len(records) != 2 {
		t.Fatalf("replayed %d records past a corrupt frame, want 2", len(records))
	}
	if w2.sizeNow() != ends[1] {
		t.Fatalf("torn tail not truncated: size %d, want %d", w2.sizeNow(), ends[1])
	}
}

// TestWALGroupCommit drives concurrent committers through the group-commit
// path and asserts every acknowledged commit is covered by a sync.
func TestWALGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	w, _, err := openWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				seq, err := w.append(walRecord{Op: walOpPut, Collection: "c", Doc: fmt.Sprintf("g%d-%d", g, i), Data: []byte("x")})
				if err != nil {
					errs <- err
					return
				}
				if err := w.commit(seq); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	w.gc.mu.Lock()
	synced := w.gc.synced
	w.gc.mu.Unlock()
	if synced != w.lastSeq() {
		t.Fatalf("synced %d of %d appended records", synced, w.lastSeq())
	}
}
