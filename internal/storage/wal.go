package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"partix/internal/obs"
)

// The write-ahead log makes Put/Delete/Drop durable at commit without
// paying a catalog write per operation. Every mutating operation appends
// one record — framed, checksummed — to an append-only side file
// (<store>.wal) while it applies the change to the paged file and the
// in-memory catalog; the catalog itself is only persisted by checkpoints,
// which then truncate the log. Opening a store replays whatever the log
// holds on top of the last checkpointed catalog, so a crash loses nothing
// that was acknowledged.
//
// Durability is fsync-with-group-commit: a committer whose record is not
// yet known durable either becomes the sync leader (one fsync covers every
// record appended so far) or waits for the in-flight leader whose fsync
// will cover it. Concurrent committers therefore batch into a single
// fsync instead of queueing one fsync each.
//
// A torn tail — a crash mid-append — is detected by the frame checksum;
// replay stops at the first bad frame and truncates it away, yielding
// exactly the prefix of acknowledged commits that reached the disk.

const (
	walMagic      = "PTXWAL01"
	walHeaderSize = 8
	walFrameSize  = 8 // u32 payload length + u32 crc32(payload)

	// walMaxRecord bounds a single replayed record (a document plus
	// framing); larger length fields mark a torn or corrupt frame.
	walMaxRecord = 1 << 30
)

// walOp enumerates the logged operations.
type walOp byte

const (
	walOpPut    walOp = 1 // Collection, Doc, Data (encoded document)
	walOpDelete walOp = 2 // Collection, Doc
	walOpDrop   walOp = 3 // Collection
	walOpCreate walOp = 4 // Collection
	walOpMeta   walOp = 5 // Doc (meta key), Data (empty = delete)
)

// walRecord is one logged operation.
type walRecord struct {
	Op         walOp
	Collection string
	Doc        string
	Data       []byte
}

// wal is the append-only log of one store.
type wal struct {
	mu   sync.Mutex // guards appends: file offset and sequence
	f    *os.File
	size int64
	seq  uint64 // sequence of the last appended record

	nofsync bool

	// lastSync is the unix-nano time of the last successful fsync (or
	// open/reset, when the on-disk state was known durable), read by
	// WALStatus for checkpoint-lag health reporting.
	lastSync atomic.Int64

	// The group-commit state. sync.mu is never held while waiting for
	// wal.mu's holder, and the leader releases sync.mu around the fsync
	// itself, so appends keep flowing into the next batch.
	gc struct {
		mu      sync.Mutex
		cond    *sync.Cond
		synced  uint64 // highest sequence known durable
		syncing bool   // a leader's fsync is in flight
		err     error  // sticky: the log is unusable after a failed fsync
	}
}

// openWAL opens (creating if needed) the log at path and scans it,
// returning every intact record for replay. A torn tail is truncated.
func openWAL(path string, nofsync bool) (*wal, []walRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: open wal %s: %w", path, err)
	}
	w := &wal{f: f, nofsync: nofsync}
	w.gc.cond = sync.NewCond(&w.gc.mu)
	w.lastSync.Store(time.Now().UnixNano())
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("storage: stat wal %s: %w", path, err)
	}
	if st.Size() < walHeaderSize {
		// Fresh log (or one torn during creation): start it over.
		if err := w.reinit(); err != nil {
			f.Close()
			return nil, nil, err
		}
		return w, nil, nil
	}
	hdr := make([]byte, walHeaderSize)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, walHeaderSize), hdr); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("storage: read wal header: %w", err)
	}
	if string(hdr) != walMagic {
		f.Close()
		return nil, nil, fmt.Errorf("storage: bad wal magic %q (not a partix wal)", hdr)
	}
	records, good := scanWAL(f, st.Size())
	if good < st.Size() {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("storage: truncate torn wal tail: %w", err)
		}
	}
	w.size = good
	w.seq = uint64(len(records))
	w.gc.synced = w.seq // everything read back is on disk by definition
	return w, records, nil
}

// scanWAL reads frames from after the header until the first torn or
// corrupt one, returning the decoded records and the offset of the last
// good frame's end.
func scanWAL(f *os.File, size int64) ([]walRecord, int64) {
	var records []walRecord
	off := int64(walHeaderSize)
	frame := make([]byte, walFrameSize)
	for {
		if off+walFrameSize > size {
			return records, off
		}
		if _, err := f.ReadAt(frame, off); err != nil {
			return records, off
		}
		n := int64(binary.LittleEndian.Uint32(frame))
		sum := binary.LittleEndian.Uint32(frame[4:])
		if n == 0 || n > walMaxRecord || off+walFrameSize+n > size {
			return records, off
		}
		payload := make([]byte, n)
		if _, err := f.ReadAt(payload, off+walFrameSize); err != nil {
			return records, off
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return records, off
		}
		rec, ok := decodeWALRecord(payload)
		if !ok {
			return records, off
		}
		records = append(records, rec)
		off += walFrameSize + n
	}
}

// reinit writes a fresh header over an empty (or abandoned) log file.
func (w *wal) reinit() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("storage: reset wal: %w", err)
	}
	if _, err := w.f.WriteAt([]byte(walMagic), 0); err != nil {
		return fmt.Errorf("storage: write wal header: %w", err)
	}
	w.size = walHeaderSize
	return nil
}

// encodeWALRecord appends the framed record to buf and returns it.
func encodeWALRecord(buf []byte, rec walRecord) []byte {
	payload := make([]byte, 0, 1+3*4+len(rec.Collection)+len(rec.Doc)+len(rec.Data))
	payload = append(payload, byte(rec.Op))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(rec.Collection)))
	payload = append(payload, rec.Collection...)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(rec.Doc)))
	payload = append(payload, rec.Doc...)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(rec.Data)))
	payload = append(payload, rec.Data...)

	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// decodeWALRecord parses one frame payload.
func decodeWALRecord(p []byte) (walRecord, bool) {
	var rec walRecord
	if len(p) < 1 {
		return rec, false
	}
	rec.Op = walOp(p[0])
	p = p[1:]
	next := func() ([]byte, bool) {
		if len(p) < 4 {
			return nil, false
		}
		n := int(binary.LittleEndian.Uint32(p))
		p = p[4:]
		if n > len(p) {
			return nil, false
		}
		field := p[:n]
		p = p[n:]
		return field, true
	}
	col, ok := next()
	if !ok {
		return rec, false
	}
	doc, ok := next()
	if !ok {
		return rec, false
	}
	data, ok := next()
	if !ok || len(p) != 0 {
		return rec, false
	}
	rec.Collection = string(col)
	rec.Doc = string(doc)
	if len(data) > 0 {
		rec.Data = append([]byte(nil), data...)
	}
	switch rec.Op {
	case walOpPut, walOpDelete, walOpDrop, walOpCreate, walOpMeta:
		return rec, true
	}
	return rec, false
}

// append writes one record to the log (no fsync) and returns its
// sequence, which commit turns into a durability guarantee.
func (w *wal) append(rec walRecord) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.gc.mu.Lock()
	err := w.gc.err
	w.gc.mu.Unlock()
	if err != nil {
		return 0, err
	}
	buf := encodeWALRecord(nil, rec)
	if _, err := w.f.WriteAt(buf, w.size); err != nil {
		return 0, fmt.Errorf("storage: append wal record: %w", err)
	}
	w.size += int64(len(buf))
	w.seq++
	obs.StorageWALAppends.Inc()
	obs.StorageWALBytes.Add(int64(len(buf)))
	return w.seq, nil
}

// lastSeq returns the sequence of the most recently appended record.
func (w *wal) lastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// sizeNow returns the current log size in bytes.
func (w *wal) sizeNow() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// commit blocks until the record with the given sequence is durable,
// batching with every other in-flight committer: the first waiter becomes
// the leader and fsyncs once for everything appended so far; the rest
// ride that fsync (or the next one, if they appended during it).
func (w *wal) commit(seq uint64) error {
	if w.nofsync || seq == 0 {
		return nil
	}
	g := &w.gc
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if g.err != nil {
			return g.err
		}
		if g.synced >= seq {
			return nil
		}
		if g.syncing {
			g.cond.Wait()
			continue
		}
		g.syncing = true
		covered := g.synced
		g.mu.Unlock()
		w.mu.Lock()
		target := w.seq
		w.mu.Unlock()
		err := w.f.Sync()
		g.mu.Lock()
		g.syncing = false
		if err != nil {
			// The kernel may have dropped the unflushed pages; nothing
			// appended so far can be trusted durable. Poison the log so no
			// later commit reports success it cannot guarantee.
			g.err = fmt.Errorf("storage: wal fsync: %w", err)
		} else {
			if target > g.synced {
				g.synced = target
			}
			w.lastSync.Store(time.Now().UnixNano())
			obs.StorageWALFsyncs.Inc()
			obs.StorageWALGroupSize.Observe(float64(target - covered))
		}
		g.cond.Broadcast()
	}
}

// reset truncates the log after a checkpoint that covers every record up
// to coveredSeq, releasing any committer still waiting on one of them.
func (w *wal) reset(coveredSeq uint64) error {
	w.mu.Lock()
	err := w.reinit()
	w.mu.Unlock()
	if err == nil {
		// An empty log is durable by definition.
		w.lastSync.Store(time.Now().UnixNano())
	}
	g := &w.gc
	g.mu.Lock()
	if coveredSeq > g.synced {
		g.synced = coveredSeq
	}
	g.cond.Broadcast()
	g.mu.Unlock()
	return err
}

// close releases the file. Pending commits are not waited for; the store
// checkpoints before closing, which covers them.
func (w *wal) close() error {
	return w.f.Close()
}

// status reads the log's durability state for health reporting.
func (w *wal) status() (size int64, lastSeq, syncedSeq uint64, lastSync time.Time) {
	w.mu.Lock()
	size, lastSeq = w.size, w.seq
	w.mu.Unlock()
	w.gc.mu.Lock()
	syncedSeq = w.gc.synced
	w.gc.mu.Unlock()
	if ns := w.lastSync.Load(); ns != 0 {
		lastSync = time.Unix(0, ns)
	}
	return size, lastSeq, syncedSeq, lastSync
}
