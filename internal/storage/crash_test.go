package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"partix/internal/xmltree"
)

// copyCrashImage snapshots the store's on-disk state (page file + WAL) the
// way a crash would leave it: whatever reached the files, header and
// catalog updates not included unless a checkpoint ran.
func copyCrashImage(t *testing.T, srcPath, dstPath string) {
	t.Helper()
	for _, suffix := range []string{"", ".wal"} {
		data, err := os.ReadFile(srcPath + suffix)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dstPath+suffix, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashRecoveryWithoutSync acknowledges a batch of mutations without
// ever calling Sync or Close, then opens the files as a crashed process
// left them: every acknowledged commit must be there.
func TestCrashRecoveryWithoutSync(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	docs := map[string]string{}
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("d%d", i)
		xml := fmt.Sprintf("<a><b>version-one-%d</b></a>", i)
		if err := s.PutDocument("items", doc(name, xml)); err != nil {
			t.Fatal(err)
		}
		docs[name] = xml
	}
	// Replace one, delete one, create-and-drop a collection, store meta.
	docs["d5"] = "<a><b>version-two</b></a>"
	if err := s.PutDocument("items", doc("d5", docs["d5"])); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteDocument("items", "d3"); err != nil {
		t.Fatal(err)
	}
	delete(docs, "d3")
	if err := s.PutDocument("aux", doc("x", "<a/>")); err != nil {
		t.Fatal(err)
	}
	if err := s.DropCollection("aux"); err != nil {
		t.Fatal(err)
	}
	if err := s.PutMeta("engine:index", []byte("snapshot-bytes")); err != nil {
		t.Fatal(err)
	}

	crash := filepath.Join(dir, "crash.db")
	copyCrashImage(t, path, crash)

	s2, err := Open(crash)
	if err != nil {
		t.Fatalf("open after crash: %v", err)
	}
	if s2.RecoveredMutations() == 0 {
		t.Fatal("expected WAL replay, got a clean open")
	}
	names, err := s2.Documents("items")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(docs) {
		t.Fatalf("recovered %d documents, want %d (%v)", len(names), len(docs), names)
	}
	for name, xml := range docs {
		got, err := s2.GetDocument("items", name)
		if err != nil {
			t.Fatalf("recovered %s: %v", name, err)
		}
		if want := doc(name, xml); !xmltree.EqualDocuments(want, got) {
			t.Fatalf("recovered %s differs: %s", name, xmltree.Diff(want.Root, got.Root))
		}
	}
	if s2.HasCollection("aux") {
		t.Fatal("dropped collection resurrected by recovery")
	}
	if data, ok, err := s2.GetMeta("engine:index"); err != nil || !ok || string(data) != "snapshot-bytes" {
		t.Fatalf("meta after recovery: %q %v %v", data, ok, err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery checkpointed, so a second open must be clean.
	s3, err := Open(crash)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.RecoveredMutations() != 0 {
		t.Fatalf("second open replayed %d records; recovery did not checkpoint", s3.RecoveredMutations())
	}
}

// TestWALKillPointFuzz simulates a crash at every possible byte offset of
// the write-ahead log: for each truncation length the store must recover
// to exactly the prefix of commits whose records fit completely, never
// serving a torn document or a dangling catalog entry.
func TestWALKillPointFuzz(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.db")
	s, err := OpenWith(path, Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Checkpointed baseline: one document that predates the log.
	baseXML := "<a><b>base</b></a>"
	if err := s.PutDocument("items", doc("base", baseXML)); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}

	// Acknowledged commits after the checkpoint. states[j] is the expected
	// document set after the first j commits; sizes[j-1] the WAL length
	// that covers them.
	model := map[string]string{"base": baseXML}
	snapshot := func() map[string]string {
		m := make(map[string]string, len(model))
		for k, v := range model {
			m[k] = v
		}
		return m
	}
	states := []map[string]string{snapshot()}
	var sizes []int64
	commit := func(mutate func() error, update func()) {
		t.Helper()
		if err := mutate(); err != nil {
			t.Fatal(err)
		}
		update()
		states = append(states, snapshot())
		sizes = append(sizes, s.wal.sizeNow())
	}
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("d%d", i%7) // i >= 7 replaces an earlier version
		xml := fmt.Sprintf("<a><b>content-%d</b><c>%d</c></a>", i, i*i)
		commit(
			func() error { return s.PutDocument("items", doc(name, xml)) },
			func() { model[name] = xml },
		)
		if i == 4 || i == 9 {
			victim := fmt.Sprintf("d%d", (i-2)%7)
			commit(
				func() error { return s.DeleteDocument("items", victim) },
				func() { delete(model, victim) },
			)
		}
	}

	pageImage, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	walImage, err := os.ReadFile(path + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(len(walImage)); got != sizes[len(sizes)-1] {
		t.Fatalf("wal file is %d bytes, last commit recorded %d", got, sizes[len(sizes)-1])
	}

	crash := filepath.Join(dir, "kill.db")
	for cut := 0; cut <= len(walImage); cut++ {
		// Expected: the longest prefix of commits whose records lie fully
		// within the first cut bytes.
		j := 0
		for j < len(sizes) && sizes[j] <= int64(cut) {
			j++
		}
		want := states[j]

		if err := os.WriteFile(crash, pageImage, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(crash+".wal", walImage[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rs, err := OpenWith(crash, Options{NoFsync: true})
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		names, err := rs.Documents("items")
		if err != nil {
			t.Fatalf("cut=%d: documents: %v", cut, err)
		}
		if len(names) != len(want) {
			t.Fatalf("cut=%d: recovered %d docs (%v), want %d commits applied", cut, len(names), names, j)
		}
		for name, xml := range want {
			got, err := rs.GetDocument("items", name)
			if err != nil {
				t.Fatalf("cut=%d: read %s: %v", cut, name, err)
			}
			if wantDoc := doc(name, xml); !xmltree.EqualDocuments(wantDoc, got) {
				t.Fatalf("cut=%d: %s differs from the acknowledged version", cut, name)
			}
		}
		if err := rs.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
	}
}

// TestCatalogWriteFailureKeepsOldCatalog injects a page-write failure into
// the checkpoint's catalog write: the previous catalog must stay intact
// and a later checkpoint must succeed (write-new-then-free-old).
func TestCatalogWriteFailureKeepsOldCatalog(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cat.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	d1 := doc("d1", "<a><b>one</b></a>")
	if err := s.PutDocument("c", d1); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	oldCatalog := s.pager.catalog

	s.pager.failWrite = func(id int64) error { return errors.New("injected write failure") }
	if err := s.Sync(); err == nil {
		t.Fatal("checkpoint with failing writes reported success")
	}
	s.pager.failWrite = nil

	if s.pager.catalog != oldCatalog {
		t.Fatalf("catalog pointer moved from %d to %d despite failed write", oldCatalog, s.pager.catalog)
	}
	got, err := s.GetDocument("c", "d1")
	if err != nil {
		t.Fatalf("document unreadable after failed checkpoint: %v", err)
	}
	if !xmltree.EqualDocuments(d1, got) {
		t.Fatal("document corrupt after failed checkpoint")
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("checkpoint after clearing the fault: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, err := s2.GetDocument("c", "d1"); err != nil || !xmltree.EqualDocuments(d1, got) {
		t.Fatalf("document lost across reopen: %v", err)
	}
}

// TestPutReplaceWriteFailure injects a write failure into a replacing Put:
// the old version must survive untouched on every error path.
func TestPutReplaceWriteFailure(t *testing.T) {
	s, _ := tempStore(t)
	v1 := doc("d", "<a><b>version-one</b></a>")
	if err := s.PutDocument("c", v1); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.pager.failWrite = func(id int64) error { return errors.New("injected write failure") }
	if err := s.PutDocument("c", doc("d", "<a><b>version-two</b></a>")); err == nil {
		t.Fatal("put with failing writes reported success")
	}
	s.pager.failWrite = nil
	got, err := s.GetDocument("c", "d")
	if err != nil {
		t.Fatalf("old version unreadable after failed replace: %v", err)
	}
	if !xmltree.EqualDocuments(v1, got) {
		t.Fatal("old version corrupt after failed replace")
	}
}

// TestSnapshotSurvivesReplaceAndCheckpoint pins a snapshot, replaces and
// checkpoints underneath it, and asserts the snapshot still reads the old
// version (pages pinned by an active reader are never recycled).
func TestSnapshotSurvivesReplaceAndCheckpoint(t *testing.T) {
	s, _ := tempStore(t)
	v1 := doc("d", "<a><b>pinned-version</b></a>")
	if err := s.PutDocument("c", v1); err != nil {
		t.Fatal(err)
	}
	snap, err := s.SnapshotCollection("c")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutDocument("c", doc("d", "<a><b>newer</b></a>")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil { // must not drain the pinned chain
		t.Fatal(err)
	}
	if len(snap.Refs) != 1 {
		t.Fatalf("snapshot has %d refs", len(snap.Refs))
	}
	data, err := s.ReadRef(snap.Refs[0])
	if err != nil {
		t.Fatalf("pinned read: %v", err)
	}
	old, err := DecodeDocument("d", data)
	if err != nil {
		t.Fatalf("pinned record torn: %v", err)
	}
	if !xmltree.EqualDocuments(v1, old) {
		t.Fatal("snapshot read served the newer version")
	}
	snap.Close()
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// With the pin gone the chain drains; new writes reuse the pages.
	steady := s.pager.pageCount.Load()
	if err := s.PutDocument("c", doc("d", "<a><b>again</b></a>")); err != nil {
		t.Fatal(err)
	}
	if got := s.pager.pageCount.Load(); got > steady+1 {
		t.Fatalf("pages grew from %d to %d; drained chain not reused", steady, got)
	}
}
