package storage

import (
	"path/filepath"
	"strings"
	"testing"

	"partix/internal/xmltree"
)

func TestMetaRoundTripAndPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutMeta("idx", []byte("snapshot-bytes")); err != nil {
		t.Fatal(err)
	}
	// Large metadata spans pages.
	big := []byte(strings.Repeat("m", 3*PageSize))
	if err := s.PutMeta("big", big); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	data, ok, err := s2.GetMeta("idx")
	if err != nil || !ok || string(data) != "snapshot-bytes" {
		t.Fatalf("meta after reopen: %q %v %v", data, ok, err)
	}
	got, ok, err := s2.GetMeta("big")
	if err != nil || !ok || len(got) != len(big) {
		t.Fatalf("big meta: %d bytes, %v, %v", len(got), ok, err)
	}
}

func TestMetaReplaceFreesPages(t *testing.T) {
	s, _ := tempStore(t)
	big := []byte(strings.Repeat("x", 4*PageSize))
	if err := s.PutMeta("k", big); err != nil {
		t.Fatal(err)
	}
	// Replaced chains recycle at the next checkpoint, not inline: grow to
	// the steady state, checkpoint, then assert replaces reuse the drained
	// pages.
	if err := s.PutMeta("k", big); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	pages := s.pager.pageCount.Load()
	if err := s.PutMeta("k", big); err != nil {
		t.Fatal(err)
	}
	if got := s.pager.pageCount.Load(); got > pages+1 {
		t.Fatalf("pages grew from %d to %d on meta replace", pages, got)
	}
}

func TestSyncDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sync.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	d := xmltree.MustParseString("d1", "<a><b>v</b></a>")
	if err := s.PutDocument("c", d); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// Reopen the same file via a second handle without closing the first
	// — the synced catalog must already be on disk.
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.GetDocument("c", "d1")
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.EqualDocuments(d, got) {
		t.Fatal("synced document unreadable from second handle")
	}
	s2.Close()
	s.Close()
}

func TestReadPageOutOfRange(t *testing.T) {
	s, _ := tempStore(t)
	buf := make([]byte, PageSize)
	if err := s.pager.readPageInto(999, buf); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
	if err := s.pager.readPageInto(0, buf); err == nil {
		t.Fatal("header page read via readPageInto succeeded")
	}
}

func TestWritePageValidation(t *testing.T) {
	s, _ := tempStore(t)
	if err := s.pager.writePage(1, make([]byte, 10)); err == nil {
		t.Fatal("short buffer accepted")
	}
	if err := s.pager.writePage(0, make([]byte, PageSize)); err == nil {
		t.Fatal("write to header page accepted")
	}
}

func TestEmptyRecordRejected(t *testing.T) {
	s, _ := tempStore(t)
	if _, err := s.pager.writeRecord(nil); err == nil {
		t.Fatal("empty record accepted")
	}
}
