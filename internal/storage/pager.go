// Package storage implements the persistent document store each PartiX
// node runs on: a paged single-file store with a free list, chained-page
// records, a collection catalog and a compact binary tree encoding that
// preserves node IDs (vertical fragments are joined back by ID, so the
// store must not lose them the way a plain XML serialization would).
//
// The layout is deliberately simple and classical:
//
//	page 0            header (magic, version, page count, free list,
//	                  catalog record pointer)
//	page 1..n         record pages, each [next int64][used uint16][data]
//
// A record (an encoded document, or the catalog itself) occupies a chain
// of pages. Deleting a record parks its pages on a pending-free list; they
// rejoin the on-disk free list only at the next checkpoint, and only once
// no snapshot reader pinned before the delete is still active. That
// discipline is what makes both crash recovery and MVCC reads work: a
// page reachable from the last checkpointed catalog, or from any pinned
// snapshot, is never rewritten. Mutating operations are serialized by a
// store-level mutex; durability is write-ahead logging with group-commit
// fsync (wal.go), with the catalog persisted by checkpoints.
package storage

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"partix/internal/obs"
)

// PageSize is the fixed page size of a store file.
const PageSize = 4096

const (
	magic          = "PTXSTOR1"
	headerSize     = 8 + 8 + 8 + 8 // magic, pageCount, freeHead, catalogPage
	pageHeaderSize = 8 + 2         // next page id, used bytes
	pagePayload    = PageSize - pageHeaderSize
)

// pagePool recycles page-sized scratch buffers across record reads and
// writes; the query hot path reads one page buffer per chained page, so
// pooling removes a 4 KB allocation per page per document fetched.
var pagePool = sync.Pool{
	New: func() any {
		b := make([]byte, PageSize)
		return &b
	},
}

// pager manages the page file: allocation, free list and raw page IO.
// Allocation and free-list state are mutated only under the owning
// store's write lock; pageCount is atomic because pinned snapshot readers
// bounds-check page reads without holding any store lock.
type pager struct {
	f         *os.File
	pageCount atomic.Int64
	freeHead  int64
	catalog   int64 // first page of the catalog record, 0 if none

	// failWrite, when set, intercepts every page write (test hook for
	// injecting I/O failures on specific pages).
	failWrite func(id int64) error
}

func openPager(path string) (*pager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	p := &pager{f: f}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	if st.Size() == 0 {
		p.pageCount.Store(1) // header page
		if err := p.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
		return p, nil
	}
	if err := p.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return p, nil
}

func (p *pager) writeHeader() error {
	buf := make([]byte, PageSize)
	copy(buf, magic)
	binary.LittleEndian.PutUint64(buf[8:], uint64(p.pageCount.Load()))
	binary.LittleEndian.PutUint64(buf[16:], uint64(p.freeHead))
	binary.LittleEndian.PutUint64(buf[24:], uint64(p.catalog))
	if _, err := p.f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("storage: write header: %w", err)
	}
	return nil
}

func (p *pager) readHeader() error {
	buf := make([]byte, PageSize)
	if _, err := io.ReadFull(io.NewSectionReader(p.f, 0, PageSize), buf); err != nil {
		return fmt.Errorf("storage: read header: %w", err)
	}
	if string(buf[:8]) != magic {
		return fmt.Errorf("storage: bad magic %q (not a partix store)", buf[:8])
	}
	p.pageCount.Store(int64(binary.LittleEndian.Uint64(buf[8:])))
	p.freeHead = int64(binary.LittleEndian.Uint64(buf[16:]))
	p.catalog = int64(binary.LittleEndian.Uint64(buf[24:]))
	if p.pageCount.Load() < 1 {
		return fmt.Errorf("storage: corrupt header: page count %d", p.pageCount.Load())
	}
	return nil
}

// allocPage returns a usable page id, reusing the free list first.
func (p *pager) allocPage() (int64, error) {
	if p.freeHead != 0 {
		id := p.freeHead
		bufp := pagePool.Get().(*[]byte)
		next, _, err := p.readPageHeaderInto(id, *bufp)
		pagePool.Put(bufp)
		if err != nil {
			return 0, err
		}
		p.freeHead = next
		return id, nil
	}
	id := p.pageCount.Load()
	p.pageCount.Add(1)
	return id, nil
}

// freePage links the page into the free list. Only the page header is
// meaningful on a free page (allocPage validates it), so the pooled
// buffer's stale payload past the header is harmless.
func (p *pager) freePage(id int64) error {
	bufp := pagePool.Get().(*[]byte)
	defer pagePool.Put(bufp)
	buf := *bufp
	for i := 0; i < pageHeaderSize; i++ {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint64(buf, uint64(p.freeHead))
	if err := p.writePage(id, buf); err != nil {
		return err
	}
	p.freeHead = id
	return nil
}

func (p *pager) writePage(id int64, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("storage: page buffer is %d bytes", len(buf))
	}
	if id < 1 {
		return fmt.Errorf("storage: write to reserved page %d", id)
	}
	if p.failWrite != nil {
		if err := p.failWrite(id); err != nil {
			return err
		}
	}
	if _, err := p.f.WriteAt(buf, id*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	obs.StoragePagesWritten.Inc()
	obs.StorageBytesWritten.Add(PageSize)
	return nil
}

// readPageInto fills buf (PageSize bytes) with the page's content.
func (p *pager) readPageInto(id int64, buf []byte) error {
	if count := p.pageCount.Load(); id < 1 || id >= count {
		return fmt.Errorf("storage: read of page %d outside store (pages: %d)", id, count)
	}
	if _, err := p.f.ReadAt(buf, id*PageSize); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	obs.StoragePagesRead.Inc()
	obs.StorageBytesRead.Add(PageSize)
	return nil
}

func (p *pager) readPageHeaderInto(id int64, buf []byte) (next int64, used int, err error) {
	if err := p.readPageInto(id, buf); err != nil {
		return 0, 0, err
	}
	next = int64(binary.LittleEndian.Uint64(buf))
	used = int(binary.LittleEndian.Uint16(buf[8:]))
	if used > pagePayload {
		return 0, 0, fmt.Errorf("storage: corrupt page %d: used %d", id, used)
	}
	return next, used, nil
}

// allocRecordPages reserves a chain of pages big enough for size bytes.
// Callers hold the store's write lock; the pages are exclusively theirs
// until committed into the catalog or returned via the pending-free list,
// so the data can be written without any lock held.
func (p *pager) allocRecordPages(size int) ([]int64, error) {
	if size == 0 {
		return nil, fmt.Errorf("storage: empty record")
	}
	n := (size + pagePayload - 1) / pagePayload
	pages := make([]int64, n)
	for i := range pages {
		id, err := p.allocPage()
		if err != nil {
			return nil, err
		}
		pages[i] = id
	}
	return pages, nil
}

// writeRecordPages fills a pre-allocated chain with data, linking the
// pages front-to-back. No lock is needed: the chain is unreferenced until
// the caller commits it.
func (p *pager) writeRecordPages(pages []int64, data []byte) error {
	bufp := pagePool.Get().(*[]byte)
	defer pagePool.Put(bufp)
	buf := *bufp
	for i, id := range pages {
		chunk := data[i*pagePayload:]
		if len(chunk) > pagePayload {
			chunk = chunk[:pagePayload]
		}
		var next int64
		if i+1 < len(pages) {
			next = pages[i+1]
		}
		binary.LittleEndian.PutUint64(buf, uint64(next))
		binary.LittleEndian.PutUint16(buf[8:], uint16(len(chunk)))
		copy(buf[pageHeaderSize:], chunk)
		if err := p.writePage(id, buf); err != nil {
			return err
		}
	}
	return nil
}

// writeRecord stores data in a fresh chain of pages and returns the id of
// the first page (allocation and writes under one caller-held lock; used
// for the rare catalog write, where staging buys nothing).
func (p *pager) writeRecord(data []byte) (int64, error) {
	pages, err := p.allocRecordPages(len(data))
	if err != nil {
		return 0, err
	}
	if err := p.writeRecordPages(pages, data); err != nil {
		return 0, err
	}
	return pages[0], nil
}

// chainPages walks a record chain and returns every page id in it.
func (p *pager) chainPages(first int64) ([]int64, error) {
	bufp := pagePool.Get().(*[]byte)
	defer pagePool.Put(bufp)
	var pages []int64
	id := first
	for id != 0 {
		next, _, err := p.readPageHeaderInto(id, *bufp)
		if err != nil {
			return nil, err
		}
		pages = append(pages, id)
		id = next
	}
	return pages, nil
}

// readRecord loads a full record chain.
func (p *pager) readRecord(first int64) ([]byte, error) {
	return p.readRecordSized(first, 0)
}

// readRecordSized loads a full record chain into an output buffer
// presized for the expected record length (the catalog knows every
// document's encoded size, so the hot read path never regrows).
func (p *pager) readRecordSized(first int64, size int) ([]byte, error) {
	bufp := pagePool.Get().(*[]byte)
	defer pagePool.Put(bufp)
	buf := *bufp
	out := make([]byte, 0, size)
	id := first
	for id != 0 {
		next, used, err := p.readPageHeaderInto(id, buf)
		if err != nil {
			return nil, err
		}
		out = append(out, buf[pageHeaderSize:pageHeaderSize+used]...)
		id = next
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("storage: empty record chain at page %d", first)
	}
	return out, nil
}

// freeRecord returns a record's chain to the free list.
func (p *pager) freeRecord(first int64) error {
	bufp := pagePool.Get().(*[]byte)
	defer pagePool.Put(bufp)
	id := first
	for id != 0 {
		next, _, err := p.readPageHeaderInto(id, *bufp)
		if err != nil {
			return err
		}
		if err := p.freePage(id); err != nil {
			return err
		}
		id = next
	}
	return nil
}

func (p *pager) sync() error {
	if err := p.writeHeader(); err != nil {
		return err
	}
	return p.f.Sync()
}

// fsync flushes the page file without touching the header (checkpoints
// order their own header write between two fsyncs).
func (p *pager) fsync() error {
	if err := p.f.Sync(); err != nil {
		return fmt.Errorf("storage: fsync: %w", err)
	}
	return nil
}

func (p *pager) close() error {
	if err := p.writeHeader(); err != nil {
		p.f.Close()
		return err
	}
	return p.f.Close()
}
