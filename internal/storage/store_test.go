package storage

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"partix/internal/xmltree"
)

func tempStore(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, path
}

func doc(name, xml string) *xmltree.Document {
	return xmltree.MustParseString(name, xml)
}

func TestPutGetRoundTrip(t *testing.T) {
	s, _ := tempStore(t)
	d := doc("i1", `<Item id="1"><Code>I1</Code><Section>CD</Section></Item>`)
	if err := s.PutDocument("items", d); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetDocument("items", "i1")
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.EqualDocuments(d, got) {
		t.Fatalf("round trip mismatch: %s", xmltree.Diff(d.Root, got.Root))
	}
}

func TestBinaryEncodingPreservesIDs(t *testing.T) {
	d := doc("x", `<a><b attr="v">text</b><c/></a>`)
	data, err := EncodeDocument(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeDocument("x", data)
	if err != nil {
		t.Fatal(err)
	}
	var origIDs, backIDs []xmltree.NodeID
	d.Root.Walk(func(n *xmltree.Node) bool { origIDs = append(origIDs, n.ID); return true })
	back.Root.Walk(func(n *xmltree.Node) bool { backIDs = append(backIDs, n.ID); return true })
	if len(origIDs) != len(backIDs) {
		t.Fatalf("node counts differ: %d vs %d", len(origIDs), len(backIDs))
	}
	for i := range origIDs {
		if origIDs[i] != backIDs[i] {
			t.Fatalf("ID %d: %d vs %d", i, origIDs[i], backIDs[i])
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := EncodeDocument(&xmltree.Document{Name: "x"}); err == nil {
		t.Fatal("nil root encoded")
	}
}

func TestDecodeRejectsCorruptRecords(t *testing.T) {
	d := doc("x", `<a><b>text</b></a>`)
	data, _ := EncodeDocument(d)
	cases := map[string][]byte{
		"empty":        {},
		"bad version":  {99},
		"truncated":    data[:len(data)/2],
		"trailing":     append(append([]byte{}, data...), 0xFF),
		"huge table":   {1, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F},
		"bad name ref": {1, 0, 0 /*kind=element*/, 1 /*id*/, 7 /*ref out of empty table*/, 0},
	}
	for name, in := range cases {
		if _, err := DecodeDocument("x", in); err == nil {
			t.Errorf("%s: decoded successfully", name)
		}
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	d1 := doc("i1", `<Item><Code>I1</Code></Item>`)
	d2 := doc("i2", `<Item><Code>I2</Code></Item>`)
	if err := s.PutDocument("items", d1); err != nil {
		t.Fatal(err)
	}
	if err := s.PutDocument("items", d2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	names, err := s2.Documents("items")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "i1" || names[1] != "i2" {
		t.Fatalf("documents after reopen: %v", names)
	}
	got, err := s2.GetDocument("items", "i2")
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.EqualDocuments(d2, got) {
		t.Fatal("content lost across reopen")
	}
}

func TestReplaceDocumentReusesSpace(t *testing.T) {
	s, _ := tempStore(t)
	big := doc("d", "<a><b>"+strings.Repeat("x", 3*PageSize)+"</b></a>")
	if err := s.PutDocument("c", big); err != nil {
		t.Fatal(err)
	}
	// A replaced chain is recycled at the next checkpoint (deferred free),
	// so the file grows by one chain on the first replace and then reaches
	// a steady state: reach it, then assert replaces stop growing the file.
	if err := s.PutDocument("c", big); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	steady := s.pager.pageCount.Load()
	// This replace must fill the pages the checkpoint just drained.
	if err := s.PutDocument("c", big); err != nil {
		t.Fatal(err)
	}
	if got := s.pager.pageCount.Load(); got > steady+1 {
		t.Fatalf("pages grew from %d to %d on replace", steady, got)
	}
	got, err := s.GetDocument("c", "d")
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.EqualDocuments(big, got) {
		t.Fatal("replaced document corrupt")
	}
}

func TestDeleteDocument(t *testing.T) {
	s, _ := tempStore(t)
	if err := s.PutDocument("c", doc("d", "<a/>")); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteDocument("c", "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetDocument("c", "d"); err == nil {
		t.Fatal("deleted document still readable")
	}
	if err := s.DeleteDocument("c", "d"); err == nil {
		t.Fatal("double delete succeeded")
	}
	if err := s.DeleteDocument("nope", "d"); err == nil {
		t.Fatal("delete from missing collection succeeded")
	}
}

func TestCollectionsAndStats(t *testing.T) {
	s, _ := tempStore(t)
	s.CreateCollection("empty")
	if err := s.PutDocument("items", doc("i1", "<a><b>hello</b></a>")); err != nil {
		t.Fatal(err)
	}
	cols := s.Collections()
	if len(cols) != 2 || cols[0] != "empty" || cols[1] != "items" {
		t.Fatalf("collections = %v", cols)
	}
	if !s.HasCollection("items") || s.HasCollection("nope") {
		t.Fatal("HasCollection wrong")
	}
	st, err := s.CollectionStats("items")
	if err != nil {
		t.Fatal(err)
	}
	if st.Documents != 1 || st.Bytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if _, err := s.CollectionStats("nope"); err == nil {
		t.Fatal("stats of missing collection succeeded")
	}
	if _, err := s.Documents("nope"); err == nil {
		t.Fatal("documents of missing collection succeeded")
	}
}

func TestDropCollection(t *testing.T) {
	s, _ := tempStore(t)
	if err := s.PutDocument("c", doc("d", "<a/>")); err != nil {
		t.Fatal(err)
	}
	if err := s.DropCollection("c"); err != nil {
		t.Fatal(err)
	}
	if s.HasCollection("c") {
		t.Fatal("collection survived drop")
	}
	if err := s.DropCollection("c"); err == nil {
		t.Fatal("double drop succeeded")
	}
}

func TestLoadAndReadCollection(t *testing.T) {
	s, _ := tempStore(t)
	c := xmltree.NewCollection("items",
		doc("i2", "<a><x>2</x></a>"),
		doc("i1", "<a><x>1</x></a>"),
	)
	if err := s.LoadCollection(c); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadCollection("items")
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.EqualCollections(c, got) {
		t.Fatal("collection round trip failed")
	}
	// ReadCollection returns documents sorted by name.
	if got.Docs[0].Name != "i1" {
		t.Fatalf("order: %s first", got.Docs[0].Name)
	}
}

func TestLargeDocumentSpansManyPages(t *testing.T) {
	s, _ := tempStore(t)
	var sb strings.Builder
	sb.WriteString("<Store><Items>")
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&sb, "<Item><Code>I%d</Code><Description>some text %d</Description></Item>", i, i)
	}
	sb.WriteString("</Items></Store>")
	d := doc("big", sb.String())
	if err := s.PutDocument("c", d); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetDocument("c", "big")
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.EqualDocuments(d, got) {
		t.Fatal("large document corrupt")
	}
	if got := s.pager.pageCount.Load(); got < 10 {
		t.Fatalf("expected many pages, got %d", got)
	}
}

func TestOpenRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.db")
	if err := os.WriteFile(path, []byte(strings.Repeat("junk data!", 600)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("foreign file opened as store")
	}
}

func TestGetDocumentErrors(t *testing.T) {
	s, _ := tempStore(t)
	if _, err := s.GetDocument("nope", "d"); err == nil {
		t.Fatal("missing collection read")
	}
	s.CreateCollection("c")
	if _, err := s.GetDocument("c", "nope"); err == nil {
		t.Fatal("missing document read")
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s, _ := tempStore(t)
	base := doc("seed", "<a><b>seed</b></a>")
	if err := s.PutDocument("c", base); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				d := doc(fmt.Sprintf("w%d-%d", w, i), fmt.Sprintf("<a><b>%d</b></a>", i))
				if err := s.PutDocument("c", d); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := s.GetDocument("c", "seed"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	names, _ := s.Documents("c")
	if len(names) != 81 {
		t.Fatalf("documents = %d, want 81", len(names))
	}
}

func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := xmltree.NewDocument("q", randomTree(r, 4))
		data, err := EncodeDocument(d)
		if err != nil {
			return false
		}
		back, err := DecodeDocument("q", data)
		if err != nil {
			return false
		}
		return xmltree.EqualDocuments(d, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// randomTree mirrors the generator in xmltree's tests (kept local: test
// helpers are not exported across packages).
func randomTree(r *rand.Rand, depth int) *xmltree.Node {
	names := []string{"a", "b", "Item", "Section"}
	el := xmltree.NewElement(names[r.Intn(len(names))])
	if r.Intn(3) == 0 {
		el.Append(xmltree.NewAttr("id", fmt.Sprintf("v%d", r.Intn(100))))
	}
	if depth <= 0 || r.Intn(4) == 0 {
		if r.Intn(2) == 0 {
			el.Append(xmltree.NewText(fmt.Sprintf("text %d", r.Intn(1000))))
		}
		return el
	}
	for i := 0; i < r.Intn(4); i++ {
		el.Append(randomTree(r, depth-1))
	}
	return el
}
