package storage

import (
	"encoding/binary"
	"fmt"

	"partix/internal/xmltree"
)

// Binary document encoding. The format keeps node IDs (the reconstruction
// join key) and compresses repeated element names through a string table:
//
//	[version byte = 1]
//	[name table: varint count, then varint-length strings]
//	[node]
//
//	node := [kind byte][id uvarint][nameRef uvarint]      (element/attribute)
//	        [childCount uvarint][children ...]
//	node := [kind byte][id uvarint][value string]          (text)
//
// Decoding a document is the per-tree "parse" cost of the engine: the
// store never caches decoded trees, reproducing the per-document
// pre-processing overhead the paper attributes to eXist (Section 5).
const encVersion = 1

// EncodeDocument serializes a document to the binary format.
func EncodeDocument(doc *xmltree.Document) ([]byte, error) {
	if doc.Root == nil {
		return nil, fmt.Errorf("storage: encode %q: no root", doc.Name)
	}
	// Collect the name table.
	names := make(map[string]uint64)
	var table []string
	doc.Root.Walk(func(n *xmltree.Node) bool {
		if n.Kind != xmltree.TextNode {
			if _, ok := names[n.Name]; !ok {
				names[n.Name] = uint64(len(table))
				table = append(table, n.Name)
			}
		}
		return true
	})

	buf := make([]byte, 0, 256)
	buf = append(buf, encVersion)
	buf = binary.AppendUvarint(buf, uint64(len(table)))
	for _, s := range table {
		buf = appendString(buf, s)
	}
	buf = appendNode(buf, doc.Root, names)
	return buf, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendNode(buf []byte, n *xmltree.Node, names map[string]uint64) []byte {
	buf = append(buf, byte(n.Kind))
	buf = binary.AppendUvarint(buf, uint64(n.ID))
	if n.Kind == xmltree.TextNode {
		return appendString(buf, n.Value)
	}
	buf = binary.AppendUvarint(buf, names[n.Name])
	buf = binary.AppendUvarint(buf, uint64(len(n.Children)))
	for _, c := range n.Children {
		buf = appendNode(buf, c, names)
	}
	return buf
}

// DecodeDocument parses the binary format back into a document tree.
func DecodeDocument(name string, data []byte) (*xmltree.Document, error) {
	d := &decoder{buf: data}
	v, err := d.byte()
	if err != nil {
		return nil, err
	}
	if v != encVersion {
		return nil, fmt.Errorf("storage: decode %q: unsupported version %d", name, v)
	}
	count, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if count > uint64(len(data)) {
		return nil, fmt.Errorf("storage: decode %q: name table of %d entries in %d bytes", name, count, len(data))
	}
	table := make([]string, count)
	for i := range table {
		table[i], err = d.string()
		if err != nil {
			return nil, err
		}
	}
	root, err := d.node(table, 0)
	if err != nil {
		return nil, fmt.Errorf("storage: decode %q: %w", name, err)
	}
	if d.pos != len(data) {
		return nil, fmt.Errorf("storage: decode %q: %d trailing bytes", name, len(data)-d.pos)
	}
	return &xmltree.Document{Name: name, Root: root}, nil
}

const maxDecodeDepth = 10000

type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) byte() (byte, error) {
	if d.pos >= len(d.buf) {
		return 0, fmt.Errorf("storage: truncated record")
	}
	b := d.buf[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("storage: bad varint at offset %d", d.pos)
	}
	d.pos += n
	return v, nil
}

func (d *decoder) string() (string, error) {
	l, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if l > uint64(len(d.buf)-d.pos) {
		return "", fmt.Errorf("storage: string of %d bytes at offset %d overruns record", l, d.pos)
	}
	s := string(d.buf[d.pos : d.pos+int(l)])
	d.pos += int(l)
	return s, nil
}

func (d *decoder) node(table []string, depth int) (*xmltree.Node, error) {
	if depth > maxDecodeDepth {
		return nil, fmt.Errorf("storage: tree deeper than %d", maxDecodeDepth)
	}
	kind, err := d.byte()
	if err != nil {
		return nil, err
	}
	id, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	n := &xmltree.Node{Kind: xmltree.Kind(kind), ID: xmltree.NodeID(id)}
	switch n.Kind {
	case xmltree.TextNode:
		n.Value, err = d.string()
		if err != nil {
			return nil, err
		}
		return n, nil
	case xmltree.ElementNode, xmltree.AttributeNode:
		ref, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if ref >= uint64(len(table)) {
			return nil, fmt.Errorf("storage: name ref %d outside table of %d", ref, len(table))
		}
		n.Name = table[ref]
		count, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if count > uint64(len(d.buf)-d.pos) {
			return nil, fmt.Errorf("storage: child count %d overruns record", count)
		}
		n.Children = make([]*xmltree.Node, 0, count)
		for i := uint64(0); i < count; i++ {
			c, err := d.node(table, depth+1)
			if err != nil {
				return nil, err
			}
			c.Parent = n
			n.Children = append(n.Children, c)
		}
		return n, nil
	default:
		return nil, fmt.Errorf("storage: unknown node kind %d", kind)
	}
}
