// Package toxgene is a deterministic, template-based XML data generator —
// the stand-in for the ToXgene generator the paper uses to create its test
// databases (Section 5). Templates declare element structure with
// repetition ranges and pluggable text generators; a seeded PRNG makes
// every run reproducible.
package toxgene

import (
	"fmt"
	"math/rand"
	"strings"

	"partix/internal/xmltree"
)

// Context carries per-document generation state into text generators.
type Context struct {
	// DocIndex is the zero-based index of the document being generated.
	DocIndex int
	// Counters are scoped sequence counters, keyed by name.
	Counters map[string]int
}

// next increments and returns the named counter.
func (c *Context) next(name string) int {
	if c.Counters == nil {
		c.Counters = map[string]int{}
	}
	c.Counters[name]++
	return c.Counters[name]
}

// TextGen produces a text value.
type TextGen func(r *rand.Rand, ctx *Context) string

// Template declares one element shape.
type Template struct {
	Name     string
	Attrs    []AttrTemplate
	Children []ChildTemplate
	Text     TextGen // leaf content; mutually exclusive with Children
}

// AttrTemplate declares an attribute.
type AttrTemplate struct {
	Name string
	Gen  TextGen
}

// ChildTemplate declares a child slot with a repetition range. The child
// is emitted between Min and Max times (inclusive, chosen uniformly);
// Min == Max pins the count.
type ChildTemplate struct {
	T        *Template
	Min, Max int
}

// Once wraps a template as a 1..1 child.
func Once(t *Template) ChildTemplate { return ChildTemplate{T: t, Min: 1, Max: 1} }

// Maybe wraps a template as a 0..1 child with the given probability
// numerator out of 100.
func Maybe(t *Template, pct int) ChildTemplate {
	// Encoded as Min=-pct: see generate.
	return ChildTemplate{T: t, Min: -pct, Max: 1}
}

// Rep wraps a template as a min..max child.
func Rep(t *Template, min, max int) ChildTemplate { return ChildTemplate{T: t, Min: min, Max: max} }

// Elem declares an element with children.
func Elem(name string, children ...ChildTemplate) *Template {
	return &Template{Name: name, Children: children}
}

// Leaf declares a text element.
func Leaf(name string, gen TextGen) *Template {
	return &Template{Name: name, Text: gen}
}

// Generate materializes one document from the template.
func Generate(t *Template, name string, r *rand.Rand, ctx *Context) *xmltree.Document {
	if ctx == nil {
		ctx = &Context{}
	}
	return xmltree.NewDocument(name, generate(t, r, ctx))
}

func generate(t *Template, r *rand.Rand, ctx *Context) *xmltree.Node {
	el := xmltree.NewElement(t.Name)
	for _, a := range t.Attrs {
		el.Append(xmltree.NewAttr(a.Name, a.Gen(r, ctx)))
	}
	if t.Text != nil {
		el.Append(xmltree.NewText(t.Text(r, ctx)))
		return el
	}
	for _, c := range t.Children {
		count := 0
		switch {
		case c.Min < 0: // Maybe: |Min| is the percent chance of presence
			if r.Intn(100) < -c.Min {
				count = 1
			}
		case c.Max <= c.Min:
			count = c.Min
		default:
			count = c.Min + r.Intn(c.Max-c.Min+1)
		}
		for i := 0; i < count; i++ {
			el.Append(generate(c.T, r, ctx))
		}
	}
	return el
}

// GenerateCollection materializes n documents named with nameFormat
// (a fmt pattern receiving the document index).
func GenerateCollection(t *Template, collection, nameFormat string, n int, seed int64) *xmltree.Collection {
	r := rand.New(rand.NewSource(seed))
	c := xmltree.NewCollection(collection)
	for i := 0; i < n; i++ {
		ctx := &Context{DocIndex: i}
		c.Add(Generate(t, fmt.Sprintf(nameFormat, i), r, ctx))
	}
	return c
}

// --- text generators ---

// Const always produces s.
func Const(s string) TextGen {
	return func(*rand.Rand, *Context) string { return s }
}

// Seq produces format applied to a per-document counter: Seq("I%04d")
// yields I0001, I0002, … within a document.
func Seq(format string) TextGen {
	return func(_ *rand.Rand, ctx *Context) string {
		return fmt.Sprintf(format, ctx.next(format))
	}
}

// DocSeq produces format applied to the document index: unique across a
// collection.
func DocSeq(format string) TextGen {
	return func(_ *rand.Rand, ctx *Context) string {
		return fmt.Sprintf(format, ctx.DocIndex)
	}
}

// Choice picks uniformly from the options.
func Choice(options ...string) TextGen {
	return func(r *rand.Rand, _ *Context) string { return options[r.Intn(len(options))] }
}

// WeightedChoice picks an option with probability proportional to its
// weight — the paper's horizontal experiments use a "non-uniform document
// distribution" across sections.
func WeightedChoice(options []string, weights []int) TextGen {
	if len(options) != len(weights) {
		panic("toxgene: options and weights differ in length")
	}
	total := 0
	for _, w := range weights {
		if w <= 0 {
			panic("toxgene: weights must be positive")
		}
		total += w
	}
	return func(r *rand.Rand, _ *Context) string {
		pick := r.Intn(total)
		for i, w := range weights {
			if pick < w {
				return options[i]
			}
			pick -= w
		}
		return options[len(options)-1]
	}
}

// Words produces min..max words drawn from the pool.
func Words(pool []string, min, max int) TextGen {
	return func(r *rand.Rand, _ *Context) string {
		n := min
		if max > min {
			n += r.Intn(max - min + 1)
		}
		var sb strings.Builder
		for i := 0; i < n; i++ {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(pool[r.Intn(len(pool))])
		}
		return sb.String()
	}
}

// Number produces a decimal in [min, max) with two fraction digits.
func Number(min, max float64) TextGen {
	return func(r *rand.Rand, _ *Context) string {
		return fmt.Sprintf("%.2f", min+r.Float64()*(max-min))
	}
}

// Date produces a date in 2000 + [0, years), arbitrary month/day.
func Date(years int) TextGen {
	return func(r *rand.Rand, _ *Context) string {
		return fmt.Sprintf("%04d-%02d-%02d", 2000+r.Intn(years), 1+r.Intn(12), 1+r.Intn(28))
	}
}

// DefaultWordPool is the vocabulary descriptions are drawn from. The
// marker words the text-search workload greps for ("good", "excellent",
// "defective") are included with natural frequencies by pool repetition.
var DefaultWordPool = buildWordPool()

func buildWordPool() []string {
	base := []string{
		"product", "quality", "classic", "limited", "edition", "original",
		"imported", "popular", "standard", "premium", "compact", "digital",
		"portable", "wireless", "vintage", "modern", "series", "volume",
		"collection", "bundle", "exclusive", "certified", "refurbished",
		"item", "unit", "pack", "box", "set", "deluxe", "basic", "special",
		"seasonal", "durable", "lightweight", "ergonomic", "versatile",
	}
	// "good" lands in roughly a third of generated descriptions; rarer
	// markers appear correspondingly less often.
	pool := append([]string{}, base...)
	for i := 0; i < 6; i++ {
		pool = append(pool, "good")
	}
	pool = append(pool, "excellent", "excellent", "defective")
	return pool
}
