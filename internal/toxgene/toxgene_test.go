package toxgene

import (
	"math/rand"
	"strings"
	"testing"

	"partix/internal/xmlschema"
	"partix/internal/xmltree"
)

func TestGenerateItemsSmallProfile(t *testing.T) {
	c := GenerateItems(ItemsConfig{Docs: 50, Seed: 1})
	if c.Len() != 50 {
		t.Fatalf("docs = %d", c.Len())
	}
	spec := xmlschema.CItems()
	if err := spec.Schema.ValidateCollection(c, "Item"); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, d := range c.Docs {
		size := xmltree.SerializedSize(d)
		total += size
		if d.Root.Child("PictureList") != nil || d.Root.Child("PricesHistory") != nil {
			t.Fatal("ItemsSHor profile must have no pictures or price history")
		}
	}
	avg := total / c.Len()
	if avg < 300 || avg > 4000 {
		t.Fatalf("ItemsSHor average doc size = %d bytes, want ≈2 KB", avg)
	}
}

func TestGenerateItemsLargeProfile(t *testing.T) {
	c := GenerateItems(ItemsConfig{Docs: 5, Seed: 2, Large: true})
	spec := xmlschema.CItems()
	if err := spec.Schema.ValidateCollection(c, "Item"); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, d := range c.Docs {
		total += xmltree.SerializedSize(d)
		if d.Root.Child("PictureList") == nil || d.Root.Child("PricesHistory") == nil {
			t.Fatal("ItemsLHor profile needs pictures and price history")
		}
	}
	avg := total / c.Len()
	if avg < 30_000 || avg > 200_000 {
		t.Fatalf("ItemsLHor average doc size = %d bytes, want ≈80 KB", avg)
	}
}

func TestGenerateItemsDeterministic(t *testing.T) {
	a := GenerateItems(ItemsConfig{Docs: 10, Seed: 42})
	b := GenerateItems(ItemsConfig{Docs: 10, Seed: 42})
	if !xmltree.EqualCollections(a, b) {
		t.Fatal("same seed produced different collections")
	}
	c := GenerateItems(ItemsConfig{Docs: 10, Seed: 43})
	if xmltree.EqualCollections(a, c) {
		t.Fatal("different seeds produced identical collections")
	}
}

func TestSectionDistributionNonUniform(t *testing.T) {
	c := GenerateItems(ItemsConfig{Docs: 800, Seed: 3})
	counts := map[string]int{}
	for _, d := range c.Docs {
		counts[d.Root.Child("Section").Text()]++
	}
	if len(counts) != len(Sections) {
		t.Fatalf("sections seen = %d, want %d", len(counts), len(Sections))
	}
	// The heaviest section must clearly dominate the lightest.
	if counts["CD"] < 2*counts["Garden"] {
		t.Fatalf("distribution looks uniform: CD=%d Garden=%d", counts["CD"], counts["Garden"])
	}
}

func TestGenerateStore(t *testing.T) {
	c := GenerateStore(StoreConfig{Items: 40, Seed: 4})
	if !c.IsSD() {
		t.Fatal("store must be SD")
	}
	spec := xmlschema.CStore()
	if err := spec.Validate(c); err != nil {
		t.Fatal(err)
	}
	items := c.Docs[0].Root.Child("Items").ElementChildren()
	if len(items) != 40 {
		t.Fatalf("items = %d", len(items))
	}
}

func TestTextGenerators(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	ctx := &Context{DocIndex: 7}

	if got := Const("x")(r, ctx); got != "x" {
		t.Fatal("Const wrong")
	}
	if got := DocSeq("d%03d")(r, ctx); got != "d007" {
		t.Fatalf("DocSeq = %q", got)
	}
	if a, b := Seq("s%d")(r, ctx), Seq("s%d")(r, ctx); a != "s1" || b != "s2" {
		t.Fatalf("Seq = %q, %q", a, b)
	}
	w := Words([]string{"alpha", "beta"}, 3, 3)(r, ctx)
	if len(strings.Fields(w)) != 3 {
		t.Fatalf("Words = %q", w)
	}
	n := Number(10, 20)(r, ctx)
	if !strings.Contains(n, ".") {
		t.Fatalf("Number = %q", n)
	}
	d := Date(3)(r, ctx)
	if len(d) != 10 || d[4] != '-' {
		t.Fatalf("Date = %q", d)
	}
	choice := Choice("only")(r, ctx)
	if choice != "only" {
		t.Fatal("Choice wrong")
	}
}

func TestWeightedChoiceRespectsWeights(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	gen := WeightedChoice([]string{"heavy", "light"}, []int{9, 1})
	counts := map[string]int{}
	for i := 0; i < 1000; i++ {
		counts[gen(r, nil)]++
	}
	if counts["heavy"] < 800 {
		t.Fatalf("weights ignored: %v", counts)
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	assertPanics(t, func() { WeightedChoice([]string{"a"}, []int{1, 2}) })
	assertPanics(t, func() { WeightedChoice([]string{"a"}, []int{0}) })
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestMaybeProbability(t *testing.T) {
	tmpl := Elem("root", Maybe(Leaf("opt", Const("v")), 50))
	r := rand.New(rand.NewSource(6))
	present := 0
	for i := 0; i < 400; i++ {
		doc := Generate(tmpl, "d", r, nil)
		if doc.Root.Child("opt") != nil {
			present++
		}
	}
	if present < 120 || present > 280 {
		t.Fatalf("Maybe(50%%) present %d/400", present)
	}
}

func TestGenerateCollectionNames(t *testing.T) {
	tmpl := Elem("a", Once(Leaf("b", Const("x"))))
	c := GenerateCollection(tmpl, "col", "doc%02d", 3, 9)
	if c.Name != "col" || c.Len() != 3 || c.Docs[1].Name != "doc01" {
		t.Fatalf("collection: %s %d %s", c.Name, c.Len(), c.Docs[1].Name)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWordPoolContainsMarkers(t *testing.T) {
	found := map[string]bool{}
	for _, w := range DefaultWordPool {
		found[w] = true
	}
	for _, marker := range []string{"good", "excellent", "defective"} {
		if !found[marker] {
			t.Fatalf("marker %q missing from pool", marker)
		}
	}
}
