package toxgene

import (
	"fmt"
	"math/rand"

	"partix/internal/xmltree"
)

// Sections is the section vocabulary of the virtual store; the horizontal
// experiments fragment C_items by these values into 2, 4 or 8 fragments.
var Sections = []string{"CD", "DVD", "Book", "Game", "Software", "Hardware", "Toy", "Garden"}

// SectionWeights gives the paper's "non-uniform document distribution":
// some sections hold far more items than others.
var SectionWeights = []int{24, 18, 16, 12, 10, 9, 6, 5}

// ItemsConfig parameterizes the C_items MD collection of Figure 1(b).
type ItemsConfig struct {
	// Docs is the number of Item documents.
	Docs int
	// Seed makes the collection reproducible.
	Seed int64
	// Large selects the ItemsLHor profile (≈80 KB per document, with
	// picture lists and price histories); false selects ItemsSHor
	// (≈2 KB, "elements PriceHistory and ImagesList with zero
	// occurrences", Section 5).
	Large bool
	// Collection names the result; defaults to "items".
	Collection string
}

// itemTemplate builds the Item template for one profile.
func itemTemplate(large bool) *Template {
	picture := Elem("Picture",
		Once(Leaf("Name", Words(DefaultWordPool, 1, 2))),
		Once(Leaf("Description", Words(DefaultWordPool, 3, 8))),
		Once(Leaf("ModificationDate", Date(6))),
		Once(Leaf("OriginalPath", DocSeq("/img/orig/%d.png"))),
		Once(Leaf("ThumbPath", DocSeq("/img/thumb/%d.png"))),
	)
	priceHistory := Elem("PriceHistory",
		Once(Leaf("Price", Number(1, 500))),
		Once(Leaf("ModificationDate", Date(6))),
	)

	item := Elem("Item",
		Once(Leaf("Code", DocSeq("I%06d"))),
		Once(Leaf("Name", Words(DefaultWordPool, 2, 4))),
		Once(Leaf("Description", Words(DefaultWordPool, 12, 28))),
		Once(Leaf("Section", WeightedChoice(Sections, SectionWeights))),
	)
	item.Attrs = []AttrTemplate{{Name: "id", Gen: DocSeq("%d")}}
	if !large {
		// ItemsSHor: a couple of characteristics, no pictures or prices.
		item.Children = append(item.Children,
			ChildTemplate{T: Leaf("Characteristics", Words(DefaultWordPool, 4, 9)), Min: 1, Max: 3},
		)
		return item
	}
	// ItemsLHor: long characteristics, a large picture list and a deep
	// price history push the document to roughly 80 KB.
	item.Children = append(item.Children,
		Maybe(Leaf("Release", Date(2)), 30),
		ChildTemplate{T: Leaf("Characteristics", Words(DefaultWordPool, 40, 80)), Min: 8, Max: 14},
		Once(Elem("PictureList", Rep(picture, 60, 90))),
		Once(Elem("PricesHistory", Rep(priceHistory, 120, 200))),
	)
	return item
}

// GenerateItems builds a C_items collection.
func GenerateItems(cfg ItemsConfig) *xmltree.Collection {
	name := cfg.Collection
	if name == "" {
		name = "items"
	}
	return GenerateCollection(itemTemplate(cfg.Large), name, "item%06d", cfg.Docs, cfg.Seed)
}

// StoreConfig parameterizes the C_store SD collection of Figure 1(b).
type StoreConfig struct {
	// Items is the number of Item elements under /Store/Items.
	Items int
	// Seed makes the document reproducible.
	Seed int64
	// Large items blow the store up towards the paper's 5–500 MB sizes.
	Large bool
	// Collection names the result; defaults to "store".
	Collection string
}

// GenerateStore builds the single-document C_store collection.
func GenerateStore(cfg StoreConfig) *xmltree.Collection {
	name := cfg.Collection
	if name == "" {
		name = "store"
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	ctx := &Context{}

	store := xmltree.NewElement("Store")
	sections := xmltree.NewElement("Sections")
	for i, s := range Sections {
		sections.Append(xmltree.NewElement("Section",
			xmltree.NewElement("Code", xmltree.NewText(fmt.Sprintf("S%02d", i+1))),
			xmltree.NewElement("Name", xmltree.NewText(s)),
		))
	}
	store.Append(sections)

	itemT := itemTemplate(cfg.Large)
	items := xmltree.NewElement("Items")
	for i := 0; i < cfg.Items; i++ {
		ctx.DocIndex = i
		items.Append(generate(itemT, r, ctx))
	}
	store.Append(items)

	employees := xmltree.NewElement("Employees")
	n := 3 + r.Intn(8)
	for i := 0; i < n; i++ {
		employees.Append(xmltree.NewElement("Employee",
			xmltree.NewText(fmt.Sprintf("employee-%02d", i+1))))
	}
	store.Append(employees)

	doc := xmltree.NewDocument("store", store)
	return xmltree.NewCollection(name, doc)
}
