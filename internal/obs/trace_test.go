package obs

import (
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(a) {
		t.Fatalf("trace id %q not 16 hex chars", a)
	}
	if a == b {
		t.Fatalf("trace ids collided: %q", a)
	}
}

func TestStartSpan(t *testing.T) {
	s, finish := StartSpan("execute", "fragment=items_1")
	time.Sleep(time.Millisecond)
	finish()
	if s.Name != "execute" || s.Detail != "fragment=items_1" {
		t.Fatalf("span = %+v", s)
	}
	if s.Duration <= 0 {
		t.Fatalf("duration = %v, want > 0", s.Duration)
	}
}

func TestSpanSum(t *testing.T) {
	root := &Span{Name: "query", Duration: 10 * time.Millisecond}
	root.Add(Span{Name: "plan", Duration: 2 * time.Millisecond})
	root.Add(Span{Name: "execute", Duration: 7 * time.Millisecond})
	if got := root.Sum(); got != 9*time.Millisecond {
		t.Fatalf("sum = %v, want 9ms", got)
	}
}

func TestSpanFormat(t *testing.T) {
	root := &Span{Name: "query", Detail: "trace=abc", Duration: 12 * time.Millisecond}
	sub := Span{Name: "subquery", Detail: "node=:7001", Duration: 10 * time.Millisecond}
	sub.Children = []Span{
		{Name: "parse", Duration: 200 * time.Microsecond},
		{Name: "execute", Duration: 9 * time.Millisecond},
	}
	root.Add(sub)
	root.Add(Span{Name: "compose", Duration: time.Millisecond})
	got := root.Format()
	want := strings.Join([]string{
		"query 12.00ms trace=abc",
		"├─ subquery 10.00ms node=:7001",
		"│  ├─ parse 200µs",
		"│  └─ execute 9.00ms",
		"└─ compose 1.00ms",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("format:\n%s\nwant:\n%s", got, want)
	}
}
