package obs

import (
	"fmt"
	"io"
	"log"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Logger is the minimal leveled structured-logging interface the wire
// and coordinator layers log through. keyvals is an alternating
// key/value list, like log/slog's loosest form.
type Logger interface {
	Log(level Level, msg string, keyvals ...any)
}

type nopLogger struct{}

func (nopLogger) Log(Level, string, ...any) {}

// Nop returns a Logger that discards everything. It is the default
// wherever a Logger option is left nil.
func Nop() Logger { return nopLogger{} }

// IsNop reports whether l is nil or the Nop logger, letting callers
// skip formatting work entirely.
func IsNop(l Logger) bool {
	if l == nil {
		return true
	}
	_, ok := l.(nopLogger)
	return ok
}

type textLogger struct {
	mu  sync.Mutex
	w   io.Writer
	min Level
	now func() time.Time
}

// NewTextLogger returns a Logger writing "ts=... level=... msg=...
// k=v ..." lines to w, dropping records below min.
func NewTextLogger(w io.Writer, min Level) Logger {
	return &textLogger{w: w, min: min, now: time.Now}
}

func (t *textLogger) Log(level Level, msg string, keyvals ...any) {
	if level < t.min {
		return
	}
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(t.now().UTC().Format(time.RFC3339Nano))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(quoteValue(msg))
	writeKeyvals(&b, keyvals)
	b.WriteByte('\n')
	t.mu.Lock()
	defer t.mu.Unlock()
	io.WriteString(t.w, b.String())
}

type stdLogger struct {
	l   *log.Logger
	min Level
}

// FromStd adapts a *log.Logger to the Logger interface so existing
// callers and CLI flags keep working. A nil std logger yields Nop.
// Records below min are dropped (pass LevelDebug to keep everything).
func FromStd(l *log.Logger, min Level) Logger {
	if l == nil {
		return Nop()
	}
	return &stdLogger{l: l, min: min}
}

func (s *stdLogger) Log(level Level, msg string, keyvals ...any) {
	if level < s.min {
		return
	}
	var b strings.Builder
	b.WriteString("level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(quoteValue(msg))
	writeKeyvals(&b, keyvals)
	s.l.Print(b.String())
}

func writeKeyvals(b *strings.Builder, keyvals []any) {
	for i := 0; i < len(keyvals); i += 2 {
		b.WriteByte(' ')
		b.WriteString(fmt.Sprint(keyvals[i]))
		b.WriteByte('=')
		if i+1 < len(keyvals) {
			b.WriteString(quoteValue(fmt.Sprint(keyvals[i+1])))
		} else {
			b.WriteString("MISSING")
		}
	}
}

func quoteValue(s string) string {
	if strings.ContainsAny(s, " \t\n\"=") || s == "" {
		return fmt.Sprintf("%q", s)
	}
	return s
}
