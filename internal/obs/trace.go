package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"time"
)

// A Span is one timed step of a traced query. Spans carry only a
// duration, never absolute timestamps: node clocks are not assumed to
// be synchronized with the coordinator, and relative durations are all
// the paper's accounting (sub-query time vs coordination time) needs.
// Spans cross the wire by value inside Response, so every field is
// exported and gob-friendly.
type Span struct {
	Name     string        // step name: query, plan, subquery, parse, execute, serialize, compose, ...
	Detail   string        // free-form context: node address, fragment name, item counts
	Duration time.Duration // wall time of this step, inclusive of children
	Children []Span
}

// NewTraceID returns a random 16-hex-char trace identifier.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a
		// constant here only degrades trace labeling, not queries.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// StartSpan begins timing a span; call the returned finish function to
// set its duration.
func StartSpan(name, detail string) (*Span, func()) {
	s := &Span{Name: name, Detail: detail}
	start := time.Now()
	return s, func() { s.Duration = time.Since(start) }
}

// Add appends a child span and returns it.
func (s *Span) Add(child Span) *Span {
	s.Children = append(s.Children, child)
	return s
}

// Sum returns the total duration of the direct children, useful for
// checking that a parent's accounting is consistent.
func (s *Span) Sum() time.Duration {
	var d time.Duration
	for _, c := range s.Children {
		d += c.Duration
	}
	return d
}

// Format renders the span tree with box-drawing guides, one line per
// span:
//
//	query 12.3ms trace=ab12...
//	├─ plan 0.1ms
//	├─ subquery 10.2ms node=:7001 fragment=items_1
//	│  ├─ parse 0.2ms
//	│  └─ execute 9.9ms
//	└─ compose 1.1ms
func (s *Span) Format() string {
	var b strings.Builder
	writeSpan(&b, s, "", "", "")
	return b.String()
}

func writeSpan(b *strings.Builder, s *Span, lead, branch, childLead string) {
	b.WriteString(lead)
	b.WriteString(branch)
	b.WriteString(s.Name)
	fmt.Fprintf(b, " %s", formatDuration(s.Duration))
	if s.Detail != "" {
		b.WriteByte(' ')
		b.WriteString(s.Detail)
	}
	b.WriteByte('\n')
	for i := range s.Children {
		last := i == len(s.Children)-1
		br, cl := "├─ ", "│  "
		if last {
			br, cl = "└─ ", "   "
		}
		writeSpan(b, &s.Children[i], lead+childLead, br, cl)
	}
}

func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	}
}
