// Package obs is PartiX's stdlib-only observability layer: a metrics
// registry with Prometheus text exposition, a leveled key=value logger,
// distributed query tracing spans, and the node debug HTTP handler.
//
// Instrument hot paths through the package-level metric variables in
// series.go. Every mutation is a single atomic op and is gated on a
// global enable flag so a disabled build pays only one atomic load.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// enabled gates every Counter.Add / Gauge set / Histogram.Observe. It
// defaults to on; SetEnabled(false) turns the hot-path mutations into a
// single atomic load + branch, which is what the bench's "disabled"
// overhead column measures.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns metric collection on or off globally. Off does not
// reset accumulated values; it only stops new observations.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether metric collection is on.
func Enabled() bool { return enabled.Load() }

// A Counter is a monotonically increasing metric.
type Counter struct {
	name string
	help string
	v    atomic.Int64
}

// Add increments the counter by n (n must be >= 0).
func (c *Counter) Add(n int64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// A Gauge is a metric that can go up and down.
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// Add moves the gauge by n (may be negative). Gauges that track
// in-flight work must pair every Add(1) with an Add(-1) regardless of
// the enable flag flipping mid-flight, so Add is not gated.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// A Histogram counts observations into fixed upper-bound buckets and
// tracks the running sum, Prometheus-style (cumulative on exposition).
type Histogram struct {
	name    string
	help    string
	bounds  []float64 // ascending upper bounds, implicit +Inf last
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // scaled: value * histScale, see Observe
}

// histScale preserves sub-unit precision in the integer sum; the
// exposition divides it back out.
const histScale = 1e6

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	// Buckets are few (≲16); linear scan beats binary search here.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(v * histScale))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return float64(h.sum.Load()) / histScale }

// A Registry holds named metrics and renders them in Prometheus text
// exposition format. The zero value is not usable; use NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   []*Counter
	gauges     []*Gauge
	histograms []*Histogram
	byName     map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]bool)}
}

// Default is the registry all the package-level partix_* series in
// series.go register with; the partixd debug endpoint serves it.
var Default = NewRegistry()

func (r *Registry) claim(name string) {
	if !validMetricName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	if r.byName[name] {
		panic("obs: duplicate metric " + name)
	}
	r.byName[name] = true
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	c := &Counter{name: name, help: help}
	r.counters = append(r.counters, c)
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	g := &Gauge{name: name, help: help}
	r.gauges = append(r.gauges, g)
	return g
}

// NewHistogram registers and returns a histogram with the given
// ascending upper bucket bounds (+Inf is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			panic("obs: histogram bounds not ascending for " + name)
		}
	}
	h := &Histogram{
		name:    name,
		help:    help,
		bounds:  bs,
		buckets: make([]atomic.Int64, len(bs)+1),
	}
	r.histograms = append(r.histograms, h)
	return h
}

type metricRow struct {
	name string
	emit func(w io.Writer)
}

// WriteText renders every registered metric in Prometheus text
// exposition format (sorted by name, # HELP / # TYPE headers,
// cumulative histogram buckets with _bucket/_sum/_count).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	rows := make([]metricRow, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for _, c := range r.counters {
		c := c
		rows = append(rows, metricRow{c.name, func(w io.Writer) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.Value())
		}})
	}
	for _, g := range r.gauges {
		g := g
		rows = append(rows, metricRow{g.name, func(w io.Writer) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.Value())
		}})
	}
	for _, h := range r.histograms {
		h := h
		rows = append(rows, metricRow{h.name, func(w io.Writer) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
			var cum int64
			for i, b := range h.bounds {
				cum += h.buckets[i].Load()
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatBound(b), cum)
			}
			cum += h.buckets[len(h.bounds)].Load()
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
			fmt.Fprintf(w, "%s_sum %s\n", h.name, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
			// _count repeats the +Inf cumulative rather than loading
			// h.count separately: under concurrent Observe calls the
			// two loads could disagree, and Prometheus requires
			// _count == _bucket{le="+Inf"} exactly.
			fmt.Fprintf(w, "%s_count %d\n", h.name, cum)
		}})
	}
	r.mu.Unlock()

	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	var b strings.Builder
	for _, row := range rows {
		row.emit(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot returns every scalar series value keyed by exposition name.
// Histograms contribute <name>_sum and <name>_count entries.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := make(map[string]float64, len(r.counters)+len(r.gauges)+2*len(r.histograms))
	for _, c := range r.counters {
		m[c.name] = float64(c.Value())
	}
	for _, g := range r.gauges {
		m[g.name] = float64(g.Value())
	}
	for _, h := range r.histograms {
		m[h.name+"_sum"] = h.Sum()
		m[h.name+"_count"] = float64(h.Count())
	}
	return m
}

// Reset zeroes every registered metric. Intended for tests and the
// overhead benchmark, not for production scraping.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.histograms {
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
	}
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
