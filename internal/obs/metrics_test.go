package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "Ops.")
	g := r.NewGauge("test_inflight", "In flight.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g.Add(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge after Set = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 5.605; got < want-1e-6 || got > want+1e-6 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_seconds_bucket{le="0.01"} 1`,
		`test_seconds_bucket{le="0.1"} 3`,
		`test_seconds_bucket{le="1"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		"test_seconds_count 5",
		"# TYPE test_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTextFormatAndOrder(t *testing.T) {
	r := NewRegistry()
	r.NewGauge("zz_gauge", "Last.").Set(1)
	r.NewCounter("aa_counter", "First.").Add(2)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	ia, iz := strings.Index(out, "aa_counter"), strings.Index(out, "zz_gauge")
	if ia < 0 || iz < 0 || ia > iz {
		t.Fatalf("series not sorted by name:\n%s", out)
	}
	if !strings.Contains(out, "# HELP aa_counter First.\n# TYPE aa_counter counter\naa_counter 2\n") {
		t.Fatalf("counter exposition malformed:\n%s", out)
	}
}

func TestSnapshotAndReset(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("snap_total", "C.")
	h := r.NewHistogram("snap_seconds", "H.", []float64{1})
	c.Add(3)
	h.Observe(0.5)
	s := r.Snapshot()
	if s["snap_total"] != 3 || s["snap_seconds_count"] != 1 || s["snap_seconds_sum"] != 0.5 {
		t.Fatalf("snapshot = %v", s)
	}
	r.Reset()
	s = r.Snapshot()
	if s["snap_total"] != 0 || s["snap_seconds_count"] != 0 {
		t.Fatalf("snapshot after reset = %v", s)
	}
}

func TestSetEnabledGatesObservations(t *testing.T) {
	defer SetEnabled(true)
	r := NewRegistry()
	c := r.NewCounter("gated_total", "C.")
	h := r.NewHistogram("gated_seconds", "H.", []float64{1})
	SetEnabled(false)
	c.Inc()
	h.Observe(0.5)
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled metrics still moved: counter=%d hist=%d", c.Value(), h.Count())
	}
	SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Fatalf("re-enabled counter = %d, want 1", c.Value())
	}
}

func TestInvalidAndDuplicateNamesPanic(t *testing.T) {
	r := NewRegistry()
	mustPanic(t, func() { r.NewCounter("bad name", "x") })
	mustPanic(t, func() { r.NewCounter("1leading", "x") })
	r.NewCounter("once_total", "x")
	mustPanic(t, func() { r.NewGauge("once_total", "x") })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

// TestConcurrentMutation is the -race workout: many goroutines hammer
// one counter, gauge, and histogram while a reader scrapes.
func TestConcurrentMutation(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("conc_total", "C.")
	g := r.NewGauge("conc_inflight", "G.")
	h := r.NewHistogram("conc_seconds", "H.", []float64{0.01, 0.1, 1})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 100)
				g.Add(-1)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			r.WriteText(&b)
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != workers*per {
		t.Fatalf("hist count = %d, want %d", h.Count(), workers*per)
	}
}
