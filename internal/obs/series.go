package obs

// Every partix_* series lives here, on the Default registry, rather
// than scattered next to its instrumentation site. That keeps the full
// metric surface in one reviewable table (mirrored in DESIGN.md §6)
// and — because importing any instrumented layer links this file — a
// partixd node exposes the complete series set on /metrics even for
// layers it never exercises (cluster series idle at zero on a pure
// node, coordinator series idle on a node, and so on).
var (
	// engine: the sequential/pipelined decode hot path.
	EngineQueries = Default.NewCounter("partix_engine_queries_total",
		"Queries evaluated by the local engine.")
	EngineDocsDecoded = Default.NewCounter("partix_engine_docs_decoded_total",
		"Documents decoded from storage (cache misses included).")
	EngineDocsPruned = Default.NewCounter("partix_engine_docs_pruned_total",
		"Documents skipped by index-assisted candidate pruning.")
	EngineRangePruned = Default.NewCounter("partix_engine_range_pruned_total",
		"Documents eliminated by value-index (equality/range) constraints.")
	EngineIndexOnly = Default.NewCounter("partix_engine_index_only_total",
		"count()/exists() deciders answered from indexes without decoding documents.")
	EngineBytesDecoded = Default.NewCounter("partix_engine_decode_bytes_total",
		"Stored bytes decoded into trees.")
	EngineCacheHits = Default.NewCounter("partix_engine_tree_cache_hits_total",
		"Decoded-tree cache hits.")
	EngineCacheMisses = Default.NewCounter("partix_engine_tree_cache_misses_total",
		"Decoded-tree cache misses.")
	EngineSnapshotRetries = Default.NewCounter("partix_engine_snapshot_retries_total",
		"Query snapshot captures retried because a writer committed mid-capture.")
	EngineCompiledQueries = Default.NewCounter("partix_engine_compiled_queries_total",
		"Queries executed by the compiled vectorized pipeline (the rest interpret).")
	EngineDecodeInflight = Default.NewGauge("partix_engine_decode_inflight",
		"Documents currently in the decode pipeline.")
	EngineQuerySeconds = Default.NewHistogram("partix_engine_query_seconds",
		"Local engine query latency in seconds.",
		[]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10})

	// storage: the paged single-file store.
	StoragePagesRead = Default.NewCounter("partix_storage_pages_read_total",
		"Pages read from the store file.")
	StoragePagesWritten = Default.NewCounter("partix_storage_pages_written_total",
		"Pages written to the store file.")
	StorageBytesRead = Default.NewCounter("partix_storage_read_bytes_total",
		"Bytes read from the store file.")
	StorageBytesWritten = Default.NewCounter("partix_storage_written_bytes_total",
		"Bytes written to the store file.")
	StorageWALAppends = Default.NewCounter("partix_storage_wal_appends_total",
		"Records appended to the write-ahead log.")
	StorageWALBytes = Default.NewCounter("partix_storage_wal_bytes_total",
		"Bytes appended to the write-ahead log (framing included).")
	StorageWALFsyncs = Default.NewCounter("partix_storage_wal_fsyncs_total",
		"Write-ahead log fsyncs (group commits batch many commits per fsync).")
	StorageWALGroupSize = Default.NewHistogram("partix_storage_wal_group_size",
		"Commits made durable per WAL fsync (group-commit batch size).",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
	StorageWALReplayed = Default.NewCounter("partix_storage_wal_replayed_total",
		"Write-ahead log records replayed during crash recovery at open.")
	StorageCheckpoints = Default.NewCounter("partix_storage_checkpoints_total",
		"Catalog checkpoints (persist catalog, truncate WAL, recycle pages).")

	// wire client: coordinator-side remote-node transport.
	WireClientRequests = Default.NewCounter("partix_wire_client_requests_total",
		"Requests sent to remote nodes.")
	WireClientRetries = Default.NewCounter("partix_wire_client_retries_total",
		"Request attempts retried after a transport error.")
	WireClientReconnects = Default.NewCounter("partix_wire_client_reconnects_total",
		"New connections dialed to remote nodes.")
	WireClientFrames = Default.NewCounter("partix_wire_client_frames_total",
		"Streamed result frames received.")
	WireClientBytesIn = Default.NewCounter("partix_wire_client_in_bytes_total",
		"Bytes received from remote nodes.")
	WireClientBytesOut = Default.NewCounter("partix_wire_client_out_bytes_total",
		"Bytes sent to remote nodes.")
	WireClientInflight = Default.NewGauge("partix_wire_client_inflight",
		"Remote-node requests currently in flight.")

	// wire server: node-side transport.
	WireServerRequests = Default.NewCounter("partix_wire_server_requests_total",
		"Requests handled by the node server.")
	WireServerFrames = Default.NewCounter("partix_wire_server_frames_total",
		"Streamed result frames sent.")
	WireServerBytesIn = Default.NewCounter("partix_wire_server_in_bytes_total",
		"Bytes received from clients.")
	WireServerBytesOut = Default.NewCounter("partix_wire_server_out_bytes_total",
		"Bytes sent to clients.")
	WireServerPanics = Default.NewCounter("partix_wire_server_panics_total",
		"Request handlers recovered from a panic.")
	WireServerConns = Default.NewGauge("partix_wire_server_conns",
		"Open client connections.")

	// cluster: sub-query fan-out and failover.
	ClusterSubQueries = Default.NewCounter("partix_cluster_subqueries_total",
		"Sub-queries dispatched to nodes (including local).")
	ClusterFailovers = Default.NewCounter("partix_cluster_failovers_total",
		"Sub-queries that fell over to a replica after a node error.")
	ClusterStreamCancels = Default.NewCounter("partix_cluster_stream_cancels_total",
		"Streamed sub-queries cancelled early by the sink.")

	// coordinator: the partix.System query path.
	CoordQueries = Default.NewCounter("partix_coord_queries_total",
		"Queries executed by the coordinator.")
	CoordSlowQueries = Default.NewCounter("partix_coord_slow_queries_total",
		"Coordinator queries that exceeded the slow-query threshold.")
	CoordQuerySeconds = Default.NewHistogram("partix_coord_query_seconds",
		"End-to-end coordinator query latency in seconds.",
		[]float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30})

	// planner: cost-based planning and the plan cache.
	CoordPlanCacheHits = Default.NewCounter("partix_coord_plan_cache_hits_total",
		"Queries answered with a cached plan (parse and planning skipped).")
	CoordPlanCacheMisses = Default.NewCounter("partix_coord_plan_cache_misses_total",
		"Queries that had to be parsed and planned.")
	CoordPlanCacheEvictions = Default.NewCounter("partix_coord_plan_cache_evictions_total",
		"Cached plans evicted by the LRU capacity cap.")
	CoordPlanCacheInvalidations = Default.NewCounter("partix_coord_plan_cache_invalidations_total",
		"Cached plans discarded as stale (catalog or generation change).")
	CoordFragmentsSkipped = Default.NewCounter("partix_coord_fragments_skipped_total",
		"Fragments proven empty by statistics and skipped by the planner.")
	CoordStatsFetches = Default.NewCounter("partix_coord_stats_fetches_total",
		"Fragment statistics fetches issued to nodes (statistics-cache misses).")

	// serving tier: the coordinator result cache and admission control.
	CoordResultCacheHits = Default.NewCounter("partix_coord_result_cache_hits_total",
		"Queries answered from the result cache (zero node round-trips, zero plan work).")
	CoordResultCacheMisses = Default.NewCounter("partix_coord_result_cache_misses_total",
		"Result-cache lookups that fell through to distributed execution.")
	CoordResultCacheEvictions = Default.NewCounter("partix_coord_result_cache_evictions_total",
		"Cached results evicted by the LRU byte budget.")
	CoordResultCacheInvalidations = Default.NewCounter("partix_coord_result_cache_invalidations_total",
		"Cached results discarded as stale (catalog or generation change).")
	CoordResultCacheBytes = Default.NewGauge("partix_coord_result_cache_bytes",
		"Serialized bytes currently held by the result cache.")
	CoordQueued = Default.NewCounter("partix_coord_queued_total",
		"Queries that waited in the admission queue before executing.")
	CoordShed = Default.NewCounter("partix_coord_shed_total",
		"Queries rejected by admission control (queue full or wait too long).")
	CoordQuotaRejections = Default.NewCounter("partix_coord_quota_rejections_total",
		"Queries rejected by a per-tenant token-bucket quota.")

	// telemetry: the flight recorder, workload profiler, and
	// cluster-wide aggregation pulls.
	TelemetryRecords = Default.NewCounter("partix_telemetry_records_total",
		"Query records published into the flight recorder.")
	TelemetrySampledOut = Default.NewCounter("partix_telemetry_sampled_out_total",
		"Ordinary queries dropped by the recorder's tail sampling.")
	TelemetryPulls = Default.NewCounter("partix_telemetry_pulls_total",
		"Node telemetry snapshots pulled during cluster-wide aggregation.")
	TelemetryPullErrors = Default.NewCounter("partix_telemetry_pull_errors_total",
		"Node telemetry pulls that failed or hit a pre-v5 peer.")
)
