package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRecorderRingEvictsOldest(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 0; i < 6; i++ {
		r.Record(&QueryRecord{Query: fmt.Sprintf("q%d", i)})
	}
	snap := r.Snapshot(0)
	if len(snap) != 4 {
		t.Fatalf("snapshot size = %d, want 4", len(snap))
	}
	for i, want := range []string{"q5", "q4", "q3", "q2"} {
		if snap[i].Query != want {
			t.Fatalf("snapshot[%d] = %s, want %s (newest first)", i, snap[i].Query, want)
		}
	}
	if got := r.Snapshot(2); len(got) != 2 || got[0].Query != "q5" {
		t.Fatalf("capped snapshot: %+v", got)
	}
	if rec, dropped := r.Stats(); rec != 6 || dropped != 0 {
		t.Fatalf("stats = (%d, %d), want (6, 0)", rec, dropped)
	}
}

func TestRecorderDefaultCapacity(t *testing.T) {
	r := NewFlightRecorder(0)
	for i := 0; i < DefaultRecorderCapacity+10; i++ {
		r.Record(&QueryRecord{})
	}
	if got := len(r.Snapshot(0)); got != DefaultRecorderCapacity {
		t.Fatalf("retained %d records, want %d", got, DefaultRecorderCapacity)
	}
}

// At a 1-in-100 sampling rate every slow and every errored query must
// still be recorded — tail sampling only drops ordinary traffic.
func TestRecorderTailSamplingKeepsSlowAndErrors(t *testing.T) {
	r := NewFlightRecorder(4096)
	r.SetSampleEvery(100)
	r.SetSlowThreshold(100 * time.Millisecond)

	const ordinary, slow, failed = 1000, 37, 23
	kept := 0
	for i := 0; i < ordinary; i++ {
		if r.ShouldRecord(time.Millisecond, false) {
			kept++
			r.Record(&QueryRecord{Query: "ordinary"})
		}
	}
	for i := 0; i < slow; i++ {
		if !r.ShouldRecord(150*time.Millisecond, false) {
			t.Fatal("slow query sampled out")
		}
		r.Record(&QueryRecord{Query: "slow", Slow: true})
	}
	for i := 0; i < failed; i++ {
		if !r.ShouldRecord(time.Millisecond, true) {
			t.Fatal("errored query sampled out")
		}
		r.Record(&QueryRecord{Query: "failed", Error: "boom"})
	}
	if kept != ordinary/100 {
		t.Fatalf("kept %d of %d ordinary queries at 1-in-100", kept, ordinary)
	}
	var gotSlow, gotFailed int
	for _, rec := range r.Snapshot(0) {
		switch rec.Query {
		case "slow":
			gotSlow++
		case "failed":
			gotFailed++
		}
	}
	if gotSlow != slow || gotFailed != failed {
		t.Fatalf("retained %d slow, %d failed; want %d, %d", gotSlow, gotFailed, slow, failed)
	}
	recorded, dropped := r.Stats()
	if recorded != int64(kept+slow+failed) {
		t.Fatalf("recorded = %d, want %d", recorded, kept+slow+failed)
	}
	if dropped != int64(ordinary-kept) {
		t.Fatalf("sampledOut = %d, want %d", dropped, ordinary-kept)
	}
}

// Concurrent writers and snapshot readers; run under -race. Snapshots
// must only ever see fully published records.
func TestRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder(64)
	r.SetSampleEvery(3)
	r.SetSlowThreshold(50 * time.Millisecond)
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				d := time.Millisecond
				failed := i%7 == 0
				if i%11 == 0 {
					d = time.Second // slow: always kept
				}
				if r.ShouldRecord(d, failed) {
					r.Record(&QueryRecord{
						Query:      fmt.Sprintf("w%d-q%d", w, i),
						DurationNs: int64(d),
						Error:      map[bool]string{true: "boom"}[failed],
					})
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, rec := range r.Snapshot(0) {
				if rec.Query == "" {
					t.Error("snapshot saw a half-published record")
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	recorded, dropped := r.Stats()
	if recorded == 0 || dropped == 0 {
		t.Fatalf("stats = (%d, %d): expected both recordings and sampling drops", recorded, dropped)
	}
	if got := len(r.Snapshot(0)); got != 64 {
		t.Fatalf("ring retained %d, want 64", got)
	}
}
