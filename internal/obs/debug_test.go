package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestDebugHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dbg_ops_total", "Ops.").Add(9)
	healthy := true
	srv := httptest.NewServer(Handler(r, func() error {
		if !healthy {
			return errors.New("node down")
		}
		return nil
	}))
	defer srv.Close()

	get := func(path string) (int, string, http.Header) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header
	}

	code, body, hdr := get("/metrics")
	if code != 200 || !strings.Contains(body, "dbg_ops_total 9") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content-type = %q", ct)
	}

	if code, body, _ := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	healthy = false
	if code, body, _ := get("/healthz"); code != 503 || !strings.Contains(body, "node down") {
		t.Fatalf("unhealthy /healthz = %d %q", code, body)
	}

	code, body, _ = get("/debug/vars")
	var vars map[string]float64
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v (%q)", err, body)
	}
	if code != 200 || vars["dbg_ops_total"] != 9 {
		t.Fatalf("/debug/vars = %d %v", code, vars)
	}

	if code, body, _ := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d %q", code, body)
	}
}

func TestDebugHandlerNilHealth(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz with nil health = %d", resp.StatusCode)
	}
}
