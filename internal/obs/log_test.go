package obs

import (
	"bytes"
	"log"
	"strings"
	"testing"
	"time"
)

func TestTextLoggerFormatAndLevel(t *testing.T) {
	var buf bytes.Buffer
	l := NewTextLogger(&buf, LevelInfo).(*textLogger)
	l.now = func() time.Time { return time.Date(2006, 3, 28, 12, 0, 0, 0, time.UTC) }
	l.Log(LevelDebug, "dropped")
	l.Log(LevelWarn, "slow query", "elapsed", 250*time.Millisecond, "strategy", "union")
	got := buf.String()
	want := `ts=2006-03-28T12:00:00Z level=warn msg="slow query" elapsed=250ms strategy=union` + "\n"
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestTextLoggerQuoting(t *testing.T) {
	var buf bytes.Buffer
	l := NewTextLogger(&buf, LevelDebug)
	l.Log(LevelInfo, "msg", "k", `a "b" c`, "empty", "", "odd")
	got := buf.String()
	for _, want := range []string{`k="a \"b\" c"`, `empty=""`, "odd=MISSING"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q: %q", want, got)
		}
	}
}

func TestFromStdAdapter(t *testing.T) {
	var buf bytes.Buffer
	std := log.New(&buf, "node ", 0)
	l := FromStd(std, LevelInfo)
	l.Log(LevelDebug, "dropped")
	l.Log(LevelError, "dial failed", "addr", ":7001")
	got := buf.String()
	want := `node level=error msg="dial failed" addr=:7001` + "\n"
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestNopLogger(t *testing.T) {
	if !IsNop(nil) || !IsNop(Nop()) {
		t.Fatal("nil and Nop() must be nop")
	}
	if IsNop(NewTextLogger(&bytes.Buffer{}, LevelDebug)) {
		t.Fatal("text logger must not be nop")
	}
	if !IsNop(FromStd(nil, LevelDebug)) {
		t.Fatal("FromStd(nil) must be nop")
	}
	Nop().Log(LevelError, "discarded", "k", "v")
}
