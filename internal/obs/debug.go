package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler returns the node debug mux: /metrics (Prometheus text),
// /healthz (200 ok / 503 with the error, health may be nil), and
// /debug/vars (JSON snapshot of every series), plus the net/http/pprof
// endpoints under /debug/pprof/. partixd serves this on -debug-addr.
func Handler(reg *Registry, health func() error) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteText(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if health != nil {
			if err := health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
