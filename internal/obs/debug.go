package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
)

// DebugOptions configures the optional pieces of the debug mux.
type DebugOptions struct {
	// Health, when non-nil, gates /healthz: an error answers 503 with
	// the message instead of 200 ok.
	Health func() error
	// HealthDetail, when non-nil, contributes extra "key value" lines
	// after the ok line on a healthy /healthz — WAL/checkpoint lag
	// numbers a load balancer or operator can read without scraping.
	HealthDetail func() map[string]string
	// Recorder, when non-nil, serves the flight recorder's newest
	// records as JSON on /debug/queries (?n= caps the count).
	Recorder *FlightRecorder
	// Workload, when non-nil, serves the workload profile as JSON on
	// /debug/workload.
	Workload func() *WorkloadProfile
	// Metrics, when non-nil, overrides the /metrics and /debug/vars
	// scalar values — the coordinator substitutes its cluster-wide
	// aggregate here. Nil serves the registry directly.
	Metrics func() map[string]float64
}

// Handler returns the node debug mux: /metrics (Prometheus text),
// /healthz (200 ok / 503 with the error, health may be nil), and
// /debug/vars (JSON snapshot of every series), plus the net/http/pprof
// endpoints under /debug/pprof/. partixd serves this on -debug-addr.
func Handler(reg *Registry, health func() error) http.Handler {
	return HandlerWith(reg, DebugOptions{Health: health})
}

// HandlerWith is Handler plus the telemetry endpoints: /debug/queries
// (flight recorder dump, newest first) and /debug/workload (workload
// profile JSON) when the corresponding options are set.
func HandlerWith(reg *Registry, opts DebugOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if opts.Metrics != nil {
			// Aggregated values arrive as a flat map, so they render as
			// untyped series (histograms appear as their _sum/_count and
			// _bucket scalars, already cumulative).
			m := opts.Metrics()
			keys := make([]string, 0, len(m))
			for k := range m {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(w, "%s %v\n", k, m[k])
			}
			return
		}
		reg.WriteText(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if opts.Health != nil {
			if err := opts.Health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
		if opts.HealthDetail != nil {
			detail := opts.HealthDetail()
			keys := make([]string, 0, len(detail))
			for k := range detail {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(w, "%s %s\n", k, detail[k])
			}
		}
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if opts.Metrics != nil {
			enc.Encode(opts.Metrics())
			return
		}
		enc.Encode(reg.Snapshot())
	})
	if opts.Recorder != nil {
		mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
			max := 100
			if s := r.URL.Query().Get("n"); s != "" {
				if n, err := strconv.Atoi(s); err == nil && n > 0 {
					max = n
				}
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(opts.Recorder.Snapshot(max))
		})
	}
	if opts.Workload != nil {
		mux.HandleFunc("/debug/workload", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(opts.Workload())
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
