package obs

import (
	"bufio"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

var (
	helpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="[^"]+"\})? (-?[0-9.eE+-]+|\+Inf|NaN)$`)
)

// Lint the full default-registry scrape the way a Prometheus parser
// would: HELP/TYPE pairs precede each family, sample names match the
// family, histogram buckets are cumulative and non-decreasing, and
// _count equals both the +Inf bucket and the histogram's true
// observation count — the invariant the scrape-side consumers (rate(),
// histogram_quantile()) silently miscompute on when broken.
func TestPrometheusTextLint(t *testing.T) {
	// Drive some real traffic through the default registry so histograms
	// have observations in finite buckets and past the last bound.
	EngineQuerySeconds.Observe((3 * time.Millisecond).Seconds())
	EngineQuerySeconds.Observe((20 * time.Second).Seconds())
	TelemetryRecords.Inc()

	var sb strings.Builder
	if err := Default.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	type hist struct {
		buckets []int64 // cumulative, in order, +Inf last
		count   int64
		hasInf  bool
		hasCnt  bool
	}
	hists := map[string]*hist{}
	var family, familyType string
	sawHelp := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	line := 0
	for sc.Scan() {
		line++
		l := sc.Text()
		switch {
		case strings.HasPrefix(l, "# HELP "):
			if !helpRe.MatchString(l) {
				t.Fatalf("line %d: malformed HELP: %q", line, l)
			}
			sawHelp[strings.Fields(l)[2]] = true
		case strings.HasPrefix(l, "# TYPE "):
			m := typeRe.FindStringSubmatch(l)
			if m == nil {
				t.Fatalf("line %d: malformed TYPE: %q", line, l)
			}
			family, familyType = m[1], m[2]
			if !sawHelp[family] {
				t.Fatalf("line %d: TYPE for %s without preceding HELP", line, family)
			}
			if familyType == "histogram" {
				hists[family] = &hist{}
			}
		case strings.HasPrefix(l, "#"):
			t.Fatalf("line %d: unknown comment form: %q", line, l)
		default:
			m := sampleRe.FindStringSubmatch(l)
			if m == nil {
				t.Fatalf("line %d: malformed sample: %q", line, l)
			}
			name := m[1]
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if base != family && name != family {
				t.Fatalf("line %d: sample %s outside its family %s", line, name, family)
			}
			if h, ok := hists[family]; ok && strings.HasSuffix(name, "_bucket") {
				v, err := strconv.ParseInt(m[3], 10, 64)
				if err != nil {
					t.Fatalf("line %d: bucket value %q: %v", line, m[3], err)
				}
				if n := len(h.buckets); n > 0 && v < h.buckets[n-1] {
					t.Fatalf("line %d: %s buckets not cumulative: %d after %d", line, family, v, h.buckets[n-1])
				}
				h.buckets = append(h.buckets, v)
				if m[2] == `{le="+Inf"}` {
					h.hasInf = true
				}
			}
			if h, ok := hists[family]; ok && strings.HasSuffix(name, "_count") {
				h.count, _ = strconv.ParseInt(m[3], 10, 64)
				h.hasCnt = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(hists) == 0 {
		t.Fatal("no histogram families in the scrape")
	}
	for name, h := range hists {
		if !h.hasInf {
			t.Fatalf("%s: no +Inf bucket", name)
		}
		if !h.hasCnt {
			t.Fatalf("%s: no _count sample", name)
		}
		if inf := h.buckets[len(h.buckets)-1]; h.count != inf {
			t.Fatalf("%s: _count %d != +Inf bucket %d", name, h.count, inf)
		}
	}
	// And against the live histogram itself: _count must equal Count(),
	// including the observation beyond the last finite bound.
	if got, want := hists["partix_engine_query_seconds"], EngineQuerySeconds.Count(); got == nil || got.count != int64(want) {
		t.Fatalf("partix_engine_query_seconds _count = %+v, histogram Count() = %d", got, want)
	}
}

// A histogram whose only observation lies beyond the last finite bound
// still reports _count == +Inf bucket (the regression the _count fix
// addressed: it used to read a separate counter that could lag the
// buckets mid-scrape and miss over-the-top observations entirely).
func TestPrometheusCountMatchesInfBucket(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("lint_overflow_seconds", "observations beyond every bound", []float64{0.1, 1})
	h.Observe(time.Hour.Seconds())
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	want := []string{
		`lint_overflow_seconds_bucket{le="0.1"} 0`,
		`lint_overflow_seconds_bucket{le="1"} 0`,
		`lint_overflow_seconds_bucket{le="+Inf"} 1`,
		`lint_overflow_seconds_count 1`,
	}
	for _, w := range want {
		if !strings.Contains(text, w+"\n") {
			t.Fatalf("scrape missing %q:\n%s", w, text)
		}
	}
	if !strings.Contains(text, fmt.Sprintf("lint_overflow_seconds_sum %g\n", time.Hour.Seconds())) {
		t.Fatalf("scrape sum:\n%s", text)
	}
}
