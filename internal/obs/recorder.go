package obs

import (
	"sync/atomic"
	"time"
)

// FragmentTiming is the per-fragment slice of one recorded query: which
// node served the fragment, how long it took, and how much it shipped.
type FragmentTiming struct {
	Fragment  string `json:"fragment,omitempty"`
	Node      string `json:"node,omitempty"`
	ElapsedNs int64  `json:"elapsedNs"`
	Items     int    `json:"items"`
	Bytes     int    `json:"bytes"`
	Cancelled bool   `json:"cancelled,omitempty"`
}

// A QueryRecord is one entry in the flight recorder: everything needed
// to reconstruct what a query did after the fact. Records are immutable
// once handed to Record — snapshot readers share them without copying.
type QueryRecord struct {
	UnixNano    int64            `json:"unixNano"`
	TraceID     string           `json:"traceId,omitempty"`
	Query       string           `json:"query"` // normalized text
	Strategy    string           `json:"strategy,omitempty"`
	DurationNs  int64            `json:"durationNs"`
	PlanNs      int64            `json:"planNs,omitempty"`
	Items       int              `json:"items"`
	Bytes       int              `json:"bytes,omitempty"`
	Frames      int              `json:"frames,omitempty"`
	DocsDecoded int64            `json:"docsDecoded,omitempty"`
	DocsPruned  int64            `json:"docsPruned,omitempty"`
	PlanCached  bool             `json:"planCached,omitempty"`
	Cached      bool             `json:"cached,omitempty"` // served from the result cache
	Streamed    bool             `json:"streamed,omitempty"`
	Compiled    bool             `json:"compiled,omitempty"`
	IndexOnly   bool             `json:"indexOnly,omitempty"`
	Slow        bool             `json:"slow,omitempty"`
	Error       string           `json:"error,omitempty"`
	Fragments   []FragmentTiming `json:"fragments,omitempty"`
	Spans       *Span            `json:"spans,omitempty"`
}

// A FlightRecorder keeps the last capacity query records in a bounded
// ring. Writers claim a slot with one atomic add and publish the record
// with one atomic pointer store — no locks, no blocking, safe from any
// number of goroutines. Readers snapshot by loading the pointers; since
// records are immutable the snapshot needs no synchronization either.
//
// Tail sampling keeps the recorder cheap under load without losing the
// interesting queries: errored queries and queries at or above the slow
// threshold are always recorded; the rest are recorded 1-in-N per
// SetSampleEvery (N=1, the default, records everything).
type FlightRecorder struct {
	ring        []atomic.Pointer[QueryRecord]
	pos         atomic.Uint64 // next slot to claim
	tick        atomic.Uint64 // sampling counter for non-slow, non-error queries
	sampleEvery atomic.Int64  // record 1 in N ordinary queries (min 1)
	slowNs      atomic.Int64  // always record at/above this duration (0 = off)
	recorded    atomic.Int64
	sampledOut  atomic.Int64
}

// DefaultRecorderCapacity is the ring size NewFlightRecorder uses for
// capacity <= 0. 256 records at well under 1 KiB each bounds the
// recorder's memory to a fraction of one decoded document tree.
const DefaultRecorderCapacity = 256

// NewFlightRecorder returns a recorder holding the last capacity
// records (DefaultRecorderCapacity if capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	r := &FlightRecorder{ring: make([]atomic.Pointer[QueryRecord], capacity)}
	r.sampleEvery.Store(1)
	return r
}

// SetSampleEvery records 1 in n ordinary (not slow, not errored)
// queries. n <= 1 records everything.
func (r *FlightRecorder) SetSampleEvery(n int) {
	if n < 1 {
		n = 1
	}
	r.sampleEvery.Store(int64(n))
}

// SetSlowThreshold marks queries at or above d as slow; slow queries
// bypass sampling and are always recorded. d <= 0 disables the slow
// fast-path (sampling alone decides).
func (r *FlightRecorder) SetSlowThreshold(d time.Duration) {
	r.slowNs.Store(int64(d))
}

// SlowThreshold returns the current slow threshold.
func (r *FlightRecorder) SlowThreshold() time.Duration {
	return time.Duration(r.slowNs.Load())
}

// ShouldRecord decides whether a query with the given duration and
// failure state is recorded, applying tail sampling. Callers that
// build records lazily check this first so sampled-out queries cost
// one atomic add and nothing else.
func (r *FlightRecorder) ShouldRecord(duration time.Duration, failed bool) bool {
	if failed {
		return true
	}
	if slow := r.slowNs.Load(); slow > 0 && int64(duration) >= slow {
		return true
	}
	n := r.sampleEvery.Load()
	if n <= 1 {
		return true
	}
	if r.tick.Add(1)%uint64(n) == 0 {
		return true
	}
	r.sampledOut.Add(1)
	return false
}

// IsSlow reports whether duration meets the slow threshold.
func (r *FlightRecorder) IsSlow(duration time.Duration) bool {
	slow := r.slowNs.Load()
	return slow > 0 && int64(duration) >= slow
}

// Record publishes rec into the ring, evicting the oldest entry once
// full. rec must not be mutated afterwards.
func (r *FlightRecorder) Record(rec *QueryRecord) {
	i := r.pos.Add(1) - 1
	r.ring[i%uint64(len(r.ring))].Store(rec)
	r.recorded.Add(1)
}

// Snapshot returns up to max records, newest first (max <= 0 returns
// everything retained). The returned records are shared and must be
// treated as read-only.
func (r *FlightRecorder) Snapshot(max int) []*QueryRecord {
	n := len(r.ring)
	if max <= 0 || max > n {
		max = n
	}
	out := make([]*QueryRecord, 0, max)
	pos := r.pos.Load()
	for i := 0; i < n && len(out) < max; i++ {
		// Walk backwards from the most recently claimed slot.
		slot := (pos + uint64(n) - 1 - uint64(i)) % uint64(n)
		if rec := r.ring[slot].Load(); rec != nil {
			out = append(out, rec)
		}
	}
	return out
}

// Stats returns how many records were published and how many ordinary
// queries sampling dropped.
func (r *FlightRecorder) Stats() (recorded, sampledOut int64) {
	return r.recorded.Load(), r.sampledOut.Load()
}
