package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestProfilerTopKCounts(t *testing.T) {
	p := NewWorkloadProfiler(8)
	for i := 0; i < 5; i++ {
		p.ObserveQuery("items", []string{"/Item/Section"}, []string{`/Item/Section = "CD"`})
	}
	p.ObserveQuery("items", []string{"/Item/Name"}, nil)
	p.ObserveQuery("other", nil, []string{`/X = "1"`})

	prof := p.Profile()
	if prof.Version != WorkloadProfileVersion {
		t.Fatalf("version = %d", prof.Version)
	}
	if len(prof.Collections) != 2 {
		t.Fatalf("collections: %+v", prof.Collections)
	}
	items := prof.Collections[0] // sorted by name
	if items.Collection != "items" || items.Queries != 6 {
		t.Fatalf("items workload: %+v", items)
	}
	if items.Paths[0].Key != "/Item/Section" || items.Paths[0].Count != 5 {
		t.Fatalf("top path: %+v", items.Paths)
	}
	if items.Predicates[0].Key != `/Item/Section = "CD"` || items.Predicates[0].Count != 5 {
		t.Fatalf("top predicate: %+v", items.Predicates)
	}
}

// The space-saving sketch is bounded: flooding with distinct keys keeps
// it at topK entries while the heavy hitter survives with a count at
// least its true frequency.
func TestProfilerSketchBounded(t *testing.T) {
	p := NewWorkloadProfiler(4)
	for i := 0; i < 50; i++ {
		p.ObserveQuery("c", []string{"/Hot"}, nil)
	}
	for i := 0; i < 40; i++ {
		p.ObserveQuery("c", []string{fmt.Sprintf("/cold%d", i)}, nil)
	}
	c := p.Profile().Collections[0]
	if len(c.Paths) > 4 {
		t.Fatalf("sketch grew past topK: %d entries", len(c.Paths))
	}
	if c.Paths[0].Key != "/Hot" || c.Paths[0].Count < 50 {
		t.Fatalf("heavy hitter lost: %+v", c.Paths)
	}
}

func TestProfilerFragmentHeatAndP99(t *testing.T) {
	p := NewWorkloadProfiler(0)
	for i := 0; i < 99; i++ {
		p.ObserveFragment("items", "f0", 10, 1024, 0.001)
	}
	// Two tail observations: nearest-rank p99 of 101 samples is the
	// 100th, which lands in the tail's bucket.
	p.ObserveFragment("items", "f0", 10, 1024, 5.0)
	p.ObserveFragment("items", "f0", 10, 1024, 5.0)
	p.ObserveFragment("items", "f1", 1, 1, 0.0001)

	prof := p.Profile()
	if len(prof.Fragments) != 2 {
		t.Fatalf("fragments: %+v", prof.Fragments)
	}
	f0 := prof.Fragments[0]
	if f0.Fragment != "f0" || f0.Queries != 101 || f0.DocsDecoded != 1010 || f0.Bytes != 103424 {
		t.Fatalf("f0 heat: %+v", f0)
	}
	var sum int64
	for _, c := range f0.LatencyBuckets {
		sum += c
	}
	if sum != 101 {
		t.Fatalf("latency bucket sum = %d, want 101", sum)
	}
	// The p99 estimate must land at the tail observation's bucket, far
	// above the 1ms bulk.
	if f0.P99Seconds < 1.0 {
		t.Fatalf("p99 = %v, want the 5s tail's bucket", f0.P99Seconds)
	}
	if f1 := prof.Fragments[1]; f1.P99Seconds > 0.001 {
		t.Fatalf("f1 p99 = %v, want the sub-ms bucket", f1.P99Seconds)
	}
}

func TestMergeHeat(t *testing.T) {
	mk := func(node string, queries int64, bucket int) FragmentHeat {
		b := make([]int64, len(HeatLatencyBounds)+1)
		b[bucket] = queries
		return FragmentHeat{Collection: "items", Fragment: "f0", Node: node,
			Queries: queries, DocsDecoded: queries * 2, Bytes: queries * 10, LatencyBuckets: b}
	}
	merged := MergeHeat([]FragmentHeat{
		mk("n0", 10, 0),
		mk("n1", 5, 3),
		{Collection: "items", Fragment: "f1", Node: "n0", Queries: 1},
		{Collection: "a", Fragment: "", Node: "n0", Queries: 2},
	})
	if len(merged) != 3 {
		t.Fatalf("merged: %+v", merged)
	}
	// Sorted by collection then fragment: a::, items::f0, items::f1.
	if merged[0].Collection != "a" || merged[1].Fragment != "f0" || merged[2].Fragment != "f1" {
		t.Fatalf("order: %+v", merged)
	}
	f0 := merged[1]
	if f0.Queries != 15 || f0.DocsDecoded != 30 || f0.Bytes != 150 {
		t.Fatalf("summed counters: %+v", f0)
	}
	if f0.Node != "" {
		t.Fatalf("node kept despite disagreement: %q", f0.Node)
	}
	if f0.LatencyBuckets[0] != 10 || f0.LatencyBuckets[3] != 5 {
		t.Fatalf("buckets not elementwise-summed: %v", f0.LatencyBuckets)
	}
	if f0.P99Seconds != HeatLatencyBounds[3] {
		t.Fatalf("p99 not recomputed: %v", f0.P99Seconds)
	}
	if merged[2].Node != "n0" {
		t.Fatalf("unanimous node dropped: %+v", merged[2])
	}
}

func TestObserveLatencyBucket(t *testing.T) {
	if got := ObserveLatencyBucket(0); got != 0 {
		t.Fatalf("zero-latency bucket = %d", got)
	}
	if got := ObserveLatencyBucket(time.Hour); got != len(HeatLatencyBounds) {
		t.Fatalf("over-the-top bucket = %d, want the +Inf slot %d", got, len(HeatLatencyBounds))
	}
	for d := time.Microsecond; d < time.Minute; d *= 7 {
		i := ObserveLatencyBucket(d)
		if i < len(HeatLatencyBounds) && d.Seconds() > HeatLatencyBounds[i] {
			t.Fatalf("%v put above its bound %v", d, HeatLatencyBounds[i])
		}
		if i > 0 && d.Seconds() <= HeatLatencyBounds[i-1] {
			t.Fatalf("%v put past its bound: bucket %d", d, i)
		}
	}
}

func TestProfilerConcurrent(t *testing.T) {
	p := NewWorkloadProfiler(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				p.ObserveQuery("items", []string{"/Item/Section"}, []string{`/Item/Section = "CD"`})
				p.ObserveFragment("items", fmt.Sprintf("f%d", i%4), 1, 64, 0.001)
				if i%50 == 0 {
					p.Profile()
				}
			}
		}(w)
	}
	wg.Wait()
	prof := p.Profile()
	if prof.Collections[0].Queries != 8*300 {
		t.Fatalf("queries = %d", prof.Collections[0].Queries)
	}
	var frags int64
	for _, f := range prof.Fragments {
		frags += f.Queries
	}
	if frags != 8*300 {
		t.Fatalf("fragment observations = %d", frags)
	}
}
