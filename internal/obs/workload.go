package obs

import (
	"sort"
	"sync"
	"time"
)

// WorkloadProfileVersion is bumped whenever the exported profile's JSON
// shape changes incompatibly; consumers check it before scoring.
const WorkloadProfileVersion = 1

// HeatLatencyBounds are the fixed per-fragment latency bucket upper
// bounds in seconds (+Inf implicit last). Fixed bounds make heat counts
// from different nodes mergeable by elementwise addition.
var HeatLatencyBounds = []float64{
	0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// A KeyCount is one entry of a top-K frequency sketch. Count may
// overestimate by at most Err (the space-saving error bound inherited
// from the evicted minimum when the key entered a full sketch).
type KeyCount struct {
	Key   string `json:"key"`
	Count int64  `json:"count"`
	Err   int64  `json:"err,omitempty"`
}

// CollectionWorkload is one collection's mined traffic: how many
// queries touched it and the top-K paths and predicates they used.
type CollectionWorkload struct {
	Collection string     `json:"collection"`
	Queries    int64      `json:"queries"`
	Paths      []KeyCount `json:"paths,omitempty"`
	Predicates []KeyCount `json:"predicates,omitempty"`
}

// FragmentHeat is one fragment's load counters. LatencyBuckets count
// observations per HeatLatencyBounds bucket (+Inf last) so entries from
// different nodes merge by elementwise addition; P99Seconds is the
// bucket-resolution estimate computed at export time.
type FragmentHeat struct {
	Collection     string  `json:"collection"`
	Fragment       string  `json:"fragment,omitempty"`
	Node           string  `json:"node,omitempty"`
	Queries        int64   `json:"queries"`
	DocsDecoded    int64   `json:"docsDecoded,omitempty"`
	Bytes          int64   `json:"bytes,omitempty"`
	LatencyBuckets []int64 `json:"latencyBuckets,omitempty"`
	P99Seconds     float64 `json:"p99Seconds,omitempty"`
}

// A WorkloadProfile is the versioned, JSON-exportable summary of the
// observed query traffic: per-collection path/predicate frequency and
// per-fragment heat. internal/design scores fragmentation schemes
// against it; PR 10's refragmentation loop consumes it.
type WorkloadProfile struct {
	Version     int                  `json:"version"`
	Collections []CollectionWorkload `json:"collections,omitempty"`
	Fragments   []FragmentHeat       `json:"fragments,omitempty"`
}

// A TelemetrySnapshot is one node's telemetry as pulled over the wire:
// its scalar metric series and its per-fragment heat. Node is filled by
// the puller (the node does not know its logical cluster name).
type TelemetrySnapshot struct {
	Node    string
	Metrics map[string]float64
	Heat    []FragmentHeat
}

// ssEntry is one monitored key of a space-saving sketch.
type ssEntry struct {
	count int64
	err   int64
}

// spaceSaving is the Metwally et al. space-saving top-K sketch: at most
// k monitored keys; an unmonitored arrival evicts the current minimum
// and inherits its count as the new key's error bound. Guarantees every
// key with true frequency > min(count) is monitored.
type spaceSaving struct {
	k      int
	counts map[string]*ssEntry
}

func newSpaceSaving(k int) *spaceSaving {
	return &spaceSaving{k: k, counts: make(map[string]*ssEntry, k)}
}

func (s *spaceSaving) observe(key string) {
	if e, ok := s.counts[key]; ok {
		e.count++
		return
	}
	if len(s.counts) < s.k {
		s.counts[key] = &ssEntry{count: 1}
		return
	}
	// Evict the minimum; the newcomer inherits its count as error bound.
	var minKey string
	var min *ssEntry
	for k, e := range s.counts {
		if min == nil || e.count < min.count {
			minKey, min = k, e
		}
	}
	delete(s.counts, minKey)
	s.counts[key] = &ssEntry{count: min.count + 1, err: min.count}
}

// entries returns the monitored keys sorted by descending count (ties
// by key for determinism).
func (s *spaceSaving) entries() []KeyCount {
	out := make([]KeyCount, 0, len(s.counts))
	for k, e := range s.counts {
		out = append(out, KeyCount{Key: k, Count: e.count, Err: e.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// collWorkload accumulates one collection's sketches.
type collWorkload struct {
	queries int64
	paths   *spaceSaving
	preds   *spaceSaving
}

// fragHeat accumulates one fragment's counters.
type fragHeat struct {
	queries     int64
	docsDecoded int64
	bytes       int64
	latency     []int64 // len(HeatLatencyBounds)+1
}

func (h *fragHeat) observeLatency(seconds float64) {
	i := 0
	for i < len(HeatLatencyBounds) && seconds > HeatLatencyBounds[i] {
		i++
	}
	h.latency[i]++
}

// DefaultWorkloadTopK is the sketch width NewWorkloadProfiler uses for
// topK <= 0: wide enough for the distinct paths/predicates of any
// realistic per-collection workload, narrow enough to stay O(1).
const DefaultWorkloadTopK = 16

// A WorkloadProfiler mines query traffic into per-collection top-K
// path/predicate sketches and per-fragment heat counters. All methods
// are safe for concurrent use; the hot-path cost is one short mutexed
// map update per query.
type WorkloadProfiler struct {
	mu          sync.Mutex
	topK        int
	collections map[string]*collWorkload
	fragments   map[string]*fragHeat
}

// NewWorkloadProfiler returns a profiler keeping topK keys per sketch
// (DefaultWorkloadTopK if topK <= 0).
func NewWorkloadProfiler(topK int) *WorkloadProfiler {
	if topK <= 0 {
		topK = DefaultWorkloadTopK
	}
	return &WorkloadProfiler{
		topK:        topK,
		collections: make(map[string]*collWorkload),
		fragments:   make(map[string]*fragHeat),
	}
}

func (p *WorkloadProfiler) coll(name string) *collWorkload {
	c, ok := p.collections[name]
	if !ok {
		c = &collWorkload{paths: newSpaceSaving(p.topK), preds: newSpaceSaving(p.topK)}
		p.collections[name] = c
	}
	return c
}

func (p *WorkloadProfiler) frag(collection, fragment string) *fragHeat {
	key := collection + "\x00" + fragment
	h, ok := p.fragments[key]
	if !ok {
		h = &fragHeat{latency: make([]int64, len(HeatLatencyBounds)+1)}
		p.fragments[key] = h
	}
	return h
}

// ObserveQuery records one query against collection, feeding its
// canonical path and predicate keys into the sketches.
func (p *WorkloadProfiler) ObserveQuery(collection string, paths, predicates []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c := p.coll(collection)
	c.queries++
	for _, path := range paths {
		c.paths.observe(path)
	}
	for _, pred := range predicates {
		c.preds.observe(pred)
	}
}

// ObserveFragment records one sub-query served by a fragment: docs
// decoded (0 when unknown at this layer), result bytes, and latency.
func (p *WorkloadProfiler) ObserveFragment(collection, fragment string, docsDecoded, bytes int64, seconds float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	h := p.frag(collection, fragment)
	h.queries++
	h.docsDecoded += docsDecoded
	h.bytes += bytes
	h.observeLatency(seconds)
}

// Profile exports the current state as a versioned WorkloadProfile.
func (p *WorkloadProfiler) Profile() *WorkloadProfile {
	p.mu.Lock()
	defer p.mu.Unlock()
	prof := &WorkloadProfile{Version: WorkloadProfileVersion}
	collNames := make([]string, 0, len(p.collections))
	for name := range p.collections {
		collNames = append(collNames, name)
	}
	sort.Strings(collNames)
	for _, name := range collNames {
		c := p.collections[name]
		prof.Collections = append(prof.Collections, CollectionWorkload{
			Collection: name,
			Queries:    c.queries,
			Paths:      c.paths.entries(),
			Predicates: c.preds.entries(),
		})
	}
	fragKeys := make([]string, 0, len(p.fragments))
	for key := range p.fragments {
		fragKeys = append(fragKeys, key)
	}
	sort.Strings(fragKeys)
	for _, key := range fragKeys {
		h := p.fragments[key]
		coll, frag := key, ""
		for i := 0; i < len(key); i++ {
			if key[i] == 0 {
				coll, frag = key[:i], key[i+1:]
				break
			}
		}
		buckets := make([]int64, len(h.latency))
		copy(buckets, h.latency)
		prof.Fragments = append(prof.Fragments, FragmentHeat{
			Collection:     coll,
			Fragment:       frag,
			Queries:        h.queries,
			DocsDecoded:    h.docsDecoded,
			Bytes:          h.bytes,
			LatencyBuckets: buckets,
			P99Seconds:     heatP99(buckets),
		})
	}
	return prof
}

// Reset clears every sketch and counter, for tests and ablations.
func (p *WorkloadProfiler) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.collections = make(map[string]*collWorkload)
	p.fragments = make(map[string]*fragHeat)
}

// heatP99 estimates the 99th-percentile latency from bucket counts: the
// upper bound of the bucket where the cumulative count crosses 99%.
// When p99 lands in the +Inf bucket the last finite bound is reported
// (JSON cannot carry infinity).
func heatP99(buckets []int64) float64 {
	var total int64
	for _, c := range buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := (total*99 + 99) / 100 // ceil(0.99 * total)
	var cum int64
	for i, c := range buckets {
		cum += c
		if cum >= target {
			if i < len(HeatLatencyBounds) {
				return HeatLatencyBounds[i]
			}
			return HeatLatencyBounds[len(HeatLatencyBounds)-1]
		}
	}
	return HeatLatencyBounds[len(HeatLatencyBounds)-1]
}

// MergeHeat combines heat entries that describe the same collection and
// fragment (summing counters and latency buckets elementwise) and
// recomputes each survivor's p99. Node is kept when every merged entry
// agrees on it and cleared otherwise. Entries come back sorted by
// collection, then fragment.
func MergeHeat(entries []FragmentHeat) []FragmentHeat {
	type key struct{ coll, frag string }
	merged := make(map[key]*FragmentHeat)
	order := make([]key, 0, len(entries))
	for _, e := range entries {
		k := key{e.Collection, e.Fragment}
		m, ok := merged[k]
		if !ok {
			cp := e
			cp.LatencyBuckets = append([]int64(nil), e.LatencyBuckets...)
			merged[k] = &cp
			order = append(order, k)
			continue
		}
		m.Queries += e.Queries
		m.DocsDecoded += e.DocsDecoded
		m.Bytes += e.Bytes
		if m.Node != e.Node {
			m.Node = ""
		}
		if len(m.LatencyBuckets) < len(e.LatencyBuckets) {
			m.LatencyBuckets = append(m.LatencyBuckets, make([]int64, len(e.LatencyBuckets)-len(m.LatencyBuckets))...)
		}
		for i, c := range e.LatencyBuckets {
			m.LatencyBuckets[i] += c
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].coll != order[j].coll {
			return order[i].coll < order[j].coll
		}
		return order[i].frag < order[j].frag
	})
	out := make([]FragmentHeat, 0, len(order))
	for _, k := range order {
		m := merged[k]
		m.P99Seconds = heatP99(m.LatencyBuckets)
		out = append(out, *m)
	}
	return out
}

// HeatLatencySeconds returns an entry's approximate mean share of
// observed time, bucket-estimated: sum over buckets of count × bound.
// Useful for ranking fragments by total time served.
func (h FragmentHeat) HeatLatencySeconds() float64 {
	var total float64
	for i, c := range h.LatencyBuckets {
		bound := HeatLatencyBounds[len(HeatLatencyBounds)-1]
		if i < len(HeatLatencyBounds) {
			bound = HeatLatencyBounds[i]
		}
		total += float64(c) * bound
	}
	return total
}

// ObserveLatencyBucket returns the bucket index a latency falls into,
// exported for engine-side heat accounting that keeps its own atomic
// bucket arrays.
func ObserveLatencyBucket(d time.Duration) int {
	s := d.Seconds()
	i := 0
	for i < len(HeatLatencyBounds) && s > HeatLatencyBounds[i] {
		i++
	}
	return i
}
