package algebra

import (
	"testing"

	"partix/internal/xmltree"
	"partix/internal/xpath"
)

func itemsCollection() *xmltree.Collection {
	mk := func(name, code, section, desc string, pics bool) *xmltree.Document {
		xml := `<Item><Code>` + code + `</Code><Name>n</Name><Description>` + desc +
			`</Description><Section>` + section + `</Section>`
		if pics {
			xml += `<PictureList><Picture><Name>p</Name><ModificationDate>m</ModificationDate><OriginalPath>o</OriginalPath><ThumbPath>t</ThumbPath></Picture></PictureList>`
		}
		xml += `</Item>`
		return xmltree.MustParseString(name, xml)
	}
	return xmltree.NewCollection("items",
		mk("i1", "I1", "CD", "a good disc", true),
		mk("i2", "I2", "DVD", "a fine movie", false),
		mk("i3", "I3", "CD", "plain disc", false),
		mk("i4", "I4", "Book", "good reading", true),
	)
}

func storeDoc() *xmltree.Document {
	return xmltree.MustParseString("store", `<Store>
	  <Sections>
	    <Section><Code>S1</Code><Name>CD</Name></Section>
	    <Section><Code>S2</Code><Name>DVD</Name></Section>
	  </Sections>
	  <Items>
	    <Item id="1"><Code>I1</Code><Name>a</Name><Description>d1</Description><Section>CD</Section></Item>
	    <Item id="2"><Code>I2</Code><Name>b</Name><Description>d2</Description><Section>DVD</Section></Item>
	    <Item id="3"><Code>I3</Code><Name>c</Name><Description>d3</Description><Section>CD</Section></Item>
	  </Items>
	  <Employees><Employee>bob</Employee></Employees>
	</Store>`)
}

func TestSelectHorizontal(t *testing.T) {
	c := itemsCollection()
	cd := Select("cd", c, xpath.MustParsePredicate(`/Item/Section = "CD"`))
	if cd.Len() != 2 || cd.Doc("i1") == nil || cd.Doc("i3") == nil {
		t.Fatalf("CD fragment: %d docs", cd.Len())
	}
	// Fragment documents are copies: mutating them must not touch c.
	cd.Doc("i1").Root.Child("Code").Children[0].Value = "changed"
	if c.Doc("i1").Root.Child("Code").Text() == "changed" {
		t.Fatal("Select shares nodes with source collection")
	}
}

func TestSelectComplementPartition(t *testing.T) {
	c := itemsCollection()
	pred := xpath.MustParsePredicate(`contains(//Description, "good")`)
	f1 := Select("good", c, pred)
	f2 := Select("rest", c, &xpath.Not{Inner: pred})
	if f1.Len()+f2.Len() != c.Len() {
		t.Fatalf("partition sizes %d+%d != %d", f1.Len(), f2.Len(), c.Len())
	}
	re, err := Union("items", f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.EqualCollections(c, re) {
		t.Fatal("union of complements != original")
	}
}

func TestUnionDetectsOverlap(t *testing.T) {
	c := itemsCollection()
	all := Select("all", c, xpath.True{})
	cd := Select("cd", c, xpath.MustParsePredicate(`/Item/Section = "CD"`))
	if _, err := Union("x", all, cd); err == nil {
		t.Fatal("overlapping fragments accepted by Union")
	}
}

func TestProjectSubtree(t *testing.T) {
	c := itemsCollection()
	pics := ProjectCollection("pics", c, xpath.MustParsePath("/Item/PictureList"), nil)
	// Only i1 and i4 have pictures.
	if pics.Len() != 2 || pics.Doc("i1") == nil || pics.Doc("i4") == nil {
		t.Fatalf("pics fragment: %d docs", pics.Len())
	}
	d := pics.Doc("i1")
	// Spine: Item root kept, only PictureList under it.
	if d.Root.Name != "Item" {
		t.Fatalf("projected root = %q", d.Root.Name)
	}
	if len(d.Root.Children) != 1 || d.Root.Children[0].Name != "PictureList" {
		t.Fatalf("projected children = %v", d.Root.Children)
	}
	if d.Root.Child("PictureList").Child("Picture").Child("Name").Text() != "p" {
		t.Fatal("projected subtree content lost")
	}
}

func TestProjectWithPrune(t *testing.T) {
	c := itemsCollection()
	noPics := ProjectCollection("nopics", c,
		xpath.MustParsePath("/Item"),
		[]*xpath.Path{xpath.MustParsePath("/Item/PictureList")})
	if noPics.Len() != 4 {
		t.Fatalf("pruned fragment: %d docs, want all 4", noPics.Len())
	}
	for _, d := range noPics.Docs {
		if d.Root.Child("PictureList") != nil {
			t.Fatalf("%s still has PictureList", d.Name)
		}
		if d.Root.Child("Code") == nil {
			t.Fatalf("%s lost Code", d.Name)
		}
	}
}

func TestProjectNothingSelected(t *testing.T) {
	doc := xmltree.MustParseString("d", "<Item><Code>c</Code></Item>")
	if Project(doc, xpath.MustParsePath("/Item/PictureList"), nil) != nil {
		t.Fatal("projection of absent path should be nil")
	}
	// Pruning away the selected node itself leaves nothing.
	if Project(doc, xpath.MustParsePath("/Item/Code"), []*xpath.Path{xpath.MustParsePath("/Item/Code")}) != nil {
		t.Fatal("fully pruned projection should be nil")
	}
}

func TestProjectSpineKeepsAttributes(t *testing.T) {
	doc := xmltree.MustParseString("a", `<article id="a1"><prolog><title>t</title></prolog><body><p>x</p></body></article>`)
	prolog := Project(doc, xpath.MustParsePath("/article/prolog"), nil)
	if prolog.Root.Name != "article" {
		t.Fatalf("root = %q", prolog.Root.Name)
	}
	if v, ok := prolog.Root.Attr("id"); !ok || v != "a1" {
		t.Fatal("spine lost root attribute")
	}
	if prolog.Root.Child("body") != nil {
		t.Fatal("spine leaked sibling subtree")
	}
	if prolog.Root.Child("prolog").Child("title").Text() != "t" {
		t.Fatal("projected content lost")
	}
}

func TestProjectPreservesIDs(t *testing.T) {
	doc := storeDoc()
	orig := xpath.MustParsePath("/Store/Items").Select(doc)[0]
	frag := Project(doc, xpath.MustParsePath("/Store/Items"), nil)
	got := xpath.MustParsePath("/Store/Items").Select(frag)[0]
	if got.ID != orig.ID {
		t.Fatalf("Items ID %d != original %d", got.ID, orig.ID)
	}
	if frag.Root.ID != doc.Root.ID {
		t.Fatal("spine root ID changed")
	}
}

func TestVerticalJoinReconstructs(t *testing.T) {
	doc := storeDoc()
	c := xmltree.NewCollection("store", doc)

	f1 := ProjectCollection("f1", c, xpath.MustParsePath("/Store"),
		[]*xpath.Path{xpath.MustParsePath("/Store/Items")})
	f2 := ProjectCollection("f2", c, xpath.MustParsePath("/Store/Items"), nil)

	re, err := Join("store", f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.EqualCollections(c, re) {
		t.Fatalf("join != original: %s", xmltree.Diff(c.Docs[0].Root, re.Docs[0].Root))
	}
}

func TestThreeWayVerticalJoin(t *testing.T) {
	// XBenchVer-style: prolog / body / epilog fragments share only the
	// article spine.
	doc := xmltree.MustParseString("a1", `<article id="a1"><prolog><title>t</title></prolog><body><p>one</p><p>two</p></body><epilog><ref>r</ref></epilog></article>`)
	c := xmltree.NewCollection("articles", doc)
	var frags []*xmltree.Collection
	for _, p := range []string{"/article/prolog", "/article/body", "/article/epilog"} {
		frags = append(frags, ProjectCollection(p, c, xpath.MustParsePath(p), nil))
	}
	re, err := Join("articles", frags...)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.EqualCollections(c, re) {
		t.Fatalf("3-way join != original: %s", xmltree.Diff(doc.Root, re.Docs[0].Root))
	}
}

func TestMergeByIDErrors(t *testing.T) {
	if _, err := MergeByID(nil); err == nil {
		t.Fatal("empty merge accepted")
	}
	a := xmltree.MustParseString("x", "<a><b>1</b></a>")
	b := xmltree.MustParseString("y", "<a><b>1</b></a>")
	if _, err := MergeByID([]*xmltree.Document{a, b}); err == nil {
		t.Fatal("cross-name merge accepted")
	}
	// Same name, same root ID, different label: conflict.
	c1 := xmltree.MustParseString("x", "<a/>")
	c2 := xmltree.MustParseString("x", "<b/>")
	if _, err := MergeByID([]*xmltree.Document{c1, c2}); err == nil {
		t.Fatal("conflicting roots merged")
	}
}

func TestFilterChildrenHybrid(t *testing.T) {
	doc := storeDoc()
	frag := Project(doc, xpath.MustParsePath("/Store/Items"), nil)
	FilterChildren(frag, xpath.MustParsePath("/Store/Items"),
		xpath.MustParsePredicate(`/Item/Section = "CD"`))
	items := xpath.MustParsePath("/Store/Items/Item").Select(frag)
	if len(items) != 2 {
		t.Fatalf("filtered items = %d, want 2", len(items))
	}
	for _, it := range items {
		if it.Child("Section").Text() != "CD" {
			t.Fatalf("kept non-CD item %s", it.Child("Code").Text())
		}
	}
	if FilterChildren(nil, nil, nil) != nil {
		t.Fatal("nil doc not passed through")
	}
}

func TestHybridPartitionJoinReconstructs(t *testing.T) {
	// The StoreHyb design of the paper's Figure 4: prune Items into F4 and
	// split Items horizontally by Section into three fragments.
	doc := storeDoc()
	c := xmltree.NewCollection("store", doc)
	itemsPath := xpath.MustParsePath("/Store/Items")

	f4 := ProjectCollection("f4", c, xpath.MustParsePath("/Store"), []*xpath.Path{itemsPath})
	mkHoriz := func(name, pred string) *xmltree.Collection {
		out := xmltree.NewCollection(name)
		for _, d := range c.Docs {
			pd := Project(d, itemsPath, nil)
			pd = FilterChildren(pd, itemsPath, xpath.MustParsePredicate(pred))
			if pd != nil {
				out.Add(pd)
			}
		}
		return out
	}
	f1 := mkHoriz("f1", `/Item/Section = "CD"`)
	f2 := mkHoriz("f2", `/Item/Section = "DVD"`)
	f3 := mkHoriz("f3", `/Item/Section != "CD" and /Item/Section != "DVD"`)

	re, err := Join("store", f4, f1, f2, f3)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.EqualCollections(c, re) {
		t.Fatalf("hybrid reconstruction failed: %s", xmltree.Diff(doc.Root, re.Docs[0].Root))
	}
}

func TestOwnedIDsVertical(t *testing.T) {
	doc := storeDoc()
	itemsPath := xpath.MustParsePath("/Store/Items")
	ownedF2 := OwnedIDs(doc, itemsPath, nil, nil)
	ownedF1 := OwnedIDs(doc, xpath.MustParsePath("/Store"), []*xpath.Path{itemsPath}, nil)

	// Disjoint and together covering everything.
	for id := range ownedF1 {
		if ownedF2[id] {
			t.Fatalf("ID %d owned by both fragments", id)
		}
	}
	total := doc.CountNodes()
	if len(ownedF1)+len(ownedF2) != total {
		t.Fatalf("coverage %d+%d != %d nodes", len(ownedF1), len(ownedF2), total)
	}
}

func TestOwnedIDsHybridExcludesAnchor(t *testing.T) {
	doc := storeDoc()
	itemsPath := xpath.MustParsePath("/Store/Items")
	itemsNode := itemsPath.Select(doc)[0]
	owned := OwnedIDs(doc, itemsPath, nil, xpath.MustParsePredicate(`/Item/Section = "CD"`))
	if owned[itemsNode.ID] {
		t.Fatal("hybrid fragment owns its anchor node")
	}
	// It owns exactly the two CD item subtrees.
	cdItems := 0
	for _, it := range itemsNode.ElementChildren() {
		if it.Child("Section").Text() == "CD" {
			it.Walk(func(n *xmltree.Node) bool {
				if !owned[n.ID] {
					t.Fatalf("CD item node %d not owned", n.ID)
				}
				return true
			})
			cdItems++
		} else if owned[it.ID] {
			t.Fatal("non-CD item owned")
		}
	}
	if cdItems != 2 {
		t.Fatalf("cd items = %d", cdItems)
	}
}

func TestOwnedIDsSkipsPrunedSelection(t *testing.T) {
	doc := storeDoc()
	p := xpath.MustParsePath("/Store/Items")
	owned := OwnedIDs(doc, p, []*xpath.Path{p}, nil)
	if len(owned) != 0 {
		t.Fatalf("pruned selection owns %d nodes", len(owned))
	}
}
