// Package algebra implements the tree-algebra operators the PartiX paper
// builds its fragmentation model on (Section 3.2, following TAX/TLC):
// selection σ over documents, projection π with a prune criterion Γ, the
// union operator ∪ that reconstructs horizontal fragmentations, and the
// ID-join ⨝ that reconstructs vertical ones.
//
// # Projection and the spine
//
// π(P, Γ) over a document keeps the subtrees rooted at the nodes selected
// by P, minus the subtrees rooted at nodes selected by the paths in Γ. To
// keep every projected document well-formed ("they must have a single
// root", paper Section 3.2) the result also carries the spine: the chain
// of ancestor elements from the document root down to each selected node,
// including the ancestors' attributes. Spine nodes are replicated across
// fragments; they are reconstruction metadata ("we keep an ID in each
// vertical fragment for reconstruction purposes") and are excluded from
// the ownership sets the disjointness rule is checked against.
//
// Carrying spine attributes is what lets a query like
// /article[@id="x"]/prolog run against the prolog fragment alone.
package algebra

import (
	"fmt"
	"sort"

	"partix/internal/xmltree"
	"partix/internal/xpath"
)

// Select returns the documents of c satisfying pred, as deep copies: a
// fragment is an independent collection (paper Definition 2). The result
// collection is named name.
func Select(name string, c *xmltree.Collection, pred xpath.Predicate) *xmltree.Collection {
	out := xmltree.NewCollection(name)
	for _, d := range c.Docs {
		if pred.Eval(d) {
			out.Add(d.Clone())
		}
	}
	return out
}

// Project applies π(P, Γ) to a single document and returns the projected
// document, or nil when P selects nothing (the document contributes no
// instance to this fragment). The result keeps the original document name
// and original node IDs.
func Project(doc *xmltree.Document, p *xpath.Path, prune []*xpath.Path) *xmltree.Document {
	selected := p.Select(doc)
	if len(selected) == 0 {
		return nil
	}
	pruned := pruneSet(doc, prune)

	// Copy each selected subtree, skipping pruned descendants.
	copies := make(map[*xmltree.Node]*xmltree.Node, len(selected))
	for _, sel := range selected {
		if c := copyWithout(sel, pruned); c != nil {
			copies[sel] = c
		}
	}
	if len(copies) == 0 {
		return nil
	}

	// Build the spine from the root to each selected node.
	root := buildSpine(doc.Root, selected, copies)
	if root == nil {
		return nil
	}
	return &xmltree.Document{Name: doc.Name, Root: root}
}

// pruneSet returns the set of nodes removed by the prune criterion: every
// node in a subtree rooted at a node selected by some path in prune.
func pruneSet(doc *xmltree.Document, prune []*xpath.Path) map[*xmltree.Node]bool {
	if len(prune) == 0 {
		return nil
	}
	set := make(map[*xmltree.Node]bool)
	for _, g := range prune {
		for _, n := range g.Select(doc) {
			n.Walk(func(d *xmltree.Node) bool { set[d] = true; return true })
		}
	}
	return set
}

// copyWithout deep-copies the subtree at n, skipping nodes in skip.
// Returns nil if n itself is skipped.
func copyWithout(n *xmltree.Node, skip map[*xmltree.Node]bool) *xmltree.Node {
	if skip[n] {
		return nil
	}
	cp := &xmltree.Node{Kind: n.Kind, Name: n.Name, Value: n.Value, ID: n.ID}
	for _, c := range n.Children {
		if cc := copyWithout(c, skip); cc != nil {
			cc.Parent = cp
			cp.Children = append(cp.Children, cc)
		}
	}
	return cp
}

// buildSpine copies the chain of ancestors needed to reach each selected
// node, grafting the prepared subtree copies at the selected positions.
// Ancestor elements keep their attributes (replicated metadata) but none
// of their other content. If the root itself is selected its copy is
// returned directly.
func buildSpine(root *xmltree.Node, selected []*xmltree.Node, copies map[*xmltree.Node]*xmltree.Node) *xmltree.Node {
	if c, ok := copies[root]; ok {
		return c
	}
	// needed[n] is true when n is a proper ancestor of a selected node.
	needed := make(map[*xmltree.Node]bool)
	for _, sel := range selected {
		if _, ok := copies[sel]; !ok {
			continue
		}
		for p := sel.Parent; p != nil; p = p.Parent {
			needed[p] = true
		}
	}
	if !needed[root] {
		return nil
	}
	return buildSpineNode(root, needed, copies)
}

func buildSpineNode(n *xmltree.Node, needed map[*xmltree.Node]bool, copies map[*xmltree.Node]*xmltree.Node) *xmltree.Node {
	cp := &xmltree.Node{Kind: n.Kind, Name: n.Name, ID: n.ID}
	for _, c := range n.Children {
		var cc *xmltree.Node
		switch {
		case copies[c] != nil:
			cc = copies[c]
		case needed[c]:
			cc = buildSpineNode(c, needed, copies)
		case c.Kind == xmltree.AttributeNode:
			cc = c.Clone()
		default:
			continue
		}
		cc.Parent = cp
		cp.Children = append(cp.Children, cc)
	}
	return cp
}

// ProjectCollection applies π(P, Γ) to every document of c.
func ProjectCollection(name string, c *xmltree.Collection, p *xpath.Path, prune []*xpath.Path) *xmltree.Collection {
	out := xmltree.NewCollection(name)
	for _, d := range c.Docs {
		if pd := Project(d, p, prune); pd != nil {
			out.Add(pd)
		}
	}
	return out
}

// FilterChildren implements the σ step of a hybrid fragment π(P,Γ) • σ(μ):
// within doc, the element children of every node selected by anchor are
// kept only if they satisfy pred (evaluated with the child as root, so a
// predicate written /Item/Section = "CD" filters Item children). The
// document is modified in place and returned; it is nil-safe.
func FilterChildren(doc *xmltree.Document, anchor *xpath.Path, pred xpath.Predicate) *xmltree.Document {
	if doc == nil {
		return nil
	}
	for _, parent := range anchor.Select(doc) {
		kept := parent.Children[:0]
		for _, c := range parent.Children {
			if c.Kind != xmltree.ElementNode || pred.EvalNode(c) {
				kept = append(kept, c)
			} else {
				c.Parent = nil
			}
		}
		parent.Children = kept
	}
	return doc
}

// Union implements the reconstruction operator ∪ for horizontal
// fragmentation: the disjoint union of the fragments' documents. A
// document name appearing in more than one fragment is an error — that is
// exactly a disjointness violation.
func Union(name string, frags ...*xmltree.Collection) (*xmltree.Collection, error) {
	out := xmltree.NewCollection(name)
	seen := make(map[string]string)
	for _, f := range frags {
		for _, d := range f.Docs {
			if prev, dup := seen[d.Name]; dup {
				return nil, fmt.Errorf("algebra: document %q in fragments %q and %q", d.Name, prev, f.Name)
			}
			seen[d.Name] = f.Name
			out.Add(d.Clone())
		}
	}
	out.SortByName()
	return out, nil
}

// MergeByID implements the reconstruction join ⨝ for vertical and hybrid
// fragmentation: it overlays documents that share a name, matching nodes
// by their preserved IDs. Children are interleaved in ascending ID order,
// which is original document order because IDs are assigned in preorder.
// Nodes with equal IDs must agree on kind, name and value (they are spine
// replicas) and are merged recursively.
func MergeByID(docs []*xmltree.Document) (*xmltree.Document, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("algebra: MergeByID of zero documents")
	}
	merged := docs[0].Root.Clone()
	name := docs[0].Name
	for _, d := range docs[1:] {
		if d.Name != name {
			return nil, fmt.Errorf("algebra: MergeByID across documents %q and %q", name, d.Name)
		}
		var err error
		merged, err = mergeNodes(merged, d.Root.Clone())
		if err != nil {
			return nil, fmt.Errorf("document %q: %w", name, err)
		}
	}
	return &xmltree.Document{Name: name, Root: merged}, nil
}

func mergeNodes(a, b *xmltree.Node) (*xmltree.Node, error) {
	if a.ID != b.ID || a.Kind != b.Kind || a.Name != b.Name || a.Value != b.Value {
		return nil, fmt.Errorf("algebra: cannot merge node %q (ID %d) with %q (ID %d)", a.Name, a.ID, b.Name, b.ID)
	}
	// Merge children sorted by ID; equal IDs merge recursively.
	out := &xmltree.Node{Kind: a.Kind, Name: a.Name, Value: a.Value, ID: a.ID}
	i, j := 0, 0
	for i < len(a.Children) || j < len(b.Children) {
		var pick *xmltree.Node
		switch {
		case i >= len(a.Children):
			pick = b.Children[j]
			j++
		case j >= len(b.Children):
			pick = a.Children[i]
			i++
		case a.Children[i].ID == b.Children[j].ID:
			m, err := mergeNodes(a.Children[i], b.Children[j])
			if err != nil {
				return nil, err
			}
			pick = m
			i++
			j++
		case a.Children[i].ID < b.Children[j].ID:
			pick = a.Children[i]
			i++
		default:
			pick = b.Children[j]
			j++
		}
		pick.Parent = out
		out.Children = append(out.Children, pick)
	}
	return out, nil
}

// Join groups the fragments' documents by name and merges each group with
// MergeByID, yielding the reconstructed collection.
func Join(name string, frags ...*xmltree.Collection) (*xmltree.Collection, error) {
	groups := make(map[string][]*xmltree.Document)
	var order []string
	for _, f := range frags {
		for _, d := range f.Docs {
			if _, ok := groups[d.Name]; !ok {
				order = append(order, d.Name)
			}
			groups[d.Name] = append(groups[d.Name], d)
		}
	}
	sort.Strings(order)
	out := xmltree.NewCollection(name)
	for _, docName := range order {
		m, err := MergeByID(groups[docName])
		if err != nil {
			return nil, err
		}
		out.Add(m)
	}
	return out, nil
}

// OwnedIDs returns the set of node IDs a projection-selection owns in doc:
// the node-level "data items" the correctness rules of Section 3.3 are
// stated over. For a plain vertical fragment (pred == nil) the owned set is
// the subtrees selected by p minus pruned subtrees. For a hybrid fragment
// (pred != nil) the projection root is itself replicated metadata — the
// horizontal sub-fragments of a hybrid design all carry it — so only the
// subtrees of its element children that satisfy pred are owned. Spine
// ancestors are never owned.
func OwnedIDs(doc *xmltree.Document, p *xpath.Path, prune []*xpath.Path, pred xpath.Predicate) map[xmltree.NodeID]bool {
	owned := make(map[xmltree.NodeID]bool)
	pruned := pruneSet(doc, prune)
	own := func(root *xmltree.Node) {
		root.Walk(func(n *xmltree.Node) bool {
			if pruned[n] {
				return false
			}
			owned[n.ID] = true
			return true
		})
	}
	for _, sel := range p.Select(doc) {
		if pruned[sel] {
			continue
		}
		if pred == nil {
			own(sel)
			continue
		}
		for _, c := range sel.Children {
			if c.Kind == xmltree.ElementNode && pred.EvalNode(c) {
				own(c)
			}
		}
	}
	return owned
}
