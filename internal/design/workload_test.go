package design

import (
	"testing"

	"partix/internal/obs"
	"partix/internal/xquery"
)

func profileWith(coll string, preds, paths []obs.KeyCount) *obs.WorkloadProfile {
	return &obs.WorkloadProfile{
		Version: obs.WorkloadProfileVersion,
		Collections: []obs.CollectionWorkload{
			{Collection: coll, Predicates: preds, Paths: paths},
		},
	}
}

func TestWorkloadFromProfileSynthesis(t *testing.T) {
	p := profileWith("items",
		[]obs.KeyCount{
			{Key: `/Item/Section = "CD"`, Count: 7},
			{Key: `contains(/Item/Description, "good")`, Count: 3},
			{Key: `/Item/Code != "I000007"`, Count: 2},
		},
		[]obs.KeyCount{
			{Key: "/Item/Name", Count: 5},
		},
	)
	qs := WorkloadFromProfile(p, "items")
	want := map[string]int{
		`for $d in collection("items")/Item where $d/Section = "CD" return $d`:                7,
		`for $d in collection("items")/Item where contains($d/Description, "good") return $d`: 3,
		`for $d in collection("items")/Item where $d/Code != "I000007" return $d`:             2,
		`for $d in collection("items")/Item return $d/Name`:                                   5,
	}
	if len(qs) != len(want) {
		t.Fatalf("synthesized %d queries, want %d: %+v", len(qs), len(want), qs)
	}
	for _, q := range qs {
		w, ok := want[q.Text]
		if !ok {
			t.Fatalf("unexpected query %q", q.Text)
		}
		if q.Weight != w {
			t.Fatalf("%q weight = %d, want %d", q.Text, q.Weight, w)
		}
		// Every synthesized query must be executable, not just plausible.
		if _, err := xquery.Parse(q.Text); err != nil {
			t.Fatalf("synthesized query does not parse: %q: %v", q.Text, err)
		}
	}
}

// Keys the synthesizer cannot express as a plain child-step FLWOR are
// dropped, never mis-synthesized.
func TestWorkloadFromProfileSkipsInexpressibleKeys(t *testing.T) {
	p := profileWith("items",
		[]obs.KeyCount{
			{Key: `/Item//Deep = "x"`, Count: 9},        // descendant step
			{Key: `/Item/@id = "1"`, Count: 9},          // attribute step
			{Key: `/Item = "x"`, Count: 9},              // no step below the binding root
			{Key: `exists(/Item/Section)`, Count: 9},    // unsupported predicate form
			{Key: `/Item/Section = unquoted`, Count: 9}, // malformed literal
		},
		[]obs.KeyCount{
			{Key: "/Item", Count: 9},     // root-only path
			{Key: "Item/Name", Count: 9}, // not rooted
			{Key: "/Item/@id", Count: 9}, // attribute step
		},
	)
	if qs := WorkloadFromProfile(p, "items"); len(qs) != 0 {
		t.Fatalf("inexpressible keys synthesized: %+v", qs)
	}
}

func TestWorkloadFromProfileScopesAndClamps(t *testing.T) {
	p := &obs.WorkloadProfile{
		Version: obs.WorkloadProfileVersion,
		Collections: []obs.CollectionWorkload{
			{Collection: "other", Predicates: []obs.KeyCount{{Key: `/X/Y = "1"`, Count: 4}}},
			{Collection: "items", Paths: []obs.KeyCount{{Key: "/Item/Name", Count: 0}}},
		},
	}
	qs := WorkloadFromProfile(p, "items")
	if len(qs) != 1 {
		t.Fatalf("scoping leaked across collections: %+v", qs)
	}
	if qs[0].Weight != 1 {
		t.Fatalf("zero-count sketch entry not clamped to weight 1: %+v", qs[0])
	}
	if WorkloadFromProfile(nil, "items") != nil {
		t.Fatal("nil profile must synthesize nothing")
	}
}
