package design

import (
	"fmt"
	"strings"
	"testing"

	"partix/internal/toxgene"
	"partix/internal/workload"
	"partix/internal/xbench"
	"partix/internal/xmltree"
)

func itemsWorkload() []WorkloadQuery {
	var out []WorkloadQuery
	for _, q := range workload.Horizontal("items") {
		w := 1
		if q.Class == workload.ClassTextSearch {
			w = 3
		}
		out = append(out, WorkloadQuery{Text: q.Text, Weight: w})
	}
	return out
}

func TestProposeHorizontalIsCorrect(t *testing.T) {
	c := toxgene.GenerateItems(toxgene.ItemsConfig{Docs: 120, Seed: 31})
	scheme, err := ProposeHorizontal(c, itemsWorkload(), HorizontalOptions{MaxFragments: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(scheme.Fragments) > 4 || len(scheme.Fragments) < 2 {
		t.Fatalf("fragments = %d", len(scheme.Fragments))
	}
	// The three Section 3.3 rules hold on the sample.
	if err := scheme.Check(c); err != nil {
		t.Fatal(err)
	}
}

func TestProposeHorizontalCompleteForUnseenDocs(t *testing.T) {
	c := toxgene.GenerateItems(toxgene.ItemsConfig{Docs: 60, Seed: 32})
	scheme, err := ProposeHorizontal(c, itemsWorkload(), HorizontalOptions{MaxFragments: 3})
	if err != nil {
		t.Fatal(err)
	}
	// A document unlike anything in the sample (a section the workload
	// never mentions and odd text) must still land in exactly one
	// fragment, thanks to the catch-all min-term.
	odd := xmltree.MustParseString("odd",
		`<Item><Code>ZZ</Code><Name>n</Name><Description>unseen words entirely</Description><Section>Antiques</Section></Item>`)
	owners := 0
	for _, f := range scheme.Fragments {
		if f.Predicate.Eval(odd) {
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("unseen document owned by %d fragments, want 1", owners)
	}
}

func TestProposeHorizontalUsesWorkloadPredicates(t *testing.T) {
	c := toxgene.GenerateItems(toxgene.ItemsConfig{Docs: 100, Seed: 33})
	scheme, err := ProposeHorizontal(c, itemsWorkload(), HorizontalOptions{MaxFragments: 8})
	if err != nil {
		t.Fatal(err)
	}
	// The workload selects on /Item/Section = "CD": some fragment's
	// predicate must mention it.
	found := false
	for _, f := range scheme.Fragments {
		if strings.Contains(f.Predicate.String(), `/Item/Section = "CD"`) {
			found = true
		}
	}
	if !found {
		t.Fatal("workload predicate not used in the design")
	}
}

func TestProposeHorizontalErrors(t *testing.T) {
	empty := xmltree.NewCollection("items")
	if _, err := ProposeHorizontal(empty, itemsWorkload(), HorizontalOptions{}); err == nil {
		t.Fatal("empty collection accepted")
	}
	c := toxgene.GenerateItems(toxgene.ItemsConfig{Docs: 10, Seed: 34})
	noPreds := []WorkloadQuery{{Text: `for $i in collection("items")/Item return $i`}}
	if _, err := ProposeHorizontal(c, noPreds, HorizontalOptions{}); err == nil {
		t.Fatal("workload without predicates accepted")
	}
}

func articlesWorkload() []WorkloadQuery {
	var out []WorkloadQuery
	for _, q := range workload.Vertical("articles") {
		out = append(out, WorkloadQuery{Text: q.Text})
	}
	return out
}

func TestProposeVerticalIsCorrect(t *testing.T) {
	c := xbench.Generate(xbench.Config{Docs: 10, Seed: 35, Sections: 3, Paragraphs: 3})
	advice, err := ProposeVertical(c, articlesWorkload(), VerticalOptions{MaxFragments: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := advice.Scheme.Check(c); err != nil {
		t.Fatal(err)
	}
	if len(advice.Scheme.Fragments) < 2 {
		t.Fatalf("fragments = %d", len(advice.Scheme.Fragments))
	}
	// The anchor fragment owns /article with prunes.
	anchor := advice.Scheme.Fragments[0]
	if anchor.Path.String() != "/article" || len(anchor.Prune) == 0 {
		t.Fatalf("anchor = %s", anchor)
	}
	for _, f := range advice.Scheme.Fragments {
		if _, ok := advice.Groups[f.Name]; !ok {
			t.Fatalf("fragment %s has no colocation group", f.Name)
		}
	}
}

func TestProposeVerticalSeparatesBody(t *testing.T) {
	// A workload that uses prolog and epilog together but body alone
	// should not cluster body with the metadata parts.
	c := xbench.Generate(xbench.Config{Docs: 8, Seed: 36, Sections: 2, Paragraphs: 2})
	queries := []WorkloadQuery{
		{Text: `for $a in collection("articles")/article where $a/epilog/country = "Brazil" return $a/prolog/title`, Weight: 5},
		{Text: `for $a in collection("articles")/article where contains($a/body, "x") return $a/body/section/title`, Weight: 5},
	}
	advice, err := ProposeVertical(c, queries, VerticalOptions{MaxFragments: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Two clusters: {prolog, epilog} and {body}. Body must be alone in
	// its group.
	bodyGroup := -1
	for name, g := range advice.Groups {
		if strings.Contains(name, "body") {
			bodyGroup = g
		}
	}
	if bodyGroup == -1 {
		t.Fatalf("no body fragment in %v", advice.Groups)
	}
	for name, g := range advice.Groups {
		if g == bodyGroup && !strings.Contains(name, "body") && name != "F1anchor" {
			t.Fatalf("%s clustered with body: %v", name, advice.Groups)
		}
	}
	// prolog+epilog cluster is hotter (weight 5 uses both), so it should
	// be the anchor; body separate.
	if err := advice.Scheme.Check(c); err != nil {
		t.Fatal(err)
	}
}

func TestProposeVerticalExcludesRepeatableChildren(t *testing.T) {
	c := xmltree.NewCollection("c",
		xmltree.MustParseString("d1", `<root><rep>1</rep><rep>2</rep><single>x</single><other>y</other></root>`),
	)
	queries := []WorkloadQuery{
		{Text: `for $r in collection("c")/root return $r/single`},
		{Text: `for $r in collection("c")/root return $r/other`},
	}
	advice, err := ProposeVertical(c, queries, VerticalOptions{MaxFragments: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range advice.Scheme.Fragments {
		if strings.Contains(f.Path.String(), "rep") {
			t.Fatalf("repeatable child became a fragment path: %s", f)
		}
	}
	if err := advice.Scheme.Check(c); err != nil {
		t.Fatal(err)
	}
}

func TestProposeVerticalErrors(t *testing.T) {
	if _, err := ProposeVertical(xmltree.NewCollection("c"), nil, VerticalOptions{}); err == nil {
		t.Fatal("empty collection accepted")
	}
	hetero := xmltree.NewCollection("c",
		xmltree.MustParseString("a", "<a><x>1</x></a>"),
		xmltree.MustParseString("b", "<b><x>1</x></b>"),
	)
	if _, err := ProposeVertical(hetero, nil, VerticalOptions{}); err == nil {
		t.Fatal("heterogeneous collection accepted")
	}
	allRep := xmltree.NewCollection("c",
		xmltree.MustParseString("a", "<a><x>1</x><x>2</x></a>"),
	)
	if _, err := ProposeVertical(allRep, nil, VerticalOptions{}); err == nil {
		t.Fatal("all-repeatable collection accepted")
	}
}

func TestAllocateBalancesBytes(t *testing.T) {
	c := toxgene.GenerateItems(toxgene.ItemsConfig{Docs: 200, Seed: 37})
	scheme, err := workload.HorizontalScheme("items", 8)
	if err != nil {
		t.Fatal(err)
	}
	nodes := []string{"n0", "n1", "n2"}
	placement, err := Allocate(scheme, c, nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(placement) != 8 {
		t.Fatalf("placement = %v", placement)
	}
	perNode := map[string]int{}
	for _, n := range placement {
		perNode[n]++
	}
	if len(perNode) != 3 {
		t.Fatalf("not all nodes used: %v", perNode)
	}
}

func TestAllocateRespectsGroups(t *testing.T) {
	c := xbench.Generate(xbench.Config{Docs: 6, Seed: 38, Sections: 2, Paragraphs: 2})
	advice, err := ProposeVertical(c, articlesWorkload(), VerticalOptions{MaxFragments: 2})
	if err != nil {
		t.Fatal(err)
	}
	placement, err := Allocate(advice.Scheme, c, []string{"n0", "n1", "n2"}, advice.Groups)
	if err != nil {
		t.Fatal(err)
	}
	nodeOf := map[int]string{}
	for frag, node := range placement {
		g := advice.Groups[frag]
		if prev, ok := nodeOf[g]; ok && prev != node {
			t.Fatalf("group %d split across %s and %s", g, prev, node)
		}
		nodeOf[g] = node
	}
}

func TestAllocateErrors(t *testing.T) {
	c := toxgene.GenerateItems(toxgene.ItemsConfig{Docs: 10, Seed: 39})
	scheme, _ := workload.HorizontalScheme("items", 2)
	if _, err := Allocate(scheme, c, nil, nil); err == nil {
		t.Fatal("no nodes accepted")
	}
}

func TestEndToEndAdvisorDeployment(t *testing.T) {
	// The advisor's output must be directly publishable and the workload
	// must keep returning the same answers as a centralized deployment.
	c := toxgene.GenerateItems(toxgene.ItemsConfig{Docs: 80, Seed: 40})
	scheme, err := ProposeHorizontal(c, itemsWorkload(), HorizontalOptions{MaxFragments: 3})
	if err != nil {
		t.Fatal(err)
	}
	nodes := []string{"node0", "node1", "node2"}
	placement, err := Allocate(scheme, c, nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range scheme.Fragments {
		if placement[f.Name] == "" {
			t.Fatalf("fragment %s unplaced", f.Name)
		}
	}
	// Sanity: fragment sizes sum to collection size.
	frags, err := scheme.Apply(c)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, fc := range frags {
		total += fc.Len()
	}
	if total != c.Len() {
		t.Fatalf("fragment docs = %d, want %d", total, c.Len())
	}
	fmt.Println() // keep fmt imported for debugging convenience
}
