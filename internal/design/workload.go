package design

import (
	"fmt"
	"strconv"
	"strings"

	"partix/internal/obs"
)

// WorkloadFromProfile converts a mined workload profile (the coordinator
// profiler's export, internal/obs) into design workload queries for one
// collection, closing the observe → redesign loop: the profile's top-K
// predicate keys become FLWOR queries filtering on them (the signal
// ProposeHorizontal's min-term method wants) and its top-K path keys
// become projection queries (the affinity signal ProposeVertical wants),
// each weighted by the sketch count.
//
// Keys the synthesizer cannot express as a plain child-step FLWOR —
// attribute steps, descendant steps, paths no deeper than the binding
// root — are skipped: the profile is a lossy sketch already, and a
// mis-synthesized query would distort the design more than a dropped
// one.
func WorkloadFromProfile(p *obs.WorkloadProfile, collection string) []WorkloadQuery {
	if p == nil {
		return nil
	}
	var out []WorkloadQuery
	for _, cw := range p.Collections {
		if cw.Collection != collection {
			continue
		}
		for _, kc := range cw.Predicates {
			if q, ok := predicateQuery(collection, kc.Key); ok {
				out = append(out, WorkloadQuery{Text: q, Weight: sketchWeight(kc.Count)})
			}
		}
		for _, kc := range cw.Paths {
			if q, ok := pathQuery(collection, kc.Key); ok {
				out = append(out, WorkloadQuery{Text: q, Weight: sketchWeight(kc.Count)})
			}
		}
	}
	return out
}

func sketchWeight(count int64) int {
	if count < 1 {
		return 1
	}
	return int(count)
}

// splitCanonicalPath splits a canonical profile path ("/Item/Section")
// into the binding root label and the remainder relative to it ("Item",
// "/Section"). Attribute and descendant steps are rejected — the
// synthesizer only emits plain child-step FLWORs.
func splitCanonicalPath(path string) (root, rest string, ok bool) {
	if !strings.HasPrefix(path, "/") || strings.Contains(path, "//") || strings.Contains(path, "@") {
		return "", "", false
	}
	rem := path[1:]
	i := strings.IndexByte(rem, '/')
	if i < 0 {
		return rem, "", rem != ""
	}
	return rem[:i], rem[i:], true
}

// pathQuery synthesizes the projection query for a canonical path key.
func pathQuery(collection, key string) (string, bool) {
	root, rest, ok := splitCanonicalPath(key)
	if !ok || rest == "" {
		return "", false
	}
	return fmt.Sprintf("for $d in collection(%q)/%s return $d%s", collection, root, rest), true
}

// predicateQuery synthesizes the filtering query for a canonical
// predicate key: either a comparison (`/Item/Section = "CD"`) or a
// containment (`contains(/Item/Description, "good")`).
func predicateQuery(collection, key string) (string, bool) {
	if inner, ok := strings.CutPrefix(key, "contains("); ok {
		inner, ok = strings.CutSuffix(inner, ")")
		if !ok {
			return "", false
		}
		i := strings.Index(inner, ", \"")
		if i < 0 {
			return "", false
		}
		root, rest, ok := splitCanonicalPath(inner[:i])
		if !ok || rest == "" {
			return "", false
		}
		lit := inner[i+2:]
		if _, err := strconv.Unquote(lit); err != nil {
			return "", false
		}
		return fmt.Sprintf("for $d in collection(%q)/%s where contains($d%s, %s) return $d",
			collection, root, rest, lit), true
	}
	for _, op := range []string{"!=", "<=", ">=", "=", "<", ">"} {
		marker := " " + op + " \""
		i := strings.Index(key, marker)
		if i < 0 {
			continue
		}
		root, rest, ok := splitCanonicalPath(key[:i])
		if !ok || rest == "" {
			return "", false
		}
		lit := key[i+len(marker)-1:]
		if _, err := strconv.Unquote(lit); err != nil {
			return "", false
		}
		return fmt.Sprintf("for $d in collection(%q)/%s where $d%s %s %s return $d",
			collection, root, rest, op, lit), true
	}
	return "", false
}
