package design

import (
	"testing"

	"partix/internal/fragmentation"
	"partix/internal/partix"
	"partix/internal/toxgene"
	"partix/internal/workload"
	"partix/internal/xbench"
)

func TestEvaluateSchemePrefersMatchingDesign(t *testing.T) {
	queries := []WorkloadQuery{
		{Text: `for $i in collection("items")/Item where $i/Section = "CD" return $i/Name`, Weight: 10},
		{Text: `for $i in collection("items")/Item where $i/Section = "DVD" return $i/Name`, Weight: 10},
	}

	// A design aligned with the workload: by Section.
	aligned := &fragmentation.Scheme{Collection: "items", Fragments: []*fragmentation.Fragment{
		fragmentation.MustHorizontal("Fcd", `/Item/Section = "CD"`),
		fragmentation.MustHorizontal("Fdvd", `/Item/Section = "DVD"`),
		fragmentation.MustHorizontal("Frest", `/Item/Section != "CD" and /Item/Section != "DVD"`),
	}}
	// A design orthogonal to the workload: by description text.
	misaligned := &fragmentation.Scheme{Collection: "items", Fragments: []*fragmentation.Fragment{
		fragmentation.MustHorizontal("Fgood", `contains(//Description, "good")`),
		fragmentation.MustHorizontal("Frest", `not(contains(//Description, "good"))`),
	}}

	a, err := EvaluateScheme(aligned, queries, fragmentation.FragModeSD)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateScheme(misaligned, queries, fragmentation.FragModeSD)
	if err != nil {
		t.Fatal(err)
	}
	if a.WeightedFragments != 1.0 {
		t.Fatalf("aligned design should route every query to one fragment, got %.2f", a.WeightedFragments)
	}
	if b.WeightedFragments <= a.WeightedFragments {
		t.Fatalf("misaligned design should cost more: %.2f vs %.2f", b.WeightedFragments, a.WeightedFragments)
	}
	for _, qc := range a.PerQuery {
		if qc.Strategy != partix.StrategyRouted {
			t.Fatalf("aligned query planned as %s", qc.Strategy)
		}
	}
}

func TestEvaluateSchemeCountsReconstructions(t *testing.T) {
	scheme := xbench.VerticalScheme("articles")
	queries := []WorkloadQuery{
		{Text: workload.ByID(workload.Vertical("articles"), "VQ1").Text, Weight: 1}, // routed
		{Text: workload.ByID(workload.Vertical("articles"), "VQ8").Text, Weight: 3}, // reconstruct
	}
	ev, err := EvaluateScheme(scheme, queries, fragmentation.FragModeSD)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Reconstructions != 0.75 {
		t.Fatalf("reconstruction share = %.2f, want 0.75", ev.Reconstructions)
	}
}

func TestEvaluateSchemeErrors(t *testing.T) {
	bad := &fragmentation.Scheme{Collection: "c"}
	if _, err := EvaluateScheme(bad, nil, fragmentation.FragModeSD); err == nil {
		t.Fatal("empty scheme accepted")
	}
	ok := &fragmentation.Scheme{Collection: "c", Fragments: []*fragmentation.Fragment{
		fragmentation.MustHorizontal("F", "true()"),
	}}
	if _, err := EvaluateScheme(ok, []WorkloadQuery{{Text: "~~~"}}, fragmentation.FragModeSD); err == nil {
		t.Fatal("unparseable workload query accepted")
	}
}

func TestAdvisorBeatsNaiveDesignOnItsWorkload(t *testing.T) {
	// End-to-end: the advisor's proposal must score at least as well as a
	// random-ish two-way split on the workload it optimized for.
	c := toxgene.GenerateItems(toxgene.ItemsConfig{Docs: 120, Seed: 77})
	queries := itemsWorkload()
	proposed, err := ProposeHorizontal(c, queries, HorizontalOptions{MaxFragments: 4})
	if err != nil {
		t.Fatal(err)
	}
	naive := &fragmentation.Scheme{Collection: "items", Fragments: []*fragmentation.Fragment{
		fragmentation.MustHorizontal("Fodd", `contains(/Item/Code, "1")`),
		fragmentation.MustHorizontal("Feven", `not(contains(/Item/Code, "1"))`),
	}}
	evA, err := EvaluateScheme(proposed, queries, fragmentation.FragModeSD)
	if err != nil {
		t.Fatal(err)
	}
	evB, err := EvaluateScheme(naive, queries, fragmentation.FragModeSD)
	if err != nil {
		t.Fatal(err)
	}
	// Normalize: fragments contacted relative to design size.
	normA := evA.WeightedFragments / float64(len(proposed.Fragments))
	normB := evB.WeightedFragments / float64(len(naive.Fragments))
	if normA > normB {
		t.Fatalf("advisor design relative cost %.2f worse than naive %.2f", normA, normB)
	}
}
