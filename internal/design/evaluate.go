package design

import (
	"fmt"

	"partix/internal/cluster"
	"partix/internal/fragmentation"
	"partix/internal/partix"
)

// QueryCost is the planner's verdict for one workload query under a
// candidate scheme.
type QueryCost struct {
	Text      string
	Weight    int
	Strategy  partix.Strategy
	Fragments int // fragments contacted (sub-queries or fetches)
}

// Evaluation scores a candidate fragmentation design against a workload
// without touching any data: each query is planned by the distributed
// query service and the fragments it would contact are counted.
type Evaluation struct {
	PerQuery []QueryCost
	// WeightedFragments is the weighted mean number of fragments
	// contacted per query — the advisor's objective (lower is better; 1.0
	// means every query routes to a single fragment).
	WeightedFragments float64
	// Reconstructions is the weighted share of queries that need the
	// expensive ⨝ reconstruction.
	Reconstructions float64
}

// EvaluateScheme plans every workload query against the scheme and
// aggregates the costs. No nodes are contacted; planning only needs the
// catalog metadata.
func EvaluateScheme(scheme *fragmentation.Scheme, queries []WorkloadQuery, mode fragmentation.MaterializeMode) (*Evaluation, error) {
	if err := scheme.Validate(); err != nil {
		return nil, err
	}
	sys := partix.NewSystem(cluster.NoNetwork)
	placement := map[string]string{}
	for _, f := range scheme.Fragments {
		placement[f.Name] = "virtual-node"
	}
	err := sys.Catalog().Register(&partix.CollectionMeta{
		Name:      scheme.Collection,
		Scheme:    scheme,
		Placement: placement,
		Mode:      mode,
	})
	if err != nil {
		return nil, err
	}

	ev := &Evaluation{}
	totalWeight := 0
	for _, wq := range queries {
		plan, err := sys.Explain(wq.Text)
		if err != nil {
			return nil, fmt.Errorf("design: planning %q: %w", wq.Text, err)
		}
		frags := len(plan.Steps)
		if frags == 0 {
			frags = 1 // empty-route still answers somewhere conceptually
		}
		w := wq.weight()
		ev.PerQuery = append(ev.PerQuery, QueryCost{
			Text: wq.Text, Weight: w, Strategy: plan.Strategy, Fragments: frags,
		})
		ev.WeightedFragments += float64(w * frags)
		if plan.Strategy == partix.StrategyReconstruct {
			ev.Reconstructions += float64(w)
		}
		totalWeight += w
	}
	if totalWeight > 0 {
		ev.WeightedFragments /= float64(totalWeight)
		ev.Reconstructions /= float64(totalWeight)
	}
	return ev, nil
}
