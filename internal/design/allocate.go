package design

import (
	"fmt"
	"sort"

	"partix/internal/fragmentation"
	"partix/internal/xmltree"
)

// Allocate places the scheme's fragments on nodes, balancing stored bytes
// with a greedy longest-processing-time heuristic. groups optionally pins
// fragments to colocation groups (as ProposeVertical suggests): fragments
// sharing a group land on the same node.
func Allocate(scheme *fragmentation.Scheme, c *xmltree.Collection, nodes []string, groups map[string]int) (map[string]string, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("design: no nodes to allocate on")
	}
	frags, err := scheme.Apply(c)
	if err != nil {
		return nil, err
	}

	// Unit of allocation: a colocation group (singletons by default).
	type unit struct {
		fragments []string
		bytes     int64
	}
	byGroup := map[int]*unit{}
	var units []*unit
	nextSyntheticGroup := -1
	for i, f := range scheme.Fragments {
		var size int64
		for _, d := range frags[i].Docs {
			size += int64(xmltree.SerializedSize(d))
		}
		gid, pinned := 0, false
		if groups != nil {
			gid, pinned = groups[f.Name]
		}
		if !pinned {
			gid = nextSyntheticGroup
			nextSyntheticGroup--
		}
		u := byGroup[gid]
		if u == nil {
			u = &unit{}
			byGroup[gid] = u
			units = append(units, u)
		}
		u.fragments = append(u.fragments, f.Name)
		u.bytes += size
	}

	sort.Slice(units, func(i, j int) bool {
		if units[i].bytes != units[j].bytes {
			return units[i].bytes > units[j].bytes
		}
		return units[i].fragments[0] < units[j].fragments[0]
	})

	load := make(map[string]int64, len(nodes))
	placement := map[string]string{}
	for _, u := range units {
		best := nodes[0]
		for _, n := range nodes[1:] {
			if load[n] < load[best] {
				best = n
			}
		}
		for _, fname := range u.fragments {
			placement[fname] = best
		}
		load[best] += u.bytes
	}
	return placement, nil
}
