package design

import (
	"strings"

	"partix/internal/xpath"
	"partix/internal/xquery"
)

// extractSimplePredicates finds document-level simple predicates a query
// imposes on the collection: equality comparisons with string literals
// and contains() text searches, taken from conjunctive where positions
// and binding step predicates. Paths are absolutized against the binding
// (e.g. $i bound to collection("items")/Item plus $i/Section yields
// /Item/Section).
func extractSimplePredicates(e xquery.Expr, collection string) []xpath.Predicate {
	var out []xpath.Predicate
	xquery.Walk(e, func(x xquery.Expr) {
		f, ok := x.(*xquery.FLWOR)
		if !ok {
			return
		}
		vars := map[string][]string{}
		for _, cl := range f.Clauses {
			if cl.Let {
				continue
			}
			labels, steps, ok := bindingLabels(cl.In, collection, vars)
			if !ok {
				continue
			}
			vars[cl.Var] = labels
			for _, st := range steps {
				for _, p := range st.Preds {
					conjunctTerms(p, func(term xquery.Expr) {
						if sp := simpleFromTerm(term, labels, vars); sp != nil {
							out = append(out, sp)
						}
					})
				}
			}
		}
		if f.Where == nil {
			return
		}
		conjunctTerms(f.Where, func(term xquery.Expr) {
			if sp := simpleFromTerm(term, nil, vars); sp != nil {
				out = append(out, sp)
			}
		})
	})
	return out
}

// bindingLabels resolves a for-binding to absolute labels when rooted at
// the collection (directly or through an already-resolved variable).
func bindingLabels(e xquery.Expr, collection string, vars map[string][]string) (labels []string, steps []xquery.PathStep, ok bool) {
	pe, isPath := e.(*xquery.PathExpr)
	if !isPath {
		return nil, nil, false
	}
	var base []string
	switch src := pe.Source.(type) {
	case *xquery.CollectionCall:
		if src.Name != collection {
			return nil, nil, false
		}
	case *xquery.VarRef:
		b, known := vars[src.Name]
		if !known {
			return nil, nil, false
		}
		base = b
	default:
		return nil, nil, false
	}
	labels = append(labels, base...)
	for _, st := range pe.Steps {
		if st.Descendant || st.Attr || st.Text || st.Name == "*" {
			return nil, nil, false
		}
		labels = append(labels, st.Name)
	}
	return labels, pe.Steps, true
}

func conjunctTerms(e xquery.Expr, fn func(xquery.Expr)) {
	if b, ok := e.(*xquery.Binary); ok && b.Op == xquery.OpAnd {
		conjunctTerms(b.Left, fn)
		conjunctTerms(b.Right, fn)
		return
	}
	fn(e)
}

// simpleFromTerm converts one conjunct into an xpath simple predicate
// with an absolute path. ctxLabels is the context path for relative paths
// inside step predicates; nil at where-clause level.
func simpleFromTerm(term xquery.Expr, ctxLabels []string, vars map[string][]string) xpath.Predicate {
	switch x := term.(type) {
	case *xquery.Binary:
		if x.Op != xquery.OpEq {
			return nil
		}
		pe, lit := pathLiteral(x.Left, x.Right)
		if pe == nil {
			return nil
		}
		p := absolutePath(pe, ctxLabels, vars)
		if p == nil {
			return nil
		}
		return &xpath.Comparison{Path: p, Op: xpath.OpEq, Value: lit}
	case *xquery.FuncCall:
		if x.Name != "contains" || len(x.Args) != 2 {
			return nil
		}
		lit, ok := x.Args[1].(*xquery.StringLit)
		if !ok {
			return nil
		}
		pe, isPath := x.Args[0].(*xquery.PathExpr)
		if !isPath {
			return nil
		}
		p := absolutePath(pe, ctxLabels, vars)
		if p == nil {
			return nil
		}
		return &xpath.Contains{Path: p, Needle: lit.Value}
	default:
		return nil
	}
}

func pathLiteral(a, b xquery.Expr) (*xquery.PathExpr, string) {
	if lit, ok := b.(*xquery.StringLit); ok {
		if pe, ok := a.(*xquery.PathExpr); ok {
			return pe, lit.Value
		}
	}
	if lit, ok := a.(*xquery.StringLit); ok {
		if pe, ok := b.(*xquery.PathExpr); ok {
			return pe, lit.Value
		}
	}
	return nil, ""
}

// absolutePath builds /label/label/… from a path expression rooted at a
// resolved variable or at the predicate context.
func absolutePath(pe *xquery.PathExpr, ctxLabels []string, vars map[string][]string) *xpath.Path {
	var base []string
	switch src := pe.Source.(type) {
	case nil:
		if ctxLabels == nil {
			return nil
		}
		base = ctxLabels
	case *xquery.VarRef:
		b, known := vars[src.Name]
		if !known {
			return nil
		}
		base = b
	default:
		return nil
	}
	labels := append([]string{}, base...)
	for _, st := range pe.Steps {
		if st.Descendant || st.Attr || st.Text || st.Name == "*" || len(st.Preds) > 0 {
			return nil
		}
		labels = append(labels, st.Name)
	}
	if len(labels) == 0 {
		return nil
	}
	p, err := xpath.ParsePath("/" + strings.Join(labels, "/"))
	if err != nil {
		return nil
	}
	return p
}
