package design

import (
	"fmt"
	"sort"

	"partix/internal/fragmentation"
	"partix/internal/xmltree"
	"partix/internal/xquery"
)

// VerticalOptions tune ProposeVertical.
type VerticalOptions struct {
	// MaxFragments bounds the number of clusters (default 3).
	MaxFragments int
}

func (o VerticalOptions) withDefaults() VerticalOptions {
	if o.MaxFragments <= 0 {
		o.MaxFragments = 3
	}
	return o
}

// VerticalAdvice is a proposed vertical design plus the colocation groups
// Allocate should respect: fragments in the same group were clustered
// together by query affinity and belong on the same node.
type VerticalAdvice struct {
	Scheme *fragmentation.Scheme
	// Groups maps fragment name → cluster index.
	Groups map[string]int
}

// ProposeVertical derives a vertical fragmentation of c: the top-level
// children of the document root are clustered by how often the workload's
// queries use them together (attribute-affinity clustering, adapted from
// relational vertical partitioning), yielding one fragment per child plus
// an anchor fragment that owns the root and every unclaimed or repeatable
// child.
func ProposeVertical(c *xmltree.Collection, queries []WorkloadQuery, opts VerticalOptions) (*VerticalAdvice, error) {
	opts = opts.withDefaults()
	if c.Len() == 0 {
		return nil, fmt.Errorf("design: empty collection %q", c.Name)
	}
	root := c.Docs[0].Root.Name

	// Candidate children: top-level element labels. A label that repeats
	// under any root cannot be a fragment path (Definition 3); it stays
	// with the anchor.
	repeatable := map[string]bool{}
	var children []string
	seen := map[string]bool{}
	for _, d := range c.Docs {
		if d.Root.Name != root {
			return nil, fmt.Errorf("design: collection %q is not homogeneous (%q vs %q)", c.Name, root, d.Root.Name)
		}
		counts := map[string]int{}
		for _, ch := range d.Root.ElementChildren() {
			counts[ch.Name]++
		}
		for name, n := range counts {
			if !seen[name] {
				seen[name] = true
				children = append(children, name)
			}
			if n > 1 {
				repeatable[name] = true
			}
		}
	}
	sort.Strings(children)

	var splittable []string
	for _, ch := range children {
		if !repeatable[ch] {
			splittable = append(splittable, ch)
		}
	}
	if len(splittable) == 0 {
		return nil, fmt.Errorf("design: no single-occurrence top-level children to split in %q", c.Name)
	}

	// Affinity: how often two children are used by the same query.
	usage := map[string]int{}
	affinity := map[[2]string]int{}
	for _, wq := range queries {
		used := usedChildren(wq.Text, c.Name, root, splittable)
		for _, a := range used {
			usage[a] += wq.weight()
			for _, b := range used {
				if a < b {
					affinity[[2]string{a, b}] += wq.weight()
				}
			}
		}
	}

	// Agglomerative clustering down to MaxFragments clusters.
	clusters := make([][]string, 0, len(splittable))
	for _, ch := range splittable {
		clusters = append(clusters, []string{ch})
	}
	for len(clusters) > opts.MaxFragments {
		bi, bj, best := 0, 1, -1
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				a := clusterAffinity(clusters[i], clusters[j], affinity)
				if a > best {
					bi, bj, best = i, j, a
				}
			}
		}
		merged := append(append([]string{}, clusters[bi]...), clusters[bj]...)
		sort.Strings(merged)
		next := [][]string{merged}
		for k, cl := range clusters {
			if k != bi && k != bj {
				next = append(next, cl)
			}
		}
		clusters = next
	}
	// Deterministic order: heaviest-used cluster first; it becomes the
	// anchor (keeping the hottest subtrees with the root avoids a join
	// for queries touching the root and those subtrees).
	sort.Slice(clusters, func(i, j int) bool {
		ui, uj := clusterUsage(clusters[i], usage), clusterUsage(clusters[j], usage)
		if ui != uj {
			return ui > uj
		}
		return clusters[i][0] < clusters[j][0]
	})

	advice := &VerticalAdvice{Groups: map[string]int{}}
	scheme := &fragmentation.Scheme{Collection: c.Name}
	anchor := clusters[0]
	anchorSet := map[string]bool{}
	for _, ch := range anchor {
		anchorSet[ch] = true
	}
	var prune []string
	for _, ch := range splittable {
		if !anchorSet[ch] {
			prune = append(prune, "/"+root+"/"+ch)
		}
	}
	f, err := fragmentation.NewVertical("F1anchor", "/"+root, prune...)
	if err != nil {
		return nil, err
	}
	scheme.Fragments = append(scheme.Fragments, f)
	advice.Groups["F1anchor"] = 0

	idx := 2
	for ci, cluster := range clusters[1:] {
		for _, ch := range cluster {
			name := fmt.Sprintf("F%d%s", idx, ch)
			f, err := fragmentation.NewVertical(name, "/"+root+"/"+ch)
			if err != nil {
				return nil, err
			}
			scheme.Fragments = append(scheme.Fragments, f)
			advice.Groups[name] = ci + 1
			idx++
		}
	}
	if err := scheme.Validate(); err != nil {
		return nil, err
	}
	advice.Scheme = scheme
	return advice, nil
}

func clusterAffinity(a, b []string, affinity map[[2]string]int) int {
	total := 0
	for _, x := range a {
		for _, y := range b {
			k := [2]string{x, y}
			if y < x {
				k = [2]string{y, x}
			}
			total += affinity[k]
		}
	}
	return total
}

func clusterUsage(cluster []string, usage map[string]int) int {
	total := 0
	for _, ch := range cluster {
		total += usage[ch]
	}
	return total
}

// usedChildren reports which top-level children a query touches. Queries
// with descendant steps or unresolvable paths conservatively use all.
func usedChildren(query, collection, root string, children []string) []string {
	e, err := xquery.Parse(query)
	if err != nil {
		return nil
	}
	used := map[string]bool{}
	all := false
	vars := map[string][]string{}
	var visit func(xquery.Expr)
	record := func(labels []string, steps []xquery.PathStep) []string {
		out := append([]string{}, labels...)
		for _, st := range steps {
			if st.Descendant || st.Name == "*" {
				all = true
				return out
			}
			if st.Attr || st.Text {
				break
			}
			out = append(out, st.Name)
		}
		if len(out) >= 2 && out[0] == root {
			used[out[1]] = true
		}
		return out
	}
	visit = func(x xquery.Expr) {
		switch n := x.(type) {
		case *xquery.FLWOR:
			for _, cl := range n.Clauses {
				if pe, ok := cl.In.(*xquery.PathExpr); ok {
					switch src := pe.Source.(type) {
					case *xquery.CollectionCall:
						if src.Name == collection {
							vars[cl.Var] = record(nil, pe.Steps)
							continue
						}
					case *xquery.VarRef:
						if base, known := vars[src.Name]; known {
							vars[cl.Var] = record(base, pe.Steps)
							continue
						}
					}
				}
				visit(cl.In)
			}
			visit(n.Where)
			visit(n.Return)
		case *xquery.PathExpr:
			if v, ok := n.Source.(*xquery.VarRef); ok {
				if base, known := vars[v.Name]; known {
					record(base, n.Steps)
				}
			} else {
				visit(n.Source)
			}
			for _, st := range n.Steps {
				for _, p := range st.Preds {
					visit(p)
				}
			}
		case *xquery.Binary:
			visit(n.Left)
			visit(n.Right)
		case *xquery.FuncCall:
			for _, a := range n.Args {
				visit(a)
			}
		case *xquery.Sequence:
			for _, it := range n.Items {
				visit(it)
			}
		case *xquery.ElementCtor:
			for _, a := range n.Attrs {
				visit(a.Value)
			}
			for _, c := range n.Children {
				visit(c)
			}
		case *xquery.VarRef:
			if labels, known := vars[n.Name]; known && len(labels) >= 2 && labels[0] == root {
				used[labels[1]] = true
			} else if known := vars[n.Name]; len(known) == 1 {
				all = true // whole document consumed
			}
		}
	}
	visit(e)
	if all {
		return children
	}
	out := make([]string, 0, len(used))
	for _, ch := range children {
		if used[ch] {
			out = append(out, ch)
		}
	}
	return out
}
