// Package design implements the fragmentation-design methodology the
// paper leaves as future work ("we intend to use the proposed
// fragmentation model to define a methodology for fragmenting XML
// databases … and to implement tools to automate this fragmentation
// process"). It proposes correct-by-construction schemes from a workload:
//
//   - ProposeHorizontal adapts the classical min-term predicate method of
//     relational distribution design (Özsu & Valduriez, the paper's [15]):
//     the simple predicates of the workload partition the documents into
//     min-term groups, which are merged to the requested fragment count;
//     a catch-all min-term keeps the design complete for unseen documents.
//   - ProposeVertical adapts attribute-affinity clustering: the top-level
//     subtrees of the document root are clustered by how often queries use
//     them together, one fragment per subtree plus an anchor fragment that
//     keeps the root and everything unclaimed.
//   - Allocate places fragments on nodes, balancing bytes.
//
// Every proposed scheme passes the Section 3.3 correctness rules by
// construction; callers can (and the tests do) verify with Scheme.Check.
package design

import (
	"fmt"
	"sort"

	"partix/internal/fragmentation"
	"partix/internal/xmltree"
	"partix/internal/xpath"
	"partix/internal/xquery"
)

// WorkloadQuery is one query of the design workload with its relative
// frequency.
type WorkloadQuery struct {
	Text   string
	Weight int
}

// weight returns the query's weight, defaulting to 1.
func (q WorkloadQuery) weight() int {
	if q.Weight <= 0 {
		return 1
	}
	return q.Weight
}

// --- horizontal design ---

// HorizontalOptions tune ProposeHorizontal.
type HorizontalOptions struct {
	// MaxFragments bounds the design size (default 4).
	MaxFragments int
	// MaxPredicates bounds how many distinct simple predicates are used,
	// most frequent first (default 6) — min-terms grow with predicate
	// count.
	MaxPredicates int
}

func (o HorizontalOptions) withDefaults() HorizontalOptions {
	if o.MaxFragments <= 0 {
		o.MaxFragments = 4
	}
	if o.MaxPredicates <= 0 {
		o.MaxPredicates = 6
	}
	return o
}

// group is one min-term: the documents sharing a predicate-satisfaction
// vector.
type group struct {
	vector string
	preds  []xpath.Predicate // the min-term conjunction
	docs   int
}

// ProposeHorizontal derives a horizontal fragmentation of c from the
// workload's simple predicates.
func ProposeHorizontal(c *xmltree.Collection, queries []WorkloadQuery, opts HorizontalOptions) (*fragmentation.Scheme, error) {
	opts = opts.withDefaults()
	if c.Len() == 0 {
		return nil, fmt.Errorf("design: empty collection %q", c.Name)
	}
	preds := relevantPredicates(c.Name, queries, opts.MaxPredicates)
	if len(preds) == 0 {
		return nil, fmt.Errorf("design: workload has no usable simple predicates over %q", c.Name)
	}

	// Partition documents by their predicate-satisfaction vector: each
	// distinct vector is a (non-empty) min-term fragment.
	groups := map[string]*group{}
	for _, d := range c.Docs {
		key := make([]byte, len(preds))
		for i, p := range preds {
			if p.Eval(d) {
				key[i] = '1'
			} else {
				key[i] = '0'
			}
		}
		g := groups[string(key)]
		if g == nil {
			g = &group{vector: string(key), preds: minterm(preds, string(key))}
			groups[string(key)] = g
		}
		g.docs++
	}

	ordered := make([]*group, 0, len(groups))
	for _, g := range groups {
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].vector < ordered[j].vector })

	// Merge groups until the design fits MaxFragments. Predicates are
	// ordered by workload weight, so vectors agreeing on a long prefix
	// agree on the hottest predicates: preferring such pairs keeps heavy
	// predicates "pure" (the queries using them stay routable to a single
	// fragment). Ties break toward the smallest combined size.
	buckets := make([][]*group, len(ordered))
	for i, g := range ordered {
		buckets[i] = []*group{g}
	}
	for len(buckets) > opts.MaxFragments {
		bi, bj := 0, 1
		bestPrefix, bestDocs := -1, 0
		for i := 0; i < len(buckets); i++ {
			for j := i + 1; j < len(buckets); j++ {
				p := bucketPrefix(buckets[i], buckets[j])
				docs := bucketDocs(buckets[i]) + bucketDocs(buckets[j])
				if p > bestPrefix || (p == bestPrefix && docs < bestDocs) {
					bi, bj, bestPrefix, bestDocs = i, j, p, docs
				}
			}
		}
		merged := append(append([]*group{}, buckets[bi]...), buckets[bj]...)
		next := [][]*group{merged}
		for k, b := range buckets {
			if k != bi && k != bj {
				next = append(next, b)
			}
		}
		buckets = next
	}
	sort.Slice(buckets, func(i, j int) bool { return bucketDocs(buckets[i]) > bucketDocs(buckets[j]) })

	// The observed min-terms may not cover future documents: add the
	// catch-all complement (¬m1 ∧ … is equivalent to ¬(m1 ∨ …)) to the
	// smallest fragment, keeping the design complete by construction.
	var seen []xpath.Predicate
	for _, g := range ordered {
		seen = append(seen, andOf(g.preds))
	}
	catchAll := &xpath.Not{Inner: orOf(seen)}

	scheme := &fragmentation.Scheme{Collection: c.Name}
	for i, bucket := range buckets {
		var terms []xpath.Predicate
		for _, g := range bucket {
			terms = append(terms, andOf(g.preds))
		}
		if i == len(buckets)-1 {
			terms = append(terms, catchAll)
		}
		scheme.Fragments = append(scheme.Fragments, &fragmentation.Fragment{
			Name:      fmt.Sprintf("F%d", i+1),
			Kind:      fragmentation.Horizontal,
			Predicate: orOf(terms),
		})
	}
	if err := scheme.Validate(); err != nil {
		return nil, err
	}
	return scheme, nil
}

func bucketDocs(b []*group) int {
	total := 0
	for _, g := range b {
		total += g.docs
	}
	return total
}

// bucketPrefix is the shortest common vector prefix across the two
// buckets' min-terms.
func bucketPrefix(a, b []*group) int {
	best := -1
	for _, ga := range a {
		for _, gb := range b {
			p := commonPrefix(ga.vector, gb.vector)
			if best == -1 || p < best {
				best = p
			}
		}
	}
	return best
}

func commonPrefix(a, b string) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// minterm builds the conjunction for a satisfaction vector: p_i when
// vector[i] is '1', not(p_i) otherwise.
func minterm(preds []xpath.Predicate, vector string) []xpath.Predicate {
	out := make([]xpath.Predicate, len(preds))
	for i, p := range preds {
		if vector[i] == '1' {
			out[i] = p
		} else {
			out[i] = negate(p)
		}
	}
	return out
}

// negate builds the complement of a simple predicate, using the
// comparison complement where possible so the output stays analyzable by
// the query service's pruning.
func negate(p xpath.Predicate) xpath.Predicate {
	if cmp, ok := p.(*xpath.Comparison); ok {
		return &xpath.Comparison{Path: cmp.Path, Op: cmp.Op.Negate(), Value: cmp.Value}
	}
	return &xpath.Not{Inner: p}
}

func andOf(terms []xpath.Predicate) xpath.Predicate {
	if len(terms) == 1 {
		return terms[0]
	}
	return &xpath.And{Terms: terms}
}

func orOf(terms []xpath.Predicate) xpath.Predicate {
	if len(terms) == 1 {
		return terms[0]
	}
	return &xpath.Or{Terms: terms}
}

// relevantPredicates extracts the workload's simple predicates over the
// collection, most frequent first.
func relevantPredicates(collection string, queries []WorkloadQuery, limit int) []xpath.Predicate {
	counts := map[string]int{}
	byKey := map[string]xpath.Predicate{}
	for _, wq := range queries {
		e, err := xquery.Parse(wq.Text)
		if err != nil {
			continue
		}
		for _, p := range extractSimplePredicates(e, collection) {
			key := p.String()
			counts[key] += wq.weight()
			byKey[key] = p
		}
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) > limit {
		keys = keys[:limit]
	}
	out := make([]xpath.Predicate, len(keys))
	for i, k := range keys {
		out[i] = byKey[k]
	}
	return out
}
