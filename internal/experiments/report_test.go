package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"partix/internal/partix"
	"partix/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden report file")

// sampleReport builds a fully populated report with fixed values, so the
// JSON shape the BENCH files commit to is pinned by the golden file.
func sampleReport() *Report {
	r := NewReport(3, []*Panel{samplePanel()}, &StreamCompare{
		Query: `for $i in collection("items")/Item return $i`, Docs: 240, Fragments: 4,
		Items: 240, BatchItems: 8,
		Stream: StreamSide{ResponseNs: 1500000, FirstItemNs: 200000, Frames: 30, WireBytes: 19000000, AllocsPerOp: 52000, AllocBytesPer: 21000000, PeakHeapBytes: 9000000},
		Mono:   StreamSide{ResponseNs: 1800000, FirstItemNs: 1700000, Frames: 4, WireBytes: 19000000, AllocsPerOp: 48000, AllocBytesPer: 20000000, PeakHeapBytes: 64000000},
	})
	r.Generated = "2026-01-01T00:00:00Z" // pinned: golden files cannot carry wall time
	r.Obs = &ObsCompare{
		Query: `count(collection("items")/Item)`, Docs: 1500, Fragments: 3, Repeats: 3,
		DisabledNs: 1000000, EnabledNs: 1010000, TracedNs: 1050000,
		EnabledPct: 1, TracedPct: 5,
	}
	r.ValueIndex = &ValueIndexCompare{
		Docs: 1500, Repeats: 3,
		Sweep: []ValueIndexPoint{{
			Query:          `for $i in collection("items")/Item where $i/@id < 15 return $i/Code`,
			SelectivityPct: 1,
			Indexed:        ValueIndexSide{ResponseNs: 100000, DocsDecoded: 15, DocsPruned: 1485, RangePruned: 1485},
			Baseline:       ValueIndexSide{ResponseNs: 900000, DocsDecoded: 1500},
			DecodeRatio:    100,
		}},
		CountQuery: `count(collection("items")/Item)`, CountIndexOnly: true,
		ExistsQuery:     `exists(for $i in collection("items")/Item where $i/Section = "CD" return $i)`,
		ExistsIndexOnly: true, ExistsDocsDecoded: 0,
		BestDecodeRatio: 100,
	}
	r.MixedRW = &MixedRWCompare{
		Docs: 300, Reads: 120, Query: mixedRWQuery, WriterDocBytes: 32768,
		Sides: []MixedRWSide{
			{Name: "read-only", ReadP50Ns: 500000, ReadP99Ns: 900000, ReadMaxNs: 1000000},
			{Name: "lock-coupled writer, durable (seed locks + WAL)", Writer: true, LockCoupled: true,
				DurableWAL: true, Writes: 310, WALFsyncs: 305,
				ReadP50Ns: 700000, ReadP99Ns: 2000000, ReadMaxNs: 60000000, WriteP50Ns: 700000, WriteP99Ns: 3000000},
			{Name: "snapshot reads + durable writer", Writer: true, DurableWAL: true, Writes: 300, WALFsyncs: 290,
				ReadP50Ns: 600000, ReadP99Ns: 1250000, ReadMaxNs: 1600000, WriteP50Ns: 680000, WriteP99Ns: 2000000},
		},
		P99Ratio: 1.6,
	}
	r.Exec = &ExecCompare{
		Docs: 1500, Repeats: 3,
		Queries: []ExecQueryPoint{{
			ID:          "HQ1",
			Query:       `for $i in collection("items")/Item where $i/Section = "CD" return $i/Name`,
			Items:       380,
			Compiled:    ExecSide{ResponseNs: 400000, AllocsPerOp: 9000, AllocBytesPerOp: 700000},
			Interpreted: ExecSide{ResponseNs: 1300000, AllocsPerOp: 52000, AllocBytesPerOp: 4200000},
			Speedup:     3.25, AllocRatio: 5.8,
		}},
		Stream: []ExecStreamPoint{
			{Docs: 1500, Items: 1500, MaterializedPeakHeap: 24000000, StreamedPeakHeap: 2000000},
			{Docs: 15000, Items: 15000, MaterializedPeakHeap: 240000000, StreamedPeakHeap: 2100000},
		},
		MeanSpeedup: 3.25, MeanAllocRatio: 5.8,
	}
	r.ResultCache = &ResultCacheCompare{
		Docs: 1500, Fragments: 4, Repeats: 3, Queries: 8,
		ColdNs: 1200000, HitNs: 2000, HitSpeedup: 600, HitFasterThanCold: true,
		CacheEntries: 8, CacheBytes: 90000,
		WriterRounds: 6, CheckedReads: 48, StaleServed: 0,
		HitsDuringWrites: 60, InvalidationsOnWrite: 6,
		OverloadSubmitted: 32, OverloadServed: 4, OverloadShed: 28, ShedTyped: true,
	}
	return r
}

func TestReportGoldenRoundTrip(t *testing.T) {
	r := sampleReport()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./internal/experiments -run Golden -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report JSON drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// The schema must round-trip: decoding the JSON yields the identical
	// report, so nothing is lost between a BENCH file and its reader.
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*r, back) {
		t.Errorf("round-trip mismatch:\ngot  %+v\nwant %+v", back, *r)
	}
}

func samplePanel() *Panel {
	p := &Panel{ID: "fig7a", Title: "Figure 7(a) — sample"}
	p.Queries = []workload.Query{{ID: "Q1", Text: `count(collection("items")/Item)`, Class: workload.ClassAggregation}}
	p.Series = []Series{
		{Name: "centralized", Times: map[string]Measurement{
			"Q1": {Response: 4 * time.Millisecond, Parallel: 3 * time.Millisecond,
				Transmission: 500 * time.Microsecond, Compose: 500 * time.Microsecond,
				Strategy: partix.StrategyCentralized, Items: 12, Bytes: 4096},
		}},
		{Name: "fragmented", Times: map[string]Measurement{
			"Q1": {Response: 2 * time.Millisecond, Parallel: 1 * time.Millisecond,
				Transmission: 500 * time.Microsecond, Compose: 500 * time.Microsecond,
				Strategy: partix.StrategyUnion, Items: 12, Bytes: 4096,
				FirstItem: 100 * time.Microsecond, Frames: 2},
		}},
	}
	return p
}
