package experiments

import (
	"fmt"
	"io"
	"time"

	"partix/internal/fragmentation"
	"partix/internal/toxgene"
)

// ValueIndexCompare quantifies what the path/value index subsystem buys:
// a selectivity sweep of a numeric range predicate measured with the
// value index on versus off (the text and element indexes stay on in
// both, so the delta isolates the new structures), plus the two
// index-only deciders — count() and an exists()-shaped FLWOR — which the
// indexed engine must answer without decoding a single document.
type ValueIndexCompare struct {
	Docs    int               `json:"docs"`
	Repeats int               `json:"repeats"`
	Sweep   []ValueIndexPoint `json:"sweep"`

	CountQuery     string `json:"countQuery"`
	CountIndexOnly bool   `json:"countIndexOnly"`

	ExistsQuery       string `json:"existsQuery"`
	ExistsIndexOnly   bool   `json:"existsIndexOnly"`
	ExistsDocsDecoded int64  `json:"existsDocsDecoded"`

	// BestDecodeRatio is the largest baseline/indexed decode ratio seen
	// across the sweep (the most selective point).
	BestDecodeRatio float64 `json:"bestDecodeRatio"`
}

// ValueIndexPoint is one selectivity level of the range sweep.
type ValueIndexPoint struct {
	Query          string         `json:"query"`
	SelectivityPct float64        `json:"selectivityPct"`
	Indexed        ValueIndexSide `json:"indexed"`
	Baseline       ValueIndexSide `json:"baseline"`
	// DecodeRatio is baseline decodes over indexed decodes for one
	// execution of the query (how many fewer trees the index touched).
	DecodeRatio float64 `json:"decodeRatio"`
}

// ValueIndexSide is one configuration's measurement of one query: the
// averaged response time plus the engine-counter deltas of a single
// execution.
type ValueIndexSide struct {
	ResponseNs    int64 `json:"responseNs"`
	DocsDecoded   int64 `json:"docsDecoded"`
	DocsPruned    int64 `json:"docsPruned"`
	RangePruned   int64 `json:"rangePruned"`
	IndexOnlyHits int64 `json:"indexOnlyHits"`
}

// RunValueIndex measures the value-index comparison on a centralized
// items deployment (the index is a per-node engine structure, so one node
// shows the effect without fragmentation noise).
func RunValueIndex(scale Scale, opts Options) (*ValueIndexCompare, error) {
	opts = opts.withDefaults()
	docs := scale.SmallItems

	items := toxgene.GenerateItems(toxgene.ItemsConfig{Docs: docs, Seed: scale.Seed})
	indexed, err := Deploy("vidx-on", items.Clone(), nil, fragmentation.FragModeSD, opts)
	if err != nil {
		return nil, err
	}
	defer indexed.Close()
	baseOpts := opts
	baseOpts.DisableValueIndex = true
	baseline, err := Deploy("vidx-off", items.Clone(), nil, fragmentation.FragModeSD, baseOpts)
	if err != nil {
		return nil, err
	}
	defer baseline.Close()

	cmp := &ValueIndexCompare{Docs: docs, Repeats: opts.Repeats}

	// The sweep predicate compares the numeric @id attribute (0-based
	// document sequence), so K documents match "@id < K". The baseline's
	// token index cannot serve an inequality, making every point a full
	// scan there; the value index prunes to the matching documents.
	for _, pct := range []float64{1, 5, 25, 100} {
		k := int(float64(docs) * pct / 100)
		if k < 1 {
			k = 1
		}
		query := fmt.Sprintf(`for $i in collection("items")/Item where $i/@id < %d return $i/Code`, k)
		point := ValueIndexPoint{Query: query, SelectivityPct: pct}
		if point.Indexed, err = measureValueIndexSide(indexed, query, opts.Repeats); err != nil {
			return nil, err
		}
		if point.Baseline, err = measureValueIndexSide(baseline, query, opts.Repeats); err != nil {
			return nil, err
		}
		if point.Indexed.DocsDecoded > 0 {
			point.DecodeRatio = float64(point.Baseline.DocsDecoded) / float64(point.Indexed.DocsDecoded)
		}
		if point.DecodeRatio > cmp.BestDecodeRatio {
			cmp.BestDecodeRatio = point.DecodeRatio
		}
		cmp.Sweep = append(cmp.Sweep, point)
	}

	// The deciders: with the path summary in place these never touch a
	// document on the indexed deployment.
	cmp.CountQuery = `count(collection("items")/Item)`
	count, err := measureValueIndexSide(indexed, cmp.CountQuery, opts.Repeats)
	if err != nil {
		return nil, err
	}
	cmp.CountIndexOnly = count.DocsDecoded == 0 && count.IndexOnlyHits > 0

	cmp.ExistsQuery = `exists(for $i in collection("items")/Item where $i/Section = "CD" return $i)`
	exists, err := measureValueIndexSide(indexed, cmp.ExistsQuery, opts.Repeats)
	if err != nil {
		return nil, err
	}
	cmp.ExistsDocsDecoded = exists.DocsDecoded
	cmp.ExistsIndexOnly = exists.DocsDecoded == 0 && exists.IndexOnlyHits > 0
	return cmp, nil
}

// measureValueIndexSide times the query with the usual methodology and
// captures the engine-counter delta of one further execution (the timed
// repeats would multiply the counters by the repeat count).
func measureValueIndexSide(d *Deployment, query string, repeats int) (ValueIndexSide, error) {
	m, err := MeasureQuery(d.System, query, repeats)
	if err != nil {
		return ValueIndexSide{}, err
	}
	before := d.EngineStats()
	if _, err := d.System.Query(query); err != nil {
		return ValueIndexSide{}, err
	}
	after := d.EngineStats()
	return ValueIndexSide{
		ResponseNs:    m.Response.Nanoseconds(),
		DocsDecoded:   after.DocsDecoded - before.DocsDecoded,
		DocsPruned:    after.DocsPruned - before.DocsPruned,
		RangePruned:   after.RangePruned - before.RangePruned,
		IndexOnlyHits: after.IndexOnlyHits - before.IndexOnlyHits,
	}, nil
}

// PrintValueIndex renders the comparison for the terminal run.
func PrintValueIndex(w io.Writer, c *ValueIndexCompare) {
	fmt.Fprintf(w, "\nValue index vs text-index baseline — %d docs, %d repeats\n", c.Docs, c.Repeats)
	fmt.Fprintf(w, "  %-6s %-14s %-14s %-10s %-10s %s\n",
		"sel%", "indexed", "baseline", "decoded", "decoded", "decode ratio")
	for _, p := range c.Sweep {
		fmt.Fprintf(w, "  %-6.0f %-14v %-14v %-10d %-10d %.1fx\n",
			p.SelectivityPct,
			time.Duration(p.Indexed.ResponseNs), time.Duration(p.Baseline.ResponseNs),
			p.Indexed.DocsDecoded, p.Baseline.DocsDecoded, p.DecodeRatio)
	}
	fmt.Fprintf(w, "  count  index-only=%v  (%s)\n", c.CountIndexOnly, c.CountQuery)
	fmt.Fprintf(w, "  exists index-only=%v decoded=%d  (%s)\n",
		c.ExistsIndexOnly, c.ExistsDocsDecoded, c.ExistsQuery)
	fmt.Fprintf(w, "  best decode ratio %.1fx fewer documents decoded\n", c.BestDecodeRatio)
}
