package experiments

import (
	"fmt"
	"io"
	"time"

	"partix/internal/fragmentation"
	"partix/internal/xmltree"
)

// PlannerCompare quantifies the cost-based planner: a horizontal
// deployment where the fragmentation predicates (Section equality) say
// nothing about the measured query's @id range, so a statistics-blind
// coordinator must union-all every fragment while the planner proves all
// but one empty from their value ranges — plus the plan cache's effect on
// per-query planning time (cold parse+plan versus a validated cache hit).
type PlannerCompare struct {
	Docs    int    `json:"docs"`
	Repeats int    `json:"repeats"`
	Query   string `json:"query"`
	Items   int    `json:"items"`

	// Fragment pruning: how much of the union-all the statistics removed.
	Fragments          int `json:"fragments"`
	SkippedFragments   int `json:"skippedFragments"`
	FragmentsContacted int `json:"fragmentsContacted"`

	// Averaged response times (ParallelTime + TransmissionTime +
	// ComposeTime; planning excluded on both sides).
	PlannedResponseNs int64   `json:"plannedResponseNs"`
	NaiveResponseNs   int64   `json:"naiveResponseNs"`
	ResponseSpeedup   float64 `json:"responseSpeedup"`

	// Plan-resolution time: best-of-N with the cache invalidated before
	// every cold run, versus best-of-N cache hits for the same query.
	ColdPlanNs       int64   `json:"coldPlanNs"`
	CachedPlanNs     int64   `json:"cachedPlanNs"`
	CachedPlanFaster bool    `json:"cachedPlanFaster"`
	PlanSpeedup      float64 `json:"planSpeedup"`
}

// plannerDocs builds items whose Section tracks the @id quartile
// (S0..S3). Fragmenting by Section then gives each fragment a disjoint
// @id range that only the fragment statistics know about.
func plannerDocs(n int) *xmltree.Collection {
	c := xmltree.NewCollection("items")
	q := n / 4
	if q < 1 {
		q = 1
	}
	for i := 0; i < n; i++ {
		sec := i / q
		if sec > 3 {
			sec = 3
		}
		c.Add(xmltree.MustParseString(fmt.Sprintf("p%06d", i), fmt.Sprintf(
			`<Item id="%d"><Code>P%06d</Code><Name>name%d</Name><Section>S%d</Section></Item>`,
			i, i, i, sec)))
	}
	return c
}

func plannerScheme() *fragmentation.Scheme {
	frags := make([]*fragmentation.Fragment, 4)
	for i := range frags {
		frags[i] = fragmentation.MustHorizontal(fmt.Sprintf("FS%d", i),
			fmt.Sprintf(`/Item/Section = "S%d"`, i))
	}
	return &fragmentation.Scheme{Collection: "items", Fragments: frags}
}

// RunPlanner measures the planner comparison: the same query on the same
// 4-fragment deployment with fragment statistics on versus off, then the
// plan cache's cold-versus-hit planning time.
func RunPlanner(scale Scale, opts Options) (*PlannerCompare, error) {
	opts = opts.withDefaults()
	docs := scale.SmallItems

	planned, err := Deploy("planner-on", plannerDocs(docs), plannerScheme(), fragmentation.FragModeSD, opts)
	if err != nil {
		return nil, err
	}
	defer planned.Close()
	naive, err := Deploy("planner-off", plannerDocs(docs), plannerScheme(), fragmentation.FragModeSD, opts)
	if err != nil {
		return nil, err
	}
	defer naive.Close()
	naive.System.SetPlannerStats(false)

	// The predicate selects the bottom eighth of @id — inside FS0's
	// quartile, provably outside FS1..FS3's.
	cmp := &PlannerCompare{Docs: docs, Repeats: opts.Repeats, Fragments: 4}
	cmp.Query = fmt.Sprintf(`for $i in collection("items")/Item where $i/@id < %d return $i/Code`, docs/8)

	pm, err := MeasureQuery(planned.System, cmp.Query, opts.Repeats)
	if err != nil {
		return nil, err
	}
	nm, err := MeasureQuery(naive.System, cmp.Query, opts.Repeats)
	if err != nil {
		return nil, err
	}
	cmp.Items = pm.Items
	cmp.PlannedResponseNs = pm.Response.Nanoseconds()
	cmp.NaiveResponseNs = nm.Response.Nanoseconds()
	if pm.Response > 0 {
		cmp.ResponseSpeedup = float64(nm.Response) / float64(pm.Response)
	}

	// One instrumented execution for the pruning counters.
	res, err := planned.System.Query(cmp.Query)
	if err != nil {
		return nil, err
	}
	cmp.SkippedFragments = len(res.SkippedFragments)
	cmp.FragmentsContacted = len(res.Sub)

	// Plan-resolution time, best-of-N on both sides: the cold side pays
	// normalize+parse+analyze+plan (the cache is invalidated before each
	// run), the cached side normalize+lookup+validate only.
	n := opts.Repeats
	if n < 5 {
		n = 5
	}
	for i := 0; i < n; i++ {
		planned.System.InvalidatePlans()
		r, err := planned.System.Query(cmp.Query)
		if err != nil {
			return nil, err
		}
		if r.PlanCached {
			return nil, fmt.Errorf("planner bench: cold run served from cache")
		}
		if i == 0 || r.PlanTime.Nanoseconds() < cmp.ColdPlanNs {
			cmp.ColdPlanNs = r.PlanTime.Nanoseconds()
		}
	}
	for i := 0; i < n; i++ {
		r, err := planned.System.Query(cmp.Query)
		if err != nil {
			return nil, err
		}
		if !r.PlanCached {
			return nil, fmt.Errorf("planner bench: warm run missed the cache")
		}
		if i == 0 || r.PlanTime.Nanoseconds() < cmp.CachedPlanNs {
			cmp.CachedPlanNs = r.PlanTime.Nanoseconds()
		}
	}
	cmp.CachedPlanFaster = cmp.CachedPlanNs < cmp.ColdPlanNs
	if cmp.CachedPlanNs > 0 {
		cmp.PlanSpeedup = float64(cmp.ColdPlanNs) / float64(cmp.CachedPlanNs)
	}
	return cmp, nil
}

// PrintPlanner renders the comparison for the terminal run.
func PrintPlanner(w io.Writer, c *PlannerCompare) {
	fmt.Fprintf(w, "\nCost-based planner vs union-all — %d docs over %d fragments, %d repeats\n",
		c.Docs, c.Fragments, c.Repeats)
	fmt.Fprintf(w, "  query: %s\n", c.Query)
	fmt.Fprintf(w, "  fragments contacted %d of %d (skipped %d), %d items\n",
		c.FragmentsContacted, c.Fragments, c.SkippedFragments, c.Items)
	fmt.Fprintf(w, "  response  planned %v  union-all %v  (%.1fx)\n",
		time.Duration(c.PlannedResponseNs), time.Duration(c.NaiveResponseNs), c.ResponseSpeedup)
	fmt.Fprintf(w, "  plan time cold %v  cached %v  (%.1fx, cached faster: %v)\n",
		time.Duration(c.ColdPlanNs), time.Duration(c.CachedPlanNs), c.PlanSpeedup, c.CachedPlanFaster)
}
