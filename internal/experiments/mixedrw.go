package experiments

import (
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"partix/internal/engine"
	"partix/internal/obs"
	"partix/internal/toxgene"
	"partix/internal/xmltree"
)

// MixedRWCompare measures what snapshot-isolated reads buy under write
// load: the same read query's latency distribution with no writer, with a
// concurrent writer under the pre-WAL lock discipline (queries serialize
// behind each write, emulated with one reader-writer mutex around engine
// calls), and with a concurrent writer on the native MVCC path — without
// and with the durable (fsync-at-commit) write-ahead log. The engine and
// data are identical across sides; only the concurrency structure and the
// durability setting differ.
type MixedRWCompare struct {
	Docs           int    `json:"docs"`
	Reads          int    `json:"reads"` // timed reads per side
	Query          string `json:"query"`
	WriterDocBytes int    `json:"writerDocBytes"` // approx encoded size of each write

	Sides []MixedRWSide `json:"sides"`

	// P99Ratio is the lock-coupled p99 read latency over the snapshot
	// p99, both with durable (fsynced) commits — how much reads suffer
	// when they must queue behind whole commits, fsync included, the way
	// the seed's locking would have combined with the WAL. This is the
	// contrast that survives even a single-core host, where the volatile
	// pair only measures CPU time-slicing.
	P99Ratio float64 `json:"p99Ratio"`
}

// MixedRWSide is one concurrency configuration's measurement.
type MixedRWSide struct {
	Name        string `json:"name"`
	Writer      bool   `json:"writer"`      // a concurrent writer ran
	LockCoupled bool   `json:"lockCoupled"` // reads serialized behind writes (seed emulation)
	DurableWAL  bool   `json:"durableWAL"`  // writes fsynced at commit

	Writes     int64 `json:"writes"`    // writes completed during the read window
	WALFsyncs  int64 `json:"walFsyncs"` // fsyncs those writes cost (group commit batches them)
	ReadP50Ns  int64 `json:"readP50Ns"`
	ReadP99Ns  int64 `json:"readP99Ns"`
	ReadMaxNs  int64 `json:"readMaxNs"`
	WriteP50Ns int64 `json:"writeP50Ns,omitempty"`
	WriteP99Ns int64 `json:"writeP99Ns,omitempty"`
}

// mixedRWQuery is the read workload: an indexed-pruned scan that still
// decodes its candidates, like the paper's selective queries.
const mixedRWQuery = `for $i in collection("items")/Item where $i/Section = "CD" return $i/Code`

// mixedRWWriters is the writer-pool size on the sides that have a
// writer. Several concurrent committers is what exercises group commit:
// under the lock-coupled discipline they serialize into one fsync per
// commit, while the native path batches them into one fsync per round.
const mixedRWWriters = 4

// RunMixedRW measures the mixed read/write panel on a single engine (the
// effect is per-node; fragmentation would only add wire noise).
func RunMixedRW(scale Scale, opts Options) (*MixedRWCompare, error) {
	opts = opts.withDefaults()
	docs := scale.SmallItems / 5
	if docs < 100 {
		docs = 100
	}
	reads := 40 * opts.Repeats
	items := toxgene.GenerateItems(toxgene.ItemsConfig{Docs: docs, Seed: scale.Seed})

	// The writers replace documents in a side collection so the read
	// workload's candidate set stays fixed; padding makes each write move
	// a run of pages, like a real refresh stream. Writes are deliberately
	// heavy (~32 KB documents) — the point of the panel is the time a
	// commit makes readers wait, and a tiny commit hides under scheduling
	// noise — and the documents are parsed up front: a caller of
	// PutDocument hands over an already-built tree, so parse time belongs
	// to neither side's commit path.
	const padBytes = 32 << 10
	pool := make([]*xmltree.Document, 32)
	for i := range pool {
		pool[i] = xmltree.MustParseString(fmt.Sprintf("w%d", i), fmt.Sprintf(
			"<Item id=\"%d\"><Code>W%d</Code><Pad>%s</Pad></Item>", i, i, strings.Repeat("x", padBytes)))
	}
	writerDoc := func(i int) *xmltree.Document { return pool[i%len(pool)] }
	writerDocBytes := padBytes

	cmp := &MixedRWCompare{Docs: docs, Reads: reads, Query: mixedRWQuery, WriterDocBytes: writerDocBytes}

	configs := []struct {
		name        string
		writer      bool
		lockCoupled bool
		durable     bool
	}{
		{"read-only", false, false, false},
		{"lock-coupled writer, volatile (seed discipline)", true, true, false},
		{"snapshot reads + volatile writer", true, false, false},
		{"lock-coupled writer, durable (seed locks + WAL)", true, true, true},
		{"snapshot reads + durable writer", true, false, true},
	}
	for i, cfg := range configs {
		side, err := runMixedRWSide(fmt.Sprintf("mixedrw%d", i), cfg.name, items.Clone(), reads,
			cfg.writer, cfg.lockCoupled, cfg.durable, writerDoc, opts)
		if err != nil {
			return nil, err
		}
		cmp.Sides = append(cmp.Sides, *side)
	}
	var locked, snapshot int64
	for _, s := range cmp.Sides {
		if !s.DurableWAL {
			continue
		}
		if s.LockCoupled {
			locked = s.ReadP99Ns
		} else {
			snapshot = s.ReadP99Ns
		}
	}
	if snapshot > 0 {
		cmp.P99Ratio = float64(locked) / float64(snapshot)
	}
	return cmp, nil
}

func runMixedRWSide(label, name string, items *xmltree.Collection, reads int,
	writer, lockCoupled, durable bool, writerDoc func(int) *xmltree.Document,
	opts Options) (*MixedRWSide, error) {
	dir, cleanup, err := opts.workDir(label)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	db, err := engine.Open(filepath.Join(dir, "node.db"), engine.Options{
		DecodeWorkers: opts.DecodeWorkers,
		WALNoFsync:    !durable,
	})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := db.LoadCollection(items); err != nil {
		return nil, err
	}

	side := &MixedRWSide{Name: name, Writer: writer, LockCoupled: lockCoupled, DurableWAL: durable}

	// The lock-coupled side recreates the seed discipline: every write
	// excludes every read for its full duration (store page writes plus
	// index maintenance happened under locks the read path needed).
	var coupler sync.RWMutex
	runRead := func() error {
		if lockCoupled {
			coupler.RLock()
			defer coupler.RUnlock()
		}
		_, err := db.Query(mixedRWQuery)
		return err
	}
	runWrite := func(i int) error {
		if lockCoupled {
			coupler.Lock()
			defer coupler.Unlock()
		}
		return db.PutDocument("refresh", writerDoc(i))
	}

	stop := make(chan struct{})
	var startOnce sync.Once
	started := make(chan struct{})
	// Each completed read refills the write-token pool (capacity = pool
	// size, deposits dropped when full); every writer consumes one token
	// per commit. Tying the write rate to read progress — instead of a
	// wall-clock pace — keeps the write pressure identical across sides:
	// in the lock-coupled configuration the coupling throttles both
	// directions, and a timer's granularity never skews a side. The small
	// capacity stops a backlog from accumulating: on a single-core host
	// the writers run in scheduling bursts, and draining a deep token
	// queue inside one timed read would charge that read dozens of writes
	// of wall clock.
	tokens := make(chan struct{}, mixedRWWriters)
	var wg sync.WaitGroup
	var writes atomic.Int64
	var writeMu sync.Mutex
	var writeLat []time.Duration
	var writeErr error
	if writer {
		for w := 0; w < mixedRWWriters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; ; i += mixedRWWriters {
					select {
					case <-stop:
						return
					case <-tokens:
					}
					t0 := time.Now()
					err := runWrite(i)
					d := time.Since(t0)
					startOnce.Do(func() { close(started) })
					writeMu.Lock()
					if err != nil {
						writeErr = err
						writeMu.Unlock()
						return
					}
					writeLat = append(writeLat, d)
					writeMu.Unlock()
					writes.Add(1)
				}
			}(w)
		}
	} else {
		close(started)
	}

	// Warm up once (the paper's discarded first execution), and wait for
	// the writers' first commit so the timed window genuinely overlaps
	// the write stream — the whole read loop can finish before a writer
	// goroutine is even scheduled otherwise.
	if err := runRead(); err != nil {
		close(stop)
		wg.Wait()
		return nil, err
	}
	tokens <- struct{}{}
	<-started
	fsyncs0 := obs.StorageWALFsyncs.Value()
	readLat := make([]time.Duration, 0, reads)
	for i := 0; i < reads; i++ {
		t0 := time.Now()
		if err := runRead(); err != nil {
			close(stop)
			wg.Wait()
			return nil, err
		}
		readLat = append(readLat, time.Since(t0))
	fill:
		for j := 0; j < mixedRWWriters; j++ {
			select {
			case tokens <- struct{}{}:
			default:
				break fill
			}
		}
		// Yield so the writers actually get their slot on a single-core
		// host; otherwise the read loop monopolizes the scheduler and the
		// uncoupled sides see a fraction of the baseline's write traffic.
		runtime.Gosched()
	}
	side.WALFsyncs = obs.StorageWALFsyncs.Value() - fsyncs0
	close(stop)
	wg.Wait()
	if writeErr != nil {
		return nil, writeErr
	}

	side.Writes = writes.Load()
	side.ReadP50Ns = percentileNs(readLat, 0.50)
	side.ReadP99Ns = percentileNs(readLat, 0.99)
	side.ReadMaxNs = percentileNs(readLat, 1.0)
	if len(writeLat) > 0 {
		side.WriteP50Ns = percentileNs(writeLat, 0.50)
		side.WriteP99Ns = percentileNs(writeLat, 0.99)
	}
	return side, nil
}

// percentileNs returns the p-quantile (0 < p <= 1) of the latency sample
// in nanoseconds, by sorted rank.
func percentileNs(lat []time.Duration, p float64) int64 {
	if len(lat) == 0 {
		return 0
	}
	s := make([]time.Duration, len(lat))
	copy(s, lat)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(p*float64(len(s))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return int64(s[i])
}

// PrintMixedRW renders the comparison as a table.
func PrintMixedRW(w io.Writer, m *MixedRWCompare) {
	fmt.Fprintf(w, "\nMixed read/write: %d docs, %d timed reads per side\n", m.Docs, m.Reads)
	fmt.Fprintf(w, "read query: %s\n", m.Query)
	fmt.Fprintf(w, "%-48s %10s %10s %10s %8s %8s %10s\n", "configuration", "read p50", "read p99", "read max", "writes", "fsyncs", "write p50")
	for _, s := range m.Sides {
		wp50 := "-"
		if s.WriteP50Ns > 0 {
			wp50 = time.Duration(s.WriteP50Ns).Round(time.Microsecond).String()
		}
		fmt.Fprintf(w, "%-48s %10v %10v %10v %8d %8d %10s\n", s.Name,
			time.Duration(s.ReadP50Ns).Round(time.Microsecond),
			time.Duration(s.ReadP99Ns).Round(time.Microsecond),
			time.Duration(s.ReadMaxNs).Round(time.Microsecond),
			s.Writes, s.WALFsyncs, wp50)
	}
	if m.P99Ratio > 0 {
		fmt.Fprintf(w, "p99 read latency with durable commits, lock-coupled over snapshot: %.1fx\n", m.P99Ratio)
	}
}
