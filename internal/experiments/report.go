package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"runtime"
	"time"

	"partix/internal/engine"
	"partix/internal/fragmentation"
	"partix/internal/partix"
	"partix/internal/toxgene"
	"partix/internal/wire"
	"partix/internal/workload"
)

// Report is the machine-readable form of a partix-bench run, written as
// JSON so the perf trajectory can be tracked across changes instead of
// only in prose. Durations are nanoseconds.
type Report struct {
	Generated string         `json:"generated"` // RFC 3339
	Repeats   int            `json:"repeats"`
	Panels    []PanelReport  `json:"panels,omitempty"`
	Stream    *StreamCompare `json:"stream,omitempty"`
	Obs       *ObsCompare    `json:"obs,omitempty"`
	// ValueIndex is the value-index vs text-index-only comparison
	// (partix-bench -exp valueindex).
	ValueIndex *ValueIndexCompare `json:"valueindex,omitempty"`
	// Planner is the cost-based planner vs union-all comparison
	// (partix-bench -exp planner).
	Planner *PlannerCompare `json:"planner,omitempty"`
	// MixedRW is the snapshot-read vs lock-coupled mixed read/write
	// comparison (partix-bench -exp mixedrw).
	MixedRW *MixedRWCompare `json:"mixedrw,omitempty"`
	// Exec is the compiled vectorized executor vs interpreter comparison
	// (partix-bench -exp exec).
	Exec *ExecCompare `json:"exec,omitempty"`
	// Telemetry is the flight recorder + workload profiler ablation and
	// profile-accuracy check (partix-bench -exp telemetry).
	Telemetry *TelemetryCompare `json:"telemetry,omitempty"`
	// ResultCache is the coordinator result cache + admission control
	// comparison (partix-bench -exp resultcache).
	ResultCache *ResultCacheCompare `json:"resultcache,omitempty"`
}

// PanelReport is one figure panel's measurements.
type PanelReport struct {
	ID     string         `json:"id"`
	Title  string         `json:"title"`
	Series []SeriesReport `json:"series"`
}

// SeriesReport is one configuration's column.
type SeriesReport struct {
	Name    string        `json:"name"`
	Queries []QueryReport `json:"queries"`
}

// QueryReport is one query's averaged measurement.
type QueryReport struct {
	ID             string `json:"id"`
	Strategy       string `json:"strategy"`
	Items          int    `json:"items"`
	ResponseNs     int64  `json:"responseNs"`
	ParallelNs     int64  `json:"parallelNs"`
	TransmissionNs int64  `json:"transmissionNs"`
	ComposeNs      int64  `json:"composeNs"`
	Bytes          int    `json:"bytes"`
	FirstItemNs    int64  `json:"firstItemNs,omitempty"`
	Frames         int    `json:"frames,omitempty"`
}

// NewReport converts the measured panels (and the optional streaming
// comparison) into the JSON shape.
func NewReport(repeats int, panels []*Panel, stream *StreamCompare) *Report {
	r := &Report{Generated: time.Now().UTC().Format(time.RFC3339), Repeats: repeats, Stream: stream}
	for _, p := range panels {
		pr := PanelReport{ID: p.ID, Title: p.Title}
		for _, s := range p.Series {
			sr := SeriesReport{Name: s.Name}
			for _, q := range p.Queries {
				m, ok := s.Times[q.ID]
				if !ok {
					continue
				}
				sr.Queries = append(sr.Queries, QueryReport{
					ID:             q.ID,
					Strategy:       string(m.Strategy),
					Items:          m.Items,
					ResponseNs:     m.Response.Nanoseconds(),
					ParallelNs:     m.Parallel.Nanoseconds(),
					TransmissionNs: m.Transmission.Nanoseconds(),
					ComposeNs:      m.Compose.Nanoseconds(),
					Bytes:          m.Bytes,
					FirstItemNs:    m.FirstItem.Nanoseconds(),
					Frames:         m.Frames,
				})
			}
			pr.Series = append(pr.Series, sr)
		}
		r.Panels = append(r.Panels, pr)
	}
	return r
}

// WriteJSON writes the report, indented for diffable commits.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// StreamCompare contrasts the framed wire protocol against the monolithic
// one on a broadcast union query over real TCP node servers: same
// deployment, same query, the only difference is DisableStreaming on the
// coordinator's clients.
type StreamCompare struct {
	Query      string     `json:"query"`
	Docs       int        `json:"docs"`
	Fragments  int        `json:"fragments"`
	Items      int        `json:"items"`
	BatchItems int        `json:"batchItems"`
	Stream     StreamSide `json:"stream"`
	Mono       StreamSide `json:"mono"`
}

// StreamSide is one protocol path's averaged per-query measurements.
// FirstItemNs for the monolithic path is the wall time until the single
// response landed — the earliest any item was available. PeakHeapBytes
// is the highest sampled live-heap growth over the pre-query baseline:
// the monolithic path holds every fragment's full encoded response while
// decoding it, the framed path only a batch at a time.
type StreamSide struct {
	ResponseNs    int64  `json:"responseNs"`
	FirstItemNs   int64  `json:"firstItemNs"`
	Frames        int    `json:"frames"`
	WireBytes     int    `json:"wireBytes"`
	AllocsPerOp   uint64 `json:"allocsPerOp"`
	AllocBytesPer uint64 `json:"allocBytesPerOp"`
	PeakHeapBytes uint64 `json:"peakHeapBytes"`
}

// RunStream measures the streamed-vs-monolithic comparison: k wire node
// servers over loopback TCP, an items collection fragmented horizontally,
// and a full-collection union query driven by two coordinators — one
// streaming, one with streaming disabled.
func RunStream(scale Scale, opts Options) (*StreamCompare, error) {
	opts = opts.withDefaults()
	const fragments = 4
	docs := scale.LargeItems * 4

	dir, rmDir, err := opts.workDir("stream")
	if err != nil {
		return nil, err
	}
	defer rmDir()

	scheme, err := workload.HorizontalScheme("items", fragments)
	if err != nil {
		return nil, err
	}
	items := toxgene.GenerateItems(toxgene.ItemsConfig{Docs: docs, Seed: scale.Seed, Large: true})

	// One engine + wire server per fragment.
	var cleanup []func() error
	defer func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}()
	addrs := make([]string, fragments)
	for i := 0; i < fragments; i++ {
		// A warm decoded-tree cache keeps node-side evaluation cheap, so
		// the comparison isolates the transport: this is a protocol
		// benchmark, not a paper-fidelity series (those keep the cache off).
		cache := opts.TreeCacheBytes
		if cache == 0 {
			cache = 64 << 20
		}
		db, err := engine.Open(filepath.Join(dir, fmt.Sprintf("node%d.db", i)), engine.Options{
			DisableIndexes: opts.DisableIndexes,
			DecodeWorkers:  opts.DecodeWorkers,
			TreeCacheBytes: cache,
		})
		if err != nil {
			return nil, err
		}
		cleanup = append(cleanup, db.Close)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv := wire.NewServerWith(db, nil, wire.ServerOptions{})
		go srv.Serve(l)
		cleanup = append(cleanup, srv.Close)
		addrs[i] = l.Addr().String()
	}

	placement := map[string]string{}
	for i, f := range scheme.Fragments {
		placement[f.Name] = fmt.Sprintf("node%d", i)
	}
	connect := func(clientOpts wire.ClientOptions) (*partix.System, error) {
		sys := partix.NewSystem(*opts.Cost)
		sys.SetConcurrent(true)
		for i, addr := range addrs {
			c, err := wire.DialWith(fmt.Sprintf("node%d", i), addr, clientOpts)
			if err != nil {
				return nil, err
			}
			cleanup = append(cleanup, c.Close)
			sys.AddNode(c)
		}
		return sys, nil
	}
	// Large (~80 KB) items: a small batch keeps the first frame early and
	// the per-frame buffers bounded; the default batch (256) would put a
	// whole fragment's result in one frame at this scale.
	const batchItems = 8
	streamSys, err := connect(wire.ClientOptions{BatchItems: batchItems})
	if err != nil {
		return nil, err
	}
	monoSys, err := connect(wire.ClientOptions{DisableStreaming: true})
	if err != nil {
		return nil, err
	}
	if err := streamSys.Publish(items, scheme, placement, partix.PublishOptions{Mode: fragmentation.FragModeSD}); err != nil {
		return nil, err
	}
	// The fragments already live on the nodes; the monolithic coordinator
	// only needs the metadata.
	err = monoSys.Catalog().Register(&partix.CollectionMeta{
		Name: "items", Scheme: scheme, Placement: placement, Mode: fragmentation.FragModeSD,
	})
	if err != nil {
		return nil, err
	}

	cmp := &StreamCompare{
		Query:      `for $i in collection("items")/Item return $i`,
		Docs:       docs,
		Fragments:  fragments,
		BatchItems: batchItems,
	}
	if cmp.Stream, cmp.Items, err = measureStreamSide(streamSys, cmp.Query, opts.Repeats); err != nil {
		return nil, err
	}
	if cmp.Mono, _, err = measureStreamSide(monoSys, cmp.Query, opts.Repeats); err != nil {
		return nil, err
	}
	return cmp, nil
}

func measureStreamSide(sys *partix.System, query string, repeats int) (StreamSide, int, error) {
	warm, err := sys.Query(query) // discarded warm-up, as everywhere else
	if err != nil {
		return StreamSide{}, 0, err
	}
	items := len(warm.Items)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var side StreamSide
	for i := 0; i < repeats; i++ {
		start := time.Now()
		res, err := sys.Query(query)
		wall := time.Since(start)
		if err != nil {
			return StreamSide{}, 0, err
		}
		first := res.FirstItemLatency
		if first == 0 {
			first = wall
		}
		side.ResponseNs += wall.Nanoseconds()
		side.FirstItemNs += first.Nanoseconds()
		side.Frames += res.Frames
		side.WireBytes += resultBytes(res)
	}
	runtime.ReadMemStats(&after)
	n := int64(repeats)
	side.ResponseNs /= n
	side.FirstItemNs /= n
	side.Frames /= repeats
	side.WireBytes /= repeats
	side.AllocsPerOp = (after.Mallocs - before.Mallocs) / uint64(repeats)
	side.AllocBytesPer = (after.TotalAlloc - before.TotalAlloc) / uint64(repeats)
	if side.PeakHeapBytes, err = peakHeapDuring(func() error {
		_, err := sys.Query(query)
		return err
	}); err != nil {
		return StreamSide{}, 0, err
	}
	return side, items, nil
}

// RunResources is the process-level resource usage of one experiment run:
// everything allocated while it ran plus the peak live-heap growth over
// the pre-run baseline.
type RunResources struct {
	Allocs        uint64
	AllocBytes    uint64
	PeakHeapBytes uint64
}

// MeasureResources runs fn once and captures its RunResources. The heap
// is sampled by a background goroutine, so short spikes between samples
// can be missed; treat the peak as a lower bound.
func MeasureResources(fn func() error) (RunResources, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	peak, err := peakHeapDuring(fn)
	if err != nil {
		return RunResources{}, err
	}
	runtime.ReadMemStats(&after)
	return RunResources{
		Allocs:        after.Mallocs - before.Mallocs,
		AllocBytes:    after.TotalAlloc - before.TotalAlloc,
		PeakHeapBytes: peak,
	}, nil
}

// PrintResources renders one run's resource line.
func PrintResources(w io.Writer, r RunResources) {
	fmt.Fprintf(w, "  resources: allocs=%d (%.1f MB)  peak-heap=%.1f MB\n",
		r.Allocs, float64(r.AllocBytes)/1e6, float64(r.PeakHeapBytes)/1e6)
}

// peakHeapDuring runs fn once with a background sampler and reports the
// highest live-heap growth seen over the post-GC baseline. It is a
// separate dedicated run because ReadMemStats stops the world and would
// perturb the timed repeats.
func peakHeapDuring(fn func() error) (uint64, error) {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc
	peak := base
	done := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()
	err := fn()
	close(done)
	<-sampled
	if err != nil {
		return 0, err
	}
	return peak - base, nil
}

// PrintStream renders the comparison for the terminal run.
func PrintStream(w io.Writer, c *StreamCompare) {
	fmt.Fprintf(w, "\nStreamed vs monolithic wire protocol — %d docs, %d fragments, %d items, batch %d\n",
		c.Docs, c.Fragments, c.Items, c.BatchItems)
	fmt.Fprintf(w, "  query: %s\n", c.Query)
	row := func(name string, s StreamSide) {
		fmt.Fprintf(w, "  %-8s response=%-12v first-item=%-12v frames=%-4d wire=%.2f MB  allocs/op=%d (%.2f MB)  peak-heap=%.2f MB\n",
			name,
			time.Duration(s.ResponseNs), time.Duration(s.FirstItemNs), s.Frames,
			float64(s.WireBytes)/1e6, s.AllocsPerOp, float64(s.AllocBytesPer)/1e6,
			float64(s.PeakHeapBytes)/1e6)
	}
	row("stream", c.Stream)
	row("mono", c.Mono)
	if c.Mono.FirstItemNs > 0 && c.Stream.FirstItemNs > 0 {
		fmt.Fprintf(w, "  time-to-first-item %.1fx lower streamed\n",
			float64(c.Mono.FirstItemNs)/float64(c.Stream.FirstItemNs))
	}
}
