package experiments

import (
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"time"

	"partix/internal/engine"
	"partix/internal/toxgene"
	"partix/internal/workload"
	"partix/internal/xquery"
)

// ExecCompare quantifies the compiled vectorized executor against the
// tree-walking interpreter on one node: the Figure 7(a) horizontal
// workload timed on two otherwise identical engines (the only difference
// is DisableCompiledExec), plus a streaming panel that scales the result
// size 10x and contrasts peak live heap of a materialized evaluation
// against the chunked StreamQueryExpr path.
type ExecCompare struct {
	Docs    int               `json:"docs"`
	Repeats int               `json:"repeats"`
	Queries []ExecQueryPoint  `json:"queries"`
	Stream  []ExecStreamPoint `json:"stream"`

	// MeanSpeedup / MeanAllocRatio average interpreted-over-compiled
	// response time and allocations across the compiled queries.
	MeanSpeedup    float64 `json:"meanSpeedup"`
	MeanAllocRatio float64 `json:"meanAllocRatio"`
}

// ExecQueryPoint is one workload query measured on both executors.
type ExecQueryPoint struct {
	ID          string   `json:"id"`
	Query       string   `json:"query"`
	Items       int      `json:"items"`
	Compiled    ExecSide `json:"compiled"`
	Interpreted ExecSide `json:"interpreted"`
	// Speedup is interpreted over compiled response time; AllocRatio the
	// same for allocations per execution.
	Speedup    float64 `json:"speedup"`
	AllocRatio float64 `json:"allocRatio"`
}

// ExecSide is one executor's averaged measurement of one query.
type ExecSide struct {
	ResponseNs      int64  `json:"responseNs"`
	AllocsPerOp     uint64 `json:"allocsPerOp"`
	AllocBytesPerOp uint64 `json:"allocBytesPerOp"`
}

// ExecStreamPoint is one result-size level of the streaming panel: the
// same full-collection query answered by materializing the sequence
// versus streaming it through StreamQueryExpr and discarding each chunk.
// Both numbers are live heap over the pre-query baseline, measured after
// a forced collection so GC pacing noise cancels out: materialized with
// the full result pinned, streamed as the maximum across chunk
// boundaries. A bounded executor keeps StreamedPeakHeap near-flat while
// MaterializedPeakHeap grows with the result.
type ExecStreamPoint struct {
	Docs                 int    `json:"docs"`
	Items                int    `json:"items"`
	MaterializedPeakHeap uint64 `json:"materializedPeakHeapBytes"`
	StreamedPeakHeap     uint64 `json:"streamedPeakHeapBytes"`
}

// RunExec measures the compiled-executor comparison on direct engine
// handles (no wire protocol, no fragmentation), so the delta isolates
// query execution itself.
func RunExec(scale Scale, opts Options) (*ExecCompare, error) {
	opts = opts.withDefaults()
	docs := scale.SmallItems

	dir, rmDir, err := opts.workDir("exec")
	if err != nil {
		return nil, err
	}
	defer rmDir()

	// A warm decoded-tree cache keeps document decoding out of the timed
	// loop: this comparison is about executor CPU and allocations, not a
	// paper-fidelity series (those keep the cache off).
	cache := opts.TreeCacheBytes
	if cache == 0 {
		cache = 256 << 20
	}
	open := func(name string, interpret bool) (*engine.DB, error) {
		return engine.Open(filepath.Join(dir, name+".db"), engine.Options{
			DisableIndexes:      opts.DisableIndexes,
			DisableValueIndex:   opts.DisableValueIndex,
			DisableCompiledExec: interpret,
			DecodeWorkers:       opts.DecodeWorkers,
			TreeCacheBytes:      cache,
		})
	}
	items := toxgene.GenerateItems(toxgene.ItemsConfig{Docs: docs, Seed: scale.Seed})
	compiled, err := open("exec-on", false)
	if err != nil {
		return nil, err
	}
	defer compiled.Close()
	interp, err := open("exec-off", true)
	if err != nil {
		return nil, err
	}
	defer interp.Close()
	if err := compiled.LoadCollection(items.Clone()); err != nil {
		return nil, err
	}
	if err := interp.LoadCollection(items.Clone()); err != nil {
		return nil, err
	}

	cmp := &ExecCompare{Docs: docs, Repeats: opts.Repeats}
	var sumSpeedup, sumAllocRatio float64
	compiledQueries := 0
	for _, q := range workload.Horizontal("items") {
		point := ExecQueryPoint{ID: q.ID, Query: q.Text}
		// Warm both engines (fills the tree cache) and check the two
		// executors agree before timing anything.
		want, err := interp.Query(q.Text)
		if err != nil {
			return nil, fmt.Errorf("%s (interpreter): %w", q.ID, err)
		}
		got, err := compiled.Query(q.Text)
		if err != nil {
			return nil, fmt.Errorf("%s (compiled): %w", q.ID, err)
		}
		if err := sameItems(want, got); err != nil {
			return nil, fmt.Errorf("%s: executors disagree: %w", q.ID, err)
		}
		point.Items = len(got)
		if point.Compiled, err = measureExecSide(compiled, q.Text, opts.Repeats); err != nil {
			return nil, err
		}
		if point.Interpreted, err = measureExecSide(interp, q.Text, opts.Repeats); err != nil {
			return nil, err
		}
		if point.Compiled.ResponseNs > 0 {
			point.Speedup = float64(point.Interpreted.ResponseNs) / float64(point.Compiled.ResponseNs)
		}
		if point.Compiled.AllocsPerOp > 0 {
			point.AllocRatio = float64(point.Interpreted.AllocsPerOp) / float64(point.Compiled.AllocsPerOp)
		}
		sumSpeedup += point.Speedup
		sumAllocRatio += point.AllocRatio
		compiledQueries++
		cmp.Queries = append(cmp.Queries, point)
	}
	if compiledQueries > 0 {
		cmp.MeanSpeedup = sumSpeedup / float64(compiledQueries)
		cmp.MeanAllocRatio = sumAllocRatio / float64(compiledQueries)
	}

	// Streaming panel: the full-collection query at 1x and 10x the
	// document count. Materialized evaluation must hold every result item
	// (pinning each decoded tree); the streaming path hands out bounded
	// chunks whose trees become collectible as soon as the consumer moves
	// on, so its peak stays flat as the result grows.
	streamExpr, err := xquery.Parse(`collection("items")/Item`)
	if err != nil {
		return nil, err
	}
	for _, mult := range []int{1, 10} {
		n := docs * mult
		db, err := engine.Open(filepath.Join(dir, fmt.Sprintf("exec-stream-%dx.db", mult)), engine.Options{
			DisableIndexes: opts.DisableIndexes,
			DecodeWorkers:  opts.DecodeWorkers,
			// No tree cache here: a cache would pin the decoded trees
			// itself and mask the retention difference being measured.
		})
		if err != nil {
			return nil, err
		}
		col := toxgene.GenerateItems(toxgene.ItemsConfig{Docs: n, Seed: scale.Seed})
		if err := db.LoadCollection(col); err != nil {
			db.Close()
			return nil, err
		}
		point := ExecStreamPoint{Docs: n}

		// Materialized side: the interpreter's sequence pins every result
		// node's decoded tree, so live heap with the result held is the
		// memory the old path could not give back.
		base := liveHeap()
		res, err := xquery.Eval(streamExpr, db)
		if err != nil {
			db.Close()
			return nil, err
		}
		if h := liveHeap(); h > base {
			point.MaterializedPeakHeap = h - base
		}
		point.Items = len(res)
		runtime.KeepAlive(res)
		res = nil

		// Streamed side: chunks are discarded as they arrive; sampling at
		// chunk boundaries catches whatever the executor keeps in flight.
		base = liveHeap()
		peak := base
		chunks := 0
		_, err = db.StreamQueryExpr(streamExpr, func(xquery.Seq) error {
			if chunks++; chunks%8 == 0 {
				if h := liveHeap(); h > peak {
					peak = h
				}
			}
			return nil
		})
		db.Close()
		if err != nil {
			return nil, err
		}
		if h := peak; h > base {
			point.StreamedPeakHeap = h - base
		}
		cmp.Stream = append(cmp.Stream, point)
	}
	return cmp, nil
}

// liveHeap forces a collection and returns the surviving heap bytes.
func liveHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// measureExecSide times repeats executions of query on db and reports the
// averaged wall time plus the allocation deltas per execution.
func measureExecSide(db *engine.DB, query string, repeats int) (ExecSide, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var total time.Duration
	for i := 0; i < repeats; i++ {
		start := time.Now()
		if _, err := db.Query(query); err != nil {
			return ExecSide{}, err
		}
		total += time.Since(start)
	}
	runtime.ReadMemStats(&after)
	return ExecSide{
		ResponseNs:      total.Nanoseconds() / int64(repeats),
		AllocsPerOp:     (after.Mallocs - before.Mallocs) / uint64(repeats),
		AllocBytesPerOp: (after.TotalAlloc - before.TotalAlloc) / uint64(repeats),
	}, nil
}

// sameItems reports the first position where two result sequences differ
// under the string value of each item.
func sameItems(want, got xquery.Seq) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d items vs %d", len(got), len(want))
	}
	for i := range want {
		if xquery.ItemString(want[i]) != xquery.ItemString(got[i]) {
			return fmt.Errorf("item %d: %q vs %q", i, xquery.ItemString(got[i]), xquery.ItemString(want[i]))
		}
	}
	return nil
}

// PrintExec renders the comparison for the terminal run.
func PrintExec(w io.Writer, c *ExecCompare) {
	fmt.Fprintf(w, "\nCompiled executor vs interpreter — %d docs, %d repeats\n", c.Docs, c.Repeats)
	fmt.Fprintf(w, "  %-5s %-7s %-12s %-12s %-8s %-14s %-14s %s\n",
		"query", "items", "compiled", "interp", "speedup", "allocs/op", "allocs/op", "alloc ratio")
	for _, p := range c.Queries {
		fmt.Fprintf(w, "  %-5s %-7d %-12v %-12v %-8.2f %-14d %-14d %.1fx\n",
			p.ID, p.Items,
			time.Duration(p.Compiled.ResponseNs), time.Duration(p.Interpreted.ResponseNs), p.Speedup,
			p.Compiled.AllocsPerOp, p.Interpreted.AllocsPerOp, p.AllocRatio)
	}
	fmt.Fprintf(w, "  mean speedup %.2fx, mean alloc ratio %.1fx\n", c.MeanSpeedup, c.MeanAllocRatio)
	if len(c.Stream) > 0 {
		fmt.Fprintf(w, "  streaming peak heap (materialized vs streamed):\n")
		for _, s := range c.Stream {
			fmt.Fprintf(w, "    %6d docs, %6d items: %8.2f MB vs %.2f MB\n",
				s.Docs, s.Items,
				float64(s.MaterializedPeakHeap)/1e6, float64(s.StreamedPeakHeap)/1e6)
		}
	}
}
