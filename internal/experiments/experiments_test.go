package experiments

import (
	"strings"
	"testing"

	"partix/internal/partix"
	"partix/internal/toxgene"
	"partix/internal/workload"
	"partix/internal/xmltree"
)

func genItems(n int) *xmltree.Collection {
	return toxgene.GenerateItems(toxgene.ItemsConfig{Docs: n, Seed: 7})
}

// testScale keeps unit-test runs fast; the shapes are asserted by the
// benchmarks at larger scale.
var testScale = Scale{SmallItems: 120, LargeItems: 6, Articles: 8, StoreItems: 100, Seed: 7}

func testOpts(t *testing.T) Options {
	return Options{Dir: t.TempDir(), Repeats: 1}
}

func TestRunFig7aShape(t *testing.T) {
	p, err := RunFig7a(testScale, testOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Series) != 4 {
		t.Fatalf("series = %d, want centralized+2+4+8", len(p.Series))
	}
	if p.Series[0].Name != "centralized" {
		t.Fatalf("first series = %s", p.Series[0].Name)
	}
	for _, s := range p.Series {
		if len(s.Times) != 8 {
			t.Fatalf("%s: %d measurements", s.Name, len(s.Times))
		}
		for qid, m := range s.Times {
			if m.Response <= 0 {
				t.Fatalf("%s/%s: no response time", s.Name, qid)
			}
		}
	}
	// HQ1 matches the fragmentation predicate: routed in fragmented runs.
	if st := p.Series[3].Times["HQ1"].Strategy; st != partix.StrategyRouted {
		t.Errorf("HQ1 at 8 fragments: strategy %s", st)
	}
	// HQ8 is a count: composed as an aggregate when broadcast.
	if st := p.Series[3].Times["HQ8"].Strategy; st != partix.StrategyAggregate {
		t.Errorf("HQ8 at 8 fragments: strategy %s", st)
	}
}

func TestRunFig7cShape(t *testing.T) {
	p, err := RunFig7c(testScale, testOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Series) != 2 {
		t.Fatalf("series = %d", len(p.Series))
	}
	frag := p.Series[1]
	if frag.Times["VQ1"].Strategy != partix.StrategyRouted {
		t.Errorf("VQ1: %s", frag.Times["VQ1"].Strategy)
	}
	if frag.Times["VQ8"].Strategy != partix.StrategyReconstruct {
		t.Errorf("VQ8: %s", frag.Times["VQ8"].Strategy)
	}
}

func TestRunFig7dShape(t *testing.T) {
	p, err := RunFig7d(testScale, testOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Series) != 3 {
		t.Fatalf("series = %d", len(p.Series))
	}
	for _, s := range p.Series {
		if len(s.Times) != 11 {
			t.Fatalf("%s: %d measurements", s.Name, len(s.Times))
		}
	}
	// The -NT view must not exceed the -T view.
	for _, s := range p.Series {
		for qid, m := range s.Times {
			if m.NoTransmission() > m.Response {
				t.Fatalf("%s/%s: NT %v > T %v", s.Name, qid, m.NoTransmission(), m.Response)
			}
		}
	}
}

func TestRunSmallDB(t *testing.T) {
	p, err := RunSmallDB(testOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Series) != 4 {
		t.Fatalf("series = %d", len(p.Series))
	}
}

func TestRunHeadline(t *testing.T) {
	best, panels, err := RunHeadline(testScale, testOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 2 {
		t.Fatalf("panels = %d", len(panels))
	}
	if best.Speedup <= 0 || best.Query == "" {
		t.Fatalf("headline = %+v", best)
	}
}

func TestRunValueIndexShape(t *testing.T) {
	c, err := RunValueIndex(testScale, testOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Sweep) != 4 {
		t.Fatalf("sweep points = %d, want 4", len(c.Sweep))
	}
	for _, p := range c.Sweep {
		if p.Indexed.ResponseNs <= 0 || p.Baseline.ResponseNs <= 0 {
			t.Fatalf("point %v lacks timings: %+v", p.SelectivityPct, p)
		}
		// The baseline has no value index: a numeric range predicate
		// forces it to decode every document at every selectivity.
		if p.Baseline.DocsDecoded != int64(c.Docs) {
			t.Fatalf("baseline decoded %d of %d docs at %v%%", p.Baseline.DocsDecoded, c.Docs, p.SelectivityPct)
		}
		if p.Indexed.DocsDecoded > p.Baseline.DocsDecoded {
			t.Fatalf("indexed decoded more than baseline at %v%%: %+v", p.SelectivityPct, p)
		}
	}
	// At 1% selectivity the index must eliminate ≥5× the decodes.
	if r := c.Sweep[0].DecodeRatio; r < 5 {
		t.Fatalf("decode ratio at 1%% = %.1f, want ≥5", r)
	}
	if !c.CountIndexOnly {
		t.Fatal("count() was not answered index-only")
	}
	if !c.ExistsIndexOnly || c.ExistsDocsDecoded != 0 {
		t.Fatalf("exists() decoded %d docs (indexOnly=%v)", c.ExistsDocsDecoded, c.ExistsIndexOnly)
	}
	var sb strings.Builder
	PrintValueIndex(&sb, c)
	if !strings.Contains(sb.String(), "decode ratio") {
		t.Fatalf("print output malformed:\n%s", sb.String())
	}
}

func TestRunMixedRWShape(t *testing.T) {
	c, err := RunMixedRW(testScale, testOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Sides) != 5 {
		t.Fatalf("sides = %d, want 5", len(c.Sides))
	}
	for _, s := range c.Sides {
		if s.ReadP50Ns <= 0 || s.ReadP99Ns < s.ReadP50Ns || s.ReadMaxNs < s.ReadP99Ns {
			t.Fatalf("%s: inconsistent read percentiles: %+v", s.Name, s)
		}
		if !s.Writer && s.Writes != 0 {
			t.Fatalf("%s: read-only side reports %d writes", s.Name, s.Writes)
		}
	}
	// The non-durable writer sides must get writes through while reads run.
	for _, s := range c.Sides {
		if s.Writer && !s.DurableWAL && s.Writes == 0 {
			t.Fatalf("%s: writer completed no writes during the read window", s.Name)
		}
	}
	var sb strings.Builder
	PrintMixedRW(&sb, c)
	if !strings.Contains(sb.String(), "read p99") {
		t.Fatalf("print output malformed:\n%s", sb.String())
	}
}

func TestPrintPanel(t *testing.T) {
	p, err := RunSmallDB(testOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	PrintPanel(&sb, p)
	out := sb.String()
	for _, q := range workload.Horizontal("items") {
		if !strings.Contains(out, q.ID) {
			t.Fatalf("output lacks %s:\n%s", q.ID, out)
		}
	}
	if !strings.Contains(out, "centralized") {
		t.Fatal("output lacks series names")
	}
	var nt strings.Builder
	PrintPanelNT(&nt, p)
	if !strings.Contains(nt.String(), "without transmission") {
		t.Fatal("NT view missing")
	}
}

func TestMeasureQueryAveragesRepeats(t *testing.T) {
	dep := mustDeployItems(t)
	defer dep.Close()
	m, err := MeasureQuery(dep.System, `count(collection("items")/Item)`, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Response <= 0 || m.Items != 1 {
		t.Fatalf("measurement = %+v", m)
	}
}

func mustDeployItems(t *testing.T) *Deployment {
	t.Helper()
	dep, err := Deploy("m", genItems(60), nil, 0, Options{Dir: t.TempDir(), Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func TestSpeedup(t *testing.T) {
	a := Measurement{Response: 100}
	b := Measurement{Response: 25}
	if Speedup(a, b) != 4 {
		t.Fatal("speedup wrong")
	}
	if Speedup(a, Measurement{}) != 0 {
		t.Fatal("zero denominator not handled")
	}
}

func TestScaleMultiply(t *testing.T) {
	s := DefaultScale.Multiply(3)
	if s.SmallItems != DefaultScale.SmallItems*3 {
		t.Fatal("multiply wrong")
	}
	if DefaultScale.Multiply(0).SmallItems != DefaultScale.SmallItems {
		t.Fatal("multiply floor wrong")
	}
}
