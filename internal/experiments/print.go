package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// PrintPanel writes a panel as the paper presents it: one row per query,
// one column per configuration, response times plus speedup versus the
// first (centralized) series.
func PrintPanel(w io.Writer, p *Panel) {
	fmt.Fprintf(w, "%s\n%s\n\n", p.Title, strings.Repeat("=", len(p.Title)))
	printSeries(w, p, func(m Measurement) time.Duration { return m.Response })
	fmt.Fprintln(w)
}

// PrintPanelNT writes the panel using the without-transmission view
// (Figure 7(d)'s FragModeX-NT series).
func PrintPanelNT(w io.Writer, p *Panel) {
	title := p.Title + " — without transmission time"
	fmt.Fprintf(w, "%s\n%s\n\n", title, strings.Repeat("=", len(title)))
	printSeries(w, p, Measurement.NoTransmission)
	fmt.Fprintln(w)
}

func printSeries(w io.Writer, p *Panel, view func(Measurement) time.Duration) {
	fmt.Fprintf(w, "%-6s", "query")
	for _, s := range p.Series {
		fmt.Fprintf(w, " %22s", s.Name)
	}
	fmt.Fprintf(w, "  %s\n", "strategy / best speedup")
	for _, q := range p.Queries {
		fmt.Fprintf(w, "%-6s", q.ID)
		base := time.Duration(0)
		bestSpeedup := 0.0
		var strategy string
		for i, s := range p.Series {
			m, ok := s.Times[q.ID]
			if !ok {
				fmt.Fprintf(w, " %22s", "-")
				continue
			}
			d := view(m)
			if i == 0 {
				base = d
			} else {
				strategy = string(m.Strategy)
				if base > 0 && d > 0 {
					if sp := float64(base) / float64(d); sp > bestSpeedup {
						bestSpeedup = sp
					}
				}
			}
			fmt.Fprintf(w, " %22s", formatDuration(d))
		}
		fmt.Fprintf(w, "  %s", strategy)
		if bestSpeedup > 0 {
			fmt.Fprintf(w, " (%.1fx)", bestSpeedup)
		}
		fmt.Fprintln(w)
	}
}

// PrintEngineStats writes the panel's aggregated engine counters — the
// decode/prune/cache work all node engines did across every deployment
// the panel measured.
func PrintEngineStats(w io.Writer, p *Panel) {
	e := p.Engine
	fmt.Fprintf(w, "engine stats: queries=%d docs-decoded=%d docs-pruned=%d range-pruned=%d index-only=%d bytes-decoded=%d cache-hits=%d cache-misses=%d\n\n",
		e.Queries, e.DocsDecoded, e.DocsPruned, e.RangePruned, e.IndexOnlyHits, e.BytesDecoded, e.CacheHits, e.CacheMisses)
}

// PrintCSV writes a panel as machine-readable CSV: one row per (query,
// series) pair with the full timing decomposition, ready for plotting.
func PrintCSV(w io.Writer, p *Panel) {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	cw.Write([]string{
		"panel", "query", "class", "series", "strategy", "items",
		"response_us", "parallel_us", "transmission_us", "compose_us", "no_transmission_us",
	})
	for _, q := range p.Queries {
		for _, s := range p.Series {
			m, ok := s.Times[q.ID]
			if !ok {
				continue
			}
			cw.Write([]string{
				p.ID, q.ID, string(q.Class), s.Name, string(m.Strategy),
				strconv.Itoa(m.Items),
				strconv.FormatInt(m.Response.Microseconds(), 10),
				strconv.FormatInt(m.Parallel.Microseconds(), 10),
				strconv.FormatInt(m.Transmission.Microseconds(), 10),
				strconv.FormatInt(m.Compose.Microseconds(), 10),
				strconv.FormatInt(m.NoTransmission().Microseconds(), 10),
			})
		}
	}
}

func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
