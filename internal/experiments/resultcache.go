package experiments

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"partix/internal/cluster"
	"partix/internal/fragmentation"
	"partix/internal/obs"
	"partix/internal/partix"
	"partix/internal/toxgene"
	"partix/internal/workload"
	"partix/internal/xmltree"
	"partix/internal/xquery"
)

// ResultCacheCompare measures the coordinator result cache and admission
// control on the Figure 7(a) deployment. Three panels share one set of
// node engines:
//
//   - Hit vs cold: the HQ1–HQ8 mix timed with the cache off (every query
//     pays planning plus distributed execution) and then with the cache
//     primed (every query is answered from the coordinator's memory with
//     zero node round-trips). HitSpeedup = ColdNs/HitNs, gated at
//     resultCacheSpeedupFloor.
//   - Correctness under writes: a cache-enabled system and a cache-free
//     reference system share the same node engines; between rounds of
//     interleaved fragment writes both run the full mix and every result
//     multiset is compared. StaleServed counts mismatches and must be 0 —
//     the generation stamps must turn every write into a miss.
//   - Overload: with MaxInflight=1, a short queue and a short queue
//     timeout, a burst of concurrent queries must either be served or be
//     shed with a typed ErrOverloaded — never an untyped error, never an
//     unbounded queue.
type ResultCacheCompare struct {
	Docs      int `json:"docs"`
	Fragments int `json:"fragments"`
	Repeats   int `json:"repeats"`
	Queries   int `json:"queries"` // distinct queries in the mix

	ColdNs            int64   `json:"coldNs"` // mean per-query, cache off
	HitNs             int64   `json:"hitNs"`  // mean per-query, cache hit
	HitSpeedup        float64 `json:"hitSpeedup"`
	HitFasterThanCold bool    `json:"hitFasterThanCold"`
	NonCachedHits     int     `json:"nonCachedHits"` // timed hit-phase queries not served from cache (want 0)
	CacheEntries      int     `json:"cacheEntries"`  // entries after priming the mix
	CacheBytes        int64   `json:"cacheBytes"`    // accounted bytes after priming

	WriterRounds         int   `json:"writerRounds"`
	CheckedReads         int   `json:"checkedReads"`
	StaleServed          int   `json:"staleServed"` // cache-served results that differ from the reference (must be 0)
	HitsDuringWrites     int64 `json:"hitsDuringWrites"`
	InvalidationsOnWrite int64 `json:"invalidationsOnWrite"`

	OverloadSubmitted int  `json:"overloadSubmitted"`
	OverloadServed    int  `json:"overloadServed"`
	OverloadShed      int  `json:"overloadShed"`
	ShedTyped         bool `json:"shedTyped"` // every rejection matched partix.ErrOverloaded
}

// resultCacheSpeedupFloor is the acceptance floor for the hit-vs-cold
// panel: a cache hit must be at least this many times faster than cold
// distributed execution of the same query.
const resultCacheSpeedupFloor = 20.0

// resultCacheBudget is the byte budget the experiment grants the cache —
// generous against the mix's few-KB entries, so eviction never muddies
// the hit-rate panels (eviction behavior has its own unit tests).
const resultCacheBudget = 64 << 20

// RunResultCache measures the result cache and admission panels on an
// in-process 4-fragment horizontal deployment running the HQ1–HQ8 mix.
func RunResultCache(scale Scale, opts Options) (*ResultCacheCompare, error) {
	opts = opts.withDefaults()
	const fragments = 4
	docs := scale.SmallItems

	scheme, err := workload.HorizontalScheme("items", fragments)
	if err != nil {
		return nil, err
	}
	items := toxgene.GenerateItems(toxgene.ItemsConfig{Docs: docs, Seed: scale.Seed})
	d, err := Deploy("resultcache", items, scheme, fragmentation.FragModeSD, opts)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	sys := d.System

	queries := workload.Horizontal("items")
	cmp := &ResultCacheCompare{
		Docs:      docs,
		Fragments: fragments,
		Repeats:   opts.Repeats,
		Queries:   len(queries),
	}

	// Panel 1 — hit vs cold. Warm up once with the cache off so plans are
	// cached and trees paged in: "cold" means cold RESULT cache over an
	// otherwise steady-state system, which is the smallest (hardest)
	// baseline the hit path can be compared against.
	if err := runQueryMix(sys, queries); err != nil {
		return nil, err
	}
	iters := 2 * opts.Repeats
	if iters < 10 {
		iters = 10
	}
	coldT := make([][]time.Duration, len(queries))
	for it := 0; it < iters; it++ {
		for qi, q := range queries {
			start := time.Now()
			if _, err := sys.Query(q.Text); err != nil {
				return nil, fmt.Errorf("%s cold: %w", q.ID, err)
			}
			coldT[qi] = append(coldT[qi], time.Since(start))
		}
	}
	sys.SetResultCacheBytes(resultCacheBudget)
	if err := runQueryMix(sys, queries); err != nil { // priming pass: all misses, all populate
		return nil, err
	}
	cmp.CacheEntries = sys.ResultCacheSize()
	cmp.CacheBytes = sys.ResultCacheBytes()
	hitT := make([][]time.Duration, len(queries))
	for it := 0; it < iters; it++ {
		for qi, q := range queries {
			start := time.Now()
			res, err := sys.Query(q.Text)
			hitD := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("%s hit: %w", q.ID, err)
			}
			if !res.Cached {
				cmp.NonCachedHits++
			}
			hitT[qi] = append(hitT[qi], hitD)
		}
	}
	var coldSum, hitSum time.Duration
	for qi := range queries {
		coldSum += medianDuration(coldT[qi])
		hitSum += medianDuration(hitT[qi])
	}
	cmp.ColdNs = coldSum.Nanoseconds() / int64(len(queries))
	cmp.HitNs = hitSum.Nanoseconds() / int64(len(queries))
	if cmp.HitNs > 0 {
		cmp.HitSpeedup = float64(cmp.ColdNs) / float64(cmp.HitNs)
	}
	cmp.HitFasterThanCold = cmp.NonCachedHits == 0 && cmp.HitSpeedup >= resultCacheSpeedupFloor

	// Panel 2 — correctness under writes. A reference coordinator shares
	// the very same node engines but runs with the cache off, so after
	// every write round the cache-enabled system's answers can be checked
	// against ground truth computed fresh from the same data.
	ref := partix.NewSystem(*opts.Cost)
	for _, name := range sys.Nodes() {
		ref.AddNode(sys.Node(name))
	}
	meta := sys.Catalog().Lookup("items")
	if meta == nil {
		return nil, errors.New("items not in catalog")
	}
	err = ref.Catalog().Register(&partix.CollectionMeta{
		Name: "items", Scheme: scheme, Placement: meta.Placement, Mode: fragmentation.FragModeSD,
	})
	if err != nil {
		return nil, err
	}
	// Statistics must be refetched per query on both sides: the cache
	// system so a fragment write invalidates immediately (the bound the
	// panel asserts), the reference so its planner sees the new documents.
	sys.SetStatsTTL(0)
	ref.SetStatsTTL(0)

	rounds := 2 * opts.Repeats
	if rounds < 6 {
		rounds = 6
	}
	cmp.WriterRounds = rounds
	hits0 := obs.CoordResultCacheHits.Value()
	inv0 := obs.CoordResultCacheInvalidations.Value()
	writeSections := []string{"CD", "DVD", "Book", "Game"}
	for r := 0; r < rounds; r++ {
		// One write per round, rotating across fragments. The document
		// satisfies its fragment's predicate, so fragmentation correctness
		// holds and both coordinators must agree on every query.
		sec := writeSections[r%len(writeSections)]
		frag, node := fragmentFor(scheme, meta.Placement, sec)
		if frag == "" {
			return nil, fmt.Errorf("no fragment accepts Section=%q", sec)
		}
		doc := xmltree.MustParseString(fmt.Sprintf("w%03d", r), fmt.Sprintf(
			`<Item id="%d"><Code>W%03d</Code><Name>written%d</Name><Description>a good write</Description><Section>%s</Section></Item>`,
			1_000_000+r, r, r, sec))
		if err := sys.Node(node).StoreDocument(meta.NodeCollection(frag), doc); err != nil {
			return nil, fmt.Errorf("round %d write: %w", r, err)
		}
		for _, q := range queries {
			got, err := sys.Query(q.Text)
			if err != nil {
				return nil, fmt.Errorf("round %d %s cached: %w", r, q.ID, err)
			}
			want, err := ref.Query(q.Text)
			if err != nil {
				return nil, fmt.Errorf("round %d %s reference: %w", r, q.ID, err)
			}
			cmp.CheckedReads++
			if !sameItemMultiset(got.Items, want.Items) {
				cmp.StaleServed++
			}
		}
		// Re-read the mix so the next round's write hits a populated
		// cache — that second read is the one a stale cache would poison.
		if err := runQueryMix(sys, queries); err != nil {
			return nil, err
		}
	}
	cmp.HitsDuringWrites = obs.CoordResultCacheHits.Value() - hits0
	cmp.InvalidationsOnWrite = obs.CoordResultCacheInvalidations.Value() - inv0

	// Panel 3 — overload. A third coordinator wraps the same nodes in a
	// fixed per-query delay, standing in for nodes under load: the delay
	// guarantees the burst's queries genuinely overlap (a fast local
	// engine on a small host can serialize a burst so completely that
	// nothing ever queues). Cache off (hits would bypass the admission
	// queue), one execution slot, a two-deep queue and a short wait: the
	// burst must split cleanly into served and typed-shed, with nothing
	// lost and nothing queued without bound.
	ov := partix.NewSystem(*opts.Cost)
	for _, name := range sys.Nodes() {
		ov.AddNode(&slowNode{Driver: sys.Node(name), delay: 10 * time.Millisecond})
	}
	err = ov.Catalog().Register(&partix.CollectionMeta{
		Name: "items", Scheme: scheme, Placement: meta.Placement, Mode: fragmentation.FragModeSD,
	})
	if err != nil {
		return nil, err
	}
	ov.SetMaxInflight(1)
	ov.SetMaxQueued(2)
	ov.SetQueueTimeout(2 * time.Millisecond)
	const burst = 32
	overloadQuery := queries[0].Text
	var wg sync.WaitGroup
	var mu sync.Mutex
	var untyped error
	served, shed := 0, 0
	cmp.OverloadSubmitted = burst
	start := make(chan struct{})
	for g := 0; g < burst; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, err := ov.Query(overloadQuery)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				served++
			case errors.Is(err, partix.ErrOverloaded):
				shed++
			default:
				shed++
				if untyped == nil {
					untyped = err
				}
			}
		}()
	}
	close(start)
	wg.Wait()
	cmp.OverloadServed = served
	cmp.OverloadShed = shed
	cmp.ShedTyped = untyped == nil && served+shed == burst
	if untyped != nil {
		return nil, fmt.Errorf("overload rejection not typed ErrOverloaded: %w", untyped)
	}
	return cmp, nil
}

// slowNode wraps a node driver in a fixed per-query delay, standing in
// for a node under load. Only the core Driver surface is forwarded, so
// the wrapped node advertises no streaming or statistics extensions.
type slowNode struct {
	cluster.Driver
	delay time.Duration
}

func (n *slowNode) ExecuteQuery(q string) (xquery.Seq, error) {
	time.Sleep(n.delay)
	return n.Driver.ExecuteQuery(q)
}

// runQueryMix runs every query in the mix once.
func runQueryMix(sys *partix.System, queries []workload.Query) error {
	for _, q := range queries {
		if _, err := sys.Query(q.Text); err != nil {
			return fmt.Errorf("%s: %w", q.ID, err)
		}
	}
	return nil
}

// fragmentFor returns the fragment (and its node) whose predicate accepts
// an Item with the given Section, by probing each fragment's predicate
// against a one-item collection.
func fragmentFor(scheme *fragmentation.Scheme, placement map[string]string, section string) (string, string) {
	probe := xmltree.NewCollection("probe")
	probe.Add(xmltree.MustParseString("probe", fmt.Sprintf(
		`<Item id="0"><Section>%s</Section></Item>`, section)))
	for _, f := range scheme.Fragments {
		out, err := f.Apply(probe)
		if err == nil && len(out.Docs) == 1 {
			return f.Name, placement[f.Name]
		}
	}
	return "", ""
}

// sameItemMultiset compares two result multisets order-insensitively
// (unlike exec's order-sensitive sameItems): the cached entry preserves
// its execution's merge order, which a replanned reference run need not
// reproduce.
func sameItemMultiset(a, b xquery.Seq) bool {
	if len(a) != len(b) {
		return false
	}
	as := make([]string, len(a))
	bs := make([]string, len(b))
	for i := range a {
		as[i] = xquery.ItemString(a[i])
	}
	for i := range b {
		bs[i] = xquery.ItemString(b[i])
	}
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// PrintResultCache renders the comparison for the bench's stdout report.
func PrintResultCache(w io.Writer, c *ResultCacheCompare) {
	fmt.Fprintf(w, "\nResult cache + admission (HQ1–HQ8 mix, %d docs, %d fragments, %d repeats):\n",
		c.Docs, c.Fragments, c.Repeats)
	fmt.Fprintf(w, "  cold execution  %12s/query (median)\n", time.Duration(c.ColdNs))
	fmt.Fprintf(w, "  cache hit       %12s/query (median)  %.0fx faster (floor %.0fx, met: %t)\n",
		time.Duration(c.HitNs), c.HitSpeedup, resultCacheSpeedupFloor, c.HitFasterThanCold)
	fmt.Fprintf(w, "  cache after priming: %d entries, %d bytes accounted\n", c.CacheEntries, c.CacheBytes)
	fmt.Fprintf(w, "  concurrent-writer rounds: %d  checked reads: %d  stale served: %d  (hits during writes: %d, invalidations: %d)\n",
		c.WriterRounds, c.CheckedReads, c.StaleServed, c.HitsDuringWrites, c.InvalidationsOnWrite)
	fmt.Fprintf(w, "  overload burst: %d submitted = %d served + %d shed, all rejections typed: %t\n",
		c.OverloadSubmitted, c.OverloadServed, c.OverloadShed, c.ShedTyped)
}
