// Package experiments reproduces the paper's evaluation (Section 5,
// Figure 7): it generates the four test databases with the ToXgene
// substitute, deploys them centralized and fragmented over in-process
// PartiX systems, runs the workloads with the paper's timing methodology
// (repeat each query, discard the first execution, average the rest), and
// reports response times per query and configuration.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"partix/internal/cluster"
	"partix/internal/engine"
	"partix/internal/fragmentation"
	"partix/internal/partix"
	"partix/internal/workload"
	"partix/internal/xmltree"
)

// Measurement is the timing of one query under one configuration.
type Measurement struct {
	Response     time.Duration // slowest site + transmission + composition
	Parallel     time.Duration // slowest site only
	Transmission time.Duration
	Compose      time.Duration
	Strategy     partix.Strategy
	Items        int
	// Bytes is the serialized size of the partial results shipped to the
	// coordinator (the "bytes on wire" of the cost model).
	Bytes int
	// FirstItem is the time until the first result item reached the
	// coordinator; zero for monolithic (non-streamed) executions.
	FirstItem time.Duration
	// Frames is the number of result batches received (streamed runs).
	Frames int
}

// NoTransmission is the "-NT" view of a measurement (Figure 7(d) reports
// both).
func (m Measurement) NoTransmission() time.Duration { return m.Parallel + m.Compose }

// Series is one configuration's column: query ID → measurement.
type Series struct {
	Name  string
	Times map[string]Measurement
}

// Panel is one reproduced figure panel.
type Panel struct {
	ID      string
	Title   string
	Queries []workload.Query
	Series  []Series
	// Engine sums the node engines' counters over every deployment the
	// panel ran (collected just before each teardown), so drivers can
	// report decode/prune/cache work alongside the timings.
	Engine engine.Stats
}

// Deployment is a runnable system plus its teardown.
type Deployment struct {
	System  *partix.System
	cleanup []func() error
}

// EngineStats sums the engine counters of every local node in the
// deployment.
func (d *Deployment) EngineStats() engine.Stats {
	var total engine.Stats
	for _, name := range d.System.Nodes() {
		if node, ok := d.System.Node(name).(*cluster.LocalNode); ok {
			total.Add(node.DB().Stats())
		}
	}
	return total
}

// Close releases the deployment's engines.
func (d *Deployment) Close() {
	for i := len(d.cleanup) - 1; i >= 0; i-- {
		d.cleanup[i]()
	}
}

// Options configure a run.
type Options struct {
	// Dir is the working directory for node stores; empty uses a temp dir.
	Dir string
	// Repeats is how many timed executions are averaged after the
	// discarded warm-up run (the paper uses 10; benches use fewer).
	Repeats int
	// Cost is the communication model (GigabitEthernet by default).
	Cost *cluster.CostModel
	// DisableIndexes turns off index-assisted candidate pruning on every
	// node, approximating a scan-bound DBMS for plain value predicates
	// (the 2005-era eXist baseline benefits less from value indexes than
	// this engine does; see EXPERIMENTS.md).
	DisableIndexes bool
	// DisableValueIndex turns off only the path summary and typed value
	// index, keeping the text/element indexes — the baseline the
	// valueindex experiment compares against.
	DisableValueIndex bool
	// DecodeWorkers sets the engine's decode worker pool on every node.
	// It defaults to 1 — the paper-faithful sequential path — unlike the
	// engine's own default of GOMAXPROCS, because published series must
	// keep the per-document decode cost on the measured critical path.
	DecodeWorkers int
	// TreeCacheBytes enables each node's decoded-tree cache with the
	// given byte budget; 0 keeps it off, which every published series
	// requires (a warm cache would hide the parse cost the paper
	// measures).
	TreeCacheBytes int64
}

func (o Options) withDefaults() Options {
	if o.Repeats <= 0 {
		o.Repeats = 3
	}
	if o.Cost == nil {
		o.Cost = &cluster.GigabitEthernet
	}
	if o.DecodeWorkers == 0 {
		o.DecodeWorkers = 1
	}
	return o
}

func (o Options) workDir(label string) (string, func() error, error) {
	if o.Dir != "" {
		dir := filepath.Join(o.Dir, label)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", nil, err
		}
		return dir, func() error { return os.RemoveAll(dir) }, nil
	}
	dir, err := os.MkdirTemp("", "partix-"+label+"-")
	if err != nil {
		return "", nil, err
	}
	return dir, func() error { return os.RemoveAll(dir) }, nil
}

// Deploy builds a system with n nodes, publishes the collection under the
// given scheme (nil = centralized on node0) and returns the deployment.
func Deploy(label string, c *xmltree.Collection, scheme *fragmentation.Scheme,
	mode fragmentation.MaterializeMode, opts Options) (*Deployment, error) {
	opts = opts.withDefaults()
	dir, rmDir, err := opts.workDir(label)
	if err != nil {
		return nil, err
	}
	d := &Deployment{System: partix.NewSystem(*opts.Cost)}
	d.cleanup = append(d.cleanup, rmDir)

	nodes := 1
	if scheme != nil {
		nodes = len(scheme.Fragments)
	}
	for i := 0; i < nodes; i++ {
		db, err := engine.Open(filepath.Join(dir, fmt.Sprintf("node%d.db", i)), engine.Options{
			DisableIndexes:    opts.DisableIndexes,
			DisableValueIndex: opts.DisableValueIndex,
			DecodeWorkers:     opts.DecodeWorkers,
			TreeCacheBytes:    opts.TreeCacheBytes,
		})
		if err != nil {
			d.Close()
			return nil, err
		}
		d.cleanup = append(d.cleanup, db.Close)
		d.System.AddNode(cluster.NewLocalNode(fmt.Sprintf("node%d", i), db))
	}

	placement := map[string]string{"": "node0"}
	if scheme != nil {
		placement = map[string]string{}
		for i, f := range scheme.Fragments {
			placement[f.Name] = fmt.Sprintf("node%d", i)
		}
	}
	if err := d.System.Publish(c, scheme, placement, partix.PublishOptions{Mode: mode}); err != nil {
		d.Close()
		return nil, err
	}
	return d, nil
}

// MeasureQuery runs one query with the paper's methodology: one discarded
// warm-up, then repeats timed executions averaged.
func MeasureQuery(sys *partix.System, query string, repeats int) (Measurement, error) {
	warm, err := sys.Query(query)
	if err != nil {
		return Measurement{}, err
	}
	var m Measurement
	m.Strategy = warm.Strategy
	m.Items = len(warm.Items)
	frames := 0
	for i := 0; i < repeats; i++ {
		res, err := sys.Query(query)
		if err != nil {
			return Measurement{}, err
		}
		m.Response += res.ResponseTime()
		m.Parallel += res.ParallelTime
		m.Transmission += res.TransmissionTime
		m.Compose += res.ComposeTime
		m.FirstItem += res.FirstItemLatency
		m.Bytes += resultBytes(res)
		frames += res.Frames
	}
	n := time.Duration(repeats)
	m.Response /= n
	m.Parallel /= n
	m.Transmission /= n
	m.Compose /= n
	m.FirstItem /= n
	m.Bytes /= repeats
	m.Frames = frames / repeats
	return m, nil
}

// resultBytes is the serialized size of the partial results a query
// shipped, whichever path produced them.
func resultBytes(res *partix.QueryResult) int {
	if res.StreamedBytes > 0 {
		return res.StreamedBytes
	}
	total := 0
	for _, sub := range res.Sub {
		total += sub.ResultBytes
	}
	return total
}

// MeasureWorkload runs a whole query set against a deployment.
func MeasureWorkload(sys *partix.System, name string, set []workload.Query, repeats int) (Series, error) {
	s := Series{Name: name, Times: map[string]Measurement{}}
	for _, q := range set {
		m, err := MeasureQuery(sys, q.Text, repeats)
		if err != nil {
			return s, fmt.Errorf("%s %s: %w", name, q.ID, err)
		}
		s.Times[q.ID] = m
	}
	return s, nil
}

// Speedup returns how much faster b answered the query than a
// (a.Response / b.Response).
func Speedup(a, b Measurement) float64 {
	if b.Response <= 0 {
		return 0
	}
	return float64(a.Response) / float64(b.Response)
}
