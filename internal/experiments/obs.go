package experiments

import (
	"fmt"
	"io"
	"time"

	"partix/internal/fragmentation"
	"partix/internal/obs"
	"partix/internal/toxgene"
	"partix/internal/workload"
)

// ObsCompare quantifies what the observability layer costs on the query
// hot path: the same broadcast query measured with the metrics registry
// disabled, enabled (the default), and enabled with distributed tracing.
// Durations are averaged wall-clock nanoseconds per query; the overhead
// percentages are relative to the disabled baseline. The counters are
// atomic increments, so EnabledPct should be ~0–2%; tracing adds the
// span bookkeeping and trace-tree assembly on top.
type ObsCompare struct {
	Query      string  `json:"query"`
	Docs       int     `json:"docs"`
	Fragments  int     `json:"fragments"`
	Repeats    int     `json:"repeats"`
	DisabledNs int64   `json:"disabledNs"`
	EnabledNs  int64   `json:"enabledNs"`
	TracedNs   int64   `json:"tracedNs"`
	EnabledPct float64 `json:"enabledPct"`
	TracedPct  float64 `json:"tracedPct"`
}

// RunObs measures the instrumentation overhead on an in-process
// horizontal deployment: every sub-query crosses the engine, storage and
// cluster instrumentation points, so the comparison covers the whole
// coordinator-side hot path.
func RunObs(scale Scale, opts Options) (*ObsCompare, error) {
	opts = opts.withDefaults()
	const fragments = 3
	docs := scale.SmallItems

	scheme, err := workload.HorizontalScheme("items", fragments)
	if err != nil {
		return nil, err
	}
	items := toxgene.GenerateItems(toxgene.ItemsConfig{Docs: docs, Seed: scale.Seed})
	d, err := Deploy("obs", items, scheme, fragmentation.FragModeSD, opts)
	if err != nil {
		return nil, err
	}
	defer d.Close()

	cmp := &ObsCompare{
		Query:     `for $i in collection("items")/Item where contains($i/Description, "good") return $i/Code`,
		Docs:      docs,
		Fragments: fragments,
		Repeats:   opts.Repeats,
	}
	measure := func() (int64, error) {
		if _, err := d.System.Query(cmp.Query); err != nil { // discarded warm-up
			return 0, err
		}
		var total time.Duration
		for i := 0; i < opts.Repeats; i++ {
			start := time.Now()
			if _, err := d.System.Query(cmp.Query); err != nil {
				return 0, err
			}
			total += time.Since(start)
		}
		return (total / time.Duration(opts.Repeats)).Nanoseconds(), nil
	}

	obs.SetEnabled(false)
	cmp.DisabledNs, err = measure()
	obs.SetEnabled(true) // restore the default before any error return
	if err != nil {
		return nil, err
	}
	if cmp.EnabledNs, err = measure(); err != nil {
		return nil, err
	}
	d.System.SetTracing(true)
	cmp.TracedNs, err = measure()
	d.System.SetTracing(false)
	if err != nil {
		return nil, err
	}
	cmp.EnabledPct = overheadPct(cmp.DisabledNs, cmp.EnabledNs)
	cmp.TracedPct = overheadPct(cmp.DisabledNs, cmp.TracedNs)
	return cmp, nil
}

// overheadPct is the relative cost of v over the baseline, in percent.
func overheadPct(base, v int64) float64 {
	if base <= 0 {
		return 0
	}
	return float64(v-base) / float64(base) * 100
}

// PrintObs renders the comparison for the terminal run.
func PrintObs(w io.Writer, c *ObsCompare) {
	fmt.Fprintf(w, "\nObservability overhead — %d docs, %d fragments, %d repeats\n",
		c.Docs, c.Fragments, c.Repeats)
	fmt.Fprintf(w, "  query: %s\n", c.Query)
	fmt.Fprintf(w, "  metrics off      %12v\n", time.Duration(c.DisabledNs))
	fmt.Fprintf(w, "  metrics on       %12v  (%+.2f%%)\n", time.Duration(c.EnabledNs), c.EnabledPct)
	fmt.Fprintf(w, "  metrics + trace  %12v  (%+.2f%%)\n", time.Duration(c.TracedNs), c.TracedPct)
}
