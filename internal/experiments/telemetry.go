package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"partix/internal/design"
	"partix/internal/fragmentation"
	"partix/internal/obs"
	"partix/internal/partix"
	"partix/internal/toxgene"
	"partix/internal/workload"
	"partix/internal/xquery"
)

// TelemetryCompare quantifies what workload telemetry — the query flight
// recorder plus the workload profiler — costs on the Figure 7(a) query
// mix, and whether the mined profile actually reflects the mix. OffNs
// and OnNs are median wall-clock nanoseconds per query with telemetry
// ablated and enabled (context; their difference sits below wall-clock
// noise). TelemetryNs is the directly timed per-query telemetry work,
// and OverheadPct = TelemetryNs/OffNs is gated against the 2% budget —
// an upper bound on the true overhead. ProfileMatches is the
// end-to-end assertion: after a clean profiled run of the HQ1–HQ8 mix
// over 4 fragments, the per-collection query counts, the top-K predicate
// counts, and the per-fragment heat all match what the planner says the
// mix does, and the profile round-trips into internal/design workload
// queries.
type TelemetryCompare struct {
	Docs            int      `json:"docs"`
	Fragments       int      `json:"fragments"`
	Repeats         int      `json:"repeats"`
	Queries         int      `json:"queries"` // distinct queries in the mix
	OffNs           int64    `json:"offNs"`
	OnNs            int64    `json:"onNs"`
	TelemetryNs     int64    `json:"telemetryNs"`
	OverheadPct     float64  `json:"overheadPct"`
	WithinBudget    bool     `json:"withinBudget"`
	ProfileMatches  bool     `json:"profileMatches"`
	ProfileNotes    []string `json:"profileNotes,omitempty"`
	RecorderRecords int64    `json:"recorderRecords"`
	DesignQueries   int      `json:"designQueries"`
}

// telemetryOverheadBudgetPct is the acceptance ceiling for the recorder
// + profiler cost on the query mix.
const telemetryOverheadBudgetPct = 2.0

// RunTelemetry measures the telemetry ablation on an in-process
// 4-fragment horizontal deployment running the full HQ1–HQ8 mix, then
// verifies the mined workload profile against the planner's own view of
// that mix.
func RunTelemetry(scale Scale, opts Options) (*TelemetryCompare, error) {
	opts = opts.withDefaults()
	const fragments = 4
	docs := scale.SmallItems

	scheme, err := workload.HorizontalScheme("items", fragments)
	if err != nil {
		return nil, err
	}
	items := toxgene.GenerateItems(toxgene.ItemsConfig{Docs: docs, Seed: scale.Seed})
	d, err := Deploy("telemetry", items, scheme, fragmentation.FragModeSD, opts)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	sys := d.System

	queries := workload.Horizontal("items")
	cmp := &TelemetryCompare{
		Docs:      docs,
		Fragments: fragments,
		Repeats:   opts.Repeats,
		Queries:   len(queries),
	}
	runMix := func(reps int) error {
		for r := 0; r < reps; r++ {
			for _, q := range queries {
				if _, err := sys.Query(q.Text); err != nil {
					return fmt.Errorf("%s: %w", q.ID, err)
				}
			}
		}
		return nil
	}

	// Warm-up with telemetry ablated: plans land in the cache, trees in
	// the OS page cache, so the timed passes compare steady states.
	sys.SetTelemetry(false)
	if err := runMix(1); err != nil {
		sys.SetTelemetry(true)
		return nil, err
	}
	// The telemetry cost per query is microseconds against millisecond
	// queries — one to two orders of magnitude below the wall-clock noise
	// of a shared machine, where even interleaved paired medians swing a
	// few percent run to run. So the ablation medians below are context,
	// and the budget verdict comes from timing the added work DIRECTLY:
	// the exact sequence a recorded query executes (trace-ID generation,
	// sampling decision, record construction and publication, profiler
	// path/predicate observation, one heat observation per fragment) runs
	// in a tight loop against throwaway sinks, giving a per-query
	// telemetry cost at nanosecond resolution. That cost over the ablated
	// per-query median is an upper bound on the true overhead: the real
	// system also amortizes key extraction into the plan cache.
	iters := 2 * opts.Repeats
	if iters < 10 {
		iters = 10
	}
	offT := make([][]time.Duration, len(queries))
	onT := make([][]time.Duration, len(queries))
	for it := 0; it < iters; it++ {
		runtime.GC()
		order := []bool{false, true}
		if it%2 == 1 {
			order = []bool{true, false}
		}
		for _, on := range order {
			sys.SetTelemetry(on)
			for qi, q := range queries {
				start := time.Now()
				_, err := sys.Query(q.Text)
				d := time.Since(start)
				if err != nil {
					sys.SetTelemetry(true)
					return nil, fmt.Errorf("%s: %w", q.ID, err)
				}
				if on {
					onT[qi] = append(onT[qi], d)
				} else {
					offT[qi] = append(offT[qi], d)
				}
			}
		}
	}
	sys.SetTelemetry(true)
	var offSum, onSum time.Duration
	for qi := range queries {
		offSum += medianDuration(offT[qi])
		onSum += medianDuration(onT[qi])
	}
	cmp.OffNs = offSum.Nanoseconds() / int64(len(queries))
	cmp.OnNs = onSum.Nanoseconds() / int64(len(queries))
	cmp.TelemetryNs = timeTelemetryWork(fragments)
	cmp.OverheadPct = float64(cmp.TelemetryNs) / float64(cmp.OffNs) * 100
	cmp.WithinBudget = cmp.OverheadPct <= telemetryOverheadBudgetPct

	// Profile assertion on a clean slate: reset the profiler, run the mix
	// once more profiled, and check the mined profile against the
	// planner's own account of the same mix.
	sys.Profiler().Reset()
	if err := runMix(opts.Repeats); err != nil {
		return nil, err
	}
	cmp.ProfileNotes = verifyProfile(sys, queries, opts.Repeats, fragments)
	cmp.ProfileMatches = len(cmp.ProfileNotes) == 0
	cmp.RecorderRecords, _ = sys.Recorder().Stats()

	prof := sys.WorkloadProfile()
	synth := design.WorkloadFromProfile(prof, "items")
	for _, wq := range synth {
		if _, err := xquery.Parse(wq.Text); err != nil {
			cmp.ProfileMatches = false
			cmp.ProfileNotes = append(cmp.ProfileNotes,
				fmt.Sprintf("synthesized design query does not parse: %q: %v", wq.Text, err))
		}
	}
	cmp.DesignQueries = len(synth)
	if cmp.DesignQueries == 0 {
		cmp.ProfileMatches = false
		cmp.ProfileNotes = append(cmp.ProfileNotes, "profile yielded no design workload queries")
	}
	return cmp, nil
}

// medianDuration returns the sample median by sorted rank.
func medianDuration(s []time.Duration) time.Duration {
	return time.Duration(percentileNs(s, 0.5))
}

// timeTelemetryWork measures, against throwaway sinks, the per-query
// cost of everything the coordinator adds to a query when telemetry is
// enabled: a fresh trace ID, the sampling decision, building and
// publishing the flight record, and the profiler's query and
// per-fragment observations.
func timeTelemetryWork(fragments int) int64 {
	rec := obs.NewFlightRecorder(0)
	rec.SetSlowThreshold(100 * time.Millisecond)
	prof := obs.NewWorkloadProfiler(0)
	paths := []string{"/Item/Section"}
	preds := []string{`/Item/Section = "CD"`, `contains(/Item/Description, "good")`}
	fragNames := make([]string, fragments)
	for i := range fragNames {
		fragNames[i] = fmt.Sprintf("items_f%d", i)
	}
	one := func() {
		tag := obs.NewTraceID()
		prof.ObserveQuery("items", paths, preds)
		for _, f := range fragNames {
			prof.ObserveFragment("items", f, 0, 4096, 0.001)
		}
		if !rec.ShouldRecord(4*time.Millisecond, false) {
			return
		}
		r := &obs.QueryRecord{
			UnixNano:   time.Now().UnixNano(),
			TraceID:    tag,
			Query:      `for $i in collection("items")/Item where $i/Section = "CD" return $i/Name`,
			Strategy:   "parallel",
			DurationNs: int64(4 * time.Millisecond),
			PlanNs:     int64(40 * time.Microsecond),
			Items:      128,
			Bytes:      65536,
			PlanCached: true,
			Fragments:  make([]obs.FragmentTiming, 0, fragments),
		}
		for _, f := range fragNames {
			r.Fragments = append(r.Fragments, obs.FragmentTiming{
				Fragment: f, ElapsedNs: int64(time.Millisecond), Items: 32, Bytes: 16384,
			})
		}
		rec.Record(r)
	}
	one() // warm the sinks' maps and the allocator
	const n = 20000
	start := time.Now()
	for i := 0; i < n; i++ {
		one()
	}
	return time.Since(start).Nanoseconds() / n
}

// verifyProfile checks the mined profile against the HQ mix as the
// planner executed it, returning one note per mismatch (empty = match).
func verifyProfile(sys *partix.System, queries []workload.Query, repeats, fragments int) []string {
	var notes []string
	prof := sys.WorkloadProfile()

	var items *obs.CollectionWorkload
	for i := range prof.Collections {
		if prof.Collections[i].Collection == "items" {
			items = &prof.Collections[i]
		}
	}
	if items == nil {
		return []string{"profile has no entry for collection items"}
	}
	if want := int64(len(queries) * repeats); items.Queries != want {
		notes = append(notes, fmt.Sprintf("items query count = %d, want %d", items.Queries, want))
	}
	predCount := func(key string) int64 {
		for _, kc := range items.Predicates {
			if kc.Key == key {
				return kc.Count
			}
		}
		return 0
	}
	// HQ1 and HQ7 filter on Section = "CD", HQ5 and HQ8 probe
	// contains(Description, "good"), HQ2 is the Code point lookup — the
	// mined top-K predicate counts must reproduce those multiplicities.
	for key, want := range map[string]int64{
		`/Item/Section = "CD"`:                int64(2 * repeats),
		`contains(/Item/Description, "good")`: int64(2 * repeats),
		`/Item/Code = "I000007"`:              int64(repeats),
	} {
		if got := predCount(key); got != want {
			notes = append(notes, fmt.Sprintf("predicate %s count = %d, want %d", key, got, want))
		}
	}
	deepPath := false
	for _, kc := range items.Paths {
		if strings.HasPrefix(kc.Key, "/Item/") {
			deepPath = true
		}
	}
	if !deepPath {
		notes = append(notes, "no /Item/* path key mined (expected at least the HQ4 exists probe)")
	}

	// Fragment heat must agree with the planner's own routing of the mix:
	// each planned sub-query step contributes one observation to its
	// fragment, so the heat counts are fully determined by the plans
	// (routed queries heat one fragment, broadcasts heat all four,
	// statistics-skipped fragments stay cold).
	expected := map[string]int64{}
	for _, q := range queries {
		plan, err := sys.Explain(q.Text)
		if err != nil {
			return append(notes, fmt.Sprintf("explain %s: %v", q.ID, err))
		}
		for _, st := range plan.Steps {
			if st.Query == "" {
				continue // reconstruction fetch, not a profiled sub-query
			}
			expected[st.Fragment] += int64(repeats)
		}
	}
	heat := map[string]obs.FragmentHeat{}
	for _, h := range prof.Fragments {
		if h.Collection == "items" {
			heat[h.Fragment] = h
		}
	}
	if len(heat) != fragments {
		notes = append(notes, fmt.Sprintf("profile heat covers %d fragments, want %d", len(heat), fragments))
	}
	for frag, want := range expected {
		h, ok := heat[frag]
		if !ok {
			notes = append(notes, fmt.Sprintf("fragment %s: no heat entry, want %d queries", frag, want))
			continue
		}
		if h.Queries != want {
			notes = append(notes, fmt.Sprintf("fragment %s: heat queries = %d, want %d", frag, h.Queries, want))
		}
		var bucketSum int64
		for _, c := range h.LatencyBuckets {
			bucketSum += c
		}
		if bucketSum != h.Queries {
			notes = append(notes, fmt.Sprintf("fragment %s: latency bucket sum %d != queries %d", frag, bucketSum, h.Queries))
		}
	}
	for frag := range heat {
		if _, ok := expected[frag]; !ok {
			notes = append(notes, fmt.Sprintf("fragment %s: heat entry but the planner never routes there", frag))
		}
	}
	return notes
}

// PrintTelemetry renders the comparison for the bench's stdout report.
func PrintTelemetry(w io.Writer, c *TelemetryCompare) {
	fmt.Fprintf(w, "Telemetry overhead (HQ1–HQ8 mix, %d docs, %d fragments, %d repeats):\n",
		c.Docs, c.Fragments, c.Repeats)
	fmt.Fprintf(w, "  recorder+profiler off  %12s/query (median)\n", time.Duration(c.OffNs))
	fmt.Fprintf(w, "  recorder+profiler on   %12s/query (median)\n", time.Duration(c.OnNs))
	fmt.Fprintf(w, "  telemetry work         %12s/query  (+%.3f%% of the ablated cost, budget %.0f%%)\n",
		time.Duration(c.TelemetryNs), c.OverheadPct, telemetryOverheadBudgetPct)
	fmt.Fprintf(w, "  within budget: %t   profile matches mix: %t\n", c.WithinBudget, c.ProfileMatches)
	for _, n := range c.ProfileNotes {
		fmt.Fprintf(w, "    mismatch: %s\n", n)
	}
	fmt.Fprintf(w, "  flight records: %d   design queries from profile: %d\n",
		c.RecorderRecords, c.DesignQueries)
}
