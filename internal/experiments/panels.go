package experiments

import (
	"fmt"

	"partix/internal/fragmentation"
	"partix/internal/toxgene"
	"partix/internal/workload"
	"partix/internal/xbench"
)

// Scale sizes a run. The paper's databases are 5 MB–500 MB; the default
// scale targets seconds-per-panel laptop runs while preserving the shapes
// (per-document overhead, scan-vs-index, join-vs-union). The partix-bench
// CLI exposes multipliers to approach the paper's sizes.
type Scale struct {
	// SmallItems is the ItemsSHor document count (≈2 KB each).
	SmallItems int
	// LargeItems is the ItemsLHor document count (≈80 KB each).
	LargeItems int
	// Articles is the XBenchVer article count.
	Articles int
	// StoreItems is the StoreHyb item count inside the single store
	// document.
	StoreItems int
	// Seed drives the generators.
	Seed int64
}

// DefaultScale is a fast laptop run (a few MB per database).
var DefaultScale = Scale{SmallItems: 1500, LargeItems: 60, Articles: 60, StoreItems: 1200, Seed: 2006}

// Multiply scales every dimension by f (for paper-sized runs).
func (s Scale) Multiply(f int) Scale {
	if f < 1 {
		f = 1
	}
	s.SmallItems *= f
	s.LargeItems *= f
	s.Articles *= f
	s.StoreItems *= f
	return s
}

// RunFig7a reproduces Figure 7(a): the ItemsSHor database (many ≈2 KB
// documents) under horizontal fragmentation into 1 (centralized), 2, 4 and
// 8 fragments.
func RunFig7a(scale Scale, opts Options) (*Panel, error) {
	return runHorizontal("fig7a", "Figure 7(a) — ItemsSHor, horizontal fragmentation", false, scale.SmallItems, scale, opts)
}

// RunFig7b reproduces Figure 7(b): the ItemsLHor database (fewer ≈80 KB
// documents), same sweep.
func RunFig7b(scale Scale, opts Options) (*Panel, error) {
	return runHorizontal("fig7b", "Figure 7(b) — ItemsLHor, horizontal fragmentation", true, scale.LargeItems, scale, opts)
}

func runHorizontal(id, title string, large bool, docs int, scale Scale, opts Options) (*Panel, error) {
	opts = opts.withDefaults()
	queries := workload.Horizontal("items")
	panel := &Panel{ID: id, Title: title, Queries: queries}

	items := toxgene.GenerateItems(toxgene.ItemsConfig{Docs: docs, Seed: scale.Seed, Large: large})
	for _, k := range []int{1, 2, 4, 8} {
		var scheme *fragmentation.Scheme
		name := "centralized"
		if k > 1 {
			var err error
			scheme, err = workload.HorizontalScheme("items", k)
			if err != nil {
				return nil, err
			}
			name = fmt.Sprintf("%d fragments", k)
		}
		dep, err := Deploy(fmt.Sprintf("%s-k%d", id, k), items.Clone(), scheme, fragmentation.FragModeSD, opts)
		if err != nil {
			return nil, err
		}
		series, err := MeasureWorkload(dep.System, name, queries, opts.Repeats)
		panel.Engine.Add(dep.EngineStats())
		dep.Close()
		if err != nil {
			return nil, err
		}
		panel.Series = append(panel.Series, series)
	}
	return panel, nil
}

// RunFig7c reproduces Figure 7(c): the XBenchVer database under the
// prolog/body/epilog vertical fragmentation versus centralized.
func RunFig7c(scale Scale, opts Options) (*Panel, error) {
	opts = opts.withDefaults()
	queries := workload.Vertical("articles")
	panel := &Panel{ID: "fig7c", Title: "Figure 7(c) — XBenchVer, vertical fragmentation", Queries: queries}

	articles := xbench.Generate(xbench.Config{Docs: scale.Articles, Seed: scale.Seed})
	for _, fragged := range []bool{false, true} {
		var scheme *fragmentation.Scheme
		name := "centralized"
		if fragged {
			scheme = xbench.VerticalScheme("articles")
			name = "vertical (3 fragments)"
		}
		dep, err := Deploy(fmt.Sprintf("fig7c-%v", fragged), articles.Clone(), scheme, fragmentation.FragModeSD, opts)
		if err != nil {
			return nil, err
		}
		series, err := MeasureWorkload(dep.System, name, queries, opts.Repeats)
		panel.Engine.Add(dep.EngineStats())
		dep.Close()
		if err != nil {
			return nil, err
		}
		panel.Series = append(panel.Series, series)
	}
	return panel, nil
}

// RunFig7d reproduces Figure 7(d): the StoreHyb database under hybrid
// fragmentation, comparing centralized against FragMode1 (each selected
// item its own document) and FragMode2 (one SD document per fragment).
// The -T / -NT (with/without transmission time) views are both derivable
// from the returned measurements.
func RunFig7d(scale Scale, opts Options) (*Panel, error) {
	opts = opts.withDefaults()
	queries := workload.Hybrid("store")
	panel := &Panel{ID: "fig7d", Title: "Figure 7(d) — StoreHyb, hybrid fragmentation", Queries: queries}

	store := toxgene.GenerateStore(toxgene.StoreConfig{Items: scale.StoreItems, Seed: scale.Seed})
	type config struct {
		name   string
		scheme *fragmentation.Scheme
		mode   fragmentation.MaterializeMode
	}
	configs := []config{
		{"centralized", nil, fragmentation.FragModeSD},
		{"FragMode1", workload.HybridScheme("store"), fragmentation.FragModeMD},
		{"FragMode2", workload.HybridScheme("store"), fragmentation.FragModeSD},
	}
	for _, cfg := range configs {
		dep, err := Deploy("fig7d-"+cfg.name, store.Clone(), cfg.scheme, cfg.mode, opts)
		if err != nil {
			return nil, err
		}
		// All eleven queries are routable or unionable, so FragMode1 (which
		// cannot reconstruct) runs the same set — matching the paper.
		series, err := MeasureWorkload(dep.System, cfg.name, queries, opts.Repeats)
		panel.Engine.Add(dep.EngineStats())
		dep.Close()
		if err != nil {
			return nil, err
		}
		panel.Series = append(panel.Series, series)
	}
	return panel, nil
}

// HeadlineResult is the "up to 72× scale-up" reproduction: the best
// fragmented-vs-centralized speedup observed across the horizontal panels.
type HeadlineResult struct {
	Query   string
	Config  string
	Speedup float64
	Panel   string
}

// RunHeadline scans the horizontal panels for the maximum speedup.
func RunHeadline(scale Scale, opts Options) (*HeadlineResult, []*Panel, error) {
	a, err := RunFig7a(scale, opts)
	if err != nil {
		return nil, nil, err
	}
	b, err := RunFig7b(scale, opts)
	if err != nil {
		return nil, nil, err
	}
	best := &HeadlineResult{}
	for _, panel := range []*Panel{a, b} {
		central := panel.Series[0]
		for _, series := range panel.Series[1:] {
			for qid, m := range series.Times {
				if sp := Speedup(central.Times[qid], m); sp > best.Speedup {
					best.Speedup = sp
					best.Query = qid
					best.Config = series.Name
					best.Panel = panel.ID
				}
			}
		}
	}
	return best, []*Panel{a, b}, nil
}

// RunSmallDB reproduces the paper's small-database observation: "in small
// databases (i.e., 5 MB) the performance gain obtained is not enough to
// justify the use of fragmentation". It runs the ItemsSHor sweep on a tiny
// collection.
func RunSmallDB(opts Options) (*Panel, error) {
	tiny := Scale{SmallItems: 100, LargeItems: 4, Articles: 4, StoreItems: 80, Seed: 2006}
	p, err := runHorizontal("smalldb", "Small database (≈5 MB equivalent) — ItemsSHor sweep", false, tiny.SmallItems, tiny, opts)
	return p, err
}
