package xmltree

import "testing"

func TestEqualIgnoresIDs(t *testing.T) {
	a := NewDocument("d", sampleItem())
	b := sampleItem() // no IDs assigned
	if !Equal(a.Root, b) {
		t.Fatal("Equal should ignore IDs")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	base := sampleItem()
	cases := []struct {
		name   string
		mutate func(*Node)
	}{
		{"name", func(n *Node) { n.Children[1].Name = "Kode" }},
		{"value", func(n *Node) { n.Children[1].Children[0].Value = "other" }},
		{"kind", func(n *Node) { n.Children[1].Kind = AttributeNode }},
		{"extra child", func(n *Node) { n.Append(NewElement("Extra")) }},
		{"order", func(n *Node) { n.Children[1], n.Children[2] = n.Children[2], n.Children[1] }},
	}
	for _, tc := range cases {
		other := base.Clone()
		tc.mutate(other)
		if Equal(base, other) {
			t.Errorf("%s: mutation not detected", tc.name)
		}
		if Diff(base, other) == "" {
			t.Errorf("%s: Diff empty for unequal trees", tc.name)
		}
	}
}

func TestEqualNil(t *testing.T) {
	if !Equal(nil, nil) {
		t.Fatal("nil,nil should be equal")
	}
	if Equal(sampleItem(), nil) || Equal(nil, sampleItem()) {
		t.Fatal("nil vs non-nil should differ")
	}
}

func TestDiffEqualTreesEmpty(t *testing.T) {
	a := sampleItem()
	if d := Diff(a, a.Clone()); d != "" {
		t.Fatalf("Diff of equal trees = %q", d)
	}
}

func TestEqualDocuments(t *testing.T) {
	a := NewDocument("x", sampleItem())
	b := NewDocument("x", sampleItem())
	c := NewDocument("y", sampleItem())
	if !EqualDocuments(a, b) {
		t.Fatal("same-name equal trees should match")
	}
	if EqualDocuments(a, c) {
		t.Fatal("different names should not match")
	}
	if !EqualDocuments(nil, nil) || EqualDocuments(a, nil) {
		t.Fatal("nil handling wrong")
	}
}

func TestEqualCollectionsIgnoresOrder(t *testing.T) {
	d1 := NewDocument("a", sampleItem())
	d2 := NewDocument("b", NewElement("Other"))
	c1 := NewCollection("c", d1, d2)
	c2 := NewCollection("c", d2.Clone(), d1.Clone())
	if !EqualCollections(c1, c2) {
		t.Fatal("order should not matter")
	}
	c3 := NewCollection("c", d1.Clone())
	if EqualCollections(c1, c3) {
		t.Fatal("different sizes should not match")
	}
	d3 := NewDocument("b", NewElement("Changed"))
	c4 := NewCollection("c", d1.Clone(), d3)
	if EqualCollections(c1, c4) {
		t.Fatal("changed doc should not match")
	}
}

func TestCollectionHelpers(t *testing.T) {
	c := NewCollection("items")
	if c.Len() != 0 || c.IsSD() {
		t.Fatal("empty collection basics wrong")
	}
	c.Add(NewDocument("one", sampleItem()))
	if !c.IsSD() || c.Len() != 1 {
		t.Fatal("single-doc collection should be SD")
	}
	c.Add(NewDocument("two", NewElement("X")))
	if c.IsSD() {
		t.Fatal("two-doc collection reported SD")
	}
	if c.Doc("one") == nil || c.Doc("three") != nil {
		t.Fatal("Doc lookup wrong")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.Add(NewDocument("one", NewElement("Dup")))
	if err := c.Validate(); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestCollectionSortAndClone(t *testing.T) {
	c := NewCollection("c",
		NewDocument("b", NewElement("B")),
		NewDocument("a", NewElement("A")),
	)
	cp := c.Clone()
	c.SortByName()
	if c.Docs[0].Name != "a" {
		t.Fatal("sort failed")
	}
	if cp.Docs[0].Name != "b" {
		t.Fatal("clone shares slice with original")
	}
	cp.Docs[0].Root.Name = "Mutated"
	if c.Doc("b").Root.Name == "Mutated" {
		t.Fatal("clone shares nodes with original")
	}
	if n := c.TotalNodes(); n != 2 {
		t.Fatalf("TotalNodes = %d, want 2", n)
	}
}

func TestDocumentFindByID(t *testing.T) {
	doc := NewDocument("d", sampleItem())
	sec := doc.Root.Child("Section")
	if got := doc.FindByID(sec.ID); got != sec {
		t.Fatal("FindByID did not locate node")
	}
	if doc.FindByID(9999) != nil {
		t.Fatal("FindByID found ghost node")
	}
}

func TestAssignIDsContinuesAfterExisting(t *testing.T) {
	root := sampleItem()
	doc := NewDocument("d", root)
	maxBefore := NodeID(0)
	root.Walk(func(n *Node) bool {
		if n.ID > maxBefore {
			maxBefore = n.ID
		}
		return true
	})
	root.Append(NewElement("New", NewText("v")))
	doc.AssignIDs()
	newEl := root.Child("New")
	if newEl.ID <= maxBefore {
		t.Fatalf("new node ID %d not after existing max %d", newEl.ID, maxBefore)
	}
	// Existing IDs unchanged.
	if root.ID != 1 {
		t.Fatalf("root ID changed to %d", root.ID)
	}
}

func TestDocumentValidate(t *testing.T) {
	if err := (&Document{Name: "d"}).Validate(); err == nil {
		t.Fatal("nil root accepted")
	}
	if err := NewDocument("d", NewText("x")).Validate(); err == nil {
		t.Fatal("text root accepted")
	}
}
