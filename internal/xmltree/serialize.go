package xmltree

import (
	"bufio"
	"io"
	"strings"
)

// Serialize writes the document as XML text to w. Output is compact (no
// indentation); attributes precede element content, both in document order.
func Serialize(d *Document, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if d.Root != nil {
		writeNode(bw, d.Root)
	}
	return bw.Flush()
}

// SerializeString returns the document as XML text.
func SerializeString(d *Document) string {
	var sb strings.Builder
	if d.Root != nil {
		serializeNode(&sb, d.Root)
	}
	return sb.String()
}

// NodeString returns the subtree rooted at n as XML text. Attribute nodes
// render as name="value"; text nodes as their escaped value.
func NodeString(n *Node) string {
	var sb strings.Builder
	serializeNode(&sb, n)
	return sb.String()
}

type stringWriter interface {
	WriteString(string) (int, error)
	WriteByte(byte) error
}

func writeNode(w *bufio.Writer, n *Node) { serializeNode(w, n) }

func serializeNode(w stringWriter, n *Node) {
	switch n.Kind {
	case TextNode:
		escapeText(w, n.Value)
	case AttributeNode:
		w.WriteString(n.Name)
		w.WriteString(`="`)
		escapeAttr(w, n.Text())
		w.WriteByte('"')
	case ElementNode:
		w.WriteByte('<')
		w.WriteString(n.Name)
		var content []*Node
		for _, c := range n.Children {
			if c.Kind == AttributeNode {
				w.WriteByte(' ')
				serializeNode(w, c)
			} else {
				content = append(content, c)
			}
		}
		if len(content) == 0 {
			w.WriteString("/>")
			return
		}
		w.WriteByte('>')
		for _, c := range content {
			serializeNode(w, c)
		}
		w.WriteString("</")
		w.WriteString(n.Name)
		w.WriteByte('>')
	}
}

func escapeText(w stringWriter, s string) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			w.WriteString("&lt;")
		case '>':
			w.WriteString("&gt;")
		case '&':
			w.WriteString("&amp;")
		default:
			w.WriteByte(s[i])
		}
	}
}

func escapeAttr(w stringWriter, s string) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			w.WriteString("&lt;")
		case '>':
			w.WriteString("&gt;")
		case '&':
			w.WriteString("&amp;")
		case '"':
			w.WriteString("&quot;")
		default:
			w.WriteByte(s[i])
		}
	}
}

// SerializedSize returns the length in bytes of the document's XML text.
// The cluster transmission-cost model (paper Section 5: result size divided
// by Gigabit Ethernet speed) uses this as the payload size.
func SerializedSize(d *Document) int {
	var c countingWriter
	if d.Root != nil {
		serializeNode(&c, d.Root)
	}
	return c.n
}

// NodeSerializedSize returns the length in bytes of the subtree's XML text.
func NodeSerializedSize(n *Node) int {
	var c countingWriter
	serializeNode(&c, n)
	return c.n
}

type countingWriter struct{ n int }

func (c *countingWriter) WriteString(s string) (int, error) {
	c.n += len(s)
	return len(s), nil
}

func (c *countingWriter) WriteByte(byte) error {
	c.n++
	return nil
}
