package xmltree

import (
	"strings"
	"testing"
)

func sampleItem() *Node {
	return NewElement("Item",
		NewAttr("id", "42"),
		NewElement("Code", NewText("I-42")),
		NewElement("Name", NewText("Widget")),
		NewElement("Section", NewText("CD")),
		NewElement("Description", NewText("a good widget")),
	)
}

func TestNewElementBuildsTree(t *testing.T) {
	item := sampleItem()
	if item.Kind != ElementNode || item.Name != "Item" {
		t.Fatalf("root = %s %q, want element Item", item.Kind, item.Name)
	}
	if got := len(item.Children); got != 5 {
		t.Fatalf("children = %d, want 5", got)
	}
	for _, c := range item.Children {
		if c.Parent != item {
			t.Errorf("child %q parent not set", c.Name)
		}
	}
}

func TestAttrAccess(t *testing.T) {
	item := sampleItem()
	v, ok := item.Attr("id")
	if !ok || v != "42" {
		t.Fatalf("Attr(id) = %q, %v; want 42, true", v, ok)
	}
	if _, ok := item.Attr("missing"); ok {
		t.Fatal("Attr(missing) reported present")
	}
	attrs := item.Attributes()
	if len(attrs) != 1 || attrs[0].Name != "id" {
		t.Fatalf("Attributes() = %v", attrs)
	}
}

func TestChildLookup(t *testing.T) {
	item := sampleItem()
	if c := item.Child("Section"); c == nil || c.Text() != "CD" {
		t.Fatalf("Child(Section) = %v", c)
	}
	if c := item.Child("Nope"); c != nil {
		t.Fatalf("Child(Nope) = %v, want nil", c)
	}
	if els := item.ElementChildren(); len(els) != 4 {
		t.Fatalf("ElementChildren = %d, want 4", len(els))
	}
	if named := item.ChildrenNamed("Code"); len(named) != 1 {
		t.Fatalf("ChildrenNamed(Code) = %d, want 1", len(named))
	}
}

func TestTextConcatenatesContentOnly(t *testing.T) {
	n := NewElement("a",
		NewAttr("x", "attrval"),
		NewElement("b", NewText("one")),
		NewElement("c", NewText("two")),
	)
	if got := n.Text(); got != "onetwo" {
		t.Fatalf("Text() = %q, want onetwo (attribute values excluded)", got)
	}
}

func TestCloneIsDeepAndPreservesIDs(t *testing.T) {
	doc := NewDocument("d1", sampleItem())
	cp := doc.Root.Clone()
	if !Equal(doc.Root, cp) {
		t.Fatal("clone not equal to original")
	}
	if cp.ID != doc.Root.ID {
		t.Fatalf("clone root ID %d != original %d", cp.ID, doc.Root.ID)
	}
	// Mutating the clone must not affect the original.
	cp.Children[1].Children[0].Value = "changed"
	if doc.Root.Children[1].Children[0].Value == "changed" {
		t.Fatal("clone shares text node with original")
	}
	if cp.Children[0].Parent != cp {
		t.Fatal("clone children parents not rewired")
	}
}

func TestDetach(t *testing.T) {
	item := sampleItem()
	sec := item.Child("Section")
	sec.Detach()
	if item.Child("Section") != nil {
		t.Fatal("Section still attached after Detach")
	}
	if sec.Parent != nil {
		t.Fatal("detached node keeps parent pointer")
	}
	if len(item.Children) != 4 {
		t.Fatalf("children = %d after detach, want 4", len(item.Children))
	}
	// Detach on a root is a no-op.
	item.Detach()
}

func TestWalkPreorderAndPrune(t *testing.T) {
	item := sampleItem()
	var names []string
	item.Walk(func(n *Node) bool {
		if n.Kind == ElementNode {
			names = append(names, n.Name)
		}
		return n.Name != "Code" // prune below Code
	})
	want := "Item Code Name Section Description"
	if got := strings.Join(names, " "); got != want {
		t.Fatalf("walk order = %q, want %q", got, want)
	}
}

func TestPathAndDepth(t *testing.T) {
	doc := NewDocument("d", sampleItem())
	sec := doc.Root.Child("Section")
	if got := sec.Path(); got != "/Item/Section" {
		t.Fatalf("Path = %q", got)
	}
	id := doc.Root.Child("id")
	if got := id.Path(); got != "/Item/@id" {
		t.Fatalf("attr Path = %q", got)
	}
	if sec.Depth() != 1 || doc.Root.Depth() != 0 {
		t.Fatalf("Depth wrong: %d %d", sec.Depth(), doc.Root.Depth())
	}
	txt := sec.Children[0]
	if got := txt.Path(); got != "/Item/Section/text()" {
		t.Fatalf("text Path = %q", got)
	}
	if txt.Root() != doc.Root {
		t.Fatal("Root() did not reach document root")
	}
}

func TestValidateRejectsMixedContent(t *testing.T) {
	bad := NewElement("a", NewText("t"), NewElement("b"))
	if err := bad.Validate(); err == nil {
		t.Fatal("mixed content accepted")
	}
}

func TestValidateRejectsBadAttribute(t *testing.T) {
	attr := &Node{Kind: AttributeNode, Name: "x"} // no text child
	root := NewElement("a")
	root.Append(attr)
	if err := root.Validate(); err == nil {
		t.Fatal("attribute without text child accepted")
	}
}

func TestValidateRejectsEmptyNames(t *testing.T) {
	if err := NewElement("").Validate(); err == nil {
		t.Fatal("empty element name accepted")
	}
}

func TestValidateDetectsBrokenParent(t *testing.T) {
	item := sampleItem()
	item.Children[0].Parent = nil
	if err := item.Validate(); err == nil {
		t.Fatal("broken parent pointer accepted")
	}
}

func TestCountNodes(t *testing.T) {
	// Item + attr(id) + its text + 4 elements + 4 texts = 11
	if got := sampleItem().CountNodes(); got != 11 {
		t.Fatalf("CountNodes = %d, want 11", got)
	}
}

func TestRemoveChild(t *testing.T) {
	item := sampleItem()
	removed := item.RemoveChild(1)
	if removed.Name != "Code" || removed.Parent != nil {
		t.Fatalf("RemoveChild returned %q parent=%v", removed.Name, removed.Parent)
	}
	if item.Child("Code") != nil {
		t.Fatal("Code still present")
	}
}

func TestKindString(t *testing.T) {
	if ElementNode.String() != "element" || AttributeNode.String() != "attribute" || TextNode.String() != "text" {
		t.Fatal("Kind.String wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind has empty string")
	}
}
