package xmltree

import (
	"fmt"
	"sort"
)

// Document is a well-formed XML document: a data tree with a single root
// element. Name identifies the document within its collection (the paper's
// MD repositories are sets of named documents; an SD repository is a
// collection with exactly one document).
type Document struct {
	Name string
	Root *Node
}

// NewDocument returns a document with the given name and root. Node IDs are
// assigned in document order starting from 1 for any node whose ID is zero,
// so hand-built trees become join-ready without an explicit numbering pass.
func NewDocument(name string, root *Node) *Document {
	d := &Document{Name: name, Root: root}
	d.AssignIDs()
	return d
}

// AssignIDs numbers all nodes with ID zero in document order, continuing
// after the highest ID already present. Existing IDs are never changed,
// so projected fragments keep their original identities.
func (d *Document) AssignIDs() {
	if d.Root == nil {
		return
	}
	var max NodeID
	d.Root.Walk(func(n *Node) bool {
		if n.ID > max {
			max = n.ID
		}
		return true
	})
	next := max + 1
	d.Root.Walk(func(n *Node) bool {
		if n.ID == 0 {
			n.ID = next
			next++
		}
		return true
	})
}

// Clone returns a deep copy of the document. IDs are preserved.
func (d *Document) Clone() *Document {
	cp := &Document{Name: d.Name}
	if d.Root != nil {
		cp.Root = d.Root.Clone()
	}
	return cp
}

// Validate checks that the document has a root element and that the tree
// satisfies the structural invariants of the data model.
func (d *Document) Validate() error {
	if d.Root == nil {
		return fmt.Errorf("xmltree: document %q has no root", d.Name)
	}
	if d.Root.Kind != ElementNode {
		return fmt.Errorf("xmltree: document %q root is a %s, want element", d.Name, d.Root.Kind)
	}
	return d.Root.Validate()
}

// CountNodes returns the number of nodes in the document.
func (d *Document) CountNodes() int {
	if d.Root == nil {
		return 0
	}
	return d.Root.CountNodes()
}

// FindByID returns the node with the given ID, or nil if absent.
func (d *Document) FindByID(id NodeID) *Node {
	var found *Node
	if d.Root == nil {
		return nil
	}
	d.Root.Walk(func(n *Node) bool {
		if found != nil {
			return false
		}
		if n.ID == id {
			found = n
			return false
		}
		return true
	})
	return found
}

// Collection is an ordered set of XML documents (paper Section 3.1). A
// collection is the unit over which fragments are defined; MD repositories
// hold many documents, SD repositories exactly one.
type Collection struct {
	Name string
	Docs []*Document
}

// NewCollection returns a collection with the given name and documents.
func NewCollection(name string, docs ...*Document) *Collection {
	return &Collection{Name: name, Docs: docs}
}

// Add appends doc to the collection.
func (c *Collection) Add(doc *Document) { c.Docs = append(c.Docs, doc) }

// Len returns the number of documents in the collection.
func (c *Collection) Len() int { return len(c.Docs) }

// IsSD reports whether the collection is a single-document repository.
func (c *Collection) IsSD() bool { return len(c.Docs) == 1 }

// Doc returns the document with the given name, or nil.
func (c *Collection) Doc(name string) *Document {
	for _, d := range c.Docs {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// Clone returns a deep copy of the collection.
func (c *Collection) Clone() *Collection {
	cp := &Collection{Name: c.Name, Docs: make([]*Document, len(c.Docs))}
	for i, d := range c.Docs {
		cp.Docs[i] = d.Clone()
	}
	return cp
}

// Validate checks every document and that document names are unique (names
// are the horizontal-fragmentation data items, so duplicates would make the
// disjointness rule ambiguous).
func (c *Collection) Validate() error {
	seen := make(map[string]bool, len(c.Docs))
	for _, d := range c.Docs {
		if seen[d.Name] {
			return fmt.Errorf("xmltree: collection %q has duplicate document %q", c.Name, d.Name)
		}
		seen[d.Name] = true
		if err := d.Validate(); err != nil {
			return fmt.Errorf("collection %q: %w", c.Name, err)
		}
	}
	return nil
}

// SortByName orders the documents by name. Fragmentation and reconstruction
// never rely on order, but deterministic order makes comparisons and tests
// stable.
func (c *Collection) SortByName() {
	sort.Slice(c.Docs, func(i, j int) bool { return c.Docs[i].Name < c.Docs[j].Name })
}

// TotalNodes returns the number of nodes across all documents.
func (c *Collection) TotalNodes() int {
	total := 0
	for _, d := range c.Docs {
		total += d.CountNodes()
	}
	return total
}
