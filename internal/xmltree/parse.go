package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads an XML document from r and builds its data tree. Whitespace-
// only text is dropped (the model has no mixed content, so such text is
// always formatting). Comments, processing instructions and namespace
// declarations are ignored; element and attribute names keep their local
// form as written.
func Parse(name string, r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var stack []*Node

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse %s: %w", name, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			el := &Node{Kind: ElementNode, Name: t.Name.Local}
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				el.Append(NewAttr(a.Name.Local, a.Value))
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: parse %s: multiple root elements", name)
				}
				root = el
			} else {
				stack[len(stack)-1].Append(el)
			}
			stack = append(stack, el)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parse %s: unbalanced end element %s", name, t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			text := string(t)
			if strings.TrimSpace(text) == "" {
				continue
			}
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parse %s: text outside root element", name)
			}
			parent := stack[len(stack)-1]
			// Coalesce adjacent character data into a single text node.
			if n := len(parent.Children); n > 0 && parent.Children[n-1].Kind == TextNode {
				parent.Children[n-1].Value += text
			} else {
				parent.Append(NewText(text))
			}
		case xml.Comment, xml.ProcInst, xml.Directive:
			// not part of the data model
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: parse %s: empty document", name)
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: parse %s: unclosed elements", name)
	}
	doc := NewDocument(name, root)
	if err := doc.Validate(); err != nil {
		return nil, err
	}
	return doc, nil
}

// ParseString parses an XML document held in a string.
func ParseString(name, s string) (*Document, error) {
	return Parse(name, strings.NewReader(s))
}

// MustParseString parses s and panics on error. For tests and examples.
func MustParseString(name, s string) *Document {
	d, err := ParseString(name, s)
	if err != nil {
		panic(err)
	}
	return d
}
