package xmltree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomTree builds a random well-formed data tree. Element names come from
// a small alphabet so paths collide (exercising navigation); text values use
// characters that require escaping.
func randomTree(r *rand.Rand, depth int) *Node {
	names := []string{"a", "b", "c", "Item", "Section"}
	el := NewElement(names[r.Intn(len(names))])
	if r.Intn(3) == 0 {
		el.Append(NewAttr("id", randomValue(r)))
	}
	if depth <= 0 || r.Intn(4) == 0 {
		if r.Intn(2) == 0 {
			el.Append(NewText(randomValue(r)))
		}
		return el
	}
	for i := 0; i < r.Intn(4); i++ {
		el.Append(randomTree(r, depth-1))
	}
	return el
}

func randomValue(r *rand.Rand) string {
	chars := []rune(`abc123<>&" `)
	n := 1 + r.Intn(8)
	out := make([]rune, n)
	for i := range out {
		out[i] = chars[r.Intn(len(chars))]
	}
	// Avoid whitespace-only values: the parser legitimately drops them.
	out[0] = 'x'
	return string(out)
}

func TestQuickSerializeParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := NewDocument("q", randomTree(r, 4))
		if err := doc.Validate(); err != nil {
			t.Fatalf("generator produced invalid tree: %v", err)
		}
		out := SerializeString(doc)
		back, err := ParseString("q", out)
		if err != nil {
			t.Logf("parse failed for %q: %v", out, err)
			return false
		}
		return Equal(doc.Root, back.Root)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCloneEqualAndIndependent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := NewDocument("q", randomTree(r, 4))
		cp := doc.Clone()
		if !EqualDocuments(doc, cp) {
			return false
		}
		// Mutate every text node in the clone; original must not change.
		orig := SerializeString(doc)
		cp.Root.Walk(func(n *Node) bool {
			if n.Kind == TextNode {
				n.Value += "!"
			}
			return true
		})
		return SerializeString(doc) == orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIDsUniqueAndDense(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := NewDocument("q", randomTree(r, 5))
		seen := map[NodeID]bool{}
		ok := true
		doc.Root.Walk(func(n *Node) bool {
			if n.ID == 0 || seen[n.ID] {
				ok = false
				return false
			}
			seen[n.ID] = true
			return true
		})
		return ok && len(seen) == doc.CountNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
