package xmltree

import "fmt"

// Equal reports whether two subtrees are structurally identical: same kind,
// name, value and equal children in the same order. Node IDs are ignored,
// so a reconstructed collection compares equal to the original even if the
// reconstruction rebuilt some nodes.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Name != b.Name || a.Value != b.Value {
		return false
	}
	if len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// EqualDocuments reports whether two documents have the same name and equal
// trees.
func EqualDocuments(a, b *Document) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Name == b.Name && Equal(a.Root, b.Root)
}

// EqualCollections reports whether two collections contain equal documents.
// Document order is ignored: collections are sets (paper Section 3.1), so
// both sides are matched by document name.
func EqualCollections(a, b *Collection) bool {
	if a.Len() != b.Len() {
		return false
	}
	byName := make(map[string]*Document, b.Len())
	for _, d := range b.Docs {
		byName[d.Name] = d
	}
	for _, d := range a.Docs {
		other, ok := byName[d.Name]
		if !ok || !Equal(d.Root, other.Root) {
			return false
		}
	}
	return true
}

// Diff returns a human-readable description of the first structural
// difference between two subtrees, or "" if they are equal. Used by the
// fragmentation correctness checker to explain reconstruction failures.
func Diff(a, b *Node) string {
	return diff(a, b, "/")
}

func diff(a, b *Node, path string) string {
	switch {
	case a == nil && b == nil:
		return ""
	case a == nil:
		return fmt.Sprintf("%s: missing on left (right has %s %q)", path, b.Kind, b.Name)
	case b == nil:
		return fmt.Sprintf("%s: missing on right (left has %s %q)", path, a.Kind, a.Name)
	}
	if a.Kind != b.Kind {
		return fmt.Sprintf("%s: kind %s vs %s", path, a.Kind, b.Kind)
	}
	if a.Name != b.Name {
		return fmt.Sprintf("%s: name %q vs %q", path, a.Name, b.Name)
	}
	if a.Value != b.Value {
		return fmt.Sprintf("%s: value %q vs %q", path, a.Value, b.Value)
	}
	if len(a.Children) != len(b.Children) {
		return fmt.Sprintf("%s/%s: %d children vs %d", path, a.Name, len(a.Children), len(b.Children))
	}
	for i := range a.Children {
		child := path
		if a.Name != "" {
			child = path + a.Name + "/"
		}
		if d := diff(a.Children[i], b.Children[i], child); d != "" {
			return d
		}
	}
	return ""
}
