package xmltree

import (
	"strings"
	"testing"
)

const storeXML = `<?xml version="1.0"?>
<Store>
  <Sections>
    <Section><Code>S1</Code><Name>CD</Name></Section>
    <Section><Code>S2</Code><Name>DVD</Name></Section>
  </Sections>
  <Items>
    <Item id="1"><Code>I1</Code><Section>CD</Section></Item>
    <Item id="2"><Code>I2</Code><Section>DVD</Section></Item>
  </Items>
</Store>`

func TestParseStore(t *testing.T) {
	doc, err := ParseString("store", storeXML)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Name != "Store" {
		t.Fatalf("root = %q", doc.Root.Name)
	}
	items := doc.Root.Child("Items")
	if items == nil {
		t.Fatal("no Items")
	}
	list := items.ChildrenNamed("Item")
	if len(list) != 2 {
		t.Fatalf("items = %d, want 2", len(list))
	}
	if v, _ := list[0].Attr("id"); v != "1" {
		t.Fatalf("first item id = %q", v)
	}
	if got := list[1].Child("Section").Text(); got != "DVD" {
		t.Fatalf("second item section = %q", got)
	}
}

func TestParseDropsWhitespaceOnlyText(t *testing.T) {
	doc := MustParseString("d", "<a>\n  <b>x</b>\n</a>")
	if len(doc.Root.Children) != 1 {
		t.Fatalf("children = %d, want 1 (whitespace dropped)", len(doc.Root.Children))
	}
}

func TestParseCoalescesText(t *testing.T) {
	doc := MustParseString("d", "<a>one&amp;two</a>")
	if len(doc.Root.Children) != 1 || doc.Root.Children[0].Value != "one&two" {
		t.Fatalf("text = %#v", doc.Root.Children)
	}
}

func TestParseAssignsDocumentOrderIDs(t *testing.T) {
	doc := MustParseString("d", "<a><b>x</b><c>y</c></a>")
	var ids []NodeID
	doc.Root.Walk(func(n *Node) bool { ids = append(ids, n.ID); return true })
	for i, id := range ids {
		if id != NodeID(i+1) {
			t.Fatalf("ids = %v, want 1..n in document order", ids)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"text only":   "hello",
		"unclosed":    "<a><b></a>",
		"mixed roots": "<a/><b/>",
	}
	for name, in := range cases {
		if _, err := ParseString("d", in); err == nil {
			t.Errorf("%s: no error for %q", name, in)
		}
	}
}

func TestParseRejectsMixedContent(t *testing.T) {
	if _, err := ParseString("d", "<a>text<b/></a>"); err == nil {
		t.Fatal("mixed content accepted by Parse")
	}
}

func TestParseSkipsCommentsAndPIs(t *testing.T) {
	doc := MustParseString("d", `<?pi x?><a><!-- c --><b>v</b></a>`)
	if len(doc.Root.Children) != 1 || doc.Root.Children[0].Name != "b" {
		t.Fatalf("children = %v", doc.Root.Children)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	doc := MustParseString("store", storeXML)
	out := SerializeString(doc)
	again, err := ParseString("store", out)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if !Equal(doc.Root, again.Root) {
		t.Fatalf("round trip mismatch: %s", Diff(doc.Root, again.Root))
	}
}

func TestSerializeEscaping(t *testing.T) {
	doc := NewDocument("d", NewElement("a",
		NewAttr("q", `he said "hi" & <bye>`),
		NewElement("t", NewText(`1 < 2 & 3 > 2`)),
	))
	out := SerializeString(doc)
	if strings.Contains(strings.ReplaceAll(out, "&lt;", ""), "<bye>") {
		t.Fatalf("attribute not escaped: %s", out)
	}
	rt := MustParseString("d", out)
	if !Equal(doc.Root, rt.Root) {
		t.Fatalf("escaping round trip: %s", Diff(doc.Root, rt.Root))
	}
}

func TestSerializeEmptyElement(t *testing.T) {
	doc := NewDocument("d", NewElement("a", NewAttr("x", "1")))
	if got := SerializeString(doc); got != `<a x="1"/>` {
		t.Fatalf("got %q", got)
	}
}

func TestSerializedSizeMatchesString(t *testing.T) {
	doc := MustParseString("store", storeXML)
	if got, want := SerializedSize(doc), len(SerializeString(doc)); got != want {
		t.Fatalf("SerializedSize = %d, len = %d", got, want)
	}
	sec := doc.Root.Child("Sections")
	if got, want := NodeSerializedSize(sec), len(NodeString(sec)); got != want {
		t.Fatalf("NodeSerializedSize = %d, len = %d", got, want)
	}
}

func TestSerializeWriter(t *testing.T) {
	doc := MustParseString("store", storeXML)
	var sb strings.Builder
	if err := Serialize(doc, &sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != SerializeString(doc) {
		t.Fatal("Serialize and SerializeString disagree")
	}
}
