// Package xmltree implements the XML data model of the PartiX paper
// (Section 3.1): an XML data tree Δ = ⟨t, ℓ, Ψ⟩ where t is a finite ordered
// tree, ℓ labels nodes with element or attribute names, and Ψ maps leaf
// nodes to data values.
//
// The model intentionally mirrors the paper's simplifications:
//
//   - no mixed content: a text node never has element siblings;
//   - attribute nodes have exactly one child, a text node holding the value;
//   - every node carries a stable ID assigned when the document is built,
//     which survives projection (vertical fragmentation) and is the join key
//     used by the reconstruction operator of Section 3.3.
package xmltree

import (
	"fmt"
	"strings"
)

// Kind identifies the kind of a tree node.
type Kind uint8

const (
	// ElementNode is a node labeled with a name from the element alphabet L.
	ElementNode Kind = iota
	// AttributeNode is a node labeled with a name from the attribute
	// alphabet A. It has exactly one TextNode child holding its value.
	AttributeNode
	// TextNode is a leaf holding a data value from the value domain D.
	TextNode
)

// String returns the kind name, for diagnostics.
func (k Kind) String() string {
	switch k {
	case ElementNode:
		return "element"
	case AttributeNode:
		return "attribute"
	case TextNode:
		return "text"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// NodeID is a document-scoped stable node identifier. IDs are assigned in
// document order when a tree is built or parsed and are preserved by deep
// copies and projections, which makes them usable as join keys when
// reconstructing a collection from its vertical fragments.
type NodeID uint32

// Node is a single node of an XML data tree.
type Node struct {
	Kind     Kind
	Name     string // element or attribute name; empty for text nodes
	Value    string // data value; set for text nodes only
	Parent   *Node
	Children []*Node
	ID       NodeID
}

// NewElement returns a new element node with the given children attached.
func NewElement(name string, children ...*Node) *Node {
	n := &Node{Kind: ElementNode, Name: name}
	for _, c := range children {
		n.Append(c)
	}
	return n
}

// NewText returns a new text node holding value.
func NewText(value string) *Node {
	return &Node{Kind: TextNode, Value: value}
}

// NewAttr returns a new attribute node named name whose single child is a
// text node holding value, per the paper's convention that nodes labeled in
// A have a single child with a label in D.
func NewAttr(name, value string) *Node {
	n := &Node{Kind: AttributeNode, Name: name}
	n.Append(NewText(value))
	return n
}

// Append attaches child as the last child of n and sets its parent pointer.
// It panics if child is nil; appending to a text node is a structural error
// reported by Validate rather than here, so builders stay cheap.
func (n *Node) Append(child *Node) {
	if child == nil {
		panic("xmltree: Append called with nil child")
	}
	child.Parent = n
	n.Children = append(n.Children, child)
}

// RemoveChild detaches the i-th child of n and returns it. The removed
// node's Parent is cleared.
func (n *Node) RemoveChild(i int) *Node {
	c := n.Children[i]
	n.Children = append(n.Children[:i], n.Children[i+1:]...)
	c.Parent = nil
	return c
}

// Detach removes n from its parent's child list, if any.
func (n *Node) Detach() {
	p := n.Parent
	if p == nil {
		return
	}
	for i, c := range p.Children {
		if c == n {
			p.RemoveChild(i)
			return
		}
	}
}

// IsLeaf reports whether n has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Attributes returns the attribute children of n, in document order.
func (n *Node) Attributes() []*Node {
	var attrs []*Node
	for _, c := range n.Children {
		if c.Kind == AttributeNode {
			attrs = append(attrs, c)
		}
	}
	return attrs
}

// ElementChildren returns the element children of n, in document order.
func (n *Node) ElementChildren() []*Node {
	var els []*Node
	for _, c := range n.Children {
		if c.Kind == ElementNode {
			els = append(els, c)
		}
	}
	return els
}

// Child returns the first element or attribute child named name, or nil.
// An attribute is addressed by its bare name (no "@" prefix).
func (n *Node) Child(name string) *Node {
	for _, c := range n.Children {
		if c.Kind != TextNode && c.Name == name {
			return c
		}
	}
	return nil
}

// ChildrenNamed returns all element or attribute children named name, in
// document order.
func (n *Node) ChildrenNamed(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind != TextNode && c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// Attr returns the value of the attribute named name, and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, c := range n.Children {
		if c.Kind == AttributeNode && c.Name == name {
			return c.Text(), true
		}
	}
	return "", false
}

// Text returns the concatenation of all text values in the subtree rooted
// at n, in document order. For a text node it is the node's value; for an
// element or attribute it is the string value in the XPath sense.
func (n *Node) Text() string {
	if n.Kind == TextNode {
		return n.Value
	}
	var sb strings.Builder
	n.appendText(&sb)
	return sb.String()
}

func (n *Node) appendText(sb *strings.Builder) {
	if n.Kind == TextNode {
		sb.WriteString(n.Value)
		return
	}
	for _, c := range n.Children {
		if c.Kind == AttributeNode {
			continue // attribute values are not part of element content
		}
		c.appendText(sb)
	}
}

// Clone returns a deep copy of the subtree rooted at n. Node IDs are
// preserved: a clone of a projected fragment can still be joined back to
// the other fragments by ID (reconstruction rule, paper Section 3.3).
func (n *Node) Clone() *Node {
	cp := &Node{Kind: n.Kind, Name: n.Name, Value: n.Value, ID: n.ID}
	if len(n.Children) > 0 {
		cp.Children = make([]*Node, 0, len(n.Children))
		for _, c := range n.Children {
			cc := c.Clone()
			cc.Parent = cp
			cp.Children = append(cp.Children, cc)
		}
	}
	return cp
}

// Walk calls fn for every node of the subtree rooted at n in document
// order (preorder). If fn returns false the subtree below the current node
// is skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// CountNodes returns the number of nodes in the subtree rooted at n,
// including n itself.
func (n *Node) CountNodes() int {
	count := 0
	n.Walk(func(*Node) bool { count++; return true })
	return count
}

// Depth returns the number of ancestors of n (0 for a root).
func (n *Node) Depth() int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// Root returns the topmost ancestor of n (n itself if it has no parent).
func (n *Node) Root() *Node {
	r := n
	for r.Parent != nil {
		r = r.Parent
	}
	return r
}

// Path returns the absolute label path of n from its root, e.g.
// "/Store/Items/Item" or "/Item/@id" for attributes. Text nodes report the
// path of their parent with a trailing "/text()".
func (n *Node) Path() string {
	var parts []string
	for cur := n; cur != nil; cur = cur.Parent {
		switch cur.Kind {
		case TextNode:
			parts = append(parts, "text()")
		case AttributeNode:
			parts = append(parts, "@"+cur.Name)
		default:
			parts = append(parts, cur.Name)
		}
	}
	// parts is leaf..root; reverse into a /-joined path.
	var sb strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		sb.WriteByte('/')
		sb.WriteString(parts[i])
	}
	return sb.String()
}

// Validate checks the structural invariants of the paper's data model:
// text nodes are leaves and have no element siblings (no mixed content),
// attribute nodes have exactly one text child, element and attribute names
// are non-empty, and parent pointers are consistent.
func (n *Node) Validate() error {
	return n.validate(nil)
}

func (n *Node) validate(parent *Node) error {
	if n.Parent != parent {
		return fmt.Errorf("xmltree: node %q has inconsistent parent pointer", n.Name)
	}
	switch n.Kind {
	case TextNode:
		if len(n.Children) != 0 {
			return fmt.Errorf("xmltree: text node has %d children", len(n.Children))
		}
	case AttributeNode:
		if n.Name == "" {
			return fmt.Errorf("xmltree: attribute node with empty name")
		}
		if len(n.Children) != 1 || n.Children[0].Kind != TextNode {
			return fmt.Errorf("xmltree: attribute %q must have exactly one text child", n.Name)
		}
	case ElementNode:
		if n.Name == "" {
			return fmt.Errorf("xmltree: element node with empty name")
		}
		hasText, hasElem := false, false
		for _, c := range n.Children {
			switch c.Kind {
			case TextNode:
				hasText = true
			case ElementNode:
				hasElem = true
			}
		}
		if hasText && hasElem {
			return fmt.Errorf("xmltree: element %q has mixed content", n.Name)
		}
	default:
		return fmt.Errorf("xmltree: unknown node kind %d", n.Kind)
	}
	for _, c := range n.Children {
		if err := c.validate(n); err != nil {
			return err
		}
	}
	return nil
}
