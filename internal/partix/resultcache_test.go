package partix

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"partix/internal/cluster"
	"partix/internal/obs"
	"partix/internal/xmltree"
)

// newCachedSystem is newTestSystem with the result cache enabled and
// statistics refetched per query (immediate invalidation).
func newCachedSystem(t *testing.T, nodes int, budget int64) *System {
	t.Helper()
	s := newTestSystem(t, nodes)
	s.SetResultCacheBytes(budget)
	s.SetStatsTTL(0)
	return s
}

func TestResultCacheHitServesFromMemory(t *testing.T) {
	s := newCachedSystem(t, 3, 1<<20)
	publishHorizontal(t, s, 12)
	q := `for $i in collection("items")/Item where $i/Section = "CD" return $i/Code`

	first, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first execution served from an empty cache")
	}
	hits0 := obs.CoordResultCacheHits.Value()
	second, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("repeat not served from the result cache")
	}
	if obs.CoordResultCacheHits.Value() != hits0+1 {
		t.Fatal("hit not counted")
	}
	if fmt.Sprint(itemStrings(second.Items)) != fmt.Sprint(itemStrings(first.Items)) {
		t.Fatalf("cached items differ:\n%v\n%v", itemStrings(second.Items), itemStrings(first.Items))
	}
	// A hit re-executes nothing and replays nothing: no sub-timings, no
	// trace spans, but a fresh trace ID so the flight recorder and logs
	// can still distinguish the serving event.
	if len(second.Sub) != 0 || second.Trace != nil {
		t.Fatalf("hit replayed execution detail: sub=%d trace=%v", len(second.Sub), second.Trace)
	}
	if second.TraceID == "" || second.TraceID == first.TraceID {
		t.Fatalf("hit trace ID not fresh: %q vs %q", second.TraceID, first.TraceID)
	}
	if second.Strategy != first.Strategy {
		t.Fatalf("hit strategy %s, executed strategy %s", second.Strategy, first.Strategy)
	}
	// Normalization applies: a re-spelled query is the same key.
	third, err := s.Query("for  $i in collection('items')/Item\n where $i/Section = 'CD'  return $i/Code")
	if err != nil {
		t.Fatal(err)
	}
	if !third.Cached {
		t.Fatal("reformatted spelling missed the result cache")
	}
}

func TestResultCacheInvalidatedByFragmentWrite(t *testing.T) {
	s := newCachedSystem(t, 3, 1<<20)
	publishHorizontal(t, s, 12)
	q := `for $i in collection("items")/Item where $i/Section = "CD" return $i/Code`
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	if r, err := s.Query(q); err != nil || !r.Cached {
		t.Fatalf("prime failed: cached=%v err=%v", r != nil && r.Cached, err)
	}

	inv0 := obs.CoordResultCacheInvalidations.Value()
	err := s.Node("node0").StoreDocument("items::Fcd", xmltree.MustParseString("extra",
		`<Item id="99"><Code>I099</Code><Section>CD</Section></Item>`))
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cached {
		t.Fatal("stale result served after a fragment write")
	}
	if obs.CoordResultCacheInvalidations.Value() == inv0 {
		t.Fatal("invalidation not counted")
	}
	if len(r.Items) != 4 {
		t.Fatalf("items after write = %d, want 4", len(r.Items))
	}
	// The recomputed result repopulates the cache and serves again.
	if r, err := s.Query(q); err != nil || !r.Cached {
		t.Fatalf("repopulated entry not served: cached=%v err=%v", r != nil && r.Cached, err)
	}
}

func TestResultCacheInvalidatedByCatalogChange(t *testing.T) {
	s := newCachedSystem(t, 3, 1<<20)
	publishHorizontal(t, s, 12)
	q := `for $i in collection("items")/Item where $i/Section = "DVD" return $i/Code`
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	if r, err := s.Query(q); err != nil || !r.Cached {
		t.Fatalf("prime failed: cached=%v err=%v", r != nil && r.Cached, err)
	}
	// Registering any collection moves the catalog version; every cached
	// result predates the new catalog.
	err := s.Catalog().Register(&CollectionMeta{Name: "other", Placement: map[string]string{"": "node0"}})
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cached {
		t.Fatal("result survived a catalog version bump")
	}
}

// TestResultCacheRandomizedReadWriteDifferential interleaves randomized
// fragment writes with the query mix on two coordinators sharing the same
// node engines — one with the cache on, one reference without — and
// requires every cache-system answer to equal the reference's fresh
// execution: zero stale results under writes.
func TestResultCacheRandomizedReadWriteDifferential(t *testing.T) {
	s := newCachedSystem(t, 3, 1<<20)
	publishHorizontal(t, s, 24)
	ref := NewSystem(cluster.GigabitEthernet)
	for _, name := range s.Nodes() {
		ref.AddNode(s.Node(name))
	}
	meta := s.Catalog().Lookup("items")
	err := ref.Catalog().Register(&CollectionMeta{
		Name: "items", Scheme: meta.Scheme, Placement: meta.Placement, Mode: meta.Mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref.SetStatsTTL(0)

	queries := []string{
		`for $i in collection("items")/Item where $i/Section = "CD" return $i/Code`,
		`for $i in collection("items")/Item where contains($i/Description, "good") return $i/Code`,
		`collection("items")/Item/Code`,
		`for $i in collection("items")/Item where $i/Section = "DVD" return $i`,
	}
	frags := []struct{ frag, node, section string }{
		{"Fcd", "node0", "CD"},
		{"Fdvd", "node1", "DVD"},
		{"Frest", "node2", "Book"},
	}
	rng := rand.New(rand.NewSource(42))
	hits0 := obs.CoordResultCacheHits.Value()
	for op := 0; op < 120; op++ {
		if rng.Intn(4) == 0 { // ~25% writes
			f := frags[rng.Intn(len(frags))]
			doc := xmltree.MustParseString(fmt.Sprintf("w%04d", op), fmt.Sprintf(
				`<Item id="%d"><Code>W%04d</Code><Description>a good write</Description><Section>%s</Section></Item>`,
				1000+op, op, f.section))
			if err := s.Node(f.node).StoreDocument("items::"+f.frag, doc); err != nil {
				t.Fatalf("op %d write: %v", op, err)
			}
			continue
		}
		q := queries[rng.Intn(len(queries))]
		got, err := s.Query(q)
		if err != nil {
			t.Fatalf("op %d cached system: %v", op, err)
		}
		want, err := ref.Query(q)
		if err != nil {
			t.Fatalf("op %d reference: %v", op, err)
		}
		if fmt.Sprint(itemStrings(got.Items)) != fmt.Sprint(itemStrings(want.Items)) {
			t.Fatalf("op %d: stale result served (cached=%t)\nquery: %s\ngot:  %v\nwant: %v",
				op, got.Cached, q, itemStrings(got.Items), itemStrings(want.Items))
		}
	}
	if obs.CoordResultCacheHits.Value() == hits0 {
		t.Fatal("the cache never served a hit — the differential proved nothing")
	}
}

func TestResultCacheEvictionAndByteAccounting(t *testing.T) {
	rc := newResultCache()
	rc.setBudget(10_000)
	rc.setMaxEntry(10_000) // lift the budget/16 cap; sizing is explicit here
	entry := func(key string, n int64) *resultEntry {
		return &resultEntry{key: key, bytes: n}
	}
	ev0 := obs.CoordResultCacheEvictions.Value()
	rc.put(entry("a", 4000))
	rc.put(entry("b", 4000))
	if rc.usage() != 8000 || rc.size() != 2 {
		t.Fatalf("usage=%d size=%d, want 8000/2", rc.usage(), rc.size())
	}
	// Touch a so b becomes the LRU victim.
	if rc.get("a") == nil {
		t.Fatal("a missing")
	}
	rc.put(entry("c", 4000)) // 12000 > 10000: evict b
	if rc.get("b") != nil {
		t.Fatal("b not evicted (LRU order violated)")
	}
	if rc.get("a") == nil || rc.get("c") == nil {
		t.Fatal("wrong victim evicted")
	}
	if rc.usage() != 8000 || rc.size() != 2 {
		t.Fatalf("after eviction usage=%d size=%d, want 8000/2", rc.usage(), rc.size())
	}
	if obs.CoordResultCacheEvictions.Value() != ev0+1 {
		t.Fatalf("evictions counted = %d, want 1", obs.CoordResultCacheEvictions.Value()-ev0)
	}
	// Replacing a key must not double-count its bytes.
	rc.put(entry("a", 2000))
	if rc.usage() != 6000 || rc.size() != 2 {
		t.Fatalf("after replace usage=%d size=%d, want 6000/2", rc.usage(), rc.size())
	}
	// Shrinking the budget evicts down to it.
	rc.setBudget(2500)
	if rc.usage() > 2500 {
		t.Fatalf("usage %d exceeds shrunk budget", rc.usage())
	}
	// Budget 0 disables and drops everything.
	rc.setBudget(0)
	if rc.usage() != 0 || rc.size() != 0 || rc.enabled() {
		t.Fatalf("disabled cache not empty: usage=%d size=%d", rc.usage(), rc.size())
	}
}

func TestResultCachePerEntryCapRejectsLargeResults(t *testing.T) {
	s := newCachedSystem(t, 3, 1<<20)
	s.SetResultCacheMaxEntry(64) // smaller than any real result
	publishHorizontal(t, s, 12)
	q := `for $i in collection("items")/Item where $i/Section = "CD" return $i`
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	if n := s.ResultCacheSize(); n != 0 {
		t.Fatalf("oversized result cached (%d entries)", n)
	}
	r, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cached {
		t.Fatal("oversized result served from cache")
	}
}

// TestResultCacheSingleflightDogpile sends a burst of identical queries
// at an empty cache: the singleflight must collapse the dogpile so at
// least one caller is served from the leader's populated entry, and every
// caller gets the same correct answer.
func TestResultCacheSingleflightDogpile(t *testing.T) {
	s := newCachedSystem(t, 3, 1<<20)
	publishHorizontal(t, s, 24)
	q := `for $i in collection("items")/Item where contains($i/Description, "good") return $i/Code`
	want, err := s.Query(q) // reference answer; then reset to an empty cache
	if err != nil {
		t.Fatal(err)
	}
	s.SetResultCacheBytes(0)
	s.SetResultCacheBytes(1 << 20)

	const burst = 8
	var wg sync.WaitGroup
	var executed, served atomic.Int64
	errs := make(chan error, burst)
	for g := 0; g < burst; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := s.Query(q)
			if err != nil {
				errs <- err
				return
			}
			if res.Cached {
				served.Add(1)
			} else {
				executed.Add(1)
			}
			if fmt.Sprint(itemStrings(res.Items)) != fmt.Sprint(itemStrings(want.Items)) {
				errs <- fmt.Errorf("burst result differs: %v", itemStrings(res.Items))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if executed.Load()+served.Load() != burst {
		t.Fatalf("executed %d + served %d != %d", executed.Load(), served.Load(), burst)
	}
	if executed.Load() == burst {
		t.Fatal("every caller executed upstream — singleflight collapsed nothing")
	}
}

// TestStreamedQueryBypassesResultCache is the memory regression test: a
// streamed result is never materialized into the cache, so even a query
// whose result is 10x the cacheable ones leaves the cache byte count
// untouched.
func TestStreamedQueryBypassesResultCache(t *testing.T) {
	s := newCachedSystem(t, 3, 1<<20)
	s.SetConcurrent(true) // streaming executor
	publishHorizontal(t, s, 120)
	q := `collection("items")/Item` // full broadcast return, the big one
	res, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Streamed {
		t.Skip("query did not take the streaming path")
	}
	if n, b := s.ResultCacheSize(), s.ResultCacheBytes(); n != 0 || b != 0 {
		t.Fatalf("streamed result inflated the cache: %d entries, %d bytes", n, b)
	}
	again, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cached {
		t.Fatal("streamed query served from cache")
	}
}

// Exists/empty deciders stay out of the cache: they are index-only fast
// and their early-cancelled executions must rerun, not be replayed.
func TestDeciderQueriesBypassResultCache(t *testing.T) {
	s := newCachedSystem(t, 3, 1<<20)
	publishHorizontal(t, s, 12)
	q := `exists(collection("items")/Item/Code)`
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	if n := s.ResultCacheSize(); n != 0 {
		t.Fatalf("decider cached (%d entries)", n)
	}
	r, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cached {
		t.Fatal("decider served from cache")
	}
}

func TestAdmissionQueueShedsWithTypedError(t *testing.T) {
	s := newTestSystem(t, 3)
	publishHorizontal(t, s, 24)
	s.SetMaxInflight(1)
	s.SetMaxQueued(1)
	s.SetQueueTimeout(10 * time.Millisecond)

	q := `for $i in collection("items")/Item where contains($i/Description, "good") return $i/Code`
	// Hold the only execution slot so the burst deterministically
	// overloads the coordinator: one query can queue (and times out), the
	// rest find the queue full and shed immediately.
	release, err := s.admission.acquire()
	if err != nil {
		t.Fatal(err)
	}
	const burst = 5
	var wg sync.WaitGroup
	var shed, untyped atomic.Int64
	for g := 0; g < burst; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Query(q)
			switch {
			case errors.Is(err, ErrOverloaded):
				shed.Add(1)
			case err != nil:
				untyped.Add(1)
			}
		}()
	}
	wg.Wait()
	if untyped.Load() != 0 {
		t.Fatalf("%d rejections were not typed ErrOverloaded", untyped.Load())
	}
	if shed.Load() != burst {
		t.Fatalf("shed %d of %d while the slot was held", shed.Load(), burst)
	}
	if s.QueuedQueries() != 0 {
		t.Fatalf("queue not drained: %d waiters", s.QueuedQueries())
	}
	// Releasing the slot readmits queries.
	release()
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	// With admission off everything is served without queuing.
	s.SetMaxInflight(0)
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
}

func TestTenantQuotaSheds(t *testing.T) {
	s := newTestSystem(t, 3)
	publishHorizontal(t, s, 12)
	s.SetTenantQuota(0.001, 2) // 2-query burst, effectively no refill
	q := `for $i in collection("items")/Item where $i/Section = "CD" return $i/Code`

	for i := 0; i < 2; i++ {
		if _, err := s.QueryAs("alice", q); err != nil {
			t.Fatalf("query %d within burst: %v", i, err)
		}
	}
	_, err := s.QueryAs("alice", q)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("exhausted tenant not shed with ErrOverloaded: %v", err)
	}
	// Another tenant has its own bucket.
	if _, err := s.QueryAs("bob", q); err != nil {
		t.Fatalf("unrelated tenant shed: %v", err)
	}
	// Disabling the policy readmits everyone.
	s.SetTenantQuota(0, 0)
	if _, err := s.QueryAs("alice", q); err != nil {
		t.Fatal(err)
	}
}

// Cache hits bypass the admission queue: with zero execution slots a
// primed query is still answered.
func TestCacheHitBypassesAdmission(t *testing.T) {
	s := newCachedSystem(t, 3, 1<<20)
	publishHorizontal(t, s, 12)
	q := `for $i in collection("items")/Item where $i/Section = "CD" return $i/Code`
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	s.SetMaxInflight(1)
	s.SetMaxQueued(0)
	// Saturate the only slot.
	release, err := s.admission.acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	res, err := s.Query(q)
	if err != nil {
		t.Fatalf("cache hit was throttled: %v", err)
	}
	if !res.Cached {
		t.Fatal("expected a cache hit")
	}
	// The same query uncached is shed.
	s.InvalidatePlans()
	if _, err := s.Query(q); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("uncached query under a saturated slot: %v", err)
	}
}

func TestPublishClearsResultCache(t *testing.T) {
	s := newCachedSystem(t, 3, 1<<20)
	publishHorizontal(t, s, 12)
	q := `for $i in collection("items")/Item where $i/Section = "CD" return $i/Code`
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	if s.ResultCacheSize() != 1 {
		t.Fatalf("entries = %d, want 1", s.ResultCacheSize())
	}
	other := xmltree.NewCollection("other")
	other.Add(xmltree.MustParseString("o1", `<Item id="1"><Code>O1</Code></Item>`))
	if err := s.Publish(other, nil, map[string]string{"": "node0"}, PublishOptions{}); err != nil {
		t.Fatal(err)
	}
	if s.ResultCacheSize() != 0 {
		t.Fatalf("publish left %d cached results", s.ResultCacheSize())
	}
}
