package partix

import (
	"time"

	"partix/internal/cluster"
	"partix/internal/obs"
	"partix/internal/xquery"
)

// SetTelemetry switches workload telemetry — the query flight recorder
// and the workload profiler — on or off. On is the default; off reduces
// the query path to the pre-telemetry hot path (the benchmark ablation
// measures exactly this difference). The recorder and profiler keep
// whatever they already hold; toggling does not clear them.
func (s *System) SetTelemetry(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.telemetry = on
}

// TelemetryEnabled reports whether queries feed the flight recorder and
// workload profiler.
func (s *System) TelemetryEnabled() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.telemetry
}

// Recorder exposes the query flight recorder, for configuration
// (sampling, slow threshold) and snapshots. Never nil.
func (s *System) Recorder() *obs.FlightRecorder { return s.recorder }

// Profiler exposes the workload profiler. Never nil.
func (s *System) Profiler() *obs.WorkloadProfiler { return s.profiler }

// WorkloadProfile exports the coordinator's mined workload: per-collection
// top-K paths and predicates, and per-fragment heat as observed from the
// coordinator (sub-query latency including the network, result bytes).
// Node-local heat — decode counts the coordinator cannot see — comes from
// ClusterTelemetry.
func (s *System) WorkloadProfile() *obs.WorkloadProfile {
	return s.profiler.Profile()
}

// telemetrySinks returns the recorder and profiler the current query
// should feed, or nils when telemetry is off.
func (s *System) telemetrySinks() (*obs.FlightRecorder, *obs.WorkloadProfiler) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.telemetry {
		return nil, nil
	}
	return s.recorder, s.profiler
}

// recordQuery feeds one finished (or failed) query into the profiler and
// the flight recorder. It runs after the response is fully assembled, so
// everything here is off the latency path the caller observes — except
// that it still runs synchronously, which is why the sampled-out exit is
// a single atomic add. p is nil when the query never produced a plan
// (parse or planning failure) — those still belong in the flight
// recorder, since a query that cannot even plan is exactly what an
// operator goes looking for.
func (s *System) recordQuery(rec *obs.FlightRecorder, prof *obs.WorkloadProfiler, p *queryPlan, e xquery.Expr,
	norm, tag string, planTime, elapsed time.Duration, cached bool, res *QueryResult, qerr error) {
	if prof != nil && p != nil && p.work != nil {
		for coll, wk := range p.work {
			prof.ObserveQuery(coll, wk.Paths, wk.Predicates)
		}
		if res != nil && p.meta != nil {
			for _, st := range res.Sub {
				prof.ObserveFragment(p.meta.Name, st.Fragment, 0, int64(st.ResultBytes), st.Elapsed.Seconds())
			}
		}
	}
	if rec == nil {
		return
	}
	if !rec.ShouldRecord(elapsed, qerr != nil) {
		obs.TelemetrySampledOut.Inc()
		return
	}
	if norm == "" && e != nil {
		norm = xquery.NormalizeQueryText(xquery.Format(e))
	}
	qr := &obs.QueryRecord{
		UnixNano:   time.Now().UnixNano(),
		TraceID:    tag,
		Query:      norm,
		DurationNs: int64(elapsed),
		PlanNs:     int64(planTime),
		PlanCached: cached,
		Slow:       rec.IsSlow(elapsed),
	}
	if p != nil {
		qr.Strategy = string(p.strategy)
		qr.IndexOnly = planIndexOnly(p)
	}
	if qerr != nil {
		qr.Error = qerr.Error()
	}
	if res != nil {
		qr.Items = len(res.Items)
		qr.Frames = res.Frames
		qr.Streamed = res.Streamed
		qr.Spans = res.Trace
		for _, st := range res.Sub {
			qr.Bytes += st.ResultBytes
			qr.Fragments = append(qr.Fragments, obs.FragmentTiming{
				Fragment:  st.Fragment,
				Node:      st.Node,
				ElapsedNs: int64(st.Elapsed),
				Items:     st.Items,
				Bytes:     st.ResultBytes,
				Cancelled: st.Cancelled,
			})
		}
	}
	rec.Record(qr)
	obs.TelemetryRecords.Inc()
}

// recordCachedHit feeds a result-cache hit into the profiler and flight
// recorder. The profiler sees the query's workload keys (stored on the
// entry at populate time) so mined profiles still reflect cache-served
// traffic; fragment heat is NOT observed — a hit touches no fragment.
// The flight record carries cached=true, no fragment timings and no
// spans: replaying the original execution's measurements would describe
// work that never happened.
func (s *System) recordCachedHit(entry *resultEntry, norm, tag string, elapsed time.Duration) {
	rec, prof := s.telemetrySinks()
	if prof != nil {
		for coll, wk := range entry.work {
			prof.ObserveQuery(coll, wk.Paths, wk.Predicates)
		}
	}
	if rec == nil {
		return
	}
	if !rec.ShouldRecord(elapsed, false) {
		obs.TelemetrySampledOut.Inc()
		return
	}
	rec.Record(&obs.QueryRecord{
		UnixNano:   time.Now().UnixNano(),
		TraceID:    tag,
		Query:      norm,
		Strategy:   string(entry.strategy),
		DurationNs: int64(elapsed),
		Items:      len(entry.items),
		Cached:     true,
		Slow:       rec.IsSlow(elapsed),
	})
	obs.TelemetryRecords.Inc()
}

// recordPlanFailure routes a query that died before producing a plan —
// parse error, unknown collection, planner rejection — into the flight
// recorder, tagged like any other query so the record joins with log
// lines. The profiler is not fed: there is no plan to mine keys from.
func (s *System) recordPlanFailure(e xquery.Expr, norm string, planTime time.Duration, qerr error) {
	rec, _ := s.telemetrySinks()
	if rec == nil {
		return
	}
	s.recordQuery(rec, nil, nil, e, norm, obs.NewTraceID(), planTime, planTime, false, nil, qerr)
}

// planIndexOnly reports whether every sub-query of the plan was judged
// answerable from the node's indexes alone.
func planIndexOnly(p *queryPlan) bool {
	if len(p.subQueries) == 0 || len(p.est) == 0 {
		return false
	}
	for _, fq := range p.subQueries {
		est, ok := p.est[fq.fragment]
		if !ok || !est.indexOnly {
			return false
		}
	}
	return true
}

// NodeTelemetryStatus is one node's standing in a cluster telemetry
// pull: whether it supports the telemetry operation (protocol v5 or
// in-process) and the pull error, if any.
type NodeTelemetryStatus struct {
	Node      string `json:"node"`
	Supported bool   `json:"supported"`
	Err       string `json:"err,omitempty"`
}

// ClusterTelemetry is the cluster-wide aggregate: summed metric series
// (coordinator registry plus every reachable node), the coordinator's
// workload profile, node-local fragment heat merged across nodes (this
// is where decode counts live — the coordinator cannot observe them),
// and per-node pull status.
type ClusterTelemetry struct {
	Metrics  map[string]float64    `json:"metrics"`
	Profile  *obs.WorkloadProfile  `json:"profile"`
	NodeHeat []obs.FragmentHeat    `json:"nodeHeat,omitempty"`
	Nodes    []NodeTelemetryStatus `json:"nodes"`
}

// ClusterTelemetry pulls telemetry from every registered node and merges
// it with the coordinator's own. Nodes that fail to answer are reported
// in the status list rather than failing the aggregation — a metrics
// endpoint that goes dark because one node is down would be useless
// exactly when it matters. The coordinator's profile keeps its own
// fragment heat (latency as clients experience it, network included);
// NodeHeat carries the node-local view keyed by serving node.
func (s *System) ClusterTelemetry() *ClusterTelemetry {
	out := &ClusterTelemetry{
		Metrics: obs.Default.Snapshot(),
		Profile: s.profiler.Profile(),
	}
	var nodeHeat []obs.FragmentHeat
	for _, name := range s.Nodes() {
		tp, ok := s.Node(name).(cluster.TelemetryProvider)
		if !ok {
			out.Nodes = append(out.Nodes, NodeTelemetryStatus{Node: name})
			continue
		}
		obs.TelemetryPulls.Inc()
		snap, err := tp.Telemetry()
		if err != nil {
			obs.TelemetryPullErrors.Inc()
			out.Nodes = append(out.Nodes, NodeTelemetryStatus{Node: name, Supported: true, Err: err.Error()})
			continue
		}
		if snap == nil {
			// The driver exists but the peer is too old to answer.
			out.Nodes = append(out.Nodes, NodeTelemetryStatus{Node: name})
			continue
		}
		out.Nodes = append(out.Nodes, NodeTelemetryStatus{Node: name, Supported: true})
		for k, v := range snap.Metrics {
			out.Metrics[k] += v
		}
		for _, h := range snap.Heat {
			if h.Node == "" {
				h.Node = snap.Node
			}
			nodeHeat = append(nodeHeat, h)
		}
	}
	out.NodeHeat = obs.MergeHeat(nodeHeat)
	return out
}
