package partix

import (
	"container/list"
	"sync"

	"partix/internal/obs"
	"partix/internal/xquery"
)

// The plan cache memoizes compiled plans by normalized query text so
// repeat traffic skips parsing, analysis and planning entirely. A cached
// plan is only as good as the metadata it was built from, so each entry
// records the catalog version and, for every fragment whose statistics
// the planner consulted, the (node, collection, generation) stamp of the
// snapshot it saw. On lookup the entry is revalidated against the current
// catalog version and the statistics cache's current view; any drift
// discards the entry (counted as an invalidation) and the query is
// planned afresh. Plans that consulted no statistics carry no stamps and
// depend only on the catalog version — planning is then a pure function
// of the query and the catalog.

// defaultPlanCacheCap bounds the cache; at ~a few KB per compiled plan
// this keeps a busy coordinator's cache well under a MB.
const defaultPlanCacheCap = 128

// genStamp records the statistics snapshot one plan saw for one fragment.
type genStamp struct {
	node       string // node name
	collection string // node-collection name (meta.NodeCollection)
	gen        uint64 // snapshot generation; 0 when none was available
	has        bool   // whether a snapshot was available at all
}

// planEntry is one cached compiled plan.
type planEntry struct {
	key            string
	expr           xquery.Expr
	plan           *queryPlan
	catalogVersion uint64
	stamps         []genStamp
}

// planCache is an LRU of compiled plans keyed by normalized query text.
// Entries and the plans inside them are shared and read-only after
// insertion.
type planCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
}

func newPlanCache(cap int) *planCache {
	return &planCache{cap: cap, ll: list.New(), entries: map[string]*list.Element{}}
}

// get returns the entry for key, promoting it to most-recently-used.
func (pc *planCache) get(key string) *planEntry {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el := pc.entries[key]
	if el == nil {
		return nil
	}
	pc.ll.MoveToFront(el)
	return el.Value.(*planEntry)
}

// put inserts (or replaces) an entry, evicting from the LRU tail past the
// cap. A non-positive cap disables the cache.
func (pc *planCache) put(e *planEntry) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.cap <= 0 {
		return
	}
	if el := pc.entries[e.key]; el != nil {
		el.Value = e
		pc.ll.MoveToFront(el)
		return
	}
	pc.entries[e.key] = pc.ll.PushFront(e)
	for pc.ll.Len() > pc.cap {
		pc.evictOldestLocked()
	}
}

func (pc *planCache) evictOldestLocked() {
	el := pc.ll.Back()
	if el == nil {
		return
	}
	pc.ll.Remove(el)
	delete(pc.entries, el.Value.(*planEntry).key)
	obs.CoordPlanCacheEvictions.Inc()
}

// remove drops one entry (a lookup found it stale).
func (pc *planCache) remove(key string) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el := pc.entries[key]; el != nil {
		pc.ll.Remove(el)
		delete(pc.entries, key)
	}
}

// clear drops every entry (explicit invalidation; not counted as
// evictions — nothing was displaced by capacity).
func (pc *planCache) clear() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.ll.Init()
	pc.entries = map[string]*list.Element{}
}

// setCap resizes the cache, evicting down to the new cap; non-positive
// disables caching and drops everything.
func (pc *planCache) setCap(n int) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.cap = n
	if n <= 0 {
		pc.ll.Init()
		pc.entries = map[string]*list.Element{}
		return
	}
	for pc.ll.Len() > n {
		pc.evictOldestLocked()
	}
}

// size reports the number of cached plans.
func (pc *planCache) size() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.ll.Len()
}

// enabled reports whether the cache accepts entries.
func (pc *planCache) enabled() bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.cap > 0
}
