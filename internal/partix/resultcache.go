package partix

import (
	"container/list"
	"sync"

	"partix/internal/cluster"
	"partix/internal/obs"
	"partix/internal/xquery"
)

// The result cache serves a repeated query's fully merged result with
// zero node round-trips and zero plan work. Like the plan cache it is
// keyed by normalized query text; unlike the plan cache it is
// byte-budgeted — an entry's cost is the serialized size of its items,
// so the budget bounds coordinator memory, not entry count. Each entry
// records the catalog version and the (node, collection, generation)
// stamps of every fragment the execution touched, captured before the
// sub-queries ran; on lookup the entry is revalidated against the
// current catalog version and the statistics cache's view of those
// generations. Any drift discards the entry — a node-side mutation is
// visible within the statistics TTL, immediately with a zero TTL.
// Publish clears the cache eagerly.
//
// The cache is OFF by default (budget 0): repeating a query must
// re-execute it under the paper's measured methodology, and the
// benchmark harness repeats queries by design. Serving deployments
// enable it with System.SetResultCacheBytes.

// defaultResultEntryFraction derives the per-entry size cap from the
// budget when none is set explicitly: one entry may use at most 1/16 of
// the budget, so a single huge result cannot monopolize the cache.
const defaultResultEntryFraction = 16

// resultEntry is one cached merged query result. Entries are immutable
// after insertion: the items sequence is shared with every hit, which is
// safe because result items are never mutated by callers of Query.
type resultEntry struct {
	key            string
	items          xquery.Seq
	strategy       Strategy
	fragments      []string
	skipped        []string
	work           map[string]*xquery.WorkloadKeys // profiler keys, mined at plan time
	bytes          int64
	catalogVersion uint64
	stamps         []genStamp
}

// resultFlight is one in-progress upstream execution of a cache key.
// Followers block on done; the leader closes it after populating (or
// failing), and followers re-check the cache before executing themselves.
type resultFlight struct {
	done chan struct{}
}

// resultCache is a byte-budgeted LRU of merged query results with
// singleflight coordination per key.
type resultCache struct {
	mu       sync.Mutex
	budget   int64 // total byte budget; <= 0 disables the cache
	maxEntry int64 // per-entry cap; 0 derives budget/defaultResultEntryFraction
	bytes    int64
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	flights  map[string]*resultFlight
}

func newResultCache() *resultCache {
	return &resultCache{
		ll:      list.New(),
		entries: map[string]*list.Element{},
		flights: map[string]*resultFlight{},
	}
}

// get returns the entry for key, promoting it to most-recently-used.
func (rc *resultCache) get(key string) *resultEntry {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	el := rc.entries[key]
	if el == nil {
		return nil
	}
	rc.ll.MoveToFront(el)
	return el.Value.(*resultEntry)
}

// put inserts (or replaces) an entry and evicts from the LRU tail until
// the byte budget holds again. Entries over the per-entry cap are the
// caller's job to reject; put only enforces the total budget.
func (rc *resultCache) put(e *resultEntry) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.budget <= 0 {
		return
	}
	if el := rc.entries[e.key]; el != nil {
		rc.bytes -= el.Value.(*resultEntry).bytes
		el.Value = e
		rc.ll.MoveToFront(el)
	} else {
		rc.entries[e.key] = rc.ll.PushFront(e)
	}
	rc.bytes += e.bytes
	for rc.bytes > rc.budget && rc.ll.Len() > 1 {
		rc.evictOldestLocked()
	}
	// A single entry over budget (possible when the per-entry cap was
	// raised above the budget) still gets dropped.
	if rc.bytes > rc.budget {
		rc.evictOldestLocked()
	}
	obs.CoordResultCacheBytes.Set(rc.bytes)
}

func (rc *resultCache) evictOldestLocked() {
	el := rc.ll.Back()
	if el == nil {
		return
	}
	rc.ll.Remove(el)
	entry := el.Value.(*resultEntry)
	delete(rc.entries, entry.key)
	rc.bytes -= entry.bytes
	obs.CoordResultCacheEvictions.Inc()
}

// remove drops one entry (a lookup found it stale).
func (rc *resultCache) remove(key string) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if el := rc.entries[key]; el != nil {
		rc.ll.Remove(el)
		rc.bytes -= el.Value.(*resultEntry).bytes
		delete(rc.entries, key)
		obs.CoordResultCacheBytes.Set(rc.bytes)
	}
}

// clear drops every entry (eager invalidation on Publish and
// InvalidatePlans; not counted as evictions — nothing was displaced by
// capacity).
func (rc *resultCache) clear() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.ll.Init()
	rc.entries = map[string]*list.Element{}
	rc.bytes = 0
	obs.CoordResultCacheBytes.Set(0)
}

// setBudget resizes the byte budget, evicting down LRU-first; zero or
// negative disables the cache and drops everything.
func (rc *resultCache) setBudget(n int64) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.budget = n
	if n <= 0 {
		rc.ll.Init()
		rc.entries = map[string]*list.Element{}
		rc.bytes = 0
		obs.CoordResultCacheBytes.Set(0)
		return
	}
	for rc.bytes > n && rc.ll.Len() > 0 {
		rc.evictOldestLocked()
	}
	obs.CoordResultCacheBytes.Set(rc.bytes)
}

// setMaxEntry overrides the per-entry size cap; zero restores the
// budget-derived default.
func (rc *resultCache) setMaxEntry(n int64) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.maxEntry = n
}

// entryCap is the current per-entry size cap.
func (rc *resultCache) entryCap() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.maxEntry > 0 {
		return rc.maxEntry
	}
	return rc.budget / defaultResultEntryFraction
}

// usage reports the bytes currently held.
func (rc *resultCache) usage() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.bytes
}

// size reports the number of cached results.
func (rc *resultCache) size() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.ll.Len()
}

// enabled reports whether the cache accepts entries.
func (rc *resultCache) enabled() bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.budget > 0
}

// beginFlight joins the singleflight for key: the first caller becomes
// the leader (and must call endFlight when its execution — successful or
// not — is over); later callers get the leader's flight to wait on.
func (rc *resultCache) beginFlight(key string) (*resultFlight, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if fl := rc.flights[key]; fl != nil {
		return fl, false
	}
	fl := &resultFlight{done: make(chan struct{})}
	rc.flights[key] = fl
	return fl, true
}

// endFlight releases the leadership for key and wakes every follower.
func (rc *resultCache) endFlight(key string) {
	rc.mu.Lock()
	fl := rc.flights[key]
	delete(rc.flights, key)
	rc.mu.Unlock()
	if fl != nil {
		close(fl.done)
	}
}

// resultEntryBytes is the accounted cost of caching a result: the
// serialized size of its items (the transmission model's payload size)
// plus the key and a fixed per-entry overhead for the bookkeeping.
func resultEntryBytes(key string, items xquery.Seq) int64 {
	const entryOverhead = 256
	return int64(cluster.SeqBytes(items)) + int64(len(key)) + entryOverhead
}
