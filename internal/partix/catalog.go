// Package partix implements the PartiX middleware of the paper's Section 4:
// the XML Schema Catalog Service and XML Distribution Catalog Service, the
// Distributed XML Data Publisher, and the Distributed XML Query Service
// that analyzes path expressions, identifies the fragments referenced by a
// query, rewrites it into sub-queries over fragment collections, gathers
// partial results and composes the final answer.
package partix

import (
	"fmt"
	"sort"
	"sync"

	"partix/internal/fragmentation"
	"partix/internal/xmlschema"
)

// CollectionMeta is one catalog entry: the schema information (optional)
// and the distribution design of a global collection.
type CollectionMeta struct {
	// Name of the global collection queries reference.
	Name string
	// Spec optionally carries the collection's schema and root type.
	Spec *xmlschema.CollectionSpec
	// Scheme is the fragmentation design; nil for unfragmented
	// collections.
	Scheme *fragmentation.Scheme
	// Placement maps fragment name → primary node name. Unfragmented
	// collections use the empty fragment name "" for their single node.
	Placement map[string]string
	// Replicas maps fragment name → additional nodes holding a full copy
	// of the fragment; the query service fails over to them when the
	// primary is unreachable.
	Replicas map[string][]string
	// Mode is how hybrid fragments were materialized.
	Mode fragmentation.MaterializeMode
}

// Fragmented reports whether the collection has a fragmentation scheme.
func (m *CollectionMeta) Fragmented() bool { return m.Scheme != nil }

// NodeCollection is the name a fragment's documents are stored under on
// its node.
func (m *CollectionMeta) NodeCollection(fragment string) string {
	if fragment == "" {
		return m.Name
	}
	return m.Name + "::" + fragment
}

// Catalog is the middleware's metadata store: which collections exist,
// how they are fragmented, and where the fragments live.
type Catalog struct {
	mu          sync.RWMutex
	collections map[string]*CollectionMeta
	version     uint64
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{collections: map[string]*CollectionMeta{}}
}

// Register adds (or replaces) a collection's metadata. The fragmentation
// scheme, when present, is statically validated and every fragment must be
// placed on a node.
func (c *Catalog) Register(meta *CollectionMeta) error {
	if meta.Name == "" {
		return fmt.Errorf("partix: collection without a name")
	}
	if meta.Scheme != nil {
		if err := meta.Scheme.Validate(); err != nil {
			return err
		}
		for _, f := range meta.Scheme.Fragments {
			if meta.Placement[f.Name] == "" {
				return fmt.Errorf("partix: fragment %q of %q has no placement", f.Name, meta.Name)
			}
		}
	} else if meta.Placement[""] == "" {
		return fmt.Errorf("partix: unfragmented collection %q needs a placement", meta.Name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.collections[meta.Name] = meta
	c.version++ // every (re-)registration invalidates plans built against the old catalog
	return nil
}

// Version is the catalog's registration generation: it starts at zero and
// every Register bumps it. Compiled plans embed the version they were
// built against and are discarded when it moves.
func (c *Catalog) Version() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// Lookup returns the metadata of a collection, or nil.
func (c *Catalog) Lookup(name string) *CollectionMeta {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.collections[name]
}

// Collections lists registered collection names, sorted.
func (c *Catalog) Collections() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.collections))
	for name := range c.collections {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
