package partix

import (
	"strings"
	"testing"
)

func TestExplainRouted(t *testing.T) {
	s := newTestSystem(t, 3)
	publishHorizontal(t, s, 12)
	plan, err := s.Explain(`for $i in collection("items")/Item where $i/Section = "CD" return $i/Name`)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != StrategyRouted {
		t.Fatalf("strategy = %s", plan.Strategy)
	}
	if len(plan.Steps) != 1 || plan.Steps[0].Fragment != "Fcd" || plan.Steps[0].Node != "node0" {
		t.Fatalf("steps = %+v", plan.Steps)
	}
	// The rewritten sub-query targets the fragment's node collection.
	if !strings.Contains(plan.Steps[0].Query, `collection("items::Fcd")`) {
		t.Fatalf("sub-query = %s", plan.Steps[0].Query)
	}
	if len(plan.Collections) != 1 || plan.Collections[0] != "items" {
		t.Fatalf("collections = %v", plan.Collections)
	}
}

func TestExplainUnionListsAllFragments(t *testing.T) {
	s := newTestSystem(t, 3)
	publishHorizontal(t, s, 12)
	plan, err := s.Explain(`for $i in collection("items")/Item where contains($i/Description, "good") return $i/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != StrategyUnion || len(plan.Steps) != 3 {
		t.Fatalf("plan = %+v", plan)
	}
	for _, st := range plan.Steps {
		if st.Query == "" {
			t.Fatalf("union step lacks a sub-query: %+v", st)
		}
	}
}

func TestExplainAggregate(t *testing.T) {
	s := newTestSystem(t, 3)
	publishHorizontal(t, s, 12)
	plan, err := s.Explain(`count(for $i in collection("items")/Item return $i)`)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != StrategyAggregate {
		t.Fatalf("strategy = %s", plan.Strategy)
	}
}

func TestExplainReconstruct(t *testing.T) {
	s := newTestSystem(t, 3)
	publishVertical(t, s, 6)
	plan, err := s.Explain(`for $a in collection("articles")/article where $a/prolog/genre = "g1" return $a/body`)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != StrategyReconstruct {
		t.Fatalf("strategy = %s", plan.Strategy)
	}
	if len(plan.Steps) != 2 {
		t.Fatalf("steps = %+v (want prolog+body fetches)", plan.Steps)
	}
	for _, st := range plan.Steps {
		if st.Query != "" {
			t.Fatalf("reconstruction fetch should have no sub-query: %+v", st)
		}
	}
}

func TestExplainDoesNotExecute(t *testing.T) {
	s := newTestSystem(t, 3)
	publishHorizontal(t, s, 12)
	// Explaining a query over a registered collection never touches node
	// data — even a query whose predicate matches nothing still plans.
	plan, err := s.Explain(`for $i in collection("items")/Item where $i/Section = "Nonexistent" return $i`)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != StrategyUnion && plan.Strategy != StrategyRouted {
		t.Fatalf("strategy = %s", plan.Strategy)
	}
}

func TestExplainErrors(t *testing.T) {
	s := newTestSystem(t, 1)
	if _, err := s.Explain(`nonsense ~~~`); err == nil {
		t.Fatal("syntax error accepted")
	}
	if _, err := s.Explain(`for $x in collection("ghost")/a return $x`); err == nil {
		t.Fatal("unknown collection accepted")
	}
}

func TestExplainEmptyRoute(t *testing.T) {
	s := newTestSystem(t, 3)
	publishHorizontal(t, s, 12)
	// Contradicts every fragment: Section can't equal two values at once.
	plan, err := s.Explain(`for $i in collection("items")/Item where $i/Section = "CD" and $i/Section = "DVD" return $i`)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 0 {
		t.Fatalf("contradictory query plans steps: %+v", plan.Steps)
	}
}
