package partix

import (
	"fmt"

	"partix/internal/xquery"
)

// rewriteForFragment produces the sub-query for one fragment: every
// collection(from) reference becomes collection(to), and — for hybrid
// fragments materialized as independent documents (FragMode1) — the
// leading strip labels are removed from collection-rooted paths, because
// the fragment's documents are rooted at the repeating child rather than
// at the original document root (e.g. /Store/Items/Item over the global
// collection becomes /Item over the fragment).
//
// It fails when a path cannot be stripped (a bare collection() reference,
// a predicate or descendant axis inside the stripped prefix); callers fall
// back to a reconstruction strategy then.
func rewriteForFragment(e xquery.Expr, from, to string, strip []string) (xquery.Expr, error) {
	renamed := xquery.RewriteCollections(e, map[string]string{from: to})
	if len(strip) == 0 {
		return renamed, nil
	}
	return stripPrefix(renamed, to, strip)
}

func stripPrefix(e xquery.Expr, collection string, strip []string) (xquery.Expr, error) {
	switch x := e.(type) {
	case nil:
		return nil, nil
	case *xquery.FLWOR:
		cp := &xquery.FLWOR{}
		for _, cl := range x.Clauses {
			in, err := stripPrefix(cl.In, collection, strip)
			if err != nil {
				return nil, err
			}
			cp.Clauses = append(cp.Clauses, xquery.Clause{Let: cl.Let, Var: cl.Var, In: in})
		}
		var err error
		if cp.Where, err = stripPrefix(x.Where, collection, strip); err != nil {
			return nil, err
		}
		for _, o := range x.OrderBy {
			key, err := stripPrefix(o.Key, collection, strip)
			if err != nil {
				return nil, err
			}
			cp.OrderBy = append(cp.OrderBy, xquery.OrderSpec{Key: key, Descending: o.Descending})
		}
		if cp.Return, err = stripPrefix(x.Return, collection, strip); err != nil {
			return nil, err
		}
		return cp, nil
	case *xquery.CollectionCall:
		if x.Name == collection {
			return nil, fmt.Errorf("partix: bare collection(%q) cannot run over item-rooted fragment documents", collection)
		}
		return x, nil
	case *xquery.PathExpr:
		cp := &xquery.PathExpr{}
		// Strip only paths rooted at the target collection.
		if cc, ok := x.Source.(*xquery.CollectionCall); ok && cc.Name == collection {
			if len(x.Steps) <= len(strip) {
				return nil, fmt.Errorf("partix: path over collection(%q) does not descend past the fragment root", collection)
			}
			for i, want := range strip {
				st := x.Steps[i]
				if st.Descendant || st.Attr || st.Text || len(st.Preds) > 0 || (st.Name != want && st.Name != "*") {
					return nil, fmt.Errorf("partix: cannot strip step %d of path over collection(%q)", i, collection)
				}
			}
			cp.Source = cc
			x = &xquery.PathExpr{Source: cc, Steps: x.Steps[len(strip):]}
		} else {
			src, err := stripPrefix(x.Source, collection, strip)
			if err != nil {
				return nil, err
			}
			cp.Source = src
		}
		for _, st := range x.Steps {
			ns := xquery.PathStep{Descendant: st.Descendant, Name: st.Name, Attr: st.Attr, Text: st.Text}
			for _, p := range st.Preds {
				sp, err := stripPrefix(p, collection, strip)
				if err != nil {
					return nil, err
				}
				ns.Preds = append(ns.Preds, sp)
			}
			cp.Steps = append(cp.Steps, ns)
		}
		return cp, nil
	case *xquery.Binary:
		l, err := stripPrefix(x.Left, collection, strip)
		if err != nil {
			return nil, err
		}
		r, err := stripPrefix(x.Right, collection, strip)
		if err != nil {
			return nil, err
		}
		return &xquery.Binary{Op: x.Op, Left: l, Right: r}, nil
	case *xquery.FuncCall:
		cp := &xquery.FuncCall{Name: x.Name}
		for _, a := range x.Args {
			sa, err := stripPrefix(a, collection, strip)
			if err != nil {
				return nil, err
			}
			cp.Args = append(cp.Args, sa)
		}
		return cp, nil
	case *xquery.Sequence:
		cp := &xquery.Sequence{}
		for _, it := range x.Items {
			si, err := stripPrefix(it, collection, strip)
			if err != nil {
				return nil, err
			}
			cp.Items = append(cp.Items, si)
		}
		return cp, nil
	case *xquery.ElementCtor:
		cp := &xquery.ElementCtor{Name: x.Name}
		for _, a := range x.Attrs {
			v, err := stripPrefix(a.Value, collection, strip)
			if err != nil {
				return nil, err
			}
			cp.Attrs = append(cp.Attrs, xquery.AttrCtor{Name: a.Name, Value: v})
		}
		for _, c := range x.Children {
			sc, err := stripPrefix(c, collection, strip)
			if err != nil {
				return nil, err
			}
			cp.Children = append(cp.Children, sc)
		}
		return cp, nil
	case *xquery.IfExpr:
		cond, err := stripPrefix(x.Cond, collection, strip)
		if err != nil {
			return nil, err
		}
		then, err := stripPrefix(x.Then, collection, strip)
		if err != nil {
			return nil, err
		}
		els, err := stripPrefix(x.Else, collection, strip)
		if err != nil {
			return nil, err
		}
		return &xquery.IfExpr{Cond: cond, Then: then, Else: els}, nil
	case *xquery.Quantified:
		cp := &xquery.Quantified{Every: x.Every}
		for _, cl := range x.Clauses {
			in, err := stripPrefix(cl.In, collection, strip)
			if err != nil {
				return nil, err
			}
			cp.Clauses = append(cp.Clauses, xquery.Clause{Let: cl.Let, Var: cl.Var, In: in})
		}
		sat, err := stripPrefix(x.Satisfies, collection, strip)
		if err != nil {
			return nil, err
		}
		cp.Satisfies = sat
		return cp, nil
	default:
		// Remaining kinds are leaves (literals, variables, doc()).
		return e, nil
	}
}
