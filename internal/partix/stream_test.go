package partix

import (
	"fmt"
	"testing"

	"partix/internal/cluster"
	"partix/internal/xquery"
)

// StreamQuery keeps failingNode honest in streaming mode: without this
// override the embedded driver's StreamQuery would be promoted and
// bypass the down flag entirely.
func (f *failingNode) StreamQuery(q string, yield func(xquery.Seq) error) error {
	if f.down {
		return fmt.Errorf("node %s is down", f.Name())
	}
	if st, ok := f.Driver.(cluster.Streamer); ok {
		return st.StreamQuery(q, yield)
	}
	items, err := f.Driver.ExecuteQuery(q)
	if err != nil {
		return err
	}
	return yield(items)
}

// streamedPair builds two identical fragmented deployments, one in the
// paper's sequential mode and one in concurrent (streaming) mode.
func streamedPair(t *testing.T, docs int) (seq, stream *System) {
	t.Helper()
	seq = newTestSystem(t, 3)
	publishHorizontal(t, seq, docs)
	stream = newTestSystem(t, 3)
	publishHorizontal(t, stream, docs)
	stream.SetConcurrent(true)
	return seq, stream
}

// Streamed composition produces exactly the monolithic result — same
// items, same order — for union and for every decomposable aggregate.
func TestStreamedCompositionMatchesMonolithic(t *testing.T) {
	seqSys, streamSys := streamedPair(t, 24)
	queries := []string{
		`for $i in collection("items")/Item where contains($i/Description, "good") return $i/Code`,
		`collection("items")/Item/Code`,
		`count(collection("items")/Item)`,
		`sum(collection("items")/Item/@id)`,
		`min(collection("items")/Item/@id)`,
		`max(collection("items")/Item/@id)`,
		`avg(collection("items")/Item/@id)`,
	}
	for _, q := range queries {
		want, err := seqSys.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		got, err := streamSys.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		ws, gs := itemsAsStrings(want.Items), itemsAsStrings(got.Items)
		if fmt.Sprint(ws) != fmt.Sprint(gs) {
			t.Fatalf("%s:\nstreamed:   %v\nmonolithic: %v", q, gs, ws)
		}
		if want.Strategy != got.Strategy {
			t.Fatalf("%s: strategy %s vs %s", q, got.Strategy, want.Strategy)
		}
		if !got.Streamed {
			t.Fatalf("%s: concurrent result not marked streamed", q)
		}
		if want.Streamed {
			t.Fatalf("%s: sequential result marked streamed", q)
		}
		if len(got.Items) > 0 && got.FirstItemLatency == 0 {
			t.Fatalf("%s: first-item latency not measured", q)
		}
		if got.Frames == 0 || got.StreamedBytes == 0 {
			t.Fatalf("%s: frame accounting missing: frames=%d bytes=%d", q, got.Frames, got.StreamedBytes)
		}
	}
}

// exists()/empty() over fragments compose as a boolean fold (the OR/AND
// of the per-fragment verdicts), matching the centralized answer in both
// execution modes. A union composition would concatenate the booleans.
func TestDeciderComposition(t *testing.T) {
	central := newTestSystem(t, 1)
	if err := central.Publish(itemsCollection(24), nil, map[string]string{"": "node0"}, PublishOptions{}); err != nil {
		t.Fatal(err)
	}
	seqSys, streamSys := streamedPair(t, 24)

	queries := []string{
		`exists(collection("items")/Item)`,
		`exists(for $i in collection("items")/Item where contains($i/Description, "nosuchtext") return $i)`,
		`empty(collection("items")/Item)`,
		`empty(for $i in collection("items")/Item where contains($i/Description, "nosuchtext") return $i)`,
	}
	for _, q := range queries {
		want, err := central.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		for name, sys := range map[string]*System{"sequential": seqSys, "streamed": streamSys} {
			got, err := sys.Query(q)
			if err != nil {
				t.Fatalf("%s (%s): %v", q, name, err)
			}
			if len(got.Items) != 1 {
				t.Fatalf("%s (%s): %d items, want a single boolean (union leak?)", q, name, len(got.Items))
			}
			if got.Items[0] != want.Items[0] {
				t.Fatalf("%s (%s): %v, centralized says %v", q, name, got.Items[0], want.Items[0])
			}
			if got.Strategy != StrategyAggregate {
				t.Fatalf("%s (%s): strategy = %s, want aggregate", q, name, got.Strategy)
			}
		}
	}
}

// A decisive verdict cancels the remaining sub-queries: with the
// concurrency cap at 1, the first fragment's true decides exists() and
// the queued fragments never run.
func TestDeciderEarlyTermination(t *testing.T) {
	_, streamSys := streamedPair(t, 24)
	streamSys.SetMaxConcurrent(1)
	res, err := streamSys.Query(`exists(collection("items")/Item)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 || res.Items[0] != true {
		t.Fatalf("items = %v, want [true]", res.Items)
	}
	cancelled := 0
	for _, sub := range res.Sub {
		if sub.Cancelled {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatalf("no sub-query cancelled after the verdict: %+v", res.Sub)
	}
}

// Sub-timings carry the streaming measurements.
func TestStreamedSubTimings(t *testing.T) {
	_, streamSys := streamedPair(t, 24)
	res, err := streamSys.Query(`collection("items")/Item/Code`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sub) != 3 {
		t.Fatalf("sub-queries = %d", len(res.Sub))
	}
	totalItems := 0
	for _, sub := range res.Sub {
		if sub.FirstFrame == 0 && sub.Items > 0 {
			t.Fatalf("sub %s: no first-frame latency", sub.Fragment)
		}
		totalItems += sub.Items
	}
	if totalItems != len(res.Items) {
		t.Fatalf("sub item counts sum to %d, result has %d", totalItems, len(res.Items))
	}
}

// A dead primary fails over to its replica mid-plan: the streamed union
// still matches the healthy sequential answer, with nothing delivered
// twice after the sink reset.
func TestStreamedFailoverNoDoubleDelivery(t *testing.T) {
	s, failer := replicatedSystem(t)
	q := `collection("items")/Item/Code`
	base, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want := itemsAsStrings(base.Items)
	if len(want) == 0 {
		t.Fatal("no items in fixture")
	}

	failer.down = true
	s.SetConcurrent(true)
	got, err := s.Query(q)
	if err != nil {
		t.Fatalf("streamed failover did not kick in: %v", err)
	}
	if fmt.Sprint(itemsAsStrings(got.Items)) != fmt.Sprint(want) {
		t.Fatalf("failover union differs:\nstreamed: %v\nhealthy:  %v", itemsAsStrings(got.Items), want)
	}
}
