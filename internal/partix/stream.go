package partix

import (
	"fmt"
	"time"

	"partix/internal/cluster"
	"partix/internal/xquery"
)

// executeStreaming runs a sub-query plan through the streaming executor:
// result batches merge into the composition as they arrive, so the
// coordinator overlaps composing with the nodes' transmission instead of
// waiting for every materialized sub-result. Early-terminating
// compositions (exists/empty) cancel the remaining streams as soon as
// one fragment's verdict decides the global answer. The composed items
// are identical to the monolithic path's at every batch size.
func (s *System) executeStreaming(e xquery.Expr, fqs []fragQuery, strategy Strategy, tag string) (*QueryResult, error) {
	subs, err := s.buildSubs(fqs, "", tag)
	if err != nil {
		return nil, err
	}
	multi := len(subs) > 1
	var sink cluster.StreamSink
	var finish func() (xquery.Seq, error)
	if name, ok := topLevelDecider(e); ok && multi {
		d := &deciderSink{name: name, values: make([]xquery.Seq, len(subs))}
		sink = d
		finish = d.finish
	} else if name, ok := topLevelAggregate(e); ok && multi {
		b := newBufferSink(len(subs))
		sink = b
		finish = func() (xquery.Seq, error) { return composeAggregateSeqs(name, b.parts) }
	} else {
		b := newBufferSink(len(subs))
		sink = b
		finish = func() (xquery.Seq, error) { return b.concat(), nil }
	}
	res, err := cluster.ExecuteStreamN(subs, s.cost, s.MaxConcurrent(), sink)
	if err != nil {
		return nil, err
	}
	// Only the final fold is charged as ComposeTime: the per-batch merges
	// happened while other nodes were still transmitting, which is the
	// point of streaming.
	start := time.Now()
	items, err := finish()
	if err != nil {
		return nil, err
	}
	out := (&execution{res: res}).result(strategy)
	out.Items = items
	out.ComposeTime = time.Since(start)
	return out, nil
}

// bufferSink accumulates batches per sub-query, preserving sub-query
// order for the ∪ reconstruction regardless of arrival interleaving.
type bufferSink struct {
	parts []xquery.Seq
}

func newBufferSink(n int) *bufferSink {
	return &bufferSink{parts: make([]xquery.Seq, n)}
}

// Batch implements cluster.StreamSink.
func (b *bufferSink) Batch(sub int, items xquery.Seq) (bool, error) {
	b.parts[sub] = append(b.parts[sub], items...)
	return false, nil
}

// Reset implements cluster.StreamSink (replica failover re-delivery).
func (b *bufferSink) Reset(sub int) { b.parts[sub] = nil }

func (b *bufferSink) concat() xquery.Seq {
	n := 0
	for _, p := range b.parts {
		n += len(p)
	}
	out := make(xquery.Seq, 0, n)
	for _, p := range b.parts {
		out = append(out, p...)
	}
	return out
}

// deciderSink composes exists()/empty() incrementally and stops the
// execution the moment one fragment's verdict is decisive: a true from
// any fragment decides exists(), a false decides empty(). Undecided
// streams keep their per-fragment verdicts for the final fold.
type deciderSink struct {
	name   string
	values []xquery.Seq
}

// Batch implements cluster.StreamSink.
func (d *deciderSink) Batch(sub int, items xquery.Seq) (bool, error) {
	d.values[sub] = append(d.values[sub], items...)
	for _, it := range items {
		v, ok := it.(bool)
		if !ok {
			return false, fmt.Errorf("partix: composing %s(): sub-result is %T, want boolean", d.name, it)
		}
		if (d.name == "exists") == v {
			// exists saw a true, or empty saw a false: decided.
			return true, nil
		}
	}
	return false, nil
}

// Reset implements cluster.StreamSink.
func (d *deciderSink) Reset(sub int) { d.values[sub] = nil }

func (d *deciderSink) finish() (xquery.Seq, error) {
	verdict, err := composeDecider(d.name, d.values)
	if err != nil {
		return nil, err
	}
	return xquery.Seq{verdict}, nil
}
