package partix

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"partix/internal/cluster"
	"partix/internal/fragmentation"
	"partix/internal/obs"
	"partix/internal/xmltree"
)

// System is a running PartiX deployment: a set of DBMS nodes behind
// drivers, the catalogs, and the query service configuration.
type System struct {
	mu            sync.RWMutex
	nodes         map[string]cluster.Driver
	catalog       *Catalog
	cost          cluster.CostModel
	concurrent    bool
	maxConcurrent int
	tracing       bool
	slowQuery     time.Duration
	logger        obs.Logger
	plannerStats  bool
	telemetry     bool

	planCache   *planCache
	statsCache  *statsCache
	resultCache *resultCache
	admission   *admission
	tenants     *tenantQuota

	// recorder and profiler are created once and never replaced; the
	// telemetry flag (not nil-ness) gates whether queries feed them.
	recorder *obs.FlightRecorder
	profiler *obs.WorkloadProfiler
}

// SetConcurrent switches sub-query execution between the paper's
// simulated mode (sequential with slowest-site accounting, the default)
// and real concurrent execution, which a deployment over remote nodes
// wants.
func (s *System) SetConcurrent(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.concurrent = on
}

// Concurrent reports the execution mode.
func (s *System) Concurrent() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.concurrent
}

// SetMaxConcurrent caps how many sub-queries run at once in concurrent
// mode; 0 (the default) means unlimited. The cap bounds coordinator
// resources when a query decomposes into many sub-queries.
func (s *System) SetMaxConcurrent(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxConcurrent = n
}

// MaxConcurrent reports the concurrent sub-query cap.
func (s *System) MaxConcurrent() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.maxConcurrent
}

// SetTracing enables distributed query tracing: every query gets a trace
// ID that is propagated to the nodes (protocol v3 peers return per-step
// spans) and the result carries the assembled span tree. Tracing forces
// the monolithic sub-query path — spans describe whole sub-queries, which
// framed delivery would split.
func (s *System) SetTracing(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracing = on
}

// Tracing reports whether distributed query tracing is enabled.
func (s *System) Tracing() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tracing
}

// SetSlowQueryThreshold makes queries slower than d emit a structured
// warning through the system logger (and count in the slow-query metric).
// Zero, the default, disables the log.
func (s *System) SetSlowQueryThreshold(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slowQuery = d
}

// SlowQueryThreshold reports the slow-query log threshold.
func (s *System) SlowQueryThreshold() time.Duration {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.slowQuery
}

// SetLogger installs the structured logger the query service uses for
// slow-query warnings. nil restores the default no-op logger.
func (s *System) SetLogger(l obs.Logger) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l == nil {
		l = obs.Nop()
	}
	s.logger = l
}

// Logger returns the system's structured logger (never nil).
func (s *System) Logger() obs.Logger {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.logger
}

// SetPlannerStats switches statistics-driven planning (fragment
// skipping, cardinality estimates, reconstruction ordering) on or off.
// On is the default; off restores pure rule-based planning — the naive
// union-all baseline the benchmarks compare against. Toggling drops all
// cached plans, which embed the decisions of the previous mode.
func (s *System) SetPlannerStats(on bool) {
	s.mu.Lock()
	changed := s.plannerStats != on
	s.plannerStats = on
	s.mu.Unlock()
	if changed {
		s.planCache.clear()
		// Cached results embed the previous mode's strategy and skipped
		// fragments, so they go too.
		s.resultCache.clear()
	}
}

// PlannerStats reports whether statistics-driven planning is enabled.
func (s *System) PlannerStats() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.plannerStats
}

// SetPlanCacheCap resizes the plan cache (default 128 entries),
// evicting down LRU-first; 0 or negative disables plan caching entirely.
func (s *System) SetPlanCacheCap(n int) {
	s.planCache.setCap(n)
}

// PlanCacheSize reports how many compiled plans are currently cached.
func (s *System) PlanCacheSize() int {
	return s.planCache.size()
}

// SetStatsTTL bounds how stale cached fragment statistics — and
// therefore plans and cached results validated against them — may be
// (default 30s). A zero or negative TTL refetches statistics on every
// plan and revalidation, making node-side mutations visible immediately.
func (s *System) SetStatsTTL(d time.Duration) {
	s.statsCache.setTTL(d)
	s.statsCache.clear()
}

// SetResultCacheBytes budgets the coordinator result cache: up to n
// bytes of fully merged query results (accounted at their serialized
// size) are kept and served on repeat queries with zero node round-trips
// and zero plan work, revalidated through the fragment-statistics
// generations the execution touched. Zero (the default) disables the
// cache — the paper's measured methodology re-executes every repeat.
func (s *System) SetResultCacheBytes(n int64) {
	s.resultCache.setBudget(n)
}

// SetResultCacheMaxEntry caps a single cached result's accounted size;
// larger results execute normally but are never cached. Zero (the
// default) derives the cap as budget/16.
func (s *System) SetResultCacheMaxEntry(n int64) {
	s.resultCache.setMaxEntry(n)
}

// ResultCacheSize reports how many merged results are currently cached.
func (s *System) ResultCacheSize() int { return s.resultCache.size() }

// ResultCacheBytes reports the bytes the result cache currently holds.
func (s *System) ResultCacheBytes() int64 { return s.resultCache.usage() }

// SetMaxInflight caps how many queries execute at once; the excess
// queues (see SetMaxQueued) and is shed with ErrOverloaded when the
// queue is full or the wait exceeds the queue timeout. Zero (the
// default) disables admission control. Result-cache hits bypass the
// gate — they cost no node work.
func (s *System) SetMaxInflight(n int) { s.admission.setMaxInflight(n) }

// SetMaxQueued bounds the admission queue: queries arriving beyond
// MaxInflight wait here for a slot; past this bound they are shed
// immediately with ErrOverloaded. Zero allows no queueing.
func (s *System) SetMaxQueued(n int) { s.admission.setMaxQueued(n) }

// SetQueueTimeout bounds how long a queued query waits for an execution
// slot before it is shed with ErrOverloaded (default 1s).
func (s *System) SetQueueTimeout(d time.Duration) { s.admission.setQueueWait(d) }

// QueuedQueries reports how many queries are waiting for an execution
// slot right now.
func (s *System) QueuedQueries() int { return s.admission.queued() }

// SetTenantQuota installs a token-bucket quota applied per tenant tag
// (see QueryAs): each tenant may issue `burst` queries instantly and
// `rate` queries per second sustained; beyond that QueryAs fails with
// ErrOverloaded. rate <= 0 (the default) disables quotas.
func (s *System) SetTenantQuota(rate, burst float64) { s.tenants.set(rate, burst) }

// InvalidatePlans drops every cached plan, cached result and
// fragment-statistics snapshot. Callers mutating node data behind the
// coordinator's back (outside Publish) use it to make the changes
// visible before the statistics TTL would.
func (s *System) InvalidatePlans() {
	s.planCache.clear()
	s.resultCache.clear()
	s.statsCache.clear()
}

// Metrics snapshots the process-wide observability registry: every
// partix_* series with its current value (histograms as _sum/_count
// pairs). The map is a copy; mutating it changes nothing.
func (s *System) Metrics() map[string]float64 {
	return obs.Default.Snapshot()
}

// NewSystem returns a system with the given communication cost model.
// Statistics-driven planning and the plan cache are on by default; see
// SetPlannerStats, SetPlanCacheCap and SetStatsTTL.
func NewSystem(cost cluster.CostModel) *System {
	return &System{
		nodes:        map[string]cluster.Driver{},
		catalog:      NewCatalog(),
		cost:         cost,
		logger:       obs.Nop(),
		plannerStats: true,
		telemetry:    true,
		planCache:    newPlanCache(defaultPlanCacheCap),
		statsCache:   newStatsCache(defaultStatsTTL),
		resultCache:  newResultCache(),
		admission:    newAdmission(),
		tenants:      newTenantQuota(),
		recorder:     obs.NewFlightRecorder(0),
		profiler:     obs.NewWorkloadProfiler(0),
	}
}

// AddNode registers a DBMS node.
func (s *System) AddNode(d cluster.Driver) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nodes[d.Name()] = d
}

// Node returns the driver for a node name, or nil.
func (s *System) Node(name string) cluster.Driver {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nodes[name]
}

// Nodes lists node names, sorted.
func (s *System) Nodes() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.nodes))
	for n := range s.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CheckNodes verifies connectivity to every registered node, returning
// node name → error (nil when healthy). Remote drivers are probed with a
// protocol round trip (cluster.Pinger); in-process drivers are always
// reachable and report nil.
func (s *System) CheckNodes() map[string]error {
	s.mu.RLock()
	nodes := make(map[string]cluster.Driver, len(s.nodes))
	for name, d := range s.nodes {
		nodes[name] = d
	}
	s.mu.RUnlock()
	out := make(map[string]error, len(nodes))
	for name, d := range nodes {
		if p, ok := d.(cluster.Pinger); ok {
			out[name] = p.Ping()
		} else {
			out[name] = nil
		}
	}
	return out
}

// CloseNodes closes every driver holding external resources (remote
// connections), joining any close errors. In-process drivers are left
// untouched — their engine's lifecycle belongs to the caller.
func (s *System) CloseNodes() error {
	s.mu.RLock()
	drivers := make([]cluster.Driver, 0, len(s.nodes))
	for _, d := range s.nodes {
		drivers = append(drivers, d)
	}
	s.mu.RUnlock()
	var errs []error
	for _, d := range drivers {
		if c, ok := d.(io.Closer); ok {
			if err := c.Close(); err != nil {
				errs = append(errs, fmt.Errorf("node %s: %w", d.Name(), err))
			}
		}
	}
	return errors.Join(errs...)
}

// Catalog exposes the metadata catalog.
func (s *System) Catalog() *Catalog { return s.catalog }

// CostModel returns the communication model in use.
func (s *System) CostModel() cluster.CostModel { return s.cost }

// PublishOptions configure Publish.
type PublishOptions struct {
	// Mode selects the hybrid materialization (FragMode1 vs FragMode2).
	Mode fragmentation.MaterializeMode
	// CheckCorrectness additionally verifies the three correctness rules
	// of Section 3.3 against the concrete collection before distributing
	// anything. It reads the whole collection, so large loads may prefer
	// to validate on a sample.
	CheckCorrectness bool
	// Replicas optionally maps fragment name → additional nodes that
	// receive a full copy of the fragment for failover.
	Replicas map[string][]string
}

// Publish is the Distributed XML Data Publisher: it registers the
// collection's metadata, applies the fragmentation to the documents, and
// sends each fragment to its node. placement maps fragment name → node
// name; for an unfragmented collection (scheme nil) use {"": node}.
func (s *System) Publish(c *xmltree.Collection, scheme *fragmentation.Scheme, placement map[string]string, opts PublishOptions) error {
	meta := &CollectionMeta{Name: c.Name, Scheme: scheme, Placement: placement, Replicas: opts.Replicas, Mode: opts.Mode}
	if err := s.catalog.Register(meta); err != nil {
		return err
	}
	// Registration bumped the catalog version, which already invalidates
	// cached plans and cached results; the statistics snapshots of the
	// touched nodes go stale too once documents land, so drop them when
	// publishing ends (even a partial publish mutated node data). The
	// result cache is cleared eagerly as well — its entries would only
	// die lazily on their next revalidation otherwise.
	defer func() {
		s.statsCache.clear()
		s.resultCache.clear()
	}()
	for frag, nodeName := range placement {
		if s.Node(nodeName) == nil {
			return fmt.Errorf("partix: placement of %q references unknown node %q", frag, nodeName)
		}
	}
	for frag, replicas := range opts.Replicas {
		for _, nodeName := range replicas {
			if s.Node(nodeName) == nil {
				return fmt.Errorf("partix: replica of %q references unknown node %q", frag, nodeName)
			}
		}
	}
	if scheme == nil {
		if err := s.storeCollection(placement[""], c.Name, c); err != nil {
			return err
		}
		for _, replica := range opts.Replicas[""] {
			if err := s.storeCollection(replica, c.Name, c); err != nil {
				return err
			}
		}
		return nil
	}
	if opts.CheckCorrectness {
		if err := scheme.Check(c); err != nil {
			return fmt.Errorf("partix: fragmentation of %q is incorrect: %w", c.Name, err)
		}
	}
	frags, err := scheme.ApplyMode(c, opts.Mode)
	if err != nil {
		return err
	}
	for i, f := range scheme.Fragments {
		targets := append([]string{placement[f.Name]}, opts.Replicas[f.Name]...)
		for _, nodeName := range targets {
			if err := s.storeCollection(nodeName, meta.NodeCollection(f.Name), frags[i]); err != nil {
				return fmt.Errorf("partix: publish fragment %q to %q: %w", f.Name, nodeName, err)
			}
		}
	}
	return nil
}

func (s *System) storeCollection(nodeName, collection string, c *xmltree.Collection) error {
	node := s.Node(nodeName)
	if node == nil {
		return fmt.Errorf("partix: unknown node %q", nodeName)
	}
	if err := node.CreateCollection(collection); err != nil {
		return err
	}
	for _, d := range c.Docs {
		if err := node.StoreDocument(collection, d); err != nil {
			return err
		}
	}
	return nil
}

// FragmentStats reports per-fragment document counts and bytes, as stored
// on the nodes.
func (s *System) FragmentStats(collection string) (map[string]int64, error) {
	meta := s.catalog.Lookup(collection)
	if meta == nil {
		return nil, fmt.Errorf("partix: unknown collection %q", collection)
	}
	out := map[string]int64{}
	for frag, nodeName := range meta.Placement {
		node := s.Node(nodeName)
		st, err := node.CollectionStats(meta.NodeCollection(frag))
		if err != nil {
			return nil, err
		}
		out[frag] = st.Bytes
	}
	return out, nil
}
