package partix

import (
	"math"
	"sort"

	"partix/internal/engine"
	"partix/internal/fragmentation"
	"partix/internal/obs"
	"partix/internal/xquery"
)

// Cost-based planning over fragment statistics.
//
// The rewrite rules decide what is *correct* to ship where; this file
// decides what is *cheap*. From each fragment's statistics snapshot the
// planner (a) proves fragments empty for the query and skips them — the
// union-all of the paper's Section 5 shrinks to the fragments that can
// contribute — (b) estimates per-sub-query cardinality and cost for
// Explain, and (c) orders reconstruction joins smallest-fetch-first.
//
// Skipping leans on the same soundness argument as the hint machinery:
// hint constraints are NECESSARY conditions for a document to contribute
// bindings, and a fragment without a single satisfying document produces
// the identity of every composition the executor performs (zero items
// for a union, 0 for count/sum, an empty sequence for min/max, the
// (0, 0) pair for a rewritten avg, false for exists, true for empty).
// Every exclusion rule below additionally mirrors the evaluator's
// comparison semantics exactly: a numeric literal compares numerically
// against numeric values but falls back to string comparison against
// non-numeric ones, so numeric-range exclusion also requires that the
// fragment has no non-numeric and no unindexed (overflow) values at the
// path. When any of that cannot be established the fragment is kept —
// a skipped fragment must be *provably* empty, never just probably.

// planEstimate is the planner's guess for one fragment's contribution.
type planEstimate struct {
	docs      int64   // estimated documents contributing bindings; -1 unknown
	cost      float64 // estimated bytes the sub-query touches; -1 unknown
	indexOnly bool    // the sub-query is an index-only probe on the node
}

// statsPlan accumulates what statistics-driven planning learned about one
// query: the constraint hint it evaluated, the per-fragment estimates,
// and the generation stamps of every snapshot consulted (which the plan
// cache validates against).
type statsPlan struct {
	hint    *xquery.Hint
	est     map[string]planEstimate
	stamps  []genStamp
	skipped []string
}

// newStatsPlan starts statistics-driven planning for a single-collection
// query, or returns nil when the system has it disabled.
func (s *System) newStatsPlan(e xquery.Expr, meta *CollectionMeta) *statsPlan {
	if !s.PlannerStats() {
		return nil
	}
	return &statsPlan{
		hint: xquery.ExtractHints(e)[meta.Name],
		est:  map[string]planEstimate{},
	}
}

// stamp records the snapshot consulted for one fragment.
func (sp *statsPlan) stamp(meta *CollectionMeta, fragment string, st *engine.CollectionStatistics) {
	gs := genStamp{node: meta.Placement[fragment], collection: meta.NodeCollection(fragment)}
	if st != nil {
		gs.gen = st.Generation
		gs.has = true
	}
	sp.stamps = append(sp.stamps, gs)
}

// apply copies the accumulated planning facts onto the finished plan.
func (sp *statsPlan) apply(p *queryPlan) *queryPlan {
	if sp != nil {
		p.skipped = sp.skipped
		p.stamps = sp.stamps
		p.est = sp.est
	}
	return p
}

// skipFragment consults the fragment's statistics and reports whether the
// query provably selects nothing there; when kept, the fragment's
// estimate is recorded instead.
func (s *System) skipFragment(sp *statsPlan, meta *CollectionMeta, f *fragmentation.Fragment) bool {
	st := s.fragmentStatistics(meta, f.Name)
	sp.stamp(meta, f.Name, st)
	if fragmentProvablyEmpty(st, sp.hint) {
		sp.skipped = append(sp.skipped, f.Name)
		obs.CoordFragmentsSkipped.Inc()
		return true
	}
	sp.est[f.Name] = estimateFragment(st, sp.hint)
	return false
}

// fragmentProvablyEmpty reports whether the statistics prove the query
// cannot select any document of the fragment: the fragment holds no
// documents at all, or some necessary constraint of the query is
// unsatisfiable against the fragment's paths and value ranges. Exclusion
// reasoning beyond the raw doc count needs a Complete snapshot — only
// then does "no path key matches" mean "no document has the path".
func fragmentProvablyEmpty(st *engine.CollectionStatistics, hint *xquery.Hint) bool {
	if st == nil {
		return false
	}
	if st.Docs == 0 {
		return true
	}
	if !st.Complete || hint == nil {
		return false
	}
	for _, c := range hint.Constraints {
		if c.Path != nil && constraintExcludes(st, c.Path) {
			return true
		}
	}
	return false
}

// constraintExcludes reports whether no document of the snapshot can
// satisfy one path constraint. Every path key matching the constraint's
// pattern must individually rule out a match; a pattern matching no key
// excludes trivially (no document has such a node).
func constraintExcludes(st *engine.CollectionStatistics, pc *xquery.PathConstraint) bool {
	for key, ps := range st.Paths {
		if !engine.PathKeyMatches(pc.Steps, key) {
			continue
		}
		if pc.Op == xquery.CmpExists {
			return false // some document has the path
		}
		if !pathExcludes(ps, pc.Op, pc.Literal) {
			return false
		}
	}
	return true
}

// pathExcludes reports whether no value at the path can satisfy
// `value OP literal` under the evaluator's comparison semantics.
func pathExcludes(ps engine.PathStats, op xquery.CmpOp, lit string) bool {
	if ps.Overflow > 0 {
		return false // unindexed values might match anything
	}
	if ps.Distinct == 0 {
		// Docs exist at the path but no values are indexed: a defensive
		// impossibility (every node value is indexed or overflows) — keep.
		return ps.Docs == 0
	}
	litNum, litIsNum := parseLitNum(lit)
	if litIsNum && !math.IsNaN(litNum) {
		// Numeric literal: numeric values compare numerically, but
		// non-numeric values fall back to string comparison — those cannot
		// be ruled out by a numeric range, so none may exist.
		if ps.NonNumeric > 0 {
			return false
		}
		if !ps.HasNum {
			return true // all values are NaN; NaN satisfies no comparison
		}
		switch op {
		case xquery.CmpEq:
			return litNum < ps.MinNum || litNum > ps.MaxNum
		case xquery.CmpLt:
			return ps.MinNum >= litNum
		case xquery.CmpLe:
			return ps.MinNum > litNum
		case xquery.CmpGt:
			return ps.MaxNum <= litNum
		case xquery.CmpGe:
			return ps.MaxNum < litNum
		}
		return false
	}
	if litIsNum {
		return false // NaN literal: mixed semantics, don't reason
	}
	// Non-numeric literal: every comparison is a string comparison, so the
	// raw string range over all values bounds them.
	switch op {
	case xquery.CmpEq:
		return lit < ps.MinStr || lit > ps.MaxStr
	case xquery.CmpLt:
		return ps.MinStr >= lit
	case xquery.CmpLe:
		return ps.MinStr > lit
	case xquery.CmpGt:
		return ps.MaxStr <= lit
	case xquery.CmpGe:
		return ps.MaxStr < lit
	}
	return false
}

// parseLitNum is the evaluator's numeric interpretation of a comparison
// operand, shared via xquery.ParseNumber so the planner's range reasoning
// cannot drift from the comparison semantics.
func parseLitNum(lit string) (float64, bool) { return xquery.ParseNumber(lit) }

// estimateFragment guesses how many documents of the fragment satisfy the
// query's constraints and how many stored bytes the sub-query touches.
// The guess is the tightest single-constraint selectivity — constraints
// are conjunctive, so each bounds the answer from above.
func estimateFragment(st *engine.CollectionStatistics, hint *xquery.Hint) planEstimate {
	if st == nil {
		return planEstimate{docs: -1, cost: -1}
	}
	docs := st.Docs
	if st.Complete && hint != nil {
		for _, c := range hint.Constraints {
			if c.Path == nil {
				continue
			}
			if e := constraintEstimate(st, c.Path); e < docs {
				docs = e
			}
		}
	}
	cost := float64(0)
	if st.Docs > 0 {
		cost = float64(st.Bytes) * float64(docs) / float64(st.Docs)
	}
	return planEstimate{docs: docs, cost: cost}
}

// constraintEstimate sums per-path selectivity estimates over the keys a
// constraint's pattern matches: uniform value distribution for equality,
// linear interpolation over the numeric range for inequalities, and the
// path's doc count for existence. Overflowed docs always count — they
// might match anything.
func constraintEstimate(st *engine.CollectionStatistics, pc *xquery.PathConstraint) int64 {
	var total int64
	for key, ps := range st.Paths {
		if !engine.PathKeyMatches(pc.Steps, key) {
			continue
		}
		total += pathEstimate(ps, pc.Op, pc.Literal)
	}
	return total
}

func pathEstimate(ps engine.PathStats, op xquery.CmpOp, lit string) int64 {
	if op == xquery.CmpExists {
		return ps.Docs
	}
	if pathExcludes(ps, op, lit) {
		return 0
	}
	indexed := ps.Docs - ps.Overflow
	if op == xquery.CmpEq {
		e := ps.Overflow + indexed/maxInt64(1, ps.Distinct)
		return maxInt64(1, e)
	}
	litNum, litIsNum := parseLitNum(lit)
	if litIsNum && !math.IsNaN(litNum) && ps.HasNum && ps.NonNumeric == 0 && ps.MaxNum > ps.MinNum {
		frac := 0.0
		switch op {
		case xquery.CmpLt, xquery.CmpLe:
			frac = (litNum - ps.MinNum) / (ps.MaxNum - ps.MinNum)
		case xquery.CmpGt, xquery.CmpGe:
			frac = (ps.MaxNum - litNum) / (ps.MaxNum - ps.MinNum)
		}
		frac = math.Min(1, math.Max(0, frac))
		return maxInt64(1, ps.Overflow+int64(frac*float64(indexed)))
	}
	return ps.Docs // inequality over strings or mixed types: no model
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// orderReconstruct sorts the fragments of a reconstruction plan by their
// stored size, smallest first, so the coordinator materializes the small
// sides of the ID join before the large ones. Reconstruction is
// order-insensitive (the join is by document ID), so this is purely a
// cost choice. Fragments without statistics sort last.
func (s *System) orderReconstruct(sp *statsPlan, meta *CollectionMeta, frags []*fragmentation.Fragment) []*fragmentation.Fragment {
	if sp == nil || len(frags) < 2 {
		return frags
	}
	type sized struct {
		f     *fragmentation.Fragment
		bytes int64
	}
	arr := make([]sized, len(frags))
	for i, f := range frags {
		st := s.fragmentStatistics(meta, f.Name)
		sp.stamp(meta, f.Name, st)
		b := int64(math.MaxInt64)
		if st != nil {
			b = st.Bytes
			sp.est[f.Name] = planEstimate{docs: st.Docs, cost: float64(st.Bytes)}
		} else {
			sp.est[f.Name] = planEstimate{docs: -1, cost: -1}
		}
		arr[i] = sized{f: f, bytes: b}
	}
	sort.SliceStable(arr, func(i, j int) bool { return arr[i].bytes < arr[j].bytes })
	out := make([]*fragmentation.Fragment, len(frags))
	for i, sz := range arr {
		out[i] = sz.f
	}
	return out
}

// annotateIndexOnly marks sub-queries the node can answer from its
// indexes alone (count/exists/empty over pred-free collection-rooted
// paths — the engine's index-only probe shapes). Purely informational:
// the node makes the actual probe decision; Explain surfaces it.
func annotateIndexOnly(sp *statsPlan, p *queryPlan) {
	if sp == nil {
		return
	}
	for _, fq := range p.subQueries {
		if !subIndexOnly(fq.expr) {
			continue
		}
		e := sp.est[fq.fragment]
		e.indexOnly = true
		sp.est[fq.fragment] = e
	}
}

func subIndexOnly(e xquery.Expr) bool {
	f, ok := e.(*xquery.FuncCall)
	if !ok || len(f.Args) != 1 {
		return false
	}
	switch f.Name {
	case "count":
		return xquery.ExtractCountProbe(f.Args[0]) != nil
	case "exists", "empty":
		return xquery.ExtractExistsProbe(f.Args[0]) != nil
	}
	return false
}
