package partix

import (
	"fmt"
	"time"

	"partix/internal/cluster"
	"partix/internal/xquery"
)

// fragQuery is one sub-query bound for a fragment's node.
type fragQuery struct {
	fragment string
	node     string
	replicas []string
	expr     xquery.Expr
}

// execution wraps the measured sub-query results.
type execution struct {
	res *cluster.ExecResult
}

// buildSubs resolves fragment queries to cluster sub-queries. A
// non-empty traceID rides along on every sub-query so nodes can record
// spans against it; tag is the cheap correlation identifier streamed
// sub-queries carry for log joining (it never switches a node onto the
// traced path).
func (s *System) buildSubs(fqs []fragQuery, traceID, tag string) ([]cluster.SubQuery, error) {
	subs := make([]cluster.SubQuery, 0, len(fqs))
	for _, fq := range fqs {
		node := s.Node(fq.node)
		if node == nil {
			return nil, fmt.Errorf("partix: unknown node %q", fq.node)
		}
		sub := cluster.SubQuery{
			Fragment: fq.fragment,
			Node:     node,
			Query:    xquery.Format(fq.expr),
			TraceID:  traceID,
			Tag:      tag,
		}
		for _, r := range fq.replicas {
			replica := s.Node(r)
			if replica == nil {
				return nil, fmt.Errorf("partix: unknown replica node %q", r)
			}
			sub.Replicas = append(sub.Replicas, replica)
		}
		subs = append(subs, sub)
	}
	return subs, nil
}

// execute ships the sub-queries through the cluster layer: sequentially
// with slowest-site accounting by default (the paper's methodology), or
// in parallel goroutines when the system runs in concurrent mode.
func (s *System) execute(fqs []fragQuery, traceID, tag string) (*execution, error) {
	subs, err := s.buildSubs(fqs, traceID, tag)
	if err != nil {
		return nil, err
	}
	run := cluster.Execute
	if s.Concurrent() {
		run = func(subs []cluster.SubQuery, cost cluster.CostModel) (*cluster.ExecResult, error) {
			return cluster.ExecuteConcurrentN(subs, cost, s.MaxConcurrent())
		}
	}
	res, err := run(subs, s.cost)
	if err != nil {
		return nil, err
	}
	return &execution{res: res}, nil
}

func (x *execution) items() xquery.Seq { return x.res.Items() }

func (x *execution) result(strategy Strategy) *QueryResult {
	out := &QueryResult{
		Strategy:         strategy,
		ParallelTime:     x.res.ParallelTime,
		TransmissionTime: x.res.TransmissionTime,
		Streamed:         x.res.Streamed,
		FirstItemLatency: x.res.FirstItem,
		Frames:           x.res.Frames,
	}
	for _, sub := range x.res.Sub {
		out.Fragments = append(out.Fragments, sub.Fragment)
		if x.res.Streamed {
			out.StreamedBytes += sub.ResultBytes
		}
		out.Sub = append(out.Sub, SubTiming{
			Fragment:    sub.Fragment,
			Node:        sub.Node,
			Elapsed:     sub.Elapsed,
			ResultBytes: sub.ResultBytes,
			Items:       sub.ItemCount,
			FirstFrame:  sub.FirstFrame,
			Cancelled:   sub.Cancelled,
			Spans:       sub.Spans,
		})
	}
	return out
}

// compose combines partial results per the planned strategy: centralized
// and routed plans pass through; an aggregate plan composes the
// per-fragment values (sum for count/sum, min/max for min/max, a
// sum-and-count division for avg, a boolean fold for exists/empty); a
// union plan concatenates (the ∪ reconstruction).
func (s *System) compose(e xquery.Expr, exec *execution, strategy Strategy) (*QueryResult, error) {
	if strategy == StrategyCentralized || strategy == StrategyRouted {
		res := exec.result(strategy)
		res.Items = exec.items()
		return res, nil
	}
	parts := make([]xquery.Seq, len(exec.res.Sub))
	for i, sub := range exec.res.Sub {
		parts[i] = sub.Items
	}
	start := time.Now()
	if name, ok := topLevelDecider(e); ok {
		verdict, err := composeDecider(name, parts)
		if err != nil {
			return nil, err
		}
		res := exec.result(StrategyAggregate)
		res.Items = xquery.Seq{verdict}
		res.ComposeTime = time.Since(start)
		return res, nil
	}
	if name, ok := topLevelAggregate(e); ok {
		items, err := composeAggregateSeqs(name, parts)
		if err != nil {
			return nil, err
		}
		res := exec.result(StrategyAggregate)
		res.Items = items
		res.ComposeTime = time.Since(start)
		return res, nil
	}
	res := exec.result(StrategyUnion)
	res.Items = exec.items()
	res.ComposeTime = time.Since(start)
	return res, nil
}

// composeAggregateSeqs folds the per-fragment partial sequences of a
// decomposable aggregate into the global value.
func composeAggregateSeqs(name string, parts []xquery.Seq) (xquery.Seq, error) {
	switch name {
	case "count", "sum":
		total := 0.0
		for _, part := range parts {
			for _, it := range part {
				v, err := itemFloat(it)
				if err != nil {
					return nil, fmt.Errorf("partix: composing %s(): %w", name, err)
				}
				total += v
			}
		}
		return xquery.Seq{total}, nil
	case "min", "max":
		var best *float64
		for _, part := range parts {
			for _, it := range part {
				v, err := itemFloat(it)
				if err != nil {
					return nil, fmt.Errorf("partix: composing %s(): %w", name, err)
				}
				if best == nil || (name == "min" && v < *best) || (name == "max" && v > *best) {
					v := v
					best = &v
				}
			}
		}
		if best == nil {
			return nil, nil // min/max over nothing is empty
		}
		return xquery.Seq{*best}, nil
	case "avg":
		// Sub-queries were rewritten to (sum(X), count(X)) pairs.
		sum, count := 0.0, 0.0
		for _, part := range parts {
			if len(part) != 2 {
				return nil, fmt.Errorf("partix: avg() sub-result has %d items, want (sum, count)", len(part))
			}
			sv, err := itemFloat(part[0])
			if err != nil {
				return nil, err
			}
			cv, err := itemFloat(part[1])
			if err != nil {
				return nil, err
			}
			sum += sv
			count += cv
		}
		if count == 0 {
			return nil, nil // avg of the empty sequence is empty
		}
		return xquery.Seq{sum / count}, nil
	default:
		return nil, fmt.Errorf("partix: unknown aggregate %q", name)
	}
}

// composeDecider folds per-fragment boolean verdicts: a global exists()
// is the OR of the fragments' exists(), a global empty() the AND of
// their empty().
func composeDecider(name string, parts []xquery.Seq) (bool, error) {
	verdict := name == "empty" // identity element: OR starts false, AND starts true
	for _, part := range parts {
		for _, it := range part {
			v, ok := it.(bool)
			if !ok {
				return false, fmt.Errorf("partix: composing %s(): sub-result is %T, want boolean", name, it)
			}
			if name == "exists" {
				verdict = verdict || v
			} else {
				verdict = verdict && v
			}
		}
	}
	return verdict, nil
}

// topLevelAggregate recognizes queries whose outermost expression is a
// decomposable aggregate.
func topLevelAggregate(e xquery.Expr) (string, bool) {
	f, ok := e.(*xquery.FuncCall)
	if !ok || len(f.Args) != 1 {
		return "", false
	}
	switch f.Name {
	case "count", "sum", "min", "max", "avg":
		return f.Name, true
	}
	return "", false
}

// topLevelDecider recognizes queries whose outermost expression is a
// boolean quantifier over one sequence. They compose by folding the
// per-fragment verdicts — exists() is the OR of the fragments'
// exists(), empty() the AND of their empty() — and, under streaming,
// terminate early: the first decisive verdict cancels the remaining
// sub-queries. (Composed as a plain union they would concatenate
// booleans, diverging from the centralized answer.)
func topLevelDecider(e xquery.Expr) (string, bool) {
	f, ok := e.(*xquery.FuncCall)
	if !ok || len(f.Args) != 1 {
		return "", false
	}
	switch f.Name {
	case "exists", "empty":
		return f.Name, true
	}
	return "", false
}

// rewriteAggregateForFragments prepares the per-fragment form of a
// decomposable aggregate: avg(X) becomes (sum(X), count(X)) so the
// coordinator can divide the totals; the distributive aggregates ship
// unchanged.
func rewriteAggregateForFragments(e xquery.Expr) xquery.Expr {
	f, ok := e.(*xquery.FuncCall)
	if !ok || f.Name != "avg" || len(f.Args) != 1 {
		return e
	}
	return &xquery.Sequence{Items: []xquery.Expr{
		&xquery.FuncCall{Name: "sum", Args: f.Args},
		&xquery.FuncCall{Name: "count", Args: f.Args},
	}}
}

func itemFloat(it xquery.Item) (float64, error) {
	if f, ok := it.(float64); ok {
		return f, nil
	}
	return 0, fmt.Errorf("aggregate sub-result is %T, want number", it)
}
