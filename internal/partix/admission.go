package partix

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"partix/internal/obs"
)

// Admission control bounds what the coordinator accepts instead of
// letting overload collapse it: a cap on queries executing at once, a
// bounded FIFO queue for the excess with a wait deadline (queue full or
// deadline exceeded sheds the query with ErrOverloaded), and per-tenant
// token-bucket quotas keyed by the client-supplied tenant tag. Cache
// hits bypass the queue entirely — they cost no node round-trips, so
// throttling them would only convert free answers into rejections.
// Everything is off by default; serving deployments opt in through
// System.SetMaxInflight, SetMaxQueued, SetQueueTimeout, SetTenantQuota.

// ErrOverloaded is returned (wrapped) when admission control rejects a
// query: the queue is full, the queue wait exceeded its deadline, or a
// tenant exhausted its quota. Callers detect it with errors.Is.
var ErrOverloaded = errors.New("partix: overloaded")

// defaultQueueTimeout bounds how long an admitted-to-queue query may
// wait for an execution slot before it is shed.
const defaultQueueTimeout = time.Second

// admission is the coordinator's execution gate.
type admission struct {
	mu          sync.Mutex
	maxInflight int           // 0 = unlimited (admission off)
	maxQueued   int           // queue cap once inflight is saturated
	queueWait   time.Duration // max queue wait; 0 = defaultQueueTimeout
	inflight    int
	queue       []chan struct{} // FIFO waiters; a send transfers the slot
}

func newAdmission() *admission {
	return &admission{}
}

func (a *admission) setMaxInflight(n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.maxInflight = n
}

func (a *admission) setMaxQueued(n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.maxQueued = n
}

func (a *admission) setQueueWait(d time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.queueWait = d
}

// acquire claims an execution slot, queuing when the coordinator is
// saturated. It returns the release func, or a wrapped ErrOverloaded
// when the query must be shed. With no inflight cap it is a no-op.
func (a *admission) acquire() (func(), error) {
	a.mu.Lock()
	if a.maxInflight <= 0 {
		a.mu.Unlock()
		return func() {}, nil
	}
	if a.inflight < a.maxInflight {
		a.inflight++
		a.mu.Unlock()
		return a.release, nil
	}
	if len(a.queue) >= a.maxQueued {
		a.mu.Unlock()
		obs.CoordShed.Inc()
		return nil, fmt.Errorf("%w: %d queries executing and %d queued", ErrOverloaded, a.maxInflight, a.maxQueued)
	}
	// Saturated but the queue has room: wait for a releasing query to
	// hand over its slot, up to the queue deadline.
	grant := make(chan struct{}, 1)
	a.queue = append(a.queue, grant)
	wait := a.queueWait
	if wait <= 0 {
		wait = defaultQueueTimeout
	}
	a.mu.Unlock()
	obs.CoordQueued.Inc()

	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-grant:
		// The releaser transferred its slot: inflight already counts us.
		return a.release, nil
	case <-timer.C:
	}
	// Deadline hit — but a grant may have raced the timer. Remove
	// ourselves from the queue; if we are no longer queued, the slot was
	// already handed over and sits in the grant buffer: take it.
	a.mu.Lock()
	for i, ch := range a.queue {
		if ch == grant {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			a.mu.Unlock()
			obs.CoordShed.Inc()
			return nil, fmt.Errorf("%w: queued longer than %v", ErrOverloaded, wait)
		}
	}
	a.mu.Unlock()
	<-grant
	return a.release, nil
}

// release returns an execution slot, handing it to the oldest queued
// waiter when one exists (the inflight count then stays unchanged — the
// slot moves, it is not freed).
func (a *admission) release() {
	a.mu.Lock()
	if len(a.queue) > 0 {
		grant := a.queue[0]
		a.queue = a.queue[1:]
		a.mu.Unlock()
		grant <- struct{}{}
		return
	}
	if a.inflight > 0 {
		a.inflight--
	}
	a.mu.Unlock()
}

// queued reports how many queries are waiting for a slot.
func (a *admission) queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue)
}

// tenantQuota is a lazily-refilled token bucket per tenant tag. One
// (rate, burst) policy applies to every tenant; buckets are created on
// first use. The zero rate disables quotas.
type tenantQuota struct {
	mu      sync.Mutex
	rate    float64 // tokens (queries) per second
	burst   float64 // bucket capacity
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

func newTenantQuota() *tenantQuota {
	return &tenantQuota{buckets: map[string]*tokenBucket{}}
}

// set installs the per-tenant policy. Existing buckets are dropped so
// the new policy applies immediately; rate <= 0 disables quotas.
func (tq *tenantQuota) set(rate, burst float64) {
	tq.mu.Lock()
	defer tq.mu.Unlock()
	tq.rate = rate
	if burst < 1 {
		burst = 1
	}
	tq.burst = burst
	tq.buckets = map[string]*tokenBucket{}
}

// admit spends one token from tenant's bucket, reporting whether the
// query may proceed. Unknown tenants start with a full bucket.
func (tq *tenantQuota) admit(tenant string) bool {
	tq.mu.Lock()
	defer tq.mu.Unlock()
	if tq.rate <= 0 {
		return true
	}
	now := time.Now()
	b := tq.buckets[tenant]
	if b == nil {
		b = &tokenBucket{tokens: tq.burst, last: now}
		tq.buckets[tenant] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * tq.rate
		if b.tokens > tq.burst {
			b.tokens = tq.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// admitTenant enforces the per-tenant quota for one query.
func (s *System) admitTenant(tenant string) error {
	if s.tenants.admit(tenant) {
		return nil
	}
	obs.CoordQuotaRejections.Inc()
	if tenant == "" {
		return fmt.Errorf("%w: tenant quota exhausted", ErrOverloaded)
	}
	return fmt.Errorf("%w: quota exhausted for tenant %q", ErrOverloaded, tenant)
}
