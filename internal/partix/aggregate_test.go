package partix

import (
	"math"
	"strconv"
	"testing"

	"partix/internal/xquery"
)

// aggSystem publishes items with a numeric Price-like field spread over 3
// fragments.
func aggSystem(t *testing.T) (*System, []float64) {
	t.Helper()
	s := newTestSystem(t, 3)
	c := itemsCollection(12)
	// Attach a numeric value per item: id is already numeric 0..11.
	var values []float64
	for i := range c.Docs {
		values = append(values, float64(i))
	}
	if err := s.Publish(c, horizontalScheme(), map[string]string{
		"Fcd": "node0", "Fdvd": "node1", "Frest": "node2",
	}, PublishOptions{}); err != nil {
		t.Fatal(err)
	}
	return s, values
}

func one(t *testing.T, s *System, q string) (float64, Strategy) {
	t.Helper()
	res, err := s.Query(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	if len(res.Items) != 1 {
		t.Fatalf("%s: %d items", q, len(res.Items))
	}
	v, err := strconv.ParseFloat(xquery.ItemString(res.Items[0]), 64)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return v, res.Strategy
}

func TestDistributedSum(t *testing.T) {
	s, values := aggSystem(t)
	got, strategy := one(t, s, `sum(for $i in collection("items")/Item return number($i/@id))`)
	want := 0.0
	for _, v := range values {
		want += v
	}
	if got != want || strategy != StrategyAggregate {
		t.Fatalf("sum = %v (%s), want %v", got, strategy, want)
	}
}

func TestDistributedMinMax(t *testing.T) {
	s, values := aggSystem(t)
	minGot, st1 := one(t, s, `min(for $i in collection("items")/Item return number($i/@id))`)
	maxGot, st2 := one(t, s, `max(for $i in collection("items")/Item return number($i/@id))`)
	minWant, maxWant := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		minWant = math.Min(minWant, v)
		maxWant = math.Max(maxWant, v)
	}
	if minGot != minWant || maxGot != maxWant {
		t.Fatalf("min=%v max=%v, want %v %v", minGot, maxGot, minWant, maxWant)
	}
	if st1 != StrategyAggregate || st2 != StrategyAggregate {
		t.Fatalf("strategies %s %s", st1, st2)
	}
}

func TestDistributedAvg(t *testing.T) {
	s, values := aggSystem(t)
	got, strategy := one(t, s, `avg(for $i in collection("items")/Item return number($i/@id))`)
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	want := sum / float64(len(values))
	if math.Abs(got-want) > 1e-9 || strategy != StrategyAggregate {
		t.Fatalf("avg = %v (%s), want %v", got, strategy, want)
	}
}

func TestDistributedAggregatesMatchCentralized(t *testing.T) {
	frag, _ := aggSystem(t)
	central := newTestSystem(t, 1)
	if err := central.Publish(itemsCollection(12), nil, map[string]string{"": "node0"}, PublishOptions{}); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`count(for $i in collection("items")/Item return $i)`,
		`sum(for $i in collection("items")/Item return number($i/@id))`,
		`min(for $i in collection("items")/Item return number($i/@id))`,
		`max(for $i in collection("items")/Item return number($i/@id))`,
		`avg(for $i in collection("items")/Item return number($i/@id))`,
		// Filtered variants.
		`avg(for $i in collection("items")/Item where $i/Section != "CD" return number($i/@id))`,
		`max(for $i in collection("items")/Item where contains($i/Description, "good") return number($i/@id))`,
	}
	for _, q := range queries {
		a, err := frag.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		b, err := central.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(a.Items) != len(b.Items) {
			t.Errorf("%s: %d vs %d items", q, len(a.Items), len(b.Items))
			continue
		}
		if len(a.Items) == 1 && xquery.ItemString(a.Items[0]) != xquery.ItemString(b.Items[0]) {
			t.Errorf("%s: %s vs %s", q, xquery.ItemString(a.Items[0]), xquery.ItemString(b.Items[0]))
		}
	}
}

func TestAggregateOverEmptySelection(t *testing.T) {
	s, _ := aggSystem(t)
	// No item has this section: min/avg over nothing are empty sequences.
	for _, fn := range []string{"min", "max", "avg"} {
		res, err := s.Query(fn + `(for $i in collection("items")/Item where $i/Section = "Vinyl" return number($i/@id))`)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Items) != 0 {
			t.Fatalf("%s over empty = %v", fn, res.Items)
		}
	}
	res, err := s.Query(`sum(for $i in collection("items")/Item where $i/Section = "Vinyl" return number($i/@id))`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 || xquery.ItemString(res.Items[0]) != "0" {
		t.Fatalf("sum over empty = %v", res.Items)
	}
}

func TestAvgSingleFragmentStaysRouted(t *testing.T) {
	s, _ := aggSystem(t)
	res, err := s.Query(`avg(for $i in collection("items")/Item where $i/Section = "CD" return number($i/@id))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != StrategyRouted {
		t.Fatalf("strategy = %s (predicate matches the fragmentation)", res.Strategy)
	}
	if len(res.Items) != 1 {
		t.Fatalf("items = %v", res.Items)
	}
}
