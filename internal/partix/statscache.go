package partix

import (
	"sync"
	"time"

	"partix/internal/cluster"
	"partix/internal/engine"
	"partix/internal/obs"
)

// The statistics cache holds each node's per-collection planner
// statistics (engine.CollectionStatistics) keyed by (node, node
// collection). Entries expire after a TTL — the coordinator's freshness
// bound on remote data it does not observe mutating — and a fetched
// snapshot carries the generation it describes, which is what plan-cache
// entries are validated against. Fetch failures and nodes that cannot
// provide statistics are cached as nil for the same TTL (negative
// caching), so an old or unreachable node costs one probe per TTL window
// instead of one per query.

// defaultStatsTTL bounds how stale a fragment-statistics snapshot (and
// therefore any plan built from it) may be.
const defaultStatsTTL = 30 * time.Second

type statsEntry struct {
	stats   *engine.CollectionStatistics // nil: node provided none
	fetched time.Time
}

type statsCache struct {
	mu      sync.Mutex
	ttl     time.Duration
	entries map[string]statsEntry
}

func newStatsCache(ttl time.Duration) *statsCache {
	return &statsCache{ttl: ttl, entries: map[string]statsEntry{}}
}

func statsKey(node, collection string) string {
	// "\x00" cannot occur in node or collection names.
	return node + "\x00" + collection
}

// get returns the cached snapshot and whether it is still fresh. A
// non-positive TTL makes every entry stale, forcing a refetch per query —
// the immediate-invalidation mode tests use.
func (sc *statsCache) get(node, collection string) (*engine.CollectionStatistics, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	e, ok := sc.entries[statsKey(node, collection)]
	if !ok || sc.ttl <= 0 || time.Since(e.fetched) > sc.ttl {
		return nil, false
	}
	return e.stats, true
}

func (sc *statsCache) put(node, collection string, stats *engine.CollectionStatistics) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.entries[statsKey(node, collection)] = statsEntry{stats: stats, fetched: time.Now()}
}

func (sc *statsCache) clear() {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.entries = map[string]statsEntry{}
}

func (sc *statsCache) setTTL(d time.Duration) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.ttl = d
}

// nodeStatistics resolves one node's statistics for a node-collection
// through the cache. Unknown nodes, drivers without the
// StatisticsProvider extension, legacy peers and fetch errors all yield
// nil — the planner treats all of them as "no statistics" and keeps the
// fragment.
func (s *System) nodeStatistics(nodeName, collection string) *engine.CollectionStatistics {
	if st, ok := s.statsCache.get(nodeName, collection); ok {
		return st
	}
	var stats *engine.CollectionStatistics
	if node := s.Node(nodeName); node != nil {
		if sp, ok := node.(cluster.StatisticsProvider); ok {
			obs.CoordStatsFetches.Inc()
			stats, _ = sp.CollectionStatistics(collection)
		}
	}
	s.statsCache.put(nodeName, collection, stats)
	return stats
}

// fragmentStatistics is nodeStatistics addressed by catalog metadata.
func (s *System) fragmentStatistics(meta *CollectionMeta, fragment string) *engine.CollectionStatistics {
	return s.nodeStatistics(meta.Placement[fragment], meta.NodeCollection(fragment))
}
