package partix

import (
	"fmt"
	"strings"
	"testing"

	"partix/internal/cluster"
	"partix/internal/storage"
	"partix/internal/xmltree"
	"partix/internal/xquery"
)

// failingNode wraps a driver and fails every operation once armed —
// simulating a node outage.
type failingNode struct {
	cluster.Driver
	down bool
}

func (f *failingNode) ExecuteQuery(q string) (xquery.Seq, error) {
	if f.down {
		return nil, fmt.Errorf("node %s is down", f.Name())
	}
	return f.Driver.ExecuteQuery(q)
}

func (f *failingNode) FetchCollection(c string) (*xmltree.Collection, error) {
	if f.down {
		return nil, fmt.Errorf("node %s is down", f.Name())
	}
	return f.Driver.FetchCollection(c)
}

func (f *failingNode) CollectionStats(c string) (storage.Stats, error) {
	if f.down {
		return storage.Stats{}, fmt.Errorf("node %s is down", f.Name())
	}
	return f.Driver.CollectionStats(c)
}

// replicatedSystem publishes the horizontal items scheme with node0's
// fragments replicated on node2, and wraps node0 so it can be downed.
func replicatedSystem(t *testing.T) (*System, *failingNode) {
	t.Helper()
	s := newTestSystem(t, 3)
	primary := s.Node("node0")
	failer := &failingNode{Driver: primary}
	s.AddNode(failer) // replaces node0 with the failable wrapper

	err := s.Publish(itemsCollection(12), horizontalScheme(), map[string]string{
		"Fcd": "node0", "Fdvd": "node1", "Frest": "node1",
	}, PublishOptions{
		Replicas: map[string][]string{"Fcd": {"node2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, failer
}

func TestReplicationPublishesCopies(t *testing.T) {
	s, _ := replicatedSystem(t)
	// The replica node holds a full copy of the fragment.
	primary, err := s.Node("node0").CollectionStats("items::Fcd")
	if err != nil {
		t.Fatal(err)
	}
	replica, err := s.Node("node2").CollectionStats("items::Fcd")
	if err != nil {
		t.Fatal(err)
	}
	if primary.Documents == 0 || primary.Documents != replica.Documents {
		t.Fatalf("primary %d docs, replica %d", primary.Documents, replica.Documents)
	}
}

func TestFailoverToReplica(t *testing.T) {
	s, failer := replicatedSystem(t)
	q := `for $i in collection("items")/Item where $i/Section = "CD" return $i/Code`

	res, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want := len(res.Items)
	if want == 0 {
		t.Fatal("no CD items in fixture")
	}

	failer.down = true
	res, err = s.Query(q)
	if err != nil {
		t.Fatalf("failover did not kick in: %v", err)
	}
	if len(res.Items) != want {
		t.Fatalf("failover answer has %d items, want %d", len(res.Items), want)
	}
}

func TestFailoverExhaustedReportsError(t *testing.T) {
	s, failer := replicatedSystem(t)
	failer.down = true
	// Fdvd has no replicas and lives on node1 — fine. Query something on
	// the failed node without replicas: repoint Fcd's replica away first.
	s.Catalog().Lookup("items").Replicas = nil
	if _, err := s.Query(`for $i in collection("items")/Item where $i/Section = "CD" return $i`); err == nil {
		t.Fatal("query over a dead, unreplicated node succeeded")
	}
}

// pingCloseDriver wraps a driver with the optional liveness and closing
// extensions remote drivers implement.
type pingCloseDriver struct {
	cluster.Driver
	pingErr error
	closed  bool
}

func (d *pingCloseDriver) Ping() error  { return d.pingErr }
func (d *pingCloseDriver) Close() error { d.closed = true; return nil }

func TestCheckNodesAndCloseNodes(t *testing.T) {
	s := newTestSystem(t, 2)
	healthy := &pingCloseDriver{Driver: s.Node("node0")}
	down := &pingCloseDriver{Driver: s.Node("node1"), pingErr: fmt.Errorf("link down")}
	s.AddNode(healthy)
	s.AddNode(down)

	hc := s.CheckNodes()
	if hc["node0"] != nil {
		t.Fatalf("healthy node reported %v", hc["node0"])
	}
	if hc["node1"] == nil {
		t.Fatal("dead node reported healthy")
	}
	if err := s.CloseNodes(); err != nil {
		t.Fatal(err)
	}
	if !healthy.closed || !down.closed {
		t.Fatal("CloseNodes skipped a closable driver")
	}
}

func TestFailoverErrorNamesFailedNode(t *testing.T) {
	s, failer := replicatedSystem(t)
	failer.down = true
	s.Catalog().Lookup("items").Replicas = nil
	_, err := s.Query(`for $i in collection("items")/Item where $i/Section = "CD" return $i`)
	if err == nil {
		t.Fatal("query over a dead, unreplicated node succeeded")
	}
	if !strings.Contains(err.Error(), "node0") {
		t.Fatalf("error does not name the failed node: %v", err)
	}
}

func TestReplicaValidation(t *testing.T) {
	s := newTestSystem(t, 2)
	err := s.Publish(itemsCollection(4), horizontalScheme(), map[string]string{
		"Fcd": "node0", "Fdvd": "node1", "Frest": "node1",
	}, PublishOptions{Replicas: map[string][]string{"Fcd": {"ghost"}}})
	if err == nil {
		t.Fatal("unknown replica node accepted")
	}
}

func TestConcurrentExecutionMatchesSequential(t *testing.T) {
	seq := newTestSystem(t, 3)
	publishHorizontal(t, seq, 24)
	conc := newTestSystem(t, 3)
	publishHorizontal(t, conc, 24)
	conc.SetConcurrent(true)
	if !conc.Concurrent() || seq.Concurrent() {
		t.Fatal("mode flags wrong")
	}

	queries := []string{
		`for $i in collection("items")/Item where contains($i/Description, "good") return $i/Code`,
		`count(for $i in collection("items")/Item return $i)`,
		`for $i in collection("items")/Item where $i/Section = "CD" return $i/Name`,
	}
	for _, q := range queries {
		a, err := seq.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := conc.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		as, bs := itemsAsStrings(a.Items), itemsAsStrings(b.Items)
		counts := map[string]int{}
		for _, v := range as {
			counts[v]++
		}
		for _, v := range bs {
			counts[v]--
		}
		for k, c := range counts {
			if c != 0 {
				t.Fatalf("%s: concurrent result differs at %q", q, k)
			}
		}
		if a.Strategy != b.Strategy {
			t.Fatalf("%s: strategies differ: %s vs %s", q, a.Strategy, b.Strategy)
		}
	}
}

func TestReconstructionFailover(t *testing.T) {
	s := newTestSystem(t, 4)
	primary := s.Node("node0")
	failer := &failingNode{Driver: primary}
	s.AddNode(failer)
	err := s.Publish(articlesCollection(6), verticalScheme(), map[string]string{
		"Fprolog": "node0", "Fbody": "node1", "Fepilog": "node2",
	}, PublishOptions{Replicas: map[string][]string{"Fprolog": {"node3"}}})
	if err != nil {
		t.Fatal(err)
	}
	failer.down = true
	// VQ8-style whole-document query needs all fragments, including the
	// prolog from the replica.
	res, err := s.Query(`for $a in collection("articles")/article where $a/@id = "a1" return $a`)
	if err != nil {
		t.Fatalf("reconstruction failover failed: %v", err)
	}
	if len(res.Items) != 1 {
		t.Fatalf("items = %d", len(res.Items))
	}
	root := res.Items[0].(*xmltree.Node)
	if root.Child("prolog") == nil {
		t.Fatal("reconstructed article lacks prolog from replica")
	}
}
